// sat_workloads.hpp — shared SAT workload builders for the solver bench
// drivers (bench_sat, bench_micro_sat).  One definition per workload shape
// so the gbench microbenches and the JSON trajectory driver measure the
// exact same formulas; tune a workload here and both report it.
#pragma once

#include <random>
#include <vector>

#include "bench_circuits/generators.hpp"
#include "cnf/unroller.hpp"
#include "sat/solver.hpp"

namespace itpseq::bench {

/// Pigeonhole PHP(n+1, n): classic combinatorial UNSAT, dense binary
/// clauses, heavy conflict analysis.  Labels partition the at-least-one
/// (1) and at-most-one (2) halves for interpolation benches.
inline void build_pigeonhole(sat::Solver& s, int n) {
  std::vector<std::vector<sat::Var>> p(n + 1, std::vector<sat::Var>(n));
  for (auto& row : p)
    for (auto& v : row) v = s.new_var();
  for (int i = 0; i <= n; ++i) {
    std::vector<sat::Lit> cl;
    for (int h = 0; h < n; ++h) cl.push_back(sat::mk_lit(p[i][h]));
    s.add_clause(cl, 1);
  }
  for (int h = 0; h < n; ++h)
    for (int i = 0; i <= n; ++i)
      for (int j = i + 1; j <= n; ++j)
        s.add_clause({sat::mk_lit(p[i][h], true), sat::mk_lit(p[j][h], true)}, 2);
}

/// Random 3-SAT clause stream at the given clause/var ratio (4.26 ~
/// threshold); calls `emit` once per clause.  Shared by the solver driver
/// and the Preprocessor front-end driver so both see identical formulas.
template <typename Emit>
inline void gen_random3sat(unsigned nvars, double ratio, unsigned seed,
                           Emit emit) {
  std::mt19937 rng(seed);
  const unsigned ncl = static_cast<unsigned>(nvars * ratio);
  for (unsigned cl = 0; cl < ncl; ++cl) {
    std::vector<sat::Lit> lits;
    while (lits.size() < 3) {
      sat::Lit l = sat::mk_lit(rng() % nvars, rng() % 2);
      bool dup = false;
      for (sat::Lit x : lits)
        if (sat::var(x) == sat::var(l)) dup = true;
      if (!dup) lits.push_back(l);
    }
    emit(std::move(lits));
  }
}

/// Random 3-SAT at the given clause/var ratio (4.26 ~ threshold).
inline void build_random3sat(sat::Solver& s, unsigned nvars, double ratio,
                             unsigned seed) {
  for (unsigned i = 0; i < nvars; ++i) s.new_var();
  gen_random3sat(nvars, ratio, seed,
                 [&](std::vector<sat::Lit> lits) { s.add_clause(lits); });
}

/// Pure binary implication network (ring + random chords): propagation is
/// served entirely by the inline binary watchers.
inline void build_binary_net(sat::Solver& s, unsigned nv, unsigned seed) {
  std::mt19937 rng(seed);
  for (unsigned i = 0; i < nv; ++i) s.new_var();
  for (unsigned i = 0; i < nv; ++i)
    s.add_clause({sat::mk_lit(i, true), sat::mk_lit((i + 1) % nv)});
  for (unsigned i = 0; i < nv; ++i)
    s.add_clause({sat::mk_lit(rng() % nv, true), sat::mk_lit(rng() % nv)});
}

/// Bounded-queue BMC unrolling to depth k (Tseitin CNF, ~2/3 binary
/// clauses), bound target scheme.
inline void build_bmc_queue(sat::Solver& /*owned by unr*/, cnf::Unroller& unr,
                            unsigned k) {
  unr.assert_init(0);
  for (unsigned t = 0; t < k; ++t) unr.add_transition(t, t + 1);
  unr.assert_target(k, cnf::TargetScheme::kBound, 0);
}

/// PDR-shaped incremental session: one long-lived solver, `rounds`
/// assumption queries over a sliding window of activation-guarded clauses,
/// guards retired by unit clauses — exercises the level-0 satisfied-clause
/// sweep and the arena GC.  Runs the queries itself (build and solve are
/// interleaved by construction).
inline void run_incremental_gc_session(sat::Solver& s, int rounds,
                                       unsigned seed) {
  std::mt19937 rng(seed);
  const unsigned nv = 60;
  std::vector<sat::Var> vars;
  for (unsigned i = 0; i < nv; ++i) vars.push_back(s.new_var());
  std::vector<sat::Lit> acts;
  for (int round = 0; round < rounds; ++round) {
    sat::Lit act = sat::mk_lit(s.new_var());
    std::vector<sat::Lit> cl{sat::neg(act)};
    unsigned len = 2 + rng() % 4;
    for (unsigned k = 0; k < len; ++k)
      cl.push_back(sat::mk_lit(vars[rng() % nv], rng() % 2));
    s.add_clause(cl);
    acts.push_back(act);
    if (acts.size() > 64 && rng() % 4 == 0) {
      std::size_t idx = rng() % (acts.size() - 32);
      if (acts[idx] != sat::kNoLit) {
        s.add_clause({sat::neg(acts[idx])});
        acts[idx] = sat::kNoLit;
      }
    }
    std::vector<sat::Lit> as;
    for (std::size_t i = acts.size() >= 24 ? acts.size() - 24 : 0;
         i < acts.size(); ++i)
      if (acts[i] != sat::kNoLit && rng() % 2) as.push_back(acts[i]);
    s.solve_assuming(as);
  }
}

}  // namespace itpseq::bench
