// bench_micro_itp.cpp — google-benchmark microbenchmarks for interpolant
// extraction: proof-core traversal cost, single-cut versus full-sequence
// extraction (the parallel computation of Eq. 2), and interpolant sizes.
#include <benchmark/benchmark.h>

#include <memory>
#include <unordered_map>

#include "bench_circuits/generators.hpp"
#include "cnf/unroller.hpp"
#include "itp/interpolate.hpp"
#include "sat/solver.hpp"

using namespace itpseq;

namespace {

struct RefutedBmc {
  std::unique_ptr<sat::Solver> solver;
  std::unique_ptr<cnf::Unroller> unroller;
  aig::Aig model;
  unsigned k;
};

RefutedBmc make_refuted(unsigned k) {
  RefutedBmc r;
  r.model = bench::feistel_mixer(10, 40, 3);
  r.k = k;
  r.solver = std::make_unique<sat::Solver>();
  r.solver->enable_proof();
  r.unroller = std::make_unique<cnf::Unroller>(r.model, *r.solver);
  r.unroller->assert_init(1);
  for (unsigned t = 0; t < k; ++t) r.unroller->add_transition(t, t + 1);
  r.solver->add_clause({r.unroller->bad_lit(k, k + 1)}, k + 1);
  if (r.solver->solve() != sat::Status::kUnsat)
    throw std::logic_error("expected UNSAT");
  return r;
}

void BM_ExtractSingleCut(benchmark::State& state) {
  RefutedBmc r = make_refuted(static_cast<unsigned>(state.range(0)));
  itp::InterpolantExtractor ex(r.solver->proof());
  unsigned cut = r.k / 2;
  std::unordered_map<sat::Var, aig::Lit> leaf;
  for (auto _ : state) {
    aig::Aig g;
    for (std::size_t i = 0; i < r.model.num_latches(); ++i) g.add_input();
    leaf.clear();
    for (std::size_t i = 0; i < r.model.num_latches(); ++i) {
      sat::Lit sl = r.unroller->lookup(r.model.latch(i), cut);
      leaf[sat::var(sl)] = aig::lit_xor(g.input(i), sat::sign(sl));
    }
    aig::Lit I = ex.extract(g, cut, [&](sat::Var v) {
      auto it = leaf.find(v);
      return it == leaf.end() ? aig::kNullLit : it->second;
    });
    benchmark::DoNotOptimize(I);
    state.counters["itp_nodes"] = static_cast<double>(g.cone_size(I));
  }
  state.counters["core"] = static_cast<double>(ex.core_size());
}
BENCHMARK(BM_ExtractSingleCut)->Arg(6)->Arg(10)->Arg(14);

void BM_ExtractFullSequence(benchmark::State& state) {
  RefutedBmc r = make_refuted(static_cast<unsigned>(state.range(0)));
  itp::InterpolantExtractor ex(r.solver->proof());
  for (auto _ : state) {
    aig::Aig g;
    for (std::size_t i = 0; i < r.model.num_latches(); ++i) g.add_input();
    std::vector<std::unordered_map<sat::Var, aig::Lit>> leaf(r.k + 1);
    for (unsigned c = 1; c <= r.k; ++c)
      for (std::size_t i = 0; i < r.model.num_latches(); ++i) {
        sat::Lit sl = r.unroller->lookup(r.model.latch(i), c);
        leaf[c][sat::var(sl)] = aig::lit_xor(g.input(i), sat::sign(sl));
      }
    auto seq = ex.extract_sequence(g, 1, r.k, [&](std::uint32_t c, sat::Var v) {
      auto it = leaf[c].find(v);
      return it == leaf[c].end() ? aig::kNullLit : it->second;
    });
    benchmark::DoNotOptimize(seq);
  }
  state.counters["core"] = static_cast<double>(ex.core_size());
}
BENCHMARK(BM_ExtractFullSequence)->Arg(6)->Arg(10)->Arg(14);

void BM_ProofLoggingOverheadEndToEnd(benchmark::State& state) {
  // Full UNSAT solve including proof construction, for scaling bounds.
  aig::Aig model = bench::feistel_mixer(10, 40, 3);
  unsigned k = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    sat::Solver s;
    s.enable_proof();
    cnf::Unroller unr(model, s);
    unr.assert_init(1);
    for (unsigned t = 0; t < k; ++t) unr.add_transition(t, t + 1);
    s.add_clause({unr.bad_lit(k, k + 1)}, k + 1);
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_ProofLoggingOverheadEndToEnd)->Arg(6)->Arg(10)->Arg(14);

}  // namespace

BENCHMARK_MAIN();
