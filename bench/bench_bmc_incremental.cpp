// bench_bmc_incremental.cpp — engineering ablation: monolithic BMC
// (re-encode the unrolling at every bound) versus the single-instance
// incremental formulation (one solver, assumptions per bound; in the spirit
// of the paper's reference [13]).  Reported on the falsifiable suite
// instances; both must find identical counterexample depths.
//
// Usage: bench_bmc_incremental [per_engine_seconds]
#include <cstdio>
#include <cstdlib>

#include "bench_circuits/suite.hpp"
#include "mc/engine.hpp"

using namespace itpseq;

int main(int argc, char** argv) {
  double limit = argc > 1 ? std::atof(argv[1]) : 5.0;

  std::printf("# BMC: monolithic vs incremental (exact-assume scheme)\n");
  std::printf("%-18s %6s | %12s %12s %9s\n", "# instance", "depth", "mono[s]",
              "incr[s]", "speedup");

  double mono_total = 0, incr_total = 0;
  unsigned count = 0, agree = 0;
  for (auto& inst : bench::make_suite()) {
    if (inst.expected != bench::Expected::kFail) continue;
    mc::EngineOptions mono;
    mono.time_limit_sec = limit;
    mono.max_bound = 100;
    mono.bmc_incremental = false;  // monolithic baseline (incremental is default)
    mc::EngineOptions incr = mono;
    incr.bmc_incremental = true;

    mc::EngineResult a = mc::check_bmc(inst.model, 0, mono);
    mc::EngineResult b = mc::check_bmc(inst.model, 0, incr);
    double ta = a.verdict == mc::Verdict::kUnknown ? limit : a.seconds;
    double tb = b.verdict == mc::Verdict::kUnknown ? limit : b.seconds;
    mono_total += ta;
    incr_total += tb;
    ++count;
    bool same = a.verdict == b.verdict &&
                (a.verdict != mc::Verdict::kFail ||
                 a.cex.depth() == b.cex.depth());
    if (same) ++agree;
    std::printf("%-18s %6d | %12.4f %12.4f %8.2fx%s\n", inst.name.c_str(),
                a.verdict == mc::Verdict::kFail ? static_cast<int>(a.cex.depth())
                                                : -1,
                ta, tb, tb > 1e-9 ? ta / tb : 0.0, same ? "" : "  MISMATCH");
  }
  std::printf("# totals over %u instances: mono %.2fs, incremental %.2fs "
              "(%.2fx), verdict agreement %u/%u\n",
              count, mono_total, incr_total,
              incr_total > 1e-9 ? mono_total / incr_total : 0.0, agree, count);
  return 0;
}
