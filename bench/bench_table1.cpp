// bench_table1.cpp — regenerates Table I of the paper.
//
// For each benchmark instance: design name, #PI, #FF; exact forward and
// backward diameters with BDD verification times (or "ovf"); then, for each
// of the four engines (ITP, ITPSEQ, SITPSEQ, ITPSEQCBA): CPU time, k_fp and
// j_fp.  "ovf" marks budget exhaustion, with the bound reached in
// parentheses, exactly like the paper's table; j_fp = 0 marks failures.
//
// Usage: bench_table1 [per_engine_seconds] [bdd_seconds] [family_filter]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bdd/reach.hpp"
#include "bench_circuits/suite.hpp"
#include "mc/engine.hpp"

using namespace itpseq;

namespace {

std::string bdd_cell(const bdd::ReachResult& r) {
  char buf[48];
  switch (r.verdict) {
    case bdd::ReachVerdict::kPass:
      std::snprintf(buf, sizeof buf, "%4u %7.2f", r.diameter ? *r.diameter : 0,
                    r.seconds);
      break;
    case bdd::ReachVerdict::kFail:
      std::snprintf(buf, sizeof buf, "   - %7.2f", r.seconds);
      break;
    case bdd::ReachVerdict::kOverflow:
      std::snprintf(buf, sizeof buf, "   -     ovf");
      break;
  }
  return buf;
}

std::string engine_cell(const mc::EngineResult& r) {
  char buf[48];
  switch (r.verdict) {
    case mc::Verdict::kPass:
      std::snprintf(buf, sizeof buf, "%7.2f %3u %3u", r.seconds, r.k_fp, r.j_fp);
      break;
    case mc::Verdict::kFail:
      std::snprintf(buf, sizeof buf, "%7.2f %3u   0", r.seconds, r.k_fp);
      break;
    case mc::Verdict::kUnknown:
      std::snprintf(buf, sizeof buf, "    ovf (%2u)   -", r.k_fp);
      break;
    case mc::Verdict::kError:
      std::snprintf(buf, sizeof buf, "    err        -");
      break;
  }
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  double engine_limit = argc > 1 ? std::atof(argv[1]) : 5.0;
  double bdd_limit = argc > 2 ? std::atof(argv[2]) : 5.0;
  std::string filter = argc > 3 ? argv[3] : "";

  std::printf("Table I reproduction — per-instance comparison\n");
  std::printf("(engine budget %.1fs, BDD budget %.1fs per direction)\n\n",
              engine_limit, bdd_limit);
  std::printf("%-18s %4s %4s | %12s | %12s | %15s | %15s | %15s | %15s\n",
              "Model", "#PI", "#FF", "dF  TimeF", "dB  TimeB",
              "ITP  t k j", "ITPSEQ  t k j", "SITPSEQ  t k j",
              "ITPSEQCBA t k j");

  mc::EngineOptions opts;
  opts.time_limit_sec = engine_limit;

  for (auto& inst : bench::make_suite()) {
    if (!filter.empty() && inst.family.find(filter) == std::string::npos &&
        inst.name.find(filter) == std::string::npos)
      continue;

    std::string fwd_cell = "   -     ovf", bwd_cell = "   -     ovf";
    if (!inst.industrial) {
      bdd::ReachBudget rb;
      rb.seconds = bdd_limit;
      rb.node_limit = 2'000'000;
      try {
        bdd::SymbolicModel fm(inst.model, rb.node_limit);
        fwd_cell = bdd_cell(bdd::forward_reach(fm, rb));
        bdd::SymbolicModel bm(inst.model, rb.node_limit);
        bwd_cell = bdd_cell(bdd::backward_reach(bm, rb));
      } catch (const bdd::BddOverflow&) {
        // leave "ovf"
      }
    }

    mc::EngineResult a = mc::check_itp(inst.model, 0, opts);
    mc::EngineResult b = mc::check_itpseq(inst.model, 0, opts);
    mc::EngineResult c = mc::check_sitpseq(inst.model, 0, opts);
    mc::EngineResult d = mc::check_itpseq_cba(inst.model, 0, opts);

    std::printf("%-18s %4zu %4zu | %12s | %12s | %15s | %15s | %15s | %15s\n",
                inst.name.c_str(), inst.model.num_inputs(),
                inst.model.num_latches(), fwd_cell.c_str(), bwd_cell.c_str(),
                engine_cell(a).c_str(), engine_cell(b).c_str(),
                engine_cell(c).c_str(), engine_cell(d).c_str());
  }
  return 0;
}
