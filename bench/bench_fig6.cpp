// bench_fig6.cpp — regenerates Figure 6 of the paper.
//
// Runs the four engines over the full suite, records the per-instance CPU
// time (timeouts clamp to the budget), sorts each engine's times
// independently (as the paper does, yielding monotone curves) and prints
// the four series side by side, plus solved-instance counts.
//
// Usage: bench_fig6 [per_engine_seconds]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_circuits/suite.hpp"
#include "mc/engine.hpp"

using namespace itpseq;

int main(int argc, char** argv) {
  double limit = argc > 1 ? std::atof(argv[1]) : 5.0;
  mc::EngineOptions opts;
  opts.time_limit_sec = limit;

  struct Series {
    const char* name;
    std::vector<double> times;
    unsigned solved = 0;
  };
  Series series[4] = {{"ITP", {}, 0},
                      {"ITPSEQ", {}, 0},
                      {"SITPSEQ", {}, 0},
                      {"ITPSEQ+CBA", {}, 0}};

  auto suite = bench::make_suite();
  std::fprintf(stderr, "running %zu instances x 4 engines (budget %.1fs)...\n",
               suite.size(), limit);
  for (auto& inst : suite) {
    mc::EngineResult rs[4] = {
        mc::check_itp(inst.model, 0, opts), mc::check_itpseq(inst.model, 0, opts),
        mc::check_sitpseq(inst.model, 0, opts),
        mc::check_itpseq_cba(inst.model, 0, opts)};
    for (int e = 0; e < 4; ++e) {
      bool solved = rs[e].verdict != mc::Verdict::kUnknown;
      series[e].times.push_back(solved ? rs[e].seconds : limit);
      if (solved) ++series[e].solved;
    }
  }
  for (auto& s : series) std::sort(s.times.begin(), s.times.end());

  std::printf("# Figure 6 reproduction: sorted per-instance run times [s]\n");
  std::printf("# instances solved within %.1fs: ITP=%u ITPSEQ=%u SITPSEQ=%u "
              "ITPSEQCBA=%u (of %zu)\n",
              limit, series[0].solved, series[1].solved, series[2].solved,
              series[3].solved, suite.size());
  std::printf("%6s %12s %12s %12s %12s\n", "idx", "ITP", "ITPSEQ", "SITPSEQ",
              "ITPSEQ+CBA");
  for (std::size_t i = 0; i < suite.size(); ++i)
    std::printf("%6zu %12.4f %12.4f %12.4f %12.4f\n", i, series[0].times[i],
                series[1].times[i], series[2].times[i], series[3].times[i]);
  return 0;
}
