// json_writer.hpp — minimal JSON emitter for the bench trajectory files
// (BENCH_sat.json, BENCH_pdr.json).  The drivers append flat objects and
// arrays; no quoting beyond strings, no dependencies, deterministic field
// order.  Machine consumers (trend dashboards, CI deltas) diff these files
// across commits, so keys are stable and values are plain numbers.
#pragma once

#include <cstdio>
#include <string>

namespace itpseq::bench {

class JsonWriter {
 public:
  explicit JsonWriter(std::string path) : path_(std::move(path)) {}

  JsonWriter& begin_object() { return token("{"); }
  JsonWriter& end_object() { return close("}"); }
  JsonWriter& begin_array(const std::string& key) {
    return keyed(key).token("[");
  }
  JsonWriter& end_array() { return close("]"); }
  JsonWriter& begin_object(const std::string& key) {
    return keyed(key).token("{");
  }

  JsonWriter& field(const std::string& key, const std::string& v) {
    return keyed(key).token("\"" + escape(v) + "\"");
  }
  JsonWriter& field(const std::string& key, const char* v) {
    return field(key, std::string(v));
  }
  JsonWriter& field(const std::string& key, double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return keyed(key).token(buf);
  }
  JsonWriter& field(const std::string& key, std::uint64_t v) {
    return keyed(key).token(std::to_string(v));
  }
  JsonWriter& field(const std::string& key, std::int64_t v) {
    return keyed(key).token(std::to_string(v));
  }
  JsonWriter& field(const std::string& key, unsigned v) {
    return field(key, static_cast<std::uint64_t>(v));
  }
  JsonWriter& field(const std::string& key, int v) {
    return field(key, static_cast<std::int64_t>(v));
  }
  JsonWriter& field(const std::string& key, bool v) {
    return keyed(key).token(v ? "true" : "false");
  }

  /// Bare array element (inside begin_array/end_array).
  JsonWriter& value(std::uint64_t v) { return token(std::to_string(v)); }
  JsonWriter& value(double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return token(buf);
  }

  /// Write the accumulated document to `path`; returns false on I/O error.
  bool write() const {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) return false;
    std::fputs(out_.c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
    return true;
  }

  const std::string& path() const { return path_; }

 private:
  JsonWriter& token(const std::string& t) {
    if (need_comma_) out_ += ",";
    out_ += t;
    // After a value we need a comma; after an opener we do not.
    need_comma_ = t != "{" && t != "[";
    return *this;
  }
  JsonWriter& close(const char* t) {
    out_ += t;
    need_comma_ = true;
    return *this;
  }
  JsonWriter& keyed(const std::string& key) {
    if (need_comma_) out_ += ",";
    out_ += "\"" + escape(key) + "\":";
    need_comma_ = false;
    return *this;
  }
  static std::string escape(const std::string& s) {
    std::string r;
    for (char c : s) {
      if (c == '"' || c == '\\') r += '\\';
      r += c;
    }
    return r;
  }

  std::string path_;
  std::string out_;
  bool need_comma_ = false;
};

}  // namespace itpseq::bench
