// bench_ablation_partitioned.cpp — ablation for Section III of the paper:
// standard interpolation with the monolithic bound-k B-term versus
// *partitioned* interpolants, where ITP(A, B^k_B) is computed as the
// conjunction of per-depth interpolants against exact-k or assume-k
// targets.  Partitioning trades one large refutation for k smaller ones —
// the same trade interpolation sequences exploit.
//
// Usage: bench_ablation_partitioned [per_engine_seconds] [family_filter]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_circuits/suite.hpp"
#include "mc/engine.hpp"

using namespace itpseq;

int main(int argc, char** argv) {
  double limit = argc > 1 ? std::atof(argv[1]) : 5.0;
  std::string filter = argc > 2 ? argv[2] : "";

  std::printf("# Section III ablation: bound-k ITP vs partitioned ITP\n");
  std::printf("%-18s | %-20s | %-20s | %-20s\n", "# instance", "ITP (bound-k)",
              "ITP-PART (exact)", "ITP-PART (assume)");

  auto cell = [](const mc::EngineResult& r) {
    char buf[32];
    if (r.verdict == mc::Verdict::kUnknown)
      std::snprintf(buf, sizeof buf, "ovf (%u)", r.k_fp);
    else
      std::snprintf(buf, sizeof buf, "%s %.2fs (%u,%u)",
                    mc::to_string(r.verdict), r.seconds, r.k_fp, r.j_fp);
    return std::string(buf);
  };

  struct Tally {
    unsigned solved = 0;
    double total = 0;
  } tally[3];

  for (auto& inst : bench::make_suite()) {
    if (!filter.empty() && inst.family.find(filter) == std::string::npos)
      continue;
    mc::EngineOptions base;
    base.time_limit_sec = limit;

    mc::EngineOptions part_exact = base;
    part_exact.itp_partitioned = true;
    part_exact.scheme = cnf::TargetScheme::kExact;
    mc::EngineOptions part_assume = base;
    part_assume.itp_partitioned = true;
    part_assume.scheme = cnf::TargetScheme::kExactAssume;

    mc::EngineResult rs[3] = {mc::check_itp(inst.model, 0, base),
                              mc::check_itp(inst.model, 0, part_exact),
                              mc::check_itp(inst.model, 0, part_assume)};
    for (int i = 0; i < 3; ++i) {
      if (rs[i].verdict != mc::Verdict::kUnknown) {
        ++tally[i].solved;
        tally[i].total += rs[i].seconds;
      } else {
        tally[i].total += limit;
      }
    }
    std::printf("%-18s | %-20s | %-20s | %-20s\n", inst.name.c_str(),
                cell(rs[0]).c_str(), cell(rs[1]).c_str(), cell(rs[2]).c_str());
  }
  std::printf("# summary: bound-k solved=%u %.1fs | part-exact solved=%u %.1fs "
              "| part-assume solved=%u %.1fs\n",
              tally[0].solved, tally[0].total, tally[1].solved, tally[1].total,
              tally[2].solved, tally[2].total);
  return 0;
}
