// bench_ablation_cba.cpp — ablation of the CBA integration (Fig. 5): plain
// SITPSEQ versus SITPSEQ+CBA on the large "industrial" instances, reporting
// the final abstraction size (visible latches), refinement count and time.
// This is the paper's headline CBA claim: on large designs with local
// properties the abstraction solves instances the concrete engines cannot,
// because BMC checks and proofs stay small.
//
// Usage: bench_ablation_cba [per_engine_seconds]
#include <cstdio>
#include <cstdlib>

#include "bench_circuits/suite.hpp"
#include "mc/engine.hpp"

using namespace itpseq;

int main(int argc, char** argv) {
  double limit = argc > 1 ? std::atof(argv[1]) : 10.0;
  mc::EngineOptions opts;
  opts.time_limit_sec = limit;

  std::printf("# CBA ablation on the industrial suite (budget %.1fs)\n", limit);
  std::printf("%-18s %5s | %-22s | %-22s %9s %7s\n", "# instance", "#FF",
              "SITPSEQ", "SITPSEQ+CBA", "visible", "refines");

  auto cell = [](const mc::EngineResult& r) {
    char buf[32];
    if (r.verdict == mc::Verdict::kUnknown)
      std::snprintf(buf, sizeof buf, "ovf (%u)", r.k_fp);
    else
      std::snprintf(buf, sizeof buf, "%s %.2fs k=%u", mc::to_string(r.verdict),
                    r.seconds, r.k_fp);
    return std::string(buf);
  };

  for (auto& inst : bench::make_industrial_suite()) {
    mc::EngineResult plain = mc::check_sitpseq(inst.model, 0, opts);
    mc::EngineResult cba = mc::check_itpseq_cba(inst.model, 0, opts);
    std::printf("%-18s %5zu | %-22s | %-22s %5u/%-3zu %7u\n", inst.name.c_str(),
                inst.model.num_latches(), cell(plain).c_str(),
                cell(cba).c_str(), cba.stats.cba_visible_latches,
                inst.model.num_latches(), cba.stats.cba_refinements);
  }
  return 0;
}
