// bench_pdr.cpp — PDR engine throughput over the benchmark suite, with a
// built-in ablation of the two cube-shrinking layers.
//
// Each instance runs twice: BASE disables ternary lifting and CTG
// generalization (the drop-literal-only configuration), TUNED enables both.
// Per instance: both verdicts (which must agree whenever both are decided),
// SAT queries and total lemma literals for each mode, the lift ratio
// (ternary-dropped literals / literals the syntactic lift would have kept)
// and CTG counters.  The summary aggregates queries/s and the two shrink
// totals — the numbers to watch when tuning the generalization loops.
//
// A machine-readable trajectory file (BENCH_pdr.json) is written with
// per-instance wall-clock, verdicts, query counts and the solver-side
// counters (propagations/s, arena bytes, GC runs) for the tuned mode.
//
// Usage: bench_pdr [per_instance_seconds] [family_filter] [json_path]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_circuits/suite.hpp"
#include "json_writer.hpp"
#include "mc/pdr.hpp"
#include "obs/trace.hpp"

using namespace itpseq;

namespace {

struct ModeTotals {
  double sec = 0.0;
  std::uint64_t queries = 0, lemmas = 0, lemma_literals = 0, frames = 0;
  mc::EngineStats sat;  // solver-side counters (EngineStats::operator+=)
  unsigned decided = 0, unknown = 0;
};

struct InstanceRecord {
  std::string name;
  std::string verdict;
  double seconds = 0.0;
  std::uint64_t queries = 0, lemmas = 0;
  mc::EngineStats sat;
  unsigned frames = 0;
};

}  // namespace

int main(int argc, char** argv) {
  auto sink = obs::TraceSink::from_env();  // ITPSEQ_TRACE=... opt-in
  double limit = argc > 1 ? std::atof(argv[1]) : 5.0;
  std::string filter = argc > 2 ? argv[2] : "";
  std::string json_path = argc > 3 ? argv[3] : "BENCH_pdr.json";

  mc::EngineOptions base;
  base.time_limit_sec = limit;
  base.max_bound = 10000;
  base.pdr_lift = false;
  base.pdr_ctg = false;
  mc::EngineOptions tuned = base;
  tuned.pdr_lift = true;
  tuned.pdr_ctg = true;

  std::printf("%-18s %4s %4s | %-7s %8s %8s | %-7s %8s %8s %6s %6s\n",
              "instance", "#PI", "#FF", "base", "queries", "lemlits", "tuned",
              "queries", "lemlits", "lift%", "ctgs");
  ModeTotals tb, tt;
  std::vector<InstanceRecord> records;
  std::uint64_t lift_dropped = 0, lift_kept = 0;
  unsigned mismatches = 0;
  for (const auto& inst : bench::make_suite()) {
    if (!filter.empty() && inst.family.find(filter) == std::string::npos)
      continue;
    mc::PdrEngine base_eng(inst.model, 0, base);
    mc::EngineResult br = base_eng.run();
    const mc::PdrStats& bs = base_eng.pdr_stats();
    mc::PdrEngine tuned_eng(inst.model, 0, tuned);
    mc::EngineResult tr = tuned_eng.run();
    const mc::PdrStats& ts = tuned_eng.pdr_stats();
    // Of the literals surviving the syntactic cone lift, how many did the
    // ternary pass remove?
    double lift_pct =
        ts.lift_dropped + ts.lift_kept
            ? 100.0 * static_cast<double>(ts.lift_dropped) /
                  static_cast<double>(ts.lift_dropped + ts.lift_kept)
            : 0.0;
    std::printf("%-18s %4zu %4zu | %-7s %8llu %8llu | %-7s %8llu %8llu %5.1f%% %6llu\n",
                inst.name.c_str(), inst.model.num_inputs(),
                inst.model.num_latches(), mc::to_string(br.verdict),
                static_cast<unsigned long long>(bs.queries),
                static_cast<unsigned long long>(bs.lemma_literals),
                mc::to_string(tr.verdict),
                static_cast<unsigned long long>(ts.queries),
                static_cast<unsigned long long>(ts.lemma_literals), lift_pct,
                static_cast<unsigned long long>(ts.ctg_blocked));
    if (br.verdict != mc::Verdict::kUnknown &&
        tr.verdict != mc::Verdict::kUnknown && br.verdict != tr.verdict) {
      ++mismatches;
      std::printf("  ^^ VERDICT MISMATCH on %s\n", inst.name.c_str());
    }
    auto absorb = [](ModeTotals& t, const mc::EngineResult& r,
                     const mc::PdrStats& s) {
      t.sec += r.seconds;
      t.queries += s.queries;
      t.lemmas += s.lemmas;
      t.lemma_literals += s.lemma_literals;
      t.frames += s.frames;
      t.sat += r.stats;
      if (r.verdict == mc::Verdict::kUnknown)
        ++t.unknown;
      else
        ++t.decided;
    };
    absorb(tb, br, bs);
    absorb(tt, tr, ts);
    lift_dropped += ts.lift_dropped;
    lift_kept += ts.lift_kept;

    InstanceRecord rec;
    rec.name = inst.name;
    rec.verdict = mc::to_string(tr.verdict);
    rec.seconds = tr.seconds;
    rec.queries = ts.queries;
    rec.lemmas = ts.lemmas;
    rec.frames = ts.frames;
    rec.sat = tr.stats;
    records.push_back(std::move(rec));
  }
  if (tb.sec <= 0.0) tb.sec = 1e-9;
  if (tt.sec <= 0.0) tt.sec = 1e-9;
  std::printf("\nbase : decided %u / unknown %u in %.2fs | %8llu queries "
              "(%.1f/s), %llu lemmas, %llu literals (avg %.1f)\n",
              tb.decided, tb.unknown, tb.sec,
              static_cast<unsigned long long>(tb.queries),
              tb.queries / tb.sec, static_cast<unsigned long long>(tb.lemmas),
              static_cast<unsigned long long>(tb.lemma_literals),
              tb.lemmas ? static_cast<double>(tb.lemma_literals) /
                              static_cast<double>(tb.lemmas)
                        : 0.0);
  std::printf("tuned: decided %u / unknown %u in %.2fs | %8llu queries "
              "(%.1f/s), %llu lemmas, %llu literals (avg %.1f)\n",
              tt.decided, tt.unknown, tt.sec,
              static_cast<unsigned long long>(tt.queries),
              tt.queries / tt.sec, static_cast<unsigned long long>(tt.lemmas),
              static_cast<unsigned long long>(tt.lemma_literals),
              tt.lemmas ? static_cast<double>(tt.lemma_literals) /
                              static_cast<double>(tt.lemmas)
                        : 0.0);
  std::printf("lift : dropped %llu of %llu post-cone literals (%.1f%%)\n",
              static_cast<unsigned long long>(lift_dropped),
              static_cast<unsigned long long>(lift_dropped + lift_kept),
              lift_dropped + lift_kept
                  ? 100.0 * static_cast<double>(lift_dropped) /
                        static_cast<double>(lift_dropped + lift_kept)
                  : 0.0);
  std::printf("sat  : tuned %llu props (%.1f%% binary, %.1f/s M), "
              "%llu gc runs, %llu KB reclaimed\n",
              static_cast<unsigned long long>(tt.sat.sat_propagations),
              tt.sat.sat_propagations
                  ? 100.0 * static_cast<double>(tt.sat.sat_bin_propagations) /
                        static_cast<double>(tt.sat.sat_propagations)
                  : 0.0,
              static_cast<double>(tt.sat.sat_propagations) / tt.sec / 1e6,
              static_cast<unsigned long long>(tt.sat.sat_gc_runs),
              static_cast<unsigned long long>(tt.sat.sat_arena_reclaimed / 1024));

  bench::JsonWriter json(json_path);
  json.begin_object();
  json.field("bench", "pdr");
  json.field("per_instance_seconds", limit);
  json.begin_array("instances");
  for (const auto& r : records) {
    json.begin_object();
    json.field("name", r.name);
    json.field("verdict", r.verdict);
    json.field("seconds", r.seconds);
    json.field("frames", r.frames);
    json.field("queries", r.queries);
    json.field("lemmas", r.lemmas);
    json.field("propagations", r.sat.sat_propagations);
    json.field("bin_propagations", r.sat.sat_bin_propagations);
    json.field("conflicts", r.sat.sat_conflicts);
    json.field("gc_runs", r.sat.sat_gc_runs);
    json.field("wasted_bytes_reclaimed", r.sat.sat_arena_reclaimed);
    json.field("arena_bytes_peak", static_cast<std::uint64_t>(r.sat.sat_arena_peak));
    json.end_object();
  }
  json.end_array();
  json.begin_object("totals");
  json.field("seconds", tt.sec);
  json.field("decided", tt.decided);
  json.field("unknown", tt.unknown);
  json.field("queries", tt.queries);
  json.field("lemmas", tt.lemmas);
  json.field("propagations", tt.sat.sat_propagations);
  json.field("bin_propagations", tt.sat.sat_bin_propagations);
  json.field("conflicts", tt.sat.sat_conflicts);
  json.field("gc_runs", tt.sat.sat_gc_runs);
  json.field("wasted_bytes_reclaimed", tt.sat.sat_arena_reclaimed);
  json.end_object();
  json.end_object();
  if (!json.write())
    std::fprintf(stderr, "bench_pdr: cannot write %s\n", json_path.c_str());
  else
    std::printf("trajectory written to %s\n", json_path.c_str());

  if (mismatches != 0) {
    std::printf("\n%u VERDICT MISMATCH(ES) — lifting/CTG must not change "
                "verdicts\n", mismatches);
    return 1;
  }
  return 0;
}
