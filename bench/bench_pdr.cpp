// bench_pdr.cpp — PDR engine throughput over the benchmark suite.
//
// For each instance: verdict, final frontier K, lemma count and average
// lemma length, plus the engine's two natural rates — frames per second
// and incremental SAT queries per second.  A summary row aggregates the
// rates over all decided instances, which is the number to watch when
// tuning the generalization and propagation loops.
//
// Usage: bench_pdr [per_instance_seconds] [family_filter]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_circuits/suite.hpp"
#include "mc/pdr.hpp"

using namespace itpseq;

int main(int argc, char** argv) {
  double limit = argc > 1 ? std::atof(argv[1]) : 5.0;
  std::string filter = argc > 2 ? argv[2] : "";

  mc::EngineOptions opts;
  opts.time_limit_sec = limit;
  opts.max_bound = 10000;

  std::printf("%-18s %4s %4s | %-7s %5s %7s %6s %9s %9s\n", "instance", "#PI",
              "#FF", "verdict", "K", "lemmas", "avglit", "frames/s",
              "queries/s");
  double total_sec = 0.0;
  std::uint64_t total_frames = 0, total_queries = 0;
  unsigned decided = 0, unknown = 0;
  for (const auto& inst : bench::make_suite()) {
    if (!filter.empty() && inst.family.find(filter) == std::string::npos)
      continue;
    mc::PdrEngine eng(inst.model, 0, opts);
    mc::EngineResult r = eng.run();
    const mc::PdrStats& s = eng.pdr_stats();
    double sec = r.seconds > 1e-9 ? r.seconds : 1e-9;
    std::printf("%-18s %4zu %4zu | %-7s %5u %7llu %6.1f %9.1f %9.1f\n",
                inst.name.c_str(), inst.model.num_inputs(),
                inst.model.num_latches(), mc::to_string(r.verdict), s.frames,
                static_cast<unsigned long long>(s.lemmas),
                s.lemmas ? static_cast<double>(s.lemma_literals) /
                               static_cast<double>(s.lemmas)
                         : 0.0,
                s.frames / sec, s.queries / sec);
    total_sec += r.seconds;
    total_frames += s.frames;
    total_queries += s.queries;
    if (r.verdict == mc::Verdict::kUnknown)
      ++unknown;
    else
      ++decided;
  }
  if (total_sec <= 0.0) total_sec = 1e-9;
  std::printf("\ndecided %u / unknown %u in %.2fs | overall %.1f frames/s, "
              "%.1f queries/s\n",
              decided, unknown, total_sec, total_frames / total_sec,
              total_queries / total_sec);
  return 0;
}
