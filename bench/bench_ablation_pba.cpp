// bench_ablation_pba.cpp — ablation over the localization-abstraction
// strategy of Section V: none / CBA (Fig. 5) / PBA / CBA+PBA alternation.
//
// The paper argues for CBA because its refine-up strategy is dual to the
// interpolation over-approximation, while PBA "is closer to standard
// interpolation, as they both start from SAT refutation proofs".  This
// sweep measures both on the industrial-like suite (where abstraction
// matters): solve counts, times, and the final number of visible latches.
//
// Usage: bench_ablation_pba [per_engine_seconds] [family_filter]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_circuits/suite.hpp"
#include "mc/engine.hpp"
#include "mc/itpseq_verif.hpp"

using namespace itpseq;

int main(int argc, char** argv) {
  double limit = argc > 1 ? std::atof(argv[1]) : 10.0;
  std::string filter = argc > 2 ? argv[2] : "";
  const mc::AbstractionMode modes[] = {
      mc::AbstractionMode::kNone, mc::AbstractionMode::kCba,
      mc::AbstractionMode::kPba, mc::AbstractionMode::kCbaPba};

  std::printf(
      "# abstraction ablation (Section V); cell = time[s] (k_fp,j_fp) vis=N "
      "or ovf\n");
  std::printf("%-18s %5s", "# instance", "#FF");
  for (auto m : modes) std::printf("  %-26s", to_string(m));
  std::printf("\n");

  struct Tally {
    unsigned solved = 0;
    double total = 0;
    unsigned long long visible = 0, refinements = 0;
  } tally[4];

  for (auto& inst : bench::make_suite()) {
    if (!filter.empty() && inst.family.find(filter) == std::string::npos)
      continue;
    if (!inst.industrial) continue;  // abstraction only pays off at size
    std::printf("%-18s %5zu", inst.name.c_str(), inst.model.num_latches());
    for (int i = 0; i < 4; ++i) {
      mc::EngineOptions opts;
      opts.time_limit_sec = limit;
      opts.serial_alpha = 0.5;  // the paper's SITPSEQ setting
      mc::EngineResult r = mc::ItpSeqEngine(inst.model, 0, opts, modes[i]).run();
      if (r.verdict == mc::Verdict::kUnknown) {
        std::printf("  %-26s", "ovf");
        tally[i].total += limit;
      } else {
        char buf[48];
        std::snprintf(buf, sizeof buf, "%7.3f (%u,%u) vis=%u", r.seconds,
                      r.k_fp, r.j_fp, r.stats.cba_visible_latches);
        std::printf("  %-26s", buf);
        ++tally[i].solved;
        tally[i].total += r.seconds;
        tally[i].visible += r.stats.cba_visible_latches;
        tally[i].refinements += r.stats.cba_refinements;
      }
    }
    std::printf("\n");
  }
  std::printf("# summary:\n");
  for (int i = 0; i < 4; ++i)
    std::printf(
        "#   %-8s solved=%-3u total=%7.1fs visible_sum=%llu refinements=%llu\n",
        to_string(modes[i]), tally[i].solved, tally[i].total, tally[i].visible,
        tally[i].refinements);
  return 0;
}
