// bench_fig7.cpp — regenerates Figure 7 of the paper.
//
// Scatter comparison of the ITPSEQ engine using exact-k versus
// exact-assume-k BMC checks (Section III).  One line per instance with both
// run times; points below the diagonal favour assume-k.  A win/loss/tie
// summary and the geometric-mean speedup are printed at the end.
//
// Usage: bench_fig7 [per_engine_seconds]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "bench_circuits/suite.hpp"
#include "mc/engine.hpp"

using namespace itpseq;

int main(int argc, char** argv) {
  double limit = argc > 1 ? std::atof(argv[1]) : 5.0;

  mc::EngineOptions exact;
  exact.time_limit_sec = limit;
  exact.scheme = cnf::TargetScheme::kExact;
  mc::EngineOptions assume;
  assume.time_limit_sec = limit;
  assume.scheme = cnf::TargetScheme::kExactAssume;

  std::printf("# Figure 7 reproduction: ITPSEQ run time, exact-k vs assume-k\n");
  std::printf("%-18s %12s %12s %8s\n", "# instance", "exact[s]", "assume[s]",
              "verdicts");

  unsigned wins = 0, losses = 0, ties = 0;
  double log_ratio_sum = 0.0;
  unsigned ratio_count = 0;

  for (auto& inst : bench::make_suite()) {
    mc::EngineResult re = mc::check_itpseq(inst.model, 0, exact);
    mc::EngineResult ra = mc::check_itpseq(inst.model, 0, assume);
    double te = re.verdict == mc::Verdict::kUnknown ? limit : re.seconds;
    double ta = ra.verdict == mc::Verdict::kUnknown ? limit : ra.seconds;
    std::printf("%-18s %12.4f %12.4f %4s/%-4s\n", inst.name.c_str(), te, ta,
                mc::to_string(re.verdict), mc::to_string(ra.verdict));
    // Classify as win/loss only above measurement noise: sub-10ms instances
    // and <20% deltas count as ties.
    double margin = 0.2 * std::max(te, ta) + 0.01;
    if (ta + margin < te)
      ++wins;
    else if (te + margin < ta)
      ++losses;
    else
      ++ties;
    if (te > 1e-6 && ta > 1e-6) {
      log_ratio_sum += std::log(te / ta);
      ++ratio_count;
    }
  }
  std::printf("# assume-k faster: %u   exact-k faster: %u   ties: %u\n", wins,
              losses, ties);
  if (ratio_count)
    std::printf("# geometric-mean speedup of assume-k over exact-k: %.3fx\n",
                std::exp(log_ratio_sum / ratio_count));
  return 0;
}
