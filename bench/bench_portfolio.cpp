// bench_portfolio.cpp — threaded portfolio vs. its single members.
//
// For each instance of a mixed PASS/FAIL circuit set: wall-clock of each
// single member engine, of the threaded portfolio (with lemma exchange) and
// of the sequential round-robin portfolio.  The number to watch is the
// "vs best" column — the threaded portfolio should track the best single
// member per instance (small scheduling overhead aside) instead of paying
// the round-robin tax, while the exchange columns count the lemmas that
// crossed engine boundaries.
//
// Usage: bench_portfolio [per_instance_seconds] [family_filter]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_circuits/suite.hpp"
#include "mc/portfolio.hpp"
#include "obs/trace.hpp"

using namespace itpseq;

int main(int argc, char** argv) {
  auto sink = obs::TraceSink::from_env();  // ITPSEQ_TRACE=... opt-in
  double limit = argc > 1 ? std::atof(argv[1]) : 5.0;
  std::string filter = argc > 2 ? argv[2] : "";

  const std::vector<mc::PortfolioMember> members = {
      mc::PortfolioMember::kRandomSim, mc::PortfolioMember::kBmc,
      mc::PortfolioMember::kSItpSeq, mc::PortfolioMember::kPdr};

  std::printf("%-18s %-4s | %9s %9s %9s %9s | %9s %8s %9s | %6s %6s %-10s\n",
              "instance", "exp", "sim", "bmc", "sitpseq", "pdr", "threaded",
              "vs best", "seqrobin", "pub", "cons", "winner");

  double total_threaded = 0.0, total_best = 0.0, total_seq = 0.0;
  unsigned instances = 0, threaded_decided = 0, regressions = 0;
  std::uint64_t total_pub = 0, total_cons = 0;

  for (const auto& inst : bench::make_academic_suite(32)) {
    if (!filter.empty() && inst.family.find(filter) == std::string::npos)
      continue;
    if (inst.expected == bench::Expected::kOpen) continue;

    // Single members, each with the full budget.
    double best = -1.0;
    double singles[4] = {0, 0, 0, 0};
    for (std::size_t i = 0; i < members.size(); ++i) {
      mc::PortfolioOptions po;
      po.members = {members[i]};
      po.jobs = 1;
      po.exchange = false;
      po.time_limit_sec = limit;
      // One slice covering the whole budget: the baseline member must run
      // contiguously, not be restarted by the doubling-slice scheduler.
      po.slice_seconds = limit;
      mc::EngineResult r = mc::check_portfolio(inst.model, 0, po);
      singles[i] = r.seconds;
      if (r.verdict != mc::Verdict::kUnknown &&
          (best < 0 || r.seconds < best))
        best = r.seconds;
    }
    if (best < 0) best = limit;  // nobody decided: the bar is the budget

    mc::PortfolioOptions po;
    po.members = members;
    po.time_limit_sec = limit;
    mc::EngineResult threaded = mc::check_portfolio(inst.model, 0, po);

    mc::PortfolioOptions seq = po;
    seq.jobs = 1;
    mc::EngineResult robin = mc::check_portfolio(inst.model, 0, seq);

    // Allowance: 25% scheduling overhead on top of the best single member,
    // scaled by core contention — with fewer cores than members the racing
    // members share cores until the winner cancels them, costing up to
    // members/cores of the winner's solo time (gone on a wide machine).
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = 1;
    double contention = static_cast<double>(members.size()) /
                        std::min<double>(hw, members.size());
    bool regress = threaded.seconds > best * 1.25 * contention + 0.1;
    // Winner = the member name after the "portfolio/" prefix, if any.
    const char* winner = std::strchr(threaded.engine.c_str(), '/');
    winner = winner != nullptr ? winner + 1 : "-";
    std::printf(
        "%-18s %-4s | %8.2fs %8.2fs %8.2fs %8.2fs | %8.2fs %7.2fx %8.2fs | "
        "%6llu %6llu %-10s%s\n",
        inst.name.c_str(),
        inst.expected == bench::Expected::kPass ? "PASS" : "FAIL", singles[0],
        singles[1], singles[2], singles[3], threaded.seconds,
        threaded.seconds / (best > 1e-9 ? best : 1e-9), robin.seconds,
        static_cast<unsigned long long>(threaded.stats.lemmas_published),
        static_cast<unsigned long long>(threaded.stats.lemmas_consumed),
        winner, regress ? "  <-- slower than best member" : "");

    ++instances;
    total_threaded += threaded.seconds;
    total_best += best;
    total_seq += robin.seconds;
    total_pub += threaded.stats.lemmas_published;
    total_cons += threaded.stats.lemmas_consumed;
    if (threaded.verdict != mc::Verdict::kUnknown) ++threaded_decided;
    if (regress) ++regressions;
  }

  std::printf(
      "\n%u instances | threaded %.2fs vs best-member %.2fs vs round-robin "
      "%.2fs | decided %u | lemmas published %llu consumed %llu | "
      "regressions %u\n",
      instances, total_threaded, total_best, total_seq, threaded_decided,
      static_cast<unsigned long long>(total_pub),
      static_cast<unsigned long long>(total_cons), regressions);
  return 0;
}
