// bench_ablation_itpsys.cpp — ablation over the labeled interpolation
// system (McMillan / Pudlak / inverse McMillan) used to extract
// interpolants from the refutation proofs.
//
// The paper (and its references [3], [9]) use McMillan's asymmetric system,
// which yields the strongest — smallest — state sets.  Pudlak's symmetric
// system and the inverse (dual) McMillan system produce progressively
// weaker over-approximations from the *same* proofs, trading convergence
// depth against interpolant size.  This sweep quantifies that trade-off on
// both the standard-ITP engine (Fig. 1) and the parallel ITPSEQ engine
// (Fig. 2).
//
// Usage: bench_ablation_itpsys [per_engine_seconds] [family_filter]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_circuits/suite.hpp"
#include "mc/engine.hpp"

using namespace itpseq;

namespace {

struct Tally {
  unsigned solved = 0;
  double total = 0;
  std::size_t max_itp = 0;
};

void run_cell(const bench::Instance& inst, bool seq, itp::System sys,
              double limit, Tally& tally) {
  mc::EngineOptions opts;
  opts.time_limit_sec = limit;
  opts.itp_system = sys;
  mc::EngineResult r = seq ? mc::check_itpseq(inst.model, 0, opts)
                           : mc::check_itp(inst.model, 0, opts);
  if (r.verdict == mc::Verdict::kUnknown) {
    std::printf("  %-18s", "ovf");
    tally.total += limit;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%7.3f (%u,%u)", r.seconds, r.k_fp, r.j_fp);
    std::printf("  %-18s", buf);
    ++tally.solved;
    tally.total += r.seconds;
  }
  if (r.stats.max_itp_nodes > tally.max_itp)
    tally.max_itp = r.stats.max_itp_nodes;
}

}  // namespace

int main(int argc, char** argv) {
  double limit = argc > 1 ? std::atof(argv[1]) : 5.0;
  std::string filter = argc > 2 ? argv[2] : "";
  const itp::System systems[] = {itp::System::kMcMillan, itp::System::kPudlak,
                                 itp::System::kInverseMcMillan};
  const char* sys_names[] = {"mcmillan", "pudlak", "inv-mcmillan"};

  std::printf(
      "# interpolation-system ablation; cell = time[s] (k_fp,j_fp) or ovf\n");
  std::printf("%-18s", "# instance");
  for (const char* e : {"ITP", "SEQ"})
    for (const char* s : sys_names) std::printf("  %s/%-13s", e, s);
  std::printf("\n");

  Tally tally[2][3];
  for (auto& inst : bench::make_suite()) {
    if (!filter.empty() && inst.family.find(filter) == std::string::npos)
      continue;
    if (inst.industrial) continue;  // keep the sweep CI-sized
    std::printf("%-18s", inst.name.c_str());
    for (int e = 0; e < 2; ++e)
      for (int s = 0; s < 3; ++s)
        run_cell(inst, e == 1, systems[s], limit, tally[e][s]);
    std::printf("\n");
  }
  std::printf("# summary:\n");
  for (int e = 0; e < 2; ++e)
    for (int s = 0; s < 3; ++s)
      std::printf("#   %s/%-13s solved=%-3u total=%7.1fs max_itp_nodes=%zu\n",
                  e ? "SEQ" : "ITP", sys_names[s], tally[e][s].solved,
                  tally[e][s].total, tally[e][s].max_itp);
  return 0;
}
