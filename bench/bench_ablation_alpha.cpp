// bench_ablation_alpha.cpp — ablation over the serial fraction alpha_s of
// Fig. 4 (0 = parallel ITPSEQ ... 1 = fully serial).  The paper fixes
// alpha_s = 0.5 for SITPSEQ; this sweep shows the trade-off between extra
// SAT calls (serial) and weaker per-term abstraction (parallel).
//
// Usage: bench_ablation_alpha [per_engine_seconds] [family_filter]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_circuits/suite.hpp"
#include "mc/engine.hpp"
#include "mc/itpseq_verif.hpp"

using namespace itpseq;

int main(int argc, char** argv) {
  double limit = argc > 1 ? std::atof(argv[1]) : 5.0;
  std::string filter = argc > 2 ? argv[2] : "";
  const double alphas[] = {0.0, 0.25, 0.5, 0.75, 1.0};

  std::printf("# alpha_s ablation (SITPSEQ, Fig. 4); cell = time[s] (k_fp,j_fp) or ovf\n");
  std::printf("%-18s", "# instance");
  for (double a : alphas) std::printf("  a=%-4.2f            ", a);
  std::printf("\n");

  struct Tally {
    unsigned solved = 0;
    double total = 0;
  } tally[5];

  for (auto& inst : bench::make_suite()) {
    if (!filter.empty() && inst.family.find(filter) == std::string::npos)
      continue;
    std::printf("%-18s", inst.name.c_str());
    for (int i = 0; i < 5; ++i) {
      mc::EngineOptions opts;
      opts.time_limit_sec = limit;
      opts.serial_alpha = alphas[i];
      mc::EngineResult r = mc::ItpSeqEngine(inst.model, 0, opts).run();
      if (r.verdict == mc::Verdict::kUnknown) {
        std::printf("  %-18s", "ovf");
        tally[i].total += limit;
      } else {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%7.3f (%u,%u)", r.seconds, r.k_fp,
                      r.j_fp);
        std::printf("  %-18s", buf);
        ++tally[i].solved;
        tally[i].total += r.seconds;
      }
    }
    std::printf("\n");
  }
  std::printf("# summary:");
  for (int i = 0; i < 5; ++i)
    std::printf("  a=%.2f solved=%u total=%.1fs", alphas[i], tally[i].solved,
                tally[i].total);
  std::printf("\n");
  return 0;
}
