// bench_micro_bdd.cpp — google-benchmark microbenchmarks for the BDD
// package: image computation and full reachability on scaling circuits.
#include <benchmark/benchmark.h>

#include "bdd/reach.hpp"
#include "bdd/reorder.hpp"
#include "bench_circuits/generators.hpp"

using namespace itpseq;

namespace {

void BM_BddBuildRelations(benchmark::State& state) {
  aig::Aig g = bench::token_ring(static_cast<unsigned>(state.range(0)), false);
  for (auto _ : state) {
    bdd::SymbolicModel m(g);
    benchmark::DoNotOptimize(m.init());
  }
}
BENCHMARK(BM_BddBuildRelations)->Arg(8)->Arg(16)->Arg(32);

void BM_BddImage(benchmark::State& state) {
  aig::Aig g = bench::counter(static_cast<unsigned>(state.range(0)),
                              (1ull << state.range(0)) - 3, 1);
  bdd::SymbolicModel m(g);
  bdd::BddRef s = m.init();
  for (auto _ : state) {
    bdd::BddRef img = m.image(s);
    benchmark::DoNotOptimize(img);
    s = m.mgr().apply_or(s, img);
  }
}
BENCHMARK(BM_BddImage)->Arg(6)->Arg(10)->Arg(14);

void BM_BddForwardReach(benchmark::State& state) {
  aig::Aig g = bench::counter(static_cast<unsigned>(state.range(0)),
                              (1ull << state.range(0)) - 3,
                              (1ull << state.range(0)) - 1);
  for (auto _ : state) {
    bdd::SymbolicModel m(g);
    bdd::ReachResult r = bdd::forward_reach(m);
    benchmark::DoNotOptimize(r);
  }
  state.counters["steps"] = static_cast<double>((1ull << state.range(0)) - 4);
}
BENCHMARK(BM_BddForwardReach)->Arg(5)->Arg(7)->Arg(9);

void BM_BddXorChain(benchmark::State& state) {
  for (auto _ : state) {
    bdd::BddManager m(static_cast<unsigned>(state.range(0)));
    bdd::BddRef f = m.bdd_true();
    for (unsigned i = 0; i < static_cast<unsigned>(state.range(0)); ++i)
      f = m.apply_xor(f, m.var(i));
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_BddXorChain)->Arg(16)->Arg(64)->Arg(256);

void BM_BddSiftComparator(benchmark::State& state) {
  // Sifting must discover the interleaved order of the n-pair comparator
  // starting from the (exponential) blocked order.
  const unsigned n = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    bdd::BddManager m(2 * n);
    bdd::BddRef f = m.bdd_true();
    for (unsigned i = 0; i < n; ++i)
      f = m.apply_and(f, m.apply_equiv(m.var(i), m.var(n + i)));
    bdd::ReorderResult r = bdd::sift_order(m, {f});
    benchmark::DoNotOptimize(r);
    state.counters["before"] = static_cast<double>(bdd::shared_size(m, {f}));
    state.counters["after"] = static_cast<double>(r.dag_size);
  }
}
BENCHMARK(BM_BddSiftComparator)->Arg(4)->Arg(6)->Arg(8);

void BM_BddReorderIdentity(benchmark::State& state) {
  // Pure rebuild cost (identity order) on the interleaved comparator.
  const unsigned n = static_cast<unsigned>(state.range(0));
  bdd::BddManager m(2 * n);
  bdd::BddRef f = m.bdd_true();
  for (unsigned i = 0; i < n; ++i)
    f = m.apply_and(f, m.apply_equiv(m.var(2 * i), m.var(2 * i + 1)));
  bdd::VarOrder id;
  for (unsigned i = 0; i < 2 * n; ++i) id.push_back(i);
  for (auto _ : state) {
    bdd::ReorderResult r = bdd::reorder(m, {f}, id);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_BddReorderIdentity)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
