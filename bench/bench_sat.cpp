// bench_sat.cpp — CDCL solver throughput over a built-in workload suite,
// with a machine-readable trajectory file (BENCH_sat.json).
//
// Workloads cover the shapes the engines generate: BMC unrollings (Tseitin
// CNF, heavy on binary clauses), combinatorial UNSAT cores (pigeonhole),
// random 3-SAT at and below the threshold, a pure binary implication
// network (the inline-binary-watcher showcase), and a PDR-shaped
// incremental session (one long-lived solver, activation-literal clause
// retirement, arena GC).  Per workload: propagations/s, conflicts/s,
// binary-propagation share, arena footprint and GC activity.
//
// The JSON file is the perf-trajectory baseline: stable keys, one entry
// per workload plus a totals block — diff it across commits.
//
// Usage: bench_sat [reps_scale|quick] [json_path]
//
// `quick` runs a seconds-scale slice of the suite (the ctest `perf-smoke`
// label) — a sanity check that the drivers, counters and JSON writer work,
// not a measurement.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "bench_circuits/generators.hpp"
#include "cnf/unroller.hpp"
#include "json_writer.hpp"
#include "obs/trace.hpp"
#include "sat/preprocess.hpp"
#include "sat/solver.hpp"
#include "sat_workloads.hpp"

using namespace itpseq;

namespace {

using Clock = std::chrono::steady_clock;

struct WorkloadResult {
  std::string name;
  double solve_sec = 0.0;
  sat::SolverStats stats;        // summed over reps
  std::size_t arena_bytes = 0;   // summed final arenas
  unsigned reps = 0;
  bool inprocess = true;         // solver-side inprocessing enabled?
};

double props_per_sec(const WorkloadResult& r) {
  return r.solve_sec > 0 ? static_cast<double>(r.stats.propagations) / r.solve_sec
                         : 0.0;
}

/// Run `body(solver)` (which must build AND solve), timing only the span
/// the body reports via its return value.  `inprocess` toggles the solver's
/// built-in simplification — paired on/off entries are the ablation rows in
/// BENCH_sat.json.
template <typename Body>
WorkloadResult run_workload(const std::string& name, unsigned reps, Body body,
                            bool inprocess = true) {
  WorkloadResult r;
  r.name = name;
  r.reps = reps;
  r.inprocess = inprocess;
  for (unsigned i = 0; i < reps; ++i) {
    sat::Solver s;
    s.set_inprocess(inprocess);
    r.solve_sec += body(s, i);
    r.stats += s.stats();
    r.arena_bytes += s.arena_bytes();
  }
  return r;
}

double timed_solve(sat::Solver& s) {
  auto t0 = Clock::now();
  s.solve();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// --- workload bodies (shapes shared with bench_micro_sat) -------------------

double bmc_unroll(sat::Solver& s, unsigned) {
  aig::Aig g = bench::queue(16, true);
  cnf::Unroller unr(g, s);
  bench::build_bmc_queue(s, unr, 24);
  return timed_solve(s);
}

double bmc_deep(sat::Solver& s, unsigned) {
  aig::Aig g = bench::queue(16, true);
  cnf::Unroller unr(g, s);
  bench::build_bmc_queue(s, unr, 64);
  return timed_solve(s);
}

double pigeonhole(sat::Solver& s, unsigned) {
  bench::build_pigeonhole(s, 8);
  return timed_solve(s);
}

double random3sat(sat::Solver& s, unsigned rep) {
  bench::build_random3sat(s, 120, 4.26, 9000 + rep);
  return timed_solve(s);
}

double big3sat(sat::Solver& s, unsigned rep) {
  // Under-constrained: SAT, propagation-heavy, real cache pressure.
  bench::build_random3sat(s, 100000, 3.0, 11 + rep);
  return timed_solve(s);
}

double binary_net(sat::Solver& s, unsigned rep) {
  bench::build_binary_net(s, 400000, 5 + rep);
  return timed_solve(s);
}

double incremental_gc(sat::Solver& s, unsigned rep) {
  auto t0 = Clock::now();
  bench::run_incremental_gc_session(s, 4000, 77 + rep);
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Preprocessor front-end: the standalone CNF-level sat::Preprocessor
// squeezes the formula once up front, a fresh solver (inprocessing off —
// the simplification already happened) solves the residue, and a SAT model
// is extended back over the eliminated variables.  This is the proof-free
// one-shot pipeline described in sat/preprocess.hpp; compare against the
// plain `random3sat` rows to see what up-front BVE buys.
double preproc3sat(sat::Solver& s, unsigned rep) {
  const unsigned nvars = 120;
  auto t0 = Clock::now();
  sat::Preprocessor pre(nvars);
  bench::gen_random3sat(nvars, 4.26, 9000 + rep, [&](std::vector<sat::Lit> l) {
    pre.add_clause(std::move(l));
  });
  pre.run();
  for (unsigned v = 0; v < nvars; ++v) s.new_var();
  if (!pre.unsat()) {
    for (const auto& cl : pre.clauses()) s.add_clause(cl);
    if (s.solve() == sat::Status::kSat) {
      std::vector<sat::LBool> model = s.model();
      pre.extend_model(model);
    }
  }
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Seconds-scale variants for the `quick` (perf-smoke) mode.
double pigeonhole_quick(sat::Solver& s, unsigned) {
  bench::build_pigeonhole(s, 7);
  return timed_solve(s);
}

double binary_net_quick(sat::Solver& s, unsigned rep) {
  bench::build_binary_net(s, 50000, 5 + rep);
  return timed_solve(s);
}

double incremental_gc_quick(sat::Solver& s, unsigned rep) {
  auto t0 = Clock::now();
  bench::run_incremental_gc_session(s, 500, 77 + rep);
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  // ITPSEQ_TRACE=file [ITPSEQ_TRACE_FORMAT=chrome] [ITPSEQ_PROGRESS=1]
  // trace a bench run without flag plumbing; null when the env is unset.
  auto sink = obs::TraceSink::from_env();
  const bool quick = argc > 1 && std::string(argv[1]) == "quick";
  unsigned scale = argc > 1 && !quick ? static_cast<unsigned>(std::atoi(argv[1])) : 1;
  if (scale == 0) scale = 1;
  std::string json_path = argc > 2 ? argv[2] : "BENCH_sat.json";

  std::vector<WorkloadResult> results;
  // The `*_noinpr` rows rerun a workload with the solver's inprocessing
  // switched off — the in-tree ablation for the simplification pipeline.
  // `preproc3sat` instead runs the standalone Preprocessor front-end over
  // the same formulas as `random3sat`.
  if (quick) {
    results.push_back(run_workload("bmc_unroll", 1, bmc_unroll));
    results.push_back(run_workload("pigeonhole7", 1, pigeonhole_quick));
    results.push_back(
        run_workload("pigeonhole7_noinpr", 1, pigeonhole_quick, false));
    results.push_back(run_workload("random3sat", 2, random3sat));
    results.push_back(run_workload("preproc3sat", 2, preproc3sat, false));
    results.push_back(run_workload("binary_net", 1, binary_net_quick));
    results.push_back(run_workload("incremental_gc", 1, incremental_gc_quick));
  } else {
    results.push_back(run_workload("bmc_unroll", 8 * scale, bmc_unroll));
    results.push_back(
        run_workload("bmc_unroll_noinpr", 8 * scale, bmc_unroll, false));
    results.push_back(run_workload("bmc_deep", 2 * scale, bmc_deep));
    results.push_back(run_workload("pigeonhole8", 2 * scale, pigeonhole));
    results.push_back(
        run_workload("pigeonhole8_noinpr", 2 * scale, pigeonhole, false));
    results.push_back(run_workload("random3sat", 16 * scale, random3sat));
    results.push_back(
        run_workload("random3sat_noinpr", 16 * scale, random3sat, false));
    results.push_back(run_workload("preproc3sat", 16 * scale, preproc3sat, false));
    results.push_back(run_workload("big3sat", 1 * scale, big3sat));
    results.push_back(run_workload("binary_net", 1 * scale, binary_net));
    results.push_back(run_workload("incremental_gc", 1 * scale, incremental_gc));
  }

  std::printf("%-16s %12s %10s %6s %10s %8s %8s %6s %10s\n", "workload",
              "props/s", "confl/s", "bin%", "props", "arenaKB", "peakKB",
              "gc", "reclaimKB");
  WorkloadResult total;
  total.name = "TOTAL";
  for (const auto& r : results) {
    double binpct = r.stats.propagations
                        ? 100.0 * static_cast<double>(r.stats.bin_propagations) /
                              static_cast<double>(r.stats.propagations)
                        : 0.0;
    std::printf("%-16s %12.0f %10.0f %5.1f%% %10llu %8zu %8llu %6llu %10llu\n",
                r.name.c_str(), props_per_sec(r),
                r.solve_sec > 0
                    ? static_cast<double>(r.stats.conflicts) / r.solve_sec
                    : 0.0,
                binpct,
                static_cast<unsigned long long>(r.stats.propagations),
                r.arena_bytes / 1024,
                static_cast<unsigned long long>(r.stats.peak_arena_bytes / 1024),
                static_cast<unsigned long long>(r.stats.gc_runs),
                static_cast<unsigned long long>(r.stats.wasted_bytes_reclaimed /
                                                1024));
    total.solve_sec += r.solve_sec;
    total.stats += r.stats;
    total.arena_bytes += r.arena_bytes;
  }
  std::printf("%-16s %12.0f %10.0f %5.1f%% %10llu %8zu %8llu %6llu %10llu\n",
              "TOTAL", props_per_sec(total),
              total.solve_sec > 0
                  ? static_cast<double>(total.stats.conflicts) / total.solve_sec
                  : 0.0,
              total.stats.propagations
                  ? 100.0 * static_cast<double>(total.stats.bin_propagations) /
                        static_cast<double>(total.stats.propagations)
                  : 0.0,
              static_cast<unsigned long long>(total.stats.propagations),
              total.arena_bytes / 1024,
              static_cast<unsigned long long>(total.stats.peak_arena_bytes / 1024),
              static_cast<unsigned long long>(total.stats.gc_runs),
              static_cast<unsigned long long>(total.stats.wasted_bytes_reclaimed /
                                              1024));

  bench::JsonWriter json(json_path);
  json.begin_object();
  json.field("bench", "sat");
  json.field("scale", scale);
  json.field("quick", quick);
  json.begin_array("workloads");
  auto emit = [&](const WorkloadResult& r) {
    json.begin_object();
    json.field("name", r.name);
    json.field("reps", r.reps);
    json.field("solve_sec", r.solve_sec);
    json.field("propagations", r.stats.propagations);
    json.field("bin_propagations", r.stats.bin_propagations);
    json.field("props_per_sec", props_per_sec(r));
    json.field("conflicts", r.stats.conflicts);
    json.field("conflicts_per_sec",
               r.solve_sec > 0
                   ? static_cast<double>(r.stats.conflicts) / r.solve_sec
                   : 0.0);
    json.field("decisions", r.stats.decisions);
    json.field("restarts", r.stats.restarts);
    json.field("db_reductions", r.stats.db_reductions);
    json.field("gc_runs", r.stats.gc_runs);
    json.field("arena_bytes", r.arena_bytes);
    json.field("arena_peak_bytes", r.stats.peak_arena_bytes);
    json.field("wasted_bytes_reclaimed", r.stats.wasted_bytes_reclaimed);
    json.field("removed_satisfied", r.stats.removed_satisfied);
    json.field("inprocess", r.inprocess);
    json.field("inprocess_rounds", r.stats.inprocess_rounds);
    json.field("subsumed", r.stats.subsumed);
    json.field("strengthened", r.stats.strengthened);
    json.field("vars_eliminated", r.stats.vars_eliminated);
    json.field("vivified", r.stats.vivified);
    json.field("probed", r.stats.probed);
    json.field("failed_literals", r.stats.failed_literals);
    json.field("hyper_binaries", r.stats.hyper_binaries);
    json.field("restarts_blocked", r.stats.restarts_blocked);
    json.field("learned_core", r.stats.learned_core);
    json.field("learned_mid", r.stats.learned_mid);
    json.field("learned_local", r.stats.learned_local);
    json.begin_array("glue_hist");
    for (auto g : r.stats.glue_hist) json.value(g);
    json.end_array();
    json.end_object();
  };
  for (const auto& r : results) emit(r);
  emit(total);
  json.end_array();
  json.end_object();
  if (!json.write()) {
    std::fprintf(stderr, "bench_sat: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\ntrajectory written to %s\n", json_path.c_str());
  return 0;
}
