// bench_ablation_fraig.cpp — ablation over interpolant compaction by SAT
// sweeping (EngineOptions::fraig_interpolants).
//
// Interpolants built from resolution proofs are redundant circuits; the
// paper's substrate (like ABC/PdTRAV) compacts them before they enter the
// reachability state sets.  This sweep measures the trade-off on the
// parallel ITPSEQ engine: SAT time spent sweeping versus smaller state-set
// AIGs (max interpolant cone and final state-graph size).
//
// Usage: bench_ablation_fraig [per_engine_seconds] [family_filter]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_circuits/suite.hpp"
#include "mc/engine.hpp"

using namespace itpseq;

int main(int argc, char** argv) {
  double limit = argc > 1 ? std::atof(argv[1]) : 5.0;
  std::string filter = argc > 2 ? argv[2] : "";

  std::printf(
      "# fraig-interpolants ablation (ITPSEQ); cell = time[s] k_fp itp=N "
      "aig=N or ovf\n");
  std::printf("%-18s  %-34s  %-34s\n", "# instance", "plain", "fraig");

  struct Tally {
    unsigned solved = 0;
    double total = 0;
    unsigned long long itp_nodes = 0, aig_nodes = 0;
  } tally[2];

  for (auto& inst : bench::make_suite()) {
    if (!filter.empty() && inst.family.find(filter) == std::string::npos)
      continue;
    std::printf("%-18s", inst.name.c_str());
    for (int i = 0; i < 2; ++i) {
      mc::EngineOptions opts;
      opts.time_limit_sec = limit;
      opts.fraig_interpolants = i == 1;
      mc::EngineResult r = mc::check_itpseq(inst.model, 0, opts);
      if (r.verdict == mc::Verdict::kUnknown) {
        std::printf("  %-34s", "ovf");
        tally[i].total += limit;
      } else {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%7.3f k=%-3u itp=%-6zu aig=%-7zu",
                      r.seconds, r.k_fp, r.stats.max_itp_nodes,
                      r.stats.state_aig_nodes);
        std::printf("  %-34s", buf);
        ++tally[i].solved;
        tally[i].total += r.seconds;
        tally[i].itp_nodes += r.stats.max_itp_nodes;
        tally[i].aig_nodes += r.stats.state_aig_nodes;
      }
    }
    std::printf("\n");
  }
  std::printf("# summary:\n");
  const char* names[] = {"plain", "fraig"};
  for (int i = 0; i < 2; ++i)
    std::printf(
        "#   %-6s solved=%-3u total=%7.1fs sum_max_itp=%llu sum_state_aig=%llu\n",
        names[i], tally[i].solved, tally[i].total, tally[i].itp_nodes,
        tally[i].aig_nodes);
  return 0;
}
