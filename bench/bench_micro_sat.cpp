// bench_micro_sat.cpp — google-benchmark microbenchmarks for the CDCL
// solver: BMC-shaped instances with and without proof logging (quantifying
// the overhead of the resolution chain recording that interpolation needs),
// propagation-throughput benches over the flat clause arena, the inline
// binary-watcher fast path, and the incremental-session arena GC.
// The props/s counter is the headline propagation-throughput figure; the
// non-gbench bench_sat driver reports the same suite with JSON output.
#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "bench_circuits/generators.hpp"
#include "cnf/unroller.hpp"
#include "sat/solver.hpp"
#include "sat_workloads.hpp"

using namespace itpseq;

namespace {

void solve_bmc(const aig::Aig& model, unsigned k, bool proof,
               cnf::TargetScheme scheme, benchmark::State& state) {
  std::uint64_t conflicts = 0, props = 0;
  std::uint64_t core = 0, mid = 0, local = 0;  // learned-clause tiers
  for (auto _ : state) {
    sat::Solver s;
    if (proof) s.enable_proof();
    cnf::Unroller unr(model, s);
    unr.assert_init(0);
    for (unsigned t = 0; t < k; ++t) unr.add_transition(t, t + 1);
    unr.assert_target(k, scheme, k + 1);
    sat::Status st = s.solve();
    benchmark::DoNotOptimize(st);
    conflicts += s.stats().conflicts;
    props += s.stats().propagations;
    core += s.stats().learned_core;
    mid += s.stats().learned_mid;
    local += s.stats().learned_local;
  }
  state.counters["conflicts"] =
      benchmark::Counter(static_cast<double>(conflicts),
                         benchmark::Counter::kAvgIterations);
  state.counters["props/s"] = benchmark::Counter(
      static_cast<double>(props), benchmark::Counter::kIsRate);
  state.counters["glue_core"] = benchmark::Counter(
      static_cast<double>(core), benchmark::Counter::kAvgIterations);
  state.counters["glue_mid"] = benchmark::Counter(
      static_cast<double>(mid), benchmark::Counter::kAvgIterations);
  state.counters["glue_local"] = benchmark::Counter(
      static_cast<double>(local), benchmark::Counter::kAvgIterations);
}

void BM_BmcUnsat_NoProof(benchmark::State& state) {
  aig::Aig g = bench::counter(6, 61, 45);
  solve_bmc(g, static_cast<unsigned>(state.range(0)), false,
            cnf::TargetScheme::kExact, state);
}
BENCHMARK(BM_BmcUnsat_NoProof)->Arg(10)->Arg(20)->Arg(40);

void BM_BmcUnsat_WithProof(benchmark::State& state) {
  aig::Aig g = bench::counter(6, 61, 45);
  solve_bmc(g, static_cast<unsigned>(state.range(0)), true,
            cnf::TargetScheme::kExact, state);
}
BENCHMARK(BM_BmcUnsat_WithProof)->Arg(10)->Arg(20)->Arg(40);

void BM_BmcSchemes(benchmark::State& state) {
  // Same instance under the three target schemes (Section III).
  aig::Aig g = bench::feistel_mixer(12, 20, 7);
  auto scheme = static_cast<cnf::TargetScheme>(state.range(0));
  solve_bmc(g, 12, false, scheme, state);
}
BENCHMARK(BM_BmcSchemes)->Arg(0)->Arg(1)->Arg(2)->ArgNames({"scheme"});

void BM_PigeonHole(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));  // n+1 pigeons, n holes
  std::uint64_t props = 0;
  for (auto _ : state) {
    sat::Solver s;
    s.enable_proof();
    std::vector<std::vector<sat::Var>> p(n + 1, std::vector<sat::Var>(n));
    for (auto& row : p)
      for (auto& v : row) v = s.new_var();
    for (int i = 0; i <= n; ++i) {
      std::vector<sat::Lit> cl;
      for (int h = 0; h < n; ++h) cl.push_back(sat::mk_lit(p[i][h]));
      s.add_clause(cl, 1);
    }
    for (int h = 0; h < n; ++h)
      for (int i = 0; i <= n; ++i)
        for (int j = i + 1; j <= n; ++j)
          s.add_clause({sat::mk_lit(p[i][h], true), sat::mk_lit(p[j][h], true)}, 2);
    sat::Status st = s.solve();
    benchmark::DoNotOptimize(st);
    props += s.stats().propagations;
  }
  state.counters["props/s"] = benchmark::Counter(
      static_cast<double>(props), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PigeonHole)->Arg(5)->Arg(6)->Arg(7);

void BM_BinaryNetwork(benchmark::State& state) {
  // Pure binary implication network (ring + chords, bench::build_binary_net
  // — the same formula bench_sat's trajectory measures): propagation
  // resolves entirely from the inline binary watchers.
  const unsigned nv = static_cast<unsigned>(state.range(0));
  std::uint64_t props = 0;
  for (auto _ : state) {
    state.PauseTiming();  // CNF construction is not the measured quantity
    sat::Solver s;
    bench::build_binary_net(s, nv, 5);
    state.ResumeTiming();
    sat::Status st = s.solve();
    benchmark::DoNotOptimize(st);
    props += s.stats().propagations;
  }
  state.counters["props/s"] = benchmark::Counter(
      static_cast<double>(props), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BinaryNetwork)->Arg(100000)->Arg(400000);

void BM_IncrementalGc(benchmark::State& state) {
  // PDR-shaped incremental session (bench::run_incremental_gc_session,
  // shared with bench_sat): guarded clauses retired by activation units,
  // thousands of assumption queries on one solver; exercises
  // remove_satisfied and the arena garbage collector.
  std::uint64_t props = 0, gc = 0;
  for (auto _ : state) {
    sat::Solver s;
    bench::run_incremental_gc_session(s, static_cast<int>(state.range(0)), 77);
    props += s.stats().propagations;
    gc += s.stats().gc_runs;
  }
  state.counters["props/s"] = benchmark::Counter(
      static_cast<double>(props), benchmark::Counter::kIsRate);
  state.counters["gc"] = benchmark::Counter(
      static_cast<double>(gc), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_IncrementalGc)->Arg(1000)->Arg(4000);

}  // namespace

BENCHMARK_MAIN();
