// bench_micro_sat.cpp — google-benchmark microbenchmarks for the CDCL
// solver: BMC-shaped instances with and without proof logging, quantifying
// the overhead of the resolution chain recording that interpolation needs.
#include <benchmark/benchmark.h>

#include "bench_circuits/generators.hpp"
#include "cnf/unroller.hpp"
#include "sat/solver.hpp"

using namespace itpseq;

namespace {

void solve_bmc(const aig::Aig& model, unsigned k, bool proof,
               cnf::TargetScheme scheme, benchmark::State& state) {
  std::uint64_t conflicts = 0;
  for (auto _ : state) {
    sat::Solver s;
    if (proof) s.enable_proof();
    cnf::Unroller unr(model, s);
    unr.assert_init(0);
    for (unsigned t = 0; t < k; ++t) unr.add_transition(t, t + 1);
    unr.assert_target(k, scheme, k + 1);
    sat::Status st = s.solve();
    benchmark::DoNotOptimize(st);
    conflicts += s.stats().conflicts;
  }
  state.counters["conflicts"] =
      benchmark::Counter(static_cast<double>(conflicts),
                         benchmark::Counter::kAvgIterations);
}

void BM_BmcUnsat_NoProof(benchmark::State& state) {
  aig::Aig g = bench::counter(6, 61, 45);
  solve_bmc(g, static_cast<unsigned>(state.range(0)), false,
            cnf::TargetScheme::kExact, state);
}
BENCHMARK(BM_BmcUnsat_NoProof)->Arg(10)->Arg(20)->Arg(40);

void BM_BmcUnsat_WithProof(benchmark::State& state) {
  aig::Aig g = bench::counter(6, 61, 45);
  solve_bmc(g, static_cast<unsigned>(state.range(0)), true,
            cnf::TargetScheme::kExact, state);
}
BENCHMARK(BM_BmcUnsat_WithProof)->Arg(10)->Arg(20)->Arg(40);

void BM_BmcSchemes(benchmark::State& state) {
  // Same instance under the three target schemes (Section III).
  aig::Aig g = bench::feistel_mixer(12, 20, 7);
  auto scheme = static_cast<cnf::TargetScheme>(state.range(0));
  solve_bmc(g, 12, false, scheme, state);
}
BENCHMARK(BM_BmcSchemes)->Arg(0)->Arg(1)->Arg(2)->ArgNames({"scheme"});

void BM_PigeonHole(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));  // n+1 pigeons, n holes
  for (auto _ : state) {
    sat::Solver s;
    s.enable_proof();
    std::vector<std::vector<sat::Var>> p(n + 1, std::vector<sat::Var>(n));
    for (auto& row : p)
      for (auto& v : row) v = s.new_var();
    for (int i = 0; i <= n; ++i) {
      std::vector<sat::Lit> cl;
      for (int h = 0; h < n; ++h) cl.push_back(sat::mk_lit(p[i][h]));
      s.add_clause(cl, 1);
    }
    for (int h = 0; h < n; ++h)
      for (int i = 0; i <= n; ++i)
        for (int j = i + 1; j <= n; ++j)
          s.add_clause({sat::mk_lit(p[i][h], true), sat::mk_lit(p[j][h], true)}, 2);
    sat::Status st = s.solve();
    benchmark::DoNotOptimize(st);
  }
}
BENCHMARK(BM_PigeonHole)->Arg(5)->Arg(6)->Arg(7);

}  // namespace

BENCHMARK_MAIN();
