"""Project-wide model for itpseq-lint: parsed files, the call graph, the
arena-allocator set and the member-mutator sets.

Two fixpoints drive the interesting rules:

  * allocators(): the set of functions that may (transitively) allocate in
    the clause arena.  Seeds are functions whose body performs a capacity-
    changing operation on `arena_` (push_back / insert / resize / swap /
    ...); the closure adds every function that calls — by simple name — a
    function already in the set.  Name-based linking over one project is
    deliberate: it over-approximates (safe direction for a linter) and
    needs no type information.

  * mutators(): per function, the set of member-container *root names* it
    may (transitively) mutate, where "mutate" is a capacity-changing method
    call rooted at that name (`occ_[l].push_back(...)`, `db_.erase(...)`,
    `rec.clauses.clear()` roots `occ_`, `db_`, `clauses`).  Rule L4 uses
    this to catch mutation of a list while a range-for iterates it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from cxx import Func, Tok, extract_functions, match_brackets, suppressions, tokenize

# Capacity-changing container methods: calling one of these through a name
# may reallocate the buffer behind every outstanding reference/iterator.
MUTATING_METHODS = {
    "push_back", "emplace_back", "pop_back", "insert", "emplace", "erase",
    "clear", "resize", "reserve", "assign", "swap", "shrink_to_fit",
    "append", "push_front", "pop_front",
}

CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof", "catch",
    "decltype", "noexcept", "static_assert", "new", "delete", "throw",
    "assert", "static_cast", "const_cast", "reinterpret_cast",
    "dynamic_cast", "alignas", "defined", "do", "else", "case",
}


@dataclass
class SourceFile:
    path: str       # repo-relative path the rules see (fixtures may pretend)
    text: str
    toks: list
    match: dict
    funcs: list
    sup: dict       # line -> suppressed rule ids

    def body_tokens(self, fn: Func):
        return self.toks[fn.body_open + 1: fn.body_close]


def parse_source(path: str, text: str) -> SourceFile:
    toks = tokenize(text)
    match = match_brackets(toks)
    funcs = extract_functions(toks, match)
    return SourceFile(path, text, toks, match, funcs, suppressions(text))


def _callees(sf: SourceFile, fn: Func):
    """Simple names of functions called in fn's body: `name (` shapes that
    are not control keywords, declarations or member-method mutations (those
    are modeled separately)."""
    out = set()
    toks = sf.toks
    for t in sf.body_tokens(fn):
        if t.kind != "id" or t.text in CONTROL_KEYWORDS:
            continue
        nxt = toks[t.i + 1] if t.i + 1 < len(toks) else None
        if nxt is None or nxt.kind != "punct" or nxt.text != "(":
            continue
        out.add(t.text)
    return out


def _arena_alloc_seed(sf: SourceFile, fn: Func, arena_names) -> bool:
    """Does fn's own body do a capacity-changing operation on an arena
    member (default `arena_`)?"""
    toks = sf.toks
    for t in sf.body_tokens(fn):
        if t.kind == "id" and t.text in arena_names:
            j = t.i + 1
            if j < len(toks) and toks[j].kind == "punct" and toks[j].text == ".":
                k = j + 1
                if (k < len(toks) and toks[k].kind == "id"
                        and toks[k].text in MUTATING_METHODS):
                    return True
    return False


def _member_mutations(sf: SourceFile, fn: Func):
    """Root names of container members fn's own body mutates.  Shapes:
    ROOT.mut(...)  and  ROOT[...].mut(...)  — ROOT is the identifier right
    before the '.' or the '['."""
    out = set()
    toks = sf.toks
    n = len(toks)
    for t in sf.body_tokens(fn):
        if t.kind != "id" or t.text in MUTATING_METHODS:
            continue
        j = t.i + 1
        if j < n and toks[j].kind == "punct" and toks[j].text == "[":
            j = sf.match.get(j)
            if j is None:
                continue
            j += 1
        if not (j < n and toks[j].kind == "punct" and toks[j].text == "."):
            continue
        k = j + 1
        if (k + 1 < n and toks[k].kind == "id"
                and toks[k].text in MUTATING_METHODS
                and toks[k + 1].kind == "punct" and toks[k + 1].text == "("):
            out.add(t.text)
    return out


class Project:
    """All parsed files plus the two fixpoints (computed lazily once)."""

    def __init__(self, files):
        self.files = files  # [SourceFile]
        self._alloc = None
        self._mut = None
        self._calls = None

    def _call_graph(self):
        if self._calls is None:
            self._calls = {}
            for sf in self.files:
                for fn in sf.funcs:
                    self._calls.setdefault(fn.simple, set()).update(
                        _callees(sf, fn))
        return self._calls

    def allocators(self, arena_names=("arena_",)):
        """Simple names of functions that may transitively reallocate the
        arena.  See module docstring."""
        if self._alloc is not None:
            return self._alloc
        seeds = set()
        for sf in self.files:
            for fn in sf.funcs:
                if _arena_alloc_seed(sf, fn, set(arena_names)):
                    seeds.add(fn.simple)
        calls = self._call_graph()
        alloc = set(seeds)
        changed = True
        while changed:
            changed = False
            for caller, callees in calls.items():
                if caller not in alloc and callees & alloc:
                    alloc.add(caller)
                    changed = True
        self._alloc = alloc
        return alloc

    def mutators(self):
        """fn simple name -> set of member-container roots it may mutate
        (transitive over same-project calls)."""
        if self._mut is not None:
            return self._mut
        mut = {}
        for sf in self.files:
            for fn in sf.funcs:
                mut.setdefault(fn.simple, set()).update(
                    _member_mutations(sf, fn))
        calls = self._call_graph()
        changed = True
        while changed:
            changed = False
            for caller, callees in calls.items():
                roots = mut.setdefault(caller, set())
                before = len(roots)
                for c in callees:
                    if c in mut and c != caller:
                        roots |= mut[c]
                if len(roots) != before:
                    changed = True
        self._mut = mut
        return mut
