#!/usr/bin/env python3
"""itpseq-lint selftest — lint the seeded fixtures, assert exact findings.

Every file under fixtures/ carries a `lint-fixture-path:` pretend path (so
path-scoped rules apply as they would in the tree) and inline
`lint-expect: RULE` annotations on the lines where a finding must fire.
For each fixture this driver asserts the *exact* set of (line, rule)
findings — a missing finding means a rule regressed, an extra one means a
false positive crept in; both fail.  It then shells out to run.py per
fixture to pin the exit-status contract: 1 when violations are seeded,
0 when the fixture is clean (negatives / fully suppressed).

Registered as the `lint_selftest` ctest entry; exit 0 = all fixtures pass.
"""

from __future__ import annotations

import os
import subprocess
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, _HERE)

import cxx
import run as runner

FIXTURE_DIR = os.path.join(_HERE, "fixtures")


def check_fixture(root: str, path: str):
    """Yield human-readable failure strings for one fixture file."""
    name = os.path.basename(path)
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    if cxx.fixture_path(text) is None:
        yield f"{name}: missing a lint-fixture-path: annotation"
        return
    expected = set(cxx.expected_findings(text))
    got = {(f.line, f.rule) for f in runner.lint_files(root, [path])}
    for line, rule in sorted(expected - got):
        yield f"{name}: expected {rule} at line {line} did not fire"
    for line, rule in sorted(got - expected):
        yield f"{name}: unexpected {rule} at line {line} (false positive)"

    # Exit-status contract: run.py must exit 1 on a seeded violation and 0
    # on a clean (negative-only / suppressed) fixture.
    proc = subprocess.run(
        [sys.executable, os.path.join(_HERE, "run.py"), path],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    want = 1 if expected else 0
    if proc.returncode != want:
        yield (f"{name}: run.py exited {proc.returncode}, "
               f"expected {want}")


def main() -> int:
    root = runner.repo_root()
    fixtures = sorted(
        os.path.join(FIXTURE_DIR, f) for f in os.listdir(FIXTURE_DIR)
        if f.endswith(runner.CXX_EXTS))
    if not fixtures:
        print("lint-selftest: no fixtures found", file=sys.stderr)
        return 1

    failures = []
    seeded = 0
    for path in fixtures:
        failures.extend(check_fixture(root, path))
        with open(path, "r", encoding="utf-8") as fh:
            seeded += len(cxx.expected_findings(fh.read()))

    for msg in failures:
        print(f"lint-selftest: FAIL: {msg}")
    if failures:
        return 1
    print(f"lint-selftest: OK — {len(fixtures)} fixtures, "
          f"{seeded} seeded findings, all exact")
    return 0


if __name__ == "__main__":
    sys.exit(main())
