#!/usr/bin/env python3
"""itpseq-lint — in-repo invariant linter for the itpseq tree.

Stdlib-only static analysis over the C++ sources, enforcing the contracts
the type system cannot see (and a reviewer forgets under load):

  L1  Cls/arena view read after a possibly-allocating call   (src/sat/)
  L2  raw arena_ access outside src/sat/
  L3  un-gated obs::emit / allocation in always-on obs args  (src/)
  L4  range-for over a container its body may mutate         (src/)
  L5  banned patterns, include hygiene, header guards        (everywhere)
  L6  inline std::thread lambda without a try boundary       (src/ tools/)
  L7  file write bypassing the atomic temp+rename helper     (src/mc/ src/util/)

Usage:
    scripts/lint/run.py                 # lint src/ tools/ bench/ tests/
    scripts/lint/run.py src/sat         # lint a subtree
    scripts/lint/run.py --json          # machine-readable findings
    scripts/lint/run.py --list-rules

Exit status: 0 when clean, 1 when there are findings, 2 on usage errors.

Suppression (same line, or a standalone comment covering the next line):
    risky();  // itpseq-lint: allow(L4) snapshot taken above, see ...
A reason is required by convention; `allow(*)` is reserved for generated
code.  Fixture files may carry `lint-fixture-path:` to pretend a path and
`lint-expect:` annotations checked by selftest.py.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import cxx
import model
from rules import ALL_RULES

DEFAULT_ROOTS = ("src", "tools", "bench", "tests")
CXX_EXTS = (".cpp", ".hpp", ".h", ".cc", ".hh", ".cxx")


def repo_root() -> str:
    return os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))


def collect_files(root: str, paths):
    """Expand files/directories (relative to root or absolute) into a sorted
    list of C++ source paths."""
    out = []
    targets = paths if paths else [os.path.join(root, r) for r in DEFAULT_ROOTS]
    for p in targets:
        ap = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isfile(ap):
            out.append(ap)
        elif os.path.isdir(ap):
            for dirpath, dirnames, filenames in os.walk(ap):
                dirnames.sort()
                for fname in sorted(filenames):
                    if fname.endswith(CXX_EXTS):
                        out.append(os.path.join(dirpath, fname))
        else:
            print(f"itpseq-lint: no such file or directory: {p}",
                  file=sys.stderr)
            return None
    return sorted(set(out))


def lint_files(root: str, files):
    """Parse `files`, run every applicable rule, apply suppressions.
    Returns the sorted finding list."""
    sources = []
    for path in files:
        with open(path, "r", encoding="utf-8", errors="replace") as fh:
            text = fh.read()
        eff = cxx.fixture_path(text) or os.path.relpath(path, root)
        sources.append(model.parse_source(eff.replace(os.sep, "/"), text))
    project = model.Project(sources)
    findings = []
    for sf in project.files:
        for rule in ALL_RULES:
            if not rule.applies(sf.path):
                continue
            for fd in rule.check(project, sf):
                sup = sf.sup.get(fd.line, set())
                if fd.rule in sup or "*" in sup:
                    continue
                findings.append(fd)
    findings.sort(key=lambda f: f.key())
    return findings


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="itpseq-lint",
        description="in-repo invariant linter (see module docstring)")
    ap.add_argument("paths", nargs="*",
                    help="files/dirs to lint (default: src tools bench tests)")
    ap.add_argument("--root", default=repo_root(),
                    help="repository root (default: auto-detected)")
    ap.add_argument("--json", action="store_true", dest="as_json",
                    help="emit findings as a JSON array")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule catalog and exit")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.RULE}  {rule.DESCRIPTION}")
        return 0

    files = collect_files(args.root, args.paths)
    if files is None:
        return 2
    findings = lint_files(args.root, files)

    if args.as_json:
        print(json.dumps(
            [{"rule": f.rule, "path": f.path, "line": f.line, "msg": f.msg}
             for f in findings], indent=2))
    else:
        for f in findings:
            print(f.render())
        if findings:
            print(f"itpseq-lint: {len(findings)} finding(s) "
                  f"in {len(files)} file(s)", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
