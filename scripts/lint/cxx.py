"""Lightweight C++ lexing and structure recovery for itpseq-lint.

Stdlib-only (like scripts/check_trace.py): no libclang.  The linter does not
need full C++ semantics — the project rules are about *token shapes inside
known idioms* (a `Cls` view crossing an allocating call, a range-for over an
occurrence list, an un-gated `obs::emit`).  What this module provides:

  * tokenize(text)          -> [Tok]           comments/strings collapsed,
                                               line/col preserved
  * match_brackets(tokens)  -> {i: j}          (), {}, [] pairing
  * extract_functions(...)  -> [Func]          name-qualified bodies, incl.
                                               class methods; lambdas stay
                                               part of their enclosing body
  * suppressions(text)      -> {line: set(rule)|{'*'}}
  * fixture metadata        -> pretend path + expected findings (selftest)

Suppression syntax (one finding class, one line, with a reason):

    do_risky_thing();  // itpseq-lint: allow(L4) reason why this is sound

A suppression comment on its own line applies to the next code line.
`allow(*)` suppresses every rule (reserved for generated code).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field


@dataclass
class Tok:
    kind: str  # 'id' | 'num' | 'str' | 'char' | 'punct' | 'pp'
    text: str
    line: int
    col: int
    i: int = -1  # index in the token list (filled by tokenize)


_TOKEN_RE = re.compile(
    r"""
      (?P<ws>[ \t\r]+)
    | (?P<nl>\n)
    | (?P<lcomment>//[^\n]*)
    | (?P<bcomment>/\*.*?\*/)
    | (?P<rawstr>R"(?P<delim>[^()\s\\]*)\(.*?\)(?P=delim)")
    | (?P<str>"(?:[^"\\\n]|\\.)*")
    | (?P<char>'(?:[^'\\\n]|\\.)*')
    | (?P<num>\.?[0-9](?:[0-9a-zA-Z_.']|[eEpP][+-])*)
    | (?P<id>[A-Za-z_]\w*)
    | (?P<punct>::|->\*?|\+\+|--|<<=|>>=|<<|>>|<=|>=|==|!=|&&|\|\||\+=|-=|\*=|/=|%=|&=|\|=|\^=|\.\.\.
        |[-+*/%&|^!~<>=?:;,.(){}\[\]\\#@$`])
    """,
    re.VERBOSE | re.DOTALL,
)


def tokenize(text: str):
    """Lex `text` into Toks.  Preprocessor directives become one 'pp' token
    carrying the whole (continuation-joined) directive text."""
    toks = []
    line, col = 1, 1
    pos = 0
    at_line_start = True
    n = len(text)
    while pos < n:
        m = _TOKEN_RE.match(text, pos)
        if not m:  # unknown byte: skip it
            if text[pos] == "\n":
                line += 1
                col = 1
                at_line_start = True
            else:
                col += 1
            pos += 1
            continue
        kind = m.lastgroup
        s = m.group(0)
        if kind == "delim":  # inner group of rawstr
            kind = "rawstr"
        if kind == "punct" and s == "#" and at_line_start:
            # Preprocessor directive: consume to the first newline not
            # preceded by a backslash continuation.
            end = pos
            while end < n:
                nl = text.find("\n", end)
                if nl == -1:
                    nl = n
                if nl > pos and text[nl - 1] == "\\":
                    end = nl + 1
                    continue
                end = nl
                break
            directive = text[pos:end]
            toks.append(Tok("pp", directive, line, col))
            line += directive.count("\n")
            pos = end
            col = 1
            at_line_start = True
            continue
        nlines = s.count("\n")
        if kind in ("ws", "lcomment"):
            col += len(s)
        elif kind == "nl":
            line += 1
            col = 1
            at_line_start = True
        elif kind == "bcomment":
            if nlines:
                line += nlines
                col = len(s) - s.rfind("\n")
            else:
                col += len(s)
        else:
            if kind in ("str", "rawstr"):
                tok_kind = "str"
            elif kind == "char":
                tok_kind = "char"
            else:
                tok_kind = kind
            toks.append(Tok(tok_kind, s, line, col))
            at_line_start = False
            if nlines:
                line += nlines
                col = len(s) - s.rfind("\n")
            else:
                col += len(s)
        pos = m.end()
    for i, t in enumerate(toks):
        t.i = i
    return toks


_OPEN = {"(": ")", "{": "}", "[": "]"}
_CLOSE = {")": "(", "}": "{", "]": "["}


def match_brackets(toks):
    """Map token index of each opening bracket to its closer and back.
    Unbalanced input (never the case for compiling C++) degrades softly."""
    match = {}
    stack = []
    for t in toks:
        if t.kind != "punct":
            continue
        if t.text in _OPEN:
            stack.append(t)
        elif t.text in _CLOSE:
            while stack:
                o = stack.pop()
                if o.text == _CLOSE[t.text]:
                    match[o.i] = t.i
                    match[t.i] = o.i
                    break
    return match


_NOT_FUNC_NAMES = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "decltype", "noexcept", "static_assert", "new", "delete", "throw",
    "assert", "defined", "alignas", "co_await", "co_return", "co_yield",
}


@dataclass
class Func:
    name: str          # qualified as written: "Solver::alloc_clause"
    simple: str        # last component: "alloc_clause"
    params_open: int   # token index of the parameter-list '('
    params_close: int
    body_open: int     # token index of '{'
    body_close: int
    line: int


def extract_functions(toks, match):
    """Find function definitions: NAME ( params ) [cv/ref/noexcept/ctor-init/
    trailing-return...] { body }.  Lambdas (no name) and control-flow
    parentheses are skipped; nested local structs' methods are found too
    (harmless).  Bodies may overlap only through nested class definitions."""
    funcs = []
    n = len(toks)
    i = 0
    while i < n:
        t = toks[i]
        if t.kind == "punct" and t.text == "(" and t.i in match:
            close = match[t.i]
            # Name: walk backwards following the  id (:: [~] id)*  grammar
            # (NOT "all adjacent ids" — that would glue the return type onto
            # the name: `EngineResult check_bmc(` names `check_bmc`).
            j = i - 1
            parts = []
            if j >= 0 and toks[j].kind == "id":
                parts.append(toks[j].text)
                j -= 1
                if j >= 0 and toks[j].kind == "punct" and toks[j].text == "~":
                    parts.append("~")
                    j -= 1
                while j >= 0 and toks[j].kind == "punct" and toks[j].text == "::":
                    parts.append("::")
                    j -= 1
                    if j >= 0 and toks[j].kind == "punct" and toks[j].text == ">":
                        # template args in a qualified name: skip backwards
                        depth = 1
                        j -= 1
                        while j >= 0 and depth:
                            if toks[j].kind == "punct":
                                if toks[j].text == ">":
                                    depth += 1
                                elif toks[j].text == "<":
                                    depth -= 1
                            j -= 1
                    if j >= 0 and toks[j].kind == "id":
                        parts.append(toks[j].text)
                        j -= 1
                    else:
                        break
            if not parts or parts[-1] in _NOT_FUNC_NAMES or parts[0] in _NOT_FUNC_NAMES:
                i += 1
                continue
            name = "".join(reversed(parts))
            simple = name.rsplit("::", 1)[-1]
            if simple in _NOT_FUNC_NAMES:
                i += 1
                continue
            # Scan forward from ')' for '{' allowing only tokens that can sit
            # between a parameter list and its body (cv/ref qualifiers,
            # noexcept(...), trailing return types, ctor-init lists).
            # Anything else — a closing bracket, an operator, a literal —
            # means this '(' was a *call* inside some expression (e.g. in an
            # `if` condition whose block follows), not a definition.
            _BETWEEN_OK = {"::", "<", ">", ",", ":", "->", "&", "&&", "*",
                           "..."}
            k = close + 1
            body_open = None
            seen_eq = False
            while k < n:
                tk = toks[k]
                if tk.kind == "punct":
                    if tk.text == "{":
                        body_open = k
                        break
                    if tk.text == ";":
                        break
                    if tk.text in ("(", "["):
                        if tk.i not in match:
                            break
                        k = match[tk.i]  # noexcept(...), attributes, arrays
                    elif tk.text == "=":
                        # `= default/delete/0;` or an initializer: only a
                        # pure-virtual/defaulted marker may precede more
                        # tokens; treat anything after '=' as non-definition
                        # unless it is `default`/`delete` (then ';' ends it).
                        seen_eq = True
                    elif tk.text not in _BETWEEN_OK:
                        break
                elif tk.kind in ("str", "char"):
                    break
                elif tk.kind == "pp":
                    break
                elif tk.kind == "id" and seen_eq:
                    break
                k += 1
            if body_open is not None and body_open in match:
                funcs.append(
                    Func(name, simple, t.i, close, body_open, match[body_open],
                         t.line))
                # continue scanning *inside* the body too (nested classes)
            i += 1
        else:
            i += 1
    return funcs


_SUPPRESS_RE = re.compile(r"itpseq-lint:\s*allow\(([^)]*)\)")
_COMMENT_RE = re.compile(r"//[^\n]*|/\*.*?\*/", re.DOTALL)


def suppressions(text: str):
    """Map line -> set of suppressed rule ids ({'*'} = all).  A comment with
    code before it on the line covers that line; a comment alone on its line
    covers the next line (and its own)."""
    sup = {}
    for m in _COMMENT_RE.finditer(text):
        for sm in _SUPPRESS_RE.finditer(m.group(0)):
            rules = {r.strip() for r in sm.group(1).split(",") if r.strip()}
            line = text.count("\n", 0, m.start()) + 1
            line_start = text.rfind("\n", 0, m.start()) + 1
            before = text[line_start:m.start()]
            sup.setdefault(line, set()).update(rules)
            if not before.strip():  # standalone comment: covers next line
                nlines = m.group(0).count("\n")
                sup.setdefault(line + nlines + 1, set()).update(rules)
    return sup


_FIXTURE_PATH_RE = re.compile(r"lint-fixture-path:\s*(\S+)")
_EXPECT_RE = re.compile(r"lint-expect:\s*([A-Z0-9]+(?:\s*,\s*[A-Z0-9]+)*)")


def fixture_path(text: str):
    m = _FIXTURE_PATH_RE.search(text)
    return m.group(1) if m else None


def expected_findings(text: str):
    """[(line, rule)] parsed from `// lint-expect: L1` comments (the line the
    comment sits on, or the next line for standalone comments)."""
    out = []
    for m in _COMMENT_RE.finditer(text):
        for em in _EXPECT_RE.finditer(m.group(0)):
            line = text.count("\n", 0, m.start()) + 1
            line_start = text.rfind("\n", 0, m.start()) + 1
            if not text[line_start:m.start()].strip():
                line += m.group(0).count("\n") + 1
            for rule in em.group(1).split(","):
                out.append((line, rule.strip()))
    return sorted(out)
