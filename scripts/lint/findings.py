"""Finding record shared by every itpseq-lint rule."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Finding:
    rule: str   # "L1".."L5"
    path: str   # effective (fixture-pretend or repo-relative) path
    line: int
    msg: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.msg}"

    def key(self):
        return (self.path, self.line, self.rule, self.msg)
