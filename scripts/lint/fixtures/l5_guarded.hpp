// lint-fixture-path: src/util/lint_fixture_guarded.hpp
//
// Negative fixture: a properly guarded header has zero findings.

#pragma once

namespace itpseq {
int lint_fixture_guarded_probe();
}  // namespace itpseq
