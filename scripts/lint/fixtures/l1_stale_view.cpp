// lint-fixture-path: src/sat/lint_fixture_l1.cpp
//
// L1 seeded violations: Cls / arena-pointer views read after a possibly
// allocating call (direct, transitive through the call-graph fixpoint, and
// the loop back edge).  The negatives are the established safe idioms —
// re-fetch after the allocation, a terminating branch, a by-value snapshot
// — and must stay finding-free.

#include "sat/solver.hpp"

namespace itpseq::sat {

struct Fixture {
  std::vector<std::uint32_t> arena_;
  std::vector<int> items;

  // Seeds the allocator fixpoint: a direct capacity-changing arena_ op.
  void grow() { arena_.push_back(0u); }

  // Reaches grow() through one call edge; the fixpoint must close over it.
  void grow_indirect() { grow(); }

  std::uint32_t direct_kill(CRef cr) {
    Cls c = cls(cr);
    arena_.push_back(1u);
    return c.size();  // lint-expect: L1
  }

  std::uint32_t transitive_kill(CRef cr) {
    Cls d = cls(cr);
    grow_indirect();
    return d.size();  // lint-expect: L1
  }

  std::uint32_t loop_backedge(CRef cr) {
    std::uint32_t acc = 0;
    Cls e = cls(cr);
    for (int i = 0; i < 4; ++i) {
      acc += e.size();  // lint-expect: L1
      grow();
    }
    return acc;
  }

  std::uint32_t pointer_view(CRef cr) {
    const std::uint32_t* base = arena_.data() + cr;
    grow();
    return base[0];  // lint-expect: L1
  }

  // ---- negatives ----------------------------------------------------------

  std::uint32_t refetch_is_clean(CRef cr) {
    Cls f = cls(cr);
    grow();
    f = cls(cr);
    return f.size();
  }

  std::uint32_t terminating_branch_is_clean(CRef cr, bool flag) {
    Cls g = cls(cr);
    if (flag) {
      grow();
      return 0u;
    }
    return g.size();
  }

  int snapshot_is_clean() {
    std::vector<int> copy = items;
    grow();
    int acc = 0;
    for (int v : copy) acc += v;
    return acc;
  }
};

}  // namespace itpseq::sat
