// lint-fixture-path: src/mc/lint_fixture_l6.cpp
//
// L6 seeded violations: inline std::thread lambdas whose body does not
// open with a try/catch boundary — anything they throw is std::terminate
// for the whole process.  The negatives are the accepted shapes: a body
// that opens with try, named entry points (audited at their definition),
// and std::thread mentions that construct nothing.

#include <thread>
#include <vector>

namespace itpseq::mc {

void work();
void record();

struct Spawner {
  std::thread keeper;  // declaration, not a construction

  void bare_lambda() {
    std::thread([] { work(); }).join();  // lint-expect: L6
  }

  void named_variable() {
    std::thread t([this] { work(); });  // lint-expect: L6
    t.join();
  }

  void assigned_later() {
    keeper = std::thread([]() { work(); });  // lint-expect: L6
    keeper.join();
  }

  // ---- negatives ----------------------------------------------------------

  void bounded_lambda() {
    std::thread t([this]() {
      try {
        work();
      } catch (...) {
        record();
      }
    });
    t.join();
  }

  void named_entry_point() {
    std::thread t(work);  // one definition to audit; not an inline body
    t.join();
  }

  void pool_of_threads() {
    std::vector<std::thread> pool;
    unsigned hw = std::thread::hardware_concurrency();
    (void)hw;
    for (std::thread& t : pool)
      if (t.joinable()) t.join();
  }
};

}  // namespace itpseq::mc
