// lint-fixture-path: src/sat/lint_fixture_l5.cpp
//
// L5 seeded violations: nondeterminism sources (rand/srand/time), iostream
// in the SAT hot path, and a parent-relative include.  The negatives are
// member calls that merely *share* the banned names.

#include <iostream>          // lint-expect: L5
#include "../mc/engine.hpp"  // lint-expect: L5
#include <vector>

namespace itpseq::sat {

int entropy() {
  int a = rand();                 // lint-expect: L5
  srand(7u);                      // lint-expect: L5
  long t = time(nullptr);         // lint-expect: L5
  return a + static_cast<int>(t);
}

void print_state(int n) {
  std::cout << n;  // lint-expect: L5
  std::cerr << n;  // lint-expect: L5
}

// ---- negatives ------------------------------------------------------------

template <class Rng>
int member_rand_is_clean(Rng& gen) {
  return static_cast<int>(gen.rand());
}

template <class Clock>
long member_time_is_clean(Clock& clk) {
  return clk.time(nullptr);
}

}  // namespace itpseq::sat
