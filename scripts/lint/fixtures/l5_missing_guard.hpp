// lint-fixture-path: src/util/lint_fixture_guard.hpp
//
// L5 seeded violation: a header without `#pragma once` (or a classic
// include guard).  The finding lands on the first token of the file.

namespace itpseq { int lint_fixture_guard_probe(); }  // lint-expect: L5
