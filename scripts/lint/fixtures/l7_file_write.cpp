// lint-fixture-path: src/mc/lint_fixture_l7.cpp
//
// L7 seeded violations: file writes in the publication layers (src/mc/,
// src/util/) that target the final path in place — a crash mid-write
// leaves a torn file where a consumer expects a complete one.  The
// negatives are read-only opens, the sanctioned util::atomic_write_file
// call, and an explicitly suppressed streaming sink.

#include <cstdio>
#include <fstream>
#include <string>

namespace itpseq::mc {

bool atomic_write_file(const std::string& path, const std::string& body);

void torn_writes(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");  // lint-expect: L7
  if (f != nullptr) {
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
  }
  std::FILE* g = std::fopen(path.c_str(), "ab");  // lint-expect: L7
  if (g != nullptr) std::fclose(g);
  std::FILE* h = std::fopen(path.c_str(), "r+b");  // lint-expect: L7
  if (h != nullptr) std::fclose(h);
}

void torn_streams(const std::string& path) {
  std::ofstream out(path);  // lint-expect: L7
  out << "partial";
  std::fstream io(path, std::ios::in | std::ios::out);  // lint-expect: L7
}

void computed_mode(const std::string& path, const char* mode) {
  // The linter cannot prove a computed mode reads, so it must assume write.
  std::FILE* f = std::fopen(path.c_str(), mode);  // lint-expect: L7
  if (f != nullptr) std::fclose(f);
}

// ---- negatives ------------------------------------------------------------

void read_only(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");  // reads don't publish
  if (f != nullptr) std::fclose(f);
  std::ifstream in(path);  // ifstream cannot write
}

bool sanctioned(const std::string& path, const std::string& body) {
  return atomic_write_file(path, body);  // the atomic temp+rename helper
}

void suppressed_stream_sink(const std::string& path) {
  // A genuine streaming sink may opt out with a reviewed suppression.
  // itpseq-lint: allow(L7) event stream, cannot buffer the whole run
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f != nullptr) std::fclose(f);
}

}  // namespace itpseq::mc
