// lint-fixture-path: src/mc/lint_fixture_suppressed.cpp
//
// Suppression semantics: a same-line `itpseq-lint: allow(RULE) reason`
// comment and a standalone comment covering exactly the next line both
// silence the finding; the line *after* a standalone suppression is NOT
// covered and must still fire.

namespace itpseq::mc {

int suppression_demo() {
  int x = arena_[0];  // itpseq-lint: allow(L2) fixture: same-line suppression
  // itpseq-lint: allow(L2) fixture: standalone comment covers the next line
  int y = arena_[1];
  int z = arena_[2];  // lint-expect: L2
  return x + y + z;
}

}  // namespace itpseq::mc
