// lint-fixture-path: src/mc/lint_fixture_l3.cpp
//
// L3 seeded violations: an un-gated obs::emit (arguments evaluated even
// with tracing off) and an allocating expression in an obs::Span label.
// The negatives are the three accepted gate shapes plus a literal label.

#include "obs/trace.hpp"

namespace itpseq::mc {

struct Emitter {
  int hits = 0;

  void ungated(int n) {
    obs::emit("fixture", "event", n);  // lint-expect: L3
  }

  void span_alloc_label(int n) {
    obs::Span sp("fixture", std::to_string(n));  // lint-expect: L3
    ++hits;
  }

  // ---- negatives ----------------------------------------------------------

  void direct_gate(int n) {
    if (obs::enabled()) {
      obs::emit("fixture", "event", n);
    }
  }

  void bool_gate(int n) {
    const bool traced = obs::enabled();
    if (traced) {
      obs::emit("fixture", "event", n);
    }
  }

  void prologue_gate(int n) {
    if (!obs::enabled()) return;
    obs::emit("fixture", "event", n);
  }

  void span_literal_label() {
    obs::Span sp("fixture", "literal");
    ++hits;
  }
};

}  // namespace itpseq::mc
