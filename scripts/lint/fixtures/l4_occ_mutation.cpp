// lint-fixture-path: src/sat/lint_fixture_l4.cpp
//
// L4 seeded violations: the PR 7 bug class — an occurrence list mutated
// (directly, and transitively through the mutator fixpoint) inside a
// range-for over itself.  The negatives are the snapshot-first idiom and a
// same-named container on a *different* receiver.

namespace itpseq::sat {

struct Occs {
  std::vector<std::vector<std::size_t>> occ_;
  std::vector<int> inputs_;

  // Seeds the mutator fixpoint: attach() mutates occ_.
  void attach(std::size_t c) { occ_.push_back({c}); }

  void direct_mutation(int l) {
    for (std::size_t idx : occ_[l]) {
      occ_[l].push_back(idx);  // lint-expect: L4
    }
  }

  void transitive_mutation(int l) {
    for (std::size_t idx : occ_[l]) {
      attach(idx);  // lint-expect: L4
    }
  }

  // ---- negatives ----------------------------------------------------------

  void snapshot_is_clean(int l) {
    const std::vector<std::size_t> snap = occ_[l];
    for (std::size_t idx : snap) {
      attach(idx);
    }
  }

  void other_receiver_is_clean(Occs& out) {
    for (int v : inputs_) {
      out.inputs_.push_back(v);
    }
  }
};

}  // namespace itpseq::sat
