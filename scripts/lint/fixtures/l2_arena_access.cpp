// lint-fixture-path: src/mc/lint_fixture_l2.cpp
//
// L2 seeded violations: raw clause-arena access outside src/sat/.  Any
// `arena_` token in an mc-layer file is a finding; look-alike identifiers
// (`arena`, `arena_size`) are not the banned name and must stay clean.

namespace itpseq::mc {

struct LayoutPeeker {
  int arena;        // a different identifier: clean
  int arena_size;   // not the banned token either: clean

  unsigned peek_header(unsigned cr) {
    return arena_[cr];  // lint-expect: L2
  }

  void poke_flags(unsigned cr, unsigned bit) {
    arena_[cr] |= bit;  // lint-expect: L2
  }
};

}  // namespace itpseq::mc
