"""L4 — container mutated inside a range-for over itself.

The PR 7 bug class: a range-for over an occurrence list (`occ_[l]`, a
record's `clauses`, a watcher list) while the loop body — directly or via
a callee — push_back/erases that same container.  The reference captured
by the range-for is invalidated mid-iteration.  The established in-tree
idiom is snapshot-first (`const auto pos = occ_[...]` / copy the literal
vector), which this rule deliberately does not flag: the snapshot's root
name differs from the mutated member's.

Transitive mutation uses model.Project.mutators(): a call `f(...)` inside
the loop is a finding if f's (fixpoint) mutation set contains the
container's root name.  Roots are matched by name, which over-approximates
across classes — that is the safe direction for a linter, and a deliberate
suppression with a reason documents the sound exceptions.
"""

from __future__ import annotations

from findings import Finding
from model import MUTATING_METHODS, Project, SourceFile

RULE = "L4"
DESCRIPTION = "range-for over a container its body may mutate"


def applies(path: str) -> bool:
    return path.startswith("src/")


def check(project: Project, sf: SourceFile):
    mut = project.mutators()
    out = []
    seen = set()
    for fn in sf.funcs:
        for root, recv, blo, bhi in _range_fors(sf, fn):
            _scan_body(sf, fn, root, recv, blo, bhi, mut, out, seen)
    return out


def _receiver(sf, i):
    """Object name the id at token index i is selected from: `out.roots` ->
    'out' for the `roots` token, None for an unqualified name, '<expr>' for
    a computed receiver (`f().roots`)."""
    toks = sf.toks
    if i >= 1 and toks[i - 1].kind == "punct" and toks[i - 1].text in (".", "->"):
        j = i - 2
        if j >= 0 and toks[j].kind == "punct" and toks[j].text == "]":
            j = sf.match.get(toks[j].i)
            j = j - 1 if j is not None else -1
        if j >= 0 and toks[j].kind == "id":
            return toks[j].text
        return "<expr>"
    return None


def _range_fors(sf, fn):
    """Yield (container_root, body_lo, body_hi) for each range-for in fn."""
    toks = sf.toks
    i = fn.body_open + 1
    while i < fn.body_close:
        t = toks[i]
        if (t.kind == "id" and t.text == "for" and i + 1 < fn.body_close
                and toks[i + 1].kind == "punct" and toks[i + 1].text == "("):
            copen = i + 1
            cclose = sf.match.get(toks[copen].i)
            if cclose is None:
                i += 1
                continue
            colon = None
            j = copen + 1
            while j < cclose:
                tj = toks[j]
                if tj.kind == "punct":
                    if tj.text == ":":
                        colon = j
                        break
                    if tj.text == ";":
                        break  # classic for, not range-for
                    if tj.text in ("(", "{", "["):
                        j = sf.match.get(tj.i, j)
                j += 1
            if colon is not None:
                root, recv = _expr_root(sf, colon + 1, cclose)
                blo, bhi = _body_range(sf, cclose + 1, fn.body_close)
                if root is not None:
                    yield (root, recv, blo, bhi)
                i = cclose + 1
                continue
        i += 1


def _expr_root(sf, lo, hi):
    """(root, receiver) of the iterated expression: the name whose container
    is actually traversed.  `occ_[l]` -> (occ_, None), `rec.clauses` ->
    (clauses, rec), `snapshot` -> (snapshot, None).  A trailing call
    (`solver.db()`) has no trackable root."""
    toks = sf.toks
    root = None
    j = lo
    while j < hi:
        t = toks[j]
        if t.kind == "id":
            nxt = toks[j + 1] if j + 1 < len(toks) else None
            if nxt is not None and nxt.kind == "punct" and nxt.text == "(":
                root = None  # function-call result: not trackable
                j = sf.match.get(nxt.i, j) + 1
                continue
            root = t.i
        elif t.kind == "punct" and t.text in ("(", "{", "["):
            j = sf.match.get(t.i, j)
        j += 1
    if root is None:
        return (None, None)
    return (toks[root].text, _receiver(sf, root))


def _body_range(sf, start, hi):
    toks = sf.toks
    i = start
    if i < hi and toks[i].kind == "punct" and toks[i].text == "{":
        close = sf.match.get(toks[i].i, hi)
        return (i + 1, close)
    j = i
    while j < hi:
        tj = toks[j]
        if tj.kind == "punct":
            if tj.text == ";":
                return (i, j + 1)
            if tj.text in ("(", "{", "["):
                j = sf.match.get(tj.i, j)
        j += 1
    return (i, hi)


def _scan_body(sf, fn, root, recv, blo, bhi, mut, out, seen):
    toks = sf.toks
    n = len(toks)
    for i in range(blo, bhi):
        t = toks[i]
        if t.kind != "id":
            continue
        # direct mutation:  ROOT.mut(...)  or  ROOT[...].mut(...) — only if
        # the mutated name is selected from the *same* receiver as the
        # iterated one (`out.roots.push_back` does not invalidate a range-for
        # over this->roots).
        if t.text == root and _receiver(sf, i) == recv:
            j = i + 1
            if j < n and toks[j].kind == "punct" and toks[j].text == "[":
                j = sf.match.get(toks[j].i)
                if j is None:
                    continue
                j += 1
            if (j + 2 < n and toks[j].kind == "punct" and toks[j].text == "."
                    and toks[j + 1].kind == "id"
                    and toks[j + 1].text in MUTATING_METHODS
                    and toks[j + 2].text == "("):
                key = (sf.path, toks[j + 1].line, root)
                if key not in seen:
                    seen.add(key)
                    out.append(Finding(
                        RULE, sf.path, toks[j + 1].line,
                        f"'{root}.{toks[j + 1].text}(...)' inside a range-for "
                        f"over '{root}': the loop reference is invalidated "
                        f"mid-iteration; snapshot the list first "
                        f"(src/sat/preprocess.cpp idiom)"))
            continue
        # transitive mutation through a call: an unqualified (or this->)
        # call can reach the members of the enclosing object; a call through
        # a *different* named object cannot touch the iterated container.
        nxt = toks[i + 1] if i + 1 < n else None
        if (nxt is not None and nxt.kind == "punct" and nxt.text == "("
                and t.text in mut and root in mut[t.text]
                and t.text not in MUTATING_METHODS):
            callee_recv = _receiver(sf, i)
            if callee_recv not in (None, "this") and callee_recv != recv:
                continue
            key = (sf.path, t.line, root)
            if key not in seen:
                seen.add(key)
                out.append(Finding(
                    RULE, sf.path, t.line,
                    f"'{t.text}(...)' may mutate '{root}' (call-graph "
                    f"fixpoint) inside a range-for over '{root}'; snapshot "
                    f"the list before iterating or explain with a "
                    f"suppression"))
