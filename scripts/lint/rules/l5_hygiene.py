"""L5 — hygiene: banned patterns, include hygiene, header guards.

  * `rand()` / `srand()` / `time(nullptr|NULL|0)`: nondeterminism that
    breaks the fixed-seed reproducibility contract (portfolio determinism
    tests).  Engines take seeds; use the solver-owned SplitMix PRNG.
  * `<iostream>` / `std::cout` / `std::cerr` in src/sat/: the SAT core is
    the hot path and must not drag in iostream statics or print — use obs
    tracing or return data to the caller.
  * `#include "../..."`: parent-relative includes defeat the single
    `-I src` include root; spell the path from src/.
  * Every header must open with `#pragma once` (or a classic guard).
"""

from __future__ import annotations

import re

from findings import Finding
from model import Project, SourceFile

RULE = "L5"
DESCRIPTION = "banned patterns, include hygiene, header guards"

_TIME_ARGS = {"nullptr", "NULL", "0"}
_HOT_PATHS = ("src/sat/",)

_INCLUDE_RE = re.compile(r'#\s*include\s+["<]([^">]+)[">]')


def applies(path: str) -> bool:
    return True


def check(project: Project, sf: SourceFile):
    out = []
    toks = sf.toks
    n = len(toks)
    hot = sf.path.startswith(_HOT_PATHS)

    for i, t in enumerate(toks):
        if t.kind == "pp":
            m = _INCLUDE_RE.search(t.text)
            if m:
                inc = m.group(1)
                if inc.startswith("../") or "/../" in inc:
                    out.append(Finding(
                        RULE, sf.path, t.line,
                        f'parent-relative include "{inc}"; spell the path '
                        f"from the src/ include root"))
                if hot and inc == "iostream":
                    out.append(Finding(
                        RULE, sf.path, t.line,
                        "<iostream> in the SAT hot path; use obs tracing or "
                        "return data to the caller"))
            continue
        if t.kind != "id":
            continue

        prev = toks[i - 1] if i > 0 else None
        nxt = toks[i + 1] if i + 1 < n else None

        # member calls `x.rand()` are some other rand; `std::rand` is not.
        def _free_call(tok_prev):
            if tok_prev is None:
                return True
            if tok_prev.kind == "punct" and tok_prev.text == ".":
                return False
            if tok_prev.kind == "punct" and tok_prev.text == "::":
                qual = toks[tok_prev.i - 1] if tok_prev.i > 0 else None
                return qual is not None and qual.text == "std"
            return True

        if (t.text in ("rand", "srand") and nxt is not None
                and nxt.text == "(" and _free_call(prev)):
            out.append(Finding(
                RULE, sf.path, t.line,
                f"'{t.text}()' breaks fixed-seed determinism; use the "
                f"engine's seeded SplitMix PRNG"))
        elif (t.text == "time" and nxt is not None and nxt.text == "("
                and _free_call(prev)
                and i + 2 < n and toks[i + 2].text in _TIME_ARGS
                and i + 3 < n and toks[i + 3].text == ")"):
            out.append(Finding(
                RULE, sf.path, t.line,
                "'time(...)' as an entropy source breaks fixed-seed "
                "determinism; thread a seed through the options struct"))
        elif hot and t.text in ("cout", "cerr"):
            if prev is not None and prev.text == "::":
                qual = toks[prev.i - 1] if prev.i > 0 else None
                if qual is not None and qual.text == "std":
                    out.append(Finding(
                        RULE, sf.path, t.line,
                        f"std::{t.text} in the SAT hot path; use obs tracing "
                        f"instead of printing"))

    if sf.path.endswith((".hpp", ".h", ".hh")) and toks:
        if not _has_guard(toks):
            out.append(Finding(
                RULE, sf.path, toks[0].line,
                "header without `#pragma once` (or include guard) at the "
                "top"))
    return out


def _has_guard(toks):
    """First two pp tokens form a guard: `#pragma once`, or #ifndef+#define
    of the same macro."""
    pps = [t for t in toks[:8] if t.kind == "pp"]
    for idx, t in enumerate(pps):
        txt = " ".join(t.text.split())
        if txt.startswith("#pragma") and "once" in txt:
            return True
        m = re.match(r"#\s*ifndef\s+(\w+)", t.text)
        if m and idx + 1 < len(pps):
            m2 = re.match(r"#\s*define\s+(\w+)", pps[idx + 1].text)
            if m2 and m2.group(1) == m.group(1):
                return True
    return False
