"""L1 — clause view held live across an arena-allocating call.

`Cls` (src/sat/solver.hpp) and any raw pointer derived from `arena_` are
*transient views* into the flat clause arena: any allocation may grow (and
therefore move) the backing buffer, and GC compacts it.  The PR 5 contract
is "re-fetch with cls() after anything that can allocate".  This rule
enforces it statically:

  * view variables are Cls locals/params, `auto v = cls(...)` results, and
    pointers initialized from `arena_`/`cls(...)`/another view;
  * an *allocating call* is a call to any function in the project-wide
    allocator set (fixpoint over the call graph seeded by direct
    capacity-changing `arena_.*` operations — see model.Project), or such
    a direct operation itself;
  * a read of a view after an allocating call is a finding, unless the
    view was re-assigned (`v = cls(...)`) in between;
  * loop bodies are simulated twice, so a view fetched before (or at the
    top of) a loop that allocates is caught on the back edge — the
    classic shape of this bug class;
  * an `if` block whose last statement is return/break/continue/throw
    does not leak its invalidations past the block.

The analysis names the killing call in the message so the fix is obvious.
"""

from __future__ import annotations

from findings import Finding
from model import MUTATING_METHODS, Project, SourceFile

RULE = "L1"
DESCRIPTION = "Cls/arena view read after a possibly-allocating call"

_VIEW_TYPES = {"Cls"}
_SKIP_DECL = {"&", "*", "const"}
_TERMINATORS = {"return", "break", "continue", "throw", "goto"}


def applies(path: str) -> bool:
    return path.startswith("src/sat/")


def check(project: Project, sf: SourceFile):
    alloc = project.allocators()
    out = []
    for fn in sf.funcs:
        out.extend(_check_fn(sf, fn, alloc))
    return out


class _View:
    __slots__ = ("line", "valid", "killer")

    def __init__(self, line):
        self.line = line
        self.valid = True
        self.killer = None  # (what, line) that invalidated it

    def copy(self):
        v = _View(self.line)
        v.valid = self.valid
        v.killer = self.killer
        return v


def _check_fn(sf, fn, alloc):
    findings = []
    views = {}
    _scan_params(sf, fn, views)
    _sim(sf, fn, fn.body_open + 1, fn.body_close, views, findings, alloc)
    return findings


def _scan_params(sf, fn, views):
    toks = sf.toks
    i = fn.params_open + 1
    while i < fn.params_close:
        t = toks[i]
        if t.kind == "id" and t.text in _VIEW_TYPES:
            j = i + 1
            while j < fn.params_close and toks[j].text in _SKIP_DECL:
                j += 1
            if j < fn.params_close and toks[j].kind == "id":
                views[toks[j].text] = _View(toks[j].line)
                i = j
        i += 1


def _find_semi(sf, lo, hi):
    """Index of the next top-level ';' in [lo, hi), skipping bracket groups.
    Returns hi if none."""
    toks = sf.toks
    i = lo
    while i < hi:
        t = toks[i]
        if t.kind == "punct":
            if t.text == ";":
                return i
            if t.text in ("(", "{", "["):
                i = sf.match.get(t.i, i)
        i += 1
    return hi


def _stmt_range(sf, start, hi):
    """Statement beginning at `start`: (lo, hi_excl, next_i).  A `{...}`
    block yields its interior; anything else runs to its ';'."""
    toks = sf.toks
    i = start
    while i < hi and toks[i].kind == "pp":
        i += 1
    if i >= hi:
        return (hi, hi, hi)
    if toks[i].kind == "punct" and toks[i].text == "{":
        close = sf.match.get(toks[i].i, hi)
        return (i + 1, close, close + 1)
    semi = _find_semi(sf, i, hi)
    return (i, semi + 1, semi + 1)


def _terminates(sf, lo, hi):
    """True if the last top-level statement in [lo, hi) starts with
    return/break/continue/throw/goto."""
    toks = sf.toks
    i = lo
    first = None   # first token of the current statement
    last_first = None
    while i < hi:
        t = toks[i]
        if first is None and t.kind != "pp":
            first = t
        if t.kind == "punct":
            if t.text in ("(", "{", "["):
                close = sf.match.get(t.i)
                if close is None or close >= hi:
                    break
                i = close
                if t.text == "{":
                    last_first = first
                    first = None
            elif t.text == ";":
                last_first = first
                first = None
        i += 1
    return (last_first is not None and last_first.kind == "id"
            and last_first.text in _TERMINATORS)


def _init_is_view(sf, lo, hi, views):
    """Does the initializer expression in [lo, hi) produce an arena view?"""
    toks = sf.toks
    for i in range(lo, hi):
        t = toks[i]
        if t.kind != "id":
            continue
        if t.text == "arena_":
            return True
        if t.text == "cls" and i + 1 < hi and toks[i + 1].text == "(":
            return True
        if t.text in views:
            return True
    return False


def _sim(sf, fn, lo, hi, views, findings, alloc):
    """Simulate [lo, hi) updating `views`; loops run twice (back edge)."""
    toks = sf.toks
    i = lo
    while i < hi:
        t = toks[i]
        if t.kind == "id" and t.text in ("for", "while"):
            j = i + 1
            if j < hi and toks[j].kind == "punct" and toks[j].text == "(":
                close = sf.match.get(toks[j].i)
                if close is None or close >= hi:
                    i += 1
                    continue
                blo, bhi, nxt = _stmt_range(sf, close + 1, hi)
                for _ in range(2):  # second pass models the back edge
                    _linear(sf, fn, j + 1, close, views, findings, alloc)
                    _sim(sf, fn, blo, bhi, views, findings, alloc)
                i = nxt
                continue
            i += 1
        elif t.kind == "id" and t.text == "do":
            blo, bhi, nxt = _stmt_range(sf, i + 1, hi)
            for _ in range(2):
                _sim(sf, fn, blo, bhi, views, findings, alloc)
            i = nxt
        elif t.kind == "id" and t.text == "if":
            j = i + 1
            if j < hi and toks[j].kind == "punct" and toks[j].text == "(":
                close = sf.match.get(toks[j].i)
                if close is None or close >= hi:
                    i += 1
                    continue
                _linear(sf, fn, j + 1, close, views, findings, alloc)
                blo, bhi, nxt = _stmt_range(sf, close + 1, hi)
                snap = {k: v.copy() for k, v in views.items()}
                _sim(sf, fn, blo, bhi, views, findings, alloc)
                if _terminates(sf, blo, bhi):
                    views.clear()
                    views.update(snap)  # the branch exits; state doesn't leak
                i = nxt
                continue
            i += 1
        elif t.kind == "id" and t.text == "else":
            i += 1
        elif t.kind == "punct" and t.text == "{":
            close = sf.match.get(t.i)
            if close is None or close > hi:
                i += 1
                continue
            _sim(sf, fn, t.i + 1, close, views, findings, alloc)
            i = close + 1
        else:
            i = _linear_step(sf, fn, i, hi, views, findings, alloc)


def _linear(sf, fn, lo, hi, views, findings, alloc):
    i = lo
    while i < hi:
        i = _linear_step(sf, fn, i, hi, views, findings, alloc)


def _linear_step(sf, fn, i, hi, views, findings, alloc):
    toks = sf.toks
    t = toks[i]
    if t.kind != "id":
        return i + 1

    nxt = toks[i + 1] if i + 1 < len(toks) else None

    # --- declarations -------------------------------------------------------
    if t.text in _VIEW_TYPES:
        j = i + 1
        while j < hi and toks[j].kind == "punct" and toks[j].text in _SKIP_DECL:
            j += 1
        while j < hi and toks[j].kind == "id" and toks[j].text == "const":
            j += 1
        if j < hi and toks[j].kind == "id":
            name = toks[j].text
            k = j + 1
            if k < hi and toks[k].kind == "punct" and toks[k].text == "=":
                semi = _find_semi(sf, k + 1, hi)
                _linear(sf, fn, k + 1, semi, views, findings, alloc)
                views[name] = _View(toks[j].line)
                return semi + 1
            views[name] = _View(toks[j].line)
            return j + 1
        return i + 1

    if t.text == "auto":
        j = i + 1
        while j < hi and ((toks[j].kind == "punct" and toks[j].text in _SKIP_DECL)
                          or (toks[j].kind == "id" and toks[j].text == "const")):
            j += 1
        if (j + 1 < hi and toks[j].kind == "id"
                and toks[j + 1].kind == "punct" and toks[j + 1].text == "="):
            name = toks[j].text
            semi = _find_semi(sf, j + 2, hi)
            if _init_is_view(sf, j + 2, semi, views):
                _linear(sf, fn, j + 2, semi, views, findings, alloc)
                views[name] = _View(toks[j].line)
                return semi + 1
        return i + 1

    # pointer decl:  TYPE* [const] NAME = <init involving arena_/view>;
    if (nxt is not None and nxt.kind == "punct" and nxt.text == "="
            and t.text not in views):
        p = i - 1
        while p >= 0 and toks[p].kind == "id" and toks[p].text == "const":
            p -= 1
        if p >= 0 and toks[p].kind == "punct" and toks[p].text == "*":
            semi = _find_semi(sf, i + 2, hi)
            if _init_is_view(sf, i + 2, semi, views):
                _linear(sf, fn, i + 2, semi, views, findings, alloc)
                views[t.text] = _View(t.line)
                return semi + 1
        return i + 1

    # --- re-assignment of a tracked view ------------------------------------
    if (t.text in views and nxt is not None and nxt.kind == "punct"
            and nxt.text == "="):
        semi = _find_semi(sf, i + 2, hi)
        _linear(sf, fn, i + 2, semi, views, findings, alloc)
        # Whether re-fetched via cls() or pointed elsewhere, it is no longer
        # a stale arena view.
        views[t.text] = _View(t.line)
        return semi + 1

    # --- allocation events --------------------------------------------------
    if t.text == "arena_":
        if (nxt is not None and nxt.kind == "punct" and nxt.text == "."
                and i + 2 < len(toks) and toks[i + 2].kind == "id"
                and toks[i + 2].text in MUTATING_METHODS):
            _kill_all(views, f"arena_.{toks[i + 2].text}", t.line)
            return i + 3
        return i + 1

    if (t.text in alloc and nxt is not None and nxt.kind == "punct"
            and nxt.text == "("):
        _kill_all(views, t.text, t.line)
        return i + 1

    # --- uses ---------------------------------------------------------------
    if t.text in views:
        v = views[t.text]
        if not v.valid:
            what, kline = v.killer or ("an allocating call", t.line)
            findings.append(Finding(
                RULE, sf.path, t.line,
                f"clause view '{t.text}' (fetched line {v.line}) read after "
                f"possible arena reallocation by '{what}' (line {kline}); "
                f"re-fetch with cls() after anything that can allocate"))
            v.valid = True  # one finding per invalidation
        return i + 1

    return i + 1


def _kill_all(views, what, line):
    for v in views.values():
        if v.valid:
            v.valid = False
            v.killer = (what, line)
