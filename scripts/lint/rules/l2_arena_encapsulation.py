"""L2 — raw clause-arena access outside src/sat/.

The flat `arena_` buffer (CRef = word offset, 4-word packed headers) is an
implementation detail of the SAT core.  Everything outside src/sat/ must go
through the solver API (clause ids, `export_clause`, proof hooks) — a raw
`arena_` read elsewhere would freeze the layout forever and break the next
arena GC change.  Any token `arena_` outside src/sat/ is a finding.
"""

from __future__ import annotations

from findings import Finding
from model import Project, SourceFile

RULE = "L2"
DESCRIPTION = "raw arena_ access outside src/sat/"

_BANNED_IDS = {"arena_"}


def applies(path: str) -> bool:
    return not path.startswith("src/sat/")


def check(project: Project, sf: SourceFile):
    out = []
    for t in sf.toks:
        if t.kind == "id" and t.text in _BANNED_IDS:
            out.append(Finding(
                RULE, sf.path, t.line,
                f"raw clause-arena access ('{t.text}') outside src/sat/; "
                f"use the Solver API (clause ids / export_clause) instead"))
    return out
