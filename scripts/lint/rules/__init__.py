"""itpseq-lint rule registry.  Each rule module exposes RULE (the id),
DESCRIPTION, applies(path) and check(project, source_file)."""

from rules import (  # noqa: F401
    l1_stale_views,
    l2_arena_encapsulation,
    l3_obs_gating,
    l4_occ_iteration,
    l5_hygiene,
    l6_thread_boundaries,
    l7_atomic_writes,
)

ALL_RULES = [
    l1_stale_views,
    l2_arena_encapsulation,
    l3_obs_gating,
    l4_occ_iteration,
    l5_hygiene,
    l6_thread_boundaries,
    l7_atomic_writes,
]
