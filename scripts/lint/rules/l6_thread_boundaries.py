"""L6 — std::thread inline lambda bodies need a top-level try/catch.

An exception that escapes a thread's start function is std::terminate: the
whole process dies, taking every healthy portfolio member (and the user's
run) with it.  The containment contract (src/mc/portfolio.cpp run_member,
src/obs/trace.cpp sampler) is that every thread body converts failure into
a result — so a `std::thread([...] { ... })` whose inline lambda does not
*open* with `try` has no boundary at the outermost frame, and anything the
body throws before reaching an inner handler is a process kill.

Flagged:

    std::thread([&] { work(); });              // no boundary at all
    std::thread t([&] { work(); });
    t = std::thread([this] { work(); });

Accepted:

    std::thread([&] { try { work(); } catch (...) { record(); } });
    std::thread(&Impl::run, this);             // named entry point: the
    pool.emplace_back(worker);                 // boundary lives (and is
                                               // reviewed) at its definition

Named entry points are exempt by design: a function has one definition to
audit, while an inline lambda's only definition is the spawn site itself.
"""

from __future__ import annotations

from findings import Finding
from model import Project, SourceFile

RULE = "L6"
DESCRIPTION = "std::thread inline lambda body lacks a top-level try/catch"

# Lambda declarator pieces that may sit between the capture list / parameter
# list and the body's '{'.
_LAMBDA_SPECIFIERS = {"mutable", "constexpr", "noexcept", "->", "const"}


def applies(path: str) -> bool:
    return path.startswith("src/") or path.startswith("tools/")


def check(project: Project, sf: SourceFile):
    out = []
    toks = sf.toks
    n = len(toks)
    i = 0
    while i < n:
        t = toks[i]
        if not (t.kind == "id" and t.text == "std"
                and i + 2 < n and toks[i + 1].text == "::"
                and toks[i + 2].kind == "id" and toks[i + 2].text == "thread"):
            i += 1
            continue
        site_line = t.line
        j = i + 3
        i += 3
        # `std::thread::hardware_concurrency()` and the like: a further
        # qualifier means this is not a construction.
        if j < n and toks[j].text == "::":
            continue
        # Optional variable name: `std::thread t(...)` / `std::thread t{...}`.
        if j < n and toks[j].kind == "id":
            j += 1
        # A construction has an argument list; `std::thread t;`,
        # `std::thread& t`, `vector<std::thread>` do not.
        if not (j < n and toks[j].kind == "punct" and toks[j].text in ("(", "{")):
            continue
        arg_close = sf.match.get(toks[j].i)
        if arg_close is None:
            continue
        k = j + 1
        # Only inline lambdas are in scope: the first argument must open
        # with a capture list.
        if not (k < arg_close and toks[k].kind == "punct" and toks[k].text == "["):
            continue
        cap_close = sf.match.get(toks[k].i)
        if cap_close is None:
            continue
        k = cap_close + 1
        if k < arg_close and toks[k].kind == "punct" and toks[k].text == "(":
            pclose = sf.match.get(toks[k].i)
            if pclose is None:
                continue
            k = pclose + 1
        # Skip mutable/noexcept/trailing-return-type up to the body.
        while k < arg_close and toks[k].text != "{":
            k += 1
        if k >= arg_close:
            continue
        body_open = k
        first = toks[body_open + 1] if body_open + 1 < n else None
        if not (first is not None and first.kind == "id" and first.text == "try"):
            out.append(Finding(
                RULE, sf.path, site_line,
                "inline std::thread lambda body does not open with try — an "
                "exception escaping the thread is std::terminate for the "
                "whole process; wrap the body in `try { ... } catch` and "
                "convert the failure into a recorded result"))
        body_close = sf.match.get(toks[body_open].i)
        if body_close is not None:
            i = body_close
    return out
