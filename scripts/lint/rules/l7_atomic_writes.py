"""L7 — file writes in src/mc/ and src/util/ must go through the atomic
temp+rename helper.

Checkpoints, stats reports, and anything else the library publishes to a
user-supplied path are read by other processes — a resumed run, a CI
grader, a dashboard tailer.  A plain `fopen(path, "w")` or `std::ofstream`
truncates the final path first and fills it in place: a crash (or SIGKILL,
or a fault-injection hit) mid-write leaves a torn file at the name the
consumer trusts, and a reader racing the writer observes a prefix.  The
repo's contract (src/util/atomic_write.hpp) is: build the body in memory,
then publish it with util::atomic_write_file — which writes a sibling temp
file and renames it over the target, so the final path only ever holds a
complete document.

Flagged:

    std::fopen(path, "w");                 // truncates the final path
    std::fopen(path, "ab");                // append still tears mid-record
    std::fopen(path, "r+b");               // update mode writes in place
    std::ofstream out(path);               // ofstream is write-by-default
    std::fstream io(path, ...);            // read/write stream

Accepted:

    std::fopen(path, "rb");                // reads are not publications
    util::atomic_write_file(path, body);   // the sanctioned path
    std::ifstream in(path);

`src/util/atomic_write.cpp` is exempt by path: it is the helper itself —
its fopen of the temp sibling is the mechanism the rule exists to funnel
everyone else through.  Streaming sinks outside src/mc/ and src/util/
(e.g. the obs trace writer, which appends events for the lifetime of the
run and cannot buffer them) are out of scope by design.
"""

from __future__ import annotations

from findings import Finding
from model import Project, SourceFile

RULE = "L7"
DESCRIPTION = ("file write to a final path without the atomic temp+rename "
               "helper")

# The helper's own implementation: the one fopen-for-write that is the
# sanctioned mechanism rather than a bypass of it.
_EXEMPT_PATHS = {"src/util/atomic_write.cpp"}

# Stream types whose construction/open targets a path for writing.
_WRITE_STREAMS = {"ofstream", "fstream"}

_MSG = ("%s writes the final path in place — a crash mid-write leaves a "
        "torn file where a consumer (resume, CI, dashboard) expects a "
        "complete one; build the body in memory and publish it with "
        "util::atomic_write_file (src/util/atomic_write.hpp)")


def applies(path: str) -> bool:
    if path in _EXEMPT_PATHS:
        return False
    return path.startswith("src/mc/") or path.startswith("src/util/")


def _literal_text(tok) -> str:
    """Payload of a string-literal token, quotes and encoding prefix shed."""
    s = tok.text
    q = s.find('"')
    return s[q + 1:-1] if q >= 0 and s.endswith('"') and len(s) > q + 1 else s


def _mode_writes(mode: str) -> bool:
    # "w"/"a" truncate/extend the target; '+' upgrades "r" to update mode.
    return any(c in mode for c in "wa+")


def _fopen_findings(sf: SourceFile, toks, i, n):
    """`fopen(path, mode)` with a write-capable mode (or one the linter
    cannot read): yield a finding anchored at the call."""
    t = toks[i]
    j = i + 1
    if not (j < n and toks[j].kind == "punct" and toks[j].text == "("):
        return
    close = sf.match.get(toks[j].i)
    if close is None:
        return
    # Find the mode argument: the token after the first top-level comma.
    k = j + 1
    mode_tok = None
    while k < close:
        tk = toks[k]
        if tk.kind == "punct" and tk.text in ("(", "[", "{"):
            m = sf.match.get(tk.i)
            if m is None:
                break
            k = m + 1
            continue
        if tk.kind == "punct" and tk.text == ",":
            if k + 1 < close:
                mode_tok = toks[k + 1]
            break
        k += 1
    if mode_tok is not None and mode_tok.kind == "str":
        if not _mode_writes(_literal_text(mode_tok)):
            return  # read-only mode: out of scope
        what = 'fopen(..., "%s")' % _literal_text(mode_tok)
    else:
        # Computed mode: the linter cannot prove it reads, so it must
        # assume it writes.
        what = "fopen with a non-literal mode"
    yield Finding(RULE, sf.path, t.line, _MSG % what)


def check(project: Project, sf: SourceFile):
    out = []
    toks = sf.toks
    n = len(toks)
    for i in range(n):
        t = toks[i]
        if t.kind != "id":
            continue
        if t.text == "fopen":
            out.extend(_fopen_findings(sf, toks, i, n))
        elif t.text in _WRITE_STREAMS:
            # `std::ofstream out(...)`, `ofstream{...}`, member declarations,
            # and `.open(...)` all start from this type name; any appearance
            # in the write-path layers is a bypass.  A further `::` qualifier
            # (e.g. std::ofstream::traits_type) is still the same type.
            out.append(Finding(
                RULE, sf.path, t.line,
                _MSG % ("std::%s" % t.text)))
    return out
