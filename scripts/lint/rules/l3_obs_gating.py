"""L3 — obs emission must be gated; emission paths must not allocate.

The obs contract is "off means free" (src/obs/trace.hpp).  `obs::emit` is
internally gated, but its *arguments* are evaluated at the call site — an
un-gated `obs::emit(..., std::to_string(x), ...)` pays allocation and
formatting even with tracing off.  Every `obs::emit` call in the library
must therefore sit inside a visible gate:

    if (obs::enabled()) { obs::emit(...); }          // direct gate
    if (!obs::enabled()) return;  ... obs::emit(...) // prologue gate
    const bool traced = obs::enabled();  if (traced) obs::emit(...);

`obs::Span` / `obs::ScopedEngine` are self-gated RAII and exempt — but a
Span *label argument* that allocates (std::string / std::to_string /
std::format / new) is evaluated unconditionally, so that is flagged too.
"""

from __future__ import annotations

from findings import Finding
from model import Project, SourceFile

RULE = "L3"
DESCRIPTION = "un-gated obs::emit / allocation in always-evaluated obs args"

_ALLOC_CALLS = {"to_string", "format"}


def applies(path: str) -> bool:
    return path.startswith("src/") and not path.startswith("src/obs/")


def check(project: Project, sf: SourceFile):
    out = []
    for fn in sf.funcs:
        out.extend(_check_fn(sf, fn))
    return out


def _seq(toks, i, *texts):
    """Tokens starting at i spell exactly `texts`."""
    n = len(toks)
    for off, want in enumerate(texts):
        if i + off >= n or toks[i + off].text != want:
            return False
    return True


def _gate_bools(sf, fn):
    """Local bool names assigned from obs::enabled() in this function."""
    toks = sf.toks
    names = set()
    for i in range(fn.body_open + 1, fn.body_close):
        t = toks[i]
        if (t.kind == "id" and t.text == "obs"
                and _seq(toks, i, "obs", "::", "enabled", "(")):
            # walk back over '=' to a name:  bool traced = obs::enabled();
            j = i - 1
            if j > fn.body_open and toks[j].text == "=" and toks[j - 1].kind == "id":
                names.add(toks[j - 1].text)
    return names


def _guarded_ranges(sf, fn, gate_names):
    """Token-index ranges [lo, hi) inside fn's body where emission is known
    gated."""
    toks = sf.toks
    ranges = []
    i = fn.body_open + 1
    while i < fn.body_close:
        t = toks[i]
        if t.kind == "id" and t.text == "if" and _seq(toks, i + 1, "("):
            copen = i + 1
            cclose = sf.match.get(toks[copen].i)
            if cclose is None:
                i += 1
                continue
            cond = toks[copen + 1:cclose]
            has_gate = False
            negated = False
            for k, ct in enumerate(cond):
                if (ct.kind == "id" and ct.text == "obs"
                        and k + 2 < len(cond) and cond[k + 1].text == "::"
                        and cond[k + 2].text == "enabled"):
                    has_gate = True
                    negated = k > 0 and cond[k - 1].text == "!"
                    break
                if ct.kind == "id" and ct.text in gate_names:
                    has_gate = True
                    negated = k > 0 and cond[k - 1].text == "!"
                    break
            if has_gate:
                blo, bhi, nxt = _stmt_range(sf, cclose + 1, fn.body_close)
                if not negated:
                    ranges.append((blo, bhi))
                else:
                    # `if (!obs::enabled()) return;` — the remainder of the
                    # function is gated (also accept continue/break: the
                    # over-approximation to end-of-body is harmless for a
                    # *linter gate*, the loop tail is gated either way).
                    first = toks[blo] if blo < bhi else None
                    if (first is not None and first.kind == "id"
                            and first.text in ("return", "continue", "break")):
                        ranges.append((nxt, fn.body_close))
                i = cclose + 1
                continue
        i += 1
    return ranges


def _stmt_range(sf, start, hi):
    toks = sf.toks
    i = start
    if i < hi and toks[i].kind == "punct" and toks[i].text == "{":
        close = sf.match.get(toks[i].i, hi)
        return (i + 1, close, close + 1)
    j = i
    while j < hi:
        tj = toks[j]
        if tj.kind == "punct":
            if tj.text == ";":
                return (i, j + 1, j + 1)
            if tj.text in ("(", "{", "["):
                j = sf.match.get(tj.i, j)
        j += 1
    return (i, hi, hi)


def _check_fn(sf, fn):
    toks = sf.toks
    out = []
    gate_names = _gate_bools(sf, fn)
    guarded = _guarded_ranges(sf, fn, gate_names)

    def is_guarded(i):
        return any(lo <= i < hi for lo, hi in guarded)

    i = fn.body_open + 1
    while i < fn.body_close:
        t = toks[i]
        if t.kind == "id" and t.text == "obs" and _seq(toks, i, "obs", "::"):
            what = toks[i + 2].text if i + 2 < fn.body_close else ""
            if what == "emit" and _seq(toks, i + 3, "("):
                if not is_guarded(i):
                    out.append(Finding(
                        RULE, sf.path, t.line,
                        "obs::emit call not visibly gated on obs::enabled(); "
                        "its arguments are evaluated even with tracing off — "
                        "wrap in `if (obs::enabled()) { ... }`"))
                i += 3
                continue
            if what in ("Span", "ScopedEngine") and i + 3 < fn.body_close:
                # Find the ctor argument list and flag allocating argument
                # expressions (evaluated even when tracing is off).
                j = i + 3
                while j < fn.body_close and toks[j].kind == "id":
                    j += 1  # skip the variable name
                if (j < fn.body_close and toks[j].kind == "punct"
                        and toks[j].text in ("(", "{")):
                    close = sf.match.get(toks[j].i, j)
                    for k in range(j + 1, close):
                        tk = toks[k]
                        if tk.kind != "id":
                            continue
                        if (tk.text in _ALLOC_CALLS
                                and k + 1 < close and toks[k + 1].text == "("):
                            out.append(Finding(
                                RULE, sf.path, tk.line,
                                f"'{tk.text}' in an obs::{what} argument "
                                f"allocates even when tracing is off; pass a "
                                f"literal label and emit details inside an "
                                f"enabled() gate"))
                    i = close + 1
                    continue
            i += 3
            continue
        i += 1
    return out
