#!/usr/bin/env python3
"""check_trace.py — validate a trace file produced by the obs subsystem.

Usage:
    scripts/check_trace.py trace.jsonl [--format jsonl|chrome]
                           [--min-engines N] [--min-events N]

jsonl  (default): every line must parse as a JSON object carrying exactly
       the schema keys {ts_us, tid, engine, kind, payload}; span events
       must carry payload.name and payload.dur_us.
chrome: the whole file must parse as one JSON array of trace events with
       name/cat/ph/pid/tid/ts; "X" (complete) events must carry dur.

Exits non-zero with a per-violation report; prints a one-line summary on
success.  Stdlib only — runs anywhere CI has a python3.
"""

import argparse
import collections
import json
import sys

SCHEMA_KEYS = {"ts_us", "tid", "engine", "kind", "payload"}


def check_jsonl(path, errors):
    engines = set()
    tids = set()
    kinds = collections.Counter()
    events = 0
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                ev = json.loads(line)
            except ValueError as ex:
                errors.append(f"{path}:{lineno}: unparseable line ({ex})")
                continue
            if not isinstance(ev, dict) or set(ev) != SCHEMA_KEYS:
                errors.append(
                    f"{path}:{lineno}: schema keys are {sorted(ev)}, "
                    f"expected {sorted(SCHEMA_KEYS)}")
                continue
            if not isinstance(ev["ts_us"], int) or ev["ts_us"] < 0:
                errors.append(f"{path}:{lineno}: bad ts_us {ev['ts_us']!r}")
            if not isinstance(ev["tid"], int) or ev["tid"] <= 0:
                errors.append(f"{path}:{lineno}: bad tid {ev['tid']!r}")
            if not isinstance(ev["payload"], dict):
                errors.append(f"{path}:{lineno}: payload is not an object")
                continue
            if ev["kind"] == "span":
                for key in ("name", "dur_us"):
                    if key not in ev["payload"]:
                        errors.append(
                            f"{path}:{lineno}: span payload lacks '{key}'")
            events += 1
            engines.add(ev["engine"])
            tids.add(ev["tid"])
            kinds[ev["kind"]] += 1
    return events, engines, tids, kinds


def check_chrome(path, errors):
    engines = set()
    tids = set()
    kinds = collections.Counter()
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except ValueError as ex:
        errors.append(f"{path}: not valid JSON ({ex})")
        return 0, engines, tids, kinds
    if not isinstance(data, list):
        errors.append(f"{path}: top level is not an array")
        return 0, engines, tids, kinds
    for i, ev in enumerate(data):
        missing = {"name", "cat", "ph", "pid", "tid", "ts"} - set(ev)
        if missing:
            errors.append(f"{path}: event {i} lacks {sorted(missing)}")
            continue
        if ev["ph"] == "X" and "dur" not in ev:
            errors.append(f"{path}: complete event {i} lacks dur")
        engines.add(ev["cat"])
        tids.add(ev["tid"])
        kinds["span" if ev["ph"] == "X" else ev["name"]] += 1
    return len(data), engines, tids, kinds


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace")
    ap.add_argument("--format", choices=("jsonl", "chrome"), default="jsonl")
    ap.add_argument("--min-engines", type=int, default=1,
                    help="require events from at least N distinct engine tags"
                         " (default 1; 'main'/'sampler' do not count)")
    ap.add_argument("--min-events", type=int, default=1)
    args = ap.parse_args()

    errors = []
    check = check_jsonl if args.format == "jsonl" else check_chrome
    events, engines, tids, kinds = check(args.trace, errors)

    real_engines = engines - {"main", "sampler"}
    if events < args.min_events:
        errors.append(f"{args.trace}: {events} events < {args.min_events}")
    if len(real_engines) < args.min_engines:
        errors.append(f"{args.trace}: engines {sorted(real_engines)} "
                      f"< {args.min_engines} required")

    if errors:
        for e in errors[:50]:
            print(e, file=sys.stderr)
        if len(errors) > 50:
            print(f"... and {len(errors) - 50} more", file=sys.stderr)
        return 1
    top = ", ".join(f"{k}={n}" for k, n in kinds.most_common(5))
    print(f"{args.trace}: OK — {events} events, "
          f"{len(real_engines)} engines over {len(tids)} threads ({top})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
