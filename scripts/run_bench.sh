#!/usr/bin/env bash
# run_bench.sh — build and run the SAT-core bench suite and maintain the
# machine-readable perf-trajectory files at the repo root:
#
#   BENCH_sat.json  one entry per solver workload + totals: propagations/s,
#                   conflicts/s, binary-propagation share, peak clause-store
#                   bytes, GC activity, learned-clause tiers, inprocessing
#                   counters, wall-clock.  Selected workloads appear twice —
#                   plain and `*_noinpr` (solver inprocessing off) — as the
#                   in-tree ablation for the simplification pipeline, plus a
#                   `preproc3sat` row driving the standalone Preprocessor
#                   front-end over the same formulas as `random3sat`.
#   BENCH_pdr.json  PDR engine over the circuit suite: per-instance verdict,
#                   queries, frames and the solver-side counters
#
# Each file is a *trajectory*: {"trajectory": [entry, entry, ...]}, one
# entry appended per run, stamped with the git commit, date and host that
# produced it — so the files diff as a history, not a single point.  Legacy
# single-object files are migrated into a one-entry trajectory on the next
# run.  The ctest label `perf-smoke` runs a seconds-scale slice of the same
# drivers as a sanity check (ctest -L perf-smoke).
#
# Usage: scripts/run_bench.sh [build_dir] [sat_scale] [pdr_seconds]
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$root/build}"
scale="${2:-1}"
pdr_sec="${3:-5}"

cmake -B "$build" -S "$root" > /dev/null
cmake --build "$build" -j "$(nproc)" --target bench_sat bench_pdr > /dev/null

commit="$(git -C "$root" rev-parse --short HEAD 2>/dev/null || echo unknown)"
date_utc="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
host="$(hostname 2>/dev/null || echo unknown)"

# Append a freshly produced bench entry ($2, a single JSON object) to the
# trajectory file ($1), stamping it with commit/date/host.  Overwriting
# would discard history; a legacy single-object file becomes entry 0.
append_entry() {
  local traj="$1" fresh="$2"
  if command -v python3 > /dev/null 2>&1; then
    COMMIT="$commit" DATE="$date_utc" HOST="$host" \
      python3 - "$traj" "$fresh" << 'EOF'
import json, os, sys

traj_path, fresh_path = sys.argv[1], sys.argv[2]
with open(fresh_path) as f:
    entry = json.load(f)
entry["commit"] = os.environ["COMMIT"]
entry["date"] = os.environ["DATE"]
entry["host"] = os.environ["HOST"]

history = []
if os.path.exists(traj_path):
    try:
        with open(traj_path) as f:
            old = json.load(f)
        if isinstance(old, dict) and isinstance(old.get("trajectory"), list):
            history = old["trajectory"]
        elif isinstance(old, dict):
            old.setdefault("commit", "pre-trajectory")
            history = [old]  # migrate a legacy single-point file
    except (ValueError, OSError):
        history = []  # unreadable: restart the trajectory, keep the run

history.append(entry)
with open(traj_path, "w") as f:
    json.dump({"trajectory": history}, f, indent=1)
    f.write("\n")
EOF
  else
    # No python3: keep the single-point behaviour rather than corrupt the
    # trajectory with shell-quoted JSON surgery.
    echo "run_bench.sh: python3 not found; writing $traj as a single point" >&2
    cp "$fresh" "$traj"
  fi
  rm -f "$fresh"
}

"$build/bench_sat" "$scale" "$root/BENCH_sat.fresh.json"
append_entry "$root/BENCH_sat.json" "$root/BENCH_sat.fresh.json"
echo
"$build/bench_pdr" "$pdr_sec" "" "$root/BENCH_pdr.fresh.json"
append_entry "$root/BENCH_pdr.json" "$root/BENCH_pdr.fresh.json"
echo
echo "trajectory: $root/BENCH_sat.json, $root/BENCH_pdr.json (commit $commit)"
