#!/usr/bin/env bash
# run_bench.sh — build and run the SAT-core bench suite and emit the
# machine-readable perf-trajectory files at the repo root:
#
#   BENCH_sat.json  one entry per solver workload + totals: propagations/s,
#                   conflicts/s, binary-propagation share, peak clause-store
#                   bytes, GC activity, learned-clause tiers, wall-clock
#   BENCH_pdr.json  PDR engine over the circuit suite: per-instance verdict,
#                   queries, frames and the solver-side counters
#
# These files are committed with perf PRs so the trajectory is diffable
# across commits.  The ctest label `perf-smoke` runs a seconds-scale slice
# of the same drivers as a sanity check (ctest -L perf-smoke).
#
# Usage: scripts/run_bench.sh [build_dir] [sat_scale] [pdr_seconds]
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$root/build}"
scale="${2:-1}"
pdr_sec="${3:-5}"

cmake -B "$build" -S "$root" > /dev/null
cmake --build "$build" -j "$(nproc)" --target bench_sat bench_pdr > /dev/null

"$build/bench_sat" "$scale" "$root/BENCH_sat.json"
echo
"$build/bench_pdr" "$pdr_sec" "" "$root/BENCH_pdr.json"
echo
echo "trajectory: $root/BENCH_sat.json, $root/BENCH_pdr.json"
