#!/bin/sh
# check_tree.sh — tree-hygiene guard, run as a ctest.
#
# Fails when build artifacts (build*/ trees, ctest's Testing/ directory)
# are tracked in the git index, which once bloated every clone with 716
# object files.  Passes silently when git (or a work tree) is unavailable,
# e.g. in an exported source tarball.
set -u

repo_root=$(dirname "$0")/..
cd "$repo_root" || exit 1

if ! command -v git > /dev/null 2>&1; then
  echo "check_tree: git not available, skipping"
  exit 0
fi
if ! git rev-parse --is-inside-work-tree > /dev/null 2>&1; then
  echo "check_tree: not a git work tree, skipping"
  exit 0
fi

tracked=$(git ls-files | grep -E '^(build[^/]*|Testing)/' || true)
if [ -n "$tracked" ]; then
  count=$(printf '%s\n' "$tracked" | wc -l)
  echo "check_tree: $count build artifact(s) tracked in git:"
  printf '%s\n' "$tracked" | head -20
  echo "check_tree: run 'git rm -r --cached <paths>' and keep them ignored"
  exit 1
fi
echo "check_tree: no tracked build artifacts"
exit 0
