// certify_test.cpp — inductive-invariant certificates for PASS verdicts.
//
// Every interpolation engine must emit a certificate on PASS that the
// independent four-condition checker accepts; deliberately wrong
// certificates must be rejected with the right condition named.
#include <gtest/gtest.h>

#include "bench_circuits/generators.hpp"
#include "bench_circuits/suite.hpp"
#include "mc/certify.hpp"
#include "mc/engine.hpp"
#include "mc/portfolio.hpp"

namespace itpseq {
namespace {

using Checker = mc::EngineResult (*)(const aig::Aig&, std::size_t,
                                     const mc::EngineOptions&);

mc::EngineResult run_itp(const aig::Aig& g, std::size_t p,
                         const mc::EngineOptions& o) {
  return mc::check_itp(g, p, o);
}
mc::EngineResult run_itp_part(const aig::Aig& g, std::size_t p,
                              const mc::EngineOptions& o) {
  mc::EngineOptions oo = o;
  oo.itp_partitioned = true;
  return mc::check_itp(g, p, oo);
}
mc::EngineResult run_itpseq(const aig::Aig& g, std::size_t p,
                            const mc::EngineOptions& o) {
  return mc::check_itpseq(g, p, o);
}
mc::EngineResult run_sitpseq(const aig::Aig& g, std::size_t p,
                             const mc::EngineOptions& o) {
  return mc::check_sitpseq(g, p, o);
}
mc::EngineResult run_cba(const aig::Aig& g, std::size_t p,
                         const mc::EngineOptions& o) {
  return mc::check_itpseq_cba(g, p, o);
}
mc::EngineResult run_pba(const aig::Aig& g, std::size_t p,
                         const mc::EngineOptions& o) {
  return mc::check_itpseq_pba(g, p, o);
}
mc::EngineResult run_cba_pba(const aig::Aig& g, std::size_t p,
                             const mc::EngineOptions& o) {
  return mc::check_itpseq_cba_pba(g, p, o);
}

struct EngineCase {
  const char* name;
  Checker run;
};

const EngineCase kEngines[] = {
    {"itp", run_itp},         {"itp-part", run_itp_part},
    {"itpseq", run_itpseq},   {"sitpseq", run_sitpseq},
    {"cba", run_cba},         {"pba", run_pba},
    {"cba+pba", run_cba_pba},
};

class CertifyEngineTest : public ::testing::TestWithParam<int> {};

TEST_P(CertifyEngineTest, SuitePassCertificatesCheck) {
  const EngineCase& e = kEngines[GetParam()];
  mc::EngineOptions opts;
  opts.time_limit_sec = 15.0;
  unsigned certified = 0;
  for (auto& inst : bench::make_academic_suite(20)) {
    if (inst.expected != bench::Expected::kPass) continue;
    mc::EngineResult r = e.run(inst.model, 0, opts);
    if (r.verdict != mc::Verdict::kPass) continue;
    ASSERT_TRUE(r.certificate.has_value()) << e.name << " " << inst.name;
    mc::CertifyResult c =
        mc::check_certificate(inst.model, 0, *r.certificate);
    EXPECT_TRUE(c.ok) << e.name << " " << inst.name << ": " << c.error;
    ++certified;
  }
  EXPECT_GE(certified, 10u) << e.name;
}

INSTANTIATE_TEST_SUITE_P(Engines, CertifyEngineTest, ::testing::Range(0, 7),
                         [](const auto& tpinfo) {
                           std::string n = kEngines[tpinfo.param].name;
                           for (char& c : n)
                             if (c == '-' || c == '+') c = '_';
                           return n;
                         });

TEST(Certify, OptionsVariantsStillCertify) {
  aig::Aig g = bench::token_ring(6, false);
  for (itp::System sys : {itp::System::kMcMillan, itp::System::kPudlak,
                          itp::System::kInverseMcMillan}) {
    mc::EngineOptions opts;
    opts.time_limit_sec = 15.0;
    opts.itp_system = sys;
    opts.fraig_interpolants = true;
    mc::EngineResult r = mc::check_itpseq(g, 0, opts);
    ASSERT_EQ(r.verdict, mc::Verdict::kPass);
    ASSERT_TRUE(r.certificate.has_value());
    mc::CertifyResult c = mc::check_certificate(g, 0, *r.certificate);
    EXPECT_TRUE(c.ok) << to_string(sys) << ": " << c.error;
  }
}

TEST(Certify, TrivialPropertyCertificate) {
  aig::Aig g;
  g.add_latch();
  g.set_latch_next(g.latch(0), g.latch(0));
  g.add_output(aig::kFalse);  // bad never fires
  mc::EngineResult r = mc::check_itpseq(g, 0, {});
  ASSERT_EQ(r.verdict, mc::Verdict::kPass);
  ASSERT_TRUE(r.certificate.has_value());
  EXPECT_TRUE(mc::check_certificate(g, 0, *r.certificate).ok);
}

TEST(Certify, RejectsTrueOnFailingModel) {
  // R = TRUE on a model whose bad is reachable: C4 (or C2) must fail.
  aig::Aig g = bench::counter(4, 12, 7);
  mc::Certificate cert;
  for (std::size_t i = 0; i < g.num_latches(); ++i) cert.graph.add_input();
  cert.root = aig::kTrue;
  mc::CertifyResult c = mc::check_certificate(g, 0, cert);
  EXPECT_FALSE(c.ok);
  EXPECT_NE(c.error.find("C4"), std::string::npos) << c.error;
}

TEST(Certify, RejectsFalse) {
  aig::Aig g = bench::token_ring(5, false);
  mc::Certificate cert;
  for (std::size_t i = 0; i < g.num_latches(); ++i) cert.graph.add_input();
  cert.root = aig::kFalse;
  mc::CertifyResult c = mc::check_certificate(g, 0, cert);
  EXPECT_FALSE(c.ok);
  EXPECT_NE(c.error.find("C1"), std::string::npos) << c.error;
}

TEST(Certify, RejectsNonInductiveSet) {
  // R = "exactly the initial state" of a counter that moves: C3 must fail
  // (closed-ness), since the successor leaves R.
  aig::Aig g = bench::counter(4, 12, 14);  // PASS model, but R too small
  mc::Certificate cert;
  std::vector<aig::Lit> ins;
  for (std::size_t i = 0; i < g.num_latches(); ++i)
    ins.push_back(cert.graph.add_input());
  // All latches zero.
  aig::Lit all0 = aig::kTrue;
  for (aig::Lit l : ins) all0 = cert.graph.make_and(all0, aig::lit_not(l));
  cert.root = all0;
  mc::CertifyResult c = mc::check_certificate(g, 0, cert);
  EXPECT_FALSE(c.ok);
  EXPECT_NE(c.error.find("C3"), std::string::npos) << c.error;
}

TEST(Certify, RejectsMissingInitialStates) {
  // R that excludes the initial state: C1 must fail.
  aig::Aig g = bench::counter(3, 6, 8);
  mc::Certificate cert;
  std::vector<aig::Lit> ins;
  for (std::size_t i = 0; i < g.num_latches(); ++i)
    ins.push_back(cert.graph.add_input());
  cert.root = ins[0];  // requires latch 0 = 1, initial state has 0
  mc::CertifyResult c = mc::check_certificate(g, 0, cert);
  EXPECT_FALSE(c.ok);
  EXPECT_NE(c.error.find("C1"), std::string::npos) << c.error;
}

TEST(Certify, HandWrittenInvariantAccepted) {
  // The classic one-hot invariant of the token ring, written by hand,
  // must pass the checker (it is inductive and safe).
  aig::Aig g = bench::token_ring(5, false);
  mc::Certificate cert;
  std::vector<aig::Lit> ins;
  for (std::size_t i = 0; i < g.num_latches(); ++i)
    ins.push_back(cert.graph.add_input());
  // Exactly one token: OR over i of (l_i AND no other).
  std::vector<aig::Lit> cases;
  for (std::size_t i = 0; i < ins.size(); ++i) {
    aig::Lit only = ins[i];
    for (std::size_t j = 0; j < ins.size(); ++j)
      if (j != i) only = cert.graph.make_and(only, aig::lit_not(ins[j]));
    cases.push_back(only);
  }
  cert.root = cert.graph.make_or_many(cases);
  mc::CertifyResult c = mc::check_certificate(g, 0, cert);
  EXPECT_TRUE(c.ok) << c.error;
}

TEST(Certify, PortfolioPropagatesCertificates) {
  aig::Aig g = bench::token_ring(6, false);
  mc::PortfolioOptions po;
  po.time_limit_sec = 20.0;
  mc::EngineResult r = mc::check_portfolio(g, 0, po);
  ASSERT_EQ(r.verdict, mc::Verdict::kPass);
  if (r.certificate.has_value()) {
    EXPECT_TRUE(mc::check_certificate(g, 0, *r.certificate).ok);
  }
}

}  // namespace
}  // namespace itpseq
