// itp_systems_test.cpp — labeled interpolation systems (McMillan, Pudlak,
// inverse McMillan).
//
// For randomly generated partitioned UNSAT formulas we verify, by
// independent SAT checks:
//   * Definition 1 (per cut, per system): A => I, I AND B unsat, support;
//   * Definition 2 (per system): I_j AND A_{j+1} => I_{j+1} — the
//     path-interpolation property every LIS enjoys;
//   * the strength ordering ITP_M => ITP_P => ITP_M' from the same proof;
//   * the duality laws ITP_M'(A,B) = NOT ITP_M(B,A) and
//     ITP_P(A,B) = NOT ITP_P(B,A) (Pudlak is self-dual).
// Engine-level tests check that every system yields correct verdicts.
#include <gtest/gtest.h>

#include <random>

#include "aig/aig.hpp"
#include "bench_circuits/generators.hpp"
#include "cnf/tseitin.hpp"
#include "itp/interpolate.hpp"
#include "mc/engine.hpp"
#include "sat/proof_check.hpp"
#include "sat/solver.hpp"

namespace itpseq {
namespace {

using itp::System;

/// gtest-safe (alphanumeric) identifier for a system.
std::string sys_id(System s) {
  switch (s) {
    case System::kMcMillan: return "McMillan";
    case System::kPudlak: return "Pudlak";
    case System::kInverseMcMillan: return "InverseMcMillan";
  }
  return "Unknown";
}

struct PartitionedCnf {
  unsigned nvars = 0;
  std::vector<std::pair<std::vector<sat::Lit>, std::uint32_t>> clauses;
};

PartitionedCnf random_cnf(std::mt19937& rng, unsigned max_label) {
  PartitionedCnf f;
  f.nvars = 6 + rng() % 8;
  unsigned nclauses =
      static_cast<unsigned>(f.nvars * (3.0 + (rng() % 25) / 10.0));
  for (unsigned c = 0; c < nclauses; ++c) {
    unsigned len = 1 + rng() % 3;
    std::vector<sat::Lit> cl;
    for (unsigned k = 0; k < len; ++k)
      cl.push_back(sat::mk_lit(rng() % f.nvars, rng() % 2));
    f.clauses.push_back({cl, 1 + rng() % max_label});
  }
  return f;
}

sat::Lit encode_pred(const aig::Aig& g, aig::Lit root, sat::Solver& solver,
                     const std::vector<sat::Var>& var_of_input) {
  cnf::TseitinEncoder enc(g, solver, [&](aig::Var v) {
    return sat::mk_lit(var_of_input[g.input_index(v)]);
  });
  return enc.encode(root, 0);
}

/// SAT-check "clauses with label in [lo,hi] AND each pred with its sign".
sat::Status query(const PartitionedCnf& f, std::uint32_t lo, std::uint32_t hi,
                  const aig::Aig& g,
                  std::vector<std::pair<aig::Lit, bool>> preds) {
  sat::Solver s;
  std::vector<sat::Var> vars;
  for (unsigned i = 0; i < f.nvars; ++i) vars.push_back(s.new_var());
  for (const auto& [lits, label] : f.clauses) {
    if (label < lo || label > hi) continue;
    std::vector<sat::Lit> cl;
    for (sat::Lit l : lits)
      cl.push_back(sat::mk_lit(vars[sat::var(l)], sat::sign(l)));
    s.add_clause(cl);
  }
  for (auto [p, positive] : preds) {
    if (p == aig::kTrue) {
      if (!positive) return sat::Status::kUnsat;
      continue;
    }
    if (p == aig::kFalse) {
      if (positive) return sat::Status::kUnsat;
      continue;
    }
    sat::Lit e = encode_pred(g, p, s, vars);
    s.add_clause({positive ? e : sat::neg(e)});
  }
  return s.solve();
}

aig::Aig fresh_universe(unsigned nvars) {
  aig::Aig g;
  for (unsigned i = 0; i < nvars; ++i) g.add_input();
  return g;
}

/// Solve the labeled CNF with proof logging; returns nullptr if SAT.
std::unique_ptr<sat::Solver> refute(const PartitionedCnf& f) {
  auto s = std::make_unique<sat::Solver>();
  s->enable_proof();
  for (unsigned i = 0; i < f.nvars; ++i) s->new_var();
  for (const auto& [lits, label] : f.clauses) s->add_clause(lits, label);
  if (s->solve() != sat::Status::kUnsat) return nullptr;
  auto pc = sat::check_proof(s->proof());
  EXPECT_TRUE(pc.ok) << pc.error;
  return s;
}

void verify_system(const PartitionedCnf& f, unsigned max_label, System sys) {
  auto s = refute(f);
  if (!s) return;  // satisfiable draw — nothing to interpolate

  aig::Aig g = fresh_universe(f.nvars);
  itp::InterpolantExtractor ex(s->proof());
  std::vector<aig::Lit> seq = ex.extract_sequence(
      g, 1, max_label - 1,
      [&](std::uint32_t, sat::Var v) { return g.input(v); }, sys);

  for (std::uint32_t cut = 1; cut + 1 <= max_label; ++cut) {
    aig::Lit I = seq[cut - 1];
    for (aig::Var v : g.support(I)) {
      std::size_t idx = g.input_index(v);
      EXPECT_TRUE(ex.shared_at(static_cast<sat::Var>(idx), cut))
          << to_string(sys) << " cut " << cut << " var " << idx;
    }
    EXPECT_EQ(query(f, 0, cut, g, {{I, false}}), sat::Status::kUnsat)
        << to_string(sys) << ": A => I failed at cut " << cut;
    EXPECT_EQ(query(f, cut + 1, max_label, g, {{I, true}}), sat::Status::kUnsat)
        << to_string(sys) << ": I & B sat at cut " << cut;
  }
  for (std::uint32_t j = 1; j + 2 <= max_label; ++j)
    EXPECT_EQ(query(f, j + 1, j + 1, g, {{seq[j - 1], true}, {seq[j], false}}),
              sat::Status::kUnsat)
        << to_string(sys) << ": chain condition failed at j=" << j;
}

class ItpSystemRandomTest
    : public ::testing::TestWithParam<std::tuple<int, System>> {};

TEST_P(ItpSystemRandomTest, Definition1And2Hold) {
  auto [seed, sys] = GetParam();
  std::mt19937 rng(seed);
  unsigned max_label = 2 + rng() % 4;
  PartitionedCnf f = random_cnf(rng, max_label);
  verify_system(f, max_label, sys);
}

INSTANTIATE_TEST_SUITE_P(
    RandomCnf, ItpSystemRandomTest,
    ::testing::Combine(::testing::Range(0, 40),
                       ::testing::Values(System::kMcMillan, System::kPudlak,
                                         System::kInverseMcMillan)),
    [](const auto& tpinfo) {
      return sys_id(std::get<1>(tpinfo.param)) + "_s" +
             std::to_string(std::get<0>(tpinfo.param));
    });

class ItpStrengthTest : public ::testing::TestWithParam<int> {};

TEST_P(ItpStrengthTest, McMillanImpliesPudlakImpliesInverse) {
  std::mt19937 rng(GetParam());
  unsigned max_label = 2 + rng() % 4;
  PartitionedCnf f = random_cnf(rng, max_label);
  auto s = refute(f);
  if (!s) return;

  aig::Aig g = fresh_universe(f.nvars);
  itp::InterpolantExtractor ex(s->proof());
  auto leaf = [&](std::uint32_t, sat::Var v) { return g.input(v); };
  auto m = ex.extract_sequence(g, 1, max_label - 1, leaf, System::kMcMillan);
  auto p = ex.extract_sequence(g, 1, max_label - 1, leaf, System::kPudlak);
  auto i =
      ex.extract_sequence(g, 1, max_label - 1, leaf, System::kInverseMcMillan);

  // Strength is checked in isolation (no clauses asserted, labels [1,0]):
  // stronger AND NOT weaker must be unsatisfiable.
  for (std::uint32_t cut = 1; cut + 1 <= max_label; ++cut) {
    EXPECT_EQ(query(f, 1, 0, g, {{m[cut - 1], true}, {p[cut - 1], false}}),
              sat::Status::kUnsat)
        << "ITP_M => ITP_P failed at cut " << cut;
    EXPECT_EQ(query(f, 1, 0, g, {{p[cut - 1], true}, {i[cut - 1], false}}),
              sat::Status::kUnsat)
        << "ITP_P => ITP_M' failed at cut " << cut;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCnf, ItpStrengthTest, ::testing::Range(0, 40));

/// Re-solve the same clause list with mirrored labels (label -> max+1-label).
/// The solver is deterministic, so the refutation has identical shape and
/// duality laws can be compared interpolant-to-interpolant.
PartitionedCnf mirrored(const PartitionedCnf& f, unsigned max_label) {
  PartitionedCnf r = f;
  for (auto& [lits, label] : r.clauses) label = max_label + 1 - label;
  return r;
}

class ItpDualityTest : public ::testing::TestWithParam<int> {};

TEST_P(ItpDualityTest, InverseMcMillanIsDualAndPudlakSelfDual) {
  std::mt19937 rng(GetParam());
  unsigned max_label = 2 + rng() % 4;
  PartitionedCnf f = random_cnf(rng, max_label);
  auto s1 = refute(f);
  if (!s1) return;
  PartitionedCnf fm = mirrored(f, max_label);
  auto s2 = refute(fm);
  ASSERT_TRUE(s2);  // same clauses, same solver: still UNSAT

  aig::Aig g = fresh_universe(f.nvars);
  itp::InterpolantExtractor ex1(s1->proof());
  itp::InterpolantExtractor ex2(s2->proof());
  auto leaf = [&](sat::Var v) { return g.input(v); };

  for (std::uint32_t cut = 1; cut + 1 <= max_label; ++cut) {
    // Cut `cut` of f corresponds to cut max_label - cut of the mirrored
    // formula with A and B swapped.
    std::uint32_t mcut = max_label - cut;
    aig::Lit m_fwd = ex1.extract(g, cut, leaf, System::kMcMillan);
    aig::Lit inv_rev = ex2.extract(g, mcut, leaf, System::kInverseMcMillan);
    // ITP_M'(B,A) == NOT ITP_M(A,B): check equivalence both ways.
    EXPECT_EQ(query(f, 1, 0, g, {{m_fwd, true}, {inv_rev, true}}),
              sat::Status::kUnsat)
        << "duality (M vs M') failed at cut " << cut;
    EXPECT_EQ(query(f, 1, 0, g, {{m_fwd, false}, {inv_rev, false}}),
              sat::Status::kUnsat)
        << "duality (M vs M') failed at cut " << cut;

    aig::Lit p_fwd = ex1.extract(g, cut, leaf, System::kPudlak);
    aig::Lit p_rev = ex2.extract(g, mcut, leaf, System::kPudlak);
    EXPECT_EQ(query(f, 1, 0, g, {{p_fwd, true}, {p_rev, true}}),
              sat::Status::kUnsat)
        << "Pudlak self-duality failed at cut " << cut;
    EXPECT_EQ(query(f, 1, 0, g, {{p_fwd, false}, {p_rev, false}}),
              sat::Status::kUnsat)
        << "Pudlak self-duality failed at cut " << cut;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCnf, ItpDualityTest, ::testing::Range(0, 30));

TEST(ItpSystems, HandCraftedPudlakSharedPivot) {
  // A: (a), B: (~a).  Pudlak's interpolant must be exactly `a`.
  PartitionedCnf f;
  f.nvars = 1;
  f.clauses = {{{sat::mk_lit(0)}, 1}, {{sat::mk_lit(0, true)}, 2}};
  auto s = refute(f);
  ASSERT_TRUE(s);
  aig::Aig g = fresh_universe(1);
  itp::InterpolantExtractor ex(s->proof());
  aig::Lit I =
      ex.extract(g, 1, [&](sat::Var v) { return g.input(v); },
                 System::kPudlak);
  EXPECT_EQ(I, g.input(0));
}

TEST(ItpSystems, ToStringNames) {
  EXPECT_STREQ(to_string(System::kMcMillan), "mcmillan");
  EXPECT_STREQ(to_string(System::kPudlak), "pudlak");
  EXPECT_STREQ(to_string(System::kInverseMcMillan), "inverse-mcmillan");
}

// --- engine integration: every system proves / falsifies correctly ----------

struct EngineSystemCase {
  const char* name;
  aig::Aig (*make)();
  mc::Verdict expected;
};

aig::Aig make_counter_pass() { return bench::counter(4, 12, 14); }
aig::Aig make_counter_fail() { return bench::counter(4, 12, 7); }
aig::Aig make_ring_pass() { return bench::token_ring(6, false); }
aig::Aig make_queue_pass() { return bench::queue(5, true); }

class EngineSystemTest
    : public ::testing::TestWithParam<std::tuple<int, System>> {};

TEST_P(EngineSystemTest, VerdictsMatchGroundTruth) {
  static const EngineSystemCase cases[] = {
      {"counter_pass", make_counter_pass, mc::Verdict::kPass},
      {"counter_fail", make_counter_fail, mc::Verdict::kFail},
      {"ring_pass", make_ring_pass, mc::Verdict::kPass},
      {"queue_pass", make_queue_pass, mc::Verdict::kPass},
  };
  auto [idx, sys] = GetParam();
  const EngineSystemCase& c = cases[idx];
  mc::EngineOptions opts;
  opts.time_limit_sec = 30.0;
  opts.itp_system = sys;

  aig::Aig model = c.make();
  mc::EngineResult r1 = mc::check_itp(model, 0, opts);
  EXPECT_EQ(r1.verdict, c.expected) << c.name << " ITP " << to_string(sys);
  mc::EngineResult r2 = mc::check_itpseq(model, 0, opts);
  EXPECT_EQ(r2.verdict, c.expected) << c.name << " ITPSEQ " << to_string(sys);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, EngineSystemTest,
    ::testing::Combine(::testing::Range(0, 4),
                       ::testing::Values(System::kMcMillan, System::kPudlak,
                                         System::kInverseMcMillan)),
    [](const auto& tpinfo) {
      return sys_id(std::get<1>(tpinfo.param)) + "_c" +
             std::to_string(std::get<0>(tpinfo.param));
    });

}  // namespace
}  // namespace itpseq
