// cli_test.cpp — end-to-end tests of the command-line tools (itpseq-mc,
// aigtool), invoked as subprocesses on circuits written to a temp dir.
// The tool directory is injected by CMake as ITPSEQ_TOOL_DIR.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "aig/aiger_io.hpp"
#include "bench_circuits/generators.hpp"
#include "io/blif.hpp"
#include "mc/certify.hpp"

#ifndef ITPSEQ_TOOL_DIR
#define ITPSEQ_TOOL_DIR "."
#endif
#ifndef ITPSEQ_DATA_DIR
#define ITPSEQ_DATA_DIR "tests/data"
#endif

namespace itpseq {
namespace {

std::string tool(const std::string& name) {
  return std::string(ITPSEQ_TOOL_DIR) + "/" + name;
}

std::string temp_path(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir ? dir : "/tmp") + "/itpseq_cli_" + name;
}

/// Run a command, returning its exit status (-1 on spawn failure).
/// `merge_stderr` folds stderr into the captured output — for tests that
/// assert on diagnostics, which the tools print to stderr.
int run(const std::string& cmd, std::string* output = nullptr,
        bool merge_stderr = false) {
  std::string full = cmd + (merge_stderr ? " 2>&1" : " 2>/dev/null");
  FILE* p = popen(full.c_str(), "r");
  if (!p) return -1;
  std::string text;
  char buf[512];
  while (std::size_t n = std::fread(buf, 1, sizeof buf, p)) text.append(buf, n);
  int status = pclose(p);
  if (output) *output = text;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

class CliTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pass_aag_ = temp_path("pass.aag");
    fail_aag_ = temp_path("fail.aag");
    aig::write_aiger_file(bench::token_ring(6, false), pass_aag_);
    aig::write_aiger_file(bench::counter(4, 12, 7), fail_aag_);
  }
  static std::string pass_aag_, fail_aag_;
};

std::string CliTest::pass_aag_;
std::string CliTest::fail_aag_;

TEST_F(CliTest, McPassExitCode0) {
  std::string out;
  int rc = run(tool("itpseq-mc") + " -q -t 30 " + pass_aag_, &out);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("s PASS"), std::string::npos);
}

TEST_F(CliTest, McFailExitCode1WithValidWitness) {
  std::string out;
  int rc = run(tool("itpseq-mc") + " -q -t 30 --validate -w - " + fail_aag_,
               &out);
  EXPECT_EQ(rc, 1);
  EXPECT_NE(out.find("s FAIL"), std::string::npos);
  EXPECT_NE(out.find("1\nb0\n"), std::string::npos) << out;  // witness header
}

TEST_F(CliTest, McSatRestartModesAgree) {
  // Luby and EMA restarts must reach the same verdict (exit code).
  for (const char* mode : {"luby", "ema"}) {
    std::string cmd = tool("itpseq-mc") + " -q -t 30 -e pdr --sat-restarts " +
                      std::string(mode) + " " + fail_aag_;
    EXPECT_EQ(run(cmd), 1) << mode;
  }
}

TEST_F(CliTest, McBmcIncrementalModesAgree) {
  // Incremental (default) and the monolithic cross-check mode must find
  // the same verdict through the CLI.
  for (const char* mode : {"--incremental=on", "--incremental=off"}) {
    std::string cmd = tool("itpseq-mc") + " -q -t 30 -e bmc " +
                      std::string(mode) + " " + fail_aag_;
    EXPECT_EQ(run(cmd), 1) << mode;
  }
}

TEST_F(CliTest, McEveryEngineAgrees) {
  for (const char* e :
       {"itp", "itp-part", "itpseq", "sitpseq", "itpseq-cba", "itpseq-pba",
        "itpseq-cba-pba", "pdr", "bmc", "kind", "bdd", "portfolio"}) {
    std::string cmd =
        tool("itpseq-mc") + " -q -t 30 -e " + e + " " + fail_aag_;
    EXPECT_EQ(run(cmd), 1) << e;
  }
  for (const char* e : {"itp", "itpseq", "sitpseq", "pdr", "kind", "bdd"}) {
    std::string cmd =
        tool("itpseq-mc") + " -q -t 30 -e " + e + " " + pass_aag_;
    EXPECT_EQ(run(cmd), 0) << e;
  }
}

TEST_F(CliTest, McCertifyPassVerdicts) {
  for (const char* e : {"itp", "itpseq", "sitpseq", "itpseq-cba",
                        "itpseq-pba", "itpseq-cba-pba", "pdr"}) {
    std::string out;
    int rc = run(tool("itpseq-mc") + " -t 30 --certify -e " + e + " " +
                     pass_aag_,
                 &out);
    EXPECT_EQ(rc, 0) << e;
    EXPECT_NE(out.find("certificate: OK"), std::string::npos) << e;
  }
  // Engines without certificates must report an error under --certify.
  EXPECT_EQ(run(tool("itpseq-mc") + " -t 30 --certify -e bdd " + pass_aag_),
            2);
}

TEST_F(CliTest, McPdrEndToEnd) {
  // FAIL side: validated witness written to stdout.
  std::string out;
  int rc = run(tool("itpseq-mc") + " -q -t 30 -e pdr --validate -w - " +
                   fail_aag_,
               &out);
  EXPECT_EQ(rc, 1);
  EXPECT_NE(out.find("1\nb0\n"), std::string::npos) << out;
  // PASS side: the engine's inductive invariant re-checked independently.
  rc = run(tool("itpseq-mc") + " -t 30 -e pdr --certify " + pass_aag_, &out);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("certificate: OK"), std::string::npos) << out;
}

TEST_F(CliTest, McExportedInvariantIsACertificate) {
  std::string inv = temp_path("inv.blif");
  ASSERT_EQ(run(tool("itpseq-mc") + " -q -t 30 --invariant " + inv + " " +
                pass_aag_),
            0);
  // Reload the exported invariant and re-check it as a certificate for
  // the original model — full independence from the engine run.
  aig::Aig model = bench::token_ring(6, false);
  aig::Aig inv_g = io::read_blif_file(inv);
  mc::Certificate cert;
  cert.graph = inv_g;
  cert.root = inv_g.output(0);
  mc::CertifyResult c = mc::check_certificate(model, 0, cert);
  EXPECT_TRUE(c.ok) << c.error;
}

TEST_F(CliTest, McQuietEmitsOnlyTheVerdictLine) {
  // --quiet must suppress every "c ..." comment line: stdout is exactly the
  // solution line, so scripts can `read verdict < <(itpseq-mc -q ...)`.
  std::string out;
  EXPECT_EQ(run(tool("itpseq-mc") + " -q -t 30 " + pass_aag_, &out), 0);
  EXPECT_EQ(out, "s PASS\n");
  EXPECT_EQ(run(tool("itpseq-mc") + " -q -t 30 -e bmc " + fail_aag_, &out),
            1);
  EXPECT_EQ(out, "s FAIL\n");
  // Without --quiet the comment lines are present.
  EXPECT_EQ(run(tool("itpseq-mc") + " -t 30 " + pass_aag_, &out), 0);
  EXPECT_NE(out.find("c engine="), std::string::npos) << out;
}

TEST_F(CliTest, McTraceAndStatsJsonFilesAreWritten) {
  std::string trace = temp_path("run.jsonl");
  std::string chrome = temp_path("run.chrome.json");
  std::string stats = temp_path("run_stats.json");
  ASSERT_EQ(run(tool("itpseq-mc") + " -q -t 30 -e pdr --trace-out " + trace +
                " --stats-json " + stats + " " + pass_aag_),
            0);
  // JSONL: non-empty, every line carries the schema keys.
  std::ifstream in(trace);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    for (const char* key :
         {"\"ts_us\":", "\"tid\":", "\"engine\":", "\"kind\":", "\"payload\":"})
      EXPECT_NE(line.find(key), std::string::npos) << line;
  }
  EXPECT_GT(lines, 0u);
  // Stats report: verdict and engine recorded.
  std::string report;
  {
    std::ifstream sin(stats);
    std::stringstream ss;
    ss << sin.rdbuf();
    report = ss.str();
  }
  EXPECT_NE(report.find("\"verdict\":\"PASS\""), std::string::npos) << report;
  EXPECT_NE(report.find("\"engine\":\"PDR\""), std::string::npos) << report;
  EXPECT_NE(report.find("\"exchange\":"), std::string::npos) << report;
  // Chrome format: the file is one JSON array (framing check; obs_test
  // parses the content).
  ASSERT_EQ(run(tool("itpseq-mc") + " -q -t 30 -e portfolio -j 4 " +
                "--trace-out " + chrome + " --trace-format chrome " +
                pass_aag_),
            0);
  std::string body;
  {
    std::ifstream cin2(chrome);
    std::stringstream ss;
    ss << cin2.rdbuf();
    body = ss.str();
  }
  ASSERT_FALSE(body.empty());
  EXPECT_EQ(body.front(), '[');
  EXPECT_EQ(body[body.find_last_not_of("\n")], ']');
  EXPECT_NE(body.find("\"ph\":\"X\""), std::string::npos);
  // Unknown trace format is a usage error.
  EXPECT_EQ(run(tool("itpseq-mc") + " --trace-format yaml " + pass_aag_), 2);
}

TEST_F(CliTest, McUsageErrors) {
  EXPECT_EQ(run(tool("itpseq-mc")), 2);
  EXPECT_EQ(run(tool("itpseq-mc") + " -e nonsense " + pass_aag_), 2);
  EXPECT_EQ(run(tool("itpseq-mc") + " /nonexistent.aag"), 2);
  EXPECT_EQ(run(tool("itpseq-mc") + " -p 9 " + pass_aag_), 2);
}

TEST_F(CliTest, McResourceExhaustionIsExitCode3) {
  // Both exhausted budgets — wall clock and memory — end in a clean
  // UNKNOWN (exit 3, retryable with more resources), never a crash.
  std::string out;
  EXPECT_EQ(run(tool("itpseq-mc") + " -q -t 0 -e bmc " + pass_aag_, &out), 3);
  EXPECT_NE(out.find("s UNKNOWN"), std::string::npos) << out;
  EXPECT_EQ(run(tool("itpseq-mc") + " -q -t 30 --mem-limit 1 -e bmc " +
                pass_aag_),
            3);
}

TEST_F(CliTest, McInjectedFaultIsExitCode4) {
  // Interpolant extraction throws on every call: the single-engine run has
  // nothing left to report but a contained internal error.
  std::string out;
  int rc = run(tool("itpseq-mc") + " -q -t 30 -e itp --inject-fault " +
                   "itp.extract:1:1000000 " + pass_aag_,
               &out);
  EXPECT_EQ(rc, 4);
  EXPECT_NE(out.find("s ERROR"), std::string::npos) << out;
}

TEST_F(CliTest, McPortfolioSurvivesAMemberFault) {
  // The same fault inside the portfolio only kills the interpolation
  // members; a survivor still falsifies and the run reports its outcome
  // roster.
  std::string out;
  int rc = run(tool("itpseq-mc") + " -t 30 -e portfolio --inject-fault " +
                   "itp.extract:1:1000000 " + fail_aag_,
               &out);
  EXPECT_EQ(rc, 1);
  EXPECT_NE(out.find("s FAIL"), std::string::npos) << out;
  EXPECT_NE(out.find("c member"), std::string::npos) << out;
}

TEST_F(CliTest, McFaultPlanFromEnvironment) {
  std::string out;
  int rc = run("ITPSEQ_FAULTS=itp.extract:1:1000000 " + tool("itpseq-mc") +
                   " -q -t 30 -e itp " + pass_aag_,
               &out);
  EXPECT_EQ(rc, 4);
  EXPECT_NE(out.find("s ERROR"), std::string::npos) << out;
}

TEST_F(CliTest, McBadFaultAndMemLimitFlagsAreUsageErrors) {
  EXPECT_EQ(run(tool("itpseq-mc") + " --inject-fault bogus " + pass_aag_), 2);
  EXPECT_EQ(run(tool("itpseq-mc") + " --inject-fault s:0 " + pass_aag_), 2);
  EXPECT_EQ(run(tool("itpseq-mc") + " --mem-limit lots " + pass_aag_), 2);
}

TEST_F(CliTest, McCheckpointResumeRoundTrip) {
  // A checkpointed run leaves a decodable snapshot behind; resuming from it
  // reaches the same verdict and reports the restored-lemma count.
  std::string ck = temp_path("roundtrip.its");
  std::remove(ck.c_str());
  std::string out;
  int rc = run(tool("itpseq-mc") + " -t 30 -e portfolio --checkpoint " + ck +
                   " " + pass_aag_,
               &out);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("c checkpoint: "), std::string::npos) << out;
  std::ifstream f(ck);
  ASSERT_TRUE(f.good()) << "checkpoint file was not written";
  std::string magic;
  std::getline(f, magic);
  EXPECT_EQ(magic, "itpseq-checkpoint 1");

  rc = run(tool("itpseq-mc") + " -t 30 -e portfolio --resume " + ck + " " +
               pass_aag_,
           &out);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("c resume: restored"), std::string::npos) << out;
  std::remove(ck.c_str());
}

TEST_F(CliTest, McMalformedCheckpointsAreExitCode2) {
  // The malformed-checkpoint corpus: every way a snapshot can lie — torn
  // tail, foreign magic, future version, corrupt payload, out-of-range
  // literal — is turned away at load time with a structured `snapshot:`
  // diagnostic, never fed to the engines.
  const char* corpus[] = {"ckpt_truncated.its", "ckpt_bad_magic.its",
                          "ckpt_bad_version.its", "ckpt_bad_checksum.its",
                          "ckpt_bad_literal.its"};
  for (const char* name : corpus) {
    std::string path = std::string(ITPSEQ_DATA_DIR) + "/malformed/" + name;
    std::string out;
    int rc = run(tool("itpseq-mc") + " -q -t 30 -e portfolio --resume " +
                     path + " " + pass_aag_,
                 &out, /*merge_stderr=*/true);
    EXPECT_EQ(rc, 2) << name << ": " << out;
    EXPECT_NE(out.find("snapshot:"), std::string::npos) << name << ": " << out;
  }
}

TEST_F(CliTest, McResumeDesignMismatchIsExitCode2) {
  // A snapshot from one design must never seed another: the design hash in
  // the header is checked against the loaded model before any lemma moves.
  std::string ck = temp_path("mismatch.its");
  std::remove(ck.c_str());
  ASSERT_EQ(run(tool("itpseq-mc") + " -q -t 30 -e portfolio --checkpoint " +
                ck + " " + pass_aag_),
            0);
  std::string out;
  int rc = run(tool("itpseq-mc") + " -q -t 30 -e portfolio --resume " + ck +
                   " " + fail_aag_,
               &out, /*merge_stderr=*/true);
  EXPECT_EQ(rc, 2) << out;
  EXPECT_NE(out.find("design mismatch"), std::string::npos) << out;
  std::remove(ck.c_str());
}

TEST_F(CliTest, McCheckpointFlagsRequirePortfolio) {
  // Checkpoint/resume are LemmaExchange features; outside -e portfolio the
  // flags are a usage error, not a silent no-op.
  EXPECT_EQ(run(tool("itpseq-mc") + " --checkpoint /tmp/x.its -e pdr " +
                pass_aag_),
            2);
  EXPECT_EQ(run(tool("itpseq-mc") + " --resume /tmp/x.its -e bmc " +
                pass_aag_),
            2);
  EXPECT_EQ(run(tool("itpseq-mc") + " --checkpoint-interval nope " +
                "-e portfolio --checkpoint /tmp/x.its " + pass_aag_),
            2);
}

TEST_F(CliTest, McHostileHeaderIsRejectedNotAllocated) {
  // A header demanding a billion ANDs from a one-line file must be turned
  // away at load time (exit 2), not taken on faith by the allocator.
  std::string hostile = temp_path("hostile.aag");
  {
    std::ofstream f(hostile);
    f << "aag 1000000000 1000000000 0 0 0\n";
  }
  EXPECT_EQ(run(tool("itpseq-mc") + " -q " + hostile), 2);
}

TEST_F(CliTest, AigtoolStats) {
  std::string out;
  ASSERT_EQ(run(tool("aigtool") + " stats " + pass_aag_, &out), 0);
  EXPECT_NE(out.find("latches     6"), std::string::npos) << out;
}

TEST_F(CliTest, AigtoolConvertRoundTripsAllFormats) {
  std::string blif = temp_path("conv.blif");
  std::string aag = temp_path("conv.aag");
  std::string aigb = temp_path("conv.aig");
  ASSERT_EQ(run(tool("aigtool") + " convert " + pass_aag_ + " " + blif), 0);
  ASSERT_EQ(run(tool("aigtool") + " convert " + blif + " " + aigb), 0);
  ASSERT_EQ(run(tool("aigtool") + " convert " + aigb + " " + aag), 0);
  // The final AIGER must still PASS.
  EXPECT_EQ(run(tool("itpseq-mc") + " -q -t 30 " + aag), 0);
}

TEST_F(CliTest, AigtoolOptPreservesVerdicts) {
  std::string opt = temp_path("opt.aag");
  ASSERT_EQ(run(tool("aigtool") + " opt " + fail_aag_ + " " + opt), 0);
  EXPECT_EQ(run(tool("itpseq-mc") + " -q -t 30 " + opt), 1);
  ASSERT_EQ(run(tool("aigtool") + " opt " + pass_aag_ + " " + opt +
                " --fraig --balance"),
            0);
  EXPECT_EQ(run(tool("itpseq-mc") + " -q -t 30 " + opt), 0);
}

TEST_F(CliTest, AigtoolSimFindsShallowFailure) {
  std::string out;
  ASSERT_EQ(run(tool("aigtool") + " sim " + fail_aag_ + " 30", &out), 0);
  EXPECT_NE(out.find("depth 7"), std::string::npos) << out;
}

TEST_F(CliTest, AigtoolDiameter) {
  std::string out;
  ASSERT_EQ(run(tool("aigtool") + " diameter " + fail_aag_ + " 30", &out), 0);
  EXPECT_NE(out.find("d_F = 11"), std::string::npos) << out;  // mod-12 counter
}

}  // namespace
}  // namespace itpseq
