// constraints_test.cpp — AIGER 1.9 invariant constraints through the whole
// stack: I/O round-trip, simulation, BDD reachability, every SAT engine and
// the witness format.
#include <gtest/gtest.h>

#include <sstream>

#include "aig/aiger_io.hpp"
#include "bdd/reach.hpp"
#include "bench_circuits/generators.hpp"
#include "mc/certify.hpp"
#include "mc/engine.hpp"
#include "mc/portfolio.hpp"
#include "mc/sim.hpp"
#include "mc/witness.hpp"

namespace itpseq {
namespace {

/// Unguarded queue whose overflow is forbidden by a constraint: without
/// constraint support the property FAILs at capacity+1; with it, PASS.
aig::Aig blocked_queue(unsigned capacity) {
  aig::Aig g = bench::queue(capacity, /*guarded=*/false);
  // Constraint: the push input is never asserted.
  g.add_constraint(aig::lit_not(g.input(0)));
  return g;
}

/// Counter whose bad value is excluded by a constraint on the state.
aig::Aig blocked_counter() {
  aig::Aig g = bench::counter(4, 11, 7, /*with_enable=*/true);
  // bad = (count == 7); constrain count != 7 at every frame.
  std::vector<aig::Lit> bits;
  for (std::size_t i = 0; i < g.num_latches(); ++i) bits.push_back(g.latch(i));
  g.add_constraint(aig::lit_not(bench::equals_const(g, bits, 7)));
  return g;
}

TEST(Constraints, AigerRoundTrip) {
  aig::Aig g = blocked_queue(4);
  ASSERT_EQ(g.num_constraints(), 1u);
  std::stringstream sa, sb;
  aig::write_aiger_ascii(g, sa);
  aig::write_aiger_binary(g, sb);
  aig::Aig ha = aig::read_aiger(sa);
  aig::Aig hb = aig::read_aiger(sb);
  EXPECT_EQ(ha.num_constraints(), 1u);
  EXPECT_EQ(hb.num_constraints(), 1u);
}

TEST(Constraints, SimulatorRejectsViolatingTraces) {
  aig::Aig g = blocked_queue(4);
  mc::Trace t;
  t.initial_latches.assign(g.num_latches(), false);
  for (int i = 0; i < 6; ++i) t.inputs.push_back({true, false});  // pushes
  // The trace reaches the bad state but violates the constraint.
  EXPECT_FALSE(mc::trace_is_cex(g, t, 0));
  mc::SimFrames f = mc::Simulator(g, 0).run(t);
  EXPECT_TRUE(f.bad.back());
  EXPECT_FALSE(f.constraints_ok.front());
}

TEST(Constraints, BddReachRespectsConstraints) {
  {
    bdd::ReachResult r = bdd::bdd_check(blocked_queue(4));
    EXPECT_EQ(r.verdict, bdd::ReachVerdict::kPass);
  }
  {
    bdd::ReachResult r = bdd::bdd_check(blocked_counter());
    EXPECT_EQ(r.verdict, bdd::ReachVerdict::kPass);
  }
  {
    // Sanity: without the constraint the same circuits fail.
    bdd::ReachResult r = bdd::bdd_check(bench::queue(4, false));
    EXPECT_EQ(r.verdict, bdd::ReachVerdict::kFail);
  }
}

class ConstraintEngineTest : public ::testing::TestWithParam<int> {};

TEST_P(ConstraintEngineTest, AllEnginesPassBlockedDesigns) {
  mc::EngineOptions opts;
  opts.time_limit_sec = 20.0;
  auto run = [&](const aig::Aig& g) {
    switch (GetParam()) {
      case 0:
        return mc::check_itp(g, 0, opts);
      case 1:
        return mc::check_itpseq(g, 0, opts);
      case 2:
        return mc::check_sitpseq(g, 0, opts);
      case 3:
        return mc::check_itpseq_cba(g, 0, opts);
      default: {
        mc::EngineOptions po = opts;
        po.itp_partitioned = true;
        return mc::check_itp(g, 0, po);
      }
    }
  };
  EXPECT_EQ(run(blocked_queue(4)).verdict, mc::Verdict::kPass);
  EXPECT_EQ(run(blocked_counter()).verdict, mc::Verdict::kPass);
}

INSTANTIATE_TEST_SUITE_P(Engines, ConstraintEngineTest, ::testing::Range(0, 5));

TEST(Constraints, BmcCannotFailBlockedDesign) {
  mc::EngineOptions opts;
  opts.time_limit_sec = 5.0;
  opts.max_bound = 12;
  EXPECT_NE(mc::check_bmc(blocked_queue(4), 0, opts).verdict,
            mc::Verdict::kFail);
}

TEST(Constraints, RandomSimCannotFailBlockedDesign) {
  EXPECT_NE(mc::check_random_sim(blocked_queue(4), 0, 64, 64).verdict,
            mc::Verdict::kFail);
}

TEST(Constraints, ConstrainedFailStillFound) {
  // Constraint that does not block the failure: pop never asserted; the
  // unguarded queue still overflows via pushes.
  aig::Aig g = bench::queue(4, false);
  g.add_constraint(aig::lit_not(g.input(1)));
  mc::EngineOptions opts;
  opts.time_limit_sec = 20.0;
  mc::EngineResult r = mc::check_itpseq(g, 0, opts);
  ASSERT_EQ(r.verdict, mc::Verdict::kFail);
  EXPECT_TRUE(mc::trace_is_cex(g, r.cex, 0));
  EXPECT_EQ(r.cex.depth(), 5u);
}

TEST(Constraints, NewEnginesRespectConstraints) {
  // PBA / CBA+PBA and the option variants (interpolation system, fraig)
  // must all PASS the constraint-blocked designs and keep failing the
  // genuinely broken one.
  aig::Aig pass1 = blocked_queue(4);
  aig::Aig pass2 = blocked_counter();
  mc::EngineOptions opts;
  opts.time_limit_sec = 15.0;
  for (auto* g : {&pass1, &pass2}) {
    EXPECT_EQ(mc::check_itpseq_pba(*g, 0, opts).verdict, mc::Verdict::kPass);
    EXPECT_EQ(mc::check_itpseq_cba_pba(*g, 0, opts).verdict,
              mc::Verdict::kPass);
    mc::EngineOptions v = opts;
    v.itp_system = itp::System::kPudlak;
    v.fraig_interpolants = true;
    EXPECT_EQ(mc::check_itpseq(*g, 0, v).verdict, mc::Verdict::kPass);
  }
  // Constraint present but not blocking: still FAIL at the right depth.
  aig::Aig open = bench::queue(4, /*guarded=*/false);
  open.add_constraint(aig::lit_not(open.input(1)));  // never pop
  mc::EngineResult r = mc::check_itpseq_pba(open, 0, opts);
  ASSERT_EQ(r.verdict, mc::Verdict::kFail);
  EXPECT_EQ(r.cex.depth(), 5u);
  EXPECT_TRUE(mc::trace_is_cex(open, r.cex, 0));
}

TEST(Constraints, CertificatesOfConstrainedDesignsCheck) {
  // PASS certificates must remain valid under constrained-trace semantics
  // (the checker asserts constraints in both frames).
  aig::Aig g = blocked_counter();
  mc::EngineOptions opts;
  opts.time_limit_sec = 15.0;
  for (int e = 0; e < 3; ++e) {
    mc::EngineResult r = e == 0   ? mc::check_itp(g, 0, opts)
                         : e == 1 ? mc::check_itpseq(g, 0, opts)
                                  : mc::check_itpseq_pba(g, 0, opts);
    ASSERT_EQ(r.verdict, mc::Verdict::kPass) << e;
    ASSERT_TRUE(r.certificate.has_value()) << e;
    mc::CertifyResult c = mc::check_certificate(g, 0, *r.certificate);
    EXPECT_TRUE(c.ok) << e << ": " << c.error;
  }
}

TEST(Constraints, ContradictoryConstraintMakesEverythingPass) {
  aig::Aig g = bench::queue(4, false);
  g.add_constraint(aig::kFalse);
  mc::EngineOptions opts;
  opts.time_limit_sec = 10.0;
  EXPECT_EQ(mc::check_itpseq(g, 0, opts).verdict, mc::Verdict::kPass);
}

// --- witness format -----------------------------------------------------------

TEST(Witness, RoundTrip) {
  mc::Trace t;
  t.initial_latches = {true, false, true};
  t.inputs = {{false, true}, {true, true}, {false, false}};
  std::stringstream ss;
  mc::write_witness(t, 0, ss);
  mc::Trace u = mc::read_witness(ss, 3, 2);
  EXPECT_EQ(u.initial_latches, t.initial_latches);
  EXPECT_EQ(u.inputs, t.inputs);
}

TEST(Witness, EngineCexReplaysThroughWitnessFormat) {
  aig::Aig g = bench::token_ring(6, true);
  mc::EngineOptions opts;
  opts.time_limit_sec = 10.0;
  mc::EngineResult r = mc::check_itpseq(g, 0, opts);
  ASSERT_EQ(r.verdict, mc::Verdict::kFail);
  std::stringstream ss;
  mc::write_witness(r.cex, 0, ss);
  mc::Trace u = mc::read_witness(ss, g.num_latches(), g.num_inputs());
  EXPECT_TRUE(mc::trace_is_cex(g, u, 0));
}

TEST(Witness, RejectsMalformed) {
  std::stringstream s1("0\nb0\n00\n.\n");
  EXPECT_THROW(mc::read_witness(s1, 2, 1), std::runtime_error);
  std::stringstream s2("1\nb0\n000\n");  // wrong width
  EXPECT_THROW(mc::read_witness(s2, 2, 1), std::runtime_error);
  std::stringstream s3("1\nb0\n00\n1\n");  // missing terminator
  EXPECT_THROW(mc::read_witness(s3, 2, 1), std::runtime_error);
}

}  // namespace
}  // namespace itpseq
