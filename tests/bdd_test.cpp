// bdd_test.cpp — tests for the ROBDD package and symbolic reachability.
#include <gtest/gtest.h>

#include <random>

#include "bdd/bdd.hpp"
#include "bdd/reach.hpp"
#include "bench_circuits/generators.hpp"
#include "bench_circuits/suite.hpp"

namespace itpseq::bdd {
namespace {

TEST(Bdd, Terminals) {
  BddManager m(4);
  EXPECT_EQ(m.bdd_false(), kBddFalse);
  EXPECT_EQ(m.bdd_true(), kBddTrue);
  EXPECT_EQ(m.apply_not(kBddTrue), kBddFalse);
  EXPECT_TRUE(m.is_const(kBddTrue));
  EXPECT_FALSE(m.is_const(m.var(0)));
}

TEST(Bdd, Canonicity) {
  BddManager m(4);
  BddRef a = m.var(0), b = m.var(1);
  EXPECT_EQ(m.apply_and(a, b), m.apply_and(b, a));
  EXPECT_EQ(m.apply_or(a, b), m.apply_not(m.apply_and(m.apply_not(a), m.apply_not(b))));
  EXPECT_EQ(m.apply_xor(a, a), kBddFalse);
  EXPECT_EQ(m.apply_equiv(a, a), kBddTrue);
  EXPECT_EQ(m.ite(a, kBddTrue, kBddFalse), a);
}

TEST(Bdd, BooleanAlgebraLaws) {
  BddManager m(6);
  std::mt19937 rng(9);
  auto random_fn = [&](int depth_seed) {
    BddRef f = rng() % 2 ? m.var(rng() % 6) : m.nvar(rng() % 6);
    for (int i = 0; i < 4 + depth_seed % 4; ++i) {
      BddRef g = rng() % 2 ? m.var(rng() % 6) : m.nvar(rng() % 6);
      switch (rng() % 3) {
        case 0: f = m.apply_and(f, g); break;
        case 1: f = m.apply_or(f, g); break;
        default: f = m.apply_xor(f, g); break;
      }
    }
    return f;
  };
  for (int t = 0; t < 40; ++t) {
    BddRef f = random_fn(t), g = random_fn(t + 1), h = random_fn(t + 2);
    // De Morgan
    EXPECT_EQ(m.apply_not(m.apply_and(f, g)),
              m.apply_or(m.apply_not(f), m.apply_not(g)));
    // Distributivity
    EXPECT_EQ(m.apply_and(f, m.apply_or(g, h)),
              m.apply_or(m.apply_and(f, g), m.apply_and(f, h)));
    // Absorption
    EXPECT_EQ(m.apply_or(f, m.apply_and(f, g)), f);
    // Shannon expansion via ite
    EXPECT_EQ(m.ite(f, g, h),
              m.apply_or(m.apply_and(f, g), m.apply_and(m.apply_not(f), h)));
  }
}

TEST(Bdd, EvalAgainstTruthTable) {
  BddManager m(5);
  std::mt19937 rng(21);
  for (int t = 0; t < 20; ++t) {
    // Random function built two ways must evaluate consistently.
    BddRef f = m.var(rng() % 5);
    std::vector<std::pair<int, unsigned>> ops;  // (op, var)
    for (int i = 0; i < 6; ++i) {
      unsigned v = rng() % 5;
      int op = rng() % 3;
      ops.push_back({op, v});
      BddRef g = m.var(v);
      f = op == 0 ? m.apply_and(f, g) : op == 1 ? m.apply_or(f, g) : m.apply_xor(f, g);
    }
    for (unsigned mask = 0; mask < 32; ++mask) {
      std::vector<bool> vals(5);
      for (int i = 0; i < 5; ++i) vals[i] = (mask >> i) & 1;
      bool expect = m.eval(f, vals);
      // And recompute by folding the ops directly.
      // (eval already exercised; just check sat_count consistency below)
      (void)expect;
    }
    // sat_count equals explicit count.
    unsigned count = 0;
    for (unsigned mask = 0; mask < 32; ++mask) {
      std::vector<bool> vals(5);
      for (int i = 0; i < 5; ++i) vals[i] = (mask >> i) & 1;
      if (m.eval(f, vals)) ++count;
    }
    EXPECT_DOUBLE_EQ(m.sat_count(f), static_cast<double>(count));
  }
}

TEST(Bdd, ExistsQuantification) {
  BddManager m(4);
  BddRef f = m.apply_and(m.var(0), m.var(1));
  std::vector<bool> mask(4, false);
  mask[0] = true;
  EXPECT_EQ(m.exists(f, mask), m.var(1));
  // exists x . (x & !x) = false
  BddRef contradiction = m.apply_and(m.var(0), m.nvar(0));
  EXPECT_EQ(m.exists(contradiction, mask), kBddFalse);
  // exists x . (x | y) = true
  BddRef f2 = m.apply_or(m.var(0), m.var(1));
  EXPECT_EQ(m.exists(f2, mask), kBddTrue);
}

TEST(Bdd, AndExistsMatchesComposition) {
  BddManager m(6);
  std::mt19937 rng(33);
  for (int t = 0; t < 30; ++t) {
    auto rnd = [&]() {
      BddRef f = rng() % 2 ? m.var(rng() % 6) : m.nvar(rng() % 6);
      for (int i = 0; i < 5; ++i) {
        BddRef g = rng() % 2 ? m.var(rng() % 6) : m.nvar(rng() % 6);
        f = rng() % 2 ? m.apply_and(f, g) : m.apply_or(f, g);
      }
      return f;
    };
    BddRef f = rnd(), g = rnd();
    std::vector<bool> mask(6, false);
    for (int i = 0; i < 6; ++i) mask[i] = rng() % 2;
    EXPECT_EQ(m.and_exists(f, g, mask), m.exists(m.apply_and(f, g), mask));
  }
}

TEST(Bdd, Rename) {
  BddManager m(6);
  // f over vars {1, 3}; shift to {0, 2}.
  BddRef f = m.apply_and(m.var(1), m.apply_or(m.var(3), m.nvar(1)));
  std::vector<unsigned> map(6);
  for (unsigned i = 0; i < 6; ++i) map[i] = i;
  map[1] = 0;
  map[3] = 2;
  BddRef r = m.rename(f, map);
  EXPECT_EQ(r, m.apply_and(m.var(0), m.apply_or(m.var(2), m.nvar(0))));
}

TEST(Bdd, SupportAndAnySat) {
  BddManager m(5);
  BddRef f = m.apply_and(m.var(1), m.nvar(3));
  std::vector<bool> sup = m.support(f);
  EXPECT_FALSE(sup[0]);
  EXPECT_TRUE(sup[1]);
  EXPECT_FALSE(sup[2]);
  EXPECT_TRUE(sup[3]);
  std::vector<bool> sat = m.any_sat(f);
  EXPECT_TRUE(m.eval(f, sat));
  EXPECT_THROW(m.any_sat(kBddFalse), std::invalid_argument);
}

TEST(Bdd, NodeLimitOverflow) {
  BddManager m(20, /*node_limit=*/64);
  EXPECT_THROW(
      {
        BddRef f = kBddTrue;
        // Parity of 20 vars needs > 64 nodes.
        for (unsigned i = 0; i < 20; ++i) f = m.apply_xor(f, m.var(i));
      },
      BddOverflow);
}

// --- reachability -----------------------------------------------------------

TEST(Reach, CounterDiameter) {
  // Modulo-11 counter: forward diameter 10 (states 0..10), property holds.
  aig::Aig g = bench::counter(4, 11, 13);
  SymbolicModel m(g);
  ReachResult fwd = forward_reach(m);
  ASSERT_EQ(fwd.verdict, ReachVerdict::kPass);
  ASSERT_TRUE(fwd.diameter.has_value());
  EXPECT_EQ(*fwd.diameter, 10u);
}

TEST(Reach, CounterFailDepth) {
  aig::Aig g = bench::counter(4, 11, 7);
  SymbolicModel m(g);
  ReachResult fwd = forward_reach(m);
  ASSERT_EQ(fwd.verdict, ReachVerdict::kFail);
  EXPECT_EQ(fwd.depth, 7u);
}

TEST(Reach, BackwardAgreesOnVerdict) {
  for (auto bad : {std::uint64_t{7}, std::uint64_t{13}}) {
    aig::Aig g = bench::counter(4, 11, bad);
    SymbolicModel fm(g), bm(g);
    ReachResult fwd = forward_reach(fm);
    ReachResult bwd = backward_reach(bm);
    ASSERT_NE(fwd.verdict, ReachVerdict::kOverflow);
    ASSERT_NE(bwd.verdict, ReachVerdict::kOverflow);
    EXPECT_EQ(fwd.verdict, bwd.verdict);
    if (fwd.verdict == ReachVerdict::kFail) {
      EXPECT_EQ(fwd.depth, bwd.depth);
    }
  }
}

TEST(Reach, TokenRingOneHotInvariant) {
  aig::Aig g = bench::token_ring(6, /*fail_reach=*/false);
  ReachResult r = bdd_check(g);
  EXPECT_EQ(r.verdict, ReachVerdict::kPass);
  // The ring rotates with period 6: diameter 5.
  EXPECT_EQ(*r.diameter, 5u);
}

TEST(Reach, TokenRingReachDepth) {
  aig::Aig g = bench::token_ring(6, /*fail_reach=*/true);
  ReachResult r = bdd_check(g);
  ASSERT_EQ(r.verdict, ReachVerdict::kFail);
  EXPECT_EQ(r.depth, 5u);
}

TEST(Reach, UndefInitLatchesUnconstrained) {
  // A latch with undefined reset can start at 1, so bad is hit at depth 0.
  aig::Aig g;
  aig::Lit l = g.add_latch(aig::LatchInit::kUndef);
  g.set_latch_next(l, l);
  g.add_output(l);
  ReachResult r = bdd_check(g);
  ASSERT_EQ(r.verdict, ReachVerdict::kFail);
  EXPECT_EQ(r.depth, 0u);
}

TEST(Reach, InputDependentBad) {
  // bad = latch AND input: bad states are exists-input, so depth tracks the
  // latch only.
  aig::Aig g;
  aig::Lit in = g.add_input();
  aig::Lit l = g.add_latch(aig::LatchInit::kZero);
  g.set_latch_next(l, aig::kTrue);  // becomes 1 after one step
  g.add_output(g.make_and(l, in));
  ReachResult r = bdd_check(g);
  ASSERT_EQ(r.verdict, ReachVerdict::kFail);
  EXPECT_EQ(r.depth, 1u);
}

TEST(Reach, StaticOrderPreservesSemantics) {
  // Same verdicts and diameters under the structural variable order.
  for (auto make : {+[] { return bench::counter(4, 11, 7); },
                    +[] { return bench::token_ring(6, false); },
                    +[] { return bench::queue(8, true); }}) {
    aig::Aig g = make();
    SymbolicModel plain(g, 2'000'000, 0, /*static_order=*/false);
    SymbolicModel ordered(g, 2'000'000, 0, /*static_order=*/true);
    ReachResult a = forward_reach(plain);
    ReachResult b = forward_reach(ordered);
    ASSERT_NE(a.verdict, ReachVerdict::kOverflow);
    EXPECT_EQ(a.verdict, b.verdict);
    EXPECT_EQ(a.depth, b.depth);
    EXPECT_EQ(a.diameter, b.diameter);
  }
}

TEST(Reach, StaticOrderIsPermutation) {
  aig::Aig g = bench::feistel_mixer(8, 6, 3);
  std::vector<unsigned> order = static_latch_order(g, 0);
  ASSERT_EQ(order.size(), g.num_latches());
  std::vector<bool> seen(order.size(), false);
  for (unsigned p : order) {
    ASSERT_LT(p, order.size());
    EXPECT_FALSE(seen[p]) << "duplicate position";
    seen[p] = true;
  }
}

class ReachSuiteTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ReachSuiteTest, VerdictsMatchExpectations) {
  auto suite = bench::make_academic_suite(24);
  if (GetParam() >= suite.size()) GTEST_SKIP() << "index beyond suite";
  const bench::Instance& inst = suite[GetParam()];
  ReachBudget budget;
  budget.seconds = 20.0;
  ReachResult r = bdd_check(inst.model, 0, budget);
  if (r.verdict == ReachVerdict::kOverflow) GTEST_SKIP() << "BDD overflow";
  if (inst.expected == bench::Expected::kPass)
    EXPECT_EQ(r.verdict, ReachVerdict::kPass) << inst.name;
  else if (inst.expected == bench::Expected::kFail) {
    EXPECT_EQ(r.verdict, ReachVerdict::kFail) << inst.name;
    if (inst.fail_depth >= 0) {
      EXPECT_EQ(r.depth, static_cast<unsigned>(inst.fail_depth)) << inst.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Suite, ReachSuiteTest, ::testing::Range(0u, 40u));

}  // namespace
}  // namespace itpseq::bdd
