// reorder_test.cpp — BDD variable reordering (rebuild transform + sifting).
//
// Function invariance is verified by sat_count (order-independent) and by
// point evaluation under permuted assignments; size behaviour on the
// textbook comparator (blocked = exponential, interleaved = linear) checks
// that sifting actually finds good orders.
#include <gtest/gtest.h>

#include <random>

#include "bdd/bdd.hpp"
#include "bdd/reorder.hpp"

namespace itpseq {
namespace {

using bdd::BddManager;
using bdd::BddRef;

/// n-pair comparator AND_i (a_i <-> b_i) under the *blocked* order
/// a_0..a_{n-1} b_0..b_{n-1}: exponential DAG.  Var a_i = i, b_i = n+i.
BddRef comparator_blocked(BddManager& m, unsigned n) {
  BddRef f = m.bdd_true();
  for (unsigned i = 0; i < n; ++i)
    f = m.apply_and(f, m.apply_equiv(m.var(i), m.var(n + i)));
  return f;
}

TEST(Reorder, IdentityOrderPreservesEverything) {
  BddManager m(6);
  BddRef f = comparator_blocked(m, 3);
  bdd::VarOrder id{0, 1, 2, 3, 4, 5};
  bdd::ReorderResult r = bdd::reorder(m, {f}, id);
  EXPECT_EQ(r.manager.sat_count(r.roots[0]), m.sat_count(f));
  EXPECT_EQ(r.dag_size, bdd::shared_size(m, {f}));
}

TEST(Reorder, InterleavedComparatorIsLinear) {
  const unsigned n = 6;
  BddManager m(2 * n);
  BddRef f = comparator_blocked(m, n);
  std::size_t blocked = bdd::shared_size(m, {f});
  // Interleave: a_0 b_0 a_1 b_1 ...
  bdd::VarOrder inter;
  for (unsigned i = 0; i < n; ++i) {
    inter.push_back(i);
    inter.push_back(n + i);
  }
  bdd::ReorderResult r = bdd::reorder(m, {f}, inter);
  EXPECT_EQ(r.manager.sat_count(r.roots[0]), m.sat_count(f));
  EXPECT_EQ(r.dag_size, 3 * n)  // the canonical linear comparator shape
      << "blocked size was " << blocked;
  EXPECT_GT(blocked, r.dag_size * 2);
}

TEST(Reorder, EvaluationFollowsThePermutation) {
  // f depends on src vars {0,1,2}; under order {2,0,1} the rebuilt manager's
  // level L corresponds to src var order[L].
  BddManager m(3);
  BddRef f = m.apply_and(m.var(0), m.apply_or(m.var(1), m.nvar(2)));
  bdd::VarOrder ord{2, 0, 1};
  bdd::ReorderResult r = bdd::reorder(m, {f}, ord);
  std::mt19937 rng(5);
  for (int t = 0; t < 32; ++t) {
    std::vector<bool> src_vals(3);
    for (int i = 0; i < 3; ++i) src_vals[i] = rng() % 2;
    std::vector<bool> dst_vals(3);
    for (unsigned L = 0; L < 3; ++L) dst_vals[L] = src_vals[ord[L]];
    EXPECT_EQ(m.eval(f, src_vals), r.manager.eval(r.roots[0], dst_vals));
  }
}

TEST(Reorder, SharedRootsStayShared) {
  BddManager m(4);
  BddRef f = m.apply_and(m.var(0), m.var(1));
  BddRef g = m.apply_and(f, m.var(2));  // g's cone contains f's
  bdd::VarOrder id{0, 1, 2, 3};
  bdd::ReorderResult r = bdd::reorder(m, {f, g}, id);
  EXPECT_EQ(r.dag_size, bdd::shared_size(m, {f, g}));
  EXPECT_EQ(r.manager.sat_count(r.roots[0]), m.sat_count(f));
  EXPECT_EQ(r.manager.sat_count(r.roots[1]), m.sat_count(g));
}

TEST(Reorder, OverflowAbortsBadOrders) {
  const unsigned n = 8;
  BddManager m(2 * n);
  // Build under the good interleaved order first: var 2i = a_i, 2i+1 = b_i.
  BddRef f = m.bdd_true();
  for (unsigned i = 0; i < n; ++i)
    f = m.apply_and(f, m.apply_equiv(m.var(2 * i), m.var(2 * i + 1)));
  // De-interleave (the blocked order) with a tiny node budget: must throw.
  bdd::VarOrder blocked;
  for (unsigned i = 0; i < n; ++i) blocked.push_back(2 * i);
  for (unsigned i = 0; i < n; ++i) blocked.push_back(2 * i + 1);
  EXPECT_THROW(bdd::reorder(m, {f}, blocked, /*node_limit=*/64),
               bdd::BddOverflow);
}

TEST(Sift, RecoversInterleavedComparator) {
  const unsigned n = 5;
  BddManager m(2 * n);
  BddRef f = comparator_blocked(m, n);
  std::size_t blocked = bdd::shared_size(m, {f});
  bdd::ReorderResult r = bdd::sift_order(m, {f});
  EXPECT_EQ(r.manager.sat_count(r.roots[0]), m.sat_count(f));
  EXPECT_LE(r.dag_size, 3 * n + 2) << "sifting missed the linear order";
  EXPECT_LT(r.dag_size, blocked);
}

TEST(Sift, AlreadyOptimalOrderIsStable) {
  BddManager m(4);
  // A function whose identity order is optimal enough that sifting cannot
  // break it: a simple conjunction (size = #vars under every order).
  BddRef f = m.apply_and(m.apply_and(m.var(0), m.var(1)),
                         m.apply_and(m.var(2), m.var(3)));
  bdd::ReorderResult r = bdd::sift_order(m, {f});
  EXPECT_EQ(r.dag_size, 4u);
  EXPECT_EQ(r.manager.sat_count(r.roots[0]), m.sat_count(f));
}

TEST(Sift, WindowRestrictsMoves) {
  const unsigned n = 4;
  BddManager m(2 * n);
  BddRef f = comparator_blocked(m, n);
  bdd::SiftOptions w;
  w.window = 1;  // adjacent swaps only
  bdd::ReorderResult r = bdd::sift_order(m, {f}, w);
  EXPECT_EQ(r.manager.sat_count(r.roots[0]), m.sat_count(f));
  EXPECT_LE(r.dag_size, bdd::shared_size(m, {f}));
}

class SiftRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SiftRandomTest, InvariantUnderSifting) {
  std::mt19937 rng(GetParam());
  unsigned nvars = 5 + rng() % 5;
  BddManager m(nvars);
  // Random function built from random gates over projections.
  std::vector<BddRef> pool;
  for (unsigned i = 0; i < nvars; ++i) pool.push_back(m.var(i));
  for (int g = 0; g < 20; ++g) {
    BddRef a = pool[rng() % pool.size()];
    BddRef b = pool[rng() % pool.size()];
    switch (rng() % 3) {
      case 0: pool.push_back(m.apply_and(a, b)); break;
      case 1: pool.push_back(m.apply_or(a, m.apply_not(b))); break;
      default: pool.push_back(m.apply_xor(a, b)); break;
    }
  }
  BddRef f = pool.back();
  double count = m.sat_count(f);
  std::size_t before = bdd::shared_size(m, {f});
  bdd::ReorderResult r = bdd::sift_order(m, {f});
  EXPECT_EQ(r.manager.sat_count(r.roots[0]), count);
  EXPECT_LE(r.dag_size, before);
  // The order is a permutation.
  std::vector<bool> seen(nvars, false);
  for (unsigned v : r.order) {
    ASSERT_LT(v, nvars);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

INSTANTIATE_TEST_SUITE_P(Random, SiftRandomTest, ::testing::Range(0, 30));

}  // namespace
}  // namespace itpseq
