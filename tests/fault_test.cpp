// fault_test.cpp — failure containment end to end: the fault-injection
// registry itself, the memory-budget degradation ladder, hostile-input
// hardening of the parsers, and the per-site portfolio containment matrix
// (an injected crash in one member must never kill the process or the
// run).  Threaded-portfolio cases run under TSan via the `concurrency`
// ctest label.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <new>
#include <sstream>
#include <stdexcept>
#include <string>

#include "aig/aiger_io.hpp"
#include "bench_circuits/generators.hpp"
#include "io/blif.hpp"
#include "mc/engine.hpp"
#include "mc/lemma_store.hpp"
#include "mc/portfolio.hpp"
#include "obs/trace.hpp"
#include "util/atomic_write.hpp"
#include "util/fault.hpp"
#include "util/mem_budget.hpp"

namespace itpseq {
namespace {

std::string data_path(const char* rel) {
  return std::string(ITPSEQ_DATA_DIR) + "/" + rel;
}

/// Every test leaves the process disarmed, whatever path it exits through:
/// both the fault plan and the memory budget are process-wide singletons.
class CleanSlate : public ::testing::Test {
 protected:
  void SetUp() override {
    util::fault::clear();
    util::MemoryBudget::instance().reset();
  }
  void TearDown() override {
    util::fault::clear();
    util::MemoryBudget::instance().reset();
  }
};

using FaultRegistry = CleanSlate;
using MemBudget = CleanSlate;
using Containment = CleanSlate;
using HostileInputs = CleanSlate;

// --- the registry ----------------------------------------------------------

TEST_F(FaultRegistry, OffByDefaultAndFree) {
  EXPECT_FALSE(util::fault::enabled());
  // The macro's fast path: nothing armed, nothing fires, nothing counted.
  ITPSEQ_FAULT_POINT("never.armed");
  EXPECT_EQ(util::fault::hits("never.armed"), 0u);
}

TEST_F(FaultRegistry, WindowFiresExactlyNthThroughNthPlusCount) {
  util::fault::configure("t.site:2:2");
  EXPECT_TRUE(util::fault::enabled());
  EXPECT_NO_THROW(util::fault::point("t.site"));   // hit 1: before window
  EXPECT_THROW(util::fault::point("t.site"), std::bad_alloc);  // hit 2
  EXPECT_THROW(util::fault::point("t.site"), std::bad_alloc);  // hit 3
  EXPECT_NO_THROW(util::fault::point("t.site"));   // hit 4: past window
  EXPECT_EQ(util::fault::hits("t.site"), 4u);
  EXPECT_EQ(util::fault::hits("t.other"), 0u);
}

TEST_F(FaultRegistry, ErrorKindCarriesTheSiteName) {
  util::fault::configure("t.err:1:1:error");
  try {
    util::fault::point("t.err");
    FAIL() << "fault did not fire";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("injected fault at t.err"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(FaultRegistry, StallKindBlocksForTheConfiguredDuration) {
  util::fault::configure("t.stall:1:1:stall60");
  auto t0 = std::chrono::steady_clock::now();
  EXPECT_NO_THROW(util::fault::point("t.stall"));
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  EXPECT_GE(ms, 40.0) << "stall did not block";
  // Second evaluation is past the window: no stall.
  t0 = std::chrono::steady_clock::now();
  util::fault::point("t.stall");
  ms = std::chrono::duration<double, std::milli>(
           std::chrono::steady_clock::now() - t0)
           .count();
  EXPECT_LT(ms, 40.0);
}

TEST_F(FaultRegistry, PlanListsArmMultipleSites) {
  util::fault::configure("a.one:1, b.two:1:1:error");
  EXPECT_THROW(util::fault::point("a.one"), std::bad_alloc);
  EXPECT_THROW(util::fault::point("b.two"), std::runtime_error);
}

TEST_F(FaultRegistry, MalformedSpecsAreRejected) {
  EXPECT_THROW(util::fault::configure("nocolon"), std::invalid_argument);
  EXPECT_THROW(util::fault::configure("s:x"), std::invalid_argument);
  EXPECT_THROW(util::fault::configure("s:0"), std::invalid_argument);
  EXPECT_THROW(util::fault::configure("s:1:0"), std::invalid_argument);
  EXPECT_THROW(util::fault::configure("s:1:1:bogus"), std::invalid_argument);
  EXPECT_THROW(util::fault::configure(":1"), std::invalid_argument);
  EXPECT_THROW(util::fault::configure("s:1:1:1:1"), std::invalid_argument);
  EXPECT_FALSE(util::fault::enabled());  // nothing was armed along the way
}

// --- the memory-budget ladder ----------------------------------------------

TEST_F(MemBudget, LevelForGradesAgainstTheLimit) {
  constexpr std::size_t kMb = 1024 * 1024;
  EXPECT_EQ(util::MemoryBudget::level_for(123456789, 0), 0);  // unlimited
  EXPECT_EQ(util::MemoryBudget::level_for(0, 100 * kMb), 0);
  EXPECT_EQ(util::MemoryBudget::level_for(79 * kMb, 100 * kMb), 0);
  EXPECT_EQ(util::MemoryBudget::level_for(80 * kMb, 100 * kMb), 1);  // soft
  EXPECT_EQ(util::MemoryBudget::level_for(99 * kMb, 100 * kMb), 1);
  EXPECT_EQ(util::MemoryBudget::level_for(100 * kMb, 100 * kMb), 2);  // hard
  EXPECT_EQ(util::MemoryBudget::level_for(5000 * kMb, 100 * kMb), 2);
}

TEST_F(MemBudget, PollClimbsToHardUnderATinyLimit) {
  util::MemoryBudget& mb = util::MemoryBudget::instance();
  EXPECT_FALSE(mb.limited());
  // Any live process dwarfs 1 MB, so the first poll lands on hard.
  mb.set_limit_mb(1);
  EXPECT_TRUE(mb.limited());
  mb.poll();
  EXPECT_TRUE(mb.hard());
  // The ladder only climbs; raising the limit does not matter until reset.
  mb.reset();
  EXPECT_FALSE(mb.limited());
  EXPECT_EQ(mb.level(), 0);
}

TEST_F(MemBudget, EngineBailsOutUnknownNotDead) {
  // An exhausted budget is a clean kUnknown (retry with more resources),
  // not a kError and not an allocator abort.
  util::MemoryBudget::instance().set_limit_mb(1);
  mc::EngineOptions opts;
  opts.time_limit_sec = 20.0;
  auto t0 = std::chrono::steady_clock::now();
  mc::EngineResult r = mc::check_bmc(bench::token_ring(6, false), 0, opts);
  double secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  EXPECT_EQ(r.verdict, mc::Verdict::kUnknown);
  EXPECT_EQ(r.error.kind, mc::ErrorKind::kNone);
  EXPECT_LT(secs, 10.0) << "memory bail-out was not prompt";
}

// --- containment: one member dies, the run survives ------------------------

TEST_F(Containment, SatOomKillsOnlyTheSatMembers) {
  // Every clause-arena allocation anywhere in the process throws, so the
  // interpolation member dies instantly; the SAT-free random-simulation
  // member must still falsify the closed counter.
  util::fault::configure("sat.arena:1:1000000");
  mc::PortfolioOptions po;
  po.time_limit_sec = 30.0;
  // Two ITP members ahead of the survivor in the queue, two workers: both
  // doomed members are claimed (and their deaths recorded) before any
  // worker can reach random-sim, so the roster check cannot race the win.
  po.members = {mc::PortfolioMember::kItp, mc::PortfolioMember::kItp,
                mc::PortfolioMember::kRandomSim};
  po.jobs = 2;
  mc::EngineResult r = mc::check_portfolio(bench::counter(4, 12, 7), 0, po);
  ASSERT_EQ(r.verdict, mc::Verdict::kFail);
  EXPECT_NE(r.engine.find("RANDOM-SIM"), std::string::npos) << r.engine;
  // The crashed member is a recorded outcome, not a vanished thread.
  bool saw_oom = false;
  for (const mc::MemberOutcome& m : r.members) {
    if (m.verdict == mc::Verdict::kError) {
      EXPECT_EQ(m.error.kind, mc::ErrorKind::kOutOfMemory) << m.member;
      saw_oom = true;
    }
  }
  EXPECT_TRUE(saw_oom) << "dead member missing from the outcome list";
}

TEST_F(Containment, ItpExtractionFaultLetsBmcWin) {
  util::fault::configure("itp.extract:1:1000000:error");
  mc::PortfolioOptions po;
  po.time_limit_sec = 30.0;
  po.members = {mc::PortfolioMember::kItp, mc::PortfolioMember::kBmc};
  mc::EngineResult r = mc::check_portfolio(bench::counter(4, 12, 7), 0, po);
  ASSERT_EQ(r.verdict, mc::Verdict::kFail);
  EXPECT_NE(r.engine.find("BMC"), std::string::npos) << r.engine;
  for (const mc::MemberOutcome& m : r.members) {
    if (m.verdict == mc::Verdict::kError) {
      EXPECT_EQ(m.error.kind, mc::ErrorKind::kInternal) << m.member;
    }
  }
}

TEST_F(Containment, ExchangeFaultsNeverPoisonTheVerdict) {
  // Both hub entry points throw on every call: any member that shares
  // lemmas dies, and the portfolio still has to produce the right answer
  // from whatever survives.
  util::fault::configure(
      "exchange.publish:1:1000000 exchange.fetch:1:1000000");
  mc::PortfolioOptions po;
  po.time_limit_sec = 30.0;
  po.members = {mc::PortfolioMember::kRandomSim, mc::PortfolioMember::kItp,
                mc::PortfolioMember::kPdr};
  mc::EngineResult r = mc::check_portfolio(bench::counter(4, 12, 7), 0, po);
  EXPECT_EQ(r.verdict, mc::Verdict::kFail);
  EXPECT_EQ(r.error.kind, mc::ErrorKind::kNone);
}

TEST_F(Containment, AllMembersDeadIsAnErrorVerdictWithTheTaxonomy) {
  // PASS instance + every SAT allocation throwing: no member can survive,
  // so this is the one case where the portfolio itself reports kError.
  util::fault::configure("sat.arena:1:1000000");
  mc::PortfolioOptions po;
  po.time_limit_sec = 30.0;
  po.members = {mc::PortfolioMember::kBmc, mc::PortfolioMember::kItp};
  mc::EngineResult r = mc::check_portfolio(bench::token_ring(6, false), 0, po);
  ASSERT_EQ(r.verdict, mc::Verdict::kError);
  EXPECT_EQ(r.error.kind, mc::ErrorKind::kOutOfMemory);
  ASSERT_EQ(r.members.size(), 2u);
  for (const mc::MemberOutcome& m : r.members) {
    EXPECT_EQ(m.verdict, mc::Verdict::kError) << m.member;
    EXPECT_EQ(m.error.kind, mc::ErrorKind::kOutOfMemory) << m.member;
  }
}

TEST_F(Containment, WatchdogEscalatesAMissedDeadline) {
  // A member stalled outside its cancellation poll loop (the first clause
  // allocation blocks 700 ms) blows straight through a 100 ms budget plus
  // 50 ms grace; the watchdog must force cancellation and annotate the
  // salvaged kUnknown so the caller can tell it from a healthy timeout.
  // Two members: the watchdog lives on the threaded scheduler's guard
  // thread, and a single-member list degrades to the sequential one.
  util::fault::configure("sat.arena:1:1:stall700");
  mc::PortfolioOptions po;
  po.time_limit_sec = 0.1;
  po.watchdog_grace_sec = 0.05;
  po.members = {mc::PortfolioMember::kBmc, mc::PortfolioMember::kRandomSim};
  mc::EngineResult r = mc::check_portfolio(bench::token_ring(6, false), 0, po);
  EXPECT_EQ(r.verdict, mc::Verdict::kUnknown);
  EXPECT_EQ(r.error.kind, mc::ErrorKind::kSolverLimit);
  EXPECT_NE(r.error.message.find("watchdog"), std::string::npos)
      << r.error.message;
}

TEST_F(Containment, SnapshotWriteFaultNeverPoisonsTheVerdict) {
  // Every checkpoint publication throws, and the portfolio must treat that
  // as a lost checkpoint — not a lost run: the verdict is unchanged and a
  // stale snapshot at the target path survives untouched (the fault fires
  // before the temp file is even created, which is the atomicity story:
  // the final path only ever holds a complete snapshot).
  const std::string ck = std::string(::testing::TempDir()) +
                         "itpseq_fault_ckpt.its";
  const std::string stale = "stale snapshot body — must survive\n";
  ASSERT_TRUE(util::atomic_write_file(ck, stale));
  util::fault::configure("snapshot.write:1:1000000:error");
  mc::PortfolioOptions po;
  po.time_limit_sec = 30.0;
  po.checkpoint_path = ck;
  po.checkpoint_interval_sec = 0.01;  // force periodic attempts, all fatal
  po.members = {mc::PortfolioMember::kRandomSim, mc::PortfolioMember::kBmc};
  mc::EngineResult r = mc::check_portfolio(bench::counter(4, 12, 7), 0, po);
  EXPECT_EQ(r.verdict, mc::Verdict::kFail);
  EXPECT_EQ(r.error.kind, mc::ErrorKind::kNone);
  std::ifstream f(ck);
  std::stringstream body;
  body << f.rdbuf();
  EXPECT_EQ(body.str(), stale) << "a failed checkpoint tore the old file";
  std::remove(ck.c_str());
}

TEST_F(Containment, SnapshotReadFaultSiteFires) {
  // The read site lets CI rehearse resume-time I/O failure on a perfectly
  // valid file: armed, the load must raise instead of parse.
  const std::string ck = std::string(::testing::TempDir()) +
                         "itpseq_fault_read.its";
  mc::LemmaSnapshot snap;
  snap.design = 0x1234;
  snap.num_latches = 4;
  ASSERT_TRUE(mc::write_snapshot_file(ck, snap));
  EXPECT_EQ(mc::read_snapshot_file(ck).design, 0x1234u);  // sanity: readable
  util::fault::configure("snapshot.read:1");
  EXPECT_THROW(mc::read_snapshot_file(ck), std::bad_alloc);
  std::remove(ck.c_str());
}

TEST_F(Containment, DrainerSwallowsInjectedFaultsAndStaysAlive) {
  // A fault inside the trace drainer must never take the process (or the
  // run's verdict) with it: finish() absorbs it and accounts the loss.
  util::fault::configure("obs.drain:1:1:error");
  obs::TraceConfig cfg;
  cfg.sample_interval_sec = -1.0;  // drain only at finish()
  obs::TraceSink sink(cfg);
  obs::emit("fault_test_event", {{"n", 1u}});
  EXPECT_NO_THROW(sink.finish());
}

// --- hostile inputs: parsers fail fast, never allocate the lie -------------

TEST_F(HostileInputs, MalformedAigerHeadersAreRejected) {
  const char* corpus[] = {
      "malformed/huge_counts.aag",   // counts demand gigabytes the file lacks
      "malformed/huge_counts.aig",   // binary variant of the same lie
      "malformed/huge_maxvar.aag",   // max_var far beyond the declared body
      "malformed/garbage_header.aag",
      "malformed/truncated_ands.aag",
      "malformed/bad_latch_next.aag",  // next-state literal out of range
      "malformed/bad_and_rhs.aag",     // AND fanin literal out of range
  };
  for (const char* rel : corpus) {
    EXPECT_THROW(aig::read_aiger_file(data_path(rel)), std::runtime_error)
        << rel;
  }
  // The rejection must be diagnosable: aiger-prefixed, header-blaming.
  try {
    aig::read_aiger_file(data_path("malformed/huge_counts.aag"));
    FAIL() << "hostile header was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()).rfind("aiger:", 0), 0u) << e.what();
  }
}

TEST_F(HostileInputs, MalformedBlifIsRejected) {
  EXPECT_THROW(io::read_blif_file(data_path("malformed/undefined_signal.blif")),
               std::runtime_error);
  EXPECT_THROW(io::read_blif_file(data_path("malformed/bad_latch.blif")),
               std::runtime_error);
}

TEST_F(HostileInputs, LoaderFaultSitesFire) {
  // The loader sites let CI rehearse I/O-failure handling without a broken
  // filesystem: a valid input plus an armed site must raise, not parse.
  util::fault::configure("aig.load:1");
  std::istringstream aag("aag 0 0 0 0 0\n");
  EXPECT_THROW(aig::read_aiger(aag), std::bad_alloc);
  util::fault::clear();

  util::fault::configure("blif.load:1:1:error");
  std::istringstream blif(".model m\n.inputs a\n.outputs a\n.end\n");
  EXPECT_THROW(io::read_blif(blif), std::runtime_error);
}

}  // namespace
}  // namespace itpseq
