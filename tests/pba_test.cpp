// pba_test.cpp — proof-based abstraction (ITPSEQPBA) and the CBA+PBA
// alternation (ITPSEQCBAPBA).
//
// Soundness is checked two ways: against BDD reachability ground truth on
// random circuits, and against the analytically-known verdicts of the
// curated suite.  Abstraction effectiveness (visible-latch counts) is
// checked on instances designed with a small property cone.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "bdd/reach.hpp"
#include "bench_circuits/generators.hpp"
#include "bench_circuits/suite.hpp"
#include "mc/engine.hpp"
#include "mc/itpseq_verif.hpp"
#include "mc/sim.hpp"

namespace itpseq {
namespace {

/// Same random-circuit shape as crosscheck_test.cpp (kept independent so
/// the two files can evolve separately).
aig::Aig random_circuit(std::uint32_t seed) {
  std::mt19937 rng(seed);
  aig::Aig g;
  unsigned ni = 1 + rng() % 3, nl = 2 + rng() % 5;
  std::vector<aig::Lit> pool;
  for (unsigned i = 0; i < ni; ++i) pool.push_back(g.add_input());
  std::vector<aig::Lit> latches;
  for (unsigned i = 0; i < nl; ++i) {
    aig::Lit l = g.add_latch(static_cast<aig::LatchInit>(rng() % 3));
    latches.push_back(l);
    pool.push_back(l);
  }
  unsigned gates = 5 + rng() % 25;
  for (unsigned n = 0; n < gates; ++n) {
    aig::Lit a = pool[rng() % pool.size()] ^ (rng() % 2);
    aig::Lit b = pool[rng() % pool.size()] ^ (rng() % 2);
    pool.push_back(rng() % 2 ? g.make_and(a, b) : g.make_xor(a, b));
  }
  for (aig::Lit l : latches)
    g.set_latch_next(l, pool[rng() % pool.size()] ^ (rng() % 2));
  aig::Lit bad = g.make_and(pool[rng() % pool.size()] ^ (rng() % 2),
                            pool[rng() % pool.size()] ^ (rng() % 2));
  g.add_output(bad);
  return g;
}

class PbaVsBddTest : public ::testing::TestWithParam<int> {};

TEST_P(PbaVsBddTest, RandomCircuitsAgree) {
  aig::Aig g = random_circuit(9100 + GetParam());
  bdd::ReachBudget rb;
  rb.seconds = 10.0;
  bdd::ReachResult truth = bdd::bdd_check(g, 0, rb);
  if (truth.verdict == bdd::ReachVerdict::kOverflow) GTEST_SKIP();

  mc::EngineOptions opts;
  opts.time_limit_sec = 15.0;
  opts.max_bound = 120;

  struct Named {
    const char* name;
    mc::EngineResult r;
  };
  Named results[] = {
      {"pba", mc::check_itpseq_pba(g, 0, opts)},
      {"cba+pba", mc::check_itpseq_cba_pba(g, 0, opts)},
  };
  for (const Named& n : results) {
    if (n.r.verdict == mc::Verdict::kUnknown) continue;
    if (truth.verdict == bdd::ReachVerdict::kPass) {
      EXPECT_EQ(n.r.verdict, mc::Verdict::kPass) << n.name;
    } else {
      ASSERT_EQ(n.r.verdict, mc::Verdict::kFail) << n.name;
      EXPECT_TRUE(mc::trace_is_cex(g, n.r.cex, 0)) << n.name;
      EXPECT_EQ(n.r.cex.depth(), truth.depth) << n.name << ": not shallowest";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, PbaVsBddTest, ::testing::Range(0, 40));

TEST(Pba, SuiteVerdictsMatchExpected) {
  mc::EngineOptions opts;
  opts.time_limit_sec = 10.0;
  unsigned solved = 0;
  for (auto& inst : bench::make_academic_suite(24)) {
    if (inst.expected == bench::Expected::kOpen) continue;
    mc::EngineResult r = mc::check_itpseq_pba(inst.model, 0, opts);
    if (r.verdict == mc::Verdict::kUnknown) continue;
    mc::Verdict want = inst.expected == bench::Expected::kPass
                           ? mc::Verdict::kPass
                           : mc::Verdict::kFail;
    EXPECT_EQ(r.verdict, want) << inst.name;
    if (r.verdict == mc::Verdict::kFail) {
      EXPECT_TRUE(mc::trace_is_cex(inst.model, r.cex, 0)) << inst.name;
    }
    ++solved;
  }
  EXPECT_GE(solved, 20u);  // the engine must actually solve the small suite
}

TEST(Pba, CbaPbaSuiteVerdictsMatchExpected) {
  mc::EngineOptions opts;
  opts.time_limit_sec = 10.0;
  unsigned solved = 0;
  for (auto& inst : bench::make_academic_suite(24)) {
    if (inst.expected == bench::Expected::kOpen) continue;
    mc::EngineResult r = mc::check_itpseq_cba_pba(inst.model, 0, opts);
    if (r.verdict == mc::Verdict::kUnknown) continue;
    mc::Verdict want = inst.expected == bench::Expected::kPass
                           ? mc::Verdict::kPass
                           : mc::Verdict::kFail;
    EXPECT_EQ(r.verdict, want) << inst.name;
    ++solved;
  }
  EXPECT_GE(solved, 20u);
}

TEST(Pba, AbstractsAwayIrrelevantLatches) {
  // Industrial-like PASS design: the property is a local guarded counter;
  // the wide pipeline latches are irrelevant to the proof, so PBA must
  // converge with far fewer visible latches than the model carries.
  aig::Aig g = bench::industrial(12, 4, /*variant=*/0, /*param=*/3,
                                 /*seed=*/11);
  mc::EngineOptions opts;
  opts.time_limit_sec = 30.0;
  mc::EngineResult r = mc::check_itpseq_pba(g, 0, opts);
  ASSERT_EQ(r.verdict, mc::Verdict::kPass);
  EXPECT_GT(r.stats.cba_visible_latches, 0u);
  EXPECT_LT(r.stats.cba_visible_latches, g.num_latches() / 2)
      << "PBA kept " << r.stats.cba_visible_latches << " of "
      << g.num_latches() << " latches";
}

TEST(Pba, FailDepthsAreShallowest) {
  mc::EngineOptions opts;
  opts.time_limit_sec = 10.0;
  unsigned exercised = 0;
  for (auto& inst : bench::make_academic_suite(20)) {
    if (inst.expected != bench::Expected::kFail || inst.fail_depth < 0)
      continue;
    mc::EngineResult r = mc::check_itpseq_pba(inst.model, 0, opts);
    if (r.verdict == mc::Verdict::kUnknown) continue;
    ASSERT_EQ(r.verdict, mc::Verdict::kFail) << inst.name;
    EXPECT_EQ(r.cex.depth(), static_cast<unsigned>(inst.fail_depth))
        << inst.name;
    ++exercised;
  }
  EXPECT_GE(exercised, 5u);
}

TEST(Pba, ShrinkNeverDropsPropertySupport) {
  // Regression: the PBA shrink used to remove property-support latches
  // from the visible set, widening the abstract initial predicate enough
  // to contain bad states — the fixpoint check then claimed PASS on this
  // failing counter.  The needed-set must always include the support.
  aig::Aig g = bench::counter(4, 12, 7);  // FAILs at depth 7
  mc::EngineOptions opts;
  opts.time_limit_sec = 30.0;
  mc::EngineResult r = mc::check_itpseq_cba_pba(g, 0, opts);
  ASSERT_EQ(r.verdict, mc::Verdict::kFail);
  EXPECT_EQ(r.cex.depth(), 7u);
  mc::EngineResult r2 = mc::check_itpseq_pba(g, 0, opts);
  ASSERT_EQ(r2.verdict, mc::Verdict::kFail);
  EXPECT_EQ(r2.cex.depth(), 7u);
}

TEST(Pba, EngineNamesReflectMode) {
  aig::Aig g = bench::counter(3, 6, 8);
  mc::EngineOptions opts;
  opts.time_limit_sec = 5.0;
  EXPECT_EQ(mc::ItpSeqEngine(g, 0, opts, mc::AbstractionMode::kPba).run().engine,
            "ITPSEQPBA");
  EXPECT_EQ(
      mc::ItpSeqEngine(g, 0, opts, mc::AbstractionMode::kCbaPba).run().engine,
      "ITPSEQCBAPBA");
  EXPECT_STREQ(to_string(mc::AbstractionMode::kNone), "none");
  EXPECT_STREQ(to_string(mc::AbstractionMode::kCba), "cba");
  EXPECT_STREQ(to_string(mc::AbstractionMode::kPba), "pba");
  EXPECT_STREQ(to_string(mc::AbstractionMode::kCbaPba), "cba+pba");
}

TEST(Pba, WorksWithEverySequenceVariant) {
  // PBA composes with serial / dynamic sequence construction.
  aig::Aig g = bench::token_ring(5, false);
  for (double alpha : {0.0, 0.5, 1.0}) {
    mc::EngineOptions opts;
    opts.time_limit_sec = 15.0;
    opts.serial_alpha = alpha;
    mc::EngineResult r =
        mc::ItpSeqEngine(g, 0, opts, mc::AbstractionMode::kPba).run();
    EXPECT_EQ(r.verdict, mc::Verdict::kPass) << "alpha=" << alpha;
  }
  mc::EngineOptions dyn;
  dyn.time_limit_sec = 15.0;
  dyn.serial_dynamic = true;
  mc::EngineResult r =
      mc::ItpSeqEngine(g, 0, dyn, mc::AbstractionMode::kPba).run();
  EXPECT_EQ(r.verdict, mc::Verdict::kPass);
}

TEST(Pba, WorksWithEveryInterpolationSystem) {
  aig::Aig g = bench::queue(5, true);
  for (itp::System sys : {itp::System::kMcMillan, itp::System::kPudlak,
                          itp::System::kInverseMcMillan}) {
    mc::EngineOptions opts;
    opts.time_limit_sec = 15.0;
    opts.itp_system = sys;
    mc::EngineResult r = mc::check_itpseq_pba(g, 0, opts);
    EXPECT_EQ(r.verdict, mc::Verdict::kPass) << to_string(sys);
  }
}

}  // namespace
}  // namespace itpseq
