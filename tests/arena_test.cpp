// arena_test.cpp — flat clause arena, binary watchers, LBD-tiered
// reduce_db and the arena garbage collector.
//
// The GC stress tests force the wasted-bytes threshold near zero and the
// learned-clause cap to its floor, so clause deletion, satisfied-clause
// removal and physical compaction all fire constantly; every verdict,
// failed-assumption core and proof must be unchanged by any of it.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <sstream>

#include "sat/proof_check.hpp"
#include "sat/solver.hpp"
#include "sat/tracecheck.hpp"

namespace itpseq::sat {
namespace {

Lit pos(Var v) { return mk_lit(v, false); }
Lit negl(Var v) { return mk_lit(v, true); }

// Random 3-SAT clause set at the given ratio.
std::vector<std::vector<Lit>> random_cnf(std::mt19937& rng, unsigned nvars,
                                         double ratio) {
  std::vector<std::vector<Lit>> cls;
  const unsigned n = static_cast<unsigned>(nvars * ratio);
  for (unsigned c = 0; c < n; ++c) {
    std::vector<Lit> cl;
    while (cl.size() < 3) {
      Lit l = mk_lit(rng() % nvars, rng() % 2);
      bool dup = false;
      for (Lit x : cl)
        if (var(x) == var(l)) dup = true;
      if (!dup) cl.push_back(l);
    }
    cls.push_back(cl);
  }
  return cls;
}

TEST(Arena, BinaryPropagationsCounted) {
  // x0 -> x1 -> ... -> x9 through binary clauses: all implications must be
  // served by the inline binary watchers.
  Solver s;
  Var v[10];
  for (auto& x : v) x = s.new_var();
  for (int i = 0; i + 1 < 10; ++i) s.add_clause({negl(v[i]), pos(v[i + 1])});
  s.add_clause({pos(v[0])});
  EXPECT_EQ(s.solve(), Status::kSat);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(s.model_value(v[i]));
  EXPECT_EQ(s.stats().bin_propagations, s.stats().propagations);
  EXPECT_GE(s.stats().bin_propagations, 9u);
}

TEST(Arena, GlueHistogramPopulated) {
  Solver s;
  s.set_inprocess(false);  // needs real search: learned clauses fill the hist
  std::mt19937 rng(42);
  const unsigned nvars = 30;
  for (unsigned i = 0; i < nvars; ++i) s.new_var();
  for (const auto& cl : random_cnf(rng, nvars, 4.4)) s.add_clause(cl);
  ASSERT_NE(s.solve(), Status::kUnknown);
  std::uint64_t learned = 0;
  for (auto g : s.stats().glue_hist) learned += g;
  EXPECT_GT(learned, 0u);
}

TEST(Arena, RetiredClausesPhysicallyReclaimed) {
  // PDR-style retirement: guarded clauses killed by activation units must
  // be swept (remove_satisfied) and compacted (GC) once enough propagation
  // work has passed.
  Solver s;
  s.set_gc_frac(0.01);
  std::mt19937 rng(7);
  const unsigned nv = 40;
  std::vector<Var> vars;
  for (unsigned i = 0; i < nv; ++i) vars.push_back(s.new_var());
  std::vector<Lit> acts;
  for (int round = 0; round < 600; ++round) {
    Lit act = mk_lit(s.new_var());
    std::vector<Lit> cl{neg(act)};
    for (unsigned k = 0; k < 3 + rng() % 5; ++k)
      cl.push_back(mk_lit(vars[rng() % nv], rng() % 2));
    s.add_clause(cl);
    acts.push_back(act);
    // Retire everything but the newest few almost immediately.
    if (acts.size() > 8) {
      s.add_clause({neg(acts.front())});
      acts.erase(acts.begin());
    }
    std::vector<Lit> as(acts.begin(), acts.end());
    ASSERT_NE(s.solve_assuming(as), Status::kUnknown);
    ASSERT_TRUE(s.ok());
  }
  EXPECT_GT(s.stats().removed_satisfied, 0u);
  EXPECT_GT(s.stats().gc_runs, 0u);
  EXPECT_GT(s.stats().wasted_bytes_reclaimed, 0u);
  // The live formula is ~8 guarded clauses + retire units; the arena must
  // stay far below the ~600-clause high-water mark.
  EXPECT_LT(s.arena_bytes(), 100000u);
}

TEST(Arena, ProofSurvivesReduceAndGc) {
  // Proof-logged UNSAT with the learned cap at its floor and the GC
  // threshold near zero: clause deletion + compaction must never corrupt
  // the resolution chains, and the tracecheck replay must still emit the
  // full refutation.
  std::mt19937 rng(2026);
  unsigned unsat_seen = 0;
  for (int attempt = 0; attempt < 30 && unsat_seen < 5; ++attempt) {
    std::mt19937 inst_rng(1000 + attempt);
    Solver s;
    s.enable_proof();
    s.set_reduce_base(20.0);
    s.set_gc_frac(0.01);
    const unsigned nvars = 26;
    for (unsigned i = 0; i < nvars; ++i) s.new_var();
    for (const auto& cl : random_cnf(inst_rng, nvars, 4.6)) s.add_clause(cl);
    Status st = s.solve();
    ASSERT_NE(st, Status::kUnknown);
    if (st == Status::kSat) {
      EXPECT_TRUE(s.verify_model());
      continue;
    }
    ++unsat_seen;
    auto res = check_proof(s.proof());
    ASSERT_TRUE(res.ok) << res.error;
    std::ostringstream tc;
    write_tracecheck(s.proof(), tc);
    EXPECT_FALSE(tc.str().empty());
  }
  EXPECT_GE(unsat_seen, 5u) << "suite too easy: no UNSAT instances drawn";
}

TEST(Arena, LbdTierReduceDeterminism) {
  // Two identical runs with forced reductions/GC must take the identical
  // search path: the reduce policy is a pure function of (LBD, activity,
  // insertion order).
  auto run = [](SolverStats& out) -> Status {
    std::mt19937 rng(555);
    Solver s;
    s.set_inprocess(false);  // the test targets reduce_db/GC on search paths
    s.set_reduce_base(30.0);
    s.set_gc_frac(0.05);
    const unsigned nvars = 40;
    for (unsigned i = 0; i < nvars; ++i) s.new_var();
    for (const auto& cl : random_cnf(rng, nvars, 4.3)) s.add_clause(cl);
    Status st = s.solve();
    out = s.stats();
    return st;
  };
  SolverStats a, b;
  Status sa = run(a), sb = run(b);
  EXPECT_EQ(sa, sb);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.propagations, b.propagations);
  EXPECT_EQ(a.bin_propagations, b.bin_propagations);
  EXPECT_EQ(a.conflicts, b.conflicts);
  EXPECT_EQ(a.db_reductions, b.db_reductions);
  EXPECT_EQ(a.gc_runs, b.gc_runs);
  EXPECT_EQ(a.glue_hist, b.glue_hist);
  EXPECT_GT(a.db_reductions, 0u) << "reduce_db never fired; test is vacuous";
}

class ArenaStressTest : public ::testing::TestWithParam<int> {};

TEST_P(ArenaStressTest, InterleavedSessionAgreesWithFreshSolver) {
  // Interleave add_clause / activation-literal deletion / solve_assuming
  // with the GC threshold forced low; every verdict and every
  // failed-assumption core must match a fresh, GC-free solver on the same
  // accumulated formula.
  std::mt19937 rng(3100 + GetParam());
  const unsigned nvars = 12 + rng() % 5;
  Solver inc;
  inc.set_gc_frac(0.02);
  inc.set_reduce_base(25.0);
  for (unsigned i = 0; i < nvars; ++i) inc.new_var();
  std::vector<std::vector<Lit>> added;     // mirror of the live formula
  std::vector<Lit> acts;                   // live activation guards
  std::vector<Var> act_vars;               // all act vars ever created

  for (int step = 0; step < 25 && inc.ok(); ++step) {
    // Permanent clauses.
    for (int c = 0; c < 2; ++c) {
      std::vector<Lit> cl;
      unsigned len = 1 + rng() % 3;
      for (unsigned k = 0; k < len; ++k)
        cl.push_back(mk_lit(rng() % nvars, rng() % 2));
      added.push_back(cl);
      inc.add_clause(cl);
    }
    // A guarded clause, sometimes retired again later.
    {
      Lit act = mk_lit(inc.new_var());
      act_vars.push_back(var(act));
      std::vector<Lit> cl{neg(act)};
      unsigned len = 1 + rng() % 3;
      for (unsigned k = 0; k < len; ++k)
        cl.push_back(mk_lit(rng() % nvars, rng() % 2));
      added.push_back(cl);
      inc.add_clause(cl);
      acts.push_back(act);
    }
    if (acts.size() > 3 && rng() % 2 == 0) {
      Lit retire = acts[rng() % acts.size()];
      acts.erase(std::find(acts.begin(), acts.end(), retire));
      added.push_back({neg(retire)});
      inc.add_clause({neg(retire)});
    }

    std::vector<Lit> assumptions;
    for (unsigned v = 0; v < nvars; ++v)
      if (rng() % 4 == 0) assumptions.push_back(mk_lit(v, rng() % 2));
    for (Lit a : acts)
      if (rng() % 2) assumptions.push_back(a);

    Status got = inc.solve_assuming(assumptions);
    ASSERT_NE(got, Status::kUnknown);

    // Reference: fresh solver over the same formula + assumption units.
    auto fresh_solve = [&](const std::vector<Lit>& as) {
      Solver fresh;
      for (unsigned i = 0; i < nvars; ++i) fresh.new_var();
      for (Var av : act_vars) {
        (void)av;
        fresh.new_var();
      }
      for (const auto& cl : added) fresh.add_clause(cl);
      for (Lit a : as) fresh.add_clause({a});
      return fresh.solve();
    };
    Status expected = fresh_solve(assumptions);
    ASSERT_NE(expected, Status::kUnknown);
    EXPECT_EQ(got, expected) << "step " << step;
    if (got == Status::kSat) {
      EXPECT_TRUE(inc.verify_model());
    } else if (inc.ok()) {
      // Core validity: a subset of the assumptions, and itself sufficient.
      const auto& core = inc.failed_assumptions();
      for (Lit l : core)
        EXPECT_NE(std::find(assumptions.begin(), assumptions.end(), l),
                  assumptions.end())
            << "core literal not among the assumptions";
      EXPECT_EQ(fresh_solve(core), Status::kUnsat)
          << "failed-assumption core is not sufficient for the conflict";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sessions, ArenaStressTest, ::testing::Range(0, 30));

TEST(Arena, EmaRestartsFireOnRisingGlue) {
  // Pigeonhole makes learned glue drift upward, which is exactly the
  // EMA-mode trigger (short-term average 25% above long-term).
  Solver s;
  s.set_inprocess(false);  // BVE refutes PHP at the root; restarts need search
  s.set_restart_mode(RestartMode::kEma);
  const int n = 6;  // 7 pigeons, 6 holes: several hundred conflicts
  std::vector<std::vector<Var>> p(n + 1, std::vector<Var>(n));
  for (auto& row : p)
    for (auto& v : row) v = s.new_var();
  for (int i = 0; i <= n; ++i) {
    std::vector<Lit> cl;
    for (int h = 0; h < n; ++h) cl.push_back(pos(p[i][h]));
    s.add_clause(cl);
  }
  for (int h = 0; h < n; ++h)
    for (int i = 0; i <= n; ++i)
      for (int j = i + 1; j <= n; ++j)
        s.add_clause({negl(p[i][h]), negl(p[j][h])});
  EXPECT_EQ(s.solve(), Status::kUnsat);
  EXPECT_GT(s.stats().restarts, 0u);
}

TEST(Arena, EmaRestartsAgreeWithLuby) {
  // The restart policy (--sat-restarts luby|ema) must never change
  // verdicts: run both modes on the same instances, crosscheck the answer,
  // and check proofs/models.
  for (int seed = 0; seed < 12; ++seed) {
    Solver luby, ema;
    ema.set_restart_mode(RestartMode::kEma);
    ASSERT_EQ(ema.restart_mode(), RestartMode::kEma);
    luby.enable_proof();
    ema.enable_proof();
    const unsigned nvars = 30;
    for (unsigned i = 0; i < nvars; ++i) {
      luby.new_var();
      ema.new_var();
    }
    std::mt19937 rng(4200 + seed);
    for (const auto& cl : random_cnf(rng, nvars, 4.4)) {
      luby.add_clause(cl);
      ema.add_clause(cl);
    }
    Status sa = luby.solve();
    Status sb = ema.solve();
    ASSERT_NE(sa, Status::kUnknown);
    ASSERT_NE(sb, Status::kUnknown);
    EXPECT_EQ(sa, sb) << "restart mode changed the verdict, seed " << seed;
    if (sb == Status::kUnsat) {
      auto res = check_proof(ema.proof());
      EXPECT_TRUE(res.ok) << res.error;
    } else {
      EXPECT_TRUE(ema.verify_model());
    }
  }
}

TEST(Arena, LearnedTierCountsMatchGlueHistogram) {
  Solver s;
  std::mt19937 rng(99);
  const unsigned nvars = 34;
  for (unsigned i = 0; i < nvars; ++i) s.new_var();
  for (const auto& cl : random_cnf(rng, nvars, 4.3)) s.add_clause(cl);
  ASSERT_NE(s.solve(), Status::kUnknown);
  const SolverStats& st = s.stats();
  EXPECT_EQ(st.learned_core, st.glue_hist[0] + st.glue_hist[1]);
  EXPECT_EQ(st.learned_mid,
            st.glue_hist[2] + st.glue_hist[3] + st.glue_hist[4] + st.glue_hist[5]);
  EXPECT_EQ(st.learned_local, st.glue_hist[6] + st.glue_hist[7]);
  EXPECT_GT(st.learned_core + st.learned_mid + st.learned_local, 0u);
  EXPECT_GT(st.peak_arena_bytes, 0u);
  EXPECT_GE(st.peak_arena_bytes, s.arena_bytes());
}

TEST(Arena, ReduceDbKeepsVerdictsOnPigeonhole) {
  // Forced constant reduction on a real combinatorial UNSAT instance.
  Solver s;
  s.enable_proof();
  s.set_reduce_base(10.0);
  s.set_gc_frac(0.01);
  const int n = 5;  // 6 pigeons, 5 holes
  std::vector<std::vector<Var>> p(n + 1, std::vector<Var>(n));
  for (auto& row : p)
    for (auto& v : row) v = s.new_var();
  for (int i = 0; i <= n; ++i) {
    std::vector<Lit> cl;
    for (int h = 0; h < n; ++h) cl.push_back(pos(p[i][h]));
    s.add_clause(cl, 1);
  }
  for (int h = 0; h < n; ++h)
    for (int i = 0; i <= n; ++i)
      for (int j = i + 1; j <= n; ++j)
        s.add_clause({negl(p[i][h]), negl(p[j][h])}, 2);
  EXPECT_EQ(s.solve(), Status::kUnsat);
  EXPECT_GT(s.stats().db_reductions, 0u);
  auto res = check_proof(s.proof());
  EXPECT_TRUE(res.ok) << res.error;
}

}  // namespace
}  // namespace itpseq::sat
