// incremental_test.cpp — incremental SAT interface (assumptions, clause
// addition between solves, failed-assumption cores) and incremental BMC.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "bench_circuits/generators.hpp"
#include "bench_circuits/suite.hpp"
#include "mc/bmc.hpp"
#include "mc/engine.hpp"
#include "mc/sim.hpp"
#include "sat/solver.hpp"

namespace itpseq {
namespace {

using sat::mk_lit;
using sat::Status;

TEST(Incremental, AssumptionsFlipOutcome) {
  sat::Solver s;
  sat::Var a = s.new_var(), b = s.new_var();
  s.add_clause({mk_lit(a), mk_lit(b)});
  EXPECT_EQ(s.solve_assuming({mk_lit(a, true)}), Status::kSat);
  EXPECT_TRUE(s.model_value(b));
  EXPECT_EQ(s.solve_assuming({mk_lit(a, true), mk_lit(b, true)}), Status::kUnsat);
  EXPECT_TRUE(s.ok());  // clause set itself is satisfiable
  EXPECT_EQ(s.solve(), Status::kSat);
}

TEST(Incremental, FailedAssumptionCore) {
  sat::Solver s;
  sat::Var x = s.new_var(), y = s.new_var(), z = s.new_var();
  s.add_clause({mk_lit(x, true), mk_lit(y, true)});  // ~x | ~y
  Status st = s.solve_assuming({mk_lit(z), mk_lit(x), mk_lit(y)});
  ASSERT_EQ(st, Status::kUnsat);
  const auto& core = s.failed_assumptions();
  // Core must mention x and y and may not mention the irrelevant z.
  auto has = [&](sat::Lit l) {
    return std::find(core.begin(), core.end(), l) != core.end();
  };
  EXPECT_TRUE(has(mk_lit(x)));
  EXPECT_TRUE(has(mk_lit(y)));
  EXPECT_FALSE(has(mk_lit(z)));
}

TEST(Incremental, ClausesAddedBetweenSolves) {
  sat::Solver s;
  sat::Var v[4];
  for (auto& x : v) x = s.new_var();
  s.add_clause({mk_lit(v[0]), mk_lit(v[1])});
  EXPECT_EQ(s.solve(), Status::kSat);
  s.add_clause({mk_lit(v[0], true)});
  EXPECT_EQ(s.solve(), Status::kSat);
  EXPECT_TRUE(s.model_value(v[1]));
  s.add_clause({mk_lit(v[1], true)});
  EXPECT_EQ(s.solve(), Status::kUnsat);
  EXPECT_FALSE(s.ok());
  // Once truly unsat, further solves stay unsat.
  EXPECT_EQ(s.solve(), Status::kUnsat);
}

TEST(Incremental, AssumptionsThenPermanentUnsat) {
  sat::Solver s;
  sat::Var a = s.new_var();
  s.add_clause({mk_lit(a)});
  EXPECT_EQ(s.solve_assuming({mk_lit(a, true)}), Status::kUnsat);
  EXPECT_TRUE(s.ok());
  s.add_clause({mk_lit(a, true)});
  EXPECT_EQ(s.solve(), Status::kUnsat);
  EXPECT_FALSE(s.ok());
}

TEST(Incremental, ProofLoggingRejectsAssumptions) {
  sat::Solver s;
  s.enable_proof();
  sat::Var a = s.new_var();
  s.add_clause({mk_lit(a)});
  EXPECT_THROW(s.solve_assuming({mk_lit(a, true)}), std::logic_error);
}

class IncrementalRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalRandomTest, AgreesWithFreshSolver) {
  // Random incremental session: interleave clause additions and
  // assumption-solves; every answer must match a fresh solver on the same
  // accumulated formula + assumption units.
  std::mt19937 rng(500 + GetParam());
  const unsigned nvars = 10 + rng() % 5;
  sat::Solver inc;
  for (unsigned i = 0; i < nvars; ++i) inc.new_var();
  std::vector<std::vector<sat::Lit>> added;

  for (int step = 0; step < 12; ++step) {
    // Add a couple of random clauses.
    for (int c = 0; c < 3; ++c) {
      std::vector<sat::Lit> cl;
      unsigned len = 1 + rng() % 3;
      for (unsigned k = 0; k < len; ++k)
        cl.push_back(mk_lit(rng() % nvars, rng() % 2));
      added.push_back(cl);
      inc.add_clause(cl);
    }
    // Random assumptions (distinct vars).
    std::vector<sat::Lit> assumptions;
    for (unsigned v = 0; v < nvars; ++v)
      if (rng() % 4 == 0) assumptions.push_back(mk_lit(v, rng() % 2));

    Status got = inc.solve_assuming(assumptions);
    ASSERT_NE(got, Status::kUnknown);

    sat::Solver fresh;
    for (unsigned i = 0; i < nvars; ++i) fresh.new_var();
    for (const auto& cl : added) fresh.add_clause(cl);
    for (sat::Lit a : assumptions) fresh.add_clause({a});
    Status expected = fresh.solve();
    ASSERT_NE(expected, Status::kUnknown);
    EXPECT_EQ(got, expected) << "step " << step;
    if (got == Status::kSat) {
      EXPECT_TRUE(inc.verify_model());
    }
    if (!inc.ok()) break;  // permanently unsat; fresh agrees by equality
  }
}

INSTANTIATE_TEST_SUITE_P(Sessions, IncrementalRandomTest, ::testing::Range(0, 40));

// --- incremental BMC ---------------------------------------------------------

class IncrementalBmcTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(IncrementalBmcTest, MatchesMonolithicBmc) {
  auto suite = bench::make_academic_suite(24);
  if (GetParam() >= suite.size()) GTEST_SKIP();
  const bench::Instance& inst = suite[GetParam()];
  const bool fails = inst.expected == bench::Expected::kFail;

  mc::EngineOptions mono;
  mono.time_limit_sec = 20.0;
  // On PASS instances BMC can only exhaust the bound; cap it so the
  // crosscheck ("no counterexample up to k" must agree too) stays fast.
  mono.max_bound = fails ? 60 : 10;
  mono.bmc_incremental = false;  // monolithic cross-check mode
  mc::EngineOptions incr = mono;
  incr.bmc_incremental = true;
  ASSERT_TRUE(mc::EngineOptions{}.bmc_incremental)
      << "incremental BMC should be the default";

  for (auto scheme : {cnf::TargetScheme::kExact, cnf::TargetScheme::kExactAssume,
                      cnf::TargetScheme::kBound}) {
    mono.scheme = incr.scheme = scheme;
    mc::EngineResult a = mc::check_bmc(inst.model, 0, mono);
    mc::EngineResult b = mc::check_bmc(inst.model, 0, incr);
    if (!fails) {
      // Neither formulation may "find" a counterexample on a safe model.
      EXPECT_NE(a.verdict, mc::Verdict::kFail) << inst.name;
      EXPECT_NE(b.verdict, mc::Verdict::kFail) << inst.name;
      continue;
    }
    if (a.verdict == mc::Verdict::kUnknown || b.verdict == mc::Verdict::kUnknown)
      continue;
    EXPECT_EQ(a.verdict, b.verdict) << inst.name;
    ASSERT_EQ(b.verdict, mc::Verdict::kFail);
    EXPECT_TRUE(mc::trace_is_cex(inst.model, b.cex, 0))
        << inst.name << " incremental cex invalid";
    EXPECT_EQ(a.cex.depth(), b.cex.depth()) << inst.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Suite, IncrementalBmcTest,
                         ::testing::Range(0u, 40u, 3u));

TEST(IncrementalBmc, FasterSchedulesStillSound) {
  // Deep counterexample: the single-instance formulation must find the
  // exact same depth.
  aig::Aig g = bench::token_ring(24, true);
  mc::EngineOptions opts;
  opts.time_limit_sec = 30.0;
  opts.bmc_incremental = true;
  mc::EngineResult r = mc::check_bmc(g, 0, opts);
  ASSERT_EQ(r.verdict, mc::Verdict::kFail);
  EXPECT_EQ(r.cex.depth(), 23u);
  EXPECT_TRUE(mc::trace_is_cex(g, r.cex, 0));
}

}  // namespace
}  // namespace itpseq
