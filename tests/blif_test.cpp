// blif_test.cpp — BLIF reader/writer: cover semantics, latch handling,
// round-trips (BLIF -> AIG -> BLIF and AIGER <-> BLIF), and error paths.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "aig/aig.hpp"
#include "aig/aiger_io.hpp"
#include "bench_circuits/suite.hpp"
#include "io/blif.hpp"
#include "mc/engine.hpp"
#include "opt/fraig.hpp"

namespace itpseq {
namespace {

aig::Aig parse(const std::string& text) {
  std::istringstream in(text);
  return io::read_blif(in);
}

/// Evaluate output 0 of g under input values given by name order.
bool eval_out(const aig::Aig& g, const std::vector<bool>& inputs,
              std::size_t out = 0) {
  std::vector<bool> vals(g.num_vars(), false);
  for (std::size_t i = 0; i < g.num_inputs(); ++i)
    vals[aig::lit_var(g.input(i))] = inputs[i];
  return g.evaluate(g.output(out), vals);
}

TEST(Blif, AndCover) {
  aig::Aig g = parse(R"(.model t
.inputs a b
.outputs f
.names a b f
11 1
.end
)");
  EXPECT_EQ(g.num_inputs(), 2u);
  EXPECT_EQ(g.num_outputs(), 1u);
  EXPECT_TRUE(eval_out(g, {true, true}));
  EXPECT_FALSE(eval_out(g, {true, false}));
  EXPECT_FALSE(eval_out(g, {false, true}));
}

TEST(Blif, SumOfProductsAndDontCares) {
  // f = a&~b | c  (with a don't-care column).
  aig::Aig g = parse(R"(.model t
.inputs a b c
.outputs f
.names a b c f
10- 1
--1 1
.end
)");
  for (int m = 0; m < 8; ++m) {
    bool a = m & 1, b = m & 2, c = m & 4;
    EXPECT_EQ(eval_out(g, {a, b, c}), (a && !b) || c) << m;
  }
}

TEST(Blif, OffSetCover) {
  // Rows with output 0 define the complement: f = NOT (a & b).
  aig::Aig g = parse(R"(.model t
.inputs a b
.outputs f
.names a b f
11 0
.end
)");
  EXPECT_FALSE(eval_out(g, {true, true}));
  EXPECT_TRUE(eval_out(g, {false, true}));
}

TEST(Blif, Constants) {
  aig::Aig g = parse(R"(.model t
.inputs a
.outputs zero one
.names zero
.names one
1
.end
)");
  EXPECT_EQ(g.output(0), aig::kFalse);
  EXPECT_EQ(g.output(1), aig::kTrue);
}

TEST(Blif, ChainedCoversAnyOrder) {
  // g defined after its use; the reader must resolve by name.
  aig::Aig a = parse(R"(.model t
.inputs x y
.outputs f
.names g x f
11 1
.names y g
0 1
.end
)");
  // f = (NOT y) AND x.
  EXPECT_TRUE(eval_out(a, {true, false}));
  EXPECT_FALSE(eval_out(a, {true, true}));
  EXPECT_FALSE(eval_out(a, {false, false}));
}

TEST(Blif, LatchesWithInitValues) {
  aig::Aig g = parse(R"(.model t
.inputs d
.outputs f
.latch d q0 0
.latch d q1 1
.latch d q2 2
.latch d q3 re clk 0
.names q0 q1 f
11 1
.end
)");
  ASSERT_EQ(g.num_latches(), 4u);
  EXPECT_EQ(g.latch_init(0), aig::LatchInit::kZero);
  EXPECT_EQ(g.latch_init(1), aig::LatchInit::kOne);
  EXPECT_EQ(g.latch_init(2), aig::LatchInit::kUndef);
  EXPECT_EQ(g.latch_init(3), aig::LatchInit::kZero);  // typed latch
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(g.latch_next(i), g.input(0));
}

TEST(Blif, CommentsAndContinuations) {
  aig::Aig g = parse(".model t  # comment\n"
                     ".inputs a \\\nb\n"
                     ".outputs f\n"
                     ".names a b f  # trailing\n"
                     "11 1\n"
                     ".end\n");
  EXPECT_EQ(g.num_inputs(), 2u);
  EXPECT_TRUE(eval_out(g, {true, true}));
}

TEST(Blif, Errors) {
  EXPECT_THROW(parse(".model a\n.model b\n"), std::runtime_error);
  EXPECT_THROW(parse(".model t\n.subckt foo x=y\n"), std::runtime_error);
  EXPECT_THROW(parse(".model t\n.inputs a\n.outputs f\n.names a f\n1 1\n"
                     ".names a f\n0 1\n"),
               std::runtime_error);  // f defined twice
  EXPECT_THROW(parse(".model t\n.outputs f\n.end\n"), std::runtime_error);
  EXPECT_THROW(parse(".model t\n.inputs a\n.outputs f\n.names a f\n"
                     "11 1\n"),
               std::runtime_error);  // row width mismatch
  EXPECT_THROW(parse(".model t\n.inputs a\n.outputs f\n.names a f\n"
                     "1 1\n0 0\n"),
               std::runtime_error);  // mixed on/off rows
  EXPECT_THROW(parse(".model t\n.outputs f\n.names g f\n1 1\n.names f g\n"
                     "1 1\n.end\n"),
               std::runtime_error);  // combinational cycle
  EXPECT_THROW(io::read_blif_file("/nonexistent/x.blif"), std::runtime_error);
}

/// Structural round-trip: write then re-read, verify by co-simulation of
/// outputs and latch-next functions over random input/latch values.
void expect_roundtrip(const aig::Aig& g, std::uint32_t seed) {
  std::stringstream ss;
  io::write_blif(g, ss);
  aig::Aig h = io::read_blif(ss);
  ASSERT_EQ(h.num_inputs(), g.num_inputs());
  ASSERT_EQ(h.num_latches(), g.num_latches());
  ASSERT_EQ(h.num_outputs(), g.num_outputs());
  for (std::size_t i = 0; i < g.num_latches(); ++i)
    EXPECT_EQ(h.latch_init(i), g.latch_init(i)) << "latch " << i;
  std::mt19937_64 rng(seed);
  for (int round = 0; round < 8; ++round) {
    std::vector<std::uint64_t> vg(g.num_vars(), 0), vh(h.num_vars(), 0);
    for (std::size_t i = 0; i < g.num_inputs(); ++i) {
      std::uint64_t w = rng();
      vg[aig::lit_var(g.input(i))] = w;
      vh[aig::lit_var(h.input(i))] = w;
    }
    for (std::size_t i = 0; i < g.num_latches(); ++i) {
      std::uint64_t w = rng();
      vg[aig::lit_var(g.latch(i))] = w;
      vh[aig::lit_var(h.latch(i))] = w;
    }
    for (std::size_t o = 0; o < g.num_outputs(); ++o)
      ASSERT_EQ(g.evaluate64(g.output(o), vg), h.evaluate64(h.output(o), vh))
          << "output " << o;
    for (std::size_t i = 0; i < g.num_latches(); ++i)
      ASSERT_EQ(g.evaluate64(g.latch_next(i), vg),
                h.evaluate64(h.latch_next(i), vh))
          << "next " << i;
  }
}

TEST(Blif, RoundTripSuiteInstances) {
  unsigned done = 0;
  for (auto& inst : bench::make_academic_suite(24)) {
    expect_roundtrip(inst.model, 100 + done);
    if (++done >= 12) break;
  }
  EXPECT_GE(done, 12u);
}

TEST(Blif, AigerToBlifToAiger) {
  // Cross-format: AIGER binary -> AIG -> BLIF -> AIG -> AIGER ASCII, with
  // the model-checking verdict preserved end to end.
  aig::Aig g = bench::make_academic_suite(16).front().model;
  std::stringstream aig_bin;
  aig::write_aiger_binary(g, aig_bin);
  aig::Aig g2 = aig::read_aiger(aig_bin);
  std::stringstream blif;
  io::write_blif(g2, blif);
  aig::Aig g3 = io::read_blif(blif);
  expect_roundtrip(g3, 7);
  mc::EngineOptions opts;
  opts.time_limit_sec = 10.0;
  mc::EngineResult r1 = mc::check_itpseq(g, 0, opts);
  mc::EngineResult r2 = mc::check_itpseq(g3, 0, opts);
  // The rebuilt AIG is structurally different, so proof shapes (and hence
  // convergence bounds) may differ slightly; the verdict must not.
  EXPECT_EQ(r1.verdict, r2.verdict);
}

TEST(Blif, NamesSurviveRoundTrip) {
  aig::Aig g;
  aig::Lit a = g.add_input("req");
  aig::Lit q = g.add_latch(aig::LatchInit::kZero, "state");
  g.set_latch_next(q, g.make_and(a, aig::lit_not(q)));
  g.add_output(g.make_and(q, a), "bad");
  std::stringstream ss;
  io::write_blif(g, ss);
  std::string text = ss.str();
  EXPECT_NE(text.find("req"), std::string::npos);
  EXPECT_NE(text.find("state"), std::string::npos);
  aig::Aig h = io::read_blif(ss);
  EXPECT_EQ(h.name(aig::lit_var(h.input(0))), "req");
  EXPECT_EQ(h.name(aig::lit_var(h.latch(0))), "state");
}

class BlifRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(BlifRandomTest, RandomCircuitRoundTrip) {
  std::mt19937 rng(GetParam());
  aig::Aig g;
  unsigned ni = 1 + rng() % 4, nl = rng() % 4;
  std::vector<aig::Lit> pool;
  for (unsigned i = 0; i < ni; ++i) pool.push_back(g.add_input());
  std::vector<aig::Lit> latches;
  for (unsigned i = 0; i < nl; ++i) {
    aig::Lit l = g.add_latch(static_cast<aig::LatchInit>(rng() % 3));
    latches.push_back(l);
    pool.push_back(l);
  }
  for (unsigned n = 0; n < 10 + rng() % 30; ++n) {
    aig::Lit a = pool[rng() % pool.size()] ^ (rng() % 2);
    aig::Lit b = pool[rng() % pool.size()] ^ (rng() % 2);
    pool.push_back(rng() % 2 ? g.make_and(a, b) : g.make_xor(a, b));
  }
  for (aig::Lit l : latches)
    g.set_latch_next(l, pool[rng() % pool.size()] ^ (rng() % 2));
  g.add_output(pool[rng() % pool.size()] ^ (rng() % 2));
  g.add_output(pool[rng() % pool.size()] ^ (rng() % 2));
  expect_roundtrip(g, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Random, BlifRandomTest, ::testing::Range(0, 40));

}  // namespace
}  // namespace itpseq
