// extras_test.cpp — tests for the auxiliary library pieces: the validation
// API, DIMACS I/O, AIG compaction, random simulation and the portfolio.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "aig/compact.hpp"
#include "bench_circuits/generators.hpp"
#include "itp/interpolate.hpp"
#include "itp/validate.hpp"
#include "mc/itpseq_verif.hpp"
#include "mc/portfolio.hpp"
#include "mc/sim.hpp"
#include "sat/dimacs.hpp"
#include "sat/solver.hpp"

namespace itpseq {
namespace {

// --- itp::validate -----------------------------------------------------------

itp::LabeledCnf chain_cnf(unsigned n) {
  // x1, x_i -> x_{i+1} per partition, ~x_n.
  itp::LabeledCnf f;
  f.num_vars = n;
  f.clauses.push_back({{sat::mk_lit(0)}, 1});
  for (unsigned i = 0; i + 1 < n; ++i)
    f.clauses.push_back({{sat::mk_lit(i, true), sat::mk_lit(i + 1)}, i + 2});
  f.clauses.push_back({{sat::mk_lit(n - 1, true)}, n + 1});
  return f;
}

TEST(Validate, AcceptsRealInterpolants) {
  itp::LabeledCnf f = chain_cnf(5);
  sat::Solver s;
  s.enable_proof();
  for (unsigned i = 0; i < f.num_vars; ++i) s.new_var();
  for (auto& [lits, label] : f.clauses) s.add_clause(lits, label);
  ASSERT_EQ(s.solve(), sat::Status::kUnsat);

  aig::Aig g;
  std::vector<sat::Var> ids;
  for (unsigned v = 0; v < f.num_vars; ++v) {
    g.add_input();
    ids.push_back(v);
  }
  itp::InterpolantExtractor ex(s.proof());
  std::vector<aig::Lit> seq =
      ex.extract_sequence(g, 1, 5, [&](std::uint32_t, sat::Var v) {
        return g.input(v);
      });
  auto r = itp::validate_sequence(f, g, seq, ids);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(Validate, RejectsBogusInterpolant) {
  itp::LabeledCnf f = chain_cnf(4);
  aig::Aig g;
  std::vector<sat::Var> ids;
  for (unsigned v = 0; v < f.num_vars; ++v) {
    g.add_input();
    ids.push_back(v);
  }
  // NOT x2 is not implied by A at cut 2 (A forces x1 and x1->x2).
  auto r = itp::validate_interpolant(f, 2, g, aig::lit_not(g.input(1)), ids);
  EXPECT_FALSE(r.ok);
  // x1 at cut 3 violates the support condition (x1 is A-local there).
  auto r2 = itp::validate_interpolant(f, 3, g, g.input(0), ids);
  EXPECT_FALSE(r2.ok);
  EXPECT_NE(r2.error.find("not shared"), std::string::npos);
}

TEST(Validate, RejectsNonBlockingInterpolant) {
  itp::LabeledCnf f = chain_cnf(4);
  aig::Aig g;
  std::vector<sat::Var> ids;
  for (unsigned v = 0; v < f.num_vars; ++v) {
    g.add_input();
    ids.push_back(v);
  }
  // TRUE satisfies A => I but not I AND B unsat.
  auto r = itp::validate_interpolant(f, 2, g, aig::kTrue, ids);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("consistent with B"), std::string::npos);
}

// --- DIMACS ------------------------------------------------------------------

TEST(Dimacs, RoundTrip) {
  sat::DimacsProblem p;
  p.num_vars = 4;
  p.clauses = {{sat::mk_lit(0), sat::mk_lit(1, true)},
               {sat::mk_lit(2)},
               {sat::mk_lit(3, true), sat::mk_lit(0, true)}};
  p.labels = {1, 1, 2};
  std::stringstream ss;
  sat::write_dimacs(p, ss);
  sat::DimacsProblem q = sat::read_dimacs(ss);
  EXPECT_EQ(q.num_vars, 4u);
  ASSERT_EQ(q.clauses.size(), 3u);
  EXPECT_EQ(q.clauses[0], p.clauses[0]);
  EXPECT_EQ(q.labels, p.labels);
}

TEST(Dimacs, ParsesStandardFormat) {
  std::stringstream ss("c a comment\np cnf 3 2\n1 -2 0\n2 3 0\n");
  sat::DimacsProblem p = sat::read_dimacs(ss);
  EXPECT_EQ(p.num_vars, 3u);
  ASSERT_EQ(p.clauses.size(), 2u);
  sat::Solver s;
  EXPECT_TRUE(sat::load_dimacs(p, s));
  EXPECT_EQ(s.solve(), sat::Status::kSat);
  EXPECT_TRUE(s.verify_model());
}

TEST(Dimacs, RejectsMalformed) {
  std::stringstream s1("1 2 0\n");
  EXPECT_THROW(sat::read_dimacs(s1), std::runtime_error);
  std::stringstream s2("p cnf 2 1\n5 0\n");
  EXPECT_THROW(sat::read_dimacs(s2), std::runtime_error);
  std::stringstream s3("p dnf 2 1\n1 0\n");
  EXPECT_THROW(sat::read_dimacs(s3), std::runtime_error);
}

TEST(Dimacs, SolvesUnsatWithProof) {
  std::stringstream ss(
      "p cnf 2 4\nc part 1\n1 0\n-1 2 0\nc part 2\n-2 0\n1 2 0\n");
  sat::DimacsProblem p = sat::read_dimacs(ss);
  sat::Solver s;
  s.enable_proof();
  sat::load_dimacs(p, s);
  EXPECT_EQ(s.solve(), sat::Status::kUnsat);
}

// --- aig::compact ------------------------------------------------------------

TEST(Compact, DropsDeadNodes) {
  aig::Aig g;
  aig::Lit a = g.add_input();
  aig::Lit b = g.add_input();
  aig::Lit keep = g.make_and(a, b);
  // Dead logic (distinct nodes, not strash-folded):
  aig::Lit acc = g.make_xor(a, b);
  for (int i = 0; i < 10; ++i) acc = g.make_and(acc, g.add_input());
  ASSERT_GT(g.num_ands(), 5u);
  aig::CompactResult c = aig::compact(g, {keep});
  EXPECT_EQ(c.graph.num_ands(), 1u);
  ASSERT_EQ(c.roots.size(), 1u);
  // Semantics preserved.
  std::vector<bool> vg(g.num_vars()), vc(c.graph.num_vars());
  for (int m = 0; m < 4; ++m) {
    vg[aig::lit_var(a)] = vc[aig::lit_var(c.graph.input(0))] = m & 1;
    vg[aig::lit_var(b)] = vc[aig::lit_var(c.graph.input(1))] = (m & 2) != 0;
    EXPECT_EQ(g.evaluate(keep, vg), c.graph.evaluate(c.roots[0], vc));
  }
}

TEST(Compact, KeepsLatchLogicOnRequest) {
  aig::Aig g = bench::counter(4, 11, 7);
  aig::CompactResult c = aig::compact(g, {g.output(0)}, /*keep_latch_logic=*/true);
  EXPECT_EQ(c.graph.num_latches(), g.num_latches());
  // Next-state functions present and equivalent under random patterns.
  std::mt19937_64 rng(3);
  for (int t = 0; t < 16; ++t) {
    std::vector<std::uint64_t> vg(g.num_vars()), vc(c.graph.num_vars());
    for (std::size_t i = 0; i < g.num_latches(); ++i) {
      std::uint64_t r = rng();
      vg[aig::lit_var(g.latch(i))] = r;
      vc[aig::lit_var(c.graph.latch(i))] = r;
    }
    for (std::size_t i = 0; i < g.num_latches(); ++i)
      EXPECT_EQ(g.evaluate64(g.latch_next(i), vg),
                c.graph.evaluate64(c.graph.latch_next(i), vc));
  }
}

TEST(Compact, NegatedRootsPreserved) {
  aig::Aig g;
  aig::Lit a = g.add_input();
  aig::Lit b = g.add_input();
  aig::Lit x = g.make_or(a, b);
  aig::CompactResult c = aig::compact(g, {aig::lit_not(x)});
  std::vector<bool> vc(c.graph.num_vars(), false);
  EXPECT_TRUE(c.graph.evaluate(c.roots[0], vc));  // !(0|0) = 1
}

// --- random simulation --------------------------------------------------------

TEST(RandomSim, FindsShallowFailures) {
  aig::Aig g = bench::queue(4, /*guarded=*/false);
  mc::EngineResult r = mc::check_random_sim(g, 0, 32, 16);
  ASSERT_EQ(r.verdict, mc::Verdict::kFail);
  EXPECT_TRUE(mc::trace_is_cex(g, r.cex, 0));
}

TEST(RandomSim, NeverFailsSafeDesign) {
  aig::Aig g = bench::token_ring(8, false);
  mc::EngineResult r = mc::check_random_sim(g, 0, 64, 32);
  EXPECT_EQ(r.verdict, mc::Verdict::kUnknown);
}

TEST(RandomSim, HandlesUndefResets) {
  aig::Aig g;
  aig::Lit l = g.add_latch(aig::LatchInit::kUndef);
  g.set_latch_next(l, l);
  g.add_output(l);
  mc::EngineResult r = mc::check_random_sim(g, 0, 4, 8);
  ASSERT_EQ(r.verdict, mc::Verdict::kFail);
  EXPECT_TRUE(mc::trace_is_cex(g, r.cex, 0));
}

TEST(RandomSim, DeterministicPerSeed) {
  aig::Aig g = bench::sticky_detector(2, false);
  mc::EngineResult a = mc::check_random_sim(g, 0, 32, 8, 42);
  mc::EngineResult b = mc::check_random_sim(g, 0, 32, 8, 42);
  ASSERT_EQ(a.verdict, b.verdict);
  if (a.verdict == mc::Verdict::kFail) {
    EXPECT_EQ(a.k_fp, b.k_fp);
  }
}

// --- portfolio -----------------------------------------------------------------

TEST(Portfolio, SolvesPassAndFail) {
  mc::PortfolioOptions opts;
  opts.time_limit_sec = 30.0;
  {
    aig::Aig g = bench::token_ring(8, false);
    mc::EngineResult r = mc::check_portfolio(g, 0, opts);
    EXPECT_EQ(r.verdict, mc::Verdict::kPass);
    EXPECT_NE(r.engine.find("portfolio/"), std::string::npos);
  }
  {
    aig::Aig g = bench::queue(8, false);
    mc::EngineResult r = mc::check_portfolio(g, 0, opts);
    ASSERT_EQ(r.verdict, mc::Verdict::kFail);
    EXPECT_TRUE(mc::trace_is_cex(g, r.cex, 0));
  }
}

TEST(Portfolio, RespectsBudget) {
  mc::PortfolioOptions opts;
  opts.time_limit_sec = 0.2;
  opts.members = {mc::PortfolioMember::kItpSeq};
  opts.engine_defaults.max_bound = 1000;
  aig::Aig g = bench::gray_counter(12);  // too deep for 0.2s
  auto t0 = std::chrono::steady_clock::now();
  mc::EngineResult r = mc::check_portfolio(g, 0, opts);
  double el =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_LT(el, 15.0);
  EXPECT_NE(r.verdict, mc::Verdict::kFail);
}

TEST(Portfolio, CustomMemberList) {
  mc::PortfolioOptions opts;
  opts.time_limit_sec = 20.0;
  opts.members = {mc::PortfolioMember::kBmc, mc::PortfolioMember::kItpPartitioned};
  aig::Aig g = bench::counter(4, 11, 13);
  mc::EngineResult r = mc::check_portfolio(g, 0, opts);
  EXPECT_EQ(r.verdict, mc::Verdict::kPass);
  EXPECT_NE(r.engine.find("ITP-PART"), std::string::npos);
}

// --- partitioned / dynamic engine modes ----------------------------------------

TEST(EngineModes, PartitionedItpSoundOnSuiteSamples) {
  mc::EngineOptions opts;
  opts.time_limit_sec = 20.0;
  opts.itp_partitioned = true;
  for (bool fail : {false, true}) {
    aig::Aig g = bench::token_ring(8, fail);
    mc::EngineResult r = mc::check_itp(g, 0, opts);
    ASSERT_NE(r.verdict, mc::Verdict::kUnknown);
    EXPECT_EQ(r.verdict, fail ? mc::Verdict::kFail : mc::Verdict::kPass);
    if (fail) {
      EXPECT_TRUE(mc::trace_is_cex(g, r.cex, 0));
      EXPECT_EQ(r.cex.depth(), 7u);
    }
    EXPECT_EQ(r.engine, "ITP-PART");
  }
}

TEST(EngineModes, PartitionedWithExactScheme) {
  mc::EngineOptions opts;
  opts.time_limit_sec = 20.0;
  opts.itp_partitioned = true;
  opts.scheme = cnf::TargetScheme::kExact;
  aig::Aig g = bench::counter(4, 11, 13);
  EXPECT_EQ(mc::check_itp(g, 0, opts).verdict, mc::Verdict::kPass);
}

TEST(EngineModes, DynamicSerialization) {
  mc::EngineOptions opts;
  opts.time_limit_sec = 20.0;
  opts.serial_dynamic = true;
  opts.serial_size_limit = 50;
  for (bool fail : {false, true}) {
    aig::Aig g = bench::token_ring(10, fail);
    mc::EngineResult r = mc::ItpSeqEngine(g, 0, opts).run();
    EXPECT_EQ(r.verdict, fail ? mc::Verdict::kFail : mc::Verdict::kPass);
    EXPECT_EQ(r.engine, "SITPSEQ-DYN");
  }
}

}  // namespace
}  // namespace itpseq
