// obs_test.cpp — the tracing/telemetry subsystem end to end: JSONL schema
// and parseability under multithreaded emission, per-thread span nesting,
// Chrome trace-event export, stats-json round-trips against EngineStats,
// torn-line safety with concurrent workers + the periodic sampler, and the
// near-zero-cost disabled path.  Runs under the `concurrency` ctest label
// (TSan exercises the buffer handoff and the sampler).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_circuits/generators.hpp"
#include "mc/bmc.hpp"
#include "mc/kinduction.hpp"
#include "mc/pdr.hpp"
#include "mc/portfolio.hpp"
#include "mc/run_report.hpp"
#include "obs/trace.hpp"

namespace itpseq {
namespace {

std::string temp_path(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir ? dir : "/tmp") + "/itpseq_obs_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// --- minimal JSON parser (objects/arrays/strings/numbers/bools/null) -------
// Strict enough to reject torn or truncated output: any syntax error fails
// the parse, and every test asserts on it.

struct Json {
  enum class Type { kNull, kBool, kNum, kStr, kArr, kObj } type = Type::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<Json> arr;
  std::map<std::string, Json> obj;

  bool has(const std::string& k) const { return obj.count(k) != 0; }
  const Json& at(const std::string& k) const { return obj.at(k); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse(Json& out) {
    ok_ = true;
    pos_ = 0;
    out = value();
    skip_ws();
    return ok_ && pos_ == s_.size();
  }

 private:
  const std::string& s_;
  std::size_t pos_ = 0;
  bool ok_ = true;

  void fail() { ok_ = false; }
  char peek() { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  char get() { return pos_ < s_.size() ? s_[pos_++] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  bool literal(const char* lit) {
    for (const char* p = lit; *p; ++p)
      if (get() != *p) {
        fail();
        return false;
      }
    return true;
  }

  Json value() {
    skip_ws();
    Json j;
    if (!ok_) return j;
    switch (peek()) {
      case '{': {
        get();
        j.type = Json::Type::kObj;
        skip_ws();
        if (peek() == '}') {
          get();
          return j;
        }
        while (ok_) {
          skip_ws();
          if (get() != '"') {
            fail();
            break;
          }
          std::string key = string_tail();
          skip_ws();
          if (get() != ':') {
            fail();
            break;
          }
          j.obj[key] = value();
          skip_ws();
          char c = get();
          if (c == '}') break;
          if (c != ',') {
            fail();
            break;
          }
        }
        return j;
      }
      case '[': {
        get();
        j.type = Json::Type::kArr;
        skip_ws();
        if (peek() == ']') {
          get();
          return j;
        }
        while (ok_) {
          j.arr.push_back(value());
          skip_ws();
          char c = get();
          if (c == ']') break;
          if (c != ',') {
            fail();
            break;
          }
        }
        return j;
      }
      case '"':
        get();
        j.type = Json::Type::kStr;
        j.str = string_tail();
        return j;
      case 't':
        j.type = Json::Type::kBool;
        j.b = true;
        literal("true");
        return j;
      case 'f':
        j.type = Json::Type::kBool;
        literal("false");
        return j;
      case 'n':
        literal("null");
        return j;
      default: {
        j.type = Json::Type::kNum;
        std::size_t start = pos_;
        if (peek() == '-') get();
        while (std::isdigit(static_cast<unsigned char>(peek())) ||
               peek() == '.' || peek() == 'e' || peek() == 'E' ||
               peek() == '+' || peek() == '-')
          get();
        if (pos_ == start) {
          fail();
          return j;
        }
        j.num = std::stod(s_.substr(start, pos_ - start));
        return j;
      }
    }
  }

  std::string string_tail() {
    std::string out;
    while (ok_) {
      char c = get();
      if (c == '"') return out;
      if (c == '\0') {
        fail();
        return out;
      }
      if (c == '\\') {
        char e = get();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u':
            for (int i = 0; i < 4; ++i) get();
            out += '?';  // tests never compare escaped unicode content
            break;
          default: fail();
        }
      } else {
        out += c;
      }
    }
    return out;
  }
};

std::vector<Json> parse_jsonl(const std::string& path, bool* all_ok) {
  std::vector<Json> out;
  *all_ok = true;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Json j;
    if (!JsonParser(line).parse(j) || j.type != Json::Type::kObj) {
      *all_ok = false;
      continue;
    }
    out.push_back(std::move(j));
  }
  return out;
}

// ---------------------------------------------------------------------------

TEST(ObsTest, DisabledByDefaultAndEmitIsANoOp) {
  ASSERT_FALSE(obs::enabled());
  obs::emit("never_recorded", {{"x", 1u}});  // must not crash or allocate a sink
  { obs::Span s("no_sink"); }
  ASSERT_FALSE(obs::enabled());
}

TEST(ObsTest, JsonlSchemaFromMultithreadedEmission) {
  std::string path = temp_path("schema.jsonl");
  {
    obs::TraceConfig cfg;
    cfg.path = path;
    cfg.sample_interval_sec = 0.005;  // force concurrent drains
    obs::TraceSink sink(cfg);
    ASSERT_TRUE(obs::enabled());
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t)
      threads.emplace_back([t] {
        obs::ScopedEngine tag(t % 2 == 0 ? "EVEN" : "ODD");
        for (int i = 0; i < 2000; ++i) {
          obs::Span span("work", {{"i", static_cast<unsigned>(i)}});
          obs::emit("tick", {{"thread", static_cast<unsigned>(t)},
                             {"i", static_cast<unsigned>(i)},
                             {"label", "static-string \"quoted\""}});
        }
      });
    for (auto& th : threads) th.join();
    sink.finish();
    obs::TraceSink::Summary sum = sink.summary();
    EXPECT_EQ(sum.dropped, 0u);
    std::uint64_t samples = sum.kinds[std::make_pair("sampler", "sample")];
    EXPECT_EQ(sum.events, 8u * 2u * 2000u + samples);
  }
  ASSERT_FALSE(obs::enabled());

  bool all_ok = false;
  std::vector<Json> events = parse_jsonl(path, &all_ok);
  EXPECT_TRUE(all_ok) << "some lines failed to parse (torn write?)";
  ASSERT_GE(events.size(), 8u * 2u * 2000u);
  std::uint64_t ticks = 0, spans = 0;
  for (const Json& e : events) {
    ASSERT_TRUE(e.has("ts_us") && e.has("tid") && e.has("engine") &&
                e.has("kind") && e.has("payload"));
    EXPECT_EQ(e.obj.size(), 5u);  // exactly the schema keys
    if (e.at("kind").str == "tick") {
      ++ticks;
      EXPECT_EQ(e.at("payload").at("label").str, "static-string \"quoted\"");
    } else if (e.at("kind").str == "span") {
      ++spans;
      EXPECT_TRUE(e.at("payload").has("name"));
      EXPECT_TRUE(e.at("payload").has("dur_us"));
    }
  }
  EXPECT_EQ(ticks, 8u * 2000u);
  EXPECT_EQ(spans, 8u * 2000u);
}

TEST(ObsTest, SpanNestingBalancedPerThread) {
  std::string path = temp_path("nesting.jsonl");
  {
    obs::TraceConfig cfg;
    cfg.path = path;
    cfg.sample_interval_sec = 0;  // drain only at finish
    obs::TraceSink sink(cfg);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
      threads.emplace_back([] {
        for (int i = 0; i < 50; ++i) {
          obs::Span outer("outer");
          obs::Span mid("mid");
          { obs::Span inner("inner"); }
          { obs::Span inner2("inner"); }
        }
      });
    for (auto& th : threads) th.join();
  }
  bool all_ok = false;
  std::vector<Json> events = parse_jsonl(path, &all_ok);
  ASSERT_TRUE(all_ok);

  // Complete events (start + duration) from RAII scopes must form a proper
  // interval nesting per thread: sort by (start, longest first); walking a
  // stack, every span is either disjoint from or contained in the stack top.
  struct Iv {
    std::uint64_t s, e;
  };
  std::map<int, std::vector<Iv>> by_tid;
  for (const Json& ev : events) {
    if (ev.at("kind").str != "span") continue;
    std::uint64_t s = static_cast<std::uint64_t>(ev.at("ts_us").num);
    by_tid[static_cast<int>(ev.at("tid").num)].push_back(
        {s, s + static_cast<std::uint64_t>(ev.at("payload").at("dur_us").num)});
  }
  ASSERT_EQ(by_tid.size(), 4u);
  for (auto& [tid, ivs] : by_tid) {
    ASSERT_EQ(ivs.size(), 4u * 50u) << "tid " << tid;
    std::sort(ivs.begin(), ivs.end(), [](const Iv& a, const Iv& b) {
      return a.s != b.s ? a.s < b.s : a.e > b.e;
    });
    std::vector<Iv> stack;
    for (const Iv& iv : ivs) {
      while (!stack.empty() && stack.back().e <= iv.s) stack.pop_back();
      if (!stack.empty()) {
        ASSERT_LE(iv.e, stack.back().e)
            << "tid " << tid << ": span [" << iv.s << "," << iv.e
            << ") straddles [" << stack.back().s << "," << stack.back().e << ")";
      }
      stack.push_back(iv);
    }
  }
}

TEST(ObsTest, ChromeExportIsValidJsonWithThreeEnginesOnDistinctTids) {
  std::string path = temp_path("trace.chrome.json");
  aig::Aig pass = bench::token_ring(6, false);
  {
    obs::TraceConfig cfg;
    cfg.path = path;
    cfg.format = obs::TraceConfig::Format::kChrome;
    obs::TraceSink sink(cfg);
    // Three engines on three real threads — the deterministic counterpart
    // of a jobs-3 portfolio race (no winner cancellation to lose spans to).
    mc::EngineOptions eo;
    eo.time_limit_sec = 30.0;
    std::thread a([&] { mc::check_bmc(pass, 0, eo); });
    std::thread b([&] { mc::check_pdr(pass, 0, eo); });
    std::thread c([&] { mc::check_kinduction(pass, 0, eo); });
    a.join();
    b.join();
    c.join();
  }
  std::string text = slurp(path);
  Json root;
  ASSERT_TRUE(JsonParser(text).parse(root)) << "chrome export is not valid JSON";
  ASSERT_EQ(root.type, Json::Type::kArr);
  std::map<std::string, std::set<int>> span_tids;  // engine -> tids with spans
  for (const Json& e : root.arr) {
    ASSERT_TRUE(e.has("name") && e.has("cat") && e.has("ph") && e.has("pid") &&
                e.has("tid") && e.has("ts"));
    if (e.at("ph").str == "X") {
      ASSERT_TRUE(e.has("dur"));
      span_tids[e.at("cat").str].insert(static_cast<int>(e.at("tid").num));
    }
  }
  span_tids.erase("main");
  span_tids.erase("sampler");
  ASSERT_GE(span_tids.size(), 3u) << "expected spans from >= 3 engines";
  std::set<int> all_tids;
  for (const auto& [engine, tids] : span_tids)
    all_tids.insert(tids.begin(), tids.end());
  EXPECT_GE(all_tids.size(), 3u) << "engines must sit on distinct threads";
}

TEST(ObsTest, StatsJsonRoundTripsEngineStats) {
  aig::Aig fail = bench::counter(4, 12, 7);
  obs::TraceConfig cfg;  // no file: summary-only sink
  cfg.sample_interval_sec = 0;
  obs::TraceSink sink(cfg);
  mc::EngineOptions eo;
  eo.time_limit_sec = 30.0;
  mc::EngineResult r = mc::check_bmc(fail, 0, eo);
  sink.finish();
  ASSERT_EQ(r.verdict, mc::Verdict::kFail);

  std::string body = mc::stats_json(r, &sink, "obs_test", "counter.aag");
  Json j;
  ASSERT_TRUE(JsonParser(body).parse(j)) << body;
  EXPECT_EQ(j.at("verdict").str, "FAIL");
  EXPECT_EQ(j.at("tool").str, "obs_test");
  EXPECT_EQ(j.at("engine").str, r.engine);
  EXPECT_EQ(static_cast<unsigned>(j.at("k_fp").num), r.k_fp);
  const Json& s = j.at("stats");
  EXPECT_EQ(static_cast<std::uint64_t>(s.at("sat_calls").num),
            r.stats.sat_calls);
  EXPECT_EQ(static_cast<std::uint64_t>(s.at("sat_conflicts").num),
            r.stats.sat_conflicts);
  EXPECT_EQ(static_cast<std::uint64_t>(s.at("sat_propagations").num),
            r.stats.sat_propagations);
  EXPECT_EQ(static_cast<std::uint64_t>(s.at("proof_clauses").num),
            r.stats.proof_clauses);
  ASSERT_EQ(s.at("sat_glue_hist").arr.size(), r.stats.sat_glue_hist.size());
  for (std::size_t i = 0; i < r.stats.sat_glue_hist.size(); ++i)
    EXPECT_EQ(static_cast<std::uint64_t>(s.at("sat_glue_hist").arr[i].num),
              r.stats.sat_glue_hist[i]);
  // The BMC run emitted bound spans into the sink; they must be in "trace".
  ASSERT_TRUE(j.has("trace"));
  bool saw_bound = false;
  for (const Json& span : j.at("trace").at("spans").arr)
    if (span.at("engine").str == "BMC" && span.at("name").str == "bound")
      saw_bound = true;
  EXPECT_TRUE(saw_bound);

  // And the same report must also be written through the file path.
  std::string path = temp_path("stats.json");
  ASSERT_TRUE(mc::write_stats_json(path, r, &sink, "obs_test", "counter.aag"));
  Json j2;
  ASSERT_TRUE(JsonParser(slurp(path)).parse(j2));
  EXPECT_EQ(static_cast<std::uint64_t>(
                j2.at("stats").at("sat_conflicts").num),
            r.stats.sat_conflicts);
}

TEST(ObsTest, PortfolioProducesNoTornLinesAndAnExchangeMatrix) {
  std::string path = temp_path("portfolio.jsonl");
  aig::Aig pass = bench::token_ring(8, false);
  obs::TraceSink::Summary sum;
  {
    obs::TraceConfig cfg;
    cfg.path = path;
    cfg.sample_interval_sec = 0.002;  // sampler drains while workers emit
    obs::TraceSink sink(cfg);
    mc::PortfolioOptions po;
    po.jobs = 4;
    po.time_limit_sec = 30.0;
    mc::EngineResult r = mc::check_portfolio(pass, 0, po);
    EXPECT_EQ(r.verdict, mc::Verdict::kPass);
    sink.finish();
    sum = sink.summary();
  }
  bool all_ok = false;
  std::vector<Json> events = parse_jsonl(path, &all_ok);
  EXPECT_TRUE(all_ok) << "cancelled workers must never tear an output line";
  EXPECT_EQ(sum.events, events.size());  // drained == written
  // Worker lifecycle events flow through the main scheduler threads.
  std::uint64_t starts = 0, dones = 0;
  bool saw_publish = false;
  for (const Json& e : events) {
    if (e.at("kind").str == "worker_start") ++starts;
    if (e.at("kind").str == "worker_done") ++dones;
    if (e.at("kind").str == "lemma_publish") saw_publish = true;
  }
  EXPECT_GE(starts, 1u);
  EXPECT_EQ(starts, dones);  // every started worker reported back
  if (saw_publish) {
    // The drainer folds publish/fetch events into the exchange matrix.
    std::uint64_t published = 0;
    for (const auto& [key, cell] : sum.exchange) published += cell.published;
    EXPECT_GE(published, 1u);
  }
}

TEST(ObsTest, SamplerEmitsSamplesAndBufferCapCountsDrops) {
  {
    obs::TraceConfig cfg;  // no file
    cfg.sample_interval_sec = 0.005;
    obs::TraceSink sink(cfg);
    obs::counters().conflicts.fetch_add(1234, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    sink.finish();
    obs::TraceSink::Summary sum = sink.summary();
    std::uint64_t samples = sum.kinds[std::make_pair("sampler", "sample")];
    EXPECT_GE(samples, 1u);
  }
  {
    obs::TraceConfig cfg;
    cfg.sample_interval_sec = 0;  // no drains until finish...
    cfg.max_buffered_events = 16;  // ...so the cap must kick in
    obs::TraceSink sink(cfg);
    for (int i = 0; i < 100; ++i) obs::emit("flood");
    sink.finish();
    obs::TraceSink::Summary sum = sink.summary();
    EXPECT_EQ(sum.events, 16u);
    EXPECT_EQ(sum.dropped, 84u);
  }
}

TEST(ObsTest, SinkReinstallAcrossGenerations) {
  // Tests create sinks back to back; thread buffers must re-register per
  // generation instead of writing into a dead sink's buffers.
  for (int round = 0; round < 3; ++round) {
    obs::TraceConfig cfg;
    cfg.sample_interval_sec = 0;
    obs::TraceSink sink(cfg);
    obs::emit("gen_probe", {{"round", static_cast<unsigned>(round)}});
    sink.finish();
    obs::TraceSink::Summary sum = sink.summary();
    std::uint64_t probes = sum.kinds[std::make_pair("main", "gen_probe")];
    EXPECT_EQ(probes, 1u) << round;
  }
  ASSERT_FALSE(obs::enabled());
}

}  // namespace
}  // namespace itpseq
