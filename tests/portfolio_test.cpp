// portfolio_test.cpp — the threaded portfolio scheduler: sequential vs
// threaded verdict agreement, winner attribution, the join-all cancellation
// guarantee, exchange-on/off verdict crosschecks, and determinism of
// verdict + trace under a fixed seed regardless of --jobs.  Runs under TSan
// via the `concurrency` ctest label (ITPSEQ_SANITIZE=thread).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "bench_circuits/generators.hpp"
#include "bench_circuits/suite.hpp"
#include "mc/certify.hpp"
#include "mc/portfolio.hpp"
#include "mc/sim.hpp"
#include "obs/trace.hpp"
#include "util/fault.hpp"
#include "util/retry.hpp"

namespace itpseq::mc {
namespace {

PortfolioOptions quick(double limit = 10.0) {
  PortfolioOptions po;
  po.time_limit_sec = limit;
  return po;
}

bool traces_equal(const Trace& a, const Trace& b) {
  return a.initial_latches == b.initial_latches && a.inputs == b.inputs;
}

TEST(Portfolio, SequentialAndThreadedAgreeOnSuite) {
  unsigned compared = 0;
  for (const auto& inst : bench::make_academic_suite(16)) {
    PortfolioOptions seq = quick(8.0);
    seq.jobs = 1;
    PortfolioOptions thr = quick(8.0);
    thr.jobs = 4;
    EngineResult rs = check_portfolio(inst.model, 0, seq);
    EngineResult rt = check_portfolio(inst.model, 0, thr);
    if (rs.verdict == Verdict::kUnknown || rt.verdict == Verdict::kUnknown)
      continue;
    EXPECT_EQ(rs.verdict, rt.verdict) << inst.name;
    if (inst.expected == bench::Expected::kPass) {
      EXPECT_EQ(rt.verdict, Verdict::kPass) << inst.name;
    }
    if (inst.expected == bench::Expected::kFail) {
      EXPECT_EQ(rt.verdict, Verdict::kFail) << inst.name;
    }
    if (rt.verdict == Verdict::kFail) {
      EXPECT_TRUE(trace_is_cex(inst.model, rt.cex, 0)) << inst.name;
    }
    ++compared;
    if (compared >= 12) break;  // bound the runtime; coverage, not census
  }
  EXPECT_GE(compared, 6u);
}

TEST(Portfolio, WinnerAttributionNamesTheMember) {
  // Single-member portfolios: attribution is forced.
  aig::Aig fail_g = bench::counter(5, 20, 13);
  aig::Aig pass_g = bench::token_ring(8, /*fail_reach=*/false);

  PortfolioOptions po = quick();
  po.members = {PortfolioMember::kBmc};
  EngineResult r = check_portfolio(fail_g, 0, po);
  ASSERT_EQ(r.verdict, Verdict::kFail);
  EXPECT_EQ(r.engine, "portfolio/BMC");

  po.members = {PortfolioMember::kPdr};
  r = check_portfolio(pass_g, 0, po);
  ASSERT_EQ(r.verdict, Verdict::kPass);
  EXPECT_EQ(r.engine, "portfolio/PDR");

  // Mixed race on a PASS instance: the winner must be a proof-capable
  // member — the falsification-only members cannot produce PASS.
  po = quick();
  r = check_portfolio(pass_g, 0, po);
  ASSERT_EQ(r.verdict, Verdict::kPass);
  EXPECT_EQ(r.engine.rfind("portfolio/", 0), 0u) << r.engine;
  EXPECT_EQ(r.engine.find("RANDOM-SIM"), std::string::npos) << r.engine;
  EXPECT_EQ(r.engine.find("/BMC"), std::string::npos) << r.engine;
}

// Hard for every member in test time: FAIL only at depth 2^28 - 1, so no
// engine can decide it and all grind until stopped.
aig::Aig hard_instance() {
  return bench::counter(28, 1ull << 28, (1ull << 28) - 1);
}

TEST(Portfolio, CancellationLeavesNoThreadRunning) {
  // The probe counts live member engines, so 0 after return is the
  // join-all guarantee.
  aig::Aig g = hard_instance();
  std::atomic<int> probe{0};
  PortfolioOptions po = quick(1.5);
  po.jobs = 4;
  po.active_probe = &probe;
  auto t0 = std::chrono::steady_clock::now();
  EngineResult r = check_portfolio(g, 0, po);
  double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(probe.load(), 0) << "member engine still running after return";
  EXPECT_LT(secs, 10.0) << "members did not wind down near the budget";
  (void)r;
}

TEST(Portfolio, ExternalCancelTearsDownAllMembers) {
  aig::Aig g = hard_instance();
  std::atomic<bool> stop{false};
  std::atomic<int> probe{0};
  PortfolioOptions po = quick(60.0);  // would run a minute uncancelled
  po.jobs = 4;
  po.active_probe = &probe;
  po.engine_defaults.cancel = &stop;
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    stop.store(true);
  });
  auto t0 = std::chrono::steady_clock::now();
  EngineResult r = check_portfolio(g, 0, po);
  double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  killer.join();
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_EQ(probe.load(), 0);
  EXPECT_LT(secs, 10.0) << "external cancellation was not honored promptly";
}

TEST(Portfolio, ExchangeNeverChangesTheVerdict) {
  unsigned compared = 0;
  for (const auto& inst : bench::make_academic_suite(14)) {
    PortfolioOptions with = quick(8.0);
    PortfolioOptions without = quick(8.0);
    without.exchange = false;
    EngineResult a = check_portfolio(inst.model, 0, with);
    EngineResult b = check_portfolio(inst.model, 0, without);
    if (a.verdict == Verdict::kUnknown || b.verdict == Verdict::kUnknown)
      continue;
    EXPECT_EQ(a.verdict, b.verdict) << inst.name;
    if (a.verdict == Verdict::kFail) {
      EXPECT_TRUE(trace_is_cex(inst.model, a.cex, 0)) << inst.name;
      EXPECT_TRUE(trace_is_cex(inst.model, b.cex, 0)) << inst.name;
    }
    ++compared;
    if (compared >= 10) break;
  }
  EXPECT_GE(compared, 5u);
}

TEST(Portfolio, ExchangeDeliversCertifiablePass) {
  // The exchange path must not poison certificates: a PASS out of the
  // racing+sharing portfolio still has to survive the independent checker.
  aig::Aig g = bench::token_ring(10, /*fail_reach=*/false);
  PortfolioOptions po = quick(20.0);
  po.members = {PortfolioMember::kSItpSeq, PortfolioMember::kPdr,
                PortfolioMember::kItp};
  EngineResult r = check_portfolio(g, 0, po);
  ASSERT_EQ(r.verdict, Verdict::kPass);
  ASSERT_TRUE(r.certificate.has_value());
  CertifyResult c = check_certificate(g, 0, *r.certificate);
  EXPECT_TRUE(c.ok) << c.error;
}

// --- determinism regression (fixed seed, any --jobs) -----------------------

TEST(Portfolio, VerdictAndTraceIndependentOfJobs) {
  // Closed (input-free) circuits with defined resets have a *forced* trace,
  // so even the racing scheduler must report the identical counterexample:
  // depth is the shallowest-failure depth every member agrees on, inputs
  // are empty, and the initial state is the reset state.
  struct Cfg {
    const char* name;
    aig::Aig model;
    unsigned depth;
  };
  Cfg cfgs[] = {
      {"counter", bench::counter(5, 20, 13), 13},
      {"token_ring", bench::token_ring(9, /*fail_reach=*/true), 8},
  };
  for (auto& cfg : cfgs) {
    EngineResult first;
    bool have_first = false;
    for (unsigned jobs : {1u, 2u, 4u}) {
      PortfolioOptions po = quick(20.0);
      po.jobs = jobs;
      po.sim_seed = 99;
      EngineResult r = check_portfolio(cfg.model, 0, po);
      ASSERT_EQ(r.verdict, Verdict::kFail) << cfg.name << " jobs=" << jobs;
      EXPECT_EQ(r.cex.depth(), cfg.depth) << cfg.name << " jobs=" << jobs;
      EXPECT_TRUE(trace_is_cex(cfg.model, r.cex, 0))
          << cfg.name << " jobs=" << jobs;
      if (!have_first) {
        first = r;
        have_first = true;
      } else {
        EXPECT_TRUE(traces_equal(first.cex, r.cex))
            << cfg.name << ": trace depends on jobs=" << jobs;
      }
    }
  }
}

TEST(Portfolio, RandomSimDeterministicUnderFixedSeed) {
  // Open circuit: the sweep is a pure function of the seed — two runs give
  // the identical trace, and the wall-clock/rounds knobs only truncate.
  aig::Aig g = bench::sticky_detector(3, /*resettable=*/false);
  EngineResult a = check_random_sim(g, 0, /*depth=*/32, /*rounds=*/256,
                                    /*seed=*/1234);
  EngineResult b = check_random_sim(g, 0, 32, 256, 1234);
  ASSERT_EQ(a.verdict, Verdict::kFail);
  ASSERT_EQ(b.verdict, Verdict::kFail);
  EXPECT_EQ(a.k_fp, b.k_fp);
  EXPECT_TRUE(traces_equal(a.cex, b.cex));
  EXPECT_TRUE(trace_is_cex(g, a.cex, 0));

  // A different seed is allowed to find a different witness, but a larger
  // round budget with the same seed must reproduce the same (first) one.
  EngineResult c = check_random_sim(g, 0, 32, 4096, 1234);
  ASSERT_EQ(c.verdict, Verdict::kFail);
  EXPECT_TRUE(traces_equal(a.cex, c.cex));
}

// --- self-healing: retry, backoff, degradation -----------------------------

TEST(Portfolio, BackoffDelayIsDeterministicAndBounded) {
  util::RestartPolicy p;  // base 0.25, factor 2, jitter 0.25
  for (unsigned attempt = 0; attempt < 4; ++attempt) {
    double nominal = p.backoff_base_sec;
    for (unsigned i = 0; i < attempt; ++i) nominal *= p.backoff_factor;
    double d = util::backoff_delay_sec(p, attempt, /*seed=*/42);
    // Reproducible: the same (policy, attempt, seed) always schedules the
    // same relaunch — no wall clock, no rand() (L5).
    EXPECT_EQ(d, util::backoff_delay_sec(p, attempt, 42)) << attempt;
    EXPECT_GE(d, nominal * (1.0 - p.jitter_frac)) << attempt;
    EXPECT_LE(d, nominal * (1.0 + p.jitter_frac)) << attempt;
  }
  // Jitter decorrelates members that died together: distinct seeds must
  // not produce an identical relaunch schedule.
  EXPECT_NE(util::backoff_delay_sec(p, 1, 7), util::backoff_delay_sec(p, 1, 8));
  // jitter 0 collapses to the exact exponential ladder.
  p.jitter_frac = 0.0;
  EXPECT_DOUBLE_EQ(util::backoff_delay_sec(p, 0, 7), 0.25);
  EXPECT_DOUBLE_EQ(util::backoff_delay_sec(p, 2, 7), 1.0);
}

TEST(Portfolio, DegradationLadderShedsMemoryHungryMachinery) {
  EngineOptions eo;
  eo.sat_inprocess = true;
  degrade_for_retry(eo, ErrorKind::kOutOfMemory);
  EXPECT_FALSE(eo.sat_inprocess);
  EXPECT_GT(eo.sat_reduce_base, 0.0);
  EXPECT_LE(eo.sat_reduce_base, 500.0);
  EXPECT_NE(eo.compact_threshold, 0u);
  EXPECT_LE(eo.compact_threshold, 50000u);
  // A tighter caller-chosen cap is respected, never loosened.
  eo.sat_reduce_base = 100.0;
  eo.compact_threshold = 1000;
  degrade_for_retry(eo, ErrorKind::kOutOfMemory);
  EXPECT_DOUBLE_EQ(eo.sat_reduce_base, 100.0);
  EXPECT_EQ(eo.compact_threshold, 1000u);
  // Non-memory kinds do not touch the solver configuration (kSolverLimit
  // is handled by the scheduler shortening the leash instead).
  EngineOptions fresh;
  bool inproc = fresh.sat_inprocess;
  degrade_for_retry(fresh, ErrorKind::kInternal);
  degrade_for_retry(fresh, ErrorKind::kSolverLimit);
  EXPECT_EQ(fresh.sat_inprocess, inproc);
  EXPECT_DOUBLE_EQ(fresh.sat_reduce_base, EngineOptions().sat_reduce_base);
}

TEST(Portfolio, FaultedMemberIsRelaunchedAndRecovers) {
  // The first interpolant extraction anywhere in the process throws; the
  // window then closes.  The ITP member's first attempt dies, the
  // self-healing scheduler relaunches it after backoff, and the relaunch
  // — with the fault gone — must still prove the instance.  RANDOM-SIM
  // cannot prove PASS, so a PASS verdict *is* the recovery.
  util::fault::clear();
  util::fault::configure("itp.extract:1:1:error");
  obs::TraceConfig cfg;
  cfg.sample_interval_sec = 0;  // drain at finish only
  obs::TraceSink sink(cfg);
  PortfolioOptions po = quick(30.0);
  po.jobs = 2;
  po.restart.backoff_base_sec = 0.02;  // keep the test fast
  po.members = {PortfolioMember::kItp, PortfolioMember::kRandomSim};
  EngineResult r = check_portfolio(bench::token_ring(6, false), 0, po);
  sink.finish();
  util::fault::clear();
  ASSERT_EQ(r.verdict, Verdict::kPass);
  EXPECT_NE(r.engine.find("ITP"), std::string::npos) << r.engine;
  const MemberOutcome* itp = nullptr;
  for (const MemberOutcome& m : r.members)
    if (m.member == "ITP") itp = &m;
  ASSERT_NE(itp, nullptr);
  EXPECT_GE(itp->restarts, 1u);
  EXPECT_EQ(itp->verdict, Verdict::kPass);
  // The error that caused the relaunch stays on the record even though the
  // member finished healthy.
  EXPECT_EQ(itp->last_error.kind, ErrorKind::kInternal);
  EXPECT_EQ(itp->error.kind, ErrorKind::kNone);
  // The relaunch is observable: member_restart lands in the exchange
  // matrix as a (member, "restart") row.
  obs::TraceSink::Summary sum = sink.summary();
  auto it = sum.exchange.find({"ITP", "restart"});
  ASSERT_NE(it, sum.exchange.end()) << "member_restart row missing";
  EXPECT_GE(it->second.published, 1u);
}

TEST(Portfolio, ExhaustedRetriesReportTheLastError) {
  // Every extraction throws: the ITP members burn through the full retry
  // budget and the portfolio — with no survivor — reports the taxonomy.
  util::fault::clear();
  util::fault::configure("itp.extract:1:1000000:error");
  PortfolioOptions po = quick(30.0);
  po.jobs = 2;
  po.restart.backoff_base_sec = 0.02;
  po.members = {PortfolioMember::kItp, PortfolioMember::kItp};
  EngineResult r = check_portfolio(bench::token_ring(6, false), 0, po);
  util::fault::clear();
  ASSERT_EQ(r.verdict, Verdict::kError);
  EXPECT_EQ(r.error.kind, ErrorKind::kInternal);
  ASSERT_EQ(r.members.size(), 2u);
  for (const MemberOutcome& m : r.members) {
    EXPECT_EQ(m.verdict, Verdict::kError) << m.member;
    EXPECT_EQ(m.restarts, po.restart.max_retries) << m.member;
    EXPECT_EQ(m.last_error.kind, ErrorKind::kInternal) << m.member;
  }
}

TEST(Portfolio, ZeroRetriesDisablesSelfHealing) {
  util::fault::clear();
  util::fault::configure("itp.extract:1:1000000:error");
  PortfolioOptions po = quick(30.0);
  po.jobs = 2;
  po.restart.max_retries = 0;
  po.members = {PortfolioMember::kItp, PortfolioMember::kItp};
  EngineResult r = check_portfolio(bench::token_ring(6, false), 0, po);
  util::fault::clear();
  ASSERT_EQ(r.verdict, Verdict::kError);
  for (const MemberOutcome& m : r.members)
    EXPECT_EQ(m.restarts, 0u) << m.member;
}

TEST(Portfolio, SequentialSchedulerStillRespectsBudget) {
  // Regression for the legacy mode: jobs=1 must terminate near the budget.
  aig::Aig g = hard_instance();
  PortfolioOptions po = quick(1.0);
  po.jobs = 1;
  auto t0 = std::chrono::steady_clock::now();
  EngineResult r = check_portfolio(g, 0, po);
  double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_LT(secs, 10.0);
}

}  // namespace
}  // namespace itpseq::mc
