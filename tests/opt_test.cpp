// opt_test.cpp — AIG optimization passes: bit-parallel simulation,
// balancing, two-level rewriting and SAT sweeping (fraig).
//
// The common invariant across all passes is semantic preservation, checked
// two independent ways: 64-way random co-simulation (evaluate64 on original
// vs optimized) and exact SAT equivalence (opt::equivalent) on small cones.
#include <gtest/gtest.h>

#include <random>

#include "aig/aig.hpp"
#include "bench_circuits/generators.hpp"
#include "mc/engine.hpp"
#include "opt/balance.hpp"
#include "opt/fraig.hpp"
#include "opt/rewrite.hpp"
#include "opt/simulate.hpp"

namespace itpseq {
namespace {

/// Random combinational cone over `leaves` inputs; returns (graph, root).
/// Redundancy is injected deliberately (duplicate subtrees, re-derived
/// functions) so the optimization passes have something to find.
std::pair<aig::Aig, aig::Lit> random_cone(std::uint32_t seed,
                                          unsigned leaves = 6,
                                          unsigned gates = 40) {
  std::mt19937 rng(seed);
  aig::Aig g;
  std::vector<aig::Lit> pool;
  for (unsigned i = 0; i < leaves; ++i) pool.push_back(g.add_input());
  for (unsigned n = 0; n < gates; ++n) {
    aig::Lit a = pool[rng() % pool.size()] ^ (rng() % 2);
    aig::Lit b = pool[rng() % pool.size()] ^ (rng() % 2);
    switch (rng() % 4) {
      case 0: pool.push_back(g.make_and(a, b)); break;
      case 1: pool.push_back(g.make_or(a, b)); break;
      case 2: pool.push_back(g.make_xor(a, b)); break;
      default: {
        // Re-derive an equivalent function with different structure:
        // a XOR b as (a|b) & !(a&b).
        aig::Lit alt = g.make_and(g.make_or(a, b),
                                  aig::lit_not(g.make_and(a, b)));
        pool.push_back(alt);
        break;
      }
    }
  }
  aig::Lit root = pool.back();
  for (int i = 0; i < 3; ++i)
    root = g.make_or(root, pool[rng() % pool.size()] ^ (rng() % 2));
  return {std::move(g), root};
}

/// 64-way co-simulation equivalence between a root in g and a root in h,
/// where h's input i corresponds to g's input i.
void expect_cosim_equal(const aig::Aig& g, aig::Lit rg, const aig::Aig& h,
                        aig::Lit rh, std::uint64_t seed,
                        const char* what) {
  std::mt19937_64 rng(seed);
  for (int round = 0; round < 16; ++round) {
    std::vector<std::uint64_t> vg(g.num_vars(), 0), vh(h.num_vars(), 0);
    for (std::size_t i = 0; i < g.num_inputs(); ++i) {
      std::uint64_t w = rng();
      vg[aig::lit_var(g.input(i))] = w;
      vh[aig::lit_var(h.input(i))] = w;
    }
    ASSERT_EQ(g.evaluate64(rg, vg), h.evaluate64(rh, vh))
        << what << " seed " << seed << " round " << round;
  }
}

// --- simulation --------------------------------------------------------------

TEST(Simulate, SignaturesMatchEvaluate64) {
  auto [g, root] = random_cone(42);
  opt::BitParallelSim sim(g, {root}, 2, 7);
  // Reconstruct the leaf patterns the simulator drew and cross-check the
  // root signature against the reference evaluator.
  for (unsigned w = 0; w < sim.words(); ++w) {
    std::vector<std::uint64_t> vals(g.num_vars(), 0);
    for (std::size_t i = 0; i < g.num_inputs(); ++i) {
      aig::Var v = aig::lit_var(g.input(i));
      if (sim.in_cone(v)) vals[v] = sim.word(v, w);
    }
    EXPECT_EQ(g.evaluate64(root, vals), sim.lit_word(root, w)) << "word " << w;
  }
}

TEST(Simulate, ComplementInvariantHash) {
  aig::Aig g;
  aig::Lit a = g.add_input(), b = g.add_input();
  aig::Lit x = g.make_and(a, b);
  aig::Lit y = g.make_or(aig::lit_not(a), aig::lit_not(b));  // NOT x
  opt::BitParallelSim sim(g, {x, y}, 4, 11);
  EXPECT_EQ(sim.class_hash(aig::lit_var(x)), sim.class_hash(aig::lit_var(y)));
  EXPECT_TRUE(sim.same_signature(x, aig::lit_not(y)));
  EXPECT_FALSE(sim.same_signature(x, y));
}

TEST(Simulate, AddPatternRefinesSignatures) {
  aig::Aig g;
  aig::Lit a = g.add_input(), b = g.add_input();
  aig::Lit x = g.make_and(a, b);
  opt::BitParallelSim sim(g, {x}, 1, 3);
  // Force the pattern a=1, b=1: the new bit of x must be 1.
  sim.add_pattern([&](aig::Var) { return true; });
  EXPECT_TRUE(sim.same_signature(x, x));
  // After 64 + 1 more patterns the dynamic word must have been flushed
  // into the static signature.
  for (int i = 0; i < 65; ++i) sim.add_pattern([&](aig::Var) { return false; });
  EXPECT_GE(sim.words(), 2u);
}

class SimRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SimRandomTest, EverySignatureMatchesReference) {
  auto [g, root] = random_cone(1000 + GetParam());
  opt::BitParallelSim sim(g, {root}, 3, GetParam());
  std::vector<std::uint64_t> vals(g.num_vars(), 0);
  for (unsigned w = 0; w < sim.words(); ++w) {
    for (std::size_t i = 0; i < g.num_inputs(); ++i) {
      aig::Var v = aig::lit_var(g.input(i));
      if (sim.in_cone(v)) vals[v] = sim.word(v, w);
    }
    for (aig::Var v : g.cone({root}))
      if (g.is_and(v)) {
        EXPECT_EQ(g.evaluate64(aig::var_lit(v), vals), sim.word(v, w));
      }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, SimRandomTest, ::testing::Range(0, 20));

// --- balancing ---------------------------------------------------------------

TEST(Balance, ChainBecomesLogDepth) {
  aig::Aig g;
  std::vector<aig::Lit> ins;
  for (int i = 0; i < 32; ++i) ins.push_back(g.add_input());
  aig::Lit chain = ins[0];
  for (int i = 1; i < 32; ++i) chain = g.make_and(chain, ins[i]);
  EXPECT_EQ(opt::cone_depth(g, chain), 31u);
  aig::CompactResult r = opt::balance(g, {chain});
  EXPECT_EQ(opt::cone_depth(r.graph, r.roots[0]), 5u);  // ceil(log2 32)
  expect_cosim_equal(g, chain, r.graph, r.roots[0], 1, "balance chain");
}

TEST(Balance, SharedNodesStayShared) {
  aig::Aig g;
  aig::Lit a = g.add_input(), b = g.add_input(), c = g.add_input();
  aig::Lit shared = g.make_and(a, b);
  aig::Lit r1 = g.make_and(shared, c);
  aig::Lit r2 = g.make_and(shared, aig::lit_not(c));
  aig::CompactResult r = opt::balance(g, {r1, r2});
  // The shared AND must not be duplicated: 3 ANDs total, not 4.
  EXPECT_EQ(r.graph.num_ands(), 3u);
  expect_cosim_equal(g, r1, r.graph, r.roots[0], 2, "balance r1");
  expect_cosim_equal(g, r2, r.graph, r.roots[1], 3, "balance r2");
}

TEST(Balance, ComplementedEdgesAreBoundaries) {
  aig::Aig g;
  aig::Lit a = g.add_input(), b = g.add_input(), c = g.add_input();
  aig::Lit x = g.make_and(a, b);
  aig::Lit y = g.make_and(aig::lit_not(x), c);  // NOT edge blocks inlining
  aig::CompactResult r = opt::balance(g, {y});
  expect_cosim_equal(g, y, r.graph, r.roots[0], 4, "balance neg edge");
  EXPECT_EQ(r.graph.num_ands(), 2u);
}

class BalanceRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(BalanceRandomTest, PreservesSemanticsNeverDeepens) {
  auto [g, root] = random_cone(2000 + GetParam());
  aig::CompactResult r = opt::balance(g, {root});
  expect_cosim_equal(g, root, r.graph, r.roots[0], GetParam(), "balance");
  EXPECT_LE(opt::cone_depth(r.graph, r.roots[0]), opt::cone_depth(g, root));
}

INSTANTIATE_TEST_SUITE_P(Random, BalanceRandomTest, ::testing::Range(0, 40));

// --- rewriting ---------------------------------------------------------------

TEST(Rewrite, AbsorptionRule) {
  aig::Aig g;
  aig::Lit a = g.add_input(), b = g.add_input();
  opt::RewriteBuilder rb(g);
  aig::Lit ab = rb.make_and(a, b);
  EXPECT_EQ(rb.make_and(a, ab), ab);       // x & (x&y) = x&y
  EXPECT_EQ(rb.make_and(ab, b), ab);
  EXPECT_EQ(rb.make_and(aig::lit_not(a), ab), aig::kFalse);
}

TEST(Rewrite, SubstitutionRule) {
  aig::Aig g;
  aig::Lit a = g.add_input(), b = g.add_input();
  opt::RewriteBuilder rb(g);
  aig::Lit ab = rb.make_and(a, b);
  // x & !(x&y) = x & !y
  EXPECT_EQ(rb.make_and(a, aig::lit_not(ab)),
            rb.make_and(a, aig::lit_not(b)));
  // x & !(x'&y) = x
  aig::Lit nab = rb.make_and(aig::lit_not(a), b);
  EXPECT_EQ(rb.make_and(a, aig::lit_not(nab)), a);
}

TEST(Rewrite, ResolutionRule) {
  aig::Aig g;
  aig::Lit a = g.add_input(), b = g.add_input();
  opt::RewriteBuilder rb(g);
  aig::Lit x = rb.make_and(a, b);
  aig::Lit y = rb.make_and(a, aig::lit_not(b));
  // !(a&b) & !(a&!b) = !a
  EXPECT_EQ(rb.make_and(aig::lit_not(x), aig::lit_not(y)), aig::lit_not(a));
}

TEST(Rewrite, SharingAndContradiction) {
  aig::Aig g;
  aig::Lit a = g.add_input(), b = g.add_input(), c = g.add_input();
  opt::RewriteBuilder rb(g);
  aig::Lit ab = rb.make_and(a, b);
  aig::Lit ac = rb.make_and(a, c);
  aig::Lit nac = rb.make_and(aig::lit_not(a), c);
  EXPECT_EQ(rb.make_and(ab, nac), aig::kFalse);  // contradiction on a
  // Sharing: (a&b) & (a&c) has the function a&b&c.
  aig::Lit shared = rb.make_and(ab, ac);
  ASSERT_TRUE(opt::equivalent(g, shared, g.make_and(ab, c)).value());
}

TEST(Rewrite, PosNegContainment) {
  aig::Aig g;
  aig::Lit a = g.add_input(), b = g.add_input();
  opt::RewriteBuilder rb(g);
  aig::Lit ab = rb.make_and(a, b);
  // (a&b) & !(a&b-as-pair) where the negative side's fanins are exactly
  // {a, b}: contained, so FALSE.
  EXPECT_EQ(rb.make_and(ab, aig::lit_not(ab)), aig::kFalse);
  // Subsumption: (a&b) & !(a'&c) = a&b.
  aig::Lit c = g.add_input();
  aig::Lit nac = rb.make_and(aig::lit_not(a), c);
  EXPECT_EQ(rb.make_and(ab, aig::lit_not(nac)), ab);
}

class RewriteRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(RewriteRandomTest, PreservesSemanticsNeverGrows) {
  auto [g, root] = random_cone(3000 + GetParam());
  aig::CompactResult r = opt::rewrite(g, {root});
  expect_cosim_equal(g, root, r.graph, r.roots[0], GetParam(), "rewrite");
  EXPECT_LE(r.graph.cone_size(r.roots[0]), g.cone_size(root));
}

INSTANTIATE_TEST_SUITE_P(Random, RewriteRandomTest, ::testing::Range(0, 60));

// --- fraig -------------------------------------------------------------------

TEST(Fraig, MergesStructurallyDifferentEquivalents) {
  aig::Aig g;
  aig::Lit a = g.add_input(), b = g.add_input(), c = g.add_input();
  // Same function, two associations.
  aig::Lit x = g.make_and(g.make_and(a, b), c);
  aig::Lit y = g.make_and(a, g.make_and(b, c));
  ASSERT_NE(x, y);  // strashing alone cannot merge these
  opt::FraigResult r = opt::fraig(g, {x, y});
  EXPECT_EQ(r.roots[0], r.roots[1]);
  EXPECT_GE(r.stats.merges, 1u);
}

TEST(Fraig, MergesComplementPairs) {
  aig::Aig g;
  aig::Lit a = g.add_input(), b = g.add_input();
  aig::Lit x = g.make_xor(a, b);
  // XNOR built differently: (a&b) | (!a&!b).
  aig::Lit y = g.make_or(g.make_and(a, b),
                         g.make_and(aig::lit_not(a), aig::lit_not(b)));
  opt::FraigResult r = opt::fraig(g, {x, y});
  EXPECT_EQ(r.roots[0], aig::lit_not(r.roots[1]));
}

TEST(Fraig, FoldsHiddenConstants) {
  aig::Aig g;
  aig::Lit a = g.add_input(), b = g.add_input();
  // (a|b) & (!a|b) & (a|!b) & (!a|!b) == FALSE, but not structurally.
  aig::Lit f = g.make_and(
      g.make_and(g.make_or(a, b), g.make_or(aig::lit_not(a), b)),
      g.make_and(g.make_or(a, aig::lit_not(b)),
                 g.make_or(aig::lit_not(a), aig::lit_not(b))));
  ASSERT_NE(f, aig::kFalse);
  opt::FraigResult r = opt::fraig(g, {f});
  EXPECT_EQ(r.roots[0], aig::kFalse);
}

TEST(Fraig, CounterexamplesRefineClasses) {
  // Functions that agree on many patterns but differ: force refinements.
  aig::Aig g;
  std::vector<aig::Lit> ins;
  for (int i = 0; i < 8; ++i) ins.push_back(g.add_input());
  aig::Lit all = g.make_and_many(ins);             // AND of all
  std::vector<aig::Lit> most(ins.begin(), ins.end() - 1);
  aig::Lit most_and = g.make_and_many(most);       // AND of first 7
  // These differ only when first 7 inputs are all 1: sim likely misses it.
  opt::FraigResult r = opt::fraig(g, {all, most_and});
  EXPECT_NE(r.roots[0], r.roots[1]);
  ASSERT_TRUE(opt::equivalent(r.graph, r.roots[0], r.roots[1]).has_value());
  EXPECT_FALSE(opt::equivalent(r.graph, r.roots[0], r.roots[1]).value());
}

class FraigRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(FraigRandomTest, PreservesSemanticsNeverGrows) {
  auto [g, root] = random_cone(4000 + GetParam());
  opt::FraigResult r = opt::fraig(g, {root});
  expect_cosim_equal(g, root, r.graph, r.roots[0], GetParam(), "fraig");
  EXPECT_LE(r.graph.cone_size(r.roots[0]), g.cone_size(root));
  // Exact check on top of co-simulation: import both into one graph.
  aig::Aig joint;
  std::vector<aig::Lit> leaves;
  for (std::size_t i = 0; i < g.num_inputs(); ++i)
    leaves.push_back(joint.add_input());
  std::vector<aig::Lit> m1(g.num_vars(), aig::kNullLit);
  std::vector<aig::Lit> m2(r.graph.num_vars(), aig::kNullLit);
  for (std::size_t i = 0; i < g.num_inputs(); ++i) {
    m1[aig::lit_var(g.input(i))] = leaves[i];
    m2[aig::lit_var(r.graph.input(i))] = leaves[i];
  }
  aig::Lit j1 = joint.import_cone(g, root, m1);
  aig::Lit j2 = joint.import_cone(r.graph, r.roots[0], m2);
  auto eq = opt::equivalent(joint, j1, j2);
  ASSERT_TRUE(eq.has_value());
  EXPECT_TRUE(*eq);
}

INSTANTIATE_TEST_SUITE_P(Random, FraigRandomTest, ::testing::Range(0, 40));

TEST(Fraig, IdempotentSecondPassFindsNothing) {
  auto [g, root] = random_cone(77, 6, 60);
  opt::FraigResult r1 = opt::fraig(g, {root});
  opt::FraigResult r2 = opt::fraig(r1.graph, {r1.roots[0]});
  EXPECT_EQ(r2.stats.merges, 0u)
      << "second sweep should find no new equivalences";
  EXPECT_EQ(r2.graph.cone_size(r2.roots[0]), r1.graph.cone_size(r1.roots[0]));
}

TEST(Fraig, EquivalentHelper) {
  aig::Aig g;
  aig::Lit a = g.add_input(), b = g.add_input();
  EXPECT_TRUE(opt::equivalent(g, a, a).value());
  EXPECT_FALSE(opt::equivalent(g, a, aig::lit_not(a)).value());
  EXPECT_FALSE(opt::equivalent(g, a, b).value());
  aig::Lit deMorgan =
      aig::lit_not(g.make_and(aig::lit_not(a), aig::lit_not(b)));
  EXPECT_TRUE(opt::equivalent(g, deMorgan, g.make_or(a, b)).value());
  EXPECT_TRUE(opt::equivalent(g, aig::kTrue, aig::kTrue).value());
  EXPECT_FALSE(opt::equivalent(g, aig::kTrue, aig::kFalse).value());
}

// --- engine integration ------------------------------------------------------

TEST(FraigEngine, InterpolantSweepingPreservesVerdicts) {
  struct Case {
    aig::Aig model;
    mc::Verdict expected;
  };
  Case cases[] = {
      {bench::counter(4, 12, 14), mc::Verdict::kPass},
      {bench::counter(4, 12, 7), mc::Verdict::kFail},
      {bench::token_ring(6, false), mc::Verdict::kPass},
      {bench::queue(5, true), mc::Verdict::kPass},
      {bench::feistel_mixer(6, 6, 3), mc::Verdict::kPass},
  };
  for (const Case& c : cases) {
    mc::EngineOptions opts;
    opts.time_limit_sec = 30.0;
    opts.fraig_interpolants = true;
    mc::EngineResult r = mc::check_itpseq(c.model, 0, opts);
    EXPECT_EQ(r.verdict, c.expected);
    mc::EngineResult rs = mc::check_sitpseq(c.model, 0, opts);
    EXPECT_EQ(rs.verdict, c.expected);
  }
}

TEST(FraigEngine, SweepingShrinksInterpolants) {
  // On a design with redundant interpolants the swept run must report
  // max_itp_nodes no larger than the plain run (same extraction order).
  aig::Aig g = bench::feistel_mixer(8, 8, 5);
  mc::EngineOptions plain;
  plain.time_limit_sec = 30.0;
  mc::EngineOptions swept = plain;
  swept.fraig_interpolants = true;
  mc::EngineResult rp = mc::check_itpseq(g, 0, plain);
  mc::EngineResult rs = mc::check_itpseq(g, 0, swept);
  ASSERT_EQ(rp.verdict, mc::Verdict::kPass);
  ASSERT_EQ(rs.verdict, mc::Verdict::kPass);
  EXPECT_LE(rs.stats.max_itp_nodes, rp.stats.max_itp_nodes);
}

}  // namespace
}  // namespace itpseq
