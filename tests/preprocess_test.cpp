// preprocess_test.cpp — SatELite-style preprocessing: equisatisfiability,
// model extension, and the individual simplification rules.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "sat/preprocess.hpp"
#include "sat/solver.hpp"

namespace itpseq::sat {
namespace {

Lit pos(Var v) { return mk_lit(v, false); }
Lit negl(Var v) { return mk_lit(v, true); }

bool brute_force_sat(unsigned nvars, const std::vector<std::vector<Lit>>& cls) {
  for (std::uint64_t m = 0; m < (1ull << nvars); ++m) {
    bool all = true;
    for (const auto& c : cls) {
      bool sat = false;
      for (Lit l : c)
        if (((m >> var(l)) & 1) != sign(l)) {
          sat = true;
          break;
        }
      if (!sat) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

TEST(Preprocess, SubsumptionDropsSuperset) {
  Preprocessor p(3);
  p.add_clause({pos(0), pos(1)});
  p.add_clause({pos(0), pos(1), pos(2)});
  p.run();
  EXPECT_EQ(p.stats().subsumed, 1u);
}

TEST(Preprocess, SelfSubsumptionStrengthens) {
  // (a | b) and (a | ~b | c): the second strengthens to (a | c).
  Preprocessor p(3);
  p.freeze(0);
  p.freeze(1);
  p.freeze(2);
  p.add_clause({pos(0), pos(1)});
  p.add_clause({pos(0), negl(1), pos(2)});
  p.run();
  EXPECT_GE(p.stats().strengthened, 1u);
  bool found = false;
  for (const auto& c : p.clauses())
    if (c == std::vector<Lit>({pos(0), pos(2)})) found = true;
  EXPECT_TRUE(found);
}

TEST(Preprocess, VariableEliminationRemovesVar) {
  // v appears in (v | a) and (~v | b): eliminate to (a | b).
  Preprocessor p(3);
  p.freeze(1);
  p.freeze(2);
  p.add_clause({pos(0), pos(1)});
  p.add_clause({negl(0), pos(2)});
  p.run();
  EXPECT_EQ(p.stats().vars_eliminated, 1u);
  auto cls = p.clauses();
  ASSERT_EQ(cls.size(), 1u);
  EXPECT_EQ(cls[0], std::vector<Lit>({pos(1), pos(2)}));
}

TEST(Preprocess, DetectsTrivialUnsat) {
  Preprocessor p(1);
  p.add_clause({pos(0)});
  p.add_clause({negl(0)});
  p.run();
  EXPECT_TRUE(p.unsat());
}

TEST(Preprocess, FrozenVarsUntouched) {
  Preprocessor p(2);
  p.freeze(0);
  p.add_clause({pos(0), pos(1)});
  p.add_clause({negl(0), pos(1)});
  p.run(/*grow=*/10);
  // Var 0 frozen: must still appear (only var 1 may be eliminated, but it
  // has a single polarity so elimination yields no resolvents and empties
  // the database — also fine).  Check var 0 was not recorded eliminated by
  // asking for a model extension round-trip instead:
  for (const auto& c : p.clauses())
    for (Lit l : c) EXPECT_TRUE(var(l) == 0 || var(l) == 1);
}

class PreprocessRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(PreprocessRandomTest, EquisatisfiableAndModelsExtend) {
  std::mt19937 rng(900 + GetParam());
  const unsigned nvars = 8 + rng() % 6;
  const unsigned nclauses = static_cast<unsigned>(nvars * (2.0 + (rng() % 30) / 10.0));
  std::vector<std::vector<Lit>> cls;
  Preprocessor p(nvars);
  for (unsigned c = 0; c < nclauses; ++c) {
    unsigned len = 1 + rng() % 4;
    std::vector<Lit> cl;
    for (unsigned k = 0; k < len; ++k) cl.push_back(mk_lit(rng() % nvars, rng() % 2));
    cls.push_back(cl);
    p.add_clause(cl);
  }
  bool expected = brute_force_sat(nvars, cls);
  p.run(/*grow=*/2);
  if (p.unsat()) {
    EXPECT_FALSE(expected);
    return;
  }
  Solver s;
  for (unsigned i = 0; i < nvars; ++i) s.new_var();
  for (auto& c : p.clauses()) s.add_clause(c);
  Status st = s.solve();
  ASSERT_NE(st, Status::kUnknown);
  EXPECT_EQ(st == Status::kSat, expected);
  if (st == Status::kSat) {
    // Extend the model and check it satisfies the ORIGINAL clauses.
    std::vector<LBool> model = s.model();
    p.extend_model(model);
    for (const auto& c : cls) {
      bool sat = false;
      for (Lit l : c)
        if (lbool_xor(model[var(l)], sign(l)) == LBool::kTrue) sat = true;
      EXPECT_TRUE(sat) << "original clause violated after model extension";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCnf, PreprocessRandomTest, ::testing::Range(0, 60));

TEST(Preprocess, UnsatDerivedDuringElimination) {
  // XOR-style binaries: no clause subsumes or self-subsumes another, so the
  // subsumption pass finds nothing and the contradiction only surfaces once
  // variable elimination starts resolving.  Eliminating v leaves (a|~b) and
  // (b|~a); eliminating a then yields the units (b) and (~b) — created
  // mid-sweep, with no subsumption pass between eliminations — and
  // eliminating b resolves them to the empty clause *inside* eliminate_var.
  Preprocessor p(3);
  const Var v = 0, a = 1, b = 2;
  p.add_clause({pos(v), pos(a)});
  p.add_clause({pos(v), pos(b)});
  p.add_clause({negl(v), negl(a)});
  p.add_clause({negl(v), negl(b)});
  p.add_clause({pos(a), pos(b)});
  p.add_clause({negl(a), negl(b)});
  EXPECT_FALSE(p.unsat());
  p.run(/*grow=*/4);
  EXPECT_TRUE(p.unsat());
  // The UNSAT must have come from the elimination path, not strengthening.
  EXPECT_EQ(p.stats().subsumed, 0u);
  EXPECT_EQ(p.stats().strengthened, 0u);
  EXPECT_EQ(p.stats().vars_eliminated, 2u);

  // Crosscheck: the in-solver inprocessing pipeline on the same formula.
  Solver s;
  s.set_inprocess_interval(0);
  for (int i = 0; i < 3; ++i) s.new_var();
  s.add_clause({pos(v), pos(a)});
  s.add_clause({pos(v), pos(b)});
  s.add_clause({negl(v), negl(a)});
  s.add_clause({negl(v), negl(b)});
  s.add_clause({pos(a), pos(b)});
  s.add_clause({negl(a), negl(b)});
  EXPECT_EQ(s.solve(), Status::kUnsat);
}

class PreprocessSubsumeStressTest : public ::testing::TestWithParam<int> {};

TEST_P(PreprocessSubsumeStressTest, RemovalDuringIterationStaysSound) {
  // Engineered for dense subsumption: every base clause gets random
  // supersets (subsumption deletes them mid-sweep) and a one-flipped-literal
  // variant (self-subsumption removes the target and appends a strengthened
  // copy), so subsumption_pass keeps deleting and growing the database — and
  // the occurrence lists it is iterating — while it sweeps.
  std::mt19937 rng(7100 + GetParam());
  const unsigned nvars = 6 + rng() % 5;  // brute-forceable
  auto rnd_lit = [&] { return mk_lit(rng() % nvars, rng() % 2); };
  std::vector<std::vector<Lit>> cls;
  const unsigned nbase = 4 + rng() % 5;
  for (unsigned bi = 0; bi < nbase; ++bi) {
    std::vector<Lit> base;
    unsigned len = 1 + rng() % 3;
    for (unsigned k = 0; k < len; ++k) base.push_back(rnd_lit());
    cls.push_back(base);
    for (unsigned sup = 0; sup < 2 + rng() % 3; ++sup) {
      std::vector<Lit> d = base;
      for (unsigned k = 0; k < 1 + rng() % 3; ++k) d.push_back(rnd_lit());
      cls.push_back(d);
    }
    std::vector<Lit> f = base;
    std::size_t fi = rng() % f.size();
    f[fi] = neg(f[fi]);
    f.push_back(rnd_lit());
    cls.push_back(f);
  }
  std::shuffle(cls.begin(), cls.end(), rng);
  Preprocessor p(nvars);
  for (const auto& c : cls) p.add_clause(c);
  bool expected = brute_force_sat(nvars, cls);
  p.run(/*grow=*/1);
  if (p.unsat()) {
    EXPECT_FALSE(expected);
    return;
  }
  // The supersets guarantee the sweep actually removed during iteration.
  EXPECT_GT(p.stats().subsumed + p.stats().strengthened, 0u);
  Solver s;
  for (unsigned i = 0; i < nvars; ++i) s.new_var();
  for (auto& c : p.clauses()) s.add_clause(c);
  Status st = s.solve();
  ASSERT_NE(st, Status::kUnknown);
  EXPECT_EQ(st == Status::kSat, expected);
  if (st == Status::kSat) {
    std::vector<LBool> model = s.model();
    p.extend_model(model);
    for (const auto& c : cls) {
      bool sat = false;
      for (Lit l : c)
        if (lbool_xor(model[var(l)], sign(l)) == LBool::kTrue) sat = true;
      EXPECT_TRUE(sat) << "original clause violated after model extension";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(DenseSubsumption, PreprocessSubsumeStressTest,
                         ::testing::Range(0, 40));

TEST(Preprocess, LargeGrowEliminatesAggressively) {
  std::mt19937 rng(4242);
  const unsigned nvars = 12;
  Preprocessor p0(nvars), p5(nvars);
  for (unsigned c = 0; c < 40; ++c) {
    std::vector<Lit> cl;
    unsigned len = 2 + rng() % 3;
    for (unsigned k = 0; k < len; ++k) cl.push_back(mk_lit(rng() % nvars, rng() % 2));
    p0.add_clause(cl);
    p5.add_clause(cl);
  }
  p0.run(/*grow=*/0);
  p5.run(/*grow=*/8);
  EXPECT_GE(p5.stats().vars_eliminated, p0.stats().vars_eliminated);
}

}  // namespace
}  // namespace itpseq::sat
