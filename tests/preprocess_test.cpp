// preprocess_test.cpp — SatELite-style preprocessing: equisatisfiability,
// model extension, and the individual simplification rules.
#include <gtest/gtest.h>

#include <random>

#include "sat/preprocess.hpp"
#include "sat/solver.hpp"

namespace itpseq::sat {
namespace {

Lit pos(Var v) { return mk_lit(v, false); }
Lit negl(Var v) { return mk_lit(v, true); }

bool brute_force_sat(unsigned nvars, const std::vector<std::vector<Lit>>& cls) {
  for (std::uint64_t m = 0; m < (1ull << nvars); ++m) {
    bool all = true;
    for (const auto& c : cls) {
      bool sat = false;
      for (Lit l : c)
        if (((m >> var(l)) & 1) != sign(l)) {
          sat = true;
          break;
        }
      if (!sat) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

TEST(Preprocess, SubsumptionDropsSuperset) {
  Preprocessor p(3);
  p.add_clause({pos(0), pos(1)});
  p.add_clause({pos(0), pos(1), pos(2)});
  p.run();
  EXPECT_EQ(p.stats().subsumed, 1u);
}

TEST(Preprocess, SelfSubsumptionStrengthens) {
  // (a | b) and (a | ~b | c): the second strengthens to (a | c).
  Preprocessor p(3);
  p.freeze(0);
  p.freeze(1);
  p.freeze(2);
  p.add_clause({pos(0), pos(1)});
  p.add_clause({pos(0), negl(1), pos(2)});
  p.run();
  EXPECT_GE(p.stats().strengthened, 1u);
  bool found = false;
  for (const auto& c : p.clauses())
    if (c == std::vector<Lit>({pos(0), pos(2)})) found = true;
  EXPECT_TRUE(found);
}

TEST(Preprocess, VariableEliminationRemovesVar) {
  // v appears in (v | a) and (~v | b): eliminate to (a | b).
  Preprocessor p(3);
  p.freeze(1);
  p.freeze(2);
  p.add_clause({pos(0), pos(1)});
  p.add_clause({negl(0), pos(2)});
  p.run();
  EXPECT_EQ(p.stats().vars_eliminated, 1u);
  auto cls = p.clauses();
  ASSERT_EQ(cls.size(), 1u);
  EXPECT_EQ(cls[0], std::vector<Lit>({pos(1), pos(2)}));
}

TEST(Preprocess, DetectsTrivialUnsat) {
  Preprocessor p(1);
  p.add_clause({pos(0)});
  p.add_clause({negl(0)});
  p.run();
  EXPECT_TRUE(p.unsat());
}

TEST(Preprocess, FrozenVarsUntouched) {
  Preprocessor p(2);
  p.freeze(0);
  p.add_clause({pos(0), pos(1)});
  p.add_clause({negl(0), pos(1)});
  p.run(/*grow=*/10);
  // Var 0 frozen: must still appear (only var 1 may be eliminated, but it
  // has a single polarity so elimination yields no resolvents and empties
  // the database — also fine).  Check var 0 was not recorded eliminated by
  // asking for a model extension round-trip instead:
  for (const auto& c : p.clauses())
    for (Lit l : c) EXPECT_TRUE(var(l) == 0 || var(l) == 1);
}

class PreprocessRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(PreprocessRandomTest, EquisatisfiableAndModelsExtend) {
  std::mt19937 rng(900 + GetParam());
  const unsigned nvars = 8 + rng() % 6;
  const unsigned nclauses = static_cast<unsigned>(nvars * (2.0 + (rng() % 30) / 10.0));
  std::vector<std::vector<Lit>> cls;
  Preprocessor p(nvars);
  for (unsigned c = 0; c < nclauses; ++c) {
    unsigned len = 1 + rng() % 4;
    std::vector<Lit> cl;
    for (unsigned k = 0; k < len; ++k) cl.push_back(mk_lit(rng() % nvars, rng() % 2));
    cls.push_back(cl);
    p.add_clause(cl);
  }
  bool expected = brute_force_sat(nvars, cls);
  p.run(/*grow=*/2);
  if (p.unsat()) {
    EXPECT_FALSE(expected);
    return;
  }
  Solver s;
  for (unsigned i = 0; i < nvars; ++i) s.new_var();
  for (auto& c : p.clauses()) s.add_clause(c);
  Status st = s.solve();
  ASSERT_NE(st, Status::kUnknown);
  EXPECT_EQ(st == Status::kSat, expected);
  if (st == Status::kSat) {
    // Extend the model and check it satisfies the ORIGINAL clauses.
    std::vector<LBool> model = s.model();
    p.extend_model(model);
    for (const auto& c : cls) {
      bool sat = false;
      for (Lit l : c)
        if (lbool_xor(model[var(l)], sign(l)) == LBool::kTrue) sat = true;
      EXPECT_TRUE(sat) << "original clause violated after model extension";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCnf, PreprocessRandomTest, ::testing::Range(0, 60));

TEST(Preprocess, LargeGrowEliminatesAggressively) {
  std::mt19937 rng(4242);
  const unsigned nvars = 12;
  Preprocessor p0(nvars), p5(nvars);
  for (unsigned c = 0; c < 40; ++c) {
    std::vector<Lit> cl;
    unsigned len = 2 + rng() % 3;
    for (unsigned k = 0; k < len; ++k) cl.push_back(mk_lit(rng() % nvars, rng() % 2));
    p0.add_clause(cl);
    p5.add_clause(cl);
  }
  p0.run(/*grow=*/0);
  p5.run(/*grow=*/8);
  EXPECT_GE(p5.stats().vars_eliminated, p0.stats().vars_eliminated);
}

}  // namespace
}  // namespace itpseq::sat
