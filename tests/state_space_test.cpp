// state_space_test.cpp — unit tests for the symbolic state-set manager and
// its SAT containment checks.
#include <gtest/gtest.h>

#include "bench_circuits/generators.hpp"
#include "mc/state_space.hpp"

namespace itpseq::mc {
namespace {

TEST(StateSpace, InputsMirrorLatches) {
  aig::Aig g = bench::counter(4, 11, 7);
  StateSpace s(g);
  EXPECT_EQ(s.graph().num_inputs(), g.num_latches());
  for (std::size_t i = 0; i < g.num_latches(); ++i)
    EXPECT_EQ(s.latch_input(i), s.graph().input(i));
}

TEST(StateSpace, InitPredMatchesResets) {
  aig::Aig g;
  (void)g.add_latch(aig::LatchInit::kZero);
  (void)g.add_latch(aig::LatchInit::kOne);
  (void)g.add_latch(aig::LatchInit::kUndef);
  for (std::size_t i = 0; i < 3; ++i) g.set_latch_next(g.latch(i), g.latch(i));
  StateSpace s(g);
  aig::Lit init = s.init_pred();
  std::vector<bool> v(s.graph().num_vars(), false);
  auto set = [&](int i, bool val) { v[aig::lit_var(s.graph().input(i))] = val; };
  set(0, false);
  set(1, true);
  set(2, false);
  EXPECT_TRUE(s.graph().evaluate(init, v));
  set(2, true);  // undef latch unconstrained
  EXPECT_TRUE(s.graph().evaluate(init, v));
  set(1, false);  // violates reset of latch 1
  EXPECT_FALSE(s.graph().evaluate(init, v));
}

TEST(StateSpace, InitPredWithVisibility) {
  aig::Aig g;
  (void)g.add_latch(aig::LatchInit::kOne);
  (void)g.add_latch(aig::LatchInit::kOne);
  for (std::size_t i = 0; i < 2; ++i) g.set_latch_next(g.latch(i), g.latch(i));
  StateSpace s(g);
  aig::Lit init = s.init_pred({true, false});  // latch 1 invisible
  std::vector<bool> v(s.graph().num_vars(), false);
  v[aig::lit_var(s.graph().input(0))] = true;
  EXPECT_TRUE(s.graph().evaluate(init, v));  // latch 1 free
}

TEST(StateSpace, ImpliesBasics) {
  aig::Aig g = bench::counter(3, 8, 5);
  StateSpace s(g);
  aig::Aig& G = s.graph();
  aig::Lit a = G.input(0);
  aig::Lit ab = G.make_and(G.input(0), G.input(1));
  EXPECT_EQ(s.implies(ab, a, 5.0), Implication::kHolds);
  EXPECT_EQ(s.implies(a, ab, 5.0), Implication::kFails);
  EXPECT_EQ(s.implies(aig::kFalse, a, 5.0), Implication::kHolds);
  EXPECT_EQ(s.implies(a, aig::kTrue, 5.0), Implication::kHolds);
  EXPECT_EQ(s.implies(a, a, 5.0), Implication::kHolds);
  EXPECT_EQ(s.implies(aig::kTrue, aig::kFalse, 5.0), Implication::kFails);
  EXPECT_GT(s.num_sat_calls(), 0u);
}

TEST(StateSpace, Satisfiable) {
  aig::Aig g = bench::counter(3, 8, 5);
  StateSpace s(g);
  aig::Aig& G = s.graph();
  aig::Lit contradiction = G.make_and(G.input(0), aig::lit_not(G.input(0)));
  EXPECT_EQ(contradiction, aig::kFalse);  // strash folds it
  EXPECT_EQ(s.satisfiable(G.input(1), 5.0), Implication::kHolds);
  EXPECT_EQ(s.satisfiable(aig::kFalse, 5.0), Implication::kFails);
}

TEST(StateSpace, CompactRemapsRoots) {
  aig::Aig g = bench::counter(4, 11, 7);
  StateSpace s(g);
  aig::Aig& G = s.graph();
  aig::Lit keep = G.make_or(G.input(0), G.make_and(G.input(1), G.input(2)));
  // Garbage that compaction should drop.
  aig::Lit junk = keep;
  for (int i = 0; i < 50; ++i) junk = G.make_xor(junk, G.input(i % 4));
  std::size_t before = G.num_ands();
  s.compact({&keep});
  EXPECT_LT(s.graph().num_ands(), before);
  // `keep` still means the same function.
  std::vector<bool> v(s.graph().num_vars(), false);
  EXPECT_FALSE(s.graph().evaluate(keep, v));
  v[aig::lit_var(s.graph().input(0))] = true;
  EXPECT_TRUE(s.graph().evaluate(keep, v));
  v[aig::lit_var(s.graph().input(0))] = false;
  v[aig::lit_var(s.graph().input(1))] = true;
  v[aig::lit_var(s.graph().input(2))] = true;
  EXPECT_TRUE(s.graph().evaluate(keep, v));
}

}  // namespace
}  // namespace itpseq::mc
