// aig_test.cpp — unit tests for the AIG data structure and AIGER I/O.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "aig/aig.hpp"
#include "aig/aiger_io.hpp"

namespace itpseq::aig {
namespace {

TEST(Aig, ConstantsAndLiterals) {
  EXPECT_EQ(lit_var(kFalse), 0u);
  EXPECT_EQ(lit_not(kFalse), kTrue);
  EXPECT_EQ(lit_var(var_lit(7, true)), 7u);
  EXPECT_TRUE(lit_sign(var_lit(7, true)));
  EXPECT_EQ(lit_xor(var_lit(3), true), var_lit(3, true));
}

TEST(Aig, AndConstantFolding) {
  Aig g;
  Lit a = g.add_input();
  EXPECT_EQ(g.make_and(a, kFalse), kFalse);
  EXPECT_EQ(g.make_and(kFalse, a), kFalse);
  EXPECT_EQ(g.make_and(a, kTrue), a);
  EXPECT_EQ(g.make_and(a, a), a);
  EXPECT_EQ(g.make_and(a, lit_not(a)), kFalse);
  EXPECT_EQ(g.num_ands(), 0u);
}

TEST(Aig, StructuralHashing) {
  Aig g;
  Lit a = g.add_input();
  Lit b = g.add_input();
  Lit x = g.make_and(a, b);
  Lit y = g.make_and(b, a);  // commuted
  EXPECT_EQ(x, y);
  EXPECT_EQ(g.num_ands(), 1u);
  Lit z = g.make_and(a, lit_not(b));
  EXPECT_NE(x, z);
  EXPECT_EQ(g.num_ands(), 2u);
}

TEST(Aig, DerivedOperators) {
  Aig g;
  Lit a = g.add_input();
  Lit b = g.add_input();
  Lit c = g.add_input();
  std::vector<bool> vals(g.num_vars() + 64, false);
  Lit x = g.make_xor(a, b);
  Lit o = g.make_or(a, b);
  Lit ite = g.make_ite(c, a, b);
  Lit eq = g.make_equiv(a, b);
  for (int m = 0; m < 8; ++m) {
    vals[lit_var(a)] = m & 1;
    vals[lit_var(b)] = m & 2;
    vals[lit_var(c)] = m & 4;
    bool va = m & 1, vb = (m & 2) != 0, vc = (m & 4) != 0;
    EXPECT_EQ(g.evaluate(x, vals), va ^ vb);
    EXPECT_EQ(g.evaluate(o, vals), va || vb);
    EXPECT_EQ(g.evaluate(ite, vals), vc ? va : vb);
    EXPECT_EQ(g.evaluate(eq, vals), va == vb);
  }
}

TEST(Aig, AndOrMany) {
  Aig g;
  std::vector<Lit> ins;
  for (int i = 0; i < 7; ++i) ins.push_back(g.add_input());
  Lit all = g.make_and_many(ins);
  Lit any = g.make_or_many(ins);
  EXPECT_EQ(g.make_and_many({}), kTrue);
  EXPECT_EQ(g.make_or_many({}), kFalse);
  std::vector<bool> vals(g.num_vars(), false);
  EXPECT_FALSE(g.evaluate(all, vals));
  EXPECT_FALSE(g.evaluate(any, vals));
  vals[lit_var(ins[3])] = true;
  EXPECT_FALSE(g.evaluate(all, vals));
  EXPECT_TRUE(g.evaluate(any, vals));
  for (Lit l : ins) vals[lit_var(l)] = true;
  EXPECT_TRUE(g.evaluate(all, vals));
}

TEST(Aig, LatchBookkeeping) {
  Aig g;
  Lit in = g.add_input("in");
  Lit l0 = g.add_latch(LatchInit::kZero, "l0");
  Lit l1 = g.add_latch(LatchInit::kOne, "l1");
  g.set_latch_next(l0, g.make_xor(l0, in));
  g.set_latch_next(l1, l0);
  EXPECT_EQ(g.num_latches(), 2u);
  EXPECT_EQ(g.latch(0), l0);
  EXPECT_EQ(g.latch_next(1), l0);
  EXPECT_EQ(g.latch_init(1), LatchInit::kOne);
  EXPECT_EQ(g.latch_index(lit_var(l1)), 1u);
  EXPECT_EQ(g.latch_index(lit_var(in)), Aig::kNoIndex);
  EXPECT_EQ(g.input_index(lit_var(in)), 0u);
  EXPECT_EQ(g.name(lit_var(l0)), "l0");
}

TEST(Aig, SupportAndCone) {
  Aig g;
  Lit a = g.add_input();
  Lit b = g.add_input();
  Lit c = g.add_input();
  // One-level strashing does not fold (a&b)&!a structurally, but the
  // function is constant false.
  Lit x = g.make_and(g.make_and(a, b), lit_not(a));
  EXPECT_NE(x, kFalse);
  std::vector<bool> v(g.num_vars(), false);
  for (int m = 0; m < 4; ++m) {
    v[lit_var(a)] = m & 1;
    v[lit_var(b)] = m & 2;
    EXPECT_FALSE(g.evaluate(x, v));
  }
  Lit y = g.make_or(g.make_and(a, b), c);
  std::vector<Var> sup = g.support(y);
  EXPECT_EQ(sup.size(), 3u);
  EXPECT_EQ(g.cone_size(y), 2u);
  EXPECT_EQ(g.cone_size(a), 0u);
}

TEST(Aig, Evaluate64) {
  Aig g;
  Lit a = g.add_input();
  Lit b = g.add_input();
  Lit x = g.make_xor(a, b);
  std::vector<std::uint64_t> vals(g.num_vars(), 0);
  vals[lit_var(a)] = 0xF0F0F0F0F0F0F0F0ull;
  vals[lit_var(b)] = 0xFF00FF00FF00FF00ull;
  EXPECT_EQ(g.evaluate64(x, vals), 0xF0F0F0F0F0F0F0F0ull ^ 0xFF00FF00FF00FF00ull);
  EXPECT_EQ(g.evaluate64(lit_not(x), vals),
            ~(0xF0F0F0F0F0F0F0F0ull ^ 0xFF00FF00FF00FF00ull));
}

TEST(Aig, ImportCone) {
  Aig src;
  Lit a = src.add_input();
  Lit b = src.add_input();
  Lit f = src.make_or(src.make_and(a, b), src.make_xor(a, b));  // = a|b

  Aig dst;
  Lit x = dst.add_input();
  Lit y = dst.add_input();
  std::vector<Lit> map(src.num_vars(), kNullLit);
  map[lit_var(a)] = lit_not(x);  // leaves can map to arbitrary literals
  map[lit_var(b)] = y;
  Lit r = dst.import_cone(src, f, map);
  std::vector<bool> vals(dst.num_vars(), false);
  for (int m = 0; m < 4; ++m) {
    vals[lit_var(x)] = m & 1;
    vals[lit_var(y)] = m & 2;
    bool va = !(m & 1), vb = (m & 2) != 0;
    EXPECT_EQ(dst.evaluate(r, vals), va || vb);
  }
}

TEST(Aig, InvalidOperations) {
  Aig g;
  Lit in = g.add_input();
  EXPECT_THROW(g.make_and(in, var_lit(99)), std::invalid_argument);
  EXPECT_THROW(g.set_latch_next(in, in), std::invalid_argument);
  EXPECT_THROW(g.add_output(var_lit(42)), std::invalid_argument);
  Lit l = g.add_latch();
  EXPECT_THROW(g.set_latch_next(lit_not(l), in), std::invalid_argument);
}

// --- AIGER I/O --------------------------------------------------------------

Aig example_circuit() {
  Aig g;
  Lit i0 = g.add_input("i0");
  Lit i1 = g.add_input("i1");
  Lit l0 = g.add_latch(LatchInit::kZero, "l0");
  Lit l1 = g.add_latch(LatchInit::kOne, "l1");
  Lit l2 = g.add_latch(LatchInit::kUndef, "l2");
  g.set_latch_next(l0, g.make_xor(i0, l1));
  g.set_latch_next(l1, g.make_and(l0, lit_not(i1)));
  g.set_latch_next(l2, g.make_or(l2, g.make_and(i0, i1)));
  g.add_output(g.make_and(l0, g.make_and(l1, l2)), "bad");
  return g;
}

void expect_equivalent(const Aig& a, const Aig& b) {
  ASSERT_EQ(a.num_inputs(), b.num_inputs());
  ASSERT_EQ(a.num_latches(), b.num_latches());
  ASSERT_EQ(a.num_outputs(), b.num_outputs());
  // Semantic check by random simulation of one combinational step.
  std::mt19937_64 rng(42);
  for (int trial = 0; trial < 64; ++trial) {
    std::vector<std::uint64_t> va(a.num_vars(), 0), vb(b.num_vars(), 0);
    for (std::size_t i = 0; i < a.num_inputs(); ++i) {
      std::uint64_t r = rng();
      va[lit_var(a.input(i))] = r;
      vb[lit_var(b.input(i))] = r;
    }
    for (std::size_t i = 0; i < a.num_latches(); ++i) {
      std::uint64_t r = rng();
      va[lit_var(a.latch(i))] = r;
      vb[lit_var(b.latch(i))] = r;
      EXPECT_EQ(a.latch_init(i), b.latch_init(i)) << "latch " << i;
    }
    for (std::size_t i = 0; i < a.num_latches(); ++i)
      EXPECT_EQ(a.evaluate64(a.latch_next(i), va), b.evaluate64(b.latch_next(i), vb))
          << "next fn of latch " << i;
    for (std::size_t i = 0; i < a.num_outputs(); ++i)
      EXPECT_EQ(a.evaluate64(a.output(i), va), b.evaluate64(b.output(i), vb))
          << "output " << i;
  }
}

TEST(AigerIo, AsciiRoundTrip) {
  Aig g = example_circuit();
  std::stringstream ss;
  write_aiger_ascii(g, ss);
  Aig h = read_aiger(ss);
  expect_equivalent(g, h);
  EXPECT_EQ(h.name(lit_var(h.input(0))), "i0");
  EXPECT_EQ(h.name(lit_var(h.latch(0))), "l0");
}

TEST(AigerIo, BinaryRoundTrip) {
  Aig g = example_circuit();
  std::stringstream ss;
  write_aiger_binary(g, ss);
  Aig h = read_aiger(ss);
  expect_equivalent(g, h);
}

TEST(AigerIo, BinaryMatchesAsciiSemantics) {
  Aig g = example_circuit();
  std::stringstream sa, sb;
  write_aiger_ascii(g, sa);
  write_aiger_binary(g, sb);
  Aig ha = read_aiger(sa);
  Aig hb = read_aiger(sb);
  expect_equivalent(ha, hb);
}

TEST(AigerIo, ParsesBadSection) {
  // AIGER 1.9 header with B > 0: bad properties become outputs.
  std::string text =
      "aag 3 1 1 0 1 1\n"
      "2\n"
      "4 6\n"
      "6\n"
      "6 4 2\n";
  std::stringstream ss(text);
  Aig g = read_aiger(ss);
  EXPECT_EQ(g.num_outputs(), 1u);
  EXPECT_EQ(g.num_latches(), 1u);
}

TEST(AigerIo, RejectsGarbage) {
  std::stringstream s1("not an aiger file");
  EXPECT_THROW(read_aiger(s1), std::runtime_error);
  std::stringstream s2("aag 1 1 0 0 0\n99\n");  // literal out of range
  EXPECT_THROW(read_aiger(s2), std::runtime_error);
}

TEST(AigerIo, UndefInitPreserved) {
  Aig g;
  Lit l = g.add_latch(LatchInit::kUndef);
  g.set_latch_next(l, lit_not(l));
  g.add_output(l);
  std::stringstream ss;
  write_aiger_ascii(g, ss);
  Aig h = read_aiger(ss);
  EXPECT_EQ(h.latch_init(0), LatchInit::kUndef);
}

TEST(AigerIo, RandomCircuitsRoundTrip) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    Aig g;
    std::vector<Lit> pool;
    unsigned ni = 2 + rng() % 4, nl = 1 + rng() % 4;
    for (unsigned i = 0; i < ni; ++i) pool.push_back(g.add_input());
    std::vector<Lit> latches;
    for (unsigned i = 0; i < nl; ++i) {
      Lit l = g.add_latch(static_cast<LatchInit>(rng() % 3));
      latches.push_back(l);
      pool.push_back(l);
    }
    for (int n = 0; n < 30; ++n) {
      Lit a = pool[rng() % pool.size()] ^ (rng() % 2);
      Lit b = pool[rng() % pool.size()] ^ (rng() % 2);
      pool.push_back(g.make_and(a, b));
    }
    for (Lit l : latches)
      g.set_latch_next(l, pool[rng() % pool.size()] ^ (rng() % 2));
    g.add_output(pool.back());

    std::stringstream sa, sb;
    write_aiger_ascii(g, sa);
    write_aiger_binary(g, sb);
    Aig ha = read_aiger(sa);
    Aig hb = read_aiger(sb);
    expect_equivalent(g, ha);
    expect_equivalent(g, hb);
  }
}

}  // namespace
}  // namespace itpseq::aig
