// checked_test.cpp — the ITPSEQ_CHECKED dynamic backstops: a stale Cls view
// must abort with a diagnostic (death test over the arena-epoch validation),
// and a normal solve with inprocessing + GC must run clean under the same
// instrumentation (epoch bumps and the freeze audit fire on every round).
// Without -DITPSEQ_CHECKED=ON the suite self-skips; CI runs both flavors.
#include <gtest/gtest.h>

#include <vector>

#include "sat/solver.hpp"

namespace itpseq::sat {
namespace {

#ifdef ITPSEQ_CHECKED

TEST(CheckedBuild, StaleClsViewAborts) {
  EXPECT_DEATH(
      {
        Solver s;
        (void)s.debug_stale_view_probe();
      },
      "itpseq checked-build violation: stale Cls view");
}

// Pigeonhole PHP(4,3): small, UNSAT, and busy enough to drive learning,
// reduce/GC pressure and a forced inprocessing round — every epoch bump and
// the end-of-round freeze audit execute on a real workload.
TEST(CheckedBuild, NormalSolveRunsCleanUnderInstrumentation) {
  constexpr int kPigeons = 4, kHoles = 3;
  Solver s;
  std::vector<std::vector<Var>> at(kPigeons, std::vector<Var>(kHoles));
  for (auto& row : at)
    for (Var& v : row) v = s.new_var();
  for (int p = 0; p < kPigeons; ++p) {
    std::vector<Lit> some_hole;
    for (int h = 0; h < kHoles; ++h) some_hole.push_back(mk_lit(at[p][h], false));
    ASSERT_TRUE(s.add_clause(some_hole));
  }
  for (int h = 0; h < kHoles; ++h)
    for (int p = 0; p < kPigeons; ++p)
      for (int q = p + 1; q < kPigeons; ++q)
        ASSERT_TRUE(s.add_clause(
            {mk_lit(at[p][h], true), mk_lit(at[q][h], true)}));
  s.set_inprocess_interval(0);  // force a round at every opportunity
  s.set_gc_frac(0.01);          // force arena compactions
  EXPECT_EQ(s.solve(), Status::kUnsat);
}

#else

TEST(CheckedBuild, SkippedWithoutCheckedBuild) {
  GTEST_SKIP()
      << "configure with -DITPSEQ_CHECKED=ON to exercise the dynamic "
         "backstops (arena-epoch validation, freeze audit)";
}

#endif

}  // namespace
}  // namespace itpseq::sat
