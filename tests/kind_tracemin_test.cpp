// kind_tracemin_test.cpp — k-induction engine, trace minimization and
// TRACECHECK proof export.
#include <gtest/gtest.h>

#include <sstream>

#include "bench_circuits/generators.hpp"
#include "bench_circuits/suite.hpp"
#include "mc/kinduction.hpp"
#include "mc/portfolio.hpp"
#include "mc/sim.hpp"
#include "mc/trace_min.hpp"
#include "sat/solver.hpp"
#include "sat/tracecheck.hpp"

namespace itpseq {
namespace {

mc::EngineOptions kind_opts() {
  mc::EngineOptions o;
  o.time_limit_sec = 25.0;
  o.max_bound = 80;
  return o;
}

TEST(KInduction, ProvesInductiveProperties) {
  // One-hot ring invariant is 1-inductive.
  aig::Aig g = bench::token_ring(8, false);
  mc::EngineResult r = mc::check_kinduction(g, 0, kind_opts());
  ASSERT_EQ(r.verdict, mc::Verdict::kPass);
  EXPECT_LE(r.k_fp, 2u);
}

TEST(KInduction, FindsCounterexamples) {
  aig::Aig g = bench::token_ring(8, true);
  mc::EngineResult r = mc::check_kinduction(g, 0, kind_opts());
  ASSERT_EQ(r.verdict, mc::Verdict::kFail);
  EXPECT_EQ(r.cex.depth(), 7u);
  EXPECT_TRUE(mc::trace_is_cex(g, r.cex, 0));
}

TEST(KInduction, NonInductiveNeedsUniqueness) {
  // A modulo counter's "never reaches m" is not k-inductive for small k but
  // the unique-states constraints terminate at the recurrence diameter.
  aig::Aig g = bench::counter(3, 6, 7);
  mc::EngineResult r = mc::check_kinduction(g, 0, kind_opts());
  EXPECT_EQ(r.verdict, mc::Verdict::kPass);
}

class KInductionSuiteTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(KInductionSuiteTest, NeverWrong) {
  auto suite = bench::make_academic_suite(20);
  if (GetParam() >= suite.size()) GTEST_SKIP();
  const bench::Instance& inst = suite[GetParam()];
  mc::EngineOptions o = kind_opts();
  o.time_limit_sec = 10.0;
  o.max_bound = 30;
  mc::EngineResult r = mc::check_kinduction(inst.model, 0, o);
  if (r.verdict == mc::Verdict::kUnknown) GTEST_SKIP() << "budget";
  if (inst.expected == bench::Expected::kPass) {
    EXPECT_EQ(r.verdict, mc::Verdict::kPass) << inst.name;
  }
  if (inst.expected == bench::Expected::kFail) {
    EXPECT_EQ(r.verdict, mc::Verdict::kFail) << inst.name;
    EXPECT_TRUE(mc::trace_is_cex(inst.model, r.cex, 0)) << inst.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Suite, KInductionSuiteTest,
                         ::testing::Range(0u, 48u, 2u));

// --- trace minimization -------------------------------------------------------

TEST(TraceMin, PreservesCexAndClearsBits) {
  aig::Aig g = bench::queue(6, /*guarded=*/false);
  mc::Trace t;
  t.initial_latches.assign(g.num_latches(), false);
  // Noisy counterexample: push every cycle, pop bit wiggling irrelevantly
  // (pushes win ties, so pops are ignored).
  for (int i = 0; i < 8; ++i) t.inputs.push_back({true, i % 2 == 0});
  ASSERT_TRUE(mc::trace_is_cex(g, t, 0));

  mc::TraceMinStats stats;
  mc::Trace m = mc::minimize_trace(g, t, 0, &stats);
  EXPECT_TRUE(mc::trace_is_cex(g, m, 0));
  EXPECT_GT(stats.bits_cleared, 0u);
  // All pop bits must be gone.
  for (const auto& f : m.inputs) EXPECT_FALSE(f[1]);
  // Pushes in frames 0..depth-1 are all needed; the final frame's push is
  // irrelevant (the occupancy is already over capacity when it is read).
  for (std::size_t f = 0; f + 1 < m.inputs.size(); ++f)
    EXPECT_TRUE(m.inputs[f][0]) << "frame " << f;
  EXPECT_FALSE(m.inputs.back()[0]);
}

TEST(TraceMin, RejectsNonCex) {
  aig::Aig g = bench::queue(6, false);
  mc::Trace t;
  t.initial_latches.assign(g.num_latches(), false);
  t.inputs.push_back({false, false});
  EXPECT_THROW(mc::minimize_trace(g, t, 0), std::invalid_argument);
}

TEST(TraceMin, EngineCexMinimizes) {
  aig::Aig g = bench::sticky_detector(5, /*resettable=*/true);
  mc::EngineResult r = mc::check_random_sim(g, 0, 64, 64, 7);
  ASSERT_EQ(r.verdict, mc::Verdict::kFail);  // random sim finds noisy cex
  mc::TraceMinStats stats;
  mc::Trace m = mc::minimize_trace(g, r.cex, 0, &stats);
  EXPECT_TRUE(mc::trace_is_cex(g, m, 0));
  // The clr input must be all-zero after minimization.
  for (const auto& f : m.inputs) EXPECT_FALSE(f[2]);
}

// --- TRACECHECK export --------------------------------------------------------

TEST(TraceCheck, WellFormedOutput) {
  sat::Solver s;
  s.enable_proof();
  sat::Var a = s.new_var(), b = s.new_var();
  s.add_clause({sat::mk_lit(a)}, 1);
  s.add_clause({sat::mk_lit(a, true), sat::mk_lit(b)}, 1);
  s.add_clause({sat::mk_lit(b, true)}, 2);
  ASSERT_EQ(s.solve(), sat::Status::kUnsat);
  std::stringstream ss;
  sat::write_tracecheck(s.proof(), ss);
  // Every line: id, literals, 0, antecedents, 0; last line derives nothing
  // (empty clause) with antecedents.
  std::string line;
  unsigned lines = 0;
  bool saw_empty = false;
  while (std::getline(ss, line)) {
    ++lines;
    std::istringstream ls(line);
    long long id;
    ASSERT_TRUE(static_cast<bool>(ls >> id));
    EXPECT_GT(id, 0);
    std::vector<long long> nums;
    long long x;
    while (ls >> x) nums.push_back(x);
    // Two zero-terminated sections.
    int zeros = 0;
    for (long long n : nums)
      if (n == 0) ++zeros;
    EXPECT_EQ(zeros, 2) << line;
    ASSERT_FALSE(nums.empty());
    EXPECT_EQ(nums.back(), 0);
    if (nums.front() == 0 && nums.size() > 2) saw_empty = true;
  }
  EXPECT_GE(lines, 4u);
  EXPECT_TRUE(saw_empty) << "no empty clause derivation found";
}

TEST(TraceCheck, RejectsIncompleteProof) {
  sat::Solver s;
  s.enable_proof();
  sat::Var a = s.new_var();
  s.add_clause({sat::mk_lit(a)});
  ASSERT_EQ(s.solve(), sat::Status::kSat);
  std::stringstream ss;
  EXPECT_THROW(sat::write_tracecheck(s.proof(), ss), std::invalid_argument);
}

}  // namespace
}  // namespace itpseq
