// itp_test.cpp — property tests for Craig interpolant extraction.
//
// For randomly generated partitioned UNSAT formulas we verify, by
// independent SAT checks, the defining conditions of the paper:
//   Definition 1 (per cut j):  A => I,  I AND B unsat,
//                              supp(I) within shared variables;
//   Definition 2 (sequences):  I_j AND A_{j+1} => I_{j+1}.
#include <gtest/gtest.h>

#include <random>
#include <set>

#include "aig/aig.hpp"
#include "cnf/tseitin.hpp"
#include "itp/interpolate.hpp"
#include "sat/proof_check.hpp"
#include "sat/solver.hpp"

namespace itpseq {
namespace {

struct PartitionedCnf {
  unsigned nvars = 0;
  // clauses[i] = (literals, label)
  std::vector<std::pair<std::vector<sat::Lit>, std::uint32_t>> clauses;
};

/// Encode an AIG predicate over SAT variables: AIG input i corresponds to
/// SAT variable var_of_input[i] in `solver`.
sat::Lit encode_pred(const aig::Aig& g, aig::Lit root, sat::Solver& solver,
                     const std::vector<sat::Var>& var_of_input) {
  cnf::TseitinEncoder enc(g, solver, [&](aig::Var v) {
    return sat::mk_lit(var_of_input[g.input_index(v)]);
  });
  return enc.encode(root, 0);
}

/// Check "conjunction of clauses with label in [lo,hi] AND pred(sign)" for
/// satisfiability.
sat::Status query(const PartitionedCnf& f, std::uint32_t lo, std::uint32_t hi,
                  const aig::Aig& g, std::vector<std::pair<aig::Lit, bool>> preds) {
  sat::Solver s;
  std::vector<sat::Var> vars;
  for (unsigned i = 0; i < f.nvars; ++i) vars.push_back(s.new_var());
  for (const auto& [lits, label] : f.clauses) {
    if (label < lo || label > hi) continue;
    std::vector<sat::Lit> cl;
    for (sat::Lit l : lits) cl.push_back(sat::mk_lit(vars[sat::var(l)], sat::sign(l)));
    s.add_clause(cl);
  }
  for (auto [p, positive] : preds) {
    if (p == aig::kTrue) {
      if (!positive) return sat::Status::kUnsat;
      continue;
    }
    if (p == aig::kFalse) {
      if (positive) return sat::Status::kUnsat;
      continue;
    }
    sat::Lit e = encode_pred(g, p, s, vars);
    s.add_clause({positive ? e : sat::neg(e)});
  }
  return s.solve();
}

/// Build an AIG whose input i stands for SAT var i.
aig::Aig fresh_universe(unsigned nvars) {
  aig::Aig g;
  for (unsigned i = 0; i < nvars; ++i) g.add_input();
  return g;
}

void verify_sequence(const PartitionedCnf& f, unsigned max_label) {
  sat::Solver s;
  s.enable_proof();
  for (unsigned i = 0; i < f.nvars; ++i) s.new_var();
  for (const auto& [lits, label] : f.clauses) s.add_clause(lits, label);
  sat::Status st = s.solve();
  ASSERT_NE(st, sat::Status::kUnknown);
  if (st == sat::Status::kSat) {
    EXPECT_TRUE(s.verify_model());
    return;  // nothing to interpolate
  }
  auto pc = sat::check_proof(s.proof());
  ASSERT_TRUE(pc.ok) << pc.error;

  aig::Aig g = fresh_universe(f.nvars);
  itp::InterpolantExtractor ex(s.proof());
  std::vector<aig::Lit> seq = ex.extract_sequence(
      g, 1, max_label - 1,
      [&](std::uint32_t, sat::Var v) { return g.input(v); });

  for (std::uint32_t cut = 1; cut + 1 <= max_label; ++cut) {
    aig::Lit I = seq[cut - 1];
    // Support condition: inputs of I must be shared at this cut.
    for (aig::Var v : g.support(I)) {
      std::size_t idx = g.input_index(v);
      EXPECT_TRUE(ex.shared_at(static_cast<sat::Var>(idx), cut))
          << "cut " << cut << " var " << idx;
    }
    // A => I  (A AND NOT I unsat).
    EXPECT_EQ(query(f, 0, cut, g, {{I, false}}), sat::Status::kUnsat)
        << "A => I failed at cut " << cut;
    // I AND B unsat.
    EXPECT_EQ(query(f, cut + 1, max_label, g, {{I, true}}), sat::Status::kUnsat)
        << "I & B sat at cut " << cut;
  }
  // Chain condition: I_j AND A_{j+1} => I_{j+1}.
  for (std::uint32_t j = 1; j + 2 <= max_label; ++j) {
    EXPECT_EQ(query(f, j + 1, j + 1, g, {{seq[j - 1], true}, {seq[j], false}}),
              sat::Status::kUnsat)
        << "chain condition failed at j=" << j;
  }
}

class ItpRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(ItpRandomTest, RandomPartitionedCnf) {
  std::mt19937 rng(GetParam());
  PartitionedCnf f;
  f.nvars = 6 + rng() % 8;
  unsigned max_label = 2 + rng() % 4;  // partitions 1..max_label
  unsigned nclauses = static_cast<unsigned>(f.nvars * (3.0 + (rng() % 25) / 10.0));
  for (unsigned c = 0; c < nclauses; ++c) {
    unsigned len = 1 + rng() % 3;
    std::vector<sat::Lit> cl;
    for (unsigned k = 0; k < len; ++k)
      cl.push_back(sat::mk_lit(rng() % f.nvars, rng() % 2));
    f.clauses.push_back({cl, 1 + rng() % max_label});
  }
  verify_sequence(f, max_label);
}

INSTANTIATE_TEST_SUITE_P(RandomCnf, ItpRandomTest, ::testing::Range(0, 80));

TEST(Itp, HandCraftedTwoPartition) {
  // A: (a)(~a | b)    B: (~b)
  PartitionedCnf f;
  f.nvars = 2;
  f.clauses = {{{sat::mk_lit(0)}, 1},
               {{sat::mk_lit(0, true), sat::mk_lit(1)}, 1},
               {{sat::mk_lit(1, true)}, 2}};
  verify_sequence(f, 2);
}

TEST(Itp, InterpolantIsBForBUnsatCore) {
  // If the B side alone is contradictory the interpolant can be TRUE; the
  // conditions must still hold.
  PartitionedCnf f;
  f.nvars = 2;
  f.clauses = {{{sat::mk_lit(0)}, 1},
               {{sat::mk_lit(1)}, 2},
               {{sat::mk_lit(1, true)}, 2}};
  verify_sequence(f, 2);
}

TEST(Itp, InterpolantIsFalseForAUnsatCore) {
  PartitionedCnf f;
  f.nvars = 2;
  f.clauses = {{{sat::mk_lit(0)}, 1},
               {{sat::mk_lit(0, true)}, 1},
               {{sat::mk_lit(1)}, 2}};
  verify_sequence(f, 2);
}

TEST(Itp, IncompleteProofThrows) {
  sat::Solver s;
  s.enable_proof();
  sat::Var a = s.new_var();
  s.add_clause({sat::mk_lit(a)});
  ASSERT_EQ(s.solve(), sat::Status::kSat);
  EXPECT_THROW(itp::InterpolantExtractor ex(s.proof()), std::invalid_argument);
}

TEST(Itp, VarRangeReportsCoreLabels) {
  sat::Solver s;
  s.enable_proof();
  sat::Var a = s.new_var();
  sat::Var b = s.new_var();
  s.add_clause({sat::mk_lit(a)}, 1);
  s.add_clause({sat::mk_lit(a, true), sat::mk_lit(b)}, 2);
  s.add_clause({sat::mk_lit(b, true)}, 3);
  ASSERT_EQ(s.solve(), sat::Status::kUnsat);
  itp::InterpolantExtractor ex(s.proof());
  std::uint32_t lo = 0, hi = 0;
  ASSERT_TRUE(ex.var_range(a, lo, hi));
  EXPECT_EQ(lo, 1u);
  EXPECT_EQ(hi, 2u);
  EXPECT_TRUE(ex.shared_at(a, 1));
  EXPECT_FALSE(ex.shared_at(a, 2));
  EXPECT_TRUE(ex.shared_at(b, 2));
}

class ItpManyPartitionsTest : public ::testing::TestWithParam<int> {};

TEST_P(ItpManyPartitionsTest, ChainedImplicationsLongSequences) {
  // x1 -> x2 -> ... -> xn with x1 asserted in partition 1, each implication
  // in its own partition, and ~xn last: a "BMC-shaped" refutation whose
  // sequence terms should behave like reachability frontiers.
  const unsigned n = 4 + GetParam();
  PartitionedCnf f;
  f.nvars = n;
  f.clauses.push_back({{sat::mk_lit(0)}, 1});
  for (unsigned i = 0; i + 1 < n; ++i)
    f.clauses.push_back({{sat::mk_lit(i, true), sat::mk_lit(i + 1)}, i + 2});
  f.clauses.push_back({{sat::mk_lit(n - 1, true)}, n + 1});
  verify_sequence(f, n + 1);
}

INSTANTIATE_TEST_SUITE_P(Chains, ItpManyPartitionsTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace itpseq
