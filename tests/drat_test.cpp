// drat_test.cpp — DRAT export from logged resolution proofs, and the
// independent forward RUP checker.
//
// Every UNSAT solver run must export a DRAT proof that the independent
// checker accepts; corrupted proofs (bogus clause, missing suffix, bad
// deletion) must be rejected.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "cnf/unroller.hpp"
#include "bench_circuits/generators.hpp"
#include "sat/drat.hpp"
#include "sat/solver.hpp"

namespace itpseq {
namespace {

using Cnf = std::vector<std::vector<sat::Lit>>;

/// Solve; returns true + DRAT text via `drat` when UNSAT.
bool refute_to_drat(unsigned nvars, const Cnf& cnf, std::string& drat) {
  sat::Solver s;
  s.enable_proof();
  for (unsigned i = 0; i < nvars; ++i) s.new_var();
  for (const auto& c : cnf) s.add_clause(c);
  if (s.solve() != sat::Status::kUnsat) return false;
  std::ostringstream out;
  sat::write_drat(s.proof(), out);
  drat = out.str();
  return true;
}

sat::DratCheckResult check(unsigned nvars, const Cnf& cnf,
                           const std::string& drat) {
  std::istringstream in(drat);
  return sat::check_drat(nvars, cnf, in);
}

TEST(Drat, TrivialContradiction) {
  Cnf cnf = {{sat::mk_lit(0)}, {sat::mk_lit(0, true)}};
  std::string drat;
  ASSERT_TRUE(refute_to_drat(1, cnf, drat));
  sat::DratCheckResult r = check(1, cnf, drat);
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(Drat, PigeonholePrinciple) {
  // PHP(4,3): 4 pigeons in 3 holes — classically hard, small proof here.
  const unsigned pigeons = 4, holes = 3;
  auto v = [&](unsigned p, unsigned h) { return p * holes + h; };
  Cnf cnf;
  for (unsigned p = 0; p < pigeons; ++p) {
    std::vector<sat::Lit> c;
    for (unsigned h = 0; h < holes; ++h) c.push_back(sat::mk_lit(v(p, h)));
    cnf.push_back(c);
  }
  for (unsigned h = 0; h < holes; ++h)
    for (unsigned p1 = 0; p1 < pigeons; ++p1)
      for (unsigned p2 = p1 + 1; p2 < pigeons; ++p2)
        cnf.push_back(
            {sat::mk_lit(v(p1, h), true), sat::mk_lit(v(p2, h), true)});
  std::string drat;
  ASSERT_TRUE(refute_to_drat(pigeons * holes, cnf, drat));
  sat::DratCheckResult r = check(pigeons * holes, cnf, drat);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_GT(r.additions, 0u);
}

class DratRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(DratRandomTest, ExportedProofsVerify) {
  std::mt19937 rng(GetParam());
  unsigned nvars = 6 + rng() % 10;
  unsigned nclauses = static_cast<unsigned>(nvars * 4.6);
  Cnf cnf;
  for (unsigned c = 0; c < nclauses; ++c) {
    unsigned len = 1 + rng() % 3;
    std::vector<sat::Lit> cl;
    for (unsigned k = 0; k < len; ++k)
      cl.push_back(sat::mk_lit(rng() % nvars, rng() % 2));
    cnf.push_back(cl);
  }
  std::string drat;
  if (!refute_to_drat(nvars, cnf, drat)) GTEST_SKIP() << "satisfiable draw";
  sat::DratCheckResult r = check(nvars, cnf, drat);
  EXPECT_TRUE(r.ok) << r.error;
}

INSTANTIATE_TEST_SUITE_P(Random, DratRandomTest, ::testing::Range(0, 60));

TEST(Drat, BmcProofsVerify) {
  // End-to-end: an UNSAT BMC instance of a suite circuit exports a
  // checkable DRAT proof.
  // Input-driven circuit so unit propagation alone cannot refute the
  // instance (the solver must actually search and learn).
  aig::Aig g = bench::queue(5, true);  // PASS property
  sat::Solver s;
  s.set_inprocess(false);  // the point is search-learned clauses in the DRAT
  s.enable_proof();
  cnf::Unroller unr(g, s);
  unr.assert_init(1);
  for (unsigned t = 0; t < 6; ++t) unr.add_transition(t, t + 1);
  s.add_clause({unr.bad_lit(6, 7)}, 7);
  ASSERT_EQ(s.solve(), sat::Status::kUnsat);
  ASSERT_GT(s.stats().conflicts, 0u) << "instance too easy for this test";
  std::ostringstream out;
  sat::write_drat(s.proof(), out);
  // Reconstruct the original clause list from the proof (labels are not
  // needed for DRAT checking).
  Cnf cnf;
  unsigned nvars = static_cast<unsigned>(s.num_vars());
  const sat::Proof& p = s.proof();
  for (sat::ClauseId id = 0; id < p.size(); ++id)
    if (p.is_original(id)) cnf.push_back(p.literals(id));
  std::istringstream in(out.str());
  sat::DratCheckResult r = sat::check_drat(nvars, cnf, in);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_GT(r.additions, 0u);
}

TEST(Drat, RejectsNonRupAddition) {
  Cnf cnf = {{sat::mk_lit(0), sat::mk_lit(1)}};
  // "1 0" claims unit x0 is implied — it is not.
  std::string bogus = "1 0\n0\n";
  sat::DratCheckResult r = check(2, cnf, bogus);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("not RUP"), std::string::npos);
}

TEST(Drat, RejectsTruncatedProof) {
  Cnf cnf = {{sat::mk_lit(0)},
             {sat::mk_lit(0, true), sat::mk_lit(1)},
             {sat::mk_lit(1, true)}};
  // Valid intermediate step but no empty clause.
  std::string truncated = "2 0\n";
  sat::DratCheckResult r = check(2, cnf, truncated);
  // Adding unit x1 to this formula yields a level-0 conflict (x1 and ~x1),
  // so the checker legitimately completes early; use a formula where the
  // prefix does NOT close the proof.
  EXPECT_TRUE(r.ok);  // settle() finds the conflict — still a refutation
  Cnf open_cnf = {{sat::mk_lit(0), sat::mk_lit(1)},
                  {sat::mk_lit(0), sat::mk_lit(1, true)},
                  {sat::mk_lit(0, true), sat::mk_lit(2)}};
  sat::DratCheckResult r2 = check(3, open_cnf, "1 0\n");
  EXPECT_FALSE(r2.ok);
  EXPECT_NE(r2.error.find("without deriving"), std::string::npos);
}

TEST(Drat, DeletionLines) {
  // UNSAT but not by unit propagation alone:
  //   (x0|x1)(x0|~x1)(~x0|x2)(~x0|~x2), plus a redundant (x0|x2).
  Cnf cnf = {{sat::mk_lit(0), sat::mk_lit(1)},
             {sat::mk_lit(0), sat::mk_lit(1, true)},
             {sat::mk_lit(0, true), sat::mk_lit(2)},
             {sat::mk_lit(0, true), sat::mk_lit(2, true)},
             {sat::mk_lit(0), sat::mk_lit(2)}};
  // Harmless deletion of the redundant clause, then a valid refutation:
  // x0 is RUP, and with x0 the two x2 clauses conflict.
  sat::DratCheckResult r = check(3, cnf, "d 1 3 0\n1 0\n0\n");
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.deletions, 1u);
  // Adding x0 already yields a level-0 conflict, so the checker closes the
  // proof before reading the final "0" line.
  EXPECT_EQ(r.additions, 1u);
  // Deleting a clause the proof needs invalidates the next addition.
  sat::DratCheckResult r2 = check(3, cnf, "d 1 -2 0\nd 1 3 0\n1 0\n0\n");
  EXPECT_FALSE(r2.ok);
  EXPECT_EQ(r2.deletions, 2u);
  EXPECT_NE(r2.error.find("not RUP"), std::string::npos);
  // Deleting a clause that was never added must be rejected.
  sat::DratCheckResult r3 = check(3, cnf, "d 1 -3 0\n0\n");
  EXPECT_FALSE(r3.ok);
  EXPECT_NE(r3.error.find("deletion"), std::string::npos);
}

TEST(Drat, IncompleteProofThrowsOnExport) {
  sat::Solver s;
  s.enable_proof();
  s.new_var();
  s.add_clause({sat::mk_lit(0)});
  ASSERT_EQ(s.solve(), sat::Status::kSat);
  std::ostringstream out;
  EXPECT_THROW(sat::write_drat(s.proof(), out), std::invalid_argument);
}

}  // namespace
}  // namespace itpseq
