// cnf_test.cpp — tests for Tseitin encoding and the time-frame unroller.
#include <gtest/gtest.h>

#include <random>

#include "aig/aig.hpp"
#include "bench_circuits/generators.hpp"
#include "cnf/tseitin.hpp"
#include "cnf/unroller.hpp"
#include "mc/sim.hpp"
#include "sat/solver.hpp"

namespace itpseq {
namespace {

TEST(Tseitin, EncodesAgainstTruthTable) {
  std::mt19937 rng(5);
  for (int trial = 0; trial < 25; ++trial) {
    aig::Aig g;
    std::vector<aig::Lit> pool;
    unsigned ni = 2 + rng() % 4;
    for (unsigned i = 0; i < ni; ++i) pool.push_back(g.add_input());
    for (int n = 0; n < 20; ++n) {
      aig::Lit a = pool[rng() % pool.size()] ^ (rng() % 2);
      aig::Lit b = pool[rng() % pool.size()] ^ (rng() % 2);
      pool.push_back(g.make_and(a, b));
    }
    aig::Lit root = pool.back() ^ (rng() % 2);

    // For every input assignment, the encoded literal must be forced to the
    // evaluated value.
    for (std::uint64_t m = 0; m < (1ull << ni); ++m) {
      sat::Solver s;
      std::vector<sat::Var> invars;
      for (unsigned i = 0; i < ni; ++i) invars.push_back(s.new_var());
      cnf::TseitinEncoder enc(g, s, [&](aig::Var v) {
        return sat::mk_lit(invars[g.input_index(v)]);
      });
      sat::Lit rl = enc.encode(root, 0);
      for (unsigned i = 0; i < ni; ++i)
        s.add_clause({sat::mk_lit(invars[i], !((m >> i) & 1))});
      std::vector<bool> vals(g.num_vars(), false);
      for (unsigned i = 0; i < ni; ++i)
        vals[aig::lit_var(g.input(i))] = (m >> i) & 1;
      bool expected = g.evaluate(root, vals);
      // Assert the opposite: must be UNSAT.
      s.add_clause({expected ? sat::neg(rl) : rl});
      EXPECT_EQ(s.solve(), sat::Status::kUnsat) << "trial " << trial << " m=" << m;
    }
  }
}

TEST(Tseitin, ConstantRoots) {
  aig::Aig g;
  (void)g.add_input();
  sat::Solver s;
  cnf::TseitinEncoder enc(g, s, [&](aig::Var) { return sat::mk_lit(s.new_var()); });
  sat::Lit t = enc.encode(aig::kTrue, 0);
  sat::Lit f = enc.encode(aig::kFalse, 0);
  s.add_clause({t});
  s.add_clause({sat::neg(f)});
  EXPECT_EQ(s.solve(), sat::Status::kSat);
}

TEST(Tseitin, LookupReturnsEncodedOnly) {
  aig::Aig g;
  aig::Lit a = g.add_input();
  aig::Lit b = g.add_input();
  aig::Lit x = g.make_and(a, b);
  sat::Solver s;
  cnf::TseitinEncoder enc(g, s, [&](aig::Var) { return sat::mk_lit(s.new_var()); });
  EXPECT_EQ(enc.lookup(x), sat::kNoLit);
  sat::Lit e = enc.encode(x, 0);
  EXPECT_EQ(enc.lookup(x), e);
  EXPECT_EQ(enc.lookup(aig::lit_not(x)), sat::neg(e));
}

// The unrolled CNF must accept exactly the traces the simulator produces.
TEST(Unroller, UnrollingMatchesSimulation) {
  std::mt19937 rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    aig::Aig g = bench::counter(4, 11, 7, /*with_enable=*/true);
    const unsigned k = 1 + rng() % 5;

    sat::Solver s;
    cnf::Unroller unr(g, s);
    unr.assert_init(0);
    for (unsigned t = 0; t < k; ++t) unr.add_transition(t, 0);

    // Pin all inputs to random values.
    mc::Trace trace;
    trace.initial_latches.assign(g.num_latches(), false);
    for (unsigned t = 0; t <= k; ++t) {
      std::vector<bool> in;
      for (std::size_t i = 0; i < g.num_inputs(); ++i) {
        bool v = rng() % 2;
        in.push_back(v);
        sat::Lit l = unr.input_lit(i, t, 0);
        s.add_clause({v ? l : sat::neg(l)});
      }
      trace.inputs.push_back(in);
    }
    ASSERT_EQ(s.solve(), sat::Status::kSat);

    mc::Simulator sim(g, 0);
    mc::SimFrames frames = sim.run(trace);
    for (unsigned t = 0; t <= k; ++t)
      for (std::size_t i = 0; i < g.num_latches(); ++i) {
        sat::Lit l = unr.lookup(g.latch(i), t);
        ASSERT_NE(l, sat::kNoLit);
        bool sat_val =
            sat::lbool_xor(s.model()[sat::var(l)], sat::sign(l)) ==
            sat::LBool::kTrue;
        EXPECT_EQ(sat_val, frames.latches[t][i])
            << "latch " << i << " frame " << t;
      }
  }
}

TEST(Unroller, TargetSchemes) {
  // counter(3, 8, 5): bad at depth exactly 5.
  aig::Aig g = bench::counter(3, 8, 5);
  for (auto scheme : {cnf::TargetScheme::kBound, cnf::TargetScheme::kExact,
                      cnf::TargetScheme::kExactAssume}) {
    // k = 5 must be SAT for every scheme.
    {
      sat::Solver s;
      cnf::Unroller unr(g, s);
      unr.assert_init(0);
      for (unsigned t = 0; t < 5; ++t) unr.add_transition(t, 0);
      unr.assert_target(5, scheme, 0);
      EXPECT_EQ(s.solve(), sat::Status::kSat) << cnf::to_string(scheme);
    }
    // k = 4 must be UNSAT for every scheme.
    {
      sat::Solver s;
      cnf::Unroller unr(g, s);
      unr.assert_init(0);
      for (unsigned t = 0; t < 4; ++t) unr.add_transition(t, 0);
      unr.assert_target(4, scheme, 0);
      EXPECT_EQ(s.solve(), sat::Status::kUnsat) << cnf::to_string(scheme);
    }
  }
  // Exact-k at k = 6 is UNSAT (counter passed 5), bound-k at 6 stays SAT.
  {
    sat::Solver s;
    cnf::Unroller unr(g, s);
    unr.assert_init(0);
    for (unsigned t = 0; t < 6; ++t) unr.add_transition(t, 0);
    unr.assert_target(6, cnf::TargetScheme::kExact, 0);
    EXPECT_EQ(s.solve(), sat::Status::kUnsat);
  }
  {
    sat::Solver s;
    cnf::Unroller unr(g, s);
    unr.assert_init(0);
    for (unsigned t = 0; t < 6; ++t) unr.add_transition(t, 0);
    unr.assert_target(6, cnf::TargetScheme::kBound, 0);
    EXPECT_EQ(s.solve(), sat::Status::kSat);
  }
}

TEST(Unroller, AssumeSchemeExcludesEarlierViolations) {
  // Circuit failing at depths 3 and 6 (counter hits 3, wraps at 8... use
  // bad = count==3 with modulo 5: bad depths 3, 8, 13...).  assume-k at
  // k=8 requires good at 1..7 — but the path *must* pass through count==3
  // at t=3, so assume-8 is UNSAT while exact-8 is SAT.
  aig::Aig g = bench::counter(3, 5, 3);
  {
    sat::Solver s;
    cnf::Unroller unr(g, s);
    unr.assert_init(0);
    for (unsigned t = 0; t < 8; ++t) unr.add_transition(t, 0);
    unr.assert_target(8, cnf::TargetScheme::kExact, 0);
    EXPECT_EQ(s.solve(), sat::Status::kSat);
  }
  {
    sat::Solver s;
    cnf::Unroller unr(g, s);
    unr.assert_init(0);
    for (unsigned t = 0; t < 8; ++t) unr.add_transition(t, 0);
    unr.assert_target(8, cnf::TargetScheme::kExactAssume, 0);
    EXPECT_EQ(s.solve(), sat::Status::kUnsat);
  }
}

TEST(Unroller, VisibilityMaskFreesLatches) {
  // counter(3, 8, 5) with all latches invisible: bad becomes reachable in
  // one step because the counter state is free.
  aig::Aig g = bench::counter(3, 8, 5);
  std::vector<bool> visible(g.num_latches(), false);
  sat::Solver s;
  cnf::Unroller unr(g, s, visible);
  unr.assert_init(0);
  s.add_clause({unr.bad_lit(0, 0)}, 0);
  EXPECT_EQ(s.solve(), sat::Status::kSat);
}

TEST(Unroller, StatePredicateEncoding) {
  aig::Aig g = bench::counter(3, 8, 5);
  // Predicate: count == 2 at frame 0; unrolling one step must make
  // count == 3 at frame 1 (bad for counter with bad_value 3... use lookup).
  aig::Aig sets;
  for (std::size_t i = 0; i < g.num_latches(); ++i) sets.add_input();
  std::vector<aig::Lit> bits;
  for (std::size_t i = 0; i < g.num_latches(); ++i) bits.push_back(sets.input(i));
  aig::Lit pred = bench::equals_const(sets, bits, 2);

  sat::Solver s;
  cnf::Unroller unr(g, s);
  sat::Lit pl = unr.encode_state_pred(sets, pred, 0, 0);
  s.add_clause({pl}, 0);
  unr.add_transition(0, 0);
  ASSERT_EQ(s.solve(), sat::Status::kSat);
  // Frame-1 latches must read 3.
  unsigned value = 0;
  for (std::size_t i = 0; i < g.num_latches(); ++i) {
    sat::Lit l = unr.lookup(g.latch(i), 1);
    if (sat::lbool_xor(s.model()[sat::var(l)], sat::sign(l)) == sat::LBool::kTrue)
      value |= 1u << i;
  }
  EXPECT_EQ(value, 3u);
}

TEST(Unroller, FrameOrderEnforced) {
  aig::Aig g = bench::counter(3, 8, 5);
  sat::Solver s;
  cnf::Unroller unr(g, s);
  EXPECT_THROW(unr.add_transition(1, 0), std::logic_error);
  EXPECT_THROW(unr.lit(g.latch(0), 3, 0), std::out_of_range);
}

}  // namespace
}  // namespace itpseq
