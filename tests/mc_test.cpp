// mc_test.cpp — integration tests for the model-checking engines.
//
// Every engine (ITP, ITPSEQ, SITPSEQ, ITPSEQCBA, BMC) is run across the
// academic benchmark suite and must agree with the analytically expected
// verdict; counterexamples are replayed on the concrete model; failure
// depths must be the shallowest ones.
#include <gtest/gtest.h>

#include <functional>

#include "bench_circuits/generators.hpp"
#include "bench_circuits/suite.hpp"
#include "mc/engine.hpp"
#include "mc/sim.hpp"

namespace itpseq::mc {
namespace {

using bench::Expected;
using bench::Instance;

void expect_result(const Instance& inst, const EngineResult& r) {
  if (r.verdict == Verdict::kUnknown) {
    // Budget exhaustion is acceptable, never a wrong verdict.
    return;
  }
  if (inst.expected == Expected::kPass) {
    EXPECT_EQ(r.verdict, Verdict::kPass) << inst.name << " via " << r.engine;
  } else if (inst.expected == Expected::kFail) {
    ASSERT_EQ(r.verdict, Verdict::kFail) << inst.name << " via " << r.engine;
    EXPECT_TRUE(trace_is_cex(inst.model, r.cex, 0))
        << inst.name << " via " << r.engine << ": spurious counterexample";
    if (inst.fail_depth >= 0) {
      EXPECT_EQ(r.cex.depth(), static_cast<unsigned>(inst.fail_depth))
          << inst.name << " via " << r.engine << ": not the shallowest cex";
    }
  }
}

EngineOptions quick_opts() {
  EngineOptions o;
  o.time_limit_sec = 25.0;
  o.max_bound = 80;
  return o;
}

class EngineSuiteTest
    : public ::testing::TestWithParam<std::tuple<int, unsigned>> {};

TEST_P(EngineSuiteTest, AgreesWithExpectedVerdict) {
  auto [engine_id, index] = GetParam();
  auto suite = bench::make_academic_suite(34);
  if (index >= suite.size()) GTEST_SKIP() << "index beyond suite";
  const Instance& inst = suite[index];
  EngineOptions opts = quick_opts();
  EngineResult r;
  switch (engine_id) {
    case 0:
      r = check_itp(inst.model, 0, opts);
      break;
    case 1:
      r = check_itpseq(inst.model, 0, opts);
      break;
    case 2:
      r = check_sitpseq(inst.model, 0, opts);
      break;
    case 3:
      r = check_itpseq_cba(inst.model, 0, opts);
      break;
    default:
      r = check_bmc(inst.model, 0, opts);
      break;
  }
  if (engine_id == 4 && inst.expected == Expected::kPass)
    EXPECT_NE(r.verdict, Verdict::kFail) << "BMC cannot fail a safe model";
  else
    expect_result(inst, r);
}

std::string engine_param_name(
    const ::testing::TestParamInfo<std::tuple<int, unsigned>>& info) {
  static const char* const names[] = {"itp", "itpseq", "sitpseq", "cba", "bmc"};
  return std::string(names[std::get<0>(info.param)]) + "_" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllEngines, EngineSuiteTest,
    ::testing::Combine(::testing::Range(0, 5), ::testing::Range(0u, 64u)),
    engine_param_name);

// --- targeted engine behaviours ---------------------------------------------

TEST(Engines, Depth0Failure) {
  // Latch initialized to 1 with bad = latch: fails at depth 0.
  aig::Aig g;
  aig::Lit l = g.add_latch(aig::LatchInit::kOne);
  g.set_latch_next(l, l);
  g.add_output(l);
  for (auto check : {check_itp, check_itpseq}) {
    EngineResult r = check(g, 0, quick_opts());
    EXPECT_EQ(r.verdict, Verdict::kFail);
    EXPECT_EQ(r.k_fp, 0u);
    EXPECT_TRUE(trace_is_cex(g, r.cex, 0));
  }
}

TEST(Engines, ConstantFalseProperty) {
  aig::Aig g;
  aig::Lit l = g.add_latch();
  g.set_latch_next(l, l);
  g.add_output(aig::kFalse);
  EXPECT_EQ(check_itpseq(g, 0, quick_opts()).verdict, Verdict::kPass);
}

TEST(Engines, ConstantTrueProperty) {
  aig::Aig g;
  aig::Lit l = g.add_latch();
  g.set_latch_next(l, l);
  g.add_output(aig::kTrue);
  EngineResult r = check_itpseq(g, 0, quick_opts());
  EXPECT_EQ(r.verdict, Verdict::kFail);
  EXPECT_EQ(r.k_fp, 0u);
}

TEST(Engines, MissingPropertyIndexPasses) {
  aig::Aig g;
  aig::Lit l = g.add_latch();
  g.set_latch_next(l, l);
  EXPECT_EQ(check_itpseq(g, 7, quick_opts()).verdict, Verdict::kPass);
}

TEST(Engines, TimeBudgetRespected) {
  // A large instance with a microscopic budget must come back quickly —
  // either UNKNOWN or a (correct) early verdict, never running long.
  aig::Aig g = bench::industrial(56, 14, 0, 10, 501);
  EngineOptions opts;
  opts.time_limit_sec = 0.02;
  auto t0 = std::chrono::steady_clock::now();
  EngineResult r = check_itpseq(g, 0, opts);
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_NE(r.verdict, Verdict::kFail);
  EXPECT_LT(elapsed, 10.0);
}

TEST(Engines, MaxBoundRespected) {
  // ring32 reach: cex at depth 31, but max_bound 5 forbids finding it.
  aig::Aig g = bench::token_ring(32, true);
  EngineOptions opts = quick_opts();
  opts.max_bound = 5;
  EngineResult r = check_itpseq(g, 0, opts);
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
}

TEST(Engines, SerialAlphaOneIsFullySerial) {
  EngineOptions opts = quick_opts();
  opts.serial_alpha = 1.0;
  aig::Aig g = bench::token_ring(8, false);
  EngineResult r = check_sitpseq(g, 0, opts);
  EXPECT_EQ(r.verdict, Verdict::kPass);
}

TEST(Engines, ExactSchemeAlsoSound) {
  EngineOptions opts = quick_opts();
  opts.scheme = cnf::TargetScheme::kExact;
  for (bool fail : {false, true}) {
    aig::Aig g = bench::token_ring(6, fail);
    EngineResult r = check_itpseq(g, 0, opts);
    EXPECT_EQ(r.verdict, fail ? Verdict::kFail : Verdict::kPass);
    if (fail) {
      EXPECT_TRUE(trace_is_cex(g, r.cex, 0));
    }
  }
}

TEST(Engines, CbaRefinesOnlyRelevantLatches) {
  // Pipeline noise around a small counter: CBA must converge with far fewer
  // visible latches than the full design.
  aig::Aig g = bench::industrial(16, 4, 0, 6, 55);
  EngineOptions opts = quick_opts();
  EngineResult r = check_itpseq_cba(g, 0, opts);
  ASSERT_EQ(r.verdict, Verdict::kPass);
  EXPECT_LT(r.stats.cba_visible_latches, g.num_latches() / 2)
      << "abstraction refined nearly everything";
}

TEST(Engines, CbaFindsDeepCex) {
  aig::Aig g = bench::industrial(16, 4, 1, 6, 56);
  EngineResult r = check_itpseq_cba(g, 0, quick_opts());
  ASSERT_EQ(r.verdict, Verdict::kFail);
  EXPECT_TRUE(trace_is_cex(g, r.cex, 0));
  EXPECT_EQ(r.cex.depth(), 6u);
}

TEST(Engines, UndefResetLatchHandled) {
  // Latch with X reset feeding the property: engines must treat reset as
  // nondeterministic.
  aig::Aig g;
  aig::Lit l = g.add_latch(aig::LatchInit::kUndef);
  aig::Lit m = g.add_latch(aig::LatchInit::kZero);
  g.set_latch_next(l, l);
  g.set_latch_next(m, l);
  g.add_output(m);  // reachable iff l starts at 1 -> FAIL at depth 1
  using CheckFn = std::function<EngineResult()>;
  for (const CheckFn& check :
       {CheckFn([&] { return check_itp(g, 0, quick_opts()); }),
        CheckFn([&] { return check_itpseq(g, 0, quick_opts()); }),
        CheckFn([&] { return check_sitpseq(g, 0, quick_opts()); })}) {
    EngineResult r = check();
    ASSERT_EQ(r.verdict, Verdict::kFail);
    EXPECT_TRUE(trace_is_cex(g, r.cex, 0));
  }
}

TEST(Engines, PassVerdictsHaveFixpointDepths) {
  aig::Aig g = bench::token_ring(8, false);
  EngineResult r = check_itpseq(g, 0, quick_opts());
  ASSERT_EQ(r.verdict, Verdict::kPass);
  EXPECT_GE(r.k_fp, 1u);
  EXPECT_GE(r.j_fp, 1u);
  EXPECT_LE(r.j_fp, r.k_fp);
}

TEST(Engines, CompactionPreservesVerdicts) {
  // Force aggressive state-set garbage collection every bound; results
  // must be identical to the default.
  EngineOptions opts = quick_opts();
  opts.compact_threshold = 1;
  for (bool fail : {false, true}) {
    aig::Aig g = bench::token_ring(10, fail);
    EngineResult seq = check_itpseq(g, 0, opts);
    EngineResult itp = check_itp(g, 0, opts);
    EXPECT_EQ(seq.verdict, fail ? Verdict::kFail : Verdict::kPass);
    EXPECT_EQ(itp.verdict, fail ? Verdict::kFail : Verdict::kPass);
  }
  aig::Aig cnt = bench::counter(4, 11, 13);
  EngineResult r = check_sitpseq(cnt, 0, opts);
  EXPECT_EQ(r.verdict, Verdict::kPass);
}

TEST(Engines, StatsPopulated) {
  aig::Aig g = bench::counter(4, 11, 13);
  EngineResult r = check_itpseq(g, 0, quick_opts());
  ASSERT_EQ(r.verdict, Verdict::kPass);
  EXPECT_GT(r.stats.sat_calls, 0u);
  EXPECT_GT(r.stats.proof_clauses, 0u);
}

// --- simulator --------------------------------------------------------------

TEST(Simulator, StepAndBad) {
  aig::Aig g = bench::counter(3, 8, 5);
  Simulator sim(g, 0);
  std::vector<bool> s = sim.reset_state();
  std::vector<bool> no_in;
  for (int t = 0; t < 5; ++t) {
    EXPECT_FALSE(sim.bad(s, no_in)) << t;
    s = sim.step(s, no_in);
  }
  EXPECT_TRUE(sim.bad(s, no_in));
}

TEST(Simulator, TraceRun) {
  aig::Aig g = bench::queue(4, /*guarded=*/false);
  Trace t;
  t.initial_latches.assign(g.num_latches(), false);
  // push every cycle for 5 cycles -> count reaches 5 = capacity+1 -> bad.
  for (int i = 0; i < 6; ++i) t.inputs.push_back({true, false});
  SimFrames f = Simulator(g, 0).run(t);
  EXPECT_FALSE(f.bad.front());
  EXPECT_TRUE(f.bad[5]);
}

}  // namespace
}  // namespace itpseq::mc
