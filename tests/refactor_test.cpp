// refactor_test.cpp — ISOP (Minato-Morreale) computation and the
// collapse-and-refactor AIG pass.
#include <gtest/gtest.h>

#include <random>

#include "aig/aig.hpp"
#include "opt/fraig.hpp"
#include "opt/refactor.hpp"

namespace itpseq {
namespace {

constexpr std::uint64_t kVarPat[6] = {
    0xaaaaaaaaaaaaaaaaull, 0xccccccccccccccccull, 0xf0f0f0f0f0f0f0f0ull,
    0xff00ff00ff00ff00ull, 0xffff0000ffff0000ull, 0xffffffff00000000ull,
};

/// Canonical 64-bit table over nvars variables: mask to the meaningful low
/// 2^nvars bits, then replicate.
std::uint64_t rep(std::uint64_t t, unsigned nvars) {
  if (nvars < 6) t &= (1ull << (1u << nvars)) - 1;
  for (unsigned i = nvars; i < 6; ++i) t |= t << (1u << i);
  return t;
}

// --- ISOP --------------------------------------------------------------------

TEST(Isop, Constants) {
  EXPECT_TRUE(opt::isop(0, 0, 3).empty());
  std::vector<opt::Cube> taut = opt::isop(~0ull, ~0ull, 3);
  ASSERT_EQ(taut.size(), 1u);
  EXPECT_EQ(taut[0].pos, 0);
  EXPECT_EQ(taut[0].neg, 0);
}

TEST(Isop, SingleVariable) {
  std::uint64_t x0 = kVarPat[0];
  std::vector<opt::Cube> c = opt::isop(x0, x0, 2);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0].pos, 1u);
  EXPECT_EQ(c[0].neg, 0u);
  EXPECT_EQ(opt::sop_table(c, 2), x0);
}

TEST(Isop, ConsensusTermDropped) {
  // f = ab + !ac (+ the redundant consensus bc): the ISOP must have
  // exactly two cubes.
  std::uint64_t a = kVarPat[0], b = kVarPat[1], c = kVarPat[2];
  std::uint64_t f = (a & b) | (~a & c) | (b & c);
  std::vector<opt::Cube> cubes = opt::isop(f, f, 3);
  EXPECT_EQ(cubes.size(), 2u);
  EXPECT_EQ(opt::sop_table(cubes, 3), f);
}

TEST(Isop, DontCaresShrinkTheCover) {
  // lower = minterm a&b&c, upper = a: one cube "a" suffices.
  std::uint64_t a = kVarPat[0], b = kVarPat[1], c = kVarPat[2];
  std::vector<opt::Cube> cubes = opt::isop(a & b & c, a, 3);
  ASSERT_EQ(cubes.size(), 1u);
  EXPECT_EQ(cubes[0].pos, 1u);
  std::uint64_t g = opt::sop_table(cubes, 3);
  EXPECT_EQ((a & b & c) & ~g, 0u);  // covers lower
  EXPECT_EQ(g & ~a, 0u);            // within upper
}

class IsopRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(IsopRandomTest, CoverLandsBetweenBounds) {
  std::mt19937_64 rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    unsigned nvars = 1 + rng() % 6;
    std::uint64_t f = rep(rng(), nvars);
    std::uint64_t dc = rep(rng() & rng(), nvars);  // sparse don't-cares
    std::uint64_t lower = f & ~dc, upper = f | dc;
    std::vector<opt::Cube> cubes = opt::isop(lower, upper, nvars);
    std::uint64_t g = opt::sop_table(cubes, nvars);
    EXPECT_EQ(lower & ~g, 0u) << "lower not covered";
    EXPECT_EQ(g & ~upper, 0u) << "upper exceeded";
    // Irredundancy: dropping any cube must uncover some lower minterm.
    for (std::size_t i = 0; i < cubes.size(); ++i) {
      std::vector<opt::Cube> rest = cubes;
      rest.erase(rest.begin() + i);
      EXPECT_NE(lower & ~opt::sop_table(rest, nvars), 0u)
          << "cube " << i << " is redundant";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, IsopRandomTest, ::testing::Range(0, 20));

// --- refactor pass -------------------------------------------------------------

/// Random redundant cone (same shape as opt_test.cpp).
std::pair<aig::Aig, aig::Lit> random_cone(std::uint32_t seed,
                                          unsigned leaves = 8,
                                          unsigned gates = 50) {
  std::mt19937 rng(seed);
  aig::Aig g;
  std::vector<aig::Lit> pool;
  for (unsigned i = 0; i < leaves; ++i) pool.push_back(g.add_input());
  for (unsigned n = 0; n < gates; ++n) {
    aig::Lit a = pool[rng() % pool.size()] ^ (rng() % 2);
    aig::Lit b = pool[rng() % pool.size()] ^ (rng() % 2);
    switch (rng() % 3) {
      case 0: pool.push_back(g.make_and(a, b)); break;
      case 1: pool.push_back(g.make_or(a, b)); break;
      default: pool.push_back(g.make_xor(a, b)); break;
    }
  }
  return {std::move(g), pool.back()};
}

TEST(Refactor, RemovesConsensusRedundancy) {
  // f = ab + !ac + bc built structurally: refactoring must find the
  // 2-cube cover (2 AND per cube + OR tree beats the 3-term original).
  aig::Aig g;
  aig::Lit a = g.add_input(), b = g.add_input(), c = g.add_input();
  aig::Lit f = g.make_or(
      g.make_or(g.make_and(a, b), g.make_and(aig::lit_not(a), c)),
      g.make_and(b, c));
  std::size_t before = g.cone_size(f);
  aig::CompactResult r = opt::refactor(g, {f});
  EXPECT_LT(r.graph.cone_size(r.roots[0]), before);
  auto eq = opt::equivalent(
      r.graph, r.roots[0],
      [&] {
        aig::Lit a2 = r.graph.input(0), b2 = r.graph.input(1),
                 c2 = r.graph.input(2);
        return r.graph.make_or(r.graph.make_and(a2, b2),
                               r.graph.make_and(aig::lit_not(a2), c2));
      }());
  ASSERT_TRUE(eq.has_value());
  EXPECT_TRUE(*eq);
}

TEST(Refactor, ComplementPolarityChosenWhenSmaller) {
  // f = !(abc): positive SOP has 3 cubes (!a + !b + !c as OR), while the
  // complement is one cube — the pass must stay small either way.
  aig::Aig g;
  aig::Lit a = g.add_input(), b = g.add_input(), c = g.add_input();
  aig::Lit f = aig::lit_not(g.make_and(g.make_and(a, b), c));
  aig::CompactResult r = opt::refactor(g, {f});
  EXPECT_LE(r.graph.cone_size(r.roots[0]), 2u);
}

TEST(Refactor, ConstantCollapses) {
  // (a XOR a') style hidden constant within 6 support vars.
  aig::Aig g;
  aig::Lit a = g.add_input(), b = g.add_input();
  aig::Lit f = g.make_and(g.make_or(a, b),
                          g.make_or(aig::lit_not(a), b));  // == b
  aig::CompactResult r = opt::refactor(g, {f});
  EXPECT_EQ(r.roots[0], r.graph.input(1));
}

class RefactorRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(RefactorRandomTest, PreservesSemantics) {
  auto [g, root] = random_cone(5000 + GetParam());
  aig::CompactResult r = opt::refactor(g, {root});
  // 64-way co-simulation over 16 rounds.
  std::mt19937_64 rng(GetParam());
  for (int round = 0; round < 16; ++round) {
    std::vector<std::uint64_t> vg(g.num_vars(), 0), vh(r.graph.num_vars(), 0);
    for (std::size_t i = 0; i < g.num_inputs(); ++i) {
      std::uint64_t w = rng();
      vg[aig::lit_var(g.input(i))] = w;
      vh[aig::lit_var(r.graph.input(i))] = w;
    }
    ASSERT_EQ(g.evaluate64(root, vg), r.graph.evaluate64(r.roots[0], vh))
        << "seed " << GetParam() << " round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Random, RefactorRandomTest, ::testing::Range(0, 60));

class RefactorMultiRootTest : public ::testing::TestWithParam<int> {};

TEST_P(RefactorMultiRootTest, NeverGrowsSharedLogic) {
  // Regression: the per-node acceptance heuristic overcounts logic shared
  // between roots, which used to duplicate shared structure and grow the
  // total.  The global guard must keep the live AND count non-increasing.
  std::mt19937 rng(7000 + GetParam());
  aig::Aig g;
  std::vector<aig::Lit> pool;
  for (int i = 0; i < 6; ++i) pool.push_back(g.add_input());
  for (int n = 0; n < 40; ++n) {
    aig::Lit a = pool[rng() % pool.size()] ^ (rng() % 2);
    aig::Lit b = pool[rng() % pool.size()] ^ (rng() % 2);
    pool.push_back(rng() % 2 ? g.make_and(a, b) : g.make_xor(a, b));
  }
  std::vector<aig::Lit> roots;  // several roots sharing the pool
  for (int r = 0; r < 5; ++r)
    roots.push_back(pool[pool.size() - 1 - 2 * r]);
  auto live = [](const aig::Aig& graph, const std::vector<aig::Lit>& rs) {
    std::size_t n = 0;
    for (aig::Var v : graph.cone(rs))
      if (graph.is_and(v)) ++n;
    return n;
  };
  aig::CompactResult r = opt::refactor(g, roots);
  EXPECT_LE(live(r.graph, r.roots), live(g, roots));
  // Semantics per root.
  std::mt19937_64 rng64(GetParam());
  for (int round = 0; round < 8; ++round) {
    std::vector<std::uint64_t> vg(g.num_vars(), 0), vh(r.graph.num_vars(), 0);
    for (std::size_t i = 0; i < g.num_inputs(); ++i) {
      std::uint64_t w = rng64();
      vg[aig::lit_var(g.input(i))] = w;
      vh[aig::lit_var(r.graph.input(i))] = w;
    }
    for (std::size_t i = 0; i < roots.size(); ++i)
      ASSERT_EQ(g.evaluate64(roots[i], vg),
                r.graph.evaluate64(r.roots[i], vh))
          << "root " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Random, RefactorMultiRootTest,
                         ::testing::Range(0, 30));

TEST(Refactor, WorksOnWideSupports) {
  // Support wider than kMaxSupport: only inner small cones are touched;
  // semantics must hold (checked by exact SAT on the joint graph).
  auto [g, root] = random_cone(99, 12, 80);
  aig::CompactResult r = opt::refactor(g, {root});
  aig::Aig joint;
  for (std::size_t i = 0; i < g.num_inputs(); ++i) joint.add_input();
  std::vector<aig::Lit> m1(g.num_vars(), aig::kNullLit);
  std::vector<aig::Lit> m2(r.graph.num_vars(), aig::kNullLit);
  for (std::size_t i = 0; i < g.num_inputs(); ++i) {
    m1[aig::lit_var(g.input(i))] = joint.input(i);
    m2[aig::lit_var(r.graph.input(i))] = joint.input(i);
  }
  aig::Lit j1 = joint.import_cone(g, root, m1);
  aig::Lit j2 = joint.import_cone(r.graph, r.roots[0], m2);
  auto eq = opt::equivalent(joint, j1, j2);
  ASSERT_TRUE(eq.has_value());
  EXPECT_TRUE(*eq);
}

}  // namespace
}  // namespace itpseq
