// ternary_test.cpp — unit tests for the three-valued AIG simulator behind
// PDR's cube lifting: Kleene semantics, X-propagation through AND / latch /
// constraint cones, event-driven try_latch_x with undo, and agreement with
// the concrete Simulator on fully-defined assignments.
#include <gtest/gtest.h>

#include "bench_circuits/generators.hpp"
#include "bench_circuits/suite.hpp"
#include "mc/sim.hpp"
#include "mc/ternary.hpp"

namespace itpseq::mc {
namespace {

TEST(Ternary, KleeneOperators) {
  using enum TernVal;
  EXPECT_EQ(tern_and(kFalse, kX), kFalse);  // 0 dominates X
  EXPECT_EQ(tern_and(kX, kFalse), kFalse);
  EXPECT_EQ(tern_and(kTrue, kX), kX);  // 1 is neutral
  EXPECT_EQ(tern_and(kX, kTrue), kX);
  EXPECT_EQ(tern_and(kX, kX), kX);
  EXPECT_EQ(tern_and(kTrue, kTrue), kTrue);
  EXPECT_EQ(tern_and(kTrue, kFalse), kFalse);
  EXPECT_EQ(tern_not(kX), kX);
  EXPECT_EQ(tern_not(kTrue), kFalse);
  EXPECT_EQ(tern_not(kFalse), kTrue);
}

TEST(Ternary, XPropagatesThroughAndCone) {
  aig::Aig g;
  aig::Lit a = g.add_latch(aig::LatchInit::kZero, "a");
  aig::Lit b = g.add_latch(aig::LatchInit::kZero, "b");
  aig::Lit c = g.add_input("c");
  aig::Lit ab = g.make_and(a, b);
  aig::Lit root = g.make_and(ab, c);
  g.set_latch_next(a, a);
  g.set_latch_next(b, b);
  g.add_output(root, "bad");

  TernarySim sim(g, {root});
  sim.set_latch(0, TernVal::kTrue);
  sim.set_latch(1, TernVal::kX);
  sim.set_input(0, TernVal::kTrue);
  sim.simulate();
  EXPECT_EQ(sim.value(ab), TernVal::kX);    // 1 AND X = X
  EXPECT_EQ(sim.value(root), TernVal::kX);  // X AND 1 = X
  // Forcing the other AND leg to 0 masks the X.
  sim.set_input(0, TernVal::kFalse);
  sim.simulate();
  EXPECT_EQ(sim.value(root), TernVal::kFalse);
  EXPECT_EQ(sim.value(aig::lit_not(root)), TernVal::kTrue);
}

TEST(Ternary, TryLatchXCommitsWhenRootsStayDefined) {
  // root = a AND NOT b with b = 1: root is 0 via b regardless of a, so a
  // can be X-ed; b cannot.
  aig::Aig g;
  aig::Lit a = g.add_latch(aig::LatchInit::kZero, "a");
  aig::Lit b = g.add_latch(aig::LatchInit::kZero, "b");
  aig::Lit root = g.make_and(a, aig::lit_not(b));
  g.set_latch_next(a, a);
  g.set_latch_next(b, b);

  TernarySim sim(g, {root});
  sim.set_watches({root});
  sim.assign({true, true}, {});
  EXPECT_EQ(sim.value(root), TernVal::kFalse);
  EXPECT_TRUE(sim.watches_defined());

  EXPECT_TRUE(sim.try_latch_x(0));  // a drops: b keeps root at 0
  EXPECT_EQ(sim.value(a), TernVal::kX);
  EXPECT_EQ(sim.value(root), TernVal::kFalse);

  // b is now the only support of a defined root: the try must fail and
  // must restore every node value it touched.
  EXPECT_FALSE(sim.try_latch_x(1));
  EXPECT_EQ(sim.value(b), TernVal::kTrue);
  EXPECT_EQ(sim.value(root), TernVal::kFalse);
  EXPECT_TRUE(sim.watches_defined());
}

TEST(Ternary, LatchNextAndConstraintRootsGuardLifting) {
  // Next-state cone as the watched root (the consecution-query shape):
  // next(t) = t XOR en. With en = 0, next(t) = t, so t must be kept and
  // the unrelated latch u dropped.  A constraint root keeps its own
  // support alive the same way.
  aig::Aig g;
  aig::Lit en = g.add_input("en");
  aig::Lit t = g.add_latch(aig::LatchInit::kZero, "t");
  aig::Lit u = g.add_latch(aig::LatchInit::kZero, "u");
  aig::Lit cst = g.add_latch(aig::LatchInit::kZero, "cst");
  g.set_latch_next(t, g.make_xor(t, en));
  g.set_latch_next(u, u);
  g.set_latch_next(cst, cst);
  g.add_constraint(cst);

  std::vector<aig::Lit> roots{g.latch_next(0), g.constraint(0)};
  TernarySim sim(g, roots);
  sim.set_watches(roots);
  sim.assign({true, true, true}, {false});
  EXPECT_EQ(sim.value(g.latch_next(0)), TernVal::kTrue);

  EXPECT_TRUE(sim.try_latch_x(1));   // u: outside both cones
  EXPECT_FALSE(sim.try_latch_x(0));  // t: feeds its own next state
  EXPECT_FALSE(sim.try_latch_x(2));  // cst: feeds the constraint root
  EXPECT_TRUE(sim.watches_defined());
}

TEST(Ternary, AgreesWithConcreteSimulatorOnDefinedInputs) {
  // On fully-defined assignments ternary simulation must reproduce the
  // concrete simulator exactly: bad output, constraints, and every
  // next-state function, across randomized suite instances.
  std::uint64_t rng = 0x9e3779b97f4a7c15ull;
  auto next_bit = [&rng]() {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return (rng >> 33 & 1ull) != 0;
  };
  unsigned checked = 0;
  for (const auto& inst : bench::make_academic_suite(24)) {
    const aig::Aig& g = inst.model;
    std::vector<aig::Lit> roots{g.output(0)};
    for (std::size_t i = 0; i < g.num_latches(); ++i)
      roots.push_back(g.latch_next(i));
    for (std::size_t i = 0; i < g.num_constraints(); ++i)
      roots.push_back(g.constraint(i));
    TernarySim tsim(g, roots);
    Simulator csim(g, 0);
    std::vector<bool> latches(g.num_latches());
    for (unsigned round = 0; round < 8; ++round) {
      std::vector<bool> inputs(g.num_inputs());
      for (std::size_t i = 0; i < latches.size(); ++i) latches[i] = next_bit();
      for (std::size_t i = 0; i < inputs.size(); ++i) inputs[i] = next_bit();
      tsim.assign(latches, inputs);
      EXPECT_EQ(tsim.value(g.output(0)),
                tern_of(csim.bad(latches, inputs)))
          << inst.name;
      EXPECT_EQ(tsim.value(aig::kTrue), TernVal::kTrue);
      std::vector<bool> next = csim.step(latches, inputs);
      for (std::size_t i = 0; i < g.num_latches(); ++i)
        ASSERT_EQ(tsim.value(g.latch_next(i)), tern_of(next[i]))
            << inst.name << " latch " << i << " round " << round;
      ++checked;
    }
  }
  EXPECT_GT(checked, 100u);
}

TEST(Ternary, LiftedCubeStillForcesRootsOnRandomCircuits) {
  // Property test of the lifting contract: after greedily X-ing latches,
  // every concrete completion of the remaining cube (we test the all-0 and
  // all-1 completions plus random ones) still produces the watched root
  // values.
  std::uint64_t rng = 0xdeadbeefcafef00dull;
  auto next_bit = [&rng]() {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return (rng >> 33 & 1ull) != 0;
  };
  for (const auto& inst : bench::make_academic_suite(20)) {
    const aig::Aig& g = inst.model;
    std::vector<aig::Lit> roots{g.output(0)};
    for (std::size_t i = 0; i < g.num_latches(); ++i)
      roots.push_back(g.latch_next(i));
    TernarySim tsim(g, roots);
    Simulator csim(g, 0);
    std::vector<bool> latches(g.num_latches()), inputs(g.num_inputs());
    for (std::size_t i = 0; i < latches.size(); ++i) latches[i] = next_bit();
    for (std::size_t i = 0; i < inputs.size(); ++i) inputs[i] = next_bit();
    tsim.set_watches(roots);
    tsim.assign(latches, inputs);
    bool bad0 = csim.bad(latches, inputs);
    std::vector<bool> next0 = csim.step(latches, inputs);
    std::vector<bool> kept(g.num_latches(), false);
    for (std::size_t i = 0; i < g.num_latches(); ++i)
      if (!tsim.try_latch_x(i)) kept[i] = true;
    for (unsigned round = 0; round < 4; ++round) {
      std::vector<bool> filled(g.num_latches());
      for (std::size_t i = 0; i < filled.size(); ++i)
        filled[i] = kept[i] ? latches[i]
                            : (round == 0 ? false
                                          : round == 1 ? true : next_bit());
      EXPECT_EQ(csim.bad(filled, inputs), bad0) << inst.name;
      EXPECT_EQ(csim.step(filled, inputs), next0) << inst.name;
    }
  }
}

}  // namespace
}  // namespace itpseq::mc
