// sat_test.cpp — unit and property tests for the CDCL solver and its
// resolution proof logging.
#include <gtest/gtest.h>

#include <random>

#include "sat/proof_check.hpp"
#include "sat/solver.hpp"

namespace itpseq::sat {
namespace {

Lit pos(Var v) { return mk_lit(v, false); }
Lit negl(Var v) { return mk_lit(v, true); }

TEST(Sat, TrivialSat) {
  Solver s;
  Var a = s.new_var();
  s.add_clause({pos(a)});
  EXPECT_EQ(s.solve(), Status::kSat);
  EXPECT_TRUE(s.model_value(a));
  EXPECT_TRUE(s.verify_model());
}

TEST(Sat, TrivialUnsat) {
  Solver s;
  s.enable_proof();
  Var a = s.new_var();
  s.add_clause({pos(a)});
  s.add_clause({negl(a)});
  EXPECT_EQ(s.solve(), Status::kUnsat);
  auto res = check_proof(s.proof());
  EXPECT_TRUE(res.ok) << res.error;
}

TEST(Sat, EmptyClauseUnsat) {
  Solver s;
  s.enable_proof();
  (void)s.new_var();
  EXPECT_FALSE(s.add_clause({}));
  EXPECT_EQ(s.solve(), Status::kUnsat);
  EXPECT_TRUE(check_proof(s.proof()).ok);
}

TEST(Sat, TautologyIgnored) {
  Solver s;
  Var a = s.new_var();
  s.add_clause({pos(a), negl(a)});
  EXPECT_EQ(s.solve(), Status::kSat);
}

TEST(Sat, DuplicateLiteralsDeduped) {
  Solver s;
  Var a = s.new_var(), b = s.new_var();
  s.add_clause({pos(a), pos(a), pos(b)});
  s.add_clause({negl(a)});
  s.add_clause({negl(b), pos(a)});
  EXPECT_EQ(s.solve(), Status::kUnsat);
}

TEST(Sat, PigeonHole3) {
  // 4 pigeons, 3 holes: classic small UNSAT with a nontrivial proof.
  Solver s;
  s.enable_proof();
  Var p[4][3];
  for (auto& row : p)
    for (auto& v : row) v = s.new_var();
  for (int i = 0; i < 4; ++i)
    s.add_clause({pos(p[i][0]), pos(p[i][1]), pos(p[i][2])}, i);
  for (int h = 0; h < 3; ++h)
    for (int i = 0; i < 4; ++i)
      for (int j = i + 1; j < 4; ++j)
        s.add_clause({negl(p[i][h]), negl(p[j][h])}, 7);
  EXPECT_EQ(s.solve(), Status::kUnsat);
  auto res = check_proof(s.proof());
  EXPECT_TRUE(res.ok) << res.error;
  EXPECT_GT(s.proof().core().size(), 5u);
}

TEST(Sat, ConflictBudgetReturnsUnknown) {
  // A hard instance with a 0-conflict budget must come back unknown.
  Solver s;
  Var v[10];
  for (auto& x : v) x = s.new_var();
  std::mt19937 rng(3);
  for (int c = 0; c < 42; ++c) {
    std::vector<Lit> cl;
    for (int k = 0; k < 3; ++k) cl.push_back(mk_lit(v[rng() % 10], rng() % 2));
    s.add_clause(cl);
  }
  Budget b;
  b.conflicts = 1;
  Status st = s.solve(b);
  EXPECT_TRUE(st == Status::kUnknown || st == Status::kSat ||
              st == Status::kUnsat);  // tiny instances may finish anyway
}

// Brute-force reference: enumerate all assignments.
bool brute_force_sat(unsigned nvars, const std::vector<std::vector<Lit>>& cls) {
  for (std::uint64_t m = 0; m < (1ull << nvars); ++m) {
    bool all = true;
    for (const auto& c : cls) {
      bool sat = false;
      for (Lit l : c)
        if (((m >> var(l)) & 1) != sign(l)) {
          sat = true;
          break;
        }
      if (!sat) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

class SatRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SatRandomTest, MatchesBruteForceAndProofsCheck) {
  std::mt19937 rng(GetParam());
  const unsigned nvars = 8 + rng() % 6;  // 8..13
  const unsigned nclauses =
      static_cast<unsigned>(nvars * (3.5 + (rng() % 20) / 10.0));
  std::vector<std::vector<Lit>> cls;
  Solver s;
  s.enable_proof();
  for (unsigned i = 0; i < nvars; ++i) s.new_var();
  for (unsigned c = 0; c < nclauses; ++c) {
    unsigned len = 1 + rng() % 4;
    std::vector<Lit> cl;
    for (unsigned k = 0; k < len; ++k)
      cl.push_back(mk_lit(rng() % nvars, rng() % 2));
    cls.push_back(cl);
    s.add_clause(cl, c % 5);
  }
  bool expected = brute_force_sat(nvars, cls);
  Status st = s.solve();
  ASSERT_NE(st, Status::kUnknown);
  EXPECT_EQ(st == Status::kSat, expected);
  if (st == Status::kSat) {
    EXPECT_TRUE(s.verify_model());
  } else {
    auto res = check_proof(s.proof());
    EXPECT_TRUE(res.ok) << res.error;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCnf, SatRandomTest, ::testing::Range(0, 60));

class SatHardRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SatHardRandomTest, Random3SatNearThreshold) {
  // 3-SAT at clause/var ratio ~4.26 (the hard region), larger sizes; the
  // solver must agree with brute force and produce checkable proofs.
  std::mt19937 rng(1000 + GetParam());
  const unsigned nvars = 14 + rng() % 5;  // 14..18
  const unsigned nclauses = static_cast<unsigned>(nvars * 4.26);
  std::vector<std::vector<Lit>> cls;
  Solver s;
  s.enable_proof();
  for (unsigned i = 0; i < nvars; ++i) s.new_var();
  for (unsigned c = 0; c < nclauses; ++c) {
    std::vector<Lit> cl;
    while (cl.size() < 3) {
      Lit l = mk_lit(rng() % nvars, rng() % 2);
      bool dup = false;
      for (Lit x : cl)
        if (var(x) == var(l)) dup = true;
      if (!dup) cl.push_back(l);
    }
    cls.push_back(cl);
    s.add_clause(cl, c);
  }
  bool expected = brute_force_sat(nvars, cls);
  Status st = s.solve();
  ASSERT_NE(st, Status::kUnknown);
  EXPECT_EQ(st == Status::kSat, expected);
  if (st == Status::kSat) {
    EXPECT_TRUE(s.verify_model());
  } else {
    auto res = check_proof(s.proof());
    EXPECT_TRUE(res.ok) << res.error;
  }
}

INSTANTIATE_TEST_SUITE_P(Hard3Sat, SatHardRandomTest, ::testing::Range(0, 25));

TEST(Sat, UnitPropagationChain) {
  // x0 -> x1 -> ... -> x9, then force ~x9: UNSAT with a long level-0 chain.
  Solver s;
  s.enable_proof();
  Var v[10];
  for (auto& x : v) x = s.new_var();
  for (int i = 0; i + 1 < 10; ++i) s.add_clause({negl(v[i]), pos(v[i + 1])}, i);
  s.add_clause({pos(v[0])}, 20);
  s.add_clause({negl(v[9])}, 21);
  EXPECT_EQ(s.solve(), Status::kUnsat);
  auto res = check_proof(s.proof());
  EXPECT_TRUE(res.ok) << res.error;
}

TEST(Sat, ManySolveCallsStatsAccumulate) {
  Solver s;
  Var a = s.new_var(), b = s.new_var();
  s.add_clause({pos(a), pos(b)});
  EXPECT_EQ(s.solve(), Status::kSat);
  std::uint64_t d1 = s.stats().decisions;
  EXPECT_EQ(s.solve(), Status::kSat);
  EXPECT_GE(s.stats().decisions, d1);
}

TEST(Sat, ProofLabelsPreserved) {
  Solver s;
  s.enable_proof();
  Var a = s.new_var();
  s.add_clause({pos(a)}, 17);
  s.add_clause({negl(a)}, 42);
  EXPECT_EQ(s.solve(), Status::kUnsat);
  const Proof& p = s.proof();
  bool saw17 = false, saw42 = false;
  for (ClauseId id : p.core()) {
    if (!p.is_original(id)) continue;
    if (p.label(id) == 17) saw17 = true;
    if (p.label(id) == 42) saw42 = true;
  }
  EXPECT_TRUE(saw17);
  EXPECT_TRUE(saw42);
}

TEST(Sat, EnableProofAfterClausesThrows) {
  Solver s;
  Var a = s.new_var();
  s.add_clause({pos(a)});
  EXPECT_THROW(s.enable_proof(), std::logic_error);
}

}  // namespace
}  // namespace itpseq::sat
