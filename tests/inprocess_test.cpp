// inprocess_test.cpp — in-solver simplification (subsumption, BVE,
// vivification, probing) under proof logging: verdict crosschecks against
// untouched solvers, model extension over eliminated variables, proof
// replay + DRAT/tracecheck export on UNSAT, and the freeze/restore
// contract for assumptions and late add_clause.
#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <sstream>
#include <thread>

#include "sat/drat.hpp"
#include "sat/proof_check.hpp"
#include "sat/solver.hpp"
#include "sat/tracecheck.hpp"

namespace itpseq::sat {
namespace {

Lit pos(Var v) { return mk_lit(v, false); }
Lit negl(Var v) { return mk_lit(v, true); }

std::vector<std::vector<Lit>> random_cnf(std::mt19937& rng, unsigned nvars,
                                         double ratio) {
  std::vector<std::vector<Lit>> cls;
  const unsigned n = static_cast<unsigned>(nvars * ratio);
  for (unsigned c = 0; c < n; ++c) {
    unsigned len = 1 + rng() % 4;
    std::vector<Lit> cl;
    for (unsigned k = 0; k < len; ++k)
      cl.push_back(mk_lit(rng() % nvars, rng() % 2));
    cls.push_back(cl);
  }
  return cls;
}

bool model_satisfies(const std::vector<LBool>& model,
                     const std::vector<std::vector<Lit>>& cls) {
  for (const auto& c : cls) {
    bool sat = false;
    for (Lit l : c)
      if (lbool_xor(model[var(l)], sign(l)) == LBool::kTrue) {
        sat = true;
        break;
      }
    if (!sat) return false;
  }
  return true;
}

/// Crosscheck harness: solve `cls` with inprocessing forced on every entry
/// and with it disabled; verdicts must agree, SAT models (extended over
/// eliminated vars) must satisfy the ORIGINAL clauses, and UNSAT proofs
/// must replay, DRAT-check and export to tracecheck.
void crosscheck(const std::vector<std::vector<Lit>>& cls, unsigned nvars,
                RestartMode mode) {
  Solver on, off;
  on.set_restart_mode(mode);
  off.set_restart_mode(mode);
  on.set_inprocess_interval(0);  // a round at every entry and restart
  off.set_inprocess(false);
  on.enable_proof();
  off.enable_proof();
  for (unsigned i = 0; i < nvars; ++i) {
    on.new_var();
    off.new_var();
  }
  for (const auto& c : cls) {
    on.add_clause(c);
    off.add_clause(c);
  }
  Status son = on.solve(), soff = off.solve();
  ASSERT_NE(son, Status::kUnknown);
  ASSERT_EQ(son, soff) << "inprocessing changed the verdict";
  if (son == Status::kSat) {
    EXPECT_TRUE(model_satisfies(on.model(), cls))
        << "extended model violates an original clause";
    EXPECT_TRUE(on.verify_model());
  } else {
    auto pc = check_proof(on.proof());
    EXPECT_TRUE(pc.ok) << pc.error;
    // Independent RUP check of the exported DRAT against the originals.
    std::ostringstream drat;
    write_drat(on.proof(), drat);
    std::istringstream in(drat.str());
    auto dc = check_drat(nvars, cls, in);
    EXPECT_TRUE(dc.ok) << dc.error;
    std::ostringstream tc;
    write_tracecheck(on.proof(), tc);
    EXPECT_FALSE(tc.str().empty());
  }
}

class InprocessFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(InprocessFuzzTest, VerdictModelAndProofAgree) {
  std::mt19937 rng(3000 + GetParam());
  const unsigned nvars = 10 + rng() % 15;
  const double ratio = 2.5 + (rng() % 30) / 10.0;  // spans SAT and UNSAT
  auto cls = random_cnf(rng, nvars, ratio);
  crosscheck(cls, nvars,
             GetParam() % 2 ? RestartMode::kEma : RestartMode::kLuby);
}

INSTANTIATE_TEST_SUITE_P(RandomCnf, InprocessFuzzTest, ::testing::Range(0, 80));

TEST(Inprocess, UnsatDerivedDuringElimination) {
  // (x|y)(x|~y)(~x|y)(~x|~y): BVE on x yields the resolvents (y) and (~y);
  // integrating the second falsifies it at level 0 — the refutation is
  // derived entirely inside the inprocessing round, before any search.
  Solver s;
  s.set_inprocess_interval(0);
  s.enable_proof();
  Var x = s.new_var(), y = s.new_var();
  s.add_clause({pos(x), pos(y)});
  s.add_clause({pos(x), negl(y)});
  s.add_clause({negl(x), pos(y)});
  s.add_clause({negl(x), negl(y)});
  EXPECT_EQ(s.solve(), Status::kUnsat);
  auto pc = check_proof(s.proof());
  EXPECT_TRUE(pc.ok) << pc.error;
  std::ostringstream tc;
  write_tracecheck(s.proof(), tc);
  EXPECT_FALSE(tc.str().empty());
}

TEST(Inprocess, SubsumptionAndStrengtheningCounted) {
  // Freeze everything so BVE cannot erase the evidence: (a|b) subsumes
  // (a|b|c) and self-subsumes (a|~b|c) down to (a|c).
  Solver s;
  s.set_inprocess_interval(0);
  s.enable_proof();
  Var a = s.new_var(), b = s.new_var(), c = s.new_var();
  for (Var v : {a, b, c}) s.freeze(v);
  s.add_clause({pos(a), pos(b)});
  s.add_clause({pos(a), pos(b), pos(c)});
  s.add_clause({pos(a), negl(b), pos(c)});
  EXPECT_EQ(s.solve(), Status::kSat);
  EXPECT_GE(s.stats().subsumed, 1u);
  EXPECT_GE(s.stats().strengthened, 1u);
  EXPECT_GE(s.stats().inprocess_rounds, 1u);
  EXPECT_TRUE(model_satisfies(
      s.model(), {{pos(a), pos(b)}, {pos(a), pos(b), pos(c)},
                  {pos(a), negl(b), pos(c)}}));
}

TEST(Inprocess, FailedLiteralProbeDerivesUnit) {
  // Two-step implication chain x -> y -> z against (~x|~z): no pair of these
  // binaries subsumes or strengthens another, and all vars are frozen (no
  // BVE) — only probing x walks the chain to the conflict, so the failed
  // literal installs unit ~x.
  Solver s;
  s.set_inprocess_interval(0);
  s.enable_proof();
  Var x = s.new_var(), y = s.new_var(), z = s.new_var();
  for (Var v : {x, y, z}) s.freeze(v);
  s.add_clause({negl(x), pos(y)});
  s.add_clause({negl(y), pos(z)});
  s.add_clause({negl(x), negl(z)});
  EXPECT_EQ(s.solve(), Status::kSat);
  EXPECT_GE(s.stats().probed, 1u);
  EXPECT_GE(s.stats().failed_literals, 1u);
  EXPECT_FALSE(s.model_value(x));
}

TEST(Inprocess, VivificationShortensClause) {
  // The chain x -> y -> z makes the ~z literal of (~x|~z|w) redundant, but
  // the two-step implication is invisible to self-subsuming resolution (no
  // single resolution partner exists).  Vivifying the clause propagates x,
  // hits z's reason chain, and strengthens it to (~x|w).  Vars frozen so
  // BVE stays out of the way.
  Solver s;
  s.set_inprocess_interval(0);
  s.enable_proof();
  Var x = s.new_var(), y = s.new_var(), z = s.new_var(), w = s.new_var();
  for (Var v : {x, y, z, w}) s.freeze(v);
  s.add_clause({negl(x), pos(y)});
  s.add_clause({negl(y), pos(z)});
  s.add_clause({negl(x), negl(z), pos(w)});
  EXPECT_EQ(s.solve(), Status::kSat);
  EXPECT_GE(s.stats().vivified, 1u);
}

TEST(Inprocess, AssumingEliminatedVarRestoresIt) {
  // BVE eliminates v on its first round; a later solve_assuming over v must
  // transparently restore it (recorded clauses come back under their
  // original ids) — without the restore the query would mis-solve.
  Solver s;
  s.set_inprocess_interval(0);
  Var v = s.new_var(), a = s.new_var(), b = s.new_var();
  s.add_clause({pos(v), pos(a)});
  s.add_clause({negl(v), pos(b)});
  ASSERT_EQ(s.solve(), Status::kSat);
  ASSERT_TRUE(s.is_eliminated(v)) << "test premise: BVE eliminated v";
  // ~v and ~a falsify (v | a): UNSAT under these assumptions.
  Status st = s.solve_assuming({negl(v), negl(a)});
  EXPECT_EQ(st, Status::kUnsat);
  EXPECT_TRUE(s.ok()) << "assumption-unsat must not refute the formula";
  EXPECT_FALSE(s.failed_assumptions().empty());
  EXPECT_FALSE(s.is_eliminated(v));
  EXPECT_TRUE(s.is_frozen(v));
  // And satisfiable again under the opposite polarity.
  EXPECT_EQ(s.solve_assuming({pos(v)}), Status::kSat);
  EXPECT_TRUE(s.model_value(b));
}

TEST(Inprocess, AddClauseOverEliminatedVarRestoresIt) {
  Solver s;
  s.set_inprocess_interval(0);
  Var v = s.new_var(), a = s.new_var(), b = s.new_var();
  s.add_clause({pos(v), pos(a)});
  s.add_clause({negl(v), pos(b)});
  ASSERT_EQ(s.solve(), Status::kSat);
  ASSERT_TRUE(s.is_eliminated(v));
  // New input clause over v: the var must come back before it is installed.
  s.add_clause({pos(v)});
  s.add_clause({negl(b)});
  EXPECT_EQ(s.solve(), Status::kUnsat);  // v & (~v | b) & ~b
}

TEST(Inprocess, FrozenVarsNeverEliminated) {
  std::mt19937 rng(77);
  Solver s;
  s.set_inprocess_interval(0);
  const unsigned nvars = 16;
  for (unsigned i = 0; i < nvars; ++i) s.new_var();
  for (unsigned i = 0; i < nvars; ++i) s.freeze(i);
  for (const auto& c : random_cnf(rng, nvars, 3.0)) s.add_clause(c);
  Status st = s.solve();
  ASSERT_NE(st, Status::kUnknown);
  for (unsigned i = 0; i < nvars; ++i)
    EXPECT_FALSE(s.is_eliminated(i)) << "frozen var " << i << " eliminated";
  EXPECT_EQ(s.stats().vars_eliminated, 0u);
}

TEST(Inprocess, IncrementalAssumptionFuzz) {
  // A long-lived inprocessing solver answering assumption queries (with
  // clause additions in between) must agree with a fresh untouched solver
  // on every query, and its failed-assumption cores must be sufficient.
  for (int seed = 0; seed < 12; ++seed) {
    std::mt19937 rng(5000 + seed);
    const unsigned nvars = 12 + rng() % 8;
    Solver inc;
    inc.set_inprocess_interval(0);
    for (unsigned i = 0; i < nvars; ++i) inc.new_var();
    std::vector<std::vector<Lit>> cls = random_cnf(rng, nvars, 2.0);
    for (const auto& c : cls) inc.add_clause(c);
    for (int q = 0; q < 8; ++q) {
      // Occasionally grow the formula (exercises restore via add_clause).
      if (rng() % 3 == 0) {
        auto extra = random_cnf(rng, nvars, 0.3);
        for (const auto& c : extra) {
          cls.push_back(c);
          inc.add_clause(c);
        }
      }
      std::vector<Lit> assume;
      const unsigned na = rng() % 4;
      for (unsigned k = 0; k < na; ++k)
        assume.push_back(mk_lit(rng() % nvars, rng() % 2));
      Status si = inc.solve_assuming(assume);
      ASSERT_NE(si, Status::kUnknown);
      // Reference: fresh solver, assumptions as units.
      Solver ref;
      ref.set_inprocess(false);
      for (unsigned i = 0; i < nvars; ++i) ref.new_var();
      bool ref_ok = true;
      for (const auto& c : cls) ref_ok = ref.add_clause(c) && ref_ok;
      for (Lit aL : assume) ref_ok = ref.add_clause({aL}) && ref_ok;
      Status sr = ref_ok ? ref.solve() : Status::kUnsat;
      if (sr == Status::kUnknown) continue;
      ASSERT_EQ(si == Status::kSat, sr == Status::kSat)
          << "incremental inprocessing changed a query verdict (seed "
          << seed << ", query " << q << ")";
      if (si == Status::kSat) {
        EXPECT_TRUE(model_satisfies(inc.model(), cls));
        for (Lit aL : assume)
          EXPECT_EQ(lbool_xor(inc.model()[var(aL)], sign(aL)), LBool::kTrue);
      } else if (!inc.failed_assumptions().empty()) {
        // The failed core alone must already be inconsistent with the CNF.
        Solver core;
        core.set_inprocess(false);
        for (unsigned i = 0; i < nvars; ++i) core.new_var();
        bool core_ok = true;
        for (const auto& c : cls) core_ok = core.add_clause(c) && core_ok;
        for (Lit f : inc.failed_assumptions())
          core_ok = core.add_clause({f}) && core_ok;
        EXPECT_TRUE(!core_ok || core.solve() == Status::kUnsat)
            << "failed-assumption core is not sufficient";
      }
      if (!inc.ok()) break;  // formula itself refuted: nothing left to ask
    }
  }
}

TEST(Inprocess, RepeatedRoundsReachFixpointSafely) {
  // Many forced rounds over the same (shrinking) database must stay sound
  // and terminate; verdict checked against a clean solver at the end.
  std::mt19937 rng(99);
  const unsigned nvars = 18;
  auto cls = random_cnf(rng, nvars, 3.5);
  Solver s;
  s.set_inprocess_interval(0);
  for (unsigned i = 0; i < nvars; ++i) s.new_var();
  for (const auto& c : cls) s.add_clause(c);
  Status first = s.solve();
  for (int i = 0; i < 5 && first != Status::kUnknown; ++i)
    ASSERT_EQ(s.solve(), first) << "re-solve changed the verdict";
  Solver ref;
  ref.set_inprocess(false);
  for (unsigned i = 0; i < nvars; ++i) ref.new_var();
  for (const auto& c : cls) ref.add_clause(c);
  EXPECT_EQ(s.solve(), ref.solve());
}

TEST(Inprocess, CancellationDuringInprocessingSolveIsClean) {
  // Concurrency smoke (runs under TSan via the `concurrency` label): a
  // cancel token flipped from another thread while a solver with forced
  // inprocessing churns on pigeonhole queries must stop the solve without
  // corrupting state — the follow-up uncancelled solve gives the verdict.
  Solver s;
  s.set_inprocess_interval(0);
  const int n = 7;  // 8 pigeons, 7 holes
  std::vector<std::vector<Var>> p(n + 1, std::vector<Var>(n));
  for (auto& row : p)
    for (auto& v : row) v = s.new_var();
  for (int i = 0; i <= n; ++i) {
    std::vector<Lit> cl;
    for (int h = 0; h < n; ++h) cl.push_back(pos(p[i][h]));
    s.add_clause(cl);
  }
  for (int h = 0; h < n; ++h)
    for (int i = 0; i <= n; ++i)
      for (int j = i + 1; j <= n; ++j)
        s.add_clause({negl(p[i][h]), negl(p[j][h])});
  std::atomic<bool> cancel{false};
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    cancel.store(true, std::memory_order_relaxed);
  });
  Budget b;
  b.cancel = &cancel;
  Status st = s.solve(b);  // kUnknown if the token won, kUnsat if we did
  killer.join();
  EXPECT_NE(st, Status::kSat);
  EXPECT_EQ(s.solve(), Status::kUnsat);  // state intact after cancellation
}

}  // namespace
}  // namespace itpseq::sat
