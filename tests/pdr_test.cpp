// pdr_test.cpp — unit and integration tests for the IC3/PDR engine:
// inductive generalization, proof-obligation handling, SAFE verdicts with
// certify-checked invariant certificates, FAIL verdicts with sim-replayable
// traces, constraint handling, and portfolio membership.
#include <gtest/gtest.h>

#include "bench_circuits/generators.hpp"
#include "bench_circuits/suite.hpp"
#include "mc/certify.hpp"
#include "mc/lemma_exchange.hpp"
#include "mc/pdr.hpp"
#include "mc/portfolio.hpp"
#include "mc/sim.hpp"

namespace itpseq::mc {
namespace {

EngineOptions quick_opts() {
  EngineOptions o;
  o.time_limit_sec = 25.0;
  o.max_bound = 80;
  return o;
}

TEST(Pdr, SafeTokenRingWithCheckedCertificate) {
  aig::Aig g = bench::token_ring(8, /*fail_reach=*/false);
  PdrEngine eng(g, 0, quick_opts());
  EngineResult r = eng.run();
  ASSERT_EQ(r.verdict, Verdict::kPass);
  ASSERT_TRUE(r.certificate.has_value());
  CertifyResult c = check_certificate(g, 0, *r.certificate);
  EXPECT_TRUE(c.ok) << c.error;
  EXPECT_GT(r.j_fp, 0u);
}

TEST(Pdr, FailCounterWithReplayableShallowestTrace) {
  aig::Aig g = bench::counter(5, 20, 13);  // bad at depth 13 exactly
  PdrEngine eng(g, 0, quick_opts());
  EngineResult r = eng.run();
  ASSERT_EQ(r.verdict, Verdict::kFail);
  EXPECT_TRUE(trace_is_cex(g, r.cex, 0));
  EXPECT_EQ(r.cex.depth(), 13u);
  EXPECT_GT(eng.pdr_stats().obligations, 0u);
}

TEST(Pdr, GeneralizationShrinksCubes) {
  // The one-hot ring invariant is a conjunction of short clauses; without
  // drop-literal generalization every lemma would mention all latches.
  aig::Aig g = bench::token_ring(10, /*fail_reach=*/false);
  PdrEngine eng(g, 0, quick_opts());
  EngineResult r = eng.run();
  ASSERT_EQ(r.verdict, Verdict::kPass);
  const PdrStats& s = eng.pdr_stats();
  ASSERT_GT(s.lemmas, 0u);
  EXPECT_GT(s.gen_dropped, 0u);
  // Average lemma is strictly shorter than a full-state cube.
  EXPECT_LT(s.lemma_literals, s.lemmas * g.num_latches());
}

TEST(Pdr, ObligationChainsReachDeepCounterexamples) {
  // The combination lock FAILs at exactly its length: the counterexample
  // can only be assembled from a chain of proof obligations, one frame at
  // a time.
  aig::Aig g = bench::combination_lock(8, 2, /*seed=*/7);
  PdrEngine eng(g, 0, quick_opts());
  EngineResult r = eng.run();
  ASSERT_EQ(r.verdict, Verdict::kFail);
  EXPECT_TRUE(trace_is_cex(g, r.cex, 0));
  EXPECT_EQ(r.cex.depth(), 8u);
  EXPECT_GE(eng.pdr_stats().obligations, 8u);
}

TEST(Pdr, SuiteAgreementWithCertificatesAndTraces) {
  EngineOptions o = quick_opts();
  o.time_limit_sec = 5.0;
  unsigned decided = 0;
  for (const auto& inst : bench::make_academic_suite(24)) {
    PdrEngine eng(inst.model, 0, o);
    EngineResult r = eng.run();
    if (r.verdict == Verdict::kUnknown) continue;  // budget, never wrong
    ++decided;
    if (inst.expected == bench::Expected::kPass) {
      ASSERT_EQ(r.verdict, Verdict::kPass) << inst.name;
      ASSERT_TRUE(r.certificate.has_value()) << inst.name;
      CertifyResult c = check_certificate(inst.model, 0, *r.certificate);
      EXPECT_TRUE(c.ok) << inst.name << ": " << c.error;
    } else if (inst.expected == bench::Expected::kFail) {
      ASSERT_EQ(r.verdict, Verdict::kFail) << inst.name;
      EXPECT_TRUE(trace_is_cex(inst.model, r.cex, 0)) << inst.name;
      if (inst.fail_depth >= 0) {
        EXPECT_EQ(r.cex.depth(), static_cast<unsigned>(inst.fail_depth))
            << inst.name;
      }
    }
  }
  EXPECT_GT(decided, 20u);  // the small suite should mostly be decided
}

TEST(Pdr, RespectsInvariantConstraints) {
  // 2-bit counter with an enable input.  bad = (count == 3).
  auto make = [](bool constrain_enable_off) {
    aig::Aig g;
    aig::Lit en = g.add_input("en");
    aig::Lit b0 = g.add_latch(aig::LatchInit::kZero, "b0");
    aig::Lit b1 = g.add_latch(aig::LatchInit::kZero, "b1");
    // Increment when enabled.
    aig::Lit n0 = g.make_xor(b0, en);
    aig::Lit n1 = g.make_xor(b1, g.make_and(b0, en));
    g.set_latch_next(b0, n0);
    g.set_latch_next(b1, n1);
    g.add_output(g.make_and(b0, b1), "bad");
    if (constrain_enable_off) g.add_constraint(aig::lit_not(en));
    return g;
  };
  // Unconstrained: count reaches 3 after three enabled steps.
  aig::Aig fail_g = make(false);
  EngineResult r = check_pdr(fail_g, 0, quick_opts());
  ASSERT_EQ(r.verdict, Verdict::kFail);
  EXPECT_TRUE(trace_is_cex(fail_g, r.cex, 0));
  EXPECT_EQ(r.cex.depth(), 3u);
  // With "enable is always 0" constrained, the counter never moves: PASS,
  // and the certificate must check under constrained-trace semantics.
  aig::Aig pass_g = make(true);
  r = check_pdr(pass_g, 0, quick_opts());
  ASSERT_EQ(r.verdict, Verdict::kPass);
  ASSERT_TRUE(r.certificate.has_value());
  CertifyResult c = check_certificate(pass_g, 0, *r.certificate);
  EXPECT_TRUE(c.ok) << c.error;
}

TEST(Pdr, UndefResetLatchesAreUnconstrainedAtFrameZero) {
  // An uninitialized latch that holds its value, observed one step in: the
  // cex must pick the bad reset value.
  aig::Aig g;
  aig::Lit a = g.add_latch(aig::LatchInit::kUndef, "a");
  aig::Lit b = g.add_latch(aig::LatchInit::kZero, "b");
  g.set_latch_next(a, a);
  g.set_latch_next(b, aig::kTrue);
  g.add_output(g.make_and(a, b), "bad");
  EngineResult r = check_pdr(g, 0, quick_opts());
  ASSERT_EQ(r.verdict, Verdict::kFail);
  EXPECT_TRUE(trace_is_cex(g, r.cex, 0));
  EXPECT_EQ(r.cex.depth(), 1u);
  EXPECT_TRUE(r.cex.initial_latches[0]);  // the undef latch started at 1
}

TEST(Pdr, BoundExhaustionReportsUnknown) {
  aig::Aig g = bench::counter(6, 40, 30);  // bad at depth 30
  EngineOptions o = quick_opts();
  o.max_bound = 5;
  EngineResult r = check_pdr(g, 0, o);
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
}

TEST(Pdr, TernaryLiftingShrinksCubesBeyondConeSupport) {
  // In the combination lock every latch sits in the next-state cone, yet
  // most are irrelevant once the key comparison fails: the ternary lift
  // must X a healthy fraction of post-cone literals.
  aig::Aig g = bench::combination_lock(10, 2, /*seed=*/3);
  EngineOptions on = quick_opts();
  on.pdr_lift = true;
  PdrEngine eng(g, 0, on);
  EngineResult r = eng.run();
  ASSERT_EQ(r.verdict, Verdict::kFail);
  EXPECT_TRUE(trace_is_cex(g, r.cex, 0));
  EXPECT_GT(eng.pdr_stats().lift_dropped, 0u);

  // Against the syntactic-only lift: same verdict, never longer cubes.
  EngineOptions off = on;
  off.pdr_lift = false;
  PdrEngine base(g, 0, off);
  EngineResult br = base.run();
  ASSERT_EQ(br.verdict, Verdict::kFail);
  EXPECT_EQ(base.pdr_stats().lift_dropped, 0u);
}

TEST(Pdr, CtgGeneralizationBlocksCtgsAndKeepsVerdicts) {
  // The deep counter is CTG territory: plain drop-literal generalization
  // stalls on counterexamples-to-generalization that are themselves
  // unreachable one frame down.
  aig::Aig g = bench::counter(6, 40, 39);  // PASS would need bad >= 40
  EngineOptions on = quick_opts();
  on.pdr_ctg = true;
  PdrEngine eng(g, 0, on);
  EngineResult r = eng.run();
  ASSERT_EQ(r.verdict, Verdict::kFail);  // bad at depth 39 is reachable
  EXPECT_EQ(r.cex.depth(), 39u);
  EXPECT_TRUE(trace_is_cex(g, r.cex, 0));
  EXPECT_GT(eng.pdr_stats().ctg_blocked, 0u);
}

TEST(Pdr, LiftCtgOnOffCrosscheck) {
  // The two shrinking layers are pure strength optimizations: across the
  // randomized suite, every decided instance must get the same verdict
  // with them on and off, PASS certificates must check in both modes, and
  // FAIL traces must replay.
  EngineOptions off = quick_opts();
  off.time_limit_sec = 5.0;
  off.pdr_lift = false;
  off.pdr_ctg = false;
  EngineOptions on = off;
  on.pdr_lift = true;
  on.pdr_ctg = true;
  unsigned compared = 0;
  for (const auto& inst : bench::make_academic_suite(24)) {
    PdrEngine eng_off(inst.model, 0, off);
    EngineResult r_off = eng_off.run();
    PdrEngine eng_on(inst.model, 0, on);
    EngineResult r_on = eng_on.run();
    for (const EngineResult* r : {&r_off, &r_on}) {
      if (r->verdict == Verdict::kPass) {
        ASSERT_TRUE(r->certificate.has_value()) << inst.name;
        CertifyResult c = check_certificate(inst.model, 0, *r->certificate);
        EXPECT_TRUE(c.ok) << inst.name << ": " << c.error;
      } else if (r->verdict == Verdict::kFail) {
        EXPECT_TRUE(trace_is_cex(inst.model, r->cex, 0)) << inst.name;
      }
    }
    if (r_off.verdict == Verdict::kUnknown ||
        r_on.verdict == Verdict::kUnknown)
      continue;  // budget: either mode may time out, never disagree
    EXPECT_EQ(r_off.verdict, r_on.verdict) << inst.name;
    if (r_off.verdict == Verdict::kFail) {
      EXPECT_EQ(r_off.cex.depth(), r_on.cex.depth()) << inst.name;
    }
    ++compared;
  }
  EXPECT_GT(compared, 20u);
}

TEST(Pdr, AdoptsForeignLemmaPublishedBeforeFirstFrame) {
  // Pins the adopt() frontier behavior: a foreign lemma already waiting in
  // the hub when the engine starts is consumed at the very first safe
  // point (frontier k = 1, consecution level 0, where the init cube is
  // part of the frame) — the earliest level adopt() can ever query, and
  // the one the defensive k_ == 0 guard sits in front of.
  aig::Aig g = bench::token_ring(8, /*fail_reach=*/false);
  LemmaExchange hub(g.num_latches());
  // "never two tokens in stages 0 and 1" — a true invariant clause
  // (¬l0 ∨ ¬l1), published as a candidate so PDR must verify it itself.
  Lemma l;
  l.grade = LemmaGrade::kCandidate;
  l.source = 2;
  l.clause = {mk_latch_lit(0, true), mk_latch_lit(1, true)};
  ASSERT_TRUE(hub.publish(l));
  EngineOptions o = quick_opts();
  o.exchange = &hub;
  o.exchange_source = 1;
  PdrEngine eng(g, 0, o);
  EngineResult r = eng.run();
  ASSERT_EQ(r.verdict, Verdict::kPass);
  ASSERT_TRUE(r.certificate.has_value());
  CertifyResult c = check_certificate(g, 0, *r.certificate);
  EXPECT_TRUE(c.ok) << c.error;
  EXPECT_GE(eng.pdr_stats().exch_consumed, 1u);
}

TEST(Pdr, InitFreeModelFailsAtDepthZeroWhenBadIsSatisfiable) {
  // Every latch uninitialized: every state is initial, so any satisfiable
  // bad cone is a depth-0 counterexample.  PDR must report it (through the
  // preliminary check) instead of learning init-intersecting lemmas.
  aig::Aig g;
  aig::Lit a = g.add_latch(aig::LatchInit::kUndef, "a");
  aig::Lit b = g.add_latch(aig::LatchInit::kUndef, "b");
  g.set_latch_next(a, aig::kFalse);
  g.set_latch_next(b, aig::kFalse);
  g.add_output(g.make_and(a, b), "bad");
  EngineResult r = check_pdr(g, 0, quick_opts());
  ASSERT_EQ(r.verdict, Verdict::kFail);
  EXPECT_EQ(r.cex.depth(), 0u);
  EXPECT_TRUE(trace_is_cex(g, r.cex, 0));
  EXPECT_TRUE(r.cex.initial_latches[0]);
  EXPECT_TRUE(r.cex.initial_latches[1]);
}

TEST(Pdr, InitFreeModelPassesUnderConstraintsWithCheckedCertificate) {
  // All-uninitialized latches with a constraint masking the bad region:
  // restore_init_disjoint* and the generalization init-checks all no-op
  // (every cube intersects S0), which must degrade PDR to a sound PASS —
  // here with the trivial invariant, certify-checked under constrained
  // semantics.
  aig::Aig g;
  aig::Lit a = g.add_latch(aig::LatchInit::kUndef, "a");
  aig::Lit b = g.add_latch(aig::LatchInit::kUndef, "b");
  g.set_latch_next(a, a);
  g.set_latch_next(b, b);
  g.add_output(g.make_and(a, b), "bad");
  g.add_constraint(aig::lit_not(a));  // traces with a = 1 are excluded
  EngineResult r = check_pdr(g, 0, quick_opts());
  ASSERT_EQ(r.verdict, Verdict::kPass);
  ASSERT_TRUE(r.certificate.has_value());
  CertifyResult c = check_certificate(g, 0, *r.certificate);
  EXPECT_TRUE(c.ok) << c.error;
}

TEST(Pdr, RunsAsPortfolioMember) {
  PortfolioOptions po;
  po.members = {PortfolioMember::kPdr};
  po.slice_seconds = 5.0;
  po.time_limit_sec = 25.0;
  aig::Aig pass_g = bench::token_ring(6, /*fail_reach=*/false);
  EngineResult r = check_portfolio(pass_g, 0, po);
  EXPECT_EQ(r.verdict, Verdict::kPass);
  EXPECT_EQ(r.engine, "portfolio/PDR");
  aig::Aig fail_g = bench::token_ring(6, /*fail_reach=*/true);
  r = check_portfolio(fail_g, 0, po);
  EXPECT_EQ(r.verdict, Verdict::kFail);
  EXPECT_TRUE(trace_is_cex(fail_g, r.cex, 0));
}

}  // namespace
}  // namespace itpseq::mc
