// crosscheck_test.cpp — cross-validation between independent oracles:
// BDD reachability (no SAT machinery) versus the SAT-based engines, on
// random circuits that do not come from the curated suite families; plus
// cross-engine counterexample-depth agreement and end-to-end witness
// pipelines.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "bdd/reach.hpp"
#include "bench_circuits/suite.hpp"
#include "mc/certify.hpp"
#include "mc/engine.hpp"
#include "mc/kinduction.hpp"
#include "mc/portfolio.hpp"
#include "mc/sim.hpp"
#include "mc/trace_min.hpp"
#include "mc/witness.hpp"

namespace itpseq {
namespace {

/// Random sequential circuit: small latch/input counts, random AND/XOR
/// logic, random resets, one random output.
aig::Aig random_circuit(std::uint32_t seed) {
  std::mt19937 rng(seed);
  aig::Aig g;
  unsigned ni = 1 + rng() % 3, nl = 2 + rng() % 5;
  std::vector<aig::Lit> pool;
  for (unsigned i = 0; i < ni; ++i) pool.push_back(g.add_input());
  std::vector<aig::Lit> latches;
  for (unsigned i = 0; i < nl; ++i) {
    aig::Lit l = g.add_latch(static_cast<aig::LatchInit>(rng() % 3));
    latches.push_back(l);
    pool.push_back(l);
  }
  unsigned gates = 5 + rng() % 25;
  for (unsigned n = 0; n < gates; ++n) {
    aig::Lit a = pool[rng() % pool.size()] ^ (rng() % 2);
    aig::Lit b = pool[rng() % pool.size()] ^ (rng() % 2);
    pool.push_back(rng() % 2 ? g.make_and(a, b) : g.make_xor(a, b));
  }
  for (aig::Lit l : latches)
    g.set_latch_next(l, pool[rng() % pool.size()] ^ (rng() % 2));
  // A random conjunction as the bad signal: rarely constant, often
  // reachable at some depth, sometimes never.
  aig::Lit bad = g.make_and(pool[rng() % pool.size()] ^ (rng() % 2),
                            pool[rng() % pool.size()] ^ (rng() % 2));
  g.add_output(bad);
  return g;
}

class BddVsSatTest : public ::testing::TestWithParam<int> {};

TEST_P(BddVsSatTest, RandomCircuitsAgree) {
  aig::Aig g = random_circuit(7000 + GetParam());
  bdd::ReachBudget rb;
  rb.seconds = 10.0;
  bdd::ReachResult truth = bdd::bdd_check(g, 0, rb);
  if (truth.verdict == bdd::ReachVerdict::kOverflow) GTEST_SKIP();

  mc::EngineOptions opts;
  opts.time_limit_sec = 15.0;
  opts.max_bound = 120;

  struct Named {
    const char* name;
    mc::EngineResult r;
  };
  mc::EngineOptions part = opts;
  part.itp_partitioned = true;
  Named results[] = {
      {"itp", mc::check_itp(g, 0, opts)},
      {"itp-part", mc::check_itp(g, 0, part)},
      {"itpseq", mc::check_itpseq(g, 0, opts)},
      {"sitpseq", mc::check_sitpseq(g, 0, opts)},
      {"cba", mc::check_itpseq_cba(g, 0, opts)},
      {"kind", mc::check_kinduction(g, 0, opts)},
  };
  for (const Named& n : results) {
    if (n.r.verdict == mc::Verdict::kUnknown) continue;
    if (truth.verdict == bdd::ReachVerdict::kPass) {
      EXPECT_EQ(n.r.verdict, mc::Verdict::kPass) << n.name;
    } else {
      ASSERT_EQ(n.r.verdict, mc::Verdict::kFail) << n.name;
      EXPECT_TRUE(mc::trace_is_cex(g, n.r.cex, 0)) << n.name;
      EXPECT_EQ(n.r.cex.depth(), truth.depth) << n.name << ": not shallowest";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, BddVsSatTest, ::testing::Range(0, 60));

TEST(CrossCheck, FailDepthsAgreeAcrossEngines) {
  mc::EngineOptions opts;
  opts.time_limit_sec = 15.0;
  for (auto& inst : bench::make_academic_suite(20)) {
    if (inst.expected != bench::Expected::kFail || inst.fail_depth < 0) continue;
    unsigned expected = static_cast<unsigned>(inst.fail_depth);
    mc::EngineResult rs[] = {
        mc::check_itpseq(inst.model, 0, opts),
        mc::check_bmc(inst.model, 0, opts),
        mc::check_kinduction(inst.model, 0, opts),
    };
    for (const auto& r : rs) {
      if (r.verdict == mc::Verdict::kUnknown) continue;
      ASSERT_EQ(r.verdict, mc::Verdict::kFail) << inst.name << " " << r.engine;
      EXPECT_EQ(r.cex.depth(), expected) << inst.name << " " << r.engine;
    }
  }
}

TEST(CrossCheck, WitnessMinimizePipeline) {
  // FAIL -> minimize -> witness round-trip -> replay, over several families.
  mc::EngineOptions opts;
  opts.time_limit_sec = 15.0;
  unsigned exercised = 0;
  for (auto& inst : bench::make_academic_suite(16)) {
    if (inst.expected != bench::Expected::kFail) continue;
    if (inst.model.num_inputs() == 0) continue;
    mc::EngineResult r = mc::check_itpseq(inst.model, 0, opts);
    if (r.verdict != mc::Verdict::kFail) continue;
    mc::Trace small = mc::minimize_trace(inst.model, r.cex, 0);
    EXPECT_TRUE(mc::trace_is_cex(inst.model, small, 0)) << inst.name;
    std::stringstream ss;
    mc::write_witness(small, 0, ss);
    mc::Trace back = mc::read_witness(ss, inst.model.num_latches(),
                                      inst.model.num_inputs());
    EXPECT_TRUE(mc::trace_is_cex(inst.model, back, 0)) << inst.name;
    ++exercised;
    if (exercised >= 8) break;
  }
  EXPECT_GE(exercised, 4u);
}

class AllEnginesRandomTest : public ::testing::TestWithParam<int> {};

// Randomized generated circuits under fixed seeds: every definite-verdict
// engine (including PDR and the threaded portfolio) must agree, every FAIL
// trace must replay in the concrete simulator, and every PASS certificate
// must pass the independent checker.
TEST_P(AllEnginesRandomTest, EnginesAgreeTracesReplayCertificatesCheck) {
  aig::Aig g = random_circuit(9000 + GetParam());
  mc::EngineOptions opts;
  opts.time_limit_sec = 15.0;
  opts.max_bound = 120;

  struct Named {
    const char* name;
    mc::EngineResult r;
  };
  mc::PortfolioOptions popts;
  popts.time_limit_sec = 15.0;
  Named results[] = {
      {"bmc", mc::check_bmc(g, 0, opts)},
      {"itp", mc::check_itp(g, 0, opts)},
      {"itpseq", mc::check_itpseq(g, 0, opts)},
      {"sitpseq", mc::check_sitpseq(g, 0, opts)},
      {"cba", mc::check_itpseq_cba(g, 0, opts)},
      {"kind", mc::check_kinduction(g, 0, opts)},
      {"pdr", mc::check_pdr(g, 0, opts)},
      {"portfolio", mc::check_portfolio(g, 0, popts)},
  };
  const Named* reference = nullptr;
  for (const Named& n : results) {
    if (n.r.verdict == mc::Verdict::kUnknown) continue;
    if (reference == nullptr) reference = &n;
    EXPECT_EQ(n.r.verdict, reference->r.verdict)
        << n.name << " vs " << reference->name;
    if (n.r.verdict == mc::Verdict::kFail) {
      // Every definite-FAIL engine here is contracted to produce a
      // replayable witness — an empty trace is itself a bug.
      ASSERT_FALSE(n.r.cex.inputs.empty()) << n.name << ": FAIL, no witness";
      EXPECT_TRUE(mc::trace_is_cex(g, n.r.cex, 0)) << n.name;
    }
    if (n.r.verdict == mc::Verdict::kPass && n.r.certificate.has_value()) {
      mc::CertifyResult c = mc::check_certificate(g, 0, *n.r.certificate);
      EXPECT_TRUE(c.ok) << n.name << ": " << c.error;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, AllEnginesRandomTest, ::testing::Range(0, 25));

TEST(CrossCheck, PortfolioAgreesWithBddOnRandomCircuits) {
  for (int seed = 100; seed < 115; ++seed) {
    aig::Aig g = random_circuit(seed);
    bdd::ReachResult truth = bdd::bdd_check(g, 0);
    if (truth.verdict == bdd::ReachVerdict::kOverflow) continue;
    mc::PortfolioOptions popts;
    popts.time_limit_sec = 20.0;
    mc::EngineResult r = mc::check_portfolio(g, 0, popts);
    if (r.verdict == mc::Verdict::kUnknown) continue;
    EXPECT_EQ(r.verdict == mc::Verdict::kPass,
              truth.verdict == bdd::ReachVerdict::kPass)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace itpseq
