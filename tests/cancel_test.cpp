// cancel_test.cpp — the cooperative cancellation contract: every engine
// polls EngineOptions::cancel (directly and through sat::Budget) and
// returns UNKNOWN promptly, and zero/negative time budgets return
// immediately instead of looping.  Runs under TSan via the `concurrency`
// ctest label (ITPSEQ_SANITIZE=thread).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <thread>

#include "bench_circuits/generators.hpp"
#include "mc/engine.hpp"
#include "mc/kinduction.hpp"
#include "mc/portfolio.hpp"

namespace itpseq::mc {
namespace {

using CheckFn =
    std::function<EngineResult(const aig::Aig&, std::size_t, EngineOptions)>;

struct NamedEngine {
  const char* name;
  CheckFn run;
};

std::vector<NamedEngine> all_engines() {
  return {
      {"bmc", [](const aig::Aig& g, std::size_t p, EngineOptions o) {
         o.bmc_incremental = false;  // monolithic cross-check mode
         return check_bmc(g, p, o);
       }},
      {"bmc-incremental",
       [](const aig::Aig& g, std::size_t p, EngineOptions o) {
         o.bmc_incremental = true;
         return check_bmc(g, p, o);
       }},
      {"itp", [](const aig::Aig& g, std::size_t p, EngineOptions o) {
         return check_itp(g, p, o);
       }},
      {"itp-part", [](const aig::Aig& g, std::size_t p, EngineOptions o) {
         o.itp_partitioned = true;
         return check_itp(g, p, o);
       }},
      {"itpseq", [](const aig::Aig& g, std::size_t p, EngineOptions o) {
         return check_itpseq(g, p, o);
       }},
      {"sitpseq", [](const aig::Aig& g, std::size_t p, EngineOptions o) {
         return check_sitpseq(g, p, o);
       }},
      {"itpseq-cba", [](const aig::Aig& g, std::size_t p, EngineOptions o) {
         return check_itpseq_cba(g, p, o);
       }},
      {"kind", [](const aig::Aig& g, std::size_t p, EngineOptions o) {
         return check_kinduction(g, p, o);
       }},
      {"pdr", [](const aig::Aig& g, std::size_t p, EngineOptions o) {
         return check_pdr(g, p, o);
       }},
  };
}

/// Hard for every engine: a counter that FAILs only at depth 2^28 - 1.  No
/// engine can prove PASS (the property is false) and none can reach the
/// counterexample in test time, so every engine keeps iterating bounds
/// until budget/cancellation stops it.
aig::Aig hard_instance() {
  return bench::counter(28, 1ull << 28, (1ull << 28) - 1);
}

double run_seconds(const std::function<void()>& f) {
  auto t0 = std::chrono::steady_clock::now();
  f();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

TEST(Cancel, PreCancelledTokenReturnsImmediately) {
  aig::Aig g = hard_instance();
  std::atomic<bool> stop{true};  // set before the engine even starts
  for (auto& e : all_engines()) {
    EngineOptions o;
    o.time_limit_sec = 60.0;
    o.cancel = &stop;
    EngineResult r;
    double secs = run_seconds([&] { r = e.run(g, 0, o); });
    EXPECT_EQ(r.verdict, Verdict::kUnknown) << e.name;
    EXPECT_LT(secs, 2.0) << e.name << " ignored a pre-set cancellation token";
  }
}

TEST(Cancel, MidRunCancellationIsHonoredPromptly) {
  aig::Aig g = hard_instance();
  for (auto& e : all_engines()) {
    std::atomic<bool> stop{false};
    EngineOptions o;
    o.time_limit_sec = 60.0;  // would run a minute without the token
    o.cancel = &stop;
    std::thread killer([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      stop.store(true);
    });
    EngineResult r;
    double secs = run_seconds([&] { r = e.run(g, 0, o); });
    killer.join();
    EXPECT_LT(secs, 8.0) << e.name << " did not honor mid-run cancellation";
    // A verdict is only legitimate if it landed before the token fired.
    if (secs > 0.3) {
      EXPECT_EQ(r.verdict, Verdict::kUnknown) << e.name;
    }
  }
}

TEST(Cancel, EasyVerdictsAreUnaffectedByAnUnsetToken) {
  // A live (unset) token must not perturb results.
  std::atomic<bool> stop{false};
  aig::Aig fail_g = bench::counter(4, 12, 9);
  aig::Aig pass_g = bench::token_ring(6, /*fail_reach=*/false);
  for (auto& e : all_engines()) {
    EngineOptions o;
    o.time_limit_sec = 30.0;
    o.cancel = &stop;
    EngineResult r = e.run(fail_g, 0, o);
    EXPECT_EQ(r.verdict, Verdict::kFail) << e.name;
  }
  EngineOptions o;
  o.time_limit_sec = 30.0;
  o.cancel = &stop;
  EXPECT_EQ(check_pdr(pass_g, 0, o).verdict, Verdict::kPass);
  EXPECT_EQ(check_kinduction(pass_g, 0, o).verdict, Verdict::kPass);
}

TEST(Cancel, ZeroAndNegativeBudgetsReturnImmediately) {
  aig::Aig g = hard_instance();
  for (double budget : {0.0, -1.0}) {
    for (auto& e : all_engines()) {
      EngineOptions o;
      o.time_limit_sec = budget;
      EngineResult r;
      double secs = run_seconds([&] { r = e.run(g, 0, o); });
      EXPECT_EQ(r.verdict, Verdict::kUnknown)
          << e.name << " budget=" << budget;
      EXPECT_LT(secs, 1.0) << e.name << " looped on budget=" << budget;
    }
  }
}

TEST(Cancel, RandomSimHonorsTokenAndBudget) {
  aig::Aig g = hard_instance();
  std::atomic<bool> stop{true};
  EngineResult r;
  double secs = run_seconds([&] {
    // A sweep that would take ages: the pre-set token must cut it short.
    r = check_random_sim(g, 0, /*depth=*/512, /*rounds=*/1u << 20,
                         /*seed=*/1, &stop);
  });
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_LT(secs, 1.0);

  secs = run_seconds([&] {
    r = check_random_sim(g, 0, 512, 1u << 20, 1, nullptr,
                         /*time_limit_sec=*/0.2);
  });
  EXPECT_EQ(r.verdict, Verdict::kUnknown);
  EXPECT_LT(secs, 3.0);
}

TEST(Cancel, SatBudgetZeroSecondsDoesNotSearch) {
  // The solver-level half of the contract, checked directly.
  sat::Solver s;
  sat::Var a = s.new_var(), b = s.new_var();
  s.add_clause({sat::mk_lit(a), sat::mk_lit(b)}, 0);
  sat::Budget budget;
  budget.seconds = 0.0;
  EXPECT_EQ(s.solve(budget), sat::Status::kUnknown);
  std::atomic<bool> stop{true};
  budget.seconds = -1.0;
  budget.cancel = &stop;
  EXPECT_EQ(s.solve(budget), sat::Status::kUnknown);
  budget.cancel = nullptr;
  EXPECT_EQ(s.solve(budget), sat::Status::kSat);
}

}  // namespace
}  // namespace itpseq::mc
