// lemma_store_test.cpp — the checkpoint/restore layer as a unit: checksum
// primitive, structural design hash, encode/decode round trips, and the
// untrusted-input contract (every way a snapshot can lie is a structured
// SnapshotError, never a crash and never a believed record).  File-level
// write/read and the portfolio seeding path are covered here too; the CLI
// surface (--checkpoint/--resume, exit 2) lives in cli_test.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "bench_circuits/generators.hpp"
#include "mc/lemma_store.hpp"
#include "mc/portfolio.hpp"

namespace itpseq {
namespace {

using mc::LemmaSnapshot;

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "itpseq_store_" + name;
}

/// The message carried by the SnapshotError a decode must raise.
std::string decode_error(const std::string& text) {
  try {
    mc::decode_snapshot(text);
  } catch (const mc::SnapshotError& e) {
    return e.what();
  }
  return "";
}

/// Re-stamp a hand-edited body with a *correct* checksum, so tests reach
/// the record-level validation behind the checksum gate.
std::string stamp(const std::string& body) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(mc::fnv1a64(body)));
  return body + "checksum " + buf + "\n";
}

LemmaSnapshot sample_snapshot() {
  LemmaSnapshot s;
  s.design = 0xdeadbeefcafe1234ull;
  s.num_latches = 6;
  s.progress.push_back({"ITP", 4});
  s.progress.push_back({"PDR", 7});
  mc::Lemma inv;
  inv.clause = {mc::mk_latch_lit(0, true), mc::mk_latch_lit(3, false)};
  inv.grade = mc::LemmaGrade::kInvariant;
  mc::Lemma frame;
  frame.clause = {mc::mk_latch_lit(5, true)};
  frame.grade = mc::LemmaGrade::kFrame;
  frame.bound = 9;
  frame.source = 2;
  mc::Lemma cand;
  cand.clause = {mc::mk_latch_lit(1, false), mc::mk_latch_lit(2, true),
                 mc::mk_latch_lit(4, false)};
  cand.grade = mc::LemmaGrade::kCandidate;
  s.lemmas = {inv, frame, cand};
  return s;
}

// --- the checksum primitive ------------------------------------------------

TEST(LemmaStore, Fnv1a64MatchesTheReferenceVectors) {
  // Published FNV-1a 64 test vectors: the offset basis and "a".
  EXPECT_EQ(mc::fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(mc::fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_NE(mc::fnv1a64("itpseq"), mc::fnv1a64("itpseR"));
}

// --- the design hash -------------------------------------------------------

TEST(LemmaStore, DesignHashIsStableAndStructureSensitive) {
  // Deterministic: the same structure hashes the same across builds of the
  // generator — this is what lets a resumed process recognize its design.
  EXPECT_EQ(mc::design_hash(bench::token_ring(6, false)),
            mc::design_hash(bench::token_ring(6, false)));
  // Sensitive: any structural difference — size, latch updates, even just
  // the property — must change the hash, or --resume would transplant
  // latch-indexed lemmas between circuits.
  EXPECT_NE(mc::design_hash(bench::token_ring(6, false)),
            mc::design_hash(bench::token_ring(7, false)));
  EXPECT_NE(mc::design_hash(bench::token_ring(6, false)),
            mc::design_hash(bench::token_ring(6, true)));
  EXPECT_NE(mc::design_hash(bench::counter(4, 12, 7)),
            mc::design_hash(bench::counter(4, 12, 8)));
}

// --- encode/decode ---------------------------------------------------------

TEST(LemmaStore, EncodeDecodeRoundTrips) {
  LemmaSnapshot s = sample_snapshot();
  LemmaSnapshot r = mc::decode_snapshot(mc::encode_snapshot(s));
  EXPECT_EQ(r.design, s.design);
  EXPECT_EQ(r.num_latches, s.num_latches);
  ASSERT_EQ(r.progress.size(), 2u);
  EXPECT_EQ(r.progress[0].engine, "ITP");
  EXPECT_EQ(r.progress[0].bound, 4u);
  EXPECT_EQ(r.progress[1].engine, "PDR");
  EXPECT_EQ(r.progress[1].bound, 7u);
  ASSERT_EQ(r.lemmas.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(r.lemmas[i].clause, s.lemmas[i].clause) << i;
    EXPECT_EQ(r.lemmas[i].grade, s.lemmas[i].grade) << i;
    EXPECT_EQ(r.lemmas[i].bound, s.lemmas[i].bound) << i;
    EXPECT_EQ(r.lemmas[i].source, s.lemmas[i].source) << i;
  }
}

TEST(LemmaStore, EmptySnapshotRoundTrips) {
  LemmaSnapshot s;
  s.design = 1;
  s.num_latches = 0;
  LemmaSnapshot r = mc::decode_snapshot(mc::encode_snapshot(s));
  EXPECT_EQ(r.design, 1u);
  EXPECT_TRUE(r.lemmas.empty());
  EXPECT_TRUE(r.progress.empty());
}

// --- untrusted input: every lie is a structured rejection ------------------

TEST(LemmaStore, EveryFlippedByteIsCaught) {
  // Flip each byte of the encoded body in turn: whatever the flip hits —
  // magic, a record, the checksum line itself — decode must throw.  This
  // is the corruption-detection contract in one sweep.
  std::string good = mc::encode_snapshot(sample_snapshot());
  ASSERT_EQ(decode_error(good), "");
  for (std::size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] ^= 0x01;
    EXPECT_NE(decode_error(bad), "") << "flip at byte " << i << " slipped by";
  }
}

TEST(LemmaStore, TruncationIsCaughtAtEveryLength) {
  // Every proper truncation must be rejected.  The one tolerated cut is
  // dropping only the final newline: all records and the checksum are
  // still intact, so that document is complete, not torn.
  std::string good = mc::encode_snapshot(sample_snapshot());
  for (std::size_t len = 0; len + 1 < good.size(); ++len) {
    EXPECT_NE(decode_error(good.substr(0, len)), "")
        << "truncation to " << len << " bytes slipped by";
  }
  EXPECT_EQ(decode_error(good.substr(0, good.size() - 1)), "");
}

TEST(LemmaStore, FramingErrorsAreStructured) {
  EXPECT_NE(decode_error("not a checkpoint\n").find("bad magic"),
            std::string::npos);
  EXPECT_NE(decode_error("itpseq-checkpoint 99\nchecksum 0\n")
                .find("unsupported version 99"),
            std::string::npos);
  std::string good = mc::encode_snapshot(sample_snapshot());
  EXPECT_NE(decode_error(good + "trailing garbage\n").find("truncated"),
            std::string::npos);
}

TEST(LemmaStore, RecordErrorsBehindAValidChecksumAreStructured) {
  // stamp() gives these bodies a correct checksum, so the failures below
  // are record-level validation, not the checksum gate.
  EXPECT_NE(decode_error(stamp("itpseq-checkpoint 1\n"))
                .find("missing design"),
            std::string::npos);
  EXPECT_NE(decode_error(stamp("itpseq-checkpoint 1\n"
                               "design zz latches 4\n"))
                .find("malformed design"),
            std::string::npos);
  EXPECT_NE(decode_error(stamp("itpseq-checkpoint 1\n"
                               "design 0 latches 4\n"
                               "gremlin 1 2 3\n"))
                .find("unknown record 'gremlin'"),
            std::string::npos);
  EXPECT_NE(decode_error(stamp("itpseq-checkpoint 1\n"
                               "design 0 latches 4\n"
                               "lemma candidate 0 0 8\n"))
                .find("literal 8 out of range"),
            std::string::npos);
  // A lemma before any design record has no literal domain to check
  // against: rejected, not trusted.
  EXPECT_NE(decode_error(stamp("itpseq-checkpoint 1\n"
                               "lemma candidate 0 0 1\n"
                               "design 0 latches 4\n"))
                .find("malformed lemma"),
            std::string::npos);
}

TEST(LemmaStore, OutOfRangeLiteralIsRejectedOnEncodeSideToo) {
  // encode_snapshot serializes whatever it is given; the *decoder* is the
  // trust boundary, and it must reject the result.
  LemmaSnapshot s;
  s.num_latches = 2;
  mc::Lemma l;
  l.clause = {mc::mk_latch_lit(3, false)};  // lit 6 >= 2*2
  s.lemmas.push_back(l);
  EXPECT_NE(decode_error(mc::encode_snapshot(s)).find("out of range"),
            std::string::npos);
}

// --- file round trip -------------------------------------------------------

TEST(LemmaStore, WriteReadRoundTripsAndOverwritesAtomically) {
  std::string path = temp_path("roundtrip.its");
  LemmaSnapshot s = sample_snapshot();
  ASSERT_TRUE(mc::write_snapshot_file(path, s));
  LemmaSnapshot r = mc::read_snapshot_file(path);
  EXPECT_EQ(r.design, s.design);
  EXPECT_EQ(r.lemmas.size(), s.lemmas.size());
  // Overwrite with a different snapshot: the path must hold the new one
  // complete (temp+rename — no append, no partial mix).
  s.design ^= 0xffff;
  s.lemmas.clear();
  ASSERT_TRUE(mc::write_snapshot_file(path, s));
  r = mc::read_snapshot_file(path);
  EXPECT_EQ(r.design, sample_snapshot().design ^ 0xffff);
  EXPECT_TRUE(r.lemmas.empty());
  std::remove(path.c_str());
}

TEST(LemmaStore, MissingFileIsAStructuredError) {
  try {
    mc::read_snapshot_file(temp_path("does_not_exist.its"));
    FAIL() << "missing file was read";
  } catch (const mc::SnapshotError& e) {
    EXPECT_EQ(std::string(e.what()).rfind("snapshot: cannot open", 0), 0u)
        << e.what();
  }
}

// --- the restore path through the portfolio --------------------------------

TEST(LemmaStore, SeededLemmasAreRestoredAndDoNotChangeTheVerdict) {
  // A checkpointed PASS run's lemmas, re-entering via seed_lemmas: the
  // run counts them as restored, writes a fresh decodable checkpoint whose
  // design hash matches the model, and reaches the same verdict.
  aig::Aig model = bench::token_ring(6, false);
  mc::PortfolioOptions po;
  po.time_limit_sec = 30.0;
  po.members = {mc::PortfolioMember::kPdr, mc::PortfolioMember::kItp};
  po.checkpoint_path = temp_path("seeded.its");
  mc::EngineResult first = mc::check_portfolio(model, 0, po);
  ASSERT_EQ(first.verdict, mc::Verdict::kPass);
  LemmaSnapshot snap = mc::read_snapshot_file(po.checkpoint_path);
  EXPECT_EQ(snap.design, mc::design_hash(model));
  EXPECT_EQ(snap.num_latches, model.num_latches());

  po.seed_lemmas = snap.lemmas;
  mc::EngineResult second = mc::check_portfolio(model, 0, po);
  EXPECT_EQ(second.verdict, mc::Verdict::kPass);
  if (!snap.lemmas.empty()) {
    EXPECT_GT(second.stats.lemmas_restored, 0u) << "no seed was restored";
  }
  std::remove(po.checkpoint_path.c_str());
}

TEST(LemmaStore, HostileSeedLemmasCannotFlipAFailVerdict) {
  // A forged snapshot claiming the bad states are unreachable: every seed
  // re-enters as kCandidate, so PDR's relative-induction check must discard
  // it and the counterexample must still be found.
  aig::Aig model = bench::counter(4, 12, 7);
  mc::PortfolioOptions po;
  po.time_limit_sec = 30.0;
  po.members = {mc::PortfolioMember::kPdr, mc::PortfolioMember::kBmc};
  for (std::size_t i = 0; i < model.num_latches(); ++i) {
    mc::Lemma l;
    l.clause = {mc::mk_latch_lit(i, true)};  // "latch i is always 0"
    l.grade = mc::LemmaGrade::kInvariant;    // forged grade: must be demoted
    po.seed_lemmas.push_back(l);
  }
  mc::EngineResult r = mc::check_portfolio(model, 0, po);
  EXPECT_EQ(r.verdict, mc::Verdict::kFail);
}

}  // namespace
}  // namespace itpseq
