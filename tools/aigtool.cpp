// aigtool — swiss-army utility for AIGER/BLIF circuits.
//
// Subcommands:
//   stats FILE                    print size, depth and property statistics
//   convert IN OUT                convert between .aag / .aig / .blif
//   opt IN OUT [passes...]       optimize combinational logic; passes are
//                                 any of --rewrite --balance --fraig, run
//                                 in the order given (default: all three)
//   sim FILE [STEPS] [SEED]       64-way random simulation; reports the
//                                 first depth at which a bad output fires
//   diameter FILE [SECONDS]       exact BDD forward/backward diameters
//
// Exit code 0 on success, 1 on usage or input errors.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "aig/aiger_io.hpp"
#include "aig/compact.hpp"
#include "bdd/reach.hpp"
#include "io/blif.hpp"
#include "mc/portfolio.hpp"
#include "opt/balance.hpp"
#include "opt/fraig.hpp"
#include "opt/refactor.hpp"
#include "opt/rewrite.hpp"

using namespace itpseq;

namespace {

bool has_suffix(const std::string& s, const char* suf) {
  std::size_t n = std::strlen(suf);
  return s.size() >= n && s.compare(s.size() - n, n, suf) == 0;
}

aig::Aig load(const std::string& path) {
  if (has_suffix(path, ".blif")) return io::read_blif_file(path);
  return aig::read_aiger_file(path);
}

void save(const aig::Aig& g, const std::string& path) {
  if (has_suffix(path, ".blif"))
    io::write_blif_file(g, path);
  else
    aig::write_aiger_file(g, path);
}

/// Roots of the sequential logic: outputs, latch next-states, constraints.
std::vector<aig::Lit> sequential_roots(const aig::Aig& g) {
  std::vector<aig::Lit> roots;
  for (std::size_t i = 0; i < g.num_outputs(); ++i)
    roots.push_back(g.output(i));
  for (std::size_t i = 0; i < g.num_latches(); ++i)
    roots.push_back(g.latch_next(i));
  for (std::size_t i = 0; i < g.num_constraints(); ++i)
    roots.push_back(g.constraint(i));
  return roots;
}

/// Reassemble a sequential circuit from optimized roots (the inverse of
/// sequential_roots: leading roots are outputs, then latch nexts, then
/// constraints).
aig::Aig reassemble(const aig::Aig& original, aig::Aig&& graph,
                    const std::vector<aig::Lit>& roots) {
  aig::Aig g = std::move(graph);
  std::size_t no = original.num_outputs(), nl = original.num_latches();
  for (std::size_t i = 0; i < no; ++i)
    g.add_output(roots[i], original.output_name(i));
  for (std::size_t i = 0; i < nl; ++i)
    g.set_latch_next(g.latch(i), roots[no + i]);
  for (std::size_t i = 0; i < original.num_constraints(); ++i)
    g.add_constraint(roots[no + nl + i]);
  return g;
}

int cmd_stats(const std::string& path) {
  aig::Aig g = load(path);
  std::printf("%s:\n", path.c_str());
  std::printf("  inputs      %zu\n", g.num_inputs());
  std::printf("  latches     %zu\n", g.num_latches());
  std::printf("  ands        %zu\n", g.num_ands());
  std::printf("  outputs     %zu\n", g.num_outputs());
  std::printf("  constraints %zu\n", g.num_constraints());
  std::vector<aig::Lit> roots = sequential_roots(g);
  std::size_t depth = 0, live = 0;
  for (aig::Lit r : roots)
    depth = std::max(depth, opt::cone_depth(g, r));
  for (aig::Var v : g.cone(roots))
    if (g.is_and(v)) ++live;
  std::printf("  depth       %zu\n", depth);
  std::printf("  live ands   %zu (%zu dead)\n", live, g.num_ands() - live);
  for (std::size_t i = 0; i < g.num_outputs(); ++i)
    std::printf("  output %zu: cone %zu ands, support %zu leaves\n", i,
                g.cone_size(g.output(i)), g.support(g.output(i)).size());
  return 0;
}

int cmd_convert(const std::string& in, const std::string& out) {
  save(load(in), out);
  return 0;
}

int cmd_opt(const std::string& in, const std::string& out,
            const std::vector<std::string>& passes) {
  aig::Aig g = load(in);
  std::vector<std::string> order = passes;
  if (order.empty()) order = {"--rewrite", "--refactor", "--balance", "--fraig"};
  std::printf("%s: %zu ands", in.c_str(), g.num_ands());
  for (const std::string& p : order) {
    std::vector<aig::Lit> roots = sequential_roots(g);
    if (p == "--rewrite") {
      aig::CompactResult r = opt::rewrite(g, roots);
      g = reassemble(g, std::move(r.graph), r.roots);
    } else if (p == "--balance") {
      aig::CompactResult r = opt::balance(g, roots);
      g = reassemble(g, std::move(r.graph), r.roots);
    } else if (p == "--refactor") {
      aig::CompactResult r = opt::refactor(g, roots);
      g = reassemble(g, std::move(r.graph), r.roots);
    } else if (p == "--fraig") {
      opt::FraigResult r = opt::fraig(g, roots);
      g = reassemble(g, std::move(r.graph), r.roots);
    } else {
      std::fprintf(stderr, "unknown pass '%s'\n", p.c_str());
      return 1;
    }
    std::printf(" -> %s %zu", p.c_str() + 2, g.num_ands());
  }
  std::printf("\n");
  save(g, out);
  return 0;
}

int cmd_sim(const std::string& path, unsigned steps, std::uint64_t seed) {
  aig::Aig g = load(path);
  mc::EngineResult r = mc::check_random_sim(g, 0, steps, /*rounds=*/64, seed);
  if (r.verdict == mc::Verdict::kFail)
    std::printf("%s: bad output fires at depth %u\n", path.c_str(),
                r.cex.depth());
  else
    std::printf("%s: no failure within %u random steps\n", path.c_str(),
                steps);
  return 0;
}

int cmd_diameter(const std::string& path, double seconds) {
  aig::Aig g = load(path);
  bdd::ReachBudget budget;
  budget.seconds = seconds;
  // Pure eccentricities (no early exit on property failure).
  bdd::SymbolicModel m(g);
  bdd::ReachResult fwd = bdd::forward_diameter(m, budget);
  if (fwd.diameter)
    std::printf("d_F = %u\n", *fwd.diameter);
  else
    std::printf("d_F = ovf\n");
  bdd::SymbolicModel m2(g);
  bdd::ReachResult bwd = bdd::backward_diameter(m2, budget);
  if (bwd.diameter)
    std::printf("d_B = %u\n", *bwd.diameter);
  else
    std::printf("d_B = ovf\n");
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: aigtool stats FILE\n"
               "       aigtool convert IN OUT\n"
               "       aigtool opt IN OUT [--rewrite|--refactor|--balance|--fraig ...]\n"
               "       aigtool sim FILE [STEPS] [SEED]\n"
               "       aigtool diameter FILE [SECONDS]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    usage();
    return 1;
  }
  std::string cmd = argv[1];
  try {
    if (cmd == "stats") return cmd_stats(argv[2]);
    if (cmd == "convert" && argc >= 4) return cmd_convert(argv[2], argv[3]);
    if (cmd == "opt" && argc >= 4) {
      std::vector<std::string> passes(argv + 4, argv + argc);
      return cmd_opt(argv[2], argv[3], passes);
    }
    if (cmd == "sim")
      return cmd_sim(argv[2], argc > 3 ? std::stoul(argv[3]) : 100,
                     argc > 4 ? std::stoull(argv[4]) : 1);
    if (cmd == "diameter")
      return cmd_diameter(argv[2], argc > 3 ? std::stod(argv[3]) : 60.0);
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "aigtool: %s\n", ex.what());
    return 1;
  }
  usage();
  return 1;
}
