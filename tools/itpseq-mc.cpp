// itpseq-mc — command-line model checker.
//
// The deployable front door to the library: reads a sequential circuit in
// AIGER (.aig/.aag) or BLIF (.blif) format, runs one of the paper's
// engines (or the portfolio), and reports PASS / FAIL / UNKNOWN together
// with the depth measures of Table I.  Counterexamples can be minimized,
// validated by replay, and written as AIGER witnesses.
//
// Exit-code contract (stable; scripts may rely on it):
//    0  verdict reached: property holds (PASS)
//    1  verdict reached: property violated (FAIL; witness available)
//    2  usage error: bad flags, unreadable/corrupt input, property out of
//       range, certification requested from an engine that cannot certify
//    3  resource-exhausted: no verdict within the wall-clock/memory budget
//       (UNKNOWN; partial stats are still reported)
//    4  internal error: an engine failed (ERROR verdict), a witness or
//       certificate failed validation, or a report could not be written
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "aig/aiger_io.hpp"
#include "io/blif.hpp"
#include "mc/certify.hpp"
#include "mc/engine.hpp"
#include "mc/itpseq_verif.hpp"
#include "mc/kinduction.hpp"
#include "mc/lemma_store.hpp"
#include "mc/portfolio.hpp"
#include "mc/run_report.hpp"
#include "mc/sim.hpp"
#include "mc/trace_min.hpp"
#include "mc/witness.hpp"
#include "bdd/reach.hpp"
#include "obs/trace.hpp"
#include "util/fault.hpp"
#include "util/mem_budget.hpp"

using namespace itpseq;

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options] FILE\n"
               "\n"
               "FILE                circuit in AIGER (.aig/.aag) or BLIF format\n"
               "\n"
               "options:\n"
               "  -e, --engine E    itp | itp-part | itpseq | sitpseq |\n"
               "                    itpseq-cba | itpseq-pba | itpseq-cba-pba |\n"
               "                    pdr | bmc | kind | bdd | portfolio\n"
               "                    (default sitpseq)\n"
               "  -p, --property N  bad-output index to check (default 0)\n"
               "  -t, --timeout S   wall-clock budget in seconds (default 60)\n"
               "      --mem-limit MB\n"
               "                    resident-set budget in megabytes (default\n"
               "                    unlimited).  Crossing 80%% sheds solver\n"
               "                    ballast (inprocessing off, aggressive\n"
               "                    clause-DB reduction); at the limit the\n"
               "                    run ends cleanly with UNKNOWN and partial\n"
               "                    stats instead of an allocator abort\n"
               "      --inject-fault SPEC\n"
               "                    deterministic fault injection for testing\n"
               "                    containment: SPEC is a comma-separated\n"
               "                    list of site:nth[:count[:kind]] with kind\n"
               "                    oom (default) | error | stall[MS]; also\n"
               "                    settable via ITPSEQ_FAULTS (see\n"
               "                    src/util/fault.hpp for the site list)\n"
               "  -k, --max-bound K BMC bound limit (default 500)\n"
               "      --scheme S    exact | assume   BMC target scheme (default assume)\n"
               "      --itp-system S mcmillan | pudlak | inverse  (default mcmillan)\n"
               "      --alpha A     serial fraction for sitpseq (default 0.5)\n"
               "      --dynamic     dynamic serialization (overrides --alpha)\n"
               "      --fraig       SAT-sweep interpolants before storing them\n"
               "      --sat-restarts M\n"
               "                    luby | ema   restart policy for every\n"
               "                    engine's SAT solvers (default luby;\n"
               "                    ema = Glucose-style adaptive glue)\n"
               "      --sat-inprocess[=on|off]\n"
               "                    in-solver inprocessing (subsumption, var\n"
               "                    elimination, vivification, probing) for\n"
               "                    every engine's SAT solvers (default on;\n"
               "                    proof-logging safe)\n"
               "      --incremental[=on|off]\n"
      "                    incremental BMC solver (bmc engine only;\n"
      "                    default on, off = monolithic re-encoding\n"
      "                    cross-check mode)\n"
               "      --pdr-lift[=on|off]\n"
               "                    ternary-simulation cube lifting in PDR\n"
               "                    (default on)\n"
               "      --pdr-ctg[=on|off]\n"
               "                    CTG-aware generalization in PDR (default on)\n"
               "      --pdr-ctg-depth N\n"
               "                    max ctgDown recursion depth (default 1)\n"
               "  -j, --jobs N      portfolio worker threads (0 = auto,\n"
               "                    1 = sequential round-robin scheduler)\n"
               "      --no-exchange disable cross-engine lemma exchange\n"
               "                    (portfolio engine only)\n"
               "      --checkpoint F\n"
               "                    portfolio only: snapshot the lemma-\n"
               "                    exchange hub to F (atomic temp+rename)\n"
               "                    periodically, on watchdog/memory\n"
               "                    escalation, and at run end\n"
               "      --checkpoint-interval S\n"
               "                    seconds between snapshots (default 5)\n"
               "      --resume F    portfolio only: seed the run from\n"
               "                    checkpoint F; restored lemmas re-enter\n"
               "                    as unverified candidates; a corrupt or\n"
               "                    mismatched snapshot is a clean exit 2\n"
               "  -w, --witness F   write a FAIL witness to file F ('-' = stdout)\n"
               "      --no-minimize do not minimize counterexample traces\n"
               "      --validate    replay the counterexample before reporting\n"
               "      --certify     on PASS, verify the engine's inductive-\n"
               "                    invariant certificate independently\n"
               "      --invariant F on PASS, write the certificate invariant\n"
               "                    as a circuit (input i = latch i) to F\n"
               "      --trace-out F write a structured event trace to F\n"
               "      --trace-format jsonl | chrome\n"
               "                    jsonl (default): one event object per\n"
               "                    line; chrome: Chrome trace-event JSON\n"
               "                    for Perfetto / chrome://tracing\n"
               "      --stats-json F\n"
               "                    write a machine-readable run report\n"
               "                    (verdict, per-engine spans, counters,\n"
               "                    lemma-exchange matrix) to F\n"
               "      --progress    throttled one-line search-rate reports\n"
               "                    on stderr while engines run\n"
               "  -q, --quiet       suppress all 'c ...' comment lines;\n"
               "                    stdout carries only the 's VERDICT' line\n"
               "  -h, --help        this message\n"
               "\n"
               "exit codes:\n"
               "  0  PASS    property holds\n"
               "  1  FAIL    property violated (witness available)\n"
               "  2  usage/input error (bad flags, corrupt file, bad range)\n"
               "  3  UNKNOWN resource budget exhausted, partial stats emitted\n"
               "  4  ERROR   engine failure, validation failure, or write\n"
               "             failure\n"
               "\n"
               "Tracing a run:\n"
               "  %s -e portfolio -j 4 --trace-out run.trace \\\n"
               "      --trace-format chrome --stats-json run.json design.aig\n"
               "  Load run.trace in https://ui.perfetto.dev to see each\n"
               "  worker's engine spans (bounds, PDR frontiers, SAT restarts)\n"
               "  on its own thread track; run.json summarizes the same run\n"
               "  for scripts.  Add --progress to watch conflict/propagation\n"
               "  rates live.  JSONL traces (the default format) are one\n"
               "  self-describing object per line:\n"
               "    {\"ts_us\":..,\"tid\":..,\"engine\":\"PDR\",\n"
               "     \"kind\":\"span\",\"payload\":{...}}\n"
               "\n"
               "Checkpoint & resume:\n"
               "  %s -e portfolio -j 4 --checkpoint run.ckpt \\\n"
               "      --checkpoint-interval 2 design.aig\n"
               "  The run snapshots its lemma hub (graded clauses plus per-\n"
               "  member progress, checksummed, renamed atomically into\n"
               "  place) every 2 seconds, so a crash or SIGKILL loses at\n"
               "  most one interval of learned clauses.  Pick the run back\n"
               "  up with:\n"
               "  %s -e portfolio -j 4 --resume run.ckpt design.aig\n"
               "  Restored lemmas are demoted to candidates and re-verified\n"
               "  by the consuming engines before use, so resuming can only\n"
               "  speed a run up — never change its verdict.  A truncated,\n"
               "  corrupted, or wrong-design snapshot is rejected with a\n"
               "  'snapshot: ...' diagnostic and exit code 2.\n",
               argv0, argv0, argv0, argv0);
}

aig::Aig load(const std::string& path) {
  if (path.size() >= 5 && path.substr(path.size() - 5) == ".blif")
    return io::read_blif_file(path);
  return aig::read_aiger_file(path);
}

struct Args {
  std::string file;
  std::string engine = "sitpseq";
  std::size_t property = 0;
  double timeout = 60.0;
  unsigned max_bound = 500;
  std::string witness_file;
  bool minimize = true;
  bool validate = false;
  bool certify = false;
  std::string invariant_file;
  bool quiet = false;
  unsigned jobs = 0;        // portfolio: 0 = auto, 1 = sequential
  bool exchange = true;     // portfolio: cross-engine lemma exchange
  std::string trace_out;
  obs::TraceConfig::Format trace_format = obs::TraceConfig::Format::kJsonl;
  std::string stats_json_file;
  bool progress = false;
  std::size_t mem_limit_mb = 0;  // 0 = unlimited
  std::string inject_fault;      // fault plan (validated in main)
  std::string checkpoint_file;   // portfolio lemma checkpoint ("" = off)
  double checkpoint_interval = 5.0;
  std::string resume_file;       // checkpoint to restore ("" = fresh run)
  /// Lemmas restored from resume_file (validated in main before dispatch).
  std::vector<mc::Lemma> seed_lemmas;
  mc::EngineOptions opts;
};

bool parse_args(int argc, char** argv, Args& a) {
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s: missing argument for %s\n", argv[0], argv[i]);
      return nullptr;
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    std::string s = argv[i];
    const char* v;
    if (s == "-h" || s == "--help") return false;
    if (s == "-e" || s == "--engine") {
      if (!(v = need(i))) return false;
      // Keep in sync with dispatch(): an unknown engine is a usage error
      // (exit 2), not an engine failure discovered after the model loads.
      static const char* const kEngines[] = {
          "itp",  "itp-part",       "itpseq", "sitpseq", "itpseq-cba",
          "itpseq-pba", "itpseq-cba-pba", "pdr",    "bmc",     "kind",
          "portfolio",  "bdd"};
      bool known = false;
      for (const char* name : kEngines)
        if (!std::strcmp(v, name)) known = true;
      if (!known) {
        std::fprintf(stderr, "unknown engine '%s'\n", v);
        return false;
      }
      a.engine = v;
    } else if (s == "-p" || s == "--property") {
      if (!(v = need(i))) return false;
      a.property = std::stoul(v);
    } else if (s == "-t" || s == "--timeout") {
      if (!(v = need(i))) return false;
      a.timeout = std::stod(v);
    } else if (s == "--mem-limit") {
      if (!(v = need(i))) return false;
      a.mem_limit_mb = std::stoul(v);
    } else if (s == "--inject-fault") {
      if (!(v = need(i))) return false;
      a.inject_fault = v;
    } else if (s == "-k" || s == "--max-bound") {
      if (!(v = need(i))) return false;
      a.max_bound = static_cast<unsigned>(std::stoul(v));
    } else if (s == "--scheme") {
      if (!(v = need(i))) return false;
      if (!std::strcmp(v, "exact"))
        a.opts.scheme = cnf::TargetScheme::kExact;
      else if (!std::strcmp(v, "assume"))
        a.opts.scheme = cnf::TargetScheme::kExactAssume;
      else {
        std::fprintf(stderr, "unknown scheme '%s'\n", v);
        return false;
      }
    } else if (s == "--itp-system") {
      if (!(v = need(i))) return false;
      if (!std::strcmp(v, "mcmillan"))
        a.opts.itp_system = itp::System::kMcMillan;
      else if (!std::strcmp(v, "pudlak"))
        a.opts.itp_system = itp::System::kPudlak;
      else if (!std::strcmp(v, "inverse"))
        a.opts.itp_system = itp::System::kInverseMcMillan;
      else {
        std::fprintf(stderr, "unknown interpolation system '%s'\n", v);
        return false;
      }
    } else if (s == "--alpha") {
      if (!(v = need(i))) return false;
      a.opts.serial_alpha = std::stod(v);
    } else if (s == "--dynamic") {
      a.opts.serial_dynamic = true;
    } else if (s == "--fraig") {
      a.opts.fraig_interpolants = true;
    } else if (s == "--pdr-lift" || s == "--pdr-lift=on") {
      a.opts.pdr_lift = true;
    } else if (s == "--pdr-lift=off" || s == "--no-pdr-lift") {
      a.opts.pdr_lift = false;
    } else if (s == "--pdr-ctg" || s == "--pdr-ctg=on") {
      a.opts.pdr_ctg = true;
    } else if (s == "--pdr-ctg=off" || s == "--no-pdr-ctg") {
      a.opts.pdr_ctg = false;
    } else if (s == "--pdr-ctg-depth") {
      if (!(v = need(i))) return false;
      a.opts.pdr_ctg_depth = static_cast<unsigned>(std::stoul(v));
    } else if (s == "--sat-restarts") {
      if (!(v = need(i))) return false;
      if (!std::strcmp(v, "luby"))
        a.opts.sat_restarts = sat::RestartMode::kLuby;
      else if (!std::strcmp(v, "ema"))
        a.opts.sat_restarts = sat::RestartMode::kEma;
      else {
        std::fprintf(stderr, "unknown restart mode '%s'\n", v);
        return false;
      }
    } else if (s == "--sat-inprocess" || s == "--sat-inprocess=on") {
      a.opts.sat_inprocess = true;
    } else if (s == "--sat-inprocess=off" || s == "--no-sat-inprocess") {
      a.opts.sat_inprocess = false;
    } else if (s == "--incremental" || s == "--incremental=on") {
      a.opts.bmc_incremental = true;
    } else if (s == "--incremental=off" || s == "--no-incremental") {
      a.opts.bmc_incremental = false;
    } else if (s == "-j" || s == "--jobs") {
      if (!(v = need(i))) return false;
      a.jobs = static_cast<unsigned>(std::stoul(v));
    } else if (s == "--no-exchange") {
      a.exchange = false;
    } else if (s == "--checkpoint") {
      if (!(v = need(i))) return false;
      a.checkpoint_file = v;
    } else if (s == "--checkpoint-interval") {
      if (!(v = need(i))) return false;
      a.checkpoint_interval = std::stod(v);
    } else if (s == "--resume") {
      if (!(v = need(i))) return false;
      a.resume_file = v;
    } else if (s == "-w" || s == "--witness") {
      if (!(v = need(i))) return false;
      a.witness_file = v;
    } else if (s == "--no-minimize") {
      a.minimize = false;
    } else if (s == "--validate") {
      a.validate = true;
    } else if (s == "--certify") {
      a.certify = true;
    } else if (s == "--invariant") {
      if (!(v = need(i))) return false;
      a.invariant_file = v;
    } else if (s == "--trace-out") {
      if (!(v = need(i))) return false;
      a.trace_out = v;
    } else if (s == "--trace-format") {
      if (!(v = need(i))) return false;
      if (!std::strcmp(v, "jsonl"))
        a.trace_format = obs::TraceConfig::Format::kJsonl;
      else if (!std::strcmp(v, "chrome"))
        a.trace_format = obs::TraceConfig::Format::kChrome;
      else {
        std::fprintf(stderr, "unknown trace format '%s'\n", v);
        return false;
      }
    } else if (s == "--stats-json") {
      if (!(v = need(i))) return false;
      a.stats_json_file = v;
    } else if (s == "--progress") {
      a.progress = true;
    } else if (s == "-q" || s == "--quiet") {
      a.quiet = true;
    } else if (!s.empty() && s[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", s.c_str());
      return false;
    } else if (a.file.empty()) {
      a.file = s;
    } else {
      std::fprintf(stderr, "multiple input files\n");
      return false;
    }
  }
  if (a.file.empty()) {
    std::fprintf(stderr, "no input file\n");
    return false;
  }
  if ((!a.checkpoint_file.empty() || !a.resume_file.empty()) &&
      a.engine != "portfolio") {
    std::fprintf(stderr,
                 "--checkpoint/--resume snapshot the portfolio's lemma "
                 "exchange; rerun with -e portfolio\n");
    return false;
  }
  return true;
}

mc::EngineResult dispatch(const Args& a, const aig::Aig& g) {
  mc::EngineOptions o = a.opts;
  o.time_limit_sec = a.timeout;
  o.max_bound = a.max_bound;
  const std::string& e = a.engine;
  if (e == "itp") return mc::check_itp(g, a.property, o);
  if (e == "itp-part") {
    o.itp_partitioned = true;
    return mc::check_itp(g, a.property, o);
  }
  if (e == "itpseq") return mc::check_itpseq(g, a.property, o);
  if (e == "sitpseq") return mc::check_sitpseq(g, a.property, o);
  if (e == "itpseq-cba") return mc::check_itpseq_cba(g, a.property, o);
  if (e == "itpseq-pba") return mc::check_itpseq_pba(g, a.property, o);
  if (e == "itpseq-cba-pba")
    return mc::check_itpseq_cba_pba(g, a.property, o);
  if (e == "pdr") return mc::check_pdr(g, a.property, o);
  if (e == "bmc") return mc::check_bmc(g, a.property, o);
  if (e == "kind") return mc::check_kinduction(g, a.property, o);
  if (e == "portfolio") {
    mc::PortfolioOptions po;
    po.time_limit_sec = a.timeout;
    po.jobs = a.jobs;
    po.exchange = a.exchange;
    po.engine_defaults = o;
    po.checkpoint_path = a.checkpoint_file;
    po.checkpoint_interval_sec = a.checkpoint_interval;
    po.seed_lemmas = a.seed_lemmas;
    return mc::check_portfolio(g, a.property, po);
  }
  if (e == "bdd") {
    bdd::ReachBudget rb;
    rb.seconds = a.timeout;
    bdd::ReachResult br = bdd::bdd_check(g, a.property, rb);
    mc::EngineResult r;
    r.engine = "BDD";
    switch (br.verdict) {
      case bdd::ReachVerdict::kPass: r.verdict = mc::Verdict::kPass; break;
      case bdd::ReachVerdict::kFail:
        r.verdict = mc::Verdict::kFail;
        r.k_fp = br.depth;
        break;
      default: r.verdict = mc::Verdict::kUnknown; break;
    }
    return r;
  }
  throw std::runtime_error("unknown engine '" + e + "'");
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  bool args_ok = false;
  try {
    args_ok = parse_args(argc, argv, a);
  } catch (const std::exception& ex) {
    // Malformed numerics (std::stoul and friends) are usage errors, not
    // uncaught-exception aborts.
    std::fprintf(stderr, "%s: bad argument: %s\n", argv[0], ex.what());
  }
  if (!args_ok) {
    usage(argv[0]);
    return 2;
  }
  try {
    util::fault::configure_from_env();
    if (!a.inject_fault.empty()) util::fault::configure(a.inject_fault);
  } catch (const std::invalid_argument& ex) {
    std::fprintf(stderr, "%s: %s\n", argv[0], ex.what());
    return 2;
  }
  if (a.mem_limit_mb != 0)
    util::MemoryBudget::instance().set_limit_mb(a.mem_limit_mb);
  aig::Aig g;
  try {
    g = load(a.file);
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "%s: %s\n", argv[0], ex.what());
    return 2;
  }
  if (a.property >= g.num_outputs() && g.num_outputs() > 0) {
    std::fprintf(stderr, "%s: property %zu out of range (%zu outputs)\n",
                 argv[0], a.property, g.num_outputs());
    return 2;
  }
  if (!a.quiet)
    std::printf("c %s: %zu inputs, %zu latches, %zu ands, %zu outputs\n",
                a.file.c_str(), g.num_inputs(), g.num_latches(), g.num_ands(),
                g.num_outputs());

  // Resume: load and validate the snapshot *before* any engine runs — a
  // corrupt, truncated, or wrong-design checkpoint is a usage/input error
  // (exit 2), exactly like a corrupt model file.  Lemmas that survive
  // decoding are still untrusted: check_portfolio demotes every one to
  // kCandidate, so they re-enter proofs only through consumers' own
  // soundness checks.
  if (!a.resume_file.empty()) {
    mc::LemmaSnapshot snap;
    try {
      snap = mc::read_snapshot_file(a.resume_file);
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "%s: %s\n", argv[0], ex.what());
      return 2;
    }
    if (snap.design != mc::design_hash(g) ||
        snap.num_latches != g.num_latches()) {
      std::fprintf(stderr,
                   "%s: snapshot: design mismatch (snapshot %016" PRIx64
                   " with %zu latches, model %016" PRIx64
                   " with %zu latches)\n",
                   argv[0], snap.design, snap.num_latches,
                   mc::design_hash(g), g.num_latches());
      return 2;
    }
    a.seed_lemmas = std::move(snap.lemmas);
    if (!a.quiet)
      std::printf(
          "c resume: restored %zu lemmas from %s (re-entering as candidates)\n",
          a.seed_lemmas.size(), a.resume_file.c_str());
  }
  if (!a.quiet && !a.checkpoint_file.empty())
    std::printf("c checkpoint: %s every %.3gs\n", a.checkpoint_file.c_str(),
                a.checkpoint_interval);

  // Tracing covers exactly the engine run: install before dispatch, finish
  // (drain + close) after every engine thread has joined — check_portfolio
  // joins its pool before returning, so dispatch() returning is the barrier.
  std::unique_ptr<obs::TraceSink> sink;
  if (!a.trace_out.empty() || !a.stats_json_file.empty() || a.progress) {
    obs::TraceConfig tc;
    tc.path = a.trace_out;
    tc.format = a.trace_format;
    tc.progress = a.progress;
    sink = std::make_unique<obs::TraceSink>(std::move(tc));
  }

  mc::EngineResult r;
  try {
    r = dispatch(a, g);
  } catch (const std::exception& ex) {
    // Engines contain their own failures (Verdict::kError); reaching this
    // boundary means the dispatch plumbing itself broke.
    std::fprintf(stderr, "%s: %s\n", argv[0], ex.what());
    return 4;
  }
  if (sink != nullptr) sink->finish();
  if (!a.stats_json_file.empty() &&
      !mc::write_stats_json(a.stats_json_file, r, sink.get(), "itpseq-mc",
                            a.file)) {
    std::fprintf(stderr, "cannot write %s\n", a.stats_json_file.c_str());
    return 4;
  }

  // The BDD engine reports FAIL without a concrete trace.
  bool have_trace =
      r.verdict == mc::Verdict::kFail && !r.cex.inputs.empty();
  if (have_trace && a.minimize)
    r.cex = mc::minimize_trace(g, r.cex, a.property);
  if (have_trace && a.validate && !mc::trace_is_cex(g, r.cex, a.property)) {
    std::fprintf(stderr, "%s: internal error: witness failed validation\n",
                 argv[0]);
    return 4;
  }
  if (r.verdict == mc::Verdict::kPass && a.certify) {
    if (!r.certificate.has_value()) {
      std::fprintf(stderr,
                   "%s: engine '%s' does not emit certificates; rerun with "
                   "an interpolation engine\n",
                   argv[0], r.engine.c_str());
      return 2;
    }
    mc::CertifyResult c = mc::check_certificate(g, a.property, *r.certificate);
    if (!c.ok) {
      std::fprintf(stderr, "%s: certificate check failed: %s\n", argv[0],
                   c.error.c_str());
      return 4;
    }
    if (!a.quiet)
      std::printf("c certificate: OK (invariant %zu AND nodes)\n",
                  r.certificate->graph.cone_size(r.certificate->root));
  }
  if (r.verdict == mc::Verdict::kPass && !a.invariant_file.empty()) {
    if (!r.certificate.has_value()) {
      std::fprintf(stderr, "%s: engine '%s' does not emit certificates\n",
                   argv[0], r.engine.c_str());
      return 2;
    }
    aig::Aig inv = r.certificate->graph;  // copy; add the root as output
    inv.add_output(r.certificate->root, "invariant");
    if (a.invariant_file.size() >= 5 &&
        a.invariant_file.substr(a.invariant_file.size() - 5) == ".blif")
      io::write_blif_file(inv, a.invariant_file, "invariant");
    else
      aig::write_aiger_file(inv, a.invariant_file);
  }

  if (!a.quiet) {
    std::printf("c engine=%s time=%.3fs k_fp=%u j_fp=%u\n", r.engine.c_str(),
                r.seconds, r.k_fp, r.j_fp);
    std::printf("c sat_calls=%" PRIu64 " conflicts=%" PRIu64
                " proof_clauses=%" PRIu64 " max_itp=%zu\n",
                r.stats.sat_calls, r.stats.sat_conflicts,
                r.stats.proof_clauses, r.stats.max_itp_nodes);
    if (r.stats.cba_visible_latches > 0)
      std::printf("c abstraction: visible=%u refinements=%u\n",
                  r.stats.cba_visible_latches, r.stats.cba_refinements);
    if (r.stats.lemmas_published > 0 || r.stats.lemmas_consumed > 0)
      std::printf("c exchange: published=%" PRIu64 " consumed=%" PRIu64
                  " restored=%" PRIu64 "\n",
                  r.stats.lemmas_published, r.stats.lemmas_consumed,
                  r.stats.lemmas_restored);
    // Per-member fates (portfolio): lets a user see which member won, which
    // ran out of budget, which crashed with what error, and which had to be
    // relaunched by the self-healing policy on the way to its verdict.
    for (const mc::MemberOutcome& m : r.members) {
      std::string retry;
      if (m.restarts > 0)
        retry = " restarts=" + std::to_string(m.restarts) + " last_error=" +
                mc::to_string(m.last_error.kind);
      if (m.error.kind != mc::ErrorKind::kNone)
        std::printf("c member %s verdict=%s time=%.3fs%s error=%s: %s\n",
                    m.member.c_str(), mc::to_string(m.verdict), m.seconds,
                    retry.c_str(), mc::to_string(m.error.kind),
                    m.error.message.c_str());
      else
        std::printf("c member %s verdict=%s time=%.3fs%s\n", m.member.c_str(),
                    mc::to_string(m.verdict), m.seconds, retry.c_str());
    }
  }
  // Structured error summary on stderr for kError (and watchdog-annotated
  // kUnknown), mirroring the stats-json "error" object.
  if (r.error.kind != mc::ErrorKind::kNone)
    std::fprintf(stderr, "%s: engine error: kind=%s %s\n", argv[0],
                 mc::to_string(r.error.kind), r.error.message.c_str());
  std::printf("s %s\n", mc::to_string(r.verdict));

  if (r.verdict == mc::Verdict::kFail && !a.witness_file.empty()) {
    if (!have_trace) {
      std::fprintf(stderr,
                   "%s: engine '%s' does not produce witnesses; rerun with a "
                   "SAT-based engine\n",
                   argv[0], r.engine.c_str());
    } else if (a.witness_file == "-") {
      mc::write_witness(r.cex, a.property, std::cout);
    } else {
      std::ofstream out(a.witness_file);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", a.witness_file.c_str());
        return 4;
      }
      mc::write_witness(r.cex, a.property, out);
    }
  }
  switch (r.verdict) {
    case mc::Verdict::kPass: return 0;
    case mc::Verdict::kFail: return 1;
    case mc::Verdict::kUnknown: return 3;
    case mc::Verdict::kError: return 4;
  }
  return 4;
}
