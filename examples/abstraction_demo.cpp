// abstraction_demo.cpp — shows counterexample-based abstraction (Fig. 5) at
// work: on a large pipeline with a tiny property cone, the CBA engine
// refines only a handful of latches while plain ITPSEQ must reason about
// the full design.
//
// Usage: abstraction_demo [time_limit_sec]
#include <cstdio>
#include <cstdlib>

#include "bench_circuits/generators.hpp"
#include "mc/engine.hpp"

using namespace itpseq;

int main(int argc, char** argv) {
  double limit = argc > 1 ? std::atof(argv[1]) : 30.0;

  // ~260 latches of pipeline noise around an 8-state guarded counter.
  aig::Aig big = bench::industrial(32, 8, /*variant=*/0, /*param=*/10, 201);
  std::printf("industrial pipeline: %zu inputs, %zu latches, %zu ANDs\n",
              big.num_inputs(), big.num_latches(), big.num_ands());

  mc::EngineOptions opts;
  opts.time_limit_sec = limit;

  mc::EngineResult plain = mc::check_itpseq(big, 0, opts);
  std::printf("ITPSEQ    : %-8s k_fp=%-3u j_fp=%-3u %.2fs\n",
              mc::to_string(plain.verdict), plain.k_fp, plain.j_fp,
              plain.seconds);

  mc::EngineResult cba = mc::check_itpseq_cba(big, 0, opts);
  std::printf("ITPSEQCBA : %-8s k_fp=%-3u j_fp=%-3u %.2fs  "
              "(visible latches: %u of %zu, %u refinements)\n",
              mc::to_string(cba.verdict), cba.k_fp, cba.j_fp, cba.seconds,
              cba.stats.cba_visible_latches, big.num_latches(),
              cba.stats.cba_refinements);
  return 0;
}
