// export_suite.cpp — write the benchmark suite out as AIGER files, so the
// circuits can be fed to external model checkers (ABC, nuXmv, IC3 tools)
// for cross-validation.
//
// Usage: export_suite <output_dir> [ascii|binary]
#include <cstdio>
#include <filesystem>
#include <string>

#include "aig/aiger_io.hpp"
#include "bench_circuits/suite.hpp"

using namespace itpseq;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <output_dir> [ascii|binary]\n", argv[0]);
    return 1;
  }
  std::string dir = argv[1];
  bool ascii = argc > 2 && std::string(argv[2]) == "ascii";
  std::filesystem::create_directories(dir);

  unsigned n = 0;
  for (auto& inst : bench::make_suite()) {
    std::string path = dir + "/" + inst.name + (ascii ? ".aag" : ".aig");
    aig::write_aiger_file(inst.model, path);
    ++n;
  }
  std::printf("wrote %u AIGER files to %s\n", n, dir.c_str());
  return 0;
}
