// portfolio_demo.cpp — the portfolio engine in action: random simulation
// catches shallow failures instantly, interpolation engines handle proofs,
// and the scheduler picks whichever finishes first.
//
// Usage: portfolio_demo [time_limit_sec]
#include <cstdio>
#include <cstdlib>

#include "bench_circuits/generators.hpp"
#include "mc/portfolio.hpp"
#include "mc/sim.hpp"

using namespace itpseq;

namespace {

void run(const char* label, const aig::Aig& model, const mc::PortfolioOptions& opts) {
  mc::EngineResult r = mc::check_portfolio(model, 0, opts);
  std::printf("%-24s -> %-8s by %-22s k=%-3u %.3fs\n", label,
              mc::to_string(r.verdict), r.engine.c_str(), r.k_fp, r.seconds);
  if (r.verdict == mc::Verdict::kFail &&
      !mc::trace_is_cex(model, r.cex, 0))
    std::printf("  WARNING: counterexample did not replay!\n");
}

}  // namespace

int main(int argc, char** argv) {
  mc::PortfolioOptions opts;
  opts.time_limit_sec = argc > 1 ? std::atof(argv[1]) : 30.0;

  // Shallow failure: random simulation should win.
  run("queue8 overflow", bench::queue(8, false), opts);
  // Deep targeted failure: needs BMC-style search.
  run("lock12 opens", bench::combination_lock(12, 3, 0x9c), opts);
  // Proof with a small invariant: interpolation engines win.
  run("ring16 one-hot", bench::token_ring(16, false), opts);
  // Large design, local property: the CBA member shines.
  run("industrial 400FF", bench::industrial(40, 10, 0, 12, 301), opts);
  return 0;
}
