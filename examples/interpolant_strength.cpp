// interpolant_strength.cpp — the three labeled interpolation systems on
// one refutation proof.
//
// Unrolls a suite circuit into an (unsatisfiable) exact-k BMC instance,
// extracts the interpolation sequence with McMillan's, Pudlak's and the
// inverse McMillan system from the *same* proof, and reports per-cut sizes
// plus SAT-verified strength relations (ITP_M => ITP_P => ITP_M').
//
//   $ ./interpolant_strength [bound]
#include <cstdio>
#include <cstdlib>

#include "bench_circuits/generators.hpp"
#include "cnf/unroller.hpp"
#include "itp/interpolate.hpp"
#include "opt/fraig.hpp"
#include "sat/solver.hpp"

using namespace itpseq;

int main(int argc, char** argv) {
  unsigned k = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 6;
  aig::Aig model = bench::queue(6, /*guarded=*/true);
  std::printf("model: guarded queue, %zu latches, bound k=%u\n",
              model.num_latches(), k);

  // Exact-k BMC instance with interpolation-sequence partition labels.
  sat::Solver solver;
  solver.enable_proof();
  cnf::Unroller unr(model, solver);
  unr.assert_init(1);
  for (unsigned t = 0; t < k; ++t) unr.add_transition(t, t + 1);
  solver.add_clause({unr.bad_lit(k, k + 1)}, k + 1);
  if (solver.solve() != sat::Status::kUnsat) {
    std::printf("instance satisfiable at k=%u — property fails\n", k);
    return 1;
  }
  std::printf("refutation core: %zu clauses\n", solver.proof().core().size());

  // State-set AIG: input i stands for latch i at the cut frame.
  aig::Aig g;
  for (std::size_t i = 0; i < model.num_latches(); ++i) g.add_input();
  itp::InterpolantExtractor ex(solver.proof());

  auto leaf = [&](std::uint32_t cut, sat::Var v) -> aig::Lit {
    for (std::size_t i = 0; i < model.num_latches(); ++i) {
      sat::Lit sl = unr.lookup(model.latch(i), cut);
      if (sl != sat::kNoLit && sat::var(sl) == v)
        return aig::lit_xor(g.input(i), sat::sign(sl));
    }
    return aig::kNullLit;
  };

  const itp::System systems[] = {itp::System::kMcMillan,
                                 itp::System::kPudlak,
                                 itp::System::kInverseMcMillan};
  std::vector<std::vector<aig::Lit>> seq;
  for (itp::System sys : systems)
    seq.push_back(ex.extract_sequence(g, 1, k, leaf, sys));

  std::printf("\n%-5s %-18s %-18s %-18s\n", "cut", "mcmillan",
              "pudlak", "inverse-mcmillan");
  for (unsigned c = 1; c <= k; ++c) {
    std::printf("%-5u", c);
    for (int s = 0; s < 3; ++s)
      std::printf(" %-18zu", g.cone_size(seq[s][c - 1]));
    std::printf("\n");
  }

  // Verify the strength lattice by SAT on every cut.
  std::printf("\nstrength checks (stronger => weaker):\n");
  for (unsigned c = 1; c <= k; ++c) {
    auto implies = [&](aig::Lit a, aig::Lit b) {
      // a AND NOT b must be unsatisfiable.
      aig::Lit viol = g.make_and(a, aig::lit_not(b));
      auto eq = opt::equivalent(g, viol, aig::kFalse);
      return eq.has_value() && *eq;
    };
    bool mp = implies(seq[0][c - 1], seq[1][c - 1]);
    bool pi = implies(seq[1][c - 1], seq[2][c - 1]);
    std::printf("  cut %u: ITP_M => ITP_P %s, ITP_P => ITP_M' %s\n", c,
                mp ? "OK" : "VIOLATED", pi ? "OK" : "VIOLATED");
    if (!mp || !pi) return 1;
  }
  std::printf("\nall strength relations hold.\n");
  return 0;
}
