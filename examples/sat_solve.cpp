// sat_solve.cpp — standalone DIMACS SAT solver with optional interpolation
// and preprocessing.
//
// Usage: sat_solve <file.cnf> [cut|-p|--drat FILE]
//   cut         on UNSAT with "c part <n>" labels, extract + validate the
//               Craig interpolant at that cut;
//   -p          run SatELite-style preprocessing first (disables proof/ITP);
//   --drat FILE on UNSAT, export a DRAT proof and re-verify it with the
//               independent forward RUP checker.
//
// Exit code follows the SAT-competition convention: 10 = SAT, 20 = UNSAT.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "itp/interpolate.hpp"
#include "itp/validate.hpp"
#include <fstream>
#include <sstream>

#include "sat/dimacs.hpp"
#include "sat/drat.hpp"
#include "sat/preprocess.hpp"
#include "sat/proof_check.hpp"
#include "sat/solver.hpp"

using namespace itpseq;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <file.cnf> [cut|-p]\n", argv[0]);
    return 2;
  }
  sat::DimacsProblem p;
  try {
    p = sat::read_dimacs_file(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  std::printf("c %u vars, %zu clauses\n", p.num_vars, p.clauses.size());
  bool preprocess = argc > 2 && std::strcmp(argv[2], "-p") == 0;

  if (preprocess) {
    sat::Preprocessor pre(p.num_vars);
    for (const auto& cl : p.clauses) pre.add_clause(cl);
    pre.run(/*grow=*/4);
    std::printf("c preprocess: %u subsumed, %u strengthened, %u vars "
                "eliminated, %u -> %u clauses\n",
                pre.stats().subsumed, pre.stats().strengthened,
                pre.stats().vars_eliminated, pre.stats().clauses_in,
                pre.stats().clauses_out);
    if (pre.unsat()) {
      std::printf("s UNSATISFIABLE\n");
      return 20;
    }
    sat::Solver solver;
    while (solver.num_vars() < p.num_vars) solver.new_var();
    for (auto& cl : pre.clauses()) solver.add_clause(cl);
    sat::Status st = solver.solve();
    if (st == sat::Status::kSat) {
      std::vector<sat::LBool> model = solver.model();
      pre.extend_model(model);
      std::printf("s SATISFIABLE\nv ");
      for (unsigned v = 0; v < p.num_vars; ++v)
        std::printf("%s%u ", model[v] == sat::LBool::kTrue ? "" : "-", v + 1);
      std::printf("0\n");
      return 10;
    }
    std::printf("s UNSATISFIABLE\n");
    return 20;
  }

  sat::Solver solver;
  solver.enable_proof();
  sat::load_dimacs(p, solver);
  sat::Status st = solver.solve();
  const auto& stats = solver.stats();
  std::printf("c %llu conflicts, %llu decisions, %llu propagations\n",
              static_cast<unsigned long long>(stats.conflicts),
              static_cast<unsigned long long>(stats.decisions),
              static_cast<unsigned long long>(stats.propagations));

  if (st == sat::Status::kSat) {
    std::printf("s SATISFIABLE\nv ");
    for (unsigned v = 0; v < p.num_vars; ++v)
      std::printf("%s%u ", solver.model_value(v) ? "" : "-", v + 1);
    std::printf("0\n");
    return 10;
  }
  std::printf("s UNSATISFIABLE\n");
  auto pc = sat::check_proof(solver.proof());
  std::printf("c proof check: %s (core %zu clauses)\n",
              pc.ok ? "OK" : pc.error.c_str(), solver.proof().core().size());

  if (argc > 3 && std::strcmp(argv[2], "--drat") == 0) {
    std::ofstream out(argv[3]);
    sat::write_drat(solver.proof(), out);
    out.close();
    std::ifstream in(argv[3]);
    auto dr = sat::check_drat(p.num_vars, p.clauses, in);
    std::printf("c drat: %zu additions written to %s; independent check: %s\n",
                dr.additions, argv[3], dr.ok ? "OK" : dr.error.c_str());
    return 20;
  }

  if (argc > 2) {
    std::uint32_t cut = static_cast<std::uint32_t>(std::atoi(argv[2]));
    aig::Aig g;
    for (unsigned v = 0; v < p.num_vars; ++v) g.add_input();
    itp::InterpolantExtractor ex(solver.proof());
    aig::Lit I = ex.extract(g, cut, [&](sat::Var v) { return g.input(v); });
    std::printf("c interpolant at cut %u: %zu AND nodes, %zu support vars\n",
                cut, g.cone_size(I), g.support(I).size());
    itp::LabeledCnf f;
    f.num_vars = p.num_vars;
    for (std::size_t i = 0; i < p.clauses.size(); ++i)
      f.clauses.push_back({p.clauses[i], p.labels[i]});
    std::vector<sat::Var> ids(p.num_vars);
    for (unsigned v = 0; v < p.num_vars; ++v) ids[v] = v;
    auto vr = itp::validate_interpolant(f, cut, g, I, ids);
    std::printf("c interpolant validation: %s\n",
                vr.ok ? "OK" : vr.error.c_str());
  }
  return 20;
}
