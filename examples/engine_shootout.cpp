// engine_shootout.cpp — run the engines across the benchmark suite and
// print a per-instance comparison (a miniature of the paper's Table I),
// with BMC and PDR columns flanking the interpolation family and the
// threaded portfolio (all engines racing + lemma exchange) as the closer.
// A SAT-core footer totals the solver-side work per engine: propagations
// (and the share served by the inline binary watchers), conflicts, arena
// GC runs and bytes reclaimed.
//
// Usage: engine_shootout [per_instance_seconds] [family_filter]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "bench_circuits/suite.hpp"
#include "mc/engine.hpp"
#include "mc/portfolio.hpp"
#include "obs/trace.hpp"

using namespace itpseq;

int main(int argc, char** argv) {
  auto sink = obs::TraceSink::from_env();  // ITPSEQ_TRACE=... opt-in
  double limit = argc > 1 ? std::atof(argv[1]) : 5.0;
  std::string filter = argc > 2 ? argv[2] : "";

  mc::EngineOptions opts;
  opts.time_limit_sec = limit;
  mc::PortfolioOptions popts;
  popts.time_limit_sec = limit;

  std::printf(
      "%-16s %4s %4s | %-22s %-22s %-22s %-22s %-22s %-22s %-26s\n",
      "instance", "#PI", "#FF", "BMC", "ITP", "ITPSEQ", "SITPSEQ",
      "ITPSEQCBA", "PDR", "PORTFOLIO");
  auto cell = [](const mc::EngineResult& r) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%s k=%u j=%u %.2fs",
                  mc::to_string(r.verdict), r.k_fp, r.j_fp, r.seconds);
    return std::string(buf);
  };

  const char* names[6] = {"BMC", "ITP", "ITPSEQ", "SITPSEQ", "ITPSEQCBA",
                          "PDR"};
  mc::EngineStats totals[6];

  // Portfolio self-healing ledger: per member, runs / relaunches and the
  // error kind behind the most recent relaunch (see the footer).
  struct MemberHealth {
    std::uint64_t runs = 0;
    std::uint64_t restarts = 0;
    std::string last_error = "-";
  };
  std::map<std::string, MemberHealth> health;

  for (auto& inst : bench::make_academic_suite()) {
    if (!filter.empty() && inst.family.find(filter) == std::string::npos)
      continue;
    mc::EngineResult bm = mc::check_bmc(inst.model, 0, opts);
    mc::EngineResult a = mc::check_itp(inst.model, 0, opts);
    mc::EngineResult b = mc::check_itpseq(inst.model, 0, opts);
    mc::EngineResult c = mc::check_sitpseq(inst.model, 0, opts);
    mc::EngineResult d = mc::check_itpseq_cba(inst.model, 0, opts);
    mc::EngineResult p = mc::check_pdr(inst.model, 0, opts);
    mc::EngineResult pf = mc::check_portfolio(inst.model, 0, popts);
    totals[0] += bm.stats;
    totals[1] += a.stats;
    totals[2] += b.stats;
    totals[3] += c.stats;
    totals[4] += d.stats;
    totals[5] += p.stats;
    for (const mc::MemberOutcome& m : pf.members) {
      MemberHealth& h = health[m.member];
      ++h.runs;
      h.restarts += m.restarts;
      if (m.last_error.kind != mc::ErrorKind::kNone)
        h.last_error = mc::to_string(m.last_error.kind);
    }
    const char* pf_winner = std::strchr(pf.engine.c_str(), '/');
    pf_winner = pf_winner != nullptr ? pf_winner + 1 : "-";
    char pf_cell[80];
    std::snprintf(pf_cell, sizeof pf_cell, "%s %.2fs %s",
                  mc::to_string(pf.verdict), pf.seconds, pf_winner);
    std::printf(
        "%-16s %4zu %4zu | %-22s %-22s %-22s %-22s %-22s %-22s %-26s\n",
        inst.name.c_str(), inst.model.num_inputs(), inst.model.num_latches(),
        cell(bm).c_str(), cell(a).c_str(), cell(b).c_str(), cell(c).c_str(),
        cell(d).c_str(), cell(p).c_str(), pf_cell);
  }

  std::printf("\nSAT core totals (per engine, over the suite):\n");
  std::printf("%-10s %10s %14s %6s %12s %6s %12s %10s %20s %6s %8s %6s %6s %6s\n",
              "engine", "calls", "props", "bin%", "conflicts", "gc",
              "reclaimKB", "peakKB", "learned c/m/l", "inpr", "subsume",
              "elim", "vivif", "probe");
  for (int i = 0; i < 6; ++i) {
    const mc::EngineStats& t = totals[i];
    // Glue-tier shares of all learned clauses (histogram bucket = LBD - 1,
    // last bucket >= 8): core <= 2, mid 3..6, local > 6.
    const auto& h = t.sat_glue_hist;
    std::uint64_t core = h[0] + h[1];
    std::uint64_t mid = h[2] + h[3] + h[4] + h[5];
    std::uint64_t local = h[6] + h[7];
    std::printf(
        "%-10s %10llu %14llu %5.1f%% %12llu %6llu %12llu %10zu "
        "%7llu/%5llu/%5llu %6llu %8llu %6llu %6llu %6llu\n",
        names[i], static_cast<unsigned long long>(t.sat_calls),
        static_cast<unsigned long long>(t.sat_propagations),
        t.sat_propagations
            ? 100.0 * static_cast<double>(t.sat_bin_propagations) /
                  static_cast<double>(t.sat_propagations)
            : 0.0,
        static_cast<unsigned long long>(t.sat_conflicts),
        static_cast<unsigned long long>(t.sat_gc_runs),
        static_cast<unsigned long long>(t.sat_arena_reclaimed / 1024),
        t.sat_arena_peak / 1024, static_cast<unsigned long long>(core),
        static_cast<unsigned long long>(mid),
        static_cast<unsigned long long>(local),
        static_cast<unsigned long long>(t.sat_inprocess_rounds),
        static_cast<unsigned long long>(t.sat_subsumed),
        static_cast<unsigned long long>(t.sat_vars_eliminated),
        static_cast<unsigned long long>(t.sat_vivified),
        static_cast<unsigned long long>(t.sat_failed_literals +
                                        t.sat_hyper_binaries));
  }

  // Self-healing footer: a healthy suite shows 0 restarts everywhere; a
  // nonzero row names the member the retry/backoff ladder had to relaunch
  // (rerun with --stats-json / ITPSEQ_TRACE for the per-run detail).
  std::printf("\nportfolio self-healing (per member, over the suite):\n");
  std::printf("%-12s %6s %9s %12s\n", "member", "runs", "restarts",
              "last_error");
  for (const auto& [member, h] : health)
    std::printf("%-12s %6llu %9llu %12s\n", member.c_str(),
                static_cast<unsigned long long>(h.runs),
                static_cast<unsigned long long>(h.restarts),
                h.last_error.c_str());
  return 0;
}
