// verify_aiger.cpp — command-line model checker for AIGER files.
//
// Usage: verify_aiger <file.aag|file.aig> [engine] [time_limit_sec] [prop]
//   engine: itp | itpseq | sitpseq | cba | bmc | all   (default: all)
//
// Loads a circuit in AIGER format (outputs / bad properties are treated as
// bad signals, HWMCC-style) and runs the requested engine(s).  Exit code:
// 0 = PASS, 1 = FAIL, 2 = unknown/error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "aig/aiger_io.hpp"
#include "mc/engine.hpp"
#include "mc/sim.hpp"

using namespace itpseq;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <file.aag|aig> [itp|itpseq|sitpseq|cba|bmc|all] "
                 "[time_limit_sec] [prop_index]\n",
                 argv[0]);
    return 2;
  }
  std::string engine = argc > 2 ? argv[2] : "all";
  mc::EngineOptions opts;
  opts.time_limit_sec = argc > 3 ? std::atof(argv[3]) : 60.0;
  std::size_t prop = argc > 4 ? static_cast<std::size_t>(std::atoi(argv[4])) : 0;

  aig::Aig model;
  try {
    model = aig::read_aiger_file(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  std::printf("%s: %zu inputs, %zu latches, %zu ANDs, %zu properties\n",
              argv[1], model.num_inputs(), model.num_latches(),
              model.num_ands(), model.num_outputs());
  if (prop >= model.num_outputs()) {
    std::fprintf(stderr, "error: no property %zu\n", prop);
    return 2;
  }

  auto run_one = [&](const std::string& name) -> mc::EngineResult {
    if (name == "itp") return mc::check_itp(model, prop, opts);
    if (name == "itpseq") return mc::check_itpseq(model, prop, opts);
    if (name == "sitpseq") return mc::check_sitpseq(model, prop, opts);
    if (name == "cba") return mc::check_itpseq_cba(model, prop, opts);
    if (name == "bmc") return mc::check_bmc(model, prop, opts);
    std::fprintf(stderr, "unknown engine '%s'\n", name.c_str());
    std::exit(2);
  };

  int rc = 2;
  auto report = [&](const mc::EngineResult& r) {
    std::printf("%-10s %-8s k_fp=%-3u j_fp=%-3u %.3fs\n", r.engine.c_str(),
                mc::to_string(r.verdict), r.k_fp, r.j_fp, r.seconds);
    if (r.verdict == mc::Verdict::kFail) {
      bool ok = mc::trace_is_cex(model, r.cex, prop);
      std::printf("  cex depth %u (%s)\n", r.cex.depth(),
                  ok ? "replayed OK" : "REPLAY FAILED");
      rc = 1;
    } else if (r.verdict == mc::Verdict::kPass && rc != 1) {
      rc = 0;
    }
  };

  if (engine == "all") {
    for (const char* e : {"itp", "itpseq", "sitpseq", "cba"}) report(run_one(e));
  } else {
    report(run_one(engine));
  }
  return rc;
}
