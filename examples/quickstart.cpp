// quickstart.cpp — five-minute tour of the library.
//
// Builds a small sequential circuit programmatically, checks a PASS and a
// FAIL property with the four engines of the paper, and round-trips the
// design through the AIGER format.
//
//   $ ./quickstart
#include <cstdio>

#include "aig/aiger_io.hpp"
#include "bench_circuits/generators.hpp"
#include "mc/engine.hpp"
#include "mc/sim.hpp"

using namespace itpseq;

namespace {

void report(const mc::EngineResult& r) {
  std::printf("  %-10s %-8s k_fp=%-3u j_fp=%-3u %.3fs\n", r.engine.c_str(),
              mc::to_string(r.verdict), r.k_fp, r.j_fp, r.seconds);
}

}  // namespace

int main() {
  // A token ring with 8 stations.  The safety property "never two tokens"
  // holds; "the token reaches the last station" is violated at depth 7.
  aig::Aig safe = bench::token_ring(8, /*fail_reach=*/false);
  aig::Aig unsafe = bench::token_ring(8, /*fail_reach=*/true);

  mc::EngineOptions opts;
  opts.time_limit_sec = 30.0;

  std::printf("token_ring(8), property: no two tokens (expected PASS)\n");
  report(mc::check_itp(safe, 0, opts));
  report(mc::check_itpseq(safe, 0, opts));
  report(mc::check_sitpseq(safe, 0, opts));
  report(mc::check_itpseq_cba(safe, 0, opts));

  std::printf("token_ring(8), property: token never at last station "
              "(expected FAIL at depth 7)\n");
  mc::EngineResult fail = mc::check_itpseq(unsafe, 0, opts);
  report(fail);
  if (fail.verdict == mc::Verdict::kFail) {
    bool genuine = mc::trace_is_cex(unsafe, fail.cex, 0);
    std::printf("  counterexample depth %u, replay on concrete model: %s\n",
                fail.cex.depth(), genuine ? "confirmed" : "SPURIOUS!");
  }

  // AIGER round-trip.
  aig::write_aiger_file(safe, "/tmp/quickstart_ring.aag");
  aig::Aig reloaded = aig::read_aiger_file("/tmp/quickstart_ring.aag");
  std::printf("AIGER round-trip: %zu latches, %zu ANDs -> %zu latches, %zu ANDs\n",
              safe.num_latches(), safe.num_ands(), reloaded.num_latches(),
              reloaded.num_ands());
  mc::EngineResult again = mc::check_itpseq(reloaded, 0, opts);
  std::printf("reloaded model verdict: %s\n", mc::to_string(again.verdict));
  return 0;
}
