// optimize_circuit.cpp — the AIG optimization pipeline on a redundant
// circuit: two-level rewriting, balancing, and SAT sweeping (fraig).
//
// Builds a deliberately redundant cone (re-derived XORs, duplicated
// subtrees, a deep AND chain), runs each pass, and prints the size/depth
// progression.  Every intermediate result is verified equivalent to the
// original with an exact SAT check.
//
//   $ ./optimize_circuit
#include <cstdio>

#include "aig/aig.hpp"
#include "opt/balance.hpp"
#include "opt/fraig.hpp"
#include "opt/rewrite.hpp"

using namespace itpseq;

namespace {

/// Import `root` of `src` into `dst` (leaf i of src -> leaf i of dst).
aig::Lit import(aig::Aig& dst, const aig::Aig& src, aig::Lit root) {
  std::vector<aig::Lit> map(src.num_vars(), aig::kNullLit);
  for (std::size_t i = 0; i < src.num_inputs(); ++i)
    map[aig::lit_var(src.input(i))] = dst.input(i);
  return dst.import_cone(src, root, map);
}

}  // namespace

int main() {
  aig::Aig g;
  std::vector<aig::Lit> in;
  for (int i = 0; i < 8; ++i) in.push_back(g.add_input());

  // A redundant function: parity of 8 inputs built three different ways,
  // conjoined with a deep chain AND of all inputs.
  aig::Lit p1 = aig::kFalse, p2 = aig::kFalse;
  for (aig::Lit l : in) p1 = g.make_xor(p1, l);
  for (int i = 7; i >= 0; --i) p2 = g.make_xor(p2, in[i]);
  aig::Lit p3 = aig::kFalse;  // xor via (a|b) & !(a&b)
  for (aig::Lit l : in)
    p3 = g.make_and(g.make_or(p3, l), aig::lit_not(g.make_and(p3, l)));
  aig::Lit chain = aig::kTrue;
  for (aig::Lit l : in) chain = g.make_and(chain, l);
  aig::Lit root =
      g.make_or(g.make_and(p1, p2), g.make_and(p3, chain));

  std::printf("%-12s %6s %6s\n", "stage", "ands", "depth");
  std::printf("%-12s %6zu %6zu\n", "original", g.cone_size(root),
              opt::cone_depth(g, root));

  aig::CompactResult rw = opt::rewrite(g, {root});
  std::printf("%-12s %6zu %6zu\n", "rewrite", rw.graph.cone_size(rw.roots[0]),
              opt::cone_depth(rw.graph, rw.roots[0]));

  aig::CompactResult bal = opt::balance(rw.graph, {rw.roots[0]});
  std::printf("%-12s %6zu %6zu\n", "balance",
              bal.graph.cone_size(bal.roots[0]),
              opt::cone_depth(bal.graph, bal.roots[0]));

  opt::FraigResult fr = opt::fraig(bal.graph, {bal.roots[0]});
  std::printf("%-12s %6zu %6zu   (%zu merges, %zu SAT checks)\n", "fraig",
              fr.graph.cone_size(fr.roots[0]),
              opt::cone_depth(fr.graph, fr.roots[0]), fr.stats.merges,
              fr.stats.sat_checks);

  // Exact equivalence of the final result against the original.
  aig::Aig joint;
  for (int i = 0; i < 8; ++i) joint.add_input();
  aig::Lit a = import(joint, g, root);
  aig::Lit b = import(joint, fr.graph, fr.roots[0]);
  auto eq = opt::equivalent(joint, a, b);
  std::printf("\nexact equivalence check: %s\n",
              eq.has_value() && *eq ? "OK" : "FAILED");
  return eq.has_value() && *eq ? 0 : 1;
}
