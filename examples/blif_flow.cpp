// blif_flow.cpp — a synthesis-style flow through the BLIF front-end.
//
// Parses a small handwritten BLIF design (a guarded mod-10 counter with a
// safety property), model checks it, optimizes it with the AIG passes,
// writes the optimized design back out as BLIF, and re-checks the result.
//
//   $ ./blif_flow
#include <cstdio>
#include <sstream>

#include "io/blif.hpp"
#include "mc/engine.hpp"
#include "opt/fraig.hpp"
#include "opt/rewrite.hpp"

using namespace itpseq;

namespace {

const char* kDesign = R"(.model mod10
# 4-bit counter that wraps at 10; bad = counter reaches 12 (unreachable).
.inputs en
.outputs bad
.latch n0 q0 0
.latch n1 q1 0
.latch n2 q2 0
.latch n3 q3 0

# wrap = (q == 9) = q3 & ~q2 & ~q1 & q0
.names q3 q2 q1 q0 wrap
1001 1

# increment when enabled and not wrapping; reset to 0 on wrap.
.names en wrap go
10 1
.names q0 go n0
10 1
01 1
.names q1 c0 n1_x
10 1
01 1
.names q0 go c0
11 1
.names wrap n1_x n1
01 1
.names q2 c1 n2_x
10 1
01 1
.names q1 c0 c1
11 1
.names wrap n2_x n2
01 1
.names q3 c2 n3_x
10 1
01 1
.names q2 c1 c2
11 1
.names wrap n3_x n3
01 1

# bad = (q == 12) = q3 & q2 & ~q1 & ~q0
.names q3 q2 q1 q0 bad
1100 1
.end
)";

void check(const char* label, const aig::Aig& g) {
  mc::EngineOptions opts;
  opts.time_limit_sec = 30.0;
  mc::EngineResult r = mc::check_sitpseq(g, 0, opts);
  std::printf("%-10s %zu ands: %s (engine %s, k_fp=%u, %.3fs)\n", label,
              g.num_ands(), mc::to_string(r.verdict), r.engine.c_str(),
              r.k_fp, r.seconds);
}

}  // namespace

int main() {
  std::istringstream in(kDesign);
  aig::Aig g = io::read_blif(in);
  std::printf("parsed: %zu inputs, %zu latches, %zu ands, %zu outputs\n",
              g.num_inputs(), g.num_latches(), g.num_ands(), g.num_outputs());
  check("original", g);

  // Optimize the sequential logic: rewrite then SAT-sweep, reassembling
  // latch next-state functions and outputs around the optimized cones.
  std::vector<aig::Lit> roots;
  for (std::size_t i = 0; i < g.num_outputs(); ++i)
    roots.push_back(g.output(i));
  for (std::size_t i = 0; i < g.num_latches(); ++i)
    roots.push_back(g.latch_next(i));
  aig::CompactResult rw = opt::rewrite(g, roots);
  opt::FraigResult fr = opt::fraig(rw.graph, rw.roots);
  aig::Aig h = std::move(fr.graph);
  for (std::size_t i = 0; i < g.num_outputs(); ++i)
    h.add_output(fr.roots[i], g.output_name(i));
  for (std::size_t i = 0; i < g.num_latches(); ++i)
    h.set_latch_next(h.latch(i), fr.roots[g.num_outputs() + i]);
  check("optimized", h);

  // Round-trip the optimized design through BLIF text.
  std::stringstream ss;
  io::write_blif(h, ss, "mod10_opt");
  aig::Aig back = io::read_blif(ss);
  check("reread", back);
  return 0;
}
