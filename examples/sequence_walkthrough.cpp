// sequence_walkthrough.cpp — a from-first-principles re-enactment of the
// paper's Figure 3 using only the public library API: no engine classes,
// just the solver, the unroller and the interpolant extractor.
//
// For a small token ring it iterates the bound k, solves the exact-k BMC
// problem with the interpolation-sequence partition labels, extracts the
// whole sequence I^k_1..I^k_k from the single proof, conjoins the matrix
// columns calI_j, and reports sizes and the containment checks until the
// fixpoint is found — printing the "matrix" the paper describes.
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "bench_circuits/generators.hpp"
#include "cnf/unroller.hpp"
#include "itp/interpolate.hpp"
#include "mc/state_space.hpp"
#include "sat/solver.hpp"

using namespace itpseq;

int main() {
  aig::Aig model = bench::token_ring(6, /*fail_reach=*/false);
  std::printf("model: token_ring(6), property: never two tokens\n\n");

  mc::StateSpace space(model);
  aig::Aig& G = space.graph();
  std::vector<aig::Lit> calI{aig::kNullLit};  // calI[j], 1-based

  for (unsigned k = 1; k <= 16; ++k) {
    // --- exact-k BMC with partition labels A_1..A_{k+1} -------------------
    sat::Solver solver;
    solver.enable_proof();
    cnf::Unroller unr(model, solver);
    unr.assert_init(1);                                     // S0 in A_1
    for (unsigned t = 0; t < k; ++t) unr.add_transition(t, t + 1);
    solver.add_clause({unr.bad_lit(k, k + 1)}, k + 1);      // ~p(V^k) = A_{k+1}

    if (solver.solve() == sat::Status::kSat) {
      std::printf("k=%2u: SAT -> counterexample (FAIL)\n", k);
      return 1;
    }
    std::printf("k=%2u: UNSAT, proof core %zu clauses\n", k,
                solver.proof().core().size());

    // --- extract the whole sequence from the single proof (Eq. 2) ---------
    itp::InterpolantExtractor ex(solver.proof());
    std::vector<std::unordered_map<sat::Var, aig::Lit>> leaf(k + 1);
    for (unsigned c = 1; c <= k; ++c)
      for (std::size_t i = 0; i < model.num_latches(); ++i) {
        sat::Lit sl = unr.lookup(model.latch(i), c);
        leaf[c][sat::var(sl)] =
            aig::lit_xor(space.latch_input(i), sat::sign(sl));
      }
    std::vector<aig::Lit> seq = ex.extract_sequence(
        G, 1, k, [&](std::uint32_t c, sat::Var v) {
          auto it = leaf[c].find(v);
          return it == leaf[c].end() ? aig::kNullLit : it->second;
        });

    std::printf("      sequence sizes:");
    for (unsigned j = 1; j <= k; ++j)
      std::printf(" |I^%u_%u|=%zu", k, j, G.cone_size(seq[j - 1]));
    std::printf("\n");

    // --- matrix column conjunction calI_j = AND_i>=j I^i_j ----------------
    calI.resize(k + 1, aig::kTrue);
    for (unsigned j = 1; j < k; ++j)
      calI[j] = G.make_and(calI[j], seq[j - 1]);
    calI[k] = seq[k - 1];

    // --- fixpoint checks calI_j => R_{j-1} --------------------------------
    aig::Lit R = space.init_pred();
    for (unsigned j = 1; j <= k; ++j) {
      mc::Implication imp = space.implies(calI[j], R, 10.0);
      std::printf("      calI_%u (%zu nodes) => R_%u ? %s\n", j,
                  G.cone_size(calI[j]), j - 1,
                  imp == mc::Implication::kHolds ? "yes -> PASS (fixpoint)"
                                                 : "no");
      if (imp == mc::Implication::kHolds) {
        std::printf("\nfixpoint at k_fp=%u, j_fp=%u — property PASSES\n", k, j);
        return 0;
      }
      R = G.make_or(R, calI[j]);
    }
  }
  std::printf("no fixpoint within 16 bounds\n");
  return 2;
}
