// diameter_explorer.cpp — exact forward/backward circuit diameters via BDD
// reachability, compared with the depths at which the interpolation engines
// converge (the discussion of Section IV-A/B of the paper).
//
// Usage: diameter_explorer [family_filter]
#include <cstdio>
#include <string>

#include "bdd/reach.hpp"
#include "bench_circuits/suite.hpp"
#include "mc/engine.hpp"

using namespace itpseq;

int main(int argc, char** argv) {
  std::string filter = argc > 1 ? argv[1] : "";
  std::printf("%-16s %5s %5s | %8s %8s | %13s %13s\n", "instance", "#FF",
              "verd", "d_F", "d_B", "ITP (k,j)", "ITPSEQ (k,j)");

  for (auto& inst : bench::make_academic_suite(32)) {
    if (!filter.empty() && inst.family.find(filter) == std::string::npos)
      continue;
    bdd::ReachBudget rb;
    rb.seconds = 10.0;
    bdd::SymbolicModel sm(inst.model, rb.node_limit);
    bdd::ReachResult fwd = bdd::forward_reach(sm, rb);
    bdd::ReachResult bwd = bdd::backward_reach(sm, rb);

    mc::EngineOptions opts;
    opts.time_limit_sec = 10.0;
    mc::EngineResult itp = mc::check_itp(inst.model, 0, opts);
    mc::EngineResult seq = mc::check_itpseq(inst.model, 0, opts);

    auto dia = [](const bdd::ReachResult& r) {
      char buf[16];
      if (r.verdict == bdd::ReachVerdict::kPass && r.diameter)
        std::snprintf(buf, sizeof buf, "%u", *r.diameter);
      else if (r.verdict == bdd::ReachVerdict::kFail)
        std::snprintf(buf, sizeof buf, "fail@%u", r.depth);
      else
        std::snprintf(buf, sizeof buf, "ovf");
      return std::string(buf);
    };
    char itp_s[24], seq_s[24];
    std::snprintf(itp_s, sizeof itp_s, "%s %u,%u", mc::to_string(itp.verdict),
                  itp.k_fp, itp.j_fp);
    std::snprintf(seq_s, sizeof seq_s, "%s %u,%u", mc::to_string(seq.verdict),
                  seq.k_fp, seq.j_fp);
    std::printf("%-16s %5zu %5s | %8s %8s | %13s %13s\n", inst.name.c_str(),
                inst.model.num_latches(),
                inst.expected == bench::Expected::kPass ? "pass" : "fail",
                dia(fwd).c_str(), dia(bwd).c_str(), itp_s, seq_s);
  }
  return 0;
}
