#include "aig/aiger_io.hpp"

#include <fstream>
#include <functional>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/fault.hpp"

namespace itpseq::aig {
namespace {

struct RawAnd {
  std::uint32_t lhs, rhs0, rhs1;
};

struct RawAiger {
  std::uint32_t max_var = 0;
  std::vector<std::uint32_t> inputs;                       // literals
  std::vector<std::uint32_t> latches;                      // literals
  std::vector<std::uint32_t> latch_next;                   // literals
  std::vector<std::uint32_t> latch_reset;                  // 0,1, or lit==latch (X)
  std::vector<std::uint32_t> outputs;                      // literals
  std::vector<std::uint32_t> bads;                         // literals
  std::vector<std::uint32_t> constraints;                  // literals
  std::vector<RawAnd> ands;
  std::vector<std::pair<char, std::pair<std::size_t, std::string>>> symbols;
};

[[noreturn]] void fail(const std::string& msg) {
  throw std::runtime_error("aiger: " + msg);
}

std::uint32_t read_binary_delta(std::istream& in) {
  std::uint32_t x = 0;
  int shift = 0;
  while (true) {
    int ch = in.get();
    if (ch == EOF) fail("unexpected EOF in binary AND section");
    x |= static_cast<std::uint32_t>(ch & 0x7f) << shift;
    if (!(ch & 0x80)) break;
    shift += 7;
    if (shift > 28) fail("binary delta too large");
  }
  return x;
}

void write_binary_delta(std::ostream& out, std::uint32_t x) {
  while (x >= 0x80) {
    out.put(static_cast<char>((x & 0x7f) | 0x80));
    x >>= 7;
  }
  out.put(static_cast<char>(x));
}

RawAiger parse(std::istream& in) {
  std::string magic;
  in >> magic;
  bool binary;
  if (magic == "aag")
    binary = false;
  else if (magic == "aig")
    binary = true;
  else
    fail("bad magic '" + magic + "'");

  RawAiger raw;
  std::uint32_t I, L, O, A;
  if (!(in >> raw.max_var >> I >> L >> O >> A)) fail("bad header");
  std::uint32_t B = 0, C = 0, J = 0, F = 0;
  // Optional 1.9 header extensions, terminated by end of line.
  std::string rest;
  std::getline(in, rest);
  {
    std::istringstream hs(rest);
    std::uint32_t* slots[4] = {&B, &C, &J, &F};
    for (auto* s : slots)
      if (!(hs >> *s)) break;
  }

  // Hostile-header hardening.  Every downstream allocation is sized by the
  // declared counts (read_aiger builds max_var+1-entry tables; the record
  // loops trust I..F), so a corrupt header must fail *here* — as a
  // runtime_error — not as a multi-GB resize or an out-of-bounds index.
  const std::uint64_t declared = std::uint64_t{I} + L + A;
  if (declared > raw.max_var)
    fail("header: declared counts exceed maximum variable index");
  if (std::istream::pos_type cur = in.tellg();
      cur != std::istream::pos_type(-1)) {
    // Seekable stream: bound the declared counts by the bytes actually
    // present, using per-record minima (ascii: a bare literal line is >= 2
    // bytes "0\n", a latch line >= 4 "0 0\n", an AND line >= 6 "0 0 0\n";
    // binary: latch lines >= 2, each AND >= 2 delta bytes).  The final
    // record may legally omit its newline, hence the 1-byte slack.
    in.seekg(0, std::ios::end);
    std::istream::pos_type endp = in.tellg();
    in.seekg(cur);
    if (endp != std::istream::pos_type(-1)) {
      const std::uint64_t remaining =
          endp > cur ? static_cast<std::uint64_t>(endp - cur) : 0;
      const std::uint64_t tail_lits = std::uint64_t{O} + B + C + J + F;
      const std::uint64_t need =
          binary ? std::uint64_t{L} * 2 + tail_lits * 2 + std::uint64_t{A} * 2
                 : std::uint64_t{I} * 2 + std::uint64_t{L} * 4 + tail_lits * 2 +
                       std::uint64_t{A} * 6;
      if (need > remaining + 1)
        fail("header: declared counts exceed file size");
      // Variable indices above I+L+A ("holes") cost no records, but a real
      // file cannot name more of them than it has bytes — reject a max_var
      // chosen purely to blow up the literal tables.
      if (raw.max_var - declared > remaining)
        fail("header: maximum variable index exceeds file size");
    }
  }

  auto check_lit = [&](std::uint32_t l, const char* what) {
    if (l > 2 * raw.max_var + 1) fail(std::string("literal out of range in ") + what);
    return l;
  };
  auto read_lit = [&](const char* what) {
    std::uint32_t l;
    if (!(in >> l)) fail(std::string("expected literal for ") + what);
    return check_lit(l, what);
  };
  // In binary mode every pre-AND record is exactly one text line; reading
  // line-by-line leaves the stream positioned at the first binary byte.
  auto read_line_lit = [&](const char* what) {
    std::string line;
    if (!std::getline(in, line)) fail(std::string("expected line for ") + what);
    unsigned long long l = 0;
    try {
      l = std::stoull(line);
    } catch (const std::invalid_argument&) {
      fail(std::string("bad literal for ") + what);
    } catch (const std::out_of_range&) {
      fail(std::string("literal out of range in ") + what);
    }
    if (l > 2ull * raw.max_var + 1)
      fail(std::string("literal out of range in ") + what);
    return static_cast<std::uint32_t>(l);
  };

  if (!binary) {
    for (std::uint32_t i = 0; i < I; ++i) raw.inputs.push_back(read_lit("input"));
  } else {
    for (std::uint32_t i = 0; i < I; ++i) raw.inputs.push_back(2 * (i + 1));
  }
  for (std::uint32_t i = 0; i < L; ++i) {
    std::uint32_t cur;
    if (binary) {
      cur = 2 * (I + i + 1);
    } else {
      cur = read_lit("latch");
    }
    raw.latches.push_back(cur);
    std::string line;
    if (binary) {
      if (!std::getline(in, line)) fail("latch line missing");
    } else {
      std::getline(in >> std::ws, line);
    }
    std::istringstream ls(line);
    std::uint32_t next, reset = 0;
    if (!(ls >> next)) fail("latch next missing");
    if (!(ls >> reset)) reset = 0;
    // Next-state and reset literals index the max_var+1-entry tables in
    // read_aiger — unchecked they are an out-of-bounds write waiting in any
    // corrupt file.
    check_lit(next, "latch next");
    if (reset > 1) check_lit(reset, "latch reset");
    raw.latch_next.push_back(next);
    raw.latch_reset.push_back(reset);
  }
  if (!binary) {
    for (std::uint32_t i = 0; i < O; ++i) raw.outputs.push_back(read_lit("output"));
    for (std::uint32_t i = 0; i < B; ++i) raw.bads.push_back(read_lit("bad"));
    for (std::uint32_t i = 0; i < C; ++i)
      raw.constraints.push_back(read_lit("constraint"));
    for (std::uint32_t i = 0; i < J; ++i) (void)read_lit("justice");
    for (std::uint32_t i = 0; i < F; ++i) (void)read_lit("fairness");
  } else {
    for (std::uint32_t i = 0; i < O; ++i) raw.outputs.push_back(read_line_lit("output"));
    for (std::uint32_t i = 0; i < B; ++i) raw.bads.push_back(read_line_lit("bad"));
    for (std::uint32_t i = 0; i < C; ++i)
      raw.constraints.push_back(read_line_lit("constraint"));
    for (std::uint32_t i = 0; i < J; ++i) (void)read_line_lit("justice");
    for (std::uint32_t i = 0; i < F; ++i) (void)read_line_lit("fairness");
  }

  if (!binary) {
    for (std::uint32_t i = 0; i < A; ++i) {
      RawAnd a;
      if (!(in >> a.lhs >> a.rhs0 >> a.rhs1)) fail("bad AND line");
      // Same table-index hazard as latch next: an unchecked lhs/rhs is an
      // out-of-bounds access in read_aiger's and_of_var/map fills.
      check_lit(a.lhs, "AND lhs");
      check_lit(a.rhs0, "AND rhs");
      check_lit(a.rhs1, "AND rhs");
      raw.ands.push_back(a);
    }
  } else {
    for (std::uint32_t i = 0; i < A; ++i) {
      std::uint32_t lhs = 2 * (I + L + i + 1);
      std::uint32_t d0 = read_binary_delta(in);
      std::uint32_t d1 = read_binary_delta(in);
      if (d0 > lhs) fail("binary AND delta0 out of range");
      std::uint32_t rhs0 = lhs - d0;
      if (d1 > rhs0) fail("binary AND delta1 out of range");
      std::uint32_t rhs1 = rhs0 - d1;
      raw.ands.push_back(RawAnd{lhs, rhs0, rhs1});
    }
  }

  // Symbol table (optional): lines like "i0 name", "l3 name", "o1 name".
  std::string line;
  while (std::getline(in >> std::ws, line)) {
    if (line.empty()) continue;
    if (line[0] == 'c') break;  // comment section
    char kind = line[0];
    if (kind != 'i' && kind != 'l' && kind != 'o' && kind != 'b') break;
    std::size_t sp = line.find(' ');
    if (sp == std::string::npos) break;
    std::size_t idx = 0;
    try {
      idx = std::stoul(line.substr(1, sp - 1));
    } catch (const std::exception&) {
      break;  // not a symbol line after all — treat as end of table
    }
    raw.symbols.push_back({kind, {idx, line.substr(sp + 1)}});
  }
  return raw;
}

}  // namespace

Aig read_aiger(std::istream& in) {
  ITPSEQ_FAULT_POINT("aig.load");
  RawAiger raw = parse(in);
  Aig g;
  // Map from file variable to Aig literal.
  std::vector<Lit> map(raw.max_var + 1, kNullLit);
  map[0] = kFalse;

  for (std::uint32_t l : raw.inputs) {
    if (l & 1) fail("complemented input definition");
    map[l >> 1] = g.add_input();
  }
  for (std::size_t i = 0; i < raw.latches.size(); ++i) {
    std::uint32_t l = raw.latches[i];
    if (l & 1) fail("complemented latch definition");
    LatchInit init = LatchInit::kZero;
    std::uint32_t r = raw.latch_reset[i];
    if (r == 1)
      init = LatchInit::kOne;
    else if (r != 0)
      init = LatchInit::kUndef;  // reset == latch literal means uninitialized
    map[l >> 1] = g.add_latch(init);
  }

  // Build ANDs; files are topologically ordered in practice, but resolve
  // lazily to be safe for ASCII files with arbitrary order.
  std::vector<int> and_of_var(raw.max_var + 1, -1);
  for (std::size_t i = 0; i < raw.ands.size(); ++i) {
    const RawAnd& a = raw.ands[i];
    if (a.lhs & 1) fail("complemented AND definition");
    and_of_var[a.lhs >> 1] = static_cast<int>(i);
  }
  std::function<Lit(std::uint32_t)> resolve = [&](std::uint32_t file_lit) -> Lit {
    std::uint32_t v = file_lit >> 1;
    if (map[v] == kNullLit) {
      int ai = and_of_var[v];
      if (ai < 0) fail("undefined variable " + std::to_string(v));
      const RawAnd& a = raw.ands[ai];
      Lit f0 = resolve(a.rhs0);
      Lit f1 = resolve(a.rhs1);
      map[v] = g.make_and(f0, f1);
    }
    return lit_xor(map[v], (file_lit & 1) != 0);
  };
  for (const RawAnd& a : raw.ands) (void)resolve(a.lhs);

  for (std::size_t i = 0; i < raw.latches.size(); ++i)
    g.set_latch_next(map[raw.latches[i] >> 1], resolve(raw.latch_next[i]));
  for (std::uint32_t o : raw.outputs) g.add_output(resolve(o));
  for (std::uint32_t b : raw.bads) g.add_output(resolve(b));
  for (std::uint32_t c : raw.constraints) g.add_constraint(resolve(c));

  for (auto& [kind, val] : raw.symbols) {
    auto& [idx, name] = val;
    if (kind == 'i' && idx < g.num_inputs())
      g.set_name(lit_var(g.input(idx)), name);
    else if (kind == 'l' && idx < g.num_latches())
      g.set_name(lit_var(g.latch(idx)), name);
  }
  return g;
}

Aig read_aiger_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot open '" + path + "'");
  return read_aiger(in);
}

namespace {

// Renumber Aig variables into AIGER canonical order:
// inputs 1..I, latches I+1..I+L, ANDs topologically after.
struct Renumbering {
  std::vector<std::uint32_t> var_to_aiger;  // aig var -> aiger var
  std::vector<Var> and_order;               // aig vars of ANDs, topo order
};

Renumbering renumber(const Aig& g) {
  Renumbering r;
  r.var_to_aiger.assign(g.num_vars(), 0);
  std::uint32_t next = 1;
  for (std::size_t i = 0; i < g.num_inputs(); ++i)
    r.var_to_aiger[lit_var(g.input(i))] = next++;
  for (std::size_t i = 0; i < g.num_latches(); ++i)
    r.var_to_aiger[lit_var(g.latch(i))] = next++;
  // Collect every AND reachable or not — write the full graph, topo order.
  for (Var v = 1; v < g.num_vars(); ++v)
    if (g.is_and(v)) r.and_order.push_back(v);
  // Aig construction guarantees fanins have smaller var index, so ascending
  // variable order is a topological order.
  for (Var v : r.and_order) r.var_to_aiger[v] = next++;
  return r;
}

std::uint32_t map_lit(const Renumbering& r, Lit l) {
  return 2 * r.var_to_aiger[lit_var(l)] + (lit_sign(l) ? 1 : 0);
}

void write_symbols(const Aig& g, std::ostream& out) {
  for (std::size_t i = 0; i < g.num_inputs(); ++i)
    if (!g.name(lit_var(g.input(i))).empty())
      out << 'i' << i << ' ' << g.name(lit_var(g.input(i))) << '\n';
  for (std::size_t i = 0; i < g.num_latches(); ++i)
    if (!g.name(lit_var(g.latch(i))).empty())
      out << 'l' << i << ' ' << g.name(lit_var(g.latch(i))) << '\n';
  for (std::size_t i = 0; i < g.num_outputs(); ++i)
    if (!g.output_name(i).empty()) out << 'o' << i << ' ' << g.output_name(i) << '\n';
}

}  // namespace

void write_aiger_ascii(const Aig& g, std::ostream& out) {
  Renumbering r = renumber(g);
  std::uint32_t M = static_cast<std::uint32_t>(g.num_inputs() + g.num_latches() +
                                               r.and_order.size());
  out << "aag " << M << ' ' << g.num_inputs() << ' ' << g.num_latches() << ' '
      << g.num_outputs() << ' ' << r.and_order.size();
  if (g.num_constraints()) out << " 0 " << g.num_constraints();
  out << '\n';
  for (std::size_t i = 0; i < g.num_inputs(); ++i)
    out << map_lit(r, g.input(i)) << '\n';
  for (std::size_t i = 0; i < g.num_latches(); ++i) {
    out << map_lit(r, g.latch(i)) << ' ' << map_lit(r, g.latch_next(i));
    LatchInit init = g.latch_init(i);
    if (init == LatchInit::kOne)
      out << " 1";
    else if (init == LatchInit::kUndef)
      out << ' ' << map_lit(r, g.latch(i));
    out << '\n';
  }
  for (std::size_t i = 0; i < g.num_outputs(); ++i)
    out << map_lit(r, g.output(i)) << '\n';
  for (std::size_t i = 0; i < g.num_constraints(); ++i)
    out << map_lit(r, g.constraint(i)) << '\n';
  for (Var v : r.and_order) {
    const Node& n = g.node(v);
    out << 2 * r.var_to_aiger[v] << ' ' << map_lit(r, n.fanin0) << ' '
        << map_lit(r, n.fanin1) << '\n';
  }
  write_symbols(g, out);
}

void write_aiger_binary(const Aig& g, std::ostream& out) {
  Renumbering r = renumber(g);
  std::uint32_t M = static_cast<std::uint32_t>(g.num_inputs() + g.num_latches() +
                                               r.and_order.size());
  out << "aig " << M << ' ' << g.num_inputs() << ' ' << g.num_latches() << ' '
      << g.num_outputs() << ' ' << r.and_order.size();
  if (g.num_constraints()) out << " 0 " << g.num_constraints();
  out << '\n';
  for (std::size_t i = 0; i < g.num_latches(); ++i) {
    out << map_lit(r, g.latch_next(i));
    LatchInit init = g.latch_init(i);
    if (init == LatchInit::kOne)
      out << " 1";
    else if (init == LatchInit::kUndef)
      out << ' ' << map_lit(r, g.latch(i));
    out << '\n';
  }
  for (std::size_t i = 0; i < g.num_outputs(); ++i)
    out << map_lit(r, g.output(i)) << '\n';
  for (std::size_t i = 0; i < g.num_constraints(); ++i)
    out << map_lit(r, g.constraint(i)) << '\n';
  for (Var v : r.and_order) {
    const Node& n = g.node(v);
    std::uint32_t lhs = 2 * r.var_to_aiger[v];
    std::uint32_t a = map_lit(r, n.fanin0);
    std::uint32_t b = map_lit(r, n.fanin1);
    if (a < b) std::swap(a, b);
    write_binary_delta(out, lhs - a);
    write_binary_delta(out, a - b);
  }
  write_symbols(g, out);
}

void write_aiger_file(const Aig& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail("cannot open '" + path + "' for writing");
  if (path.size() >= 4 && path.substr(path.size() - 4) == ".aag")
    write_aiger_ascii(g, out);
  else
    write_aiger_binary(g, out);
}

}  // namespace itpseq::aig
