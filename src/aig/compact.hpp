// compact.hpp — garbage collection / compaction of AIGs.
//
// Interpolant state-set AIGs grow monotonically during a verification run:
// every extraction adds nodes and the strash table keeps everything alive.
// compact() rebuilds a new AIG containing only the cones of the given
// roots, preserving input/latch order, and returns the remapped root
// literals.  Engines can use it between bounds to bound memory; it is also
// useful before writing interpolants out for inspection.
#pragma once

#include <vector>

#include "aig/aig.hpp"

namespace itpseq::aig {

/// Result of a compaction: the new graph and the roots mapped into it.
struct CompactResult {
  Aig graph;
  std::vector<Lit> roots;
};

/// Rebuild `g` keeping only the transitive fanin of `roots`.  All inputs
/// and latches of `g` are recreated (same order, names and reset values),
/// latch next-state functions are preserved only if `keep_latch_logic`;
/// outputs are not copied (the caller re-adds what it needs).
CompactResult compact(const Aig& g, const std::vector<Lit>& roots,
                      bool keep_latch_logic = false);

}  // namespace itpseq::aig
