#include "aig/aig.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace itpseq::aig {

Aig::Aig() {
  nodes_.push_back(Node{NodeType::kConst, kNullLit, kNullLit, LatchInit::kZero});
}

Lit Aig::new_var(NodeType t) {
  Var v = static_cast<Var>(nodes_.size());
  Node n;
  n.type = t;
  nodes_.push_back(n);
  return var_lit(v);
}

Lit Aig::add_input(const std::string& name) {
  Lit l = new_var(NodeType::kInput);
  input_index_[lit_var(l)] = inputs_.size();
  inputs_.push_back(l);
  if (!name.empty()) set_name(lit_var(l), name);
  return l;
}

Lit Aig::add_latch(LatchInit init, const std::string& name) {
  Lit l = new_var(NodeType::kLatch);
  nodes_[lit_var(l)].init = init;
  latch_index_[lit_var(l)] = latches_.size();
  latches_.push_back(l);
  if (!name.empty()) set_name(lit_var(l), name);
  return l;
}

void Aig::set_latch_next(Lit latch_lit, Lit next) {
  Var v = lit_var(latch_lit);
  if (v >= nodes_.size() || nodes_[v].type != NodeType::kLatch || lit_sign(latch_lit))
    throw std::invalid_argument("set_latch_next: not a positive latch literal");
  if (lit_var(next) >= nodes_.size())
    throw std::invalid_argument("set_latch_next: next literal out of range");
  nodes_[v].fanin0 = next;
}

Lit Aig::make_and(Lit a, Lit b) {
  if (lit_var(a) >= nodes_.size() || lit_var(b) >= nodes_.size())
    throw std::invalid_argument("make_and: literal out of range");
  // Constant folding and trivial cases.
  if (a == kFalse || b == kFalse) return kFalse;
  if (a == kTrue) return b;
  if (b == kTrue) return a;
  if (a == b) return a;
  if (a == lit_not(b)) return kFalse;
  // Canonical order: larger literal first (stable strash key).
  if (a < b) std::swap(a, b);
  std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
  auto it = strash_.find(key);
  if (it != strash_.end()) return it->second;
  Lit l = new_var(NodeType::kAnd);
  nodes_[lit_var(l)].fanin0 = a;
  nodes_[lit_var(l)].fanin1 = b;
  ++num_ands_;
  strash_.emplace(key, l);
  return l;
}

Lit Aig::make_xor(Lit a, Lit b) {
  // a ^ b = !(a & b) & !(!a & !b)
  return make_and(lit_not(make_and(a, b)), lit_not(make_and(lit_not(a), lit_not(b))));
}

Lit Aig::make_ite(Lit c, Lit t, Lit e) {
  // ite(c,t,e) = !(!(c&t) & !(!c&e))
  return lit_not(make_and(lit_not(make_and(c, t)), lit_not(make_and(lit_not(c), e))));
}

Lit Aig::make_and_many(const std::vector<Lit>& lits) {
  if (lits.empty()) return kTrue;
  // Balanced reduction keeps the tree shallow.
  std::vector<Lit> layer = lits;
  while (layer.size() > 1) {
    std::vector<Lit> next;
    next.reserve((layer.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2)
      next.push_back(make_and(layer[i], layer[i + 1]));
    if (layer.size() % 2) next.push_back(layer.back());
    layer.swap(next);
  }
  return layer[0];
}

Lit Aig::make_or_many(const std::vector<Lit>& lits) {
  std::vector<Lit> inv;
  inv.reserve(lits.size());
  for (Lit l : lits) inv.push_back(lit_not(l));
  return lit_not(make_and_many(inv));
}

std::size_t Aig::add_output(Lit l, const std::string& name) {
  if (lit_var(l) >= nodes_.size())
    throw std::invalid_argument("add_output: literal out of range");
  outputs_.push_back(l);
  output_names_.push_back(name);
  return outputs_.size() - 1;
}

std::size_t Aig::add_constraint(Lit l) {
  if (lit_var(l) >= nodes_.size())
    throw std::invalid_argument("add_constraint: literal out of range");
  constraints_.push_back(l);
  return constraints_.size() - 1;
}

std::size_t Aig::latch_index(Var v) const {
  auto it = latch_index_.find(v);
  return it == latch_index_.end() ? kNoIndex : it->second;
}

std::size_t Aig::input_index(Var v) const {
  auto it = input_index_.find(v);
  return it == input_index_.end() ? kNoIndex : it->second;
}

const std::string& Aig::name(Var v) const {
  static const std::string empty;
  auto it = names_.find(v);
  return it == names_.end() ? empty : it->second;
}

void Aig::set_name(Var v, const std::string& n) { names_[v] = n; }

std::vector<Var> Aig::cone(const std::vector<Lit>& roots) const {
  std::vector<Var> order;
  std::vector<std::uint8_t> mark(nodes_.size(), 0);  // 0=unseen 1=on-stack 2=done
  // Iterative DFS producing a topological order.
  std::vector<Var> stack;
  for (Lit r : roots) {
    if (lit_var(r) == 0) continue;
    stack.push_back(lit_var(r));
  }
  while (!stack.empty()) {
    Var v = stack.back();
    if (mark[v] == 2) {
      stack.pop_back();
      continue;
    }
    if (mark[v] == 1) {
      mark[v] = 2;
      order.push_back(v);
      stack.pop_back();
      continue;
    }
    mark[v] = 1;
    if (nodes_[v].type == NodeType::kAnd) {
      Var a = lit_var(nodes_[v].fanin0);
      Var b = lit_var(nodes_[v].fanin1);
      if (a != 0 && mark[a] == 0) stack.push_back(a);
      if (b != 0 && mark[b] == 0) stack.push_back(b);
    }
  }
  return order;
}

std::vector<Var> Aig::support(Lit root) const {
  std::vector<Var> result;
  for (Var v : cone({root}))
    if (nodes_[v].type == NodeType::kInput || nodes_[v].type == NodeType::kLatch)
      result.push_back(v);
  std::sort(result.begin(), result.end());
  return result;
}

std::size_t Aig::cone_size(Lit root) const {
  std::size_t n = 0;
  for (Var v : cone({root}))
    if (nodes_[v].type == NodeType::kAnd) ++n;
  return n;
}

bool Aig::evaluate(Lit root, const std::vector<bool>& values) const {
  std::vector<Var> order = cone({root});
  std::vector<std::uint8_t> val(nodes_.size(), 0);
  for (Var v : order) {
    const Node& n = nodes_[v];
    switch (n.type) {
      case NodeType::kConst:
        val[v] = 0;
        break;
      case NodeType::kInput:
      case NodeType::kLatch:
        val[v] = (v < values.size() && values[v]) ? 1 : 0;
        break;
      case NodeType::kAnd: {
        bool a = (val[lit_var(n.fanin0)] != 0) ^ lit_sign(n.fanin0);
        bool b = (val[lit_var(n.fanin1)] != 0) ^ lit_sign(n.fanin1);
        val[v] = (a && b) ? 1 : 0;
        break;
      }
    }
  }
  Var rv = lit_var(root);
  bool base = rv == 0 ? false : (val[rv] != 0);
  return base ^ lit_sign(root);
}

std::uint64_t Aig::evaluate64(Lit root, const std::vector<std::uint64_t>& values) const {
  std::vector<Var> order = cone({root});
  std::vector<std::uint64_t> val(nodes_.size(), 0);
  for (Var v : order) {
    const Node& n = nodes_[v];
    switch (n.type) {
      case NodeType::kConst:
        val[v] = 0;
        break;
      case NodeType::kInput:
      case NodeType::kLatch:
        val[v] = v < values.size() ? values[v] : 0;
        break;
      case NodeType::kAnd: {
        std::uint64_t a = val[lit_var(n.fanin0)] ^ (lit_sign(n.fanin0) ? ~0ull : 0ull);
        std::uint64_t b = val[lit_var(n.fanin1)] ^ (lit_sign(n.fanin1) ? ~0ull : 0ull);
        val[v] = a & b;
        break;
      }
    }
  }
  Var rv = lit_var(root);
  std::uint64_t base = rv == 0 ? 0ull : val[rv];
  return base ^ (lit_sign(root) ? ~0ull : 0ull);
}

Lit Aig::import_cone(const Aig& src, Lit root, const std::vector<Lit>& leaf_map) {
  std::vector<Lit> map(src.num_vars(), kNullLit);
  map[0] = kFalse;
  for (Var v : src.cone({root})) {
    const Node& n = src.nodes_[v];
    if (n.type == NodeType::kAnd) {
      Lit a = map[lit_var(n.fanin0)];
      Lit b = map[lit_var(n.fanin1)];
      assert(a != kNullLit && b != kNullLit);
      map[v] = make_and(lit_xor(a, lit_sign(n.fanin0)), lit_xor(b, lit_sign(n.fanin1)));
    } else {
      if (v >= leaf_map.size() || leaf_map[v] == kNullLit)
        throw std::invalid_argument("import_cone: unmapped leaf variable");
      map[v] = leaf_map[v];
    }
  }
  Var rv = lit_var(root);
  Lit base = rv == 0 ? kFalse : map[rv];
  if (base == kNullLit) throw std::invalid_argument("import_cone: unmapped root");
  return lit_xor(base, lit_sign(root));
}

}  // namespace itpseq::aig
