// aiger_io.hpp — reader/writer for the AIGER circuit exchange format.
//
// Supports both the ASCII ("aag") and binary ("aig") variants, including the
// AIGER 1.9 extensions we need for model checking: latch reset values and
// "bad state" (B) properties.  Outputs (O) and bad properties (B) are both
// loaded as Aig outputs; for model checking an output literal is interpreted
// as a *bad* signal (property is AG !bad), matching HWMCC conventions.
#pragma once

#include <iosfwd>
#include <string>

#include "aig/aig.hpp"

namespace itpseq::aig {

/// Parse an AIGER stream (auto-detects "aag" vs "aig" from the header).
/// Throws std::runtime_error on malformed input.
Aig read_aiger(std::istream& in);

/// Load an AIGER file from disk.
Aig read_aiger_file(const std::string& path);

/// Write `g` in ASCII AIGER ("aag") format.
void write_aiger_ascii(const Aig& g, std::ostream& out);

/// Write `g` in binary AIGER ("aig") format.  Requires that AND nodes are
/// already in topological order with fanins smaller than outputs, which
/// Aig guarantees by construction.
void write_aiger_binary(const Aig& g, std::ostream& out);

/// Write to a file; format chosen by extension (".aag" => ASCII, else binary).
void write_aiger_file(const Aig& g, const std::string& path);

}  // namespace itpseq::aig
