#include "aig/compact.hpp"

#include <stdexcept>

namespace itpseq::aig {

CompactResult compact(const Aig& g, const std::vector<Lit>& roots,
                      bool keep_latch_logic) {
  CompactResult out;
  std::vector<Lit> map(g.num_vars(), kNullLit);
  map[0] = kFalse;
  // Recreate leaves in order.
  for (std::size_t i = 0; i < g.num_inputs(); ++i) {
    Var v = lit_var(g.input(i));
    map[v] = out.graph.add_input(g.name(v));
  }
  for (std::size_t i = 0; i < g.num_latches(); ++i) {
    Var v = lit_var(g.latch(i));
    map[v] = out.graph.add_latch(g.latch_init(i), g.name(v));
  }

  std::vector<Lit> all_roots = roots;
  if (keep_latch_logic)
    for (std::size_t i = 0; i < g.num_latches(); ++i)
      all_roots.push_back(g.latch_next(i));

  for (Var v : g.cone(all_roots)) {
    if (map[v] != kNullLit) continue;
    const Node& n = g.node(v);
    if (n.type != NodeType::kAnd)
      throw std::logic_error("compact: unregistered leaf in cone");
    auto fanin = [&](Lit f) {
      Lit base = map[lit_var(f)];
      return lit_xor(base, lit_sign(f));
    };
    map[v] = out.graph.make_and(fanin(n.fanin0), fanin(n.fanin1));
  }

  if (keep_latch_logic)
    for (std::size_t i = 0; i < g.num_latches(); ++i) {
      Lit nx = g.latch_next(i);
      out.graph.set_latch_next(map[lit_var(g.latch(i))],
                               lit_xor(map[lit_var(nx)], lit_sign(nx)));
    }

  out.roots.reserve(roots.size());
  for (Lit r : roots)
    out.roots.push_back(lit_xor(map[lit_var(r)], lit_sign(r)));
  return out;
}

}  // namespace itpseq::aig
