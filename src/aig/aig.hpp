// aig.hpp — And-Inverter Graph (AIG) representation of sequential circuits.
//
// The AIG is the central data structure of this library: circuits loaded
// from AIGER files, state sets, and Craig interpolants are all represented
// as AIG nodes.  The encoding follows the AIGER convention:
//
//   * a *literal* is an unsigned integer `2*var + sign`;
//   * variable 0 is the constant FALSE, so literal 0 is FALSE and literal 1
//     is TRUE;
//   * every other variable is either a primary input, a latch (state
//     element) or an AND node with two fanin literals.
//
// AND nodes are structurally hashed: building the same AND twice returns
// the same literal, and trivial simplifications (x&0=0, x&1=x, x&x=x,
// x&!x=0) are applied on construction.  This keeps interpolant circuits,
// which are built bottom-up from resolution proofs, compact.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

namespace itpseq::aig {

/// AIGER-style literal: 2*var + sign. Literal 0 is constant false.
using Lit = std::uint32_t;
/// Variable index (literal >> 1).
using Var = std::uint32_t;

inline constexpr Lit kFalse = 0;  ///< The constant-false literal.
inline constexpr Lit kTrue = 1;   ///< The constant-true literal.
/// Sentinel for "no literal".
inline constexpr Lit kNullLit = std::numeric_limits<Lit>::max();

/// Variable of a literal.
constexpr Var lit_var(Lit l) { return l >> 1; }
/// True iff the literal is complemented.
constexpr bool lit_sign(Lit l) { return (l & 1u) != 0; }
/// Complement of a literal.
constexpr Lit lit_not(Lit l) { return l ^ 1u; }
/// Literal with given sign applied on top of l's own sign.
constexpr Lit lit_xor(Lit l, bool invert) { return l ^ static_cast<Lit>(invert); }
/// Positive-phase literal of a variable.
constexpr Lit var_lit(Var v, bool sign = false) {
  return (v << 1) | static_cast<Lit>(sign);
}

/// Node kinds stored in an Aig.
enum class NodeType : std::uint8_t {
  kConst,  ///< variable 0 only
  kInput,  ///< primary input
  kLatch,  ///< state element (has next-state literal and init value)
  kAnd,    ///< two-input AND gate
};

/// Reset value of a latch.  AIGER 1.9 allows 0, 1 or X (uninitialized);
/// we model X as a free choice at time 0.
enum class LatchInit : std::uint8_t { kZero = 0, kOne = 1, kUndef = 2 };

/// One AIG node.  For AND nodes `fanin0`/`fanin1` are the two operand
/// literals (fanin0 >= fanin1 canonically).  For latches `fanin0` holds the
/// next-state literal once `set_latch_next` has been called.
struct Node {
  NodeType type = NodeType::kConst;
  Lit fanin0 = kNullLit;
  Lit fanin1 = kNullLit;
  LatchInit init = LatchInit::kZero;  // latches only
};

/// And-Inverter Graph.
///
/// Holds a vector of nodes indexed by variable.  Inputs and latches are
/// registered in creation order and can be enumerated; outputs are property
/// literals ("bad" outputs in AIGER terms).
class Aig {
 public:
  Aig();

  // --- construction -------------------------------------------------------

  /// Create a fresh primary input; returns its positive literal.
  Lit add_input(const std::string& name = {});
  /// Create a fresh latch with the given reset value; returns its positive
  /// literal.  The next-state function must be set later via
  /// set_latch_next().
  Lit add_latch(LatchInit init = LatchInit::kZero, const std::string& name = {});
  /// Define the next-state literal of a latch previously created with
  /// add_latch().  `latch_lit` must be the positive literal of a latch.
  void set_latch_next(Lit latch_lit, Lit next);
  /// Structurally hashed AND node (with constant folding).
  Lit make_and(Lit a, Lit b);
  /// Convenience derived operators built from AND/NOT.
  Lit make_or(Lit a, Lit b) { return lit_not(make_and(lit_not(a), lit_not(b))); }
  Lit make_xor(Lit a, Lit b);
  Lit make_ite(Lit c, Lit t, Lit e);
  Lit make_equiv(Lit a, Lit b) { return lit_not(make_xor(a, b)); }
  /// AND / OR over a vector (balanced reduction).
  Lit make_and_many(const std::vector<Lit>& lits);
  Lit make_or_many(const std::vector<Lit>& lits);

  /// Register an output (safety property is `output is never 1` when the
  /// output encodes "bad").
  std::size_t add_output(Lit l, const std::string& name = {});

  /// Register an invariant constraint (AIGER 1.9 "C" section): only traces
  /// on which every constraint literal is 1 in every frame are considered.
  std::size_t add_constraint(Lit l);
  std::size_t num_constraints() const { return constraints_.size(); }
  Lit constraint(std::size_t i) const { return constraints_[i]; }

  // --- inspection ----------------------------------------------------------

  std::size_t num_vars() const { return nodes_.size(); }
  std::size_t num_inputs() const { return inputs_.size(); }
  std::size_t num_latches() const { return latches_.size(); }
  std::size_t num_ands() const { return num_ands_; }
  std::size_t num_outputs() const { return outputs_.size(); }

  const Node& node(Var v) const { return nodes_[v]; }
  NodeType type(Var v) const { return nodes_[v].type; }
  bool is_and(Var v) const { return nodes_[v].type == NodeType::kAnd; }
  bool is_input(Var v) const { return nodes_[v].type == NodeType::kInput; }
  bool is_latch(Var v) const { return nodes_[v].type == NodeType::kLatch; }

  /// Positive literal of the i-th input / latch (creation order).
  Lit input(std::size_t i) const { return inputs_[i]; }
  Lit latch(std::size_t i) const { return latches_[i]; }
  Lit output(std::size_t i) const { return outputs_[i]; }
  /// Next-state literal of the i-th latch.
  Lit latch_next(std::size_t i) const { return nodes_[lit_var(latches_[i])].fanin0; }
  LatchInit latch_init(std::size_t i) const { return nodes_[lit_var(latches_[i])].init; }
  /// Index of a latch variable in latch enumeration order (latch_index of
  /// latch(i) is i); kNoIndex if not a latch.
  static constexpr std::size_t kNoIndex = std::numeric_limits<std::size_t>::max();
  std::size_t latch_index(Var v) const;
  std::size_t input_index(Var v) const;

  const std::string& name(Var v) const;
  void set_name(Var v, const std::string& n);
  const std::string& output_name(std::size_t i) const { return output_names_[i]; }

  // --- analysis ------------------------------------------------------------

  /// Variables (inputs+latches) in the combinational support of `root`.
  std::vector<Var> support(Lit root) const;
  /// All AND/input/latch variables in the transitive fanin of `roots`,
  /// in topological order (fanins before fanouts).
  std::vector<Var> cone(const std::vector<Lit>& roots) const;
  /// Number of AND nodes in the cone of `root`.
  std::size_t cone_size(Lit root) const;

  /// Evaluate `root` under a full assignment to inputs and latches.
  /// `values[v]` gives the value of variable v (only input/latch entries are
  /// read).  Complexity: O(cone).
  bool evaluate(Lit root, const std::vector<bool>& values) const;

  /// 64-way parallel evaluation: each variable carries a 64-bit pattern.
  std::uint64_t evaluate64(Lit root, const std::vector<std::uint64_t>& values) const;

  /// Copy the cone of `root` in `src` into this AIG, mapping leaf literals
  /// through `leaf_map` (indexed by src variable; entries for inputs and
  /// latches of src must be valid literals of *this*).  Returns the literal
  /// in *this* corresponding to `root`.  Used to import interpolants.
  Lit import_cone(const Aig& src, Lit root, const std::vector<Lit>& leaf_map);

 private:
  Lit new_var(NodeType t);

  std::vector<Node> nodes_;
  std::vector<Lit> inputs_;
  std::vector<Lit> latches_;
  std::vector<Lit> outputs_;
  std::vector<Lit> constraints_;
  std::vector<std::string> output_names_;
  std::unordered_map<std::uint64_t, Lit> strash_;  // (fanin0,fanin1) -> and lit
  std::unordered_map<Var, std::string> names_;
  std::unordered_map<Var, std::size_t> latch_index_;
  std::unordered_map<Var, std::size_t> input_index_;
  std::size_t num_ands_ = 0;
};

}  // namespace itpseq::aig
