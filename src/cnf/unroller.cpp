#include "cnf/unroller.hpp"

#include <cassert>
#include <stdexcept>

namespace itpseq::cnf {

const char* to_string(TargetScheme s) {
  switch (s) {
    case TargetScheme::kBound:
      return "bound-k";
    case TargetScheme::kExact:
      return "exact-k";
    case TargetScheme::kExactAssume:
      return "assume-k";
  }
  return "?";
}

Unroller::Unroller(const aig::Aig& model, sat::Solver& solver,
                   std::vector<bool> visible)
    : model_(model), solver_(solver), visible_(std::move(visible)) {
  if (!visible_.empty() && visible_.size() != model_.num_latches())
    throw std::invalid_argument("Unroller: visibility mask size mismatch");
  ensure_frame0();
}

sat::Lit Unroller::true_lit(std::uint32_t label) {
  if (true_ == sat::kNoLit) {
    true_ = fresh();
    solver_.add_clause({true_}, label);
  }
  return true_;
}

void Unroller::ensure_frame0() {
  Frame f;
  f.map.assign(model_.num_vars(), sat::kNoLit);
  // Latches and inputs at frame 0 are fresh SAT variables.
  for (std::size_t i = 0; i < model_.num_latches(); ++i)
    f.map[aig::lit_var(model_.latch(i))] = fresh();
  frames_.push_back(std::move(f));
}

sat::Lit Unroller::lit(aig::Lit l, unsigned t, std::uint32_t label) {
  if (t >= frames_.size()) throw std::out_of_range("Unroller::lit: frame");
  aig::Var root = aig::lit_var(l);
  if (root == 0) {
    sat::Lit tl = true_lit(label);
    return aig::lit_sign(l) ? tl : sat::neg(tl);
  }
  Frame& f = frames_[t];
  if (f.map[root] == sat::kNoLit) {
    for (aig::Var v : model_.cone({aig::var_lit(root)})) {
      if (f.map[v] != sat::kNoLit) continue;
      const aig::Node& n = model_.node(v);
      switch (n.type) {
        case aig::NodeType::kInput:
          f.map[v] = fresh();
          break;
        case aig::NodeType::kLatch:
          // Visible latches are created eagerly (frame 0) or by
          // add_transition; reaching here means the latch is invisible
          // (abstraction cutpoint) -> fresh free variable.
          f.map[v] = fresh();
          break;
        case aig::NodeType::kAnd: {
          auto fanin_sat = [&](aig::Lit fl) -> sat::Lit {
            aig::Var fv = aig::lit_var(fl);
            sat::Lit s = fv == 0 ? sat::neg(true_lit(label)) : f.map[fv];
            assert(s != sat::kNoLit);
            return aig::lit_sign(fl) ? sat::neg(s) : s;
          };
          sat::Lit a = fanin_sat(n.fanin0);
          sat::Lit b = fanin_sat(n.fanin1);
          sat::Lit g = fresh();
          solver_.add_clause({sat::neg(g), a}, label);
          solver_.add_clause({sat::neg(g), b}, label);
          solver_.add_clause({g, sat::neg(a), sat::neg(b)}, label);
          f.map[v] = g;
          break;
        }
        case aig::NodeType::kConst:
          break;
      }
    }
  }
  sat::Lit s = f.map[root];
  return aig::lit_sign(l) ? sat::neg(s) : s;
}

sat::Lit Unroller::latch_lit(std::size_t i, unsigned t, std::uint32_t label) {
  return lit(model_.latch(i), t, label);
}

sat::Lit Unroller::lookup(aig::Lit l, unsigned t) const {
  if (t >= frames_.size()) return sat::kNoLit;
  aig::Var v = aig::lit_var(l);
  if (v == 0) return sat::kNoLit;
  sat::Lit s = frames_[t].map[v];
  if (s == sat::kNoLit) return sat::kNoLit;
  return aig::lit_sign(l) ? sat::neg(s) : s;
}

sat::Lit Unroller::input_lit(std::size_t i, unsigned t, std::uint32_t label) {
  return lit(model_.input(i), t, label);
}

void Unroller::assert_init(std::uint32_t label) {
  for (std::size_t i = 0; i < model_.num_latches(); ++i) {
    if (!latch_visible(i)) continue;
    aig::LatchInit init = model_.latch_init(i);
    if (init == aig::LatchInit::kUndef) continue;  // free at reset
    sat::Lit l = latch_lit(i, 0, label);
    solver_.add_clause({init == aig::LatchInit::kOne ? l : sat::neg(l)}, label);
  }
}

void Unroller::add_transition(unsigned t, std::uint32_t label) {
  if (t + 1 != frames_.size())
    throw std::logic_error("add_transition: frames must be added in order");
  Frame next;
  next.map.assign(model_.num_vars(), sat::kNoLit);
  // Every latch at frame t+1 gets a *fresh* SAT variable tied to its
  // next-state function by equality clauses.  Aliasing the gate literal
  // directly would be slightly cheaper, but fresh variables guarantee that
  // the variables shared across a partition cut are exactly the frame's
  // latch variables, one per latch — which interpolant extraction relies on
  // to map shared variables back to state-space inputs.
  for (std::size_t i = 0; i < model_.num_latches(); ++i) {
    aig::Var lv = aig::lit_var(model_.latch(i));
    sat::Lit v = fresh();
    next.map[lv] = v;
    if (!latch_visible(i)) continue;  // cutpoint: leave unconstrained
    aig::Lit nx = model_.latch_next(i);
    if (aig::lit_var(nx) == 0) {
      // Constant next state: a unit clause, avoiding a constant-true var.
      solver_.add_clause({aig::lit_sign(nx) ? v : sat::neg(v)}, label);
    } else {
      sat::Lit g = lit(nx, t, label);
      solver_.add_clause({sat::neg(v), g}, label);
      solver_.add_clause({v, sat::neg(g)}, label);
    }
  }
  frames_.push_back(std::move(next));
}

void Unroller::assert_constraints(unsigned t, std::uint32_t label) {
  for (std::size_t i = 0; i < model_.num_constraints(); ++i) {
    aig::Lit c = model_.constraint(i);
    if (aig::lit_var(c) == 0) {
      if (c == aig::kFalse) solver_.add_clause({}, label);  // unsatisfiable
      continue;
    }
    solver_.add_clause({lit(c, t, label)}, label);
  }
}

sat::Lit Unroller::bad_lit(unsigned t, std::uint32_t label, std::size_t prop) {
  if (prop >= model_.num_outputs())
    throw std::out_of_range("bad_lit: no such output");
  return lit(model_.output(prop), t, label);
}

void Unroller::assert_target(unsigned k, TargetScheme scheme, std::uint32_t label) {
  switch (scheme) {
    case TargetScheme::kBound: {
      std::vector<sat::Lit> disj;
      for (unsigned t = 1; t <= k; ++t) disj.push_back(bad_lit(t, label));
      solver_.add_clause(disj, label);
      break;
    }
    case TargetScheme::kExact:
      solver_.add_clause({bad_lit(k, label)}, label);
      break;
    case TargetScheme::kExactAssume:
      for (unsigned t = 1; t + 1 <= k; ++t)
        solver_.add_clause({sat::neg(bad_lit(t, label))}, label);
      solver_.add_clause({bad_lit(k, label)}, label);
      break;
  }
}

sat::Lit Unroller::encode_state_pred(const aig::Aig& sets, aig::Lit root,
                                     unsigned t, std::uint32_t label) {
  if (sets.num_inputs() != model_.num_latches())
    throw std::invalid_argument(
        "encode_state_pred: state-set AIG inputs must match model latches");
  TseitinEncoder enc(sets, solver_, [&](aig::Var v) -> sat::Lit {
    std::size_t idx = sets.input_index(v);
    assert(idx != aig::Aig::kNoIndex);
    return latch_lit(idx, t, label);
  });
  return enc.encode(root, label);
}

}  // namespace itpseq::cnf
