// tseitin.hpp — Tseitin encoding of AIG cones into a SAT solver.
//
// A TseitinEncoder owns a mapping from AIG variables (in one fixed context,
// e.g. one time frame or one state-set AIG) to SAT literals, creating gate
// definition clauses on demand.  Gate clauses carry a caller-chosen
// partition label so they land in the right interpolation partition.
#pragma once

#include <functional>
#include <vector>

#include "aig/aig.hpp"
#include "sat/solver.hpp"

namespace itpseq::cnf {

/// Callback providing the SAT literal of an AIG *leaf* (input or latch).
using LeafMap = std::function<sat::Lit(aig::Var)>;

class TseitinEncoder {
 public:
  /// `leaf` is consulted once per leaf variable and memoized.
  TseitinEncoder(const aig::Aig& g, sat::Solver& solver, LeafMap leaf)
      : g_(g), solver_(solver), leaf_(std::move(leaf)) {}

  /// SAT literal equisatisfiably representing AIG literal `l`; gate clauses
  /// added with partition `label`.  The constant-true AIG literal maps to a
  /// dedicated always-true SAT variable.
  sat::Lit encode(aig::Lit l, std::uint32_t label);

  /// Pre-encoded SAT literal for an AIG node, or sat::kNoLit.
  sat::Lit lookup(aig::Lit l) const;

  const aig::Aig& graph() const { return g_; }

 private:
  sat::Lit true_lit(std::uint32_t label);

  const aig::Aig& g_;
  sat::Solver& solver_;
  LeafMap leaf_;
  std::vector<sat::Lit> map_;  // aig var -> sat lit (positive phase)
  sat::Lit true_ = sat::kNoLit;
};

}  // namespace itpseq::cnf
