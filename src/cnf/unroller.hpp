// unroller.hpp — time-frame expansion of a sequential AIG into CNF.
//
// The unroller maintains, for each time frame t, a Tseitin map from AIG
// variables to SAT literals.  Latches at frame 0 are fresh variables
// (constrained by assert_init, or left free); latches at frame t+1 alias
// the SAT literal of their next-state function at frame t.
//
// Partition labels follow the interpolation-sequence convention of the
// paper (Section II-C):
//   A_1     = S0(V^0) ∧ T(V^0,V^1)        -> label 1
//   A_i     = T(V^{i-1},V^i), 2 <= i <= k  -> label i
//   A_{k+1} = ¬p(V^k)                      -> label k+1
// Callers are free to use any other monotone labeling (e.g. a two-label
// A/B split for standard interpolation).
//
// Localization abstraction (CBA) is supported through a visibility mask:
// invisible latches are cut — they get fresh unconstrained SAT variables in
// every frame and are skipped by assert_init.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "aig/aig.hpp"
#include "cnf/tseitin.hpp"
#include "sat/solver.hpp"

namespace itpseq::cnf {

/// The three BMC target formulations of the paper (Section II-A / III).
enum class TargetScheme : std::uint8_t {
  kBound,        ///< bad at any frame 1..k (used by standard interpolation)
  kExact,        ///< bad at frame k exactly (violations earlier allowed)
  kExactAssume,  ///< bad at frame k, good at frames 1..k-1
};

const char* to_string(TargetScheme s);

class Unroller {
 public:
  /// `visible`: per-latch flag; invisible latches become free cutpoints.
  /// Empty mask = everything visible (no abstraction).
  Unroller(const aig::Aig& model, sat::Solver& solver,
           std::vector<bool> visible = {});

  const aig::Aig& model() const { return model_; }
  sat::Solver& solver() { return solver_; }

  /// SAT literal of AIG literal `l` evaluated at frame `t`.  Combinational
  /// gate clauses created on demand carry partition `label`.
  sat::Lit lit(aig::Lit l, unsigned t, std::uint32_t label);

  /// SAT literal of the i-th latch at frame t (frame must exist or be
  /// created by prior transitions; frame 0 always available).
  sat::Lit latch_lit(std::size_t i, unsigned t, std::uint32_t label);

  /// Already-encoded SAT literal of `l` at frame t, or sat::kNoLit.  Never
  /// creates variables or clauses (safe after solve(), e.g. for reading
  /// counterexample values out of a model).
  sat::Lit lookup(aig::Lit l, unsigned t) const;
  /// SAT literal of the i-th input at frame t.
  sat::Lit input_lit(std::size_t i, unsigned t, std::uint32_t label);

  /// Assert the reset state at frame 0 (unit clause per initialized,
  /// visible latch) with partition `label`.
  void assert_init(std::uint32_t label);

  /// Extend the unrolling with transition t -> t+1: encodes every visible
  /// latch's next-state cone at frame t (label) and aliases frame-(t+1)
  /// latches to the results.  Must be called with t = num_frames()-1.
  void add_transition(unsigned t, std::uint32_t label);

  /// Highest frame with latch literals available (0-based); frames
  /// 0..num_frames()-1 exist.
  unsigned num_frames() const { return static_cast<unsigned>(frames_.size()); }

  /// SAT literal of the bad signal (output `prop`) at frame t.
  sat::Lit bad_lit(unsigned t, std::uint32_t label, std::size_t prop = 0);

  /// Assert every invariant constraint of the model at frame t (AIGER 1.9
  /// "C" section semantics: constraints hold in every frame of a trace).
  void assert_constraints(unsigned t, std::uint32_t label);

  /// Assert the BMC target for bound k with the given scheme.  Target
  /// clauses get partition `label` (gate cones per-frame get labels from
  /// `frame_label(t)` if provided, else `label`).
  void assert_target(unsigned k, TargetScheme scheme, std::uint32_t label);

  /// Encode (and return) an arbitrary predicate over the model's *latches*:
  /// `root` is a literal of `sets`, whose input i corresponds to model
  /// latch i.  Evaluated over frame `t`'s latch literals.
  sat::Lit encode_state_pred(const aig::Aig& sets, aig::Lit root, unsigned t,
                             std::uint32_t label);

  bool latch_visible(std::size_t i) const {
    return visible_.empty() || visible_[i];
  }

 private:
  struct Frame {
    std::vector<sat::Lit> map;  // aig var -> sat lit, kNoLit if unencoded
  };

  sat::Lit fresh() { return sat::mk_lit(solver_.new_var()); }
  sat::Lit true_lit(std::uint32_t label);
  void ensure_frame0();

  const aig::Aig& model_;
  sat::Solver& solver_;
  std::vector<bool> visible_;
  std::vector<Frame> frames_;
  sat::Lit true_ = sat::kNoLit;
};

}  // namespace itpseq::cnf
