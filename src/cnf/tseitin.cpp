#include "cnf/tseitin.hpp"

#include <cassert>

namespace itpseq::cnf {

sat::Lit TseitinEncoder::true_lit(std::uint32_t label) {
  if (true_ == sat::kNoLit) {
    sat::Var v = solver_.new_var();
    true_ = sat::mk_lit(v);
    solver_.add_clause({true_}, label);
  }
  return true_;
}

sat::Lit TseitinEncoder::lookup(aig::Lit l) const {
  aig::Var v = aig::lit_var(l);
  if (v >= map_.size() || map_[v] == sat::kNoLit) return sat::kNoLit;
  return aig::lit_sign(l) ? sat::neg(map_[v]) : map_[v];
}

sat::Lit TseitinEncoder::encode(aig::Lit l, std::uint32_t label) {
  if (map_.size() < g_.num_vars()) map_.resize(g_.num_vars(), sat::kNoLit);
  aig::Var root = aig::lit_var(l);
  if (root == 0) {
    sat::Lit t = true_lit(label);
    return aig::lit_sign(l) ? t : sat::neg(t);
  }
  if (map_[root] == sat::kNoLit) {
    for (aig::Var v : g_.cone({aig::var_lit(root)})) {
      if (map_[v] != sat::kNoLit) continue;
      const aig::Node& n = g_.node(v);
      if (n.type == aig::NodeType::kAnd) {
        auto fanin_sat = [&](aig::Lit f) -> sat::Lit {
          aig::Var fv = aig::lit_var(f);
          sat::Lit s;
          if (fv == 0) {
            s = sat::neg(true_lit(label));  // aig constant false
          } else {
            assert(map_[fv] != sat::kNoLit && "cone order violated");
            s = map_[fv];
          }
          return aig::lit_sign(f) ? sat::neg(s) : s;
        };
        sat::Lit a = fanin_sat(n.fanin0);
        sat::Lit b = fanin_sat(n.fanin1);
        sat::Lit g = sat::mk_lit(solver_.new_var());
        // g <-> a & b
        solver_.add_clause({sat::neg(g), a}, label);
        solver_.add_clause({sat::neg(g), b}, label);
        solver_.add_clause({g, sat::neg(a), sat::neg(b)}, label);
        map_[v] = g;
      } else {
        map_[v] = leaf_(v);
        assert(map_[v] != sat::kNoLit && "leaf map must cover all leaves");
      }
    }
  }
  return aig::lit_sign(l) ? sat::neg(map_[root]) : map_[root];
}

}  // namespace itpseq::cnf
