// trace.hpp — structured tracing & telemetry for every layer of the stack.
//
// The subsystem answers "where did a run spend its time" for concurrent
// portfolio runs: engines, the SAT core and the lemma hub emit *events*
// (instants) and *spans* (RAII-timed phases) into per-thread buffers that a
// central drainer serializes — as JSONL (one event per line) or as Chrome
// trace-event JSON that Perfetto / chrome://tracing renders as per-thread
// timelines.
//
// JSONL schema (one object per line, keys always present):
//
//   {"ts_us":N,          microseconds since process trace epoch
//    "tid":N,            small dense thread id (1, 2, ...)
//    "engine":"PDR",     thread's engine tag (ScopedEngine), "main" outside
//    "kind":"span",      event kind ("span" for phases, else an instant
//                        kind like "sat_restart", "lemma_publish", ...)
//    "payload":{...}}    kind-specific fields; spans carry "name" and
//                        "dur_us"
//
// Overhead contract.  Tracing off must be near-zero cost: every emit point
// is guarded by the inlined enabled() check below — one relaxed atomic load
// and a predictable branch, no locks, no allocation.  The hot SAT paths
// (propagation, conflict analysis) carry NO per-event hooks at all; the
// solver reports through amortized sample points (every few thousand
// conflicts) and through events on its already-rare maintenance actions
// (restart, reduce_db, GC).  With tracing on, an emit formats nothing: it
// copies a fixed-size Event into a per-thread buffer under that buffer's
// otherwise-uncontended mutex; all serialization happens on the drainer.
//
// Threading contract.  Install/uninstall (TraceSink ctor / finish()) must
// happen while no instrumented worker threads are running — in practice:
// create the sink before dispatching engines, finish it after every engine
// thread is joined (check_portfolio joins all members before returning, so
// tool main() trivially satisfies this).  Emits themselves are fully
// thread-safe; a cancelled worker mid-emit can never tear an output line
// because only the central drainer writes the file.
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <utility>

namespace itpseq::obs {

class TraceSink;

namespace detail {
extern std::atomic<TraceSink*> g_sink;
std::uint64_t now_us();          // microseconds since the process trace epoch
std::uint32_t thread_id();       // small dense id, stable for a thread's life
}  // namespace detail

/// The global gate every instrumentation point checks first.  One relaxed
/// load; inlined into the caller, so disabled tracing costs a predictable
/// never-taken branch.
inline bool enabled() {
  return detail::g_sink.load(std::memory_order_acquire) != nullptr;
}

/// A typed payload field.  Values are copied by value; string values must
/// be *static* (literals, to_string() of enums) — the event buffer outlives
/// the emitting scope.
struct Arg {
  enum class Type : std::uint8_t { kU64, kI64, kF64, kStr };
  const char* key = nullptr;
  Type type = Type::kU64;
  union {
    std::uint64_t u;
    std::int64_t i;
    double f;
    const char* s;
  };
  Arg() : u(0) {}
  Arg(const char* k, unsigned long long v)
      : key(k), type(Type::kU64), u(v) {}
  Arg(const char* k, unsigned long v) : key(k), type(Type::kU64), u(v) {}
  Arg(const char* k, unsigned v) : key(k), type(Type::kU64), u(v) {}
  Arg(const char* k, int v) : key(k), type(Type::kI64), i(v) {}
  Arg(const char* k, long v) : key(k), type(Type::kI64), i(v) {}
  Arg(const char* k, double v) : key(k), type(Type::kF64), f(v) {}
  Arg(const char* k, const char* v) : key(k), type(Type::kStr), s(v) {}
};

constexpr std::size_t kMaxArgs = 8;

/// One trace record.  Fixed size, no owned memory: emitting never allocates
/// (the per-thread buffer vector amortizes growth).
struct Event {
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;      // spans only
  const char* engine = nullptr;  // static string (ScopedEngine tag)
  const char* kind = nullptr;    // static string
  const char* name = nullptr;    // spans: phase name; instants: nullptr
  Arg args[kMaxArgs];
  std::uint32_t tid = 0;
  std::uint8_t nargs = 0;
  bool span = false;
};

namespace detail {
void emit_slow(const char* kind, const Arg* args, std::size_t nargs);
void span_end(const char* name, std::uint64_t t0, const Arg* args,
              std::size_t nargs);
}  // namespace detail

/// Emit an instant event.  No-op (one relaxed load) when tracing is off.
inline void emit(const char* kind, std::initializer_list<Arg> args = {}) {
  if (!enabled()) return;
  detail::emit_slow(kind, args.begin(), args.size());
}

/// RAII-timed phase: records its construction time and emits one
/// kind="span" event at destruction (start + duration — Chrome "complete"
/// events, so nesting is balanced per thread by scope discipline).
class Span {
 public:
  explicit Span(const char* name, std::initializer_list<Arg> args = {}) {
    if (!enabled()) return;
    armed_ = true;
    name_ = name;
    t0_ = detail::now_us();
    for (const Arg& a : args) {
      if (nargs_ >= kMaxArgs) break;
      args_[nargs_++] = a;
    }
  }
  ~Span() {
    if (armed_) detail::span_end(name_, t0_, args_, nargs_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t t0_ = 0;
  Arg args_[kMaxArgs];
  std::uint8_t nargs_ = 0;
  bool armed_ = false;
};

/// Thread-local engine tag stamped onto every event the thread emits.
/// Engines install it at the top of run(); portfolio workers inherit it
/// through the member's own run().  Cheap enough to set unconditionally.
const char* engine_tag();
class ScopedEngine {
 public:
  explicit ScopedEngine(const char* name);
  ~ScopedEngine();
  ScopedEngine(const ScopedEngine&) = delete;
  ScopedEngine& operator=(const ScopedEngine&) = delete;

 private:
  const char* prev_;
};

/// Process-wide telemetry counters, updated (relaxed) by instrumentation
/// hooks *only while tracing is enabled*; the sampler thread snapshots the
/// deltas on an interval so long-running queries are visible mid-flight.
struct Counters {
  std::atomic<std::uint64_t> conflicts{0};
  std::atomic<std::uint64_t> propagations{0};
  std::atomic<std::uint64_t> decisions{0};
  std::atomic<std::uint64_t> restarts{0};
  std::atomic<std::uint64_t> reduce_dbs{0};
  std::atomic<std::uint64_t> gc_runs{0};
  std::atomic<std::uint64_t> inprocess_rounds{0};
  std::atomic<std::uint64_t> obligations{0};
  std::atomic<std::uint64_t> bounds{0};
  std::atomic<std::uint64_t> lemmas_published{0};
  std::atomic<std::uint64_t> lemmas_fetched{0};
};
Counters& counters();

struct TraceConfig {
  /// Event-stream output path; empty = no event file (the sink still runs,
  /// aggregates the summary and drives the sampler — the --stats-json /
  /// --progress-only configurations).
  std::string path;
  enum class Format : std::uint8_t { kJsonl, kChrome };
  Format format = Format::kJsonl;
  /// Sampler interval; <= 0 disables the sampler thread (events are then
  /// drained only at finish()).
  double sample_interval_sec = 0.25;
  /// Throttled one-line search-rate reports on stderr.
  bool progress = false;
  double progress_interval_sec = 1.0;
  /// Per-thread buffered-event cap between drains; events beyond it are
  /// dropped (and counted) rather than exhausting memory on runaway loads.
  std::size_t max_buffered_events = 1u << 20;
};

/// The central sink: owns the per-thread buffers, the output file and the
/// sampler thread.  Exactly one sink is active at a time (the ctor installs
/// itself as the global emit target, finish()/dtor uninstalls).
class TraceSink {
 public:
  explicit TraceSink(TraceConfig cfg);
  ~TraceSink();
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Uninstall, stop the sampler, drain every buffer, close the file.
  /// Idempotent; called by the destructor.  Must run after all instrumented
  /// worker threads are joined.
  void finish();

  /// Drain all thread buffers into the output/summary now (the sampler
  /// does this periodically anyway).  Thread-safe.
  void flush();

  /// Running aggregation over every drained event, for the end-of-run
  /// report: span totals per (engine, name), instant counts per
  /// (engine, kind), and the lemma-exchange matrix per (engine, grade).
  struct SpanAgg {
    std::uint64_t count = 0;
    std::uint64_t total_us = 0;
  };
  struct ExchangeCell {
    std::uint64_t published = 0;
    std::uint64_t fetched = 0;
  };
  struct Summary {
    std::map<std::pair<std::string, std::string>, SpanAgg> spans;
    std::map<std::pair<std::string, std::string>, std::uint64_t> kinds;
    std::map<std::pair<std::string, std::string>, ExchangeCell> exchange;
    std::uint64_t events = 0;   // drained (== written when a file is set)
    std::uint64_t dropped = 0;  // lost to the per-thread buffer cap
  };
  Summary summary() const;

  /// Build a sink from ITPSEQ_TRACE / ITPSEQ_TRACE_FORMAT /
  /// ITPSEQ_PROGRESS, or null when unset — how the bench drivers and
  /// examples opt in without flag plumbing.
  static std::unique_ptr<TraceSink> from_env();

 private:
  friend void detail::emit_slow(const char*, const Arg*, std::size_t);
  friend void detail::span_end(const char*, std::uint64_t, const Arg*,
                               std::size_t);
  struct Impl;
  std::unique_ptr<Impl> impl_;
  void add(const Event& e);
};

}  // namespace itpseq::obs
