// trace.cpp — TraceSink implementation: per-thread event buffers, the
// central drainer/serializer (JSONL + Chrome trace-event), the periodic
// sampler thread and the throttled --progress reporter.
#include "obs/trace.hpp"

#include <chrono>
#include <cinttypes>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "util/fault.hpp"

namespace itpseq::obs {

namespace detail {

std::atomic<TraceSink*> g_sink{nullptr};

std::uint64_t now_us() {
  // One fixed epoch per process so timestamps from successive sinks (tests
  // create several) stay monotone and comparable.
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

std::uint32_t thread_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

namespace {
thread_local const char* t_engine = "main";
}  // namespace

}  // namespace detail

const char* engine_tag() { return detail::t_engine; }

ScopedEngine::ScopedEngine(const char* name) : prev_(detail::t_engine) {
  detail::t_engine = name;
}
ScopedEngine::~ScopedEngine() { detail::t_engine = prev_; }

Counters& counters() {
  static Counters c;
  return c;
}

// --- sink ------------------------------------------------------------------

namespace {

/// Per-thread event buffer.  The owning thread appends under `mu` (an
/// uncontended lock in steady state — the drainer takes it only long enough
/// to swap the vector out).
struct ThreadBuf {
  std::mutex mu;
  std::vector<Event> events;
  std::uint32_t tid = 0;
};

/// Buffer-lookup cache: one registration per (thread, sink generation).
struct TlsCache {
  std::uint64_t gen = 0;
  ThreadBuf* buf = nullptr;
};
thread_local TlsCache t_cache;
std::atomic<std::uint64_t> g_generation{0};

void append_escaped(std::string& out, const char* s) {
  for (; *s; ++s) {
    unsigned char c = static_cast<unsigned char>(*s);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
}

void append_arg_value(std::string& out, const Arg& a) {
  char buf[40];
  switch (a.type) {
    case Arg::Type::kU64:
      std::snprintf(buf, sizeof buf, "%" PRIu64, a.u);
      out += buf;
      break;
    case Arg::Type::kI64:
      std::snprintf(buf, sizeof buf, "%" PRId64, a.i);
      out += buf;
      break;
    case Arg::Type::kF64:
      std::snprintf(buf, sizeof buf, "%.6g", std::isfinite(a.f) ? a.f : 0.0);
      out += buf;
      break;
    case Arg::Type::kStr:
      out += '"';
      append_escaped(out, a.s != nullptr ? a.s : "");
      out += '"';
      break;
  }
}

void append_args(std::string& out, const Event& e, bool* first) {
  for (std::uint8_t i = 0; i < e.nargs; ++i) {
    if (!*first) out += ',';
    *first = false;
    out += '"';
    append_escaped(out, e.args[i].key != nullptr ? e.args[i].key : "?");
    out += "\":";
    append_arg_value(out, e.args[i]);
  }
}

void format_jsonl(std::string& out, const Event& e) {
  char buf[64];
  out += "{\"ts_us\":";
  std::snprintf(buf, sizeof buf, "%" PRIu64, e.ts_us);
  out += buf;
  std::snprintf(buf, sizeof buf, ",\"tid\":%u,\"engine\":\"", e.tid);
  out += buf;
  append_escaped(out, e.engine);
  out += "\",\"kind\":\"";
  append_escaped(out, e.kind);
  out += "\",\"payload\":{";
  bool first = true;
  if (e.span) {
    out += "\"name\":\"";
    append_escaped(out, e.name != nullptr ? e.name : "?");
    std::snprintf(buf, sizeof buf, "\",\"dur_us\":%" PRIu64, e.dur_us);
    out += buf;
    first = false;
  }
  append_args(out, e, &first);
  out += "}}\n";
}

void format_chrome(std::string& out, const Event& e) {
  char buf[96];
  out += "{\"name\":\"";
  append_escaped(out, e.span ? (e.name != nullptr ? e.name : "?") : e.kind);
  out += "\",\"cat\":\"";
  append_escaped(out, e.engine);
  if (e.span)
    std::snprintf(buf, sizeof buf,
                  "\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"ts\":%" PRIu64
                  ",\"dur\":%" PRIu64 ",\"args\":{",
                  e.tid, e.ts_us, e.dur_us);
  else
    std::snprintf(buf, sizeof buf,
                  "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%u,"
                  "\"ts\":%" PRIu64 ",\"args\":{",
                  e.tid, e.ts_us);
  out += buf;
  bool first = true;
  append_args(out, e, &first);
  out += "}}";
}

const char* arg_str(const Event& e, const char* key, const char* dflt) {
  for (std::uint8_t i = 0; i < e.nargs; ++i)
    if (e.args[i].type == Arg::Type::kStr && e.args[i].key != nullptr &&
        std::strcmp(e.args[i].key, key) == 0)
      return e.args[i].s;
  return dflt;
}

std::uint64_t arg_u64(const Event& e, const char* key) {
  for (std::uint8_t i = 0; i < e.nargs; ++i) {
    if (e.args[i].key == nullptr || std::strcmp(e.args[i].key, key) != 0)
      continue;
    if (e.args[i].type == Arg::Type::kU64) return e.args[i].u;
    if (e.args[i].type == Arg::Type::kI64 && e.args[i].i >= 0)
      return static_cast<std::uint64_t>(e.args[i].i);
  }
  return 0;
}

}  // namespace

struct TraceSink::Impl {
  TraceConfig cfg;
  std::uint64_t gen = 0;

  // thread-buffer registry
  std::mutex reg_mu;
  std::vector<std::unique_ptr<ThreadBuf>> bufs;
  std::atomic<std::uint64_t> dropped{0};

  // drainer state (file + summary), one lock: drains are rare and batched
  std::mutex io_mu;
  std::FILE* file = nullptr;
  bool chrome_first = true;
  Summary summary;

  // sampler thread
  std::thread sampler;
  std::mutex cv_mu;
  std::condition_variable cv;
  bool stop = false;

  bool finished = false;

  ThreadBuf* register_thread() {
    auto buf = std::make_unique<ThreadBuf>();
    buf->tid = detail::thread_id();
    ThreadBuf* raw = buf.get();
    std::lock_guard<std::mutex> lock(reg_mu);
    bufs.push_back(std::move(buf));
    return raw;
  }

  void process(const std::vector<Event>& batch) {
    ITPSEQ_FAULT_POINT("obs.drain");
    std::lock_guard<std::mutex> lock(io_mu);
    std::string line;
    for (const Event& e : batch) {
      ++summary.events;
      if (e.span) {
        SpanAgg& a = summary.spans[{e.engine, e.name != nullptr ? e.name : "?"}];
        ++a.count;
        a.total_us += e.dur_us;
      } else {
        ++summary.kinds[{e.engine, e.kind}];
        if (std::strcmp(e.kind, "lemma_publish") == 0) {
          if (arg_u64(e, "accepted") != 0)
            ++summary.exchange[{e.engine, arg_str(e, "grade", "?")}].published;
        } else if (std::strcmp(e.kind, "lemma_fetch") == 0) {
          for (const char* grade : {"invariant", "frame", "candidate"}) {
            std::uint64_t n = arg_u64(e, grade);
            if (n != 0) summary.exchange[{e.engine, grade}].fetched += n;
          }
        } else if (std::strcmp(e.kind, "member_restart") == 0) {
          // Self-healing relaunches get their own matrix row, keyed by the
          // member's name from the payload — the event is emitted by the
          // scheduler thread, outside any ScopedEngine tag.
          ++summary.exchange[{arg_str(e, "member", "?"), "restart"}].published;
        }
      }
      if (file != nullptr) {
        line.clear();
        if (cfg.format == TraceConfig::Format::kChrome) {
          if (!chrome_first) line += ",\n";
          chrome_first = false;
          format_chrome(line, e);
        } else {
          format_jsonl(line, e);
        }
        std::fwrite(line.data(), 1, line.size(), file);
      }
    }
    if (file != nullptr) std::fflush(file);
  }
};

TraceSink::TraceSink(TraceConfig cfg) : impl_(std::make_unique<Impl>()) {
  impl_->cfg = std::move(cfg);
  impl_->gen = g_generation.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!impl_->cfg.path.empty()) {
    impl_->file = std::fopen(impl_->cfg.path.c_str(), "w");
    if (impl_->file != nullptr &&
        impl_->cfg.format == TraceConfig::Format::kChrome)
      std::fputs("[\n", impl_->file);
  }
  TraceSink* expected = nullptr;
  detail::g_sink.compare_exchange_strong(expected, this,
                                         std::memory_order_release);

  double tick = impl_->cfg.sample_interval_sec;
  if (impl_->cfg.progress &&
      (tick <= 0 || impl_->cfg.progress_interval_sec < tick))
    tick = impl_->cfg.progress_interval_sec;
  if (tick > 0) {
    impl_->sampler = std::thread([this, tick] {
      try {
      ScopedEngine tag("sampler");
      Counters& c = counters();
      std::uint64_t last[8] = {};
      auto snap = [&](std::uint64_t* out) {
        out[0] = c.conflicts.load(std::memory_order_relaxed);
        out[1] = c.propagations.load(std::memory_order_relaxed);
        out[2] = c.decisions.load(std::memory_order_relaxed);
        out[3] = c.restarts.load(std::memory_order_relaxed);
        out[4] = c.gc_runs.load(std::memory_order_relaxed);
        out[5] = c.obligations.load(std::memory_order_relaxed);
        out[6] = c.lemmas_published.load(std::memory_order_relaxed);
        out[7] = c.lemmas_fetched.load(std::memory_order_relaxed);
      };
      snap(last);
      const auto t0 = std::chrono::steady_clock::now();
      auto last_progress = t0;
      while (true) {
        {
          std::unique_lock<std::mutex> lock(impl_->cv_mu);
          impl_->cv.wait_for(lock, std::chrono::duration<double>(tick),
                             [&] { return impl_->stop; });
          if (impl_->stop) return;
        }
        std::uint64_t now[8];
        snap(now);
        if (impl_->cfg.sample_interval_sec > 0)
          emit("sample", {{"conflicts", now[0] - last[0]},
                          {"propagations", now[1] - last[1]},
                          {"decisions", now[2] - last[2]},
                          {"restarts", now[3] - last[3]},
                          {"gc_runs", now[4] - last[4]},
                          {"obligations", now[5] - last[5]},
                          {"lemmas_pub", now[6] - last[6]},
                          {"lemmas_fetch", now[7] - last[7]}});
        auto t = std::chrono::steady_clock::now();
        if (impl_->cfg.progress &&
            std::chrono::duration<double>(t - last_progress).count() >=
                impl_->cfg.progress_interval_sec) {
          double el = std::chrono::duration<double>(t - t0).count();
          double win = std::chrono::duration<double>(t - last_progress).count();
          std::fprintf(stderr,
                       "c [obs t=%.1fs] conflicts=%" PRIu64 " (%.0f/s) props=%"
                       PRIu64 " (%.2gM/s) restarts=%" PRIu64 " gc=%" PRIu64
                       " obligations=%" PRIu64 " lemmas pub=%" PRIu64
                       " fetch=%" PRIu64 "\n",
                       el, now[0], (now[0] - last[0]) / win,
                       now[1], (now[1] - last[1]) / win / 1e6, now[3], now[4],
                       now[5], now[6], now[7]);
          last_progress = t;
        }
        std::memcpy(last, now, sizeof last);
        flush();
      }
      } catch (...) {
        // Telemetry must never take the process down: a dying sampler
        // just stops mid-run sampling; finish() still drains and joins.
      }
    });
  }
}

TraceSink::~TraceSink() { finish(); }

void TraceSink::finish() {
  if (impl_->finished) return;
  impl_->finished = true;
  // Uninstall first: no new emits target this sink while it drains.
  TraceSink* expected = this;
  detail::g_sink.compare_exchange_strong(expected, nullptr,
                                         std::memory_order_release);
  if (impl_->sampler.joinable()) {
    {
      std::lock_guard<std::mutex> lock(impl_->cv_mu);
      impl_->stop = true;
    }
    impl_->cv.notify_all();
    impl_->sampler.join();
  }
  // Contain drainer failures: finish() runs on tool exit paths outside any
  // try scope, and losing the tail of a trace must not turn a finished
  // verdict into a crash.
  try {
    flush();
  } catch (...) {
    impl_->dropped.fetch_add(1, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(impl_->io_mu);
  impl_->summary.dropped = impl_->dropped.load(std::memory_order_relaxed);
  if (impl_->file != nullptr) {
    if (impl_->cfg.format == TraceConfig::Format::kChrome)
      std::fputs("\n]\n", impl_->file);
    std::fclose(impl_->file);
    impl_->file = nullptr;
  }
}

void TraceSink::flush() {
  std::vector<Event> batch;
  {
    std::lock_guard<std::mutex> reg_lock(impl_->reg_mu);
    for (auto& buf : impl_->bufs) {
      std::lock_guard<std::mutex> buf_lock(buf->mu);
      if (buf->events.empty()) continue;
      batch.insert(batch.end(), buf->events.begin(), buf->events.end());
      buf->events.clear();
    }
  }
  if (!batch.empty()) impl_->process(batch);
}

TraceSink::Summary TraceSink::summary() const {
  std::lock_guard<std::mutex> lock(impl_->io_mu);
  Summary s = impl_->summary;
  s.dropped = impl_->dropped.load(std::memory_order_relaxed);
  return s;
}

void TraceSink::add(const Event& e) {
  if (t_cache.gen != impl_->gen) {
    t_cache.buf = impl_->register_thread();
    t_cache.gen = impl_->gen;
  }
  ThreadBuf* buf = t_cache.buf;
  std::lock_guard<std::mutex> lock(buf->mu);
  if (buf->events.size() >= impl_->cfg.max_buffered_events) {
    impl_->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buf->events.push_back(e);
}

std::unique_ptr<TraceSink> TraceSink::from_env() {
  const char* path = std::getenv("ITPSEQ_TRACE");
  const char* progress = std::getenv("ITPSEQ_PROGRESS");
  bool want_progress = progress != nullptr && progress[0] != '\0' &&
                       std::strcmp(progress, "0") != 0;
  if ((path == nullptr || path[0] == '\0') && !want_progress) return nullptr;
  TraceConfig cfg;
  if (path != nullptr) cfg.path = path;
  const char* fmt = std::getenv("ITPSEQ_TRACE_FORMAT");
  if (fmt != nullptr && std::strcmp(fmt, "chrome") == 0)
    cfg.format = TraceConfig::Format::kChrome;
  cfg.progress = want_progress;
  return std::make_unique<TraceSink>(std::move(cfg));
}

namespace detail {

void emit_slow(const char* kind, const Arg* args, std::size_t nargs) {
  TraceSink* sink = g_sink.load(std::memory_order_acquire);
  if (sink == nullptr) return;
  Event e;
  e.ts_us = now_us();
  e.tid = thread_id();
  e.engine = engine_tag();
  e.kind = kind;
  for (std::size_t i = 0; i < nargs && i < kMaxArgs; ++i)
    e.args[e.nargs++] = args[i];
  sink->add(e);
}

void span_end(const char* name, std::uint64_t t0, const Arg* args,
              std::size_t nargs) {
  TraceSink* sink = g_sink.load(std::memory_order_acquire);
  if (sink == nullptr) return;  // sink finished mid-span: drop, never block
  Event e;
  e.ts_us = t0;
  e.dur_us = now_us() - t0;
  e.tid = thread_id();
  e.engine = engine_tag();
  e.kind = "span";
  e.name = name;
  e.span = true;
  for (std::size_t i = 0; i < nargs && i < kMaxArgs; ++i)
    e.args[e.nargs++] = args[i];
  sink->add(e);
}

}  // namespace detail

}  // namespace itpseq::obs
