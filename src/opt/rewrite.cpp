#include "opt/rewrite.hpp"

#include <stdexcept>

namespace itpseq::opt {

namespace {

/// One-level structural view of a literal.
struct View {
  bool is_and = false;   // var is an AND node
  bool positive = false; // edge polarity (true: un-complemented AND)
  aig::Lit f0 = aig::kNullLit;
  aig::Lit f1 = aig::kNullLit;
};

View view_of(const aig::Aig& g, aig::Lit l) {
  View v;
  aig::Var var = aig::lit_var(l);
  if (g.is_and(var)) {
    v.is_and = true;
    v.positive = !aig::lit_sign(l);
    v.f0 = g.node(var).fanin0;
    v.f1 = g.node(var).fanin1;
  }
  return v;
}

bool is_member(aig::Lit x, const View& v) { return x == v.f0 || x == v.f1; }
/// The other fanin when x is one of them.
aig::Lit other(aig::Lit x, const View& v) { return x == v.f0 ? v.f1 : v.f0; }

}  // namespace

aig::Lit RewriteBuilder::make_and(aig::Lit a, aig::Lit b) {
  // Level-0 simplifications.
  if (a == aig::kFalse || b == aig::kFalse) return aig::kFalse;
  if (a == aig::kTrue) return b;
  if (b == aig::kTrue) return a;
  if (a == b) return a;
  if (a == aig::lit_not(b)) return aig::kFalse;

  View va = view_of(g_, a), vb = view_of(g_, b);

  // Literal vs positive AND: absorption / contradiction.  The "literal"
  // side may itself be any node.
  auto lit_vs_pos = [&](aig::Lit x, aig::Lit and_side,
                        const View& v) -> aig::Lit {
    if (is_member(x, v)) return and_side;                    // x & (x&y) = x&y
    if (is_member(aig::lit_not(x), v)) return aig::kFalse;   // x & (x'&y) = 0
    return aig::kNullLit;
  };
  if (vb.is_and && vb.positive) {
    aig::Lit r = lit_vs_pos(a, b, vb);
    if (r != aig::kNullLit) return r;
  }
  if (va.is_and && va.positive) {
    aig::Lit r = lit_vs_pos(b, a, va);
    if (r != aig::kNullLit) return r;
  }

  // Literal vs negative AND: substitution / subsumption.
  auto lit_vs_neg = [&](aig::Lit x, const View& v) -> aig::Lit {
    if (is_member(aig::lit_not(x), v)) return x;  // x & !(x'&y) = x
    if (is_member(x, v))                          // x & !(x&y) = x & !y
      return make_and(x, aig::lit_not(other(x, v)));
    return aig::kNullLit;
  };
  if (vb.is_and && !vb.positive) {
    aig::Lit r = lit_vs_neg(a, vb);
    if (r != aig::kNullLit) return r;
  }
  if (va.is_and && !va.positive) {
    aig::Lit r = lit_vs_neg(b, va);
    if (r != aig::kNullLit) return r;
  }

  if (va.is_and && vb.is_and) {
    if (va.positive && vb.positive) {
      // Contradiction across the pair.
      if (is_member(aig::lit_not(va.f0), vb) ||
          is_member(aig::lit_not(va.f1), vb))
        return aig::kFalse;
      // Shared fanin: drop the duplicate.
      if (is_member(va.f0, vb)) return make_and(a, other(va.f0, vb));
      if (is_member(va.f1, vb)) return make_and(a, other(va.f1, vb));
    } else if (va.positive != vb.positive) {
      const View& pos = va.positive ? va : vb;
      const View& neg = va.positive ? vb : va;
      aig::Lit pos_lit = va.positive ? a : b;
      // Subsumption: the positive side implies a complemented fanin of the
      // negative side.
      if (is_member(aig::lit_not(pos.f0), neg) ||
          is_member(aig::lit_not(pos.f1), neg))
        return pos_lit;
      // Containment: the positive side implies the negated conjunction.
      bool c0 = is_member(neg.f0, pos), c1 = is_member(neg.f1, pos);
      if (c0 && c1) return aig::kFalse;
      // Substitution: one shared fanin is forced true by the positive side.
      if (c0) return make_and(pos_lit, aig::lit_not(neg.f1));
      if (c1) return make_and(pos_lit, aig::lit_not(neg.f0));
    } else {
      // Both negative: resolution.
      if ((va.f0 == vb.f0 && va.f1 == aig::lit_not(vb.f1)) ||
          (va.f0 == vb.f1 && va.f1 == aig::lit_not(vb.f0)))
        return aig::lit_not(va.f0);
      if ((va.f1 == vb.f0 && va.f0 == aig::lit_not(vb.f1)) ||
          (va.f1 == vb.f1 && va.f0 == aig::lit_not(vb.f0)))
        return aig::lit_not(va.f1);
    }
  }
  return g_.make_and(a, b);
}

aig::CompactResult rewrite(const aig::Aig& g,
                           const std::vector<aig::Lit>& roots) {
  aig::CompactResult out;
  RewriteBuilder builder(out.graph);
  std::vector<aig::Lit> map(g.num_vars(), aig::kNullLit);
  map[0] = aig::kFalse;
  for (std::size_t i = 0; i < g.num_inputs(); ++i)
    map[aig::lit_var(g.input(i))] =
        out.graph.add_input(g.name(aig::lit_var(g.input(i))));
  for (std::size_t i = 0; i < g.num_latches(); ++i)
    map[aig::lit_var(g.latch(i))] = out.graph.add_latch(
        g.latch_init(i), g.name(aig::lit_var(g.latch(i))));

  for (aig::Var v : g.cone(roots)) {
    if (map[v] != aig::kNullLit) continue;
    const aig::Node& n = g.node(v);
    if (n.type != aig::NodeType::kAnd)
      throw std::logic_error("rewrite: unregistered leaf in cone");
    auto fanin = [&](aig::Lit f) {
      return aig::lit_xor(map[aig::lit_var(f)], aig::lit_sign(f));
    };
    map[v] = builder.make_and(fanin(n.fanin0), fanin(n.fanin1));
  }
  out.roots.reserve(roots.size());
  for (aig::Lit r : roots)
    out.roots.push_back(aig::lit_xor(map[aig::lit_var(r)], aig::lit_sign(r)));
  return out;
}

}  // namespace itpseq::opt
