// rewrite.hpp — local two-level AIG rewriting.
//
// Implements the classic two-level AND-node optimization rules
// (Brummayer/Biere style): when building n = AND(a, b), the fanin
// structure of a and b (one level down, with edge polarities) is examined
// for contradiction, subsumption, idempotence, absorption, substitution
// and resolution patterns, each of which replaces n by a strictly smaller
// expression:
//
//   positive/positive:  (x&y) & (x'&z)        -> FALSE    (contradiction)
//                       (x&y) & (x&z)         -> (x&y)&z  (sharing)
//   literal/positive:   x & (x&y)             -> x&y      (absorption)
//                       x & (x'&y)            -> FALSE    (contradiction)
//   literal/negative:   x & !(x&y)            -> x & !y   (substitution)
//                       x & !(x'&y)           -> x        (subsumption)
//   positive/negative:  (x&y) & !(x&z) ... substitution / subsumption via
//                       the literal rules applied to the shared fanin;
//   negative/negative:  !(x&y) & !(x&y')      -> !x       (resolution)
//
// Rules are applied recursively until a fixpoint, so cones rebuilt through
// RewriteBuilder never grow and frequently shrink — useful to compact
// interpolant circuits, whose proof-directed construction is redundant.
#pragma once

#include <vector>

#include "aig/aig.hpp"
#include "aig/compact.hpp"

namespace itpseq::opt {

/// AND constructor with two-level rewriting on top of structural hashing.
class RewriteBuilder {
 public:
  explicit RewriteBuilder(aig::Aig& g) : g_(g) {}

  /// Build AND(a, b), applying the two-level rules.
  aig::Lit make_and(aig::Lit a, aig::Lit b);
  aig::Lit make_or(aig::Lit a, aig::Lit b) {
    return aig::lit_not(make_and(aig::lit_not(a), aig::lit_not(b)));
  }

  aig::Aig& graph() { return g_; }

 private:
  aig::Aig& g_;
};

/// Rebuild the cone of `roots` through a RewriteBuilder.  Leaves are
/// recreated in order (same convention as aig::compact).  The result never
/// has more AND nodes in the root cones than the original.
aig::CompactResult rewrite(const aig::Aig& g, const std::vector<aig::Lit>& roots);

}  // namespace itpseq::opt
