#include "opt/fraig.hpp"

#include <unordered_map>

#include "cnf/tseitin.hpp"
#include "opt/simulate.hpp"
#include "sat/solver.hpp"

namespace itpseq::opt {

std::optional<bool> equivalent(const aig::Aig& g, aig::Lit a, aig::Lit b,
                               std::int64_t max_conflicts) {
  if (a == b) return true;
  if (a == aig::lit_not(b)) return false;
  sat::Solver solver;
  std::vector<sat::Lit> leaf_lit(g.num_vars(), sat::kNoLit);
  cnf::TseitinEncoder enc(g, solver, [&](aig::Var v) {
    if (leaf_lit[v] == sat::kNoLit) leaf_lit[v] = sat::mk_lit(solver.new_var());
    return leaf_lit[v];
  });
  sat::Lit x = enc.encode(a, 0);
  sat::Lit y = enc.encode(b, 0);
  // Miter: satisfiable iff a != b for some leaf assignment.
  solver.add_clause({x, y});
  solver.add_clause({sat::neg(x), sat::neg(y)});
  sat::Budget budget;
  budget.conflicts = max_conflicts;
  switch (solver.solve(budget)) {
    case sat::Status::kUnsat: return true;
    case sat::Status::kSat: return false;
    case sat::Status::kUnknown: return std::nullopt;
  }
  return std::nullopt;
}

FraigResult fraig(const aig::Aig& g, const std::vector<aig::Lit>& roots,
                  const FraigOptions& opts) {
  FraigResult out;
  std::vector<aig::Lit> map(g.num_vars(), aig::kNullLit);
  map[0] = aig::kFalse;
  for (std::size_t i = 0; i < g.num_inputs(); ++i)
    map[aig::lit_var(g.input(i))] =
        out.graph.add_input(g.name(aig::lit_var(g.input(i))));
  for (std::size_t i = 0; i < g.num_latches(); ++i)
    map[aig::lit_var(g.latch(i))] = out.graph.add_latch(
        g.latch_init(i), g.name(aig::lit_var(g.latch(i))));

  BitParallelSim sim(g, roots, opts.sim_words, opts.seed);

  // One incremental solver holds the Tseitin encoding of the *output*
  // graph; equivalence queries are pairs of unit-miter clauses solved under
  // a fresh relay variable each (classic sweeping trick: the relay keeps
  // disproved miters from constraining later queries).
  sat::Solver solver;
  std::vector<sat::Lit> leaf_lit;
  cnf::TseitinEncoder enc(out.graph, solver, [&](aig::Var v) {
    if (v >= leaf_lit.size()) leaf_lit.resize(v + 1, sat::kNoLit);
    if (leaf_lit[v] == sat::kNoLit) leaf_lit[v] = sat::mk_lit(solver.new_var());
    return leaf_lit[v];
  });
  // Old leaf var -> new leaf var, to read counterexample patterns back.
  std::vector<aig::Var> new_leaf(g.num_vars(), 0);
  for (std::size_t i = 0; i < g.num_inputs(); ++i)
    new_leaf[aig::lit_var(g.input(i))] = aig::lit_var(out.graph.input(i));
  for (std::size_t i = 0; i < g.num_latches(); ++i)
    new_leaf[aig::lit_var(g.latch(i))] = aig::lit_var(out.graph.latch(i));

  // Proves map-level equivalence of two literals of the output graph.
  auto prove_equal = [&](aig::Lit x, aig::Lit y) -> std::optional<bool> {
    ++out.stats.sat_checks;
    sat::Lit sx = enc.encode(x, 0);
    sat::Lit sy = enc.encode(y, 0);
    sat::Lit relay = sat::mk_lit(solver.new_var());
    // relay -> (sx != sy): SAT under {relay} iff the nodes differ.
    solver.add_clause({sat::neg(relay), sx, sy});
    solver.add_clause({sat::neg(relay), sat::neg(sx), sat::neg(sy)});
    sat::Budget budget;
    budget.conflicts = opts.max_conflicts;
    switch (solver.solve_assuming({relay}, budget)) {
      case sat::Status::kUnsat:
        solver.add_clause({sat::neg(relay)});  // retire the miter
        return true;
      case sat::Status::kSat:
        return false;
      case sat::Status::kUnknown:
        ++out.stats.timeouts;
        solver.add_clause({sat::neg(relay)});
        return std::nullopt;
    }
    return std::nullopt;
  };

  // Candidate classes, keyed by complement-invariant signature hash of the
  // *old* node.  Entries may go stale after refinement (hashes change);
  // stale entries only cost missed merges, never wrong ones, because
  // same_signature and the SAT check always re-validate.
  std::unordered_map<std::uint64_t, std::vector<aig::Var>> classes;

  for (aig::Var v : g.cone(roots)) {
    if (map[v] != aig::kNullLit) continue;
    const aig::Node& n = g.node(v);
    auto fanin = [&](aig::Lit f) {
      return aig::lit_xor(map[aig::lit_var(f)], aig::lit_sign(f));
    };
    aig::Lit nl = out.graph.make_and(fanin(n.fanin0), fanin(n.fanin1));
    // Constant candidate: an all-zero/all-one signature suggests the node
    // is FALSE/TRUE; verify and fold.
    if (nl != aig::kFalse && nl != aig::kTrue) {
      bool all0 = true, all1 = true;
      for (unsigned w = 0; w < sim.words() && (all0 || all1); ++w) {
        std::uint64_t s = sim.word(v, w);
        all0 &= s == 0;
        all1 &= s == ~0ull;
      }
      if (all0 || all1) {
        std::optional<bool> eq =
            prove_equal(nl, all0 ? aig::kFalse : aig::kTrue);
        if (eq.has_value() && *eq) {
          map[v] = all0 ? aig::kFalse : aig::kTrue;
          ++out.stats.merges;
          continue;
        }
        if (eq.has_value() && !*eq) {
          ++out.stats.refinements;
          sim.add_pattern([&](aig::Var leaf) {
            sat::Lit sl = enc.lookup(aig::var_lit(new_leaf[leaf]));
            if (sl == sat::kNoLit) return false;
            return sat::lbool_xor(solver.model()[sat::var(sl)],
                                  sat::sign(sl)) == sat::LBool::kTrue;
          });
        }
      }
    }
    std::uint64_t h = sim.class_hash(v);
    auto& bucket = classes[h];
    for (aig::Var u : bucket) {
      bool same_phase = sim.same_signature(aig::var_lit(v), aig::var_lit(u));
      bool anti_phase =
          !same_phase &&
          sim.same_signature(aig::var_lit(v), aig::var_lit(u, true));
      if (!same_phase && !anti_phase) continue;
      aig::Lit target = aig::lit_xor(map[u], anti_phase);
      if (nl == target) break;  // already structurally merged
      std::optional<bool> eq = prove_equal(nl, target);
      if (eq.has_value() && *eq) {
        nl = target;
        ++out.stats.merges;
        break;
      }
      if (eq.has_value() && !*eq) {
        // Distinguishing pattern: refine every signature.
        ++out.stats.refinements;
        sim.add_pattern([&](aig::Var leaf) {
          sat::Lit sl = enc.lookup(aig::var_lit(new_leaf[leaf]));
          if (sl == sat::kNoLit) return false;  // unconstrained leaf
          return sat::lbool_xor(solver.model()[sat::var(sl)], sat::sign(sl)) ==
                 sat::LBool::kTrue;
        });
      }
    }
    bucket.push_back(v);
    map[v] = nl;
  }

  out.roots.reserve(roots.size());
  for (aig::Lit r : roots)
    out.roots.push_back(aig::lit_xor(map[aig::lit_var(r)], aig::lit_sign(r)));
  return out;
}

}  // namespace itpseq::opt
