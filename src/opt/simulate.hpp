// simulate.hpp — bit-parallel (64-way) random simulation of AIG cones.
//
// The simulator assigns every *leaf* (input or latch) a vector of 64-bit
// pattern words and propagates them through the AND structure, yielding a
// multi-word *signature* per variable.  Equal (or complementary) signatures
// are a necessary condition for functional equivalence, which makes the
// simulator the candidate-producing half of SAT sweeping (see fraig.hpp).
//
// Counterexample patterns found by SAT checks are accumulated bit-by-bit in
// a dynamic word, so one cheap single-word resimulation refines the
// signatures after each disproved candidate (the classic ABC scheme).
#pragma once

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"

namespace itpseq::opt {

class BitParallelSim {
 public:
  /// Simulate the cone of `roots` in `g` with `words` random 64-bit words
  /// per leaf, drawn from `seed`.  Only variables in the cone carry
  /// signatures.
  BitParallelSim(const aig::Aig& g, const std::vector<aig::Lit>& roots,
                 unsigned words, std::uint64_t seed);

  /// Number of static signature words (excludes the dynamic word).
  unsigned words() const { return words_; }

  /// True iff v is inside the simulated cone.
  bool in_cone(aig::Var v) const {
    return v < sig_.size() && !sig_[v].empty();
  }

  /// Signature word w of variable v (phase of the *variable*, not of any
  /// literal).  w < words().
  std::uint64_t word(aig::Var v, unsigned w) const { return sig_[v][w]; }

  /// Signature of a literal (complemented for negative literals).
  std::uint64_t lit_word(aig::Lit l, unsigned w) const {
    std::uint64_t s = word(aig::lit_var(l), w);
    return aig::lit_sign(l) ? ~s : s;
  }

  /// 64-bit hash of the *normalized* signature of v: complement-invariant,
  /// so v and NOT v land in the same candidate class.
  std::uint64_t class_hash(aig::Var v) const;

  /// True iff literals a and b have identical signatures (all words,
  /// including the dynamic word).
  bool same_signature(aig::Lit a, aig::Lit b) const;

  /// Append one counterexample pattern: `leaf_value(v)` gives the value of
  /// each cone leaf.  Patterns accumulate in a dynamic word; when 64 have
  /// accumulated the word is frozen into the static signature and a new
  /// dynamic word starts.
  template <typename F>
  void add_pattern(F leaf_value) {
    if (dyn_bits_ == 64) flush_dynamic();
    std::uint64_t bit = 1ull << dyn_bits_;
    for (aig::Var v : order_) {
      const aig::Node& n = g_.node(v);
      bool val;
      if (n.type == aig::NodeType::kAnd) {
        val = ((dyn_[aig::lit_var(n.fanin0)] ^
                (aig::lit_sign(n.fanin0) ? ~0ull : 0ull)) &
               (dyn_[aig::lit_var(n.fanin1)] ^
                (aig::lit_sign(n.fanin1) ? ~0ull : 0ull)) & bit) != 0;
      } else if (n.type == aig::NodeType::kConst) {
        val = false;
      } else {
        val = leaf_value(v);
      }
      if (val)
        dyn_[v] |= bit;
      else
        dyn_[v] &= ~bit;
    }
    ++dyn_bits_;
  }

 private:
  void flush_dynamic();

  const aig::Aig& g_;
  std::vector<aig::Var> order_;                 // cone in topo order
  std::vector<std::vector<std::uint64_t>> sig_; // per var, `words_` words
  std::vector<std::uint64_t> dyn_;              // dynamic word per var
  unsigned words_;
  unsigned dyn_bits_ = 0;
};

}  // namespace itpseq::opt
