// refactor.hpp — collapse-and-refactor of small AIG cones.
//
// Complements the local rules of rewrite.hpp with a *global* view of small
// functions: any sub-cone whose structural support has at most
// `kMaxSupport` leaves is collapsed to a truth table and rebuilt from an
// irredundant sum-of-products computed by the Minato-Morreale ISOP
// algorithm (both polarities are tried; the best of the original and the
// two rebuilds is kept).  This removes redundancy that no bounded-locality
// rule can see — e.g. consensus terms, re-derived shared functions —
// which makes it effective on proof-generated interpolant circuits.
#pragma once

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"
#include "aig/compact.hpp"

namespace itpseq::opt {

/// Maximum support size collapsed into a truth table (64-bit tables).
inline constexpr unsigned kMaxSupport = 6;

/// One product term over up to kMaxSupport variables.
struct Cube {
  std::uint8_t pos = 0;  ///< bit i set: variable i appears positively
  std::uint8_t neg = 0;  ///< bit i set: variable i appears negatively
};

/// Minato-Morreale irredundant SOP: returns cubes whose union g satisfies
/// lower <= g <= upper (as sets of minterms over `nvars` variables).
/// Tables use the standard variable patterns (variable i toggles with
/// period 2^i); only the low 2^nvars bits are meaningful.
std::vector<Cube> isop(std::uint64_t lower, std::uint64_t upper,
                       unsigned nvars);

/// Evaluate a cube list as a truth table (for tests / verification).
std::uint64_t sop_table(const std::vector<Cube>& cubes, unsigned nvars);

/// Rebuild the cones of `roots` with small-support sub-cones refactored.
/// Leaves are recreated in order (the aig::compact convention); the result
/// never has more AND nodes in the root cones than the original.
aig::CompactResult refactor(const aig::Aig& g,
                            const std::vector<aig::Lit>& roots);

}  // namespace itpseq::opt
