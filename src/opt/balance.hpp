// balance.hpp — AND-tree balancing (depth minimization) of AIG cones.
//
// Deep AND chains arise naturally when interpolants are built literal by
// literal from resolution chains.  Balancing collects maximal multi-input
// AND *supergates* (through positive, single-fanout edges) and rebuilds
// each as a depth-minimal tree by repeatedly combining the two shallowest
// operands (Huffman-style).  Logic is preserved exactly; structural
// hashing in the output graph recovers sharing.
#pragma once

#include <vector>

#include "aig/aig.hpp"
#include "aig/compact.hpp"

namespace itpseq::opt {

/// AND-depth of the cone of `root` (leaves and constants have depth 0).
std::size_t cone_depth(const aig::Aig& g, aig::Lit root);

/// Rebuild the cone of `roots` with balanced AND trees.  Leaves are
/// recreated in order (same convention as aig::compact); latch next-state
/// functions are not copied.
aig::CompactResult balance(const aig::Aig& g, const std::vector<aig::Lit>& roots);

}  // namespace itpseq::opt
