#include "opt/balance.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace itpseq::opt {

std::size_t cone_depth(const aig::Aig& g, aig::Lit root) {
  std::vector<aig::Var> cone = g.cone({root});
  std::vector<std::size_t> depth(g.num_vars(), 0);
  for (aig::Var v : cone) {
    const aig::Node& n = g.node(v);
    if (n.type != aig::NodeType::kAnd) continue;
    depth[v] = 1 + std::max(depth[aig::lit_var(n.fanin0)],
                            depth[aig::lit_var(n.fanin1)]);
  }
  return depth[aig::lit_var(root)];
}

aig::CompactResult balance(const aig::Aig& g,
                           const std::vector<aig::Lit>& roots) {
  aig::CompactResult out;
  std::vector<aig::Lit> map(g.num_vars(), aig::kNullLit);
  std::vector<std::size_t> new_depth(g.num_vars(), 0);
  map[0] = aig::kFalse;
  for (std::size_t i = 0; i < g.num_inputs(); ++i) {
    aig::Var v = aig::lit_var(g.input(i));
    map[v] = out.graph.add_input(g.name(v));
  }
  for (std::size_t i = 0; i < g.num_latches(); ++i) {
    aig::Var v = aig::lit_var(g.latch(i));
    map[v] = out.graph.add_latch(g.latch_init(i), g.name(v));
  }

  std::vector<aig::Var> cone = g.cone(roots);

  // A cone AND node is a supergate *root* when it is referenced more than
  // once, referenced through a complemented edge, or referenced as an
  // output root.  Only roots are materialized; inner nodes are inlined
  // into their root's operand list.
  std::vector<unsigned> refs(g.num_vars(), 0);
  std::vector<char> complemented(g.num_vars(), 0);
  for (aig::Var v : cone) {
    const aig::Node& n = g.node(v);
    if (n.type != aig::NodeType::kAnd) continue;
    for (aig::Lit f : {n.fanin0, n.fanin1}) {
      ++refs[aig::lit_var(f)];
      if (aig::lit_sign(f)) complemented[aig::lit_var(f)] = 1;
    }
  }
  for (aig::Lit r : roots) {
    ++refs[aig::lit_var(r)];
    complemented[aig::lit_var(r)] = 1;  // force materialization
  }
  auto is_root = [&](aig::Var v) {
    return g.is_and(v) && (refs[v] > 1 || complemented[v]);
  };

  // Operand collection: descend through positive edges into non-root ANDs.
  auto collect = [&](aig::Var v, auto&& self,
                     std::vector<aig::Lit>& ops) -> void {
    const aig::Node& n = g.node(v);
    for (aig::Lit f : {n.fanin0, n.fanin1}) {
      aig::Var fv = aig::lit_var(f);
      if (!aig::lit_sign(f) && g.is_and(fv) && !is_root(fv))
        self(fv, self, ops);
      else
        ops.push_back(f);
    }
  };

  for (aig::Var v : cone) {
    if (map[v] != aig::kNullLit) continue;
    const aig::Node& n = g.node(v);
    if (n.type != aig::NodeType::kAnd)
      throw std::logic_error("balance: unregistered leaf in cone");
    if (!is_root(v)) continue;  // inlined by its (unique) parent root
    std::vector<aig::Lit> ops;
    collect(v, collect, ops);
    struct Op {
      aig::Lit lit;
      std::size_t depth;
      bool operator>(const Op& o) const { return depth > o.depth; }
    };
    std::priority_queue<Op, std::vector<Op>, std::greater<Op>> pq;
    for (aig::Lit f : ops) {
      aig::Lit base = map[aig::lit_var(f)];
      if (base == aig::kNullLit)
        throw std::logic_error("balance: operand not materialized");
      pq.push(
          {aig::lit_xor(base, aig::lit_sign(f)), new_depth[aig::lit_var(f)]});
    }
    // Huffman-style combine: always merge the two shallowest operands.
    while (pq.size() > 1) {
      Op x = pq.top();
      pq.pop();
      Op y = pq.top();
      pq.pop();
      aig::Lit r = out.graph.make_and(x.lit, y.lit);
      pq.push({r, std::max(x.depth, y.depth) + 1});
    }
    map[v] = pq.top().lit;
    new_depth[v] = pq.top().depth;
  }

  out.roots.reserve(roots.size());
  for (aig::Lit r : roots)
    out.roots.push_back(
        aig::lit_xor(map[aig::lit_var(r)], aig::lit_sign(r)));
  return out;
}

}  // namespace itpseq::opt
