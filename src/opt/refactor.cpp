#include "opt/refactor.hpp"

#include <algorithm>
#include <stdexcept>

namespace itpseq::opt {

namespace {

/// Truth-table pattern of variable i (period 2^(i+1)), replicated to 64
/// bits so tables over fewer than 6 variables are canonically replicated.
constexpr std::uint64_t kPat[6] = {
    0xaaaaaaaaaaaaaaaaull, 0xccccccccccccccccull, 0xf0f0f0f0f0f0f0f0ull,
    0xff00ff00ff00ff00ull, 0xffff0000ffff0000ull, 0xffffffff00000000ull,
};

std::uint64_t cof0(std::uint64_t t, unsigned i) {
  std::uint64_t lo = t & ~kPat[i];
  return lo | (lo << (1u << i));
}
std::uint64_t cof1(std::uint64_t t, unsigned i) {
  std::uint64_t hi = t & kPat[i];
  return hi | (hi >> (1u << i));
}

/// Minato-Morreale recursion over variables 0..v-1; returns the cover of
/// the cubes appended to `out`.
std::uint64_t isop_rec(std::uint64_t lower, std::uint64_t upper, unsigned v,
                       std::vector<Cube>& out) {
  if (lower == 0) return 0;
  if (upper == ~0ull) {
    out.push_back({});  // tautology cube
    return ~0ull;
  }
  if (v == 0)
    throw std::logic_error("isop: inconsistent bounds at leaf");
  unsigned i = v - 1;
  std::uint64_t l0 = cof0(lower, i), l1 = cof1(lower, i);
  std::uint64_t u0 = cof0(upper, i), u1 = cof1(upper, i);
  // Minterms that can only be covered with a ~x_i (resp. x_i) literal.
  std::size_t b0 = out.size();
  std::uint64_t c0 = isop_rec(l0 & ~u1, u0, i, out);
  for (std::size_t c = b0; c < out.size(); ++c)
    out[c].neg |= static_cast<std::uint8_t>(1u << i);
  std::size_t b1 = out.size();
  std::uint64_t c1 = isop_rec(l1 & ~u0, u1, i, out);
  for (std::size_t c = b1; c < out.size(); ++c)
    out[c].pos |= static_cast<std::uint8_t>(1u << i);
  // Remainder, coverable without mentioning x_i.
  std::uint64_t rest = (l0 & ~c0) | (l1 & ~c1);
  std::uint64_t cs = isop_rec(rest, u0 & u1, i, out);
  return (c0 & ~kPat[i]) | (c1 & kPat[i]) | cs;
}

}  // namespace

std::vector<Cube> isop(std::uint64_t lower, std::uint64_t upper,
                       unsigned nvars) {
  // Canonicalize: mask to the meaningful low 2^nvars bits, then replicate
  // to 64 bits so the constant checks in the recursion are uniform.
  if (nvars < 6) {
    std::uint64_t mask = (1ull << (1u << nvars)) - 1;
    lower &= mask;
    upper &= mask;
  }
  for (unsigned i = nvars; i < 6; ++i) {
    lower |= lower << (1u << i);
    upper |= upper << (1u << i);
  }
  std::vector<Cube> out;
  isop_rec(lower, upper, nvars, out);
  return out;
}

std::uint64_t sop_table(const std::vector<Cube>& cubes, unsigned nvars) {
  std::uint64_t r = 0;
  for (const Cube& c : cubes) {
    std::uint64_t t = ~0ull;
    for (unsigned i = 0; i < nvars; ++i) {
      if (c.pos & (1u << i)) t &= kPat[i];
      if (c.neg & (1u << i)) t &= ~kPat[i];
    }
    r |= t;
  }
  return r;
}

namespace {

/// Build a cube list as an AIG cone over `leaves` (leaf i = variable i).
aig::Lit build_sop(aig::Aig& g, const std::vector<Cube>& cubes,
                   const std::vector<aig::Lit>& leaves) {
  std::vector<aig::Lit> terms;
  terms.reserve(cubes.size());
  for (const Cube& c : cubes) {
    std::vector<aig::Lit> factors;
    for (std::size_t i = 0; i < leaves.size(); ++i) {
      if (c.pos & (1u << i)) factors.push_back(leaves[i]);
      if (c.neg & (1u << i)) factors.push_back(aig::lit_not(leaves[i]));
    }
    terms.push_back(g.make_and_many(factors));
  }
  return g.make_or_many(terms);
}

}  // namespace

aig::CompactResult refactor(const aig::Aig& g,
                            const std::vector<aig::Lit>& roots) {
  aig::CompactResult out;
  std::vector<aig::Lit> map(g.num_vars(), aig::kNullLit);
  map[0] = aig::kFalse;
  for (std::size_t i = 0; i < g.num_inputs(); ++i)
    map[aig::lit_var(g.input(i))] =
        out.graph.add_input(g.name(aig::lit_var(g.input(i))));
  for (std::size_t i = 0; i < g.num_latches(); ++i)
    map[aig::lit_var(g.latch(i))] = out.graph.add_latch(
        g.latch_init(i), g.name(aig::lit_var(g.latch(i))));

  std::vector<aig::Var> cone = g.cone(roots);

  // Structural supports with early bail-out beyond kMaxSupport.
  std::vector<std::vector<aig::Var>> supp(g.num_vars());
  std::vector<char> small(g.num_vars(), 0);
  for (aig::Var v : cone) {
    const aig::Node& n = g.node(v);
    if (n.type == aig::NodeType::kInput || n.type == aig::NodeType::kLatch) {
      supp[v] = {v};
      small[v] = 1;
    } else if (n.type == aig::NodeType::kAnd) {
      aig::Var a = aig::lit_var(n.fanin0), b = aig::lit_var(n.fanin1);
      if (!small[a] || !small[b]) continue;
      std::vector<aig::Var> u;
      std::set_union(supp[a].begin(), supp[a].end(), supp[b].begin(),
                     supp[b].end(), std::back_inserter(u));
      if (u.size() <= kMaxSupport) {
        supp[v] = std::move(u);
        small[v] = 1;
      }
    }
  }
  // Maximal refactoring candidates: small nodes whose every use crosses
  // into a non-small context (or which are requested roots).
  std::vector<char> maximal(g.num_vars(), 0);
  for (aig::Var v : cone) {
    const aig::Node& n = g.node(v);
    if (n.type != aig::NodeType::kAnd || small[v]) continue;
    for (aig::Lit f : {n.fanin0, n.fanin1}) {
      aig::Var fv = aig::lit_var(f);
      if (small[fv] && g.is_and(fv)) maximal[fv] = 1;
    }
  }
  for (aig::Lit r : roots) {
    aig::Var v = aig::lit_var(r);
    if (small[v] && g.is_and(v)) maximal[v] = 1;
  }

  for (aig::Var v : cone) {
    if (map[v] != aig::kNullLit) continue;
    const aig::Node& n = g.node(v);
    if (n.type != aig::NodeType::kAnd)
      throw std::logic_error("refactor: unregistered leaf in cone");
    auto fanin = [&](aig::Lit f) {
      return aig::lit_xor(map[aig::lit_var(f)], aig::lit_sign(f));
    };
    aig::Lit structural = out.graph.make_and(fanin(n.fanin0), fanin(n.fanin1));
    map[v] = structural;
    if (!maximal[v]) continue;

    // Collapse to a truth table over the (<= 6) support leaves.
    const std::vector<aig::Var>& leaves = supp[v];
    unsigned nv = static_cast<unsigned>(leaves.size());
    std::vector<std::uint64_t> vals(g.num_vars(), 0);
    for (unsigned i = 0; i < nv; ++i) vals[leaves[i]] = kPat[i];
    std::uint64_t tt = g.evaluate64(aig::var_lit(v), vals);

    // Both polarities; prefer the smaller SOP.
    std::vector<Cube> pos = isop(tt, tt, nv);
    std::vector<Cube> negc = isop(~tt, ~tt, nv);
    bool use_neg = negc.size() < pos.size();
    const std::vector<Cube>& cubes = use_neg ? negc : pos;

    // Build into a scratch graph to compare sizes before committing.
    aig::Aig scratch;
    std::vector<aig::Lit> scratch_leaves;
    for (unsigned i = 0; i < nv; ++i)
      scratch_leaves.push_back(scratch.add_input());
    aig::Lit cand = build_sop(scratch, cubes, scratch_leaves);
    if (use_neg) cand = aig::lit_not(cand);
    if (scratch.cone_size(cand) < out.graph.cone_size(structural)) {
      std::vector<aig::Lit> leaf_map(scratch.num_vars(), aig::kNullLit);
      for (unsigned i = 0; i < nv; ++i)
        leaf_map[aig::lit_var(scratch_leaves[i])] = map[leaves[i]];
      map[v] = out.graph.import_cone(scratch, cand, leaf_map);
    }
  }

  out.roots.reserve(roots.size());
  for (aig::Lit r : roots)
    out.roots.push_back(aig::lit_xor(map[aig::lit_var(r)], aig::lit_sign(r)));

  // The per-node acceptance heuristic compares *cone* sizes, which
  // overcounts logic shared between roots, so a locally-good trade can
  // duplicate shared structure.  Compact away the scratch garbage, then
  // enforce the global no-growth guarantee.
  auto live_ands = [](const aig::Aig& graph, const std::vector<aig::Lit>& rs) {
    std::size_t n = 0;
    for (aig::Var v : graph.cone(rs))
      if (graph.is_and(v)) ++n;
    return n;
  };
  aig::CompactResult clean = aig::compact(out.graph, out.roots);
  if (live_ands(clean.graph, clean.roots) > live_ands(g, roots))
    return aig::compact(g, roots);  // structural copy: never grows
  return clean;
}

}  // namespace itpseq::opt
