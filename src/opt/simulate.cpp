#include "opt/simulate.hpp"

#include <random>

namespace itpseq::opt {

BitParallelSim::BitParallelSim(const aig::Aig& g,
                               const std::vector<aig::Lit>& roots,
                               unsigned words, std::uint64_t seed)
    : g_(g), words_(words ? words : 1) {
  order_ = g.cone(roots);
  sig_.resize(g.num_vars());
  dyn_.resize(g.num_vars(), 0);
  std::mt19937_64 rng(seed);
  for (aig::Var v : order_) {
    sig_[v].assign(words_, 0);
    const aig::Node& n = g.node(v);
    switch (n.type) {
      case aig::NodeType::kConst:
        break;  // all-zero signature
      case aig::NodeType::kInput:
      case aig::NodeType::kLatch:
        for (unsigned w = 0; w < words_; ++w) sig_[v][w] = rng();
        break;
      case aig::NodeType::kAnd: {
        const auto& s0 = sig_[aig::lit_var(n.fanin0)];
        const auto& s1 = sig_[aig::lit_var(n.fanin1)];
        std::uint64_t m0 = aig::lit_sign(n.fanin0) ? ~0ull : 0ull;
        std::uint64_t m1 = aig::lit_sign(n.fanin1) ? ~0ull : 0ull;
        for (unsigned w = 0; w < words_; ++w)
          sig_[v][w] = (s0[w] ^ m0) & (s1[w] ^ m1);
        break;
      }
    }
  }
}

std::uint64_t BitParallelSim::class_hash(aig::Var v) const {
  // Normalize by the first simulated bit so that v and NOT v hash equal.
  std::uint64_t flip = (sig_[v][0] & 1) ? ~0ull : 0ull;
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a over the words
  auto mix = [&h](std::uint64_t x) {
    h ^= x;
    h *= 0x100000001b3ull;
    h ^= h >> 29;
  };
  for (unsigned w = 0; w < words_; ++w) mix(sig_[v][w] ^ flip);
  if (dyn_bits_ > 0) {
    std::uint64_t mask = dyn_bits_ == 64 ? ~0ull : (1ull << dyn_bits_) - 1;
    mix((dyn_[v] ^ flip) & mask);
  }
  return h;
}

bool BitParallelSim::same_signature(aig::Lit a, aig::Lit b) const {
  aig::Var va = aig::lit_var(a), vb = aig::lit_var(b);
  std::uint64_t fa = aig::lit_sign(a) ? ~0ull : 0ull;
  std::uint64_t fb = aig::lit_sign(b) ? ~0ull : 0ull;
  for (unsigned w = 0; w < words_; ++w)
    if ((sig_[va][w] ^ fa) != (sig_[vb][w] ^ fb)) return false;
  if (dyn_bits_ > 0) {
    std::uint64_t mask = dyn_bits_ == 64 ? ~0ull : (1ull << dyn_bits_) - 1;
    if (((dyn_[va] ^ fa) & mask) != ((dyn_[vb] ^ fb) & mask)) return false;
  }
  return true;
}

void BitParallelSim::flush_dynamic() {
  for (aig::Var v : order_) {
    sig_[v].push_back(dyn_[v]);
    dyn_[v] = 0;
  }
  ++words_;
  dyn_bits_ = 0;
}

}  // namespace itpseq::opt
