// fraig.hpp — SAT sweeping (functional reduction) of AIG cones.
//
// Combines random simulation and SAT: nodes with identical (or
// complementary) simulation signatures are *candidate* equivalences; a SAT
// check on the miter of the two cones either proves the equivalence (the
// nodes are merged) or yields a distinguishing input pattern that refines
// the signatures.  Leaves (inputs and latches) are treated as free
// variables, i.e. the reduction is purely combinational — exactly the
// right notion for compacting interpolant/state-set predicates, which are
// combinational functions of the model latches.
//
// This is the classic ABC `fraig` algorithm scaled to this library: the
// sweep rebuilds the cone bottom-up, so every merge removes the merged
// node's cone from the result.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "aig/aig.hpp"
#include "aig/compact.hpp"

namespace itpseq::opt {

struct FraigOptions {
  unsigned sim_words = 4;          ///< random 64-bit words per leaf
  std::uint64_t seed = 0x1234567;  ///< simulation seed
  /// Conflict budget per equivalence check; exhausted checks leave the
  /// nodes distinct (sound, possibly suboptimal).
  std::int64_t max_conflicts = 1000;
};

struct FraigStats {
  std::size_t sat_checks = 0;   ///< miter SAT calls
  std::size_t merges = 0;       ///< proven equivalences applied
  std::size_t refinements = 0;  ///< counterexample patterns fed back
  std::size_t timeouts = 0;     ///< checks abandoned on conflict budget
};

struct FraigResult {
  aig::Aig graph;
  std::vector<aig::Lit> roots;
  FraigStats stats;
};

/// Sweep the cone of `roots` in `g`.  Leaves are recreated in order (the
/// aig::compact convention), so results can be imported back with
/// Aig::import_cone.
FraigResult fraig(const aig::Aig& g, const std::vector<aig::Lit>& roots,
                  const FraigOptions& opts = {});

/// Exact combinational equivalence of two literals of the same AIG (miter
/// SAT check; inputs and latches free).  nullopt if the conflict budget is
/// exhausted first (max_conflicts < 0 = unlimited).
std::optional<bool> equivalent(const aig::Aig& g, aig::Lit a, aig::Lit b,
                               std::int64_t max_conflicts = -1);

}  // namespace itpseq::opt
