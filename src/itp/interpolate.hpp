// interpolate.hpp — Craig interpolant and interpolation-sequence extraction
// from resolution refutation proofs.
//
// The input proof partitions original clauses by *label*.  For a cut j the
// A-side is every original clause with label <= j and the B-side the rest.
// Three *labeled interpolation systems* (LIS, D'Silva et al., VMCAI 2010)
// are supported, applied by structural induction over the resolution DAG.
// With Ip/In the partial interpolants of the antecedent containing the
// positive/negative pivot literal:
//
//   McMillan (strongest):
//     * A-leaf clause c:  itp = OR of c's shared literals;
//     * B-leaf clause c:  itp = TRUE;
//     * pivot v A-local:  Ip OR In;  otherwise (shared/B-local): Ip AND In.
//   Pudlak (symmetric):
//     * A-leaf: FALSE;  B-leaf: TRUE;
//     * pivot A-local: Ip OR In;  B-local: Ip AND In;
//       shared: (v OR Ip) AND (NOT v OR In)  — a mux on the pivot.
//   Inverse McMillan (weakest; the dual NOT ITP_M(B, A)):
//     * A-leaf: FALSE;  B-leaf: AND of negated shared literals;
//     * pivot v B-local: Ip AND In;  otherwise (shared/A-local): Ip OR In.
//
// From one proof the three systems produce logically ordered results:
// ITP_McMillan => ITP_Pudlak => ITP_InverseMcMillan.  Every LIS satisfies
// the path-interpolation property (Gurfinkel/Rollini/Sharygina), so any of
// them can back the interpolation *sequences* of the paper (Definition 2).
//
// The resulting circuit is built inside a caller-supplied AIG; shared SAT
// variables are mapped to AIG literals via a leaf callback (typically: the
// SAT variable of model latch i at the cut frame maps to input i of a
// state-set AIG).
//
// extract_sequence() realizes Equation (2) of the paper: all elements
// I_1..I_n-1 of an interpolation sequence from a *single* proof, by varying
// the cut.  This is the "parallel" computation of Section IV-C.
#pragma once

#include <functional>
#include <vector>

#include "aig/aig.hpp"
#include "sat/proof.hpp"

namespace itpseq::itp {

/// Maps a shared SAT variable to an AIG literal for the current cut.
using LeafFn = std::function<aig::Lit(sat::Var)>;
/// Maps (cut, shared SAT variable) to an AIG literal.
using CutLeafFn = std::function<aig::Lit(std::uint32_t, sat::Var)>;

/// Interpolation system used for extraction (see file comment).  Strength
/// order: kMcMillan => kPudlak => kInverseMcMillan.
enum class System : std::uint8_t { kMcMillan, kPudlak, kInverseMcMillan };

const char* to_string(System s);

class InterpolantExtractor {
 public:
  /// `proof` must be complete (refutation ended).  The extractor keeps a
  /// reference; the proof must outlive it.
  explicit InterpolantExtractor(const sat::Proof& proof);

  /// Smallest / largest partition label of an original core clause in which
  /// the variable occurs; occurrence outside the core is ignored (implicit
  /// proof trimming).  Returns false if the variable does not occur at all.
  bool var_range(sat::Var v, std::uint32_t& min_label,
                 std::uint32_t& max_label) const;

  /// True iff v occurs on both sides of cut j.
  bool shared_at(sat::Var v, std::uint32_t cut) const;

  /// Interpolant for cut j built into `out`.  `leaf` must map every
  /// variable shared at cut j; throws std::logic_error otherwise.
  aig::Lit extract(aig::Aig& out, std::uint32_t cut, const LeafFn& leaf,
                   System sys = System::kMcMillan) const;

  /// Interpolants for all cuts in [first, last], one pass per cut over the
  /// proof core.  Element i of the result is the interpolant for cut
  /// first + i.
  std::vector<aig::Lit> extract_sequence(aig::Aig& out, std::uint32_t first,
                                         std::uint32_t last,
                                         const CutLeafFn& leaf,
                                         System sys = System::kMcMillan) const;

  /// Number of clauses in the trimmed refutation (proof core).
  std::size_t core_size() const { return core_.size(); }

 private:
  const sat::Proof& proof_;
  std::vector<sat::ClauseId> core_;           // topo order
  std::vector<std::uint32_t> min_label_;      // per var; kUnset if absent
  std::vector<std::uint32_t> max_label_;
  static constexpr std::uint32_t kUnset = 0xffffffffu;
};

}  // namespace itpseq::itp
