#include "itp/validate.hpp"

#include <algorithm>
#include <sstream>

#include "cnf/tseitin.hpp"
#include "sat/solver.hpp"

namespace itpseq::itp {

namespace {

/// Add the clauses with label in [lo, hi] over fresh solver vars `vars`.
void add_range(sat::Solver& s, const LabeledCnf& f,
               const std::vector<sat::Var>& vars, std::uint32_t lo,
               std::uint32_t hi) {
  for (const auto& [lits, label] : f.clauses) {
    if (label < lo || label > hi) continue;
    std::vector<sat::Lit> cl;
    cl.reserve(lits.size());
    for (sat::Lit l : lits)
      cl.push_back(sat::mk_lit(vars[sat::var(l)], sat::sign(l)));
    s.add_clause(cl);
  }
}

/// Assert pred (or its negation) over the universe vars.
bool assert_pred(sat::Solver& s, const aig::Aig& g, aig::Lit pred, bool positive,
                 const std::vector<sat::Var>& var_of_input,
                 const std::vector<sat::Var>& vars) {
  if (pred == aig::kTrue) return positive;       // NOT true is unsat
  if (pred == aig::kFalse) return !positive;     // assert false is unsat
  cnf::TseitinEncoder enc(g, s, [&](aig::Var v) {
    return sat::mk_lit(vars[var_of_input[g.input_index(v)]]);
  });
  sat::Lit e = enc.encode(pred, 0);
  s.add_clause({positive ? e : sat::neg(e)});
  return true;
}

/// Satisfiability of (clauses in [lo,hi]) AND each (pred, sign) pair.
sat::Status query(const LabeledCnf& f, std::uint32_t lo, std::uint32_t hi,
                  const aig::Aig& g,
                  const std::vector<std::pair<aig::Lit, bool>>& preds,
                  const std::vector<sat::Var>& var_of_input) {
  sat::Solver s;
  std::vector<sat::Var> vars;
  vars.reserve(f.num_vars);
  for (unsigned i = 0; i < f.num_vars; ++i) vars.push_back(s.new_var());
  add_range(s, f, vars, lo, hi);
  for (auto [p, positive] : preds)
    if (!assert_pred(s, g, p, positive, var_of_input, vars))
      return sat::Status::kUnsat;
  return s.solve();
}

/// Shared variables at a cut: occurring both in labels <= cut and > cut.
std::vector<bool> shared_vars(const LabeledCnf& f, std::uint32_t cut) {
  std::vector<bool> in_a(f.num_vars, false), in_b(f.num_vars, false);
  for (const auto& [lits, label] : f.clauses)
    for (sat::Lit l : lits)
      (label <= cut ? in_a : in_b)[sat::var(l)] = true;
  std::vector<bool> shared(f.num_vars, false);
  for (unsigned v = 0; v < f.num_vars; ++v) shared[v] = in_a[v] && in_b[v];
  return shared;
}

std::uint32_t max_label(const LabeledCnf& f) {
  std::uint32_t m = 0;
  for (const auto& [lits, label] : f.clauses) m = std::max(m, label);
  return m;
}

}  // namespace

ValidationResult validate_interpolant(const LabeledCnf& f, std::uint32_t cut,
                                      const aig::Aig& g, aig::Lit itp,
                                      const std::vector<sat::Var>& var_of_input) {
  ValidationResult res;
  std::uint32_t last = max_label(f);

  // Support condition.
  std::vector<bool> shared = shared_vars(f, cut);
  for (aig::Var v : g.support(itp)) {
    std::size_t idx = g.input_index(v);
    if (idx == aig::Aig::kNoIndex || idx >= var_of_input.size()) {
      res.error = "interpolant support contains a non-input node";
      return res;
    }
    sat::Var sv = var_of_input[idx];
    if (sv >= f.num_vars || !shared[sv]) {
      std::ostringstream os;
      os << "interpolant depends on variable " << sv
         << " which is not shared at cut " << cut;
      res.error = os.str();
      return res;
    }
  }
  // A => I.
  if (query(f, 0, cut, g, {{itp, false}}, var_of_input) != sat::Status::kUnsat) {
    std::ostringstream os;
    os << "A does not imply interpolant at cut " << cut;
    res.error = os.str();
    return res;
  }
  // I AND B unsat.
  if (query(f, cut + 1, last, g, {{itp, true}}, var_of_input) !=
      sat::Status::kUnsat) {
    std::ostringstream os;
    os << "interpolant consistent with B at cut " << cut;
    res.error = os.str();
    return res;
  }
  res.ok = true;
  return res;
}

ValidationResult validate_sequence(const LabeledCnf& f, const aig::Aig& g,
                                   const std::vector<aig::Lit>& terms,
                                   const std::vector<sat::Var>& var_of_input) {
  for (std::uint32_t j = 1; j <= terms.size(); ++j) {
    ValidationResult r =
        validate_interpolant(f, j, g, terms[j - 1], var_of_input);
    if (!r.ok) return r;
  }
  // Chain condition (Definition 2): I_j AND A_{j+1} => I_{j+1}.
  for (std::uint32_t j = 1; j + 1 <= terms.size(); ++j) {
    if (query(f, j + 1, j + 1, g, {{terms[j - 1], true}, {terms[j], false}},
              var_of_input) != sat::Status::kUnsat) {
      ValidationResult r;
      std::ostringstream os;
      os << "sequence chain condition violated between terms " << j << " and "
         << j + 1;
      r.error = os.str();
      return r;
    }
  }
  ValidationResult r;
  r.ok = true;
  return r;
}

}  // namespace itpseq::itp
