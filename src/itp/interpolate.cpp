#include "itp/interpolate.hpp"

#include <stdexcept>

#include "util/fault.hpp"

namespace itpseq::itp {

const char* to_string(System s) {
  switch (s) {
    case System::kMcMillan: return "mcmillan";
    case System::kPudlak: return "pudlak";
    case System::kInverseMcMillan: return "inverse-mcmillan";
  }
  return "?";
}

InterpolantExtractor::InterpolantExtractor(const sat::Proof& proof)
    : proof_(proof) {
  ITPSEQ_FAULT_POINT("itp.extract");
  if (!proof.complete())
    throw std::invalid_argument("InterpolantExtractor: proof incomplete");
  core_ = proof.core();
  // Classify variables by the labels of core original clauses they occur in.
  for (sat::ClauseId id : core_) {
    if (!proof_.is_original(id)) continue;
    std::uint32_t label = proof_.label(id);
    for (sat::Lit l : proof_.literals(id)) {
      sat::Var v = sat::var(l);
      if (v >= min_label_.size()) {
        min_label_.resize(v + 1, kUnset);
        max_label_.resize(v + 1, 0);
      }
      if (min_label_[v] == kUnset || label < min_label_[v]) min_label_[v] = label;
      if (max_label_[v] == 0 || label > max_label_[v]) max_label_[v] = label;
    }
  }
}

bool InterpolantExtractor::var_range(sat::Var v, std::uint32_t& min_label,
                                     std::uint32_t& max_label) const {
  if (v >= min_label_.size() || min_label_[v] == kUnset) return false;
  min_label = min_label_[v];
  max_label = max_label_[v];
  return true;
}

bool InterpolantExtractor::shared_at(sat::Var v, std::uint32_t cut) const {
  if (v >= min_label_.size() || min_label_[v] == kUnset) return false;
  return min_label_[v] <= cut && max_label_[v] > cut;
}

aig::Lit InterpolantExtractor::extract(aig::Aig& out, std::uint32_t cut,
                                       const LeafFn& leaf, System sys) const {
  auto mapped_leaf = [&](sat::Var v) {
    aig::Lit al = leaf(v);
    if (al == aig::kNullLit)
      throw std::logic_error("interpolation: unmapped shared variable");
    return al;
  };
  std::vector<aig::Lit> val(proof_.size(), aig::kNullLit);
  for (sat::ClauseId id : core_) {
    if (proof_.is_original(id)) {
      if (proof_.label(id) <= cut) {
        // A-leaf.
        if (sys == System::kMcMillan) {
          std::vector<aig::Lit> disj;  // OR of shared literals
          for (sat::Lit l : proof_.literals(id)) {
            sat::Var v = sat::var(l);
            if (!shared_at(v, cut)) continue;
            disj.push_back(aig::lit_xor(mapped_leaf(v), sat::sign(l)));
          }
          val[id] = out.make_or_many(disj);
        } else {
          val[id] = aig::kFalse;  // Pudlak, inverse McMillan
        }
      } else {
        // B-leaf.
        if (sys == System::kInverseMcMillan) {
          std::vector<aig::Lit> conj;  // AND of negated shared literals
          for (sat::Lit l : proof_.literals(id)) {
            sat::Var v = sat::var(l);
            if (!shared_at(v, cut)) continue;
            conj.push_back(aig::lit_xor(mapped_leaf(v), !sat::sign(l)));
          }
          val[id] = out.make_and_many(conj);
        } else {
          val[id] = aig::kTrue;  // McMillan, Pudlak
        }
      }
    } else {
      const sat::ResolutionChain& ch = proof_.chain(id);
      aig::Lit acc = val[ch.chain[0]];
      for (std::size_t s = 0; s + 1 < ch.chain.size(); ++s) {
        sat::Var pivot = ch.pivots[s];
        aig::Lit rhs = val[ch.chain[s + 1]];
        bool in_core = pivot < max_label_.size() && min_label_[pivot] != kUnset;
        bool in_b = in_core && max_label_[pivot] > cut;
        bool in_a = !in_core || min_label_[pivot] <= cut;
        switch (sys) {
          case System::kMcMillan:
            // A-local => OR; shared or B-local => AND.
            acc = in_b ? out.make_and(acc, rhs) : out.make_or(acc, rhs);
            break;
          case System::kPudlak:
            if (!in_b) {
              acc = out.make_or(acc, rhs);  // A-local
            } else if (!in_a) {
              acc = out.make_and(acc, rhs);  // B-local
            } else {
              // Shared: mux on the pivot, (v OR Ip) AND (NOT v OR In) with
              // Ip from the antecedent containing the positive pivot.
              bool rhs_positive = false;
              for (sat::Lit l : proof_.literals(ch.chain[s + 1]))
                if (sat::var(l) == pivot) {
                  rhs_positive = !sat::sign(l);
                  break;
                }
              aig::Lit ip = rhs_positive ? rhs : acc;
              aig::Lit in = rhs_positive ? acc : rhs;
              aig::Lit v_lit = mapped_leaf(pivot);
              acc = out.make_and(out.make_or(v_lit, ip),
                                 out.make_or(aig::lit_not(v_lit), in));
            }
            break;
          case System::kInverseMcMillan:
            // B-local => AND; shared or A-local => OR.
            acc = (in_b && !in_a) ? out.make_and(acc, rhs)
                                  : out.make_or(acc, rhs);
            break;
        }
      }
      val[id] = acc;
    }
  }
  return val[proof_.final_id()];
}

std::vector<aig::Lit> InterpolantExtractor::extract_sequence(
    aig::Aig& out, std::uint32_t first, std::uint32_t last,
    const CutLeafFn& leaf, System sys) const {
  std::vector<aig::Lit> seq;
  seq.reserve(last - first + 1);
  for (std::uint32_t cut = first; cut <= last; ++cut)
    seq.push_back(
        extract(out, cut, [&](sat::Var v) { return leaf(cut, v); }, sys));
  return seq;
}

}  // namespace itpseq::itp
