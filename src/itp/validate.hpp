// validate.hpp — independent validation of interpolants and interpolation
// sequences.
//
// Given the original partitioned clause set and an extracted interpolant (an
// AIG predicate over shared variables), these helpers re-check the defining
// conditions of the paper with fresh SAT calls:
//
//   Definition 1:  A => I,   I AND B unsat,   supp(I) within shared vars;
//   Definition 2:  I_j AND A_{j+1} => I_{j+1}  for consecutive terms.
//
// Intended for debugging, regression tests and as a safety net in
// high-assurance deployments (validation cost is usually far below the
// original solving cost).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "sat/types.hpp"

namespace itpseq::itp {

/// A partitioned CNF: clauses over SAT variables 0..num_vars-1, each tagged
/// with a partition label (1-based, as in the Γ sets of the paper).
struct LabeledCnf {
  unsigned num_vars = 0;
  std::vector<std::pair<std::vector<sat::Lit>, std::uint32_t>> clauses;
};

/// Result of a validation query.
struct ValidationResult {
  bool ok = false;
  std::string error;  // first violated condition, human-readable
};

/// Check Definition 1 for `itp` (a literal of `g`, whose input i stands for
/// SAT variable var_of_input[i]) against the cut: A = labels <= cut,
/// B = labels > cut.
ValidationResult validate_interpolant(const LabeledCnf& f, std::uint32_t cut,
                                      const aig::Aig& g, aig::Lit itp,
                                      const std::vector<sat::Var>& var_of_input);

/// Check Definitions 1 and 2 for a whole sequence: terms[j-1] is the
/// interpolant for cut j, j = 1..terms.size().
ValidationResult validate_sequence(const LabeledCnf& f, const aig::Aig& g,
                                   const std::vector<aig::Lit>& terms,
                                   const std::vector<sat::Var>& var_of_input);

}  // namespace itpseq::itp
