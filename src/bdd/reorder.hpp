// reorder.hpp — variable reordering for the ROBDD package.
//
// The node table of BddManager is immutable (no per-level unique tables),
// so reordering is implemented as *rebuild under a new order*: the source
// functions are re-expanded, level by level of the target order, into a
// fresh manager.  On top of that transform, sift_order() runs the classic
// greedy sifting loop — move each variable through candidate positions and
// keep the best — using the current best size as a node-limit so that
// worse candidates abort early instead of being built in full.
//
// The textbook motivation applies unchanged: functions like the n-bit
// comparator AND_i (a_i <-> b_i) are exponential under the blocked order
// a_1..a_n b_1..b_n and linear under the interleaved order, and sifting
// recovers the interleaved order automatically.
#pragma once

#include <vector>

#include "bdd/bdd.hpp"

namespace itpseq::bdd {

/// A variable order: order[L] = source variable placed at level L of the
/// reordered manager.
using VarOrder = std::vector<unsigned>;

/// Result of a reordering: a fresh manager holding the rebuilt roots.
struct ReorderResult {
  BddManager manager;
  std::vector<BddRef> roots;
  VarOrder order;        ///< order used (order[new_level] = old var)
  std::size_t dag_size;  ///< combined DAG size of the rebuilt roots
};

/// Combined DAG size of several roots (shared nodes counted once).
std::size_t shared_size(const BddManager& m, const std::vector<BddRef>& roots);

/// Rebuild `roots` of `src` in a fresh manager under `order`.  Throws
/// BddOverflow if the rebuild exceeds `node_limit` nodes (callers use this
/// to abandon bad candidate orders early).
ReorderResult reorder(BddManager& src, const std::vector<BddRef>& roots,
                      const VarOrder& order,
                      std::size_t node_limit = 20'000'000);

struct SiftOptions {
  /// Upper bound on candidate positions tried per variable (0 = all).
  unsigned window = 0;
  /// Repeat the full sifting pass until no pass improves, at most this
  /// many times.
  unsigned max_passes = 2;
  /// Accept a move only if it shrinks the size by at least this factor
  /// (1.0 = any improvement).
  double min_gain = 1.0;
};

/// Greedy sifting: returns the best order found and the rebuilt roots.
ReorderResult sift_order(BddManager& src, const std::vector<BddRef>& roots,
                         const SiftOptions& opts = {});

}  // namespace itpseq::bdd
