// reach.hpp — BDD-based symbolic reachability over an AIG model.
//
// Provides the exact analyses the paper reports in the "BDDs" section of
// Table I: forward verification with the forward diameter d_F (eccentricity
// of the initial states) and backward verification with the backward
// diameter d_B (eccentricity of the target states), with overflow reported
// when the node/time budget is exceeded — the paper's "ovf" entries.
//
// Also serves as the ground-truth model checker for the test suite.
//
// Variable order (interleaved current/next, inputs last):
//   current latch i -> BDD var 2i,  next latch i -> 2i+1,
//   input j         -> 2*num_latches + j.
#pragma once

#include <optional>

#include "aig/aig.hpp"
#include "bdd/bdd.hpp"

namespace itpseq::bdd {

/// Outcome of a symbolic traversal.
enum class ReachVerdict : std::uint8_t {
  kPass,      ///< property holds (fixpoint without hitting bad)
  kFail,      ///< bad state reachable
  kOverflow,  ///< node or time budget exceeded ("ovf")
};

struct ReachResult {
  ReachVerdict verdict = ReachVerdict::kOverflow;
  /// On kFail: distance (in steps) of the shallowest counterexample.
  /// On kPass: number of image steps to the reachability fixpoint.
  unsigned depth = 0;
  /// On kPass: circuit diameter (d_F for forward, d_B for backward).
  std::optional<unsigned> diameter;
  double seconds = 0.0;
  std::size_t peak_nodes = 0;
};

/// Resource budget for one traversal.
struct ReachBudget {
  std::size_t node_limit = 2'000'000;
  double seconds = 60.0;
  unsigned max_steps = 100000;
};

/// Symbolic transition-system view of an AIG with partitioned transition
/// relation and early-quantification image/preimage operators.
class SymbolicModel {
 public:
  /// Builds per-latch next-state BDDs.  Throws BddOverflow if the functions
  /// themselves exceed the node limit.  With `static_order` the latches are
  /// permuted by a structural DFS heuristic (latches that feed each other
  /// sit close together) instead of declaration order.
  SymbolicModel(const aig::Aig& model, std::size_t node_limit = 2'000'000,
                std::size_t prop = 0, bool static_order = false);

  BddManager& mgr() { return mgr_; }
  const aig::Aig& model() const { return model_; }

  unsigned cur_var(std::size_t latch) const { return 2 * perm_[latch]; }
  unsigned next_var(std::size_t latch) const { return 2 * perm_[latch] + 1; }
  unsigned input_var(std::size_t input) const {
    return 2 * static_cast<unsigned>(model_.num_latches()) + static_cast<unsigned>(input);
  }

  /// Initial states over current vars (uninitialized latches unconstrained).
  BddRef init() const { return init_; }
  /// States with some input making the bad output true (over current vars).
  BddRef bad_states() const { return bad_states_; }
  /// Raw bad function over current + input vars.
  BddRef bad_raw() const { return bad_raw_; }

  /// Image of `states` (over current vars) -> set over current vars.
  BddRef image(BddRef states);
  /// Preimage of `states` (over current vars) -> set over current vars.
  BddRef preimage(BddRef states);

  /// Build the BDD of an arbitrary AIG literal over current/input vars.
  BddRef build(aig::Lit l);

 private:
  const aig::Aig& model_;
  std::vector<unsigned> perm_;         // latch index -> order position
  BddManager mgr_;
  BddRef constraint_ = kBddTrue;       // conjunction of invariant constraints
  std::vector<BddRef> relation_;       // per latch: next_i <-> f_i(cur, in)
  std::vector<int> fwd_last_use_;      // var -> last relation index using it (fwd quant.)
  std::vector<int> bwd_last_use_;      // same for preimage quantification
  BddRef init_ = kBddFalse;
  BddRef bad_states_ = kBddFalse;
  BddRef bad_raw_ = kBddFalse;
  std::vector<unsigned> next_to_cur_;
  std::vector<unsigned> cur_to_next_;
};

/// Structural static variable order: latch indices sorted by first
/// appearance in a DFS from the property through the next-state cones.
std::vector<unsigned> static_latch_order(const aig::Aig& model,
                                         std::size_t prop = 0);

/// Forward traversal: BFS layers from the initial states.
ReachResult forward_reach(SymbolicModel& m, const ReachBudget& budget = {});
/// Backward traversal: BFS layers from the bad states.
ReachResult backward_reach(SymbolicModel& m, const ReachBudget& budget = {});

/// Pure eccentricity computations: like the traversals above but with no
/// early exit on reaching the other set, so the diameter is reported even
/// for failing properties (kPass then simply means "fixpoint reached").
ReachResult forward_diameter(SymbolicModel& m, const ReachBudget& budget = {});
ReachResult backward_diameter(SymbolicModel& m, const ReachBudget& budget = {});

/// Convenience: exact verdict for output `prop` of `model` (kOverflow if the
/// budget is exhausted) using forward reachability.
ReachResult bdd_check(const aig::Aig& model, std::size_t prop = 0,
                      const ReachBudget& budget = {});

}  // namespace itpseq::bdd
