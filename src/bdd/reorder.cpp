#include "bdd/reorder.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace itpseq::bdd {

std::size_t shared_size(const BddManager& m, const std::vector<BddRef>& roots) {
  std::unordered_set<BddRef> seen;
  std::vector<BddRef> stack(roots.begin(), roots.end());
  std::size_t count = 0;
  while (!stack.empty()) {
    BddRef f = stack.back();
    stack.pop_back();
    if (m.is_const(f) || !seen.insert(f).second) continue;
    ++count;
    stack.push_back(m.node_low(f));
    stack.push_back(m.node_high(f));
  }
  return count;
}

namespace {

/// Recursive rebuild of src functions into dst, expanding src variables in
/// the order given by `order` (order[L] = src var at dst level L).
class Rebuilder {
 public:
  Rebuilder(BddManager& src, BddManager& dst, const VarOrder& order)
      : src_(src), dst_(dst), order_(order) {
    masks_.resize(src.num_vars());
    for (unsigned v = 0; v < src.num_vars(); ++v) {
      masks_[v].assign(src.num_vars(), false);
      masks_[v][v] = true;
    }
  }

  BddRef build(BddRef f) { return rec(f, 0); }

 private:
  BddRef rec(BddRef f, unsigned level) {
    if (src_.is_const(f)) return f;  // constants share indices 0/1
    std::uint64_t key = (static_cast<std::uint64_t>(f) << 32) | level;
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    unsigned v = order_[level];
    // Cofactors in the source manager (general position of v).
    BddRef f0 = src_.and_exists(f, src_.nvar(v), masks_[v]);
    BddRef f1 = src_.and_exists(f, src_.var(v), masks_[v]);
    BddRef r;
    if (f0 == f1) {
      r = rec(f0, level + 1);
    } else {
      BddRef d0 = rec(f0, level + 1);
      BddRef d1 = rec(f1, level + 1);
      r = dst_.ite(dst_.var(level), d1, d0);
    }
    memo_.emplace(key, r);
    return r;
  }

  BddManager& src_;
  BddManager& dst_;
  const VarOrder& order_;
  std::vector<std::vector<bool>> masks_;
  std::unordered_map<std::uint64_t, BddRef> memo_;
};

}  // namespace

ReorderResult reorder(BddManager& src, const std::vector<BddRef>& roots,
                      const VarOrder& order, std::size_t node_limit) {
  ReorderResult out{BddManager(src.num_vars(), node_limit), {}, order, 0};
  Rebuilder rb(src, out.manager, order);
  out.roots.reserve(roots.size());
  for (BddRef r : roots) out.roots.push_back(rb.build(r));
  out.dag_size = shared_size(out.manager, out.roots);
  return out;
}

ReorderResult sift_order(BddManager& src, const std::vector<BddRef>& roots,
                         const SiftOptions& opts) {
  const unsigned n = src.num_vars();
  VarOrder order(n);
  for (unsigned i = 0; i < n; ++i) order[i] = i;
  ReorderResult best = reorder(src, roots, order);

  for (unsigned pass = 0; pass < opts.max_passes; ++pass) {
    bool improved = false;
    for (unsigned v = 0; v < n; ++v) {
      unsigned cur_pos = static_cast<unsigned>(
          std::find(best.order.begin(), best.order.end(), v) -
          best.order.begin());
      unsigned lo = 0, hi = n - 1;
      if (opts.window > 0) {
        lo = cur_pos > opts.window ? cur_pos - opts.window : 0;
        hi = std::min(n - 1, cur_pos + opts.window);
      }
      for (unsigned p = lo; p <= hi; ++p) {
        if (p == cur_pos) continue;
        VarOrder cand = best.order;
        cand.erase(cand.begin() + cur_pos);
        cand.insert(cand.begin() + p, v);
        // Budget: a candidate that cannot beat the current best aborts
        // via BddOverflow during the rebuild.
        std::size_t limit = best.dag_size + n + 16;
        try {
          ReorderResult r = reorder(src, roots, cand, limit);
          if (static_cast<double>(r.dag_size) * opts.min_gain <
              static_cast<double>(best.dag_size)) {
            best = std::move(r);
            cur_pos = p;
            improved = true;
          }
        } catch (const BddOverflow&) {
          // worse than best — skip
        }
      }
    }
    if (!improved) break;
  }
  return best;
}

}  // namespace itpseq::bdd
