// bdd.hpp — a reduced ordered BDD (ROBDD) package.
//
// Classic unique-table / computed-table design (Brace-Rudell-Bryant) without
// complement edges: nodes are immutable triples (level, low, high), hashing
// guarantees canonicity, and all operators are implemented over ite().
// Supports existential quantification and the relational-product operator
// and_exists() used for symbolic image computation.
//
// The package is used by the reachability engine (bdd/reach.hpp) to compute
// the exact forward/backward circuit diameters the paper reports in the
// "BDDs" columns of Table I, and as an independent ground-truth model
// checker for the test suite.
//
// No garbage collection: all nodes live until the manager dies.  This is a
// deliberate simplification — managers are created per-query and the
// circuits we run BDD analysis on are small (the paper's large instances
// overflow BDD engines anyway, which Table I reports as "ovf").
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace itpseq::bdd {

/// Reference to a BDD node (index into the manager's node table).
using BddRef = std::uint32_t;

inline constexpr BddRef kBddFalse = 0;
inline constexpr BddRef kBddTrue = 1;

class BddManager {
 public:
  /// `num_vars` fixes the variable universe (order = index order).
  /// `node_limit` bounds the table; exceeding it throws BddOverflow.
  explicit BddManager(unsigned num_vars, std::size_t node_limit = 20'000'000);

  unsigned num_vars() const { return num_vars_; }
  std::size_t num_nodes() const { return nodes_.size(); }

  BddRef bdd_false() const { return kBddFalse; }
  BddRef bdd_true() const { return kBddTrue; }
  /// Projection function of variable v (and its complement).
  BddRef var(unsigned v);
  BddRef nvar(unsigned v);

  BddRef apply_not(BddRef f) { return ite(f, kBddFalse, kBddTrue); }
  BddRef apply_and(BddRef f, BddRef g) { return ite(f, g, kBddFalse); }
  BddRef apply_or(BddRef f, BddRef g) { return ite(f, kBddTrue, g); }
  BddRef apply_xor(BddRef f, BddRef g) { return ite(f, apply_not(g), g); }
  BddRef apply_equiv(BddRef f, BddRef g) { return ite(f, g, apply_not(g)); }
  BddRef apply_imp(BddRef f, BddRef g) { return ite(f, g, kBddTrue); }
  BddRef ite(BddRef f, BddRef g, BddRef h);

  /// Existentially quantify the variables flagged in `mask` (size num_vars).
  BddRef exists(BddRef f, const std::vector<bool>& mask);
  /// exists mask . (f ∧ g), computed without building f∧g in full.
  BddRef and_exists(BddRef f, BddRef g, const std::vector<bool>& mask);
  /// Rename variables: var v becomes map[v].  The map must be monotone on
  /// the support of f (order-preserving), which holds for the interleaved
  /// current/next encodings used by the reachability engine.
  BddRef rename(BddRef f, const std::vector<unsigned>& map);

  unsigned node_level(BddRef f) const { return nodes_[f].level; }
  BddRef node_low(BddRef f) const { return nodes_[f].low; }
  BddRef node_high(BddRef f) const { return nodes_[f].high; }
  bool is_const(BddRef f) const { return f <= 1; }

  /// Number of internal nodes reachable from f (DAG size).
  std::size_t size(BddRef f) const;
  /// Evaluate under a full variable assignment.
  bool eval(BddRef f, const std::vector<bool>& values) const;
  /// Number of satisfying assignments over all num_vars variables.
  double sat_count(BddRef f) const;
  /// Support of f as a mask.
  std::vector<bool> support(BddRef f) const;
  /// One satisfying assignment (any); f must not be false.
  std::vector<bool> any_sat(BddRef f) const;

 private:
  struct BddNode {
    unsigned level;  // kTermLevel for terminals
    BddRef low, high;
  };
  static constexpr unsigned kTermLevel = std::numeric_limits<unsigned>::max();

  BddRef mk(unsigned level, BddRef low, BddRef high);
  unsigned top_level(BddRef f, BddRef g, BddRef h) const;
  BddRef cofactor(BddRef f, unsigned level, bool positive) const;

  struct Key3 {
    std::uint32_t a, b, c;
    bool operator==(const Key3&) const = default;
  };
  struct Key3Hash {
    std::size_t operator()(const Key3& k) const {
      std::uint64_t x = (static_cast<std::uint64_t>(k.a) << 32) ^
                        (static_cast<std::uint64_t>(k.b) << 16) ^ k.c;
      x *= 0x9e3779b97f4a7c15ull;
      x ^= x >> 32;
      return static_cast<std::size_t>(x);
    }
  };

  unsigned num_vars_;
  std::size_t node_limit_;
  std::vector<BddNode> nodes_;
  std::unordered_map<Key3, BddRef, Key3Hash> unique_;
  // Computed tables.  The ite cache persists; the quantification/rename
  // caches are valid only for one mask/map and are cleared per public call.
  std::unordered_map<Key3, BddRef, Key3Hash> ite_cache_;
  std::unordered_map<std::uint32_t, BddRef> exists_cache_;
  std::unordered_map<std::uint64_t, BddRef> andex_cache_;
  std::unordered_map<std::uint32_t, BddRef> rename_cache_;
  const std::vector<bool>* cur_mask_ = nullptr;
  const std::vector<unsigned>* cur_map_ = nullptr;

  BddRef ite_rec(BddRef f, BddRef g, BddRef h);
  BddRef exists_rec(BddRef f);
  BddRef and_exists_rec(BddRef f, BddRef g);
  BddRef rename_rec(BddRef f);
};

/// Thrown when the node limit is exceeded ("ovf" in Table I terms).
class BddOverflow : public std::runtime_error {
 public:
  BddOverflow() : std::runtime_error("BDD node limit exceeded") {}
};

}  // namespace itpseq::bdd
