#include "bdd/bdd.hpp"

#include <cassert>

namespace itpseq::bdd {

BddManager::BddManager(unsigned num_vars, std::size_t node_limit)
    : num_vars_(num_vars), node_limit_(node_limit) {
  // Terminals occupy slots 0 (false) and 1 (true).
  nodes_.push_back(BddNode{kTermLevel, 0, 0});
  nodes_.push_back(BddNode{kTermLevel, 1, 1});
}

BddRef BddManager::mk(unsigned level, BddRef low, BddRef high) {
  if (low == high) return low;  // reduction rule
  Key3 key{level, low, high};
  auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  if (nodes_.size() >= node_limit_) throw BddOverflow();
  BddRef r = static_cast<BddRef>(nodes_.size());
  nodes_.push_back(BddNode{level, low, high});
  unique_.emplace(key, r);
  return r;
}

BddRef BddManager::var(unsigned v) {
  if (v >= num_vars_) throw std::out_of_range("BddManager::var");
  return mk(v, kBddFalse, kBddTrue);
}

BddRef BddManager::nvar(unsigned v) {
  if (v >= num_vars_) throw std::out_of_range("BddManager::nvar");
  return mk(v, kBddTrue, kBddFalse);
}

unsigned BddManager::top_level(BddRef f, BddRef g, BddRef h) const {
  unsigned l = nodes_[f].level;
  if (nodes_[g].level < l) l = nodes_[g].level;
  if (nodes_[h].level < l) l = nodes_[h].level;
  return l;
}

BddRef BddManager::cofactor(BddRef f, unsigned level, bool positive) const {
  const BddNode& n = nodes_[f];
  if (n.level != level) return f;  // f does not test this level on top
  return positive ? n.high : n.low;
}

BddRef BddManager::ite(BddRef f, BddRef g, BddRef h) { return ite_rec(f, g, h); }

BddRef BddManager::ite_rec(BddRef f, BddRef g, BddRef h) {
  // Terminal cases.
  if (f == kBddTrue) return g;
  if (f == kBddFalse) return h;
  if (g == h) return g;
  if (g == kBddTrue && h == kBddFalse) return f;

  Key3 key{f, g, h};
  auto it = ite_cache_.find(key);
  if (it != ite_cache_.end()) return it->second;

  unsigned level = top_level(f, g, h);
  BddRef lo = ite_rec(cofactor(f, level, false), cofactor(g, level, false),
                      cofactor(h, level, false));
  BddRef hi = ite_rec(cofactor(f, level, true), cofactor(g, level, true),
                      cofactor(h, level, true));
  BddRef r = mk(level, lo, hi);
  ite_cache_.emplace(key, r);
  return r;
}

BddRef BddManager::exists(BddRef f, const std::vector<bool>& mask) {
  exists_cache_.clear();
  cur_mask_ = &mask;
  BddRef r = exists_rec(f);
  cur_mask_ = nullptr;
  return r;
}

BddRef BddManager::exists_rec(BddRef f) {
  if (is_const(f)) return f;
  auto it = exists_cache_.find(f);
  if (it != exists_cache_.end()) return it->second;
  const BddNode n = nodes_[f];  // by value: recursion below may grow nodes_
  BddRef lo = exists_rec(n.low);
  BddRef hi = exists_rec(n.high);
  BddRef r;
  if (n.level < cur_mask_->size() && (*cur_mask_)[n.level])
    r = apply_or(lo, hi);
  else
    r = mk(n.level, lo, hi);
  exists_cache_.emplace(f, r);
  return r;
}

BddRef BddManager::and_exists(BddRef f, BddRef g, const std::vector<bool>& mask) {
  andex_cache_.clear();
  exists_cache_.clear();  // and_exists falls back to exists_rec on true operands
  cur_mask_ = &mask;
  BddRef r = and_exists_rec(f, g);
  cur_mask_ = nullptr;
  return r;
}

BddRef BddManager::and_exists_rec(BddRef f, BddRef g) {
  if (f == kBddFalse || g == kBddFalse) return kBddFalse;
  if (f == kBddTrue && g == kBddTrue) return kBddTrue;
  if (f == kBddTrue) return exists_rec(g);
  if (g == kBddTrue) return exists_rec(f);
  if (f > g) std::swap(f, g);  // commutative: canonicalize cache key
  std::uint64_t key = (static_cast<std::uint64_t>(f) << 32) | g;
  auto it = andex_cache_.find(key);
  if (it != andex_cache_.end()) return it->second;
  unsigned level = std::min(nodes_[f].level, nodes_[g].level);
  BddRef lo = and_exists_rec(cofactor(f, level, false), cofactor(g, level, false));
  BddRef r;
  if (level < cur_mask_->size() && (*cur_mask_)[level]) {
    if (lo == kBddTrue) {
      r = kBddTrue;  // early termination: OR with anything is true
    } else {
      BddRef hi = and_exists_rec(cofactor(f, level, true), cofactor(g, level, true));
      r = apply_or(lo, hi);
    }
  } else {
    BddRef hi = and_exists_rec(cofactor(f, level, true), cofactor(g, level, true));
    r = mk(level, lo, hi);
  }
  andex_cache_.emplace(key, r);
  return r;
}

BddRef BddManager::rename(BddRef f, const std::vector<unsigned>& map) {
  rename_cache_.clear();
  cur_map_ = &map;
  BddRef r = rename_rec(f);
  cur_map_ = nullptr;
  return r;
}

BddRef BddManager::rename_rec(BddRef f) {
  if (is_const(f)) return f;
  auto it = rename_cache_.find(f);
  if (it != rename_cache_.end()) return it->second;
  const BddNode n = nodes_[f];  // by value: recursion below may grow nodes_
  BddRef lo = rename_rec(n.low);
  BddRef hi = rename_rec(n.high);
  unsigned nl = n.level < cur_map_->size() ? (*cur_map_)[n.level] : n.level;
  // Monotonicity requirement: the renamed level must still be above the
  // levels occurring in the cofactors for mk() to produce an ordered BDD.
  assert((is_const(lo) || nl < nodes_[lo].level) &&
         (is_const(hi) || nl < nodes_[hi].level) &&
         "rename map must be order-preserving on the support");
  BddRef r = mk(nl, lo, hi);
  rename_cache_.emplace(f, r);
  return r;
}

std::size_t BddManager::size(BddRef f) const {
  if (is_const(f)) return 0;
  std::vector<BddRef> stack{f};
  std::unordered_map<BddRef, bool> seen;
  std::size_t count = 0;
  while (!stack.empty()) {
    BddRef x = stack.back();
    stack.pop_back();
    if (is_const(x) || seen.count(x)) continue;
    seen.emplace(x, true);
    ++count;
    stack.push_back(nodes_[x].low);
    stack.push_back(nodes_[x].high);
  }
  return count;
}

bool BddManager::eval(BddRef f, const std::vector<bool>& values) const {
  while (!is_const(f)) {
    const BddNode& n = nodes_[f];
    bool v = n.level < values.size() && values[n.level];
    f = v ? n.high : n.low;
  }
  return f == kBddTrue;
}

double BddManager::sat_count(BddRef f) const {
  // count(f) relative to remaining variables below f's level.
  std::unordered_map<BddRef, double> memo;
  // fraction of assignments satisfying f
  std::vector<BddRef> order;
  std::vector<BddRef> stack{f};
  std::unordered_map<BddRef, int> state;
  while (!stack.empty()) {
    BddRef x = stack.back();
    if (is_const(x)) {
      stack.pop_back();
      continue;
    }
    auto& st = state[x];
    if (st == 0) {
      st = 1;
      stack.push_back(nodes_[x].low);
      stack.push_back(nodes_[x].high);
    } else {
      stack.pop_back();
      if (st == 1) {
        st = 2;
        order.push_back(x);
      }
    }
  }
  auto density = [&](BddRef x) -> double {
    if (x == kBddFalse) return 0.0;
    if (x == kBddTrue) return 1.0;
    return memo.at(x);
  };
  for (BddRef x : order) {
    const BddNode& n = nodes_[x];
    double dl = density(n.low), dh = density(n.high);
    // Each cofactor's density must be halved per skipped level; using pure
    // densities makes skipping levels automatic.
    memo[x] = 0.5 * dl + 0.5 * dh;
  }
  double d = density(f);
  double total = 1.0;
  for (unsigned i = 0; i < num_vars_; ++i) total *= 2.0;
  return d * total;
}

std::vector<bool> BddManager::support(BddRef f) const {
  std::vector<bool> mask(num_vars_, false);
  std::vector<BddRef> stack{f};
  std::unordered_map<BddRef, bool> seen;
  while (!stack.empty()) {
    BddRef x = stack.back();
    stack.pop_back();
    if (is_const(x) || seen.count(x)) continue;
    seen.emplace(x, true);
    if (nodes_[x].level < num_vars_) mask[nodes_[x].level] = true;
    stack.push_back(nodes_[x].low);
    stack.push_back(nodes_[x].high);
  }
  return mask;
}

std::vector<bool> BddManager::any_sat(BddRef f) const {
  if (f == kBddFalse) throw std::invalid_argument("any_sat of false");
  std::vector<bool> values(num_vars_, false);
  while (!is_const(f)) {
    const BddNode& n = nodes_[f];
    if (n.low != kBddFalse) {
      values[n.level] = false;
      f = n.low;
    } else {
      values[n.level] = true;
      f = n.high;
    }
  }
  return values;
}

}  // namespace itpseq::bdd
