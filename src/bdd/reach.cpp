#include "bdd/reach.hpp"

#include <chrono>

namespace itpseq::bdd {

std::vector<unsigned> static_latch_order(const aig::Aig& model,
                                         std::size_t prop) {
  // BFS over latch dependencies starting from the property support: latches
  // read together end up adjacent in the order.
  std::size_t L = model.num_latches();
  std::vector<unsigned> position(L, ~0u);
  unsigned next_pos = 0;
  std::vector<std::size_t> queue;
  auto visit = [&](aig::Lit root) {
    for (aig::Var v : model.support(root)) {
      std::size_t idx = model.latch_index(v);
      if (idx != aig::Aig::kNoIndex && position[idx] == ~0u) {
        position[idx] = next_pos++;
        queue.push_back(idx);
      }
    }
  };
  if (prop < model.num_outputs()) visit(model.output(prop));
  for (std::size_t qi = 0; qi < queue.size(); ++qi)
    visit(model.latch_next(queue[qi]));
  // Latches outside the property cone keep relative order at the end.
  for (std::size_t i = 0; i < L; ++i)
    if (position[i] == ~0u) position[i] = next_pos++;
  return position;
}

SymbolicModel::SymbolicModel(const aig::Aig& model, std::size_t node_limit,
                             std::size_t prop, bool static_order)
    : model_(model),
      mgr_(static_cast<unsigned>(2 * model.num_latches() + model.num_inputs()),
           node_limit) {
  std::size_t L = model.num_latches();
  if (static_order) {
    perm_ = static_latch_order(model, prop);
  } else {
    perm_.resize(L);
    for (std::size_t i = 0; i < L; ++i) perm_[i] = static_cast<unsigned>(i);
  }

  // Rename maps.
  next_to_cur_.resize(mgr_.num_vars());
  cur_to_next_.resize(mgr_.num_vars());
  for (unsigned v = 0; v < mgr_.num_vars(); ++v)
    next_to_cur_[v] = cur_to_next_[v] = v;
  for (std::size_t i = 0; i < L; ++i) {
    next_to_cur_[next_var(i)] = cur_var(i);
    cur_to_next_[cur_var(i)] = next_var(i);
  }

  // Initial states.
  init_ = mgr_.bdd_true();
  for (std::size_t i = 0; i < L; ++i) {
    switch (model.latch_init(i)) {
      case aig::LatchInit::kZero:
        init_ = mgr_.apply_and(init_, mgr_.nvar(cur_var(i)));
        break;
      case aig::LatchInit::kOne:
        init_ = mgr_.apply_and(init_, mgr_.var(cur_var(i)));
        break;
      case aig::LatchInit::kUndef:
        break;  // unconstrained
    }
  }

  // Invariant constraints (AIGER 1.9 "C"): conjoined into every frame.
  for (std::size_t i = 0; i < model.num_constraints(); ++i)
    constraint_ = mgr_.apply_and(constraint_, build(model.constraint(i)));

  // Per-latch transition relation partitions.
  relation_.reserve(L);
  for (std::size_t i = 0; i < L; ++i) {
    BddRef f = build(model.latch_next(i));
    relation_.push_back(mgr_.apply_equiv(mgr_.var(next_var(i)), f));
  }

  // Bad states (quantify inputs out of the raw bad function, under the
  // frame constraint).
  if (model.num_outputs() > prop) {
    bad_raw_ = mgr_.apply_and(build(model.output(prop)), constraint_);
    std::vector<bool> mask(mgr_.num_vars(), false);
    for (std::size_t j = 0; j < model.num_inputs(); ++j) mask[input_var(j)] = true;
    bad_states_ = mgr_.exists(bad_raw_, mask);
  }

  // Initial states must admit the constraint for some input.
  if (constraint_ != kBddTrue) {
    std::vector<bool> mask(mgr_.num_vars(), false);
    for (std::size_t j = 0; j < model.num_inputs(); ++j) mask[input_var(j)] = true;
    init_ = mgr_.apply_and(init_, mgr_.exists(constraint_, mask));
  }

  // Early-quantification schedules: last relation partition using each var.
  fwd_last_use_.assign(mgr_.num_vars(), -1);
  bwd_last_use_.assign(mgr_.num_vars(), -1);
  for (std::size_t i = 0; i < L; ++i) {
    std::vector<bool> sup = mgr_.support(relation_[i]);
    for (unsigned v = 0; v < mgr_.num_vars(); ++v)
      if (sup[v]) {
        fwd_last_use_[v] = static_cast<int>(i);
        bwd_last_use_[v] = static_cast<int>(i);
      }
  }
}

BddRef SymbolicModel::build(aig::Lit l) {
  std::vector<aig::Var> order = model_.cone({l});
  std::vector<BddRef> val(model_.num_vars(), kBddFalse);
  for (aig::Var v : order) {
    const aig::Node& n = model_.node(v);
    switch (n.type) {
      case aig::NodeType::kConst:
        break;
      case aig::NodeType::kInput:
        val[v] = mgr_.var(input_var(model_.input_index(v)));
        break;
      case aig::NodeType::kLatch:
        val[v] = mgr_.var(cur_var(model_.latch_index(v)));
        break;
      case aig::NodeType::kAnd: {
        auto fanin = [&](aig::Lit f) {
          BddRef b = aig::lit_var(f) == 0 ? kBddFalse : val[aig::lit_var(f)];
          return aig::lit_sign(f) ? mgr_.apply_not(b) : b;
        };
        val[v] = mgr_.apply_and(fanin(n.fanin0), fanin(n.fanin1));
        break;
      }
    }
  }
  aig::Var rv = aig::lit_var(l);
  BddRef base = rv == 0 ? kBddFalse : val[rv];
  return aig::lit_sign(l) ? mgr_.apply_not(base) : base;
}

BddRef SymbolicModel::image(BddRef states) {
  // Conjoin relation partitions over (cur, in, next), quantifying cur and
  // input variables as soon as no later partition mentions them.  The
  // invariant constraint joins the frame formula up front.
  BddRef acc = mgr_.apply_and(states, constraint_);
  std::vector<bool> mask(mgr_.num_vars(), false);
  // Vars used by no relation at all can be quantified immediately.
  bool any = false;
  for (std::size_t i = 0; i < model_.num_latches(); ++i) {
    unsigned cv = cur_var(i);
    if (fwd_last_use_[cv] < 0) {
      mask[cv] = true;
      any = true;
    }
  }
  for (std::size_t j = 0; j < model_.num_inputs(); ++j) {
    unsigned iv = input_var(j);
    if (fwd_last_use_[iv] < 0) {
      mask[iv] = true;
      any = true;
    }
  }
  if (any) acc = mgr_.exists(acc, mask);

  for (std::size_t i = 0; i < relation_.size(); ++i) {
    std::fill(mask.begin(), mask.end(), false);
    bool quantify = false;
    for (std::size_t k = 0; k < model_.num_latches(); ++k) {
      unsigned cv = cur_var(k);
      if (fwd_last_use_[cv] == static_cast<int>(i)) {
        mask[cv] = true;
        quantify = true;
      }
    }
    for (std::size_t j = 0; j < model_.num_inputs(); ++j) {
      unsigned iv = input_var(j);
      if (fwd_last_use_[iv] == static_cast<int>(i)) {
        mask[iv] = true;
        quantify = true;
      }
    }
    acc = quantify ? mgr_.and_exists(acc, relation_[i], mask)
                   : mgr_.apply_and(acc, relation_[i]);
  }
  return mgr_.rename(acc, next_to_cur_);
}

BddRef SymbolicModel::preimage(BddRef states) {
  BddRef acc =
      mgr_.apply_and(mgr_.rename(states, cur_to_next_), constraint_);
  std::vector<bool> mask(mgr_.num_vars(), false);
  for (std::size_t i = 0; i < relation_.size(); ++i) {
    std::fill(mask.begin(), mask.end(), false);
    bool quantify = false;
    // Quantify next-state and input vars at their last use.
    for (std::size_t k = 0; k < model_.num_latches(); ++k) {
      unsigned nv = next_var(k);
      if (bwd_last_use_[nv] == static_cast<int>(i)) {
        mask[nv] = true;
        quantify = true;
      }
    }
    for (std::size_t j = 0; j < model_.num_inputs(); ++j) {
      unsigned iv = input_var(j);
      if (bwd_last_use_[iv] == static_cast<int>(i)) {
        mask[iv] = true;
        quantify = true;
      }
    }
    acc = quantify ? mgr_.and_exists(acc, relation_[i], mask)
                   : mgr_.apply_and(acc, relation_[i]);
  }
  // Next vars with no relation use (states whose latch is ignored) and
  // leftover input vars have already been handled; quantify any stragglers.
  std::fill(mask.begin(), mask.end(), false);
  bool any = false;
  std::vector<bool> sup = mgr_.support(acc);
  for (std::size_t k = 0; k < model_.num_latches(); ++k)
    if (sup[next_var(k)]) {
      mask[next_var(k)] = true;
      any = true;
    }
  for (std::size_t j = 0; j < model_.num_inputs(); ++j)
    if (sup[input_var(j)]) {
      mask[input_var(j)] = true;
      any = true;
    }
  if (any) acc = mgr_.exists(acc, mask);
  return acc;
}

namespace {

using Clock = std::chrono::steady_clock;

double elapsed(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

ReachResult traverse(SymbolicModel& m, BddRef start, BddRef target, bool forward,
                     const ReachBudget& budget) {
  ReachResult res;
  auto t0 = Clock::now();
  BddManager& mgr = m.mgr();
  try {
    BddRef reached = start;
    BddRef frontier = start;
    unsigned depth = 0;
    if (mgr.apply_and(start, target) != kBddFalse) {
      res.verdict = ReachVerdict::kFail;
      res.depth = 0;
      res.seconds = elapsed(t0);
      res.peak_nodes = mgr.num_nodes();
      return res;
    }
    while (true) {
      if (elapsed(t0) > budget.seconds || depth >= budget.max_steps) {
        res.verdict = ReachVerdict::kOverflow;
        res.seconds = elapsed(t0);
        res.peak_nodes = mgr.num_nodes();
        return res;
      }
      BddRef next = forward ? m.image(frontier) : m.preimage(frontier);
      ++depth;
      // New states only.
      BddRef fresh = mgr.apply_and(next, mgr.apply_not(reached));
      if (fresh == kBddFalse) {
        res.verdict = ReachVerdict::kPass;
        res.depth = depth;
        res.diameter = depth - 1;  // deepest layer that contained new states
        break;
      }
      if (mgr.apply_and(fresh, target) != kBddFalse) {
        res.verdict = ReachVerdict::kFail;
        res.depth = depth;
        break;
      }
      reached = mgr.apply_or(reached, fresh);
      frontier = fresh;
    }
  } catch (const BddOverflow&) {
    res.verdict = ReachVerdict::kOverflow;
  }
  res.seconds = elapsed(t0);
  res.peak_nodes = mgr.num_nodes();
  return res;
}

}  // namespace

ReachResult forward_reach(SymbolicModel& m, const ReachBudget& budget) {
  return traverse(m, m.init(), m.bad_states(), /*forward=*/true, budget);
}

ReachResult backward_reach(SymbolicModel& m, const ReachBudget& budget) {
  return traverse(m, m.bad_states(), m.init(), /*forward=*/false, budget);
}

ReachResult forward_diameter(SymbolicModel& m, const ReachBudget& budget) {
  return traverse(m, m.init(), kBddFalse, /*forward=*/true, budget);
}

ReachResult backward_diameter(SymbolicModel& m, const ReachBudget& budget) {
  return traverse(m, m.bad_states(), kBddFalse, /*forward=*/false, budget);
}

ReachResult bdd_check(const aig::Aig& model, std::size_t prop,
                      const ReachBudget& budget) {
  try {
    SymbolicModel m(model, budget.node_limit, prop);
    return forward_reach(m, budget);
  } catch (const BddOverflow&) {
    ReachResult res;
    res.verdict = ReachVerdict::kOverflow;
    return res;
  }
}

}  // namespace itpseq::bdd
