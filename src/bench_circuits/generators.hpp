// generators.hpp — parameterized sequential circuit families.
//
// These stand in for the paper's benchmark suite (HWMCC-style academic
// circuits plus proprietary industrial designs, which we cannot ship — see
// DESIGN.md §7).  Every generator returns an AIG with exactly one output,
// the *bad* signal: the safety property is "bad is never 1".
//
// Families are chosen to cover the behaviours the paper's evaluation
// exercises:
//   * shallow and deep forward/backward diameters (counters, rings),
//   * PASS properties with small inductive invariants (one-hot rings,
//     guarded queues) where interpolation converges quickly,
//   * FAIL properties at a known depth (for BMC/falsification paths),
//   * large "industrial-like" designs where the property cone is a small
//     fraction of the logic (localization abstraction / CBA wins).
#pragma once

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"

namespace itpseq::bench {

// --- small arithmetic helpers over AIG literals -----------------------------

/// bits == value (unsigned, bits[0] = LSB).
aig::Lit equals_const(aig::Aig& g, const std::vector<aig::Lit>& bits,
                      std::uint64_t value);
/// bits + 1 (wrapping); result has the same width.
std::vector<aig::Lit> increment(aig::Aig& g, const std::vector<aig::Lit>& bits);
/// if-then-else over vectors.
std::vector<aig::Lit> mux(aig::Aig& g, aig::Lit sel,
                          const std::vector<aig::Lit>& then_v,
                          const std::vector<aig::Lit>& else_v);
/// At least two of the literals are true.
aig::Lit at_least_two(aig::Aig& g, const std::vector<aig::Lit>& lits);

// --- circuit families -------------------------------------------------------

/// Modulo-`modulo` binary counter (width = bit count needed), optional
/// enable input.  bad = (count == bad_value).  FAILs at depth bad_value when
/// bad_value < modulo, PASSes otherwise.  Forward diameter = modulo - 1.
aig::Aig counter(unsigned width, std::uint64_t modulo, std::uint64_t bad_value,
                 bool with_enable = false);

/// Token ring of n stages, one-hot initialized.  Two properties:
///   fail_reach = true : bad = token at the last stage (FAILs at n-1);
///   fail_reach = false: bad = two tokens at once (PASSes; the invariant is
///                       one-hotness, a classic interpolation target).
aig::Aig token_ring(unsigned n, bool fail_reach);

/// Round-robin arbiter over n request inputs: a one-hot pointer advances
/// each cycle; grant_i = pointer_i AND req_i.  bad = two grants (PASS).
/// With `broken` = true, grant of station 0 ignores the pointer, so two
/// grants are reachable (FAIL at depth 1).
aig::Aig arbiter(unsigned n, bool broken);

/// Bounded queue occupancy tracker with push/pop inputs and capacity c.
/// Guarded: push only counts when not full -> bad = (count > c) PASSes.
/// Unguarded: count saturates at 2^width-1 -> bad = (count == c+1) FAILs at
/// depth c+1.
aig::Aig queue(unsigned capacity, bool guarded);

/// Two-phase traffic-light controller with an m-cycle timer per phase.
/// bad = both directions green (PASS).  Diameter grows with m.
aig::Aig traffic_light(unsigned m);

/// Binary counter with a registered Gray-code view; bad = the Gray register
/// changes by two or more bits in one step (PASS).
aig::Aig gray_counter(unsigned width);

/// Fibonacci LFSR of `width` bits (taps at width-1 and width-2... pattern
/// fixed), seeded with 1.  fail_value != 0: bad = (state == fail_value),
/// reachable iff the value lies on the LFSR orbit of the seed (the suite
/// only uses values verified by simulation, with known depth).
/// fail_value == 0: bad = (state == 0), unreachable from a nonzero seed
/// (PASS).
aig::Aig lfsr(unsigned width, std::uint64_t fail_value);

/// Feistel-style mixer: two `width`-bit register halves; each cycle
/// L' = R, R' = L xor F(R, round_key_input).  A modulo-m round counter
/// guards the property: bad = (round == m) which is unreachable since the
/// counter wraps at m-1 (PASS), but the wide mixing logic sits in the
/// property's transitive cone, stressing abstraction.
aig::Aig feistel_mixer(unsigned width, unsigned m, std::uint32_t seed);

/// "Industrial-like" pipeline: `stages` register stages of `width` bits
/// with random AND/XOR clouds between them (seeded), plus a small property
/// overlay:
///   variant 0 (PASS): a guarded modulo-m counter whose enable comes from
///     the cloud; bad = count == m (unreachable; invariant is local — the
///     CBA engine should refine only the counter latches);
///   variant 1 (FAIL): a conjunction-chain of `depth` match registers
///     advanced by an input pattern; bad = last match register
///     (FAILs at exactly `depth`).
aig::Aig industrial(unsigned width, unsigned stages, unsigned variant,
                    unsigned param, std::uint32_t seed);

/// Combination lock: `length` stages; the lock advances one stage per cycle
/// while the `bits`-wide input matches the stage's key nibble (seeded) and
/// resets to stage 0 otherwise.  bad = lock fully open.  FAILs at exactly
/// `length` — the classic deep-BMC falsification workload (BMC affinity is
/// the heart of the ITPSEQ story).  With `unopenable` = true one stage's
/// key is contradictory (requires in AND NOT in), so the lock can never
/// open: PASS with a deep backward diameter.
aig::Aig combination_lock(unsigned length, unsigned bits, std::uint32_t seed,
                          bool unopenable = false);

/// Vending machine: a credit accumulator (coin input adds 1, vend input
/// subtracts `price` when credit >= price).  Guarded: credit saturates at
/// `max_credit` -> bad = credit > max_credit PASSes.  Unguarded: bad =
/// credit == max_credit + 1 FAILs at depth max_credit + 1.
aig::Aig vending(unsigned max_credit, unsigned price, bool guarded);

/// Sticky pattern detector: bad latches on after the 2-bit input pattern
/// "11" has been held for `m` consecutive cycles; FAILs at exactly m.
/// With `resettable` = true, a third input clears progress, which does not
/// change the verdict but widens the search space.
aig::Aig sticky_detector(unsigned m, bool resettable);

/// Simulate a closed (input-free) portion: returns the depth at which bad
/// first becomes 1, or -1 if not within max_steps.  Used by the suite to
/// derive expected depths for LFSR-style instances.
int first_bad_depth(const aig::Aig& g, unsigned max_steps);

}  // namespace itpseq::bench
