#include "bench_circuits/suite.hpp"

#include "bench_circuits/generators.hpp"

namespace itpseq::bench {

namespace {

void add(std::vector<Instance>& out, std::string name, std::string family,
         aig::Aig g, Expected exp, int fail_depth = -1, bool industrial = false) {
  Instance inst;
  inst.name = std::move(name);
  inst.family = std::move(family);
  inst.model = std::move(g);
  inst.expected = exp;
  inst.fail_depth = fail_depth;
  inst.industrial = industrial;
  out.push_back(std::move(inst));
}

void add_academic(std::vector<Instance>& out) {
  // Counters: deep FAIL/PASS with exactly known diameters.
  for (unsigned w : {4u, 6u, 8u}) {
    std::uint64_t mod = (1ull << w) - 3;
    add(out, "cnt" + std::to_string(w) + "pass", "counter",
        counter(w, mod, mod + 1), Expected::kPass);
    std::uint64_t target = mod / 2;
    add(out, "cnt" + std::to_string(w) + "fail", "counter",
        counter(w, mod, target), Expected::kFail, static_cast<int>(target));
  }
  for (unsigned w : {4u, 6u}) {
    std::uint64_t mod = (1ull << w) - 5;
    add(out, "cnten" + std::to_string(w) + "pass", "counter-en",
        counter(w, mod, mod + 2, true), Expected::kPass);
    add(out, "cnten" + std::to_string(w) + "fail", "counter-en",
        counter(w, mod, 3, true), Expected::kFail, 3);
  }

  // Token rings: one-hot invariant (PASS) and reach-the-end (FAIL).
  for (unsigned n : {4u, 8u, 12u, 16u, 24u, 32u}) {
    add(out, "ring" + std::to_string(n) + "safe", "token-ring",
        token_ring(n, false), Expected::kPass);
    add(out, "ring" + std::to_string(n) + "reach", "token-ring",
        token_ring(n, true), Expected::kFail, static_cast<int>(n - 1));
  }

  // Arbiters.
  for (unsigned n : {3u, 4u, 6u, 8u}) {
    add(out, "arb" + std::to_string(n) + "ok", "arbiter", arbiter(n, false),
        Expected::kPass);
    add(out, "arb" + std::to_string(n) + "bug", "arbiter", arbiter(n, true),
        Expected::kFail, -1);
  }

  // Queues.
  for (unsigned c : {4u, 8u, 12u, 16u}) {
    add(out, "queue" + std::to_string(c) + "grd", "queue", queue(c, true),
        Expected::kPass);
    add(out, "queue" + std::to_string(c) + "ovf", "queue", queue(c, false),
        Expected::kFail, static_cast<int>(c + 1));
  }

  // Traffic lights.
  for (unsigned m : {2u, 4u, 8u, 16u})
    add(out, "tlc" + std::to_string(m), "traffic", traffic_light(m),
        Expected::kPass);

  // Gray counters.
  for (unsigned w : {4u, 6u, 8u})
    add(out, "gray" + std::to_string(w), "gray", gray_counter(w),
        Expected::kPass);

  // LFSRs: PASS (never returns to zero) plus FAIL values picked from the
  // orbit, with depth derived by simulation.
  for (unsigned w : {4u, 6u, 8u, 10u}) {
    add(out, "lfsr" + std::to_string(w) + "z", "lfsr", lfsr(w, 0),
        Expected::kPass);
    // Walk a handful of steps to find a state on the orbit.
    aig::Aig probe = lfsr(w, 1);  // value doesn't matter for stepping
    // Use simulation on a bad=state==V circuit for a V reached at ~2w steps.
    // The orbit of seed 1 after d steps is deterministic; sample d = 2w-1.
    // first_bad_depth confirms the depth below.
    // Try a few candidate values until one is on the orbit.
    for (std::uint64_t v = 1; v < (1ull << w); ++v) {
      aig::Aig cand = lfsr(w, v);
      int d = first_bad_depth(cand, 4 * w);
      if (d > static_cast<int>(w)) {
        add(out, "lfsr" + std::to_string(w) + "hit", "lfsr", std::move(cand),
            Expected::kFail, d);
        break;
      }
    }
  }

  // Feistel-style mixers (guarded PASS with wide cones).
  for (auto [w, m, seed] : {std::tuple<unsigned, unsigned, std::uint32_t>{8, 6, 11},
                            {12, 8, 12},
                            {16, 10, 13},
                            {16, 12, 14},
                            {12, 20, 15},
                            {16, 24, 16}})
    add(out, "feistel" + std::to_string(w) + "m" + std::to_string(m), "feistel",
        feistel_mixer(w, m, seed), Expected::kPass);

  // Combination locks: BMC-affine deep falsification and deep-diameter PASS.
  for (auto [len, bits] : {std::pair<unsigned, unsigned>{4, 2},
                           {8, 2},
                           {12, 3},
                           {16, 3},
                           {24, 4}}) {
    add(out, "lock" + std::to_string(len) + "open", "lock",
        combination_lock(len, bits, 0x90 + len), Expected::kFail,
        static_cast<int>(len));
    add(out, "lock" + std::to_string(len) + "safe", "lock",
        combination_lock(len, bits, 0x90 + len, /*unopenable=*/true),
        Expected::kPass);
  }

  // Vending machines.
  for (auto [credit, price] : {std::pair<unsigned, unsigned>{6, 2},
                               {10, 3},
                               {14, 4}}) {
    add(out, "vend" + std::to_string(credit) + "grd", "vending",
        vending(credit, price, true), Expected::kPass);
    add(out, "vend" + std::to_string(credit) + "ovr", "vending",
        vending(credit, price, false), Expected::kFail,
        static_cast<int>(credit + 1));
  }

  // Sticky pattern detectors.
  for (unsigned m : {3u, 6u, 10u, 14u}) {
    add(out, "sticky" + std::to_string(m), "sticky", sticky_detector(m, false),
        Expected::kFail, static_cast<int>(m));
    add(out, "sticky" + std::to_string(m) + "r", "sticky",
        sticky_detector(m, true), Expected::kFail, static_cast<int>(m));
  }

  // Deeper traffic lights and Gray counters for convergence-depth spread.
  for (unsigned m : {32u, 64u})
    add(out, "tlc" + std::to_string(m), "traffic", traffic_light(m),
        Expected::kPass);
  add(out, "gray10", "gray", gray_counter(10), Expected::kPass);
}

void add_industrial(std::vector<Instance>& out) {
  // Large pipelines; latch count ~ width * stages (+ overlay).
  struct Cfg {
    unsigned width, stages, variant, param;
    std::uint32_t seed;
  };
  const Cfg cfgs[] = {
      {24, 6, 0, 8, 101},   // ~150 FF, PASS
      {24, 6, 1, 6, 102},   // ~150 FF, FAIL @6
      {32, 8, 0, 10, 201},  // ~260 FF, PASS
      {32, 8, 1, 8, 202},   // ~260 FF, FAIL @8
      {40, 10, 0, 12, 301}, // ~400 FF, PASS
      {40, 10, 1, 10, 302}, // ~400 FF, FAIL @10
      {48, 12, 0, 8, 401},  // ~580 FF, PASS
      {48, 12, 1, 12, 402}, // ~580 FF, FAIL @12
      {56, 14, 0, 10, 501}, // ~790 FF, PASS
      {56, 14, 1, 9, 502},  // ~790 FF, FAIL @9
      {32, 5, 0, 16, 601},  // wide/shallow PASS
      {16, 20, 0, 6, 701},  // narrow/deep PASS
      {24, 8, 1, 14, 801},  // mid FAIL, deeper chain
      {40, 8, 0, 20, 901},  // deep counter PASS
      {28, 10, 1, 16, 111}, // mid FAIL
      {36, 12, 0, 24, 121}, // deep counter PASS
  };
  char tag = 'A';
  unsigned idx = 1;
  for (const Cfg& c : cfgs) {
    aig::Aig g = industrial(c.width, c.stages, c.variant, c.param, c.seed);
    Expected exp = c.variant == 0 ? Expected::kPass : Expected::kFail;
    int depth = c.variant == 1 ? static_cast<int>(c.param) : -1;
    add(out,
        std::string("industrial") + tag + std::to_string(idx), "industrial",
        std::move(g), exp, depth, /*industrial=*/true);
    if (++idx > 2) {
      idx = 1;
      ++tag;
    }
  }
}

}  // namespace

std::vector<Instance> make_suite() {
  std::vector<Instance> out;
  add_academic(out);
  add_industrial(out);
  return out;
}

std::vector<Instance> make_academic_suite(unsigned max_latches) {
  std::vector<Instance> out;
  add_academic(out);
  std::vector<Instance> filtered;
  for (auto& inst : out)
    if (inst.model.num_latches() <= max_latches)
      filtered.push_back(std::move(inst));
  return filtered;
}

std::vector<Instance> make_industrial_suite() {
  std::vector<Instance> out;
  add_industrial(out);
  return out;
}

}  // namespace itpseq::bench
