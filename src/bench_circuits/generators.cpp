#include "bench_circuits/generators.hpp"

#include <cassert>
#include <stdexcept>

#include "mc/sim.hpp"

namespace itpseq::bench {

using aig::Aig;
using aig::Lit;

Lit equals_const(Aig& g, const std::vector<Lit>& bits, std::uint64_t value) {
  std::vector<Lit> conj;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    bool bit = (value >> i) & 1;
    conj.push_back(bit ? bits[i] : aig::lit_not(bits[i]));
  }
  return g.make_and_many(conj);
}

std::vector<Lit> increment(Aig& g, const std::vector<Lit>& bits) {
  std::vector<Lit> out(bits.size());
  Lit carry = aig::kTrue;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    out[i] = g.make_xor(bits[i], carry);
    carry = g.make_and(bits[i], carry);
  }
  return out;
}

std::vector<Lit> mux(Aig& g, Lit sel, const std::vector<Lit>& then_v,
                     const std::vector<Lit>& else_v) {
  assert(then_v.size() == else_v.size());
  std::vector<Lit> out(then_v.size());
  for (std::size_t i = 0; i < then_v.size(); ++i)
    out[i] = g.make_ite(sel, then_v[i], else_v[i]);
  return out;
}

Lit at_least_two(Aig& g, const std::vector<Lit>& lits) {
  std::vector<Lit> pairs;
  for (std::size_t i = 0; i < lits.size(); ++i)
    for (std::size_t j = i + 1; j < lits.size(); ++j)
      pairs.push_back(g.make_and(lits[i], lits[j]));
  return g.make_or_many(pairs);
}

namespace {

/// Deterministic xorshift PRNG so generated circuits are reproducible.
struct Rng {
  std::uint32_t state;
  explicit Rng(std::uint32_t seed) : state(seed ? seed : 0xdeadbeefu) {}
  std::uint32_t next() {
    state ^= state << 13;
    state ^= state >> 17;
    state ^= state << 5;
    return state;
  }
  std::uint32_t below(std::uint32_t n) { return next() % n; }
};

std::vector<Lit> make_latches(Aig& g, unsigned n, const char* prefix) {
  std::vector<Lit> ls;
  for (unsigned i = 0; i < n; ++i)
    ls.push_back(g.add_latch(aig::LatchInit::kZero,
                             std::string(prefix) + std::to_string(i)));
  return ls;
}

}  // namespace

Aig counter(unsigned width, std::uint64_t modulo, std::uint64_t bad_value,
            bool with_enable) {
  if (modulo == 0 || width == 0 || width > 63)
    throw std::invalid_argument("counter: bad parameters");
  Aig g;
  Lit enable = with_enable ? g.add_input("enable") : aig::kTrue;
  std::vector<Lit> bits = make_latches(g, width, "cnt");
  Lit at_wrap = equals_const(g, bits, modulo - 1);
  std::vector<Lit> inc = increment(g, bits);
  // next = enable ? (at_wrap ? 0 : bits+1) : bits
  std::vector<Lit> zero(width, aig::kFalse);
  std::vector<Lit> advanced = mux(g, at_wrap, zero, inc);
  std::vector<Lit> nxt = with_enable ? mux(g, enable, advanced, bits) : advanced;
  for (unsigned i = 0; i < width; ++i) g.set_latch_next(bits[i], nxt[i]);
  g.add_output(equals_const(g, bits, bad_value), "bad");
  return g;
}

Aig token_ring(unsigned n, bool fail_reach) {
  if (n < 2) throw std::invalid_argument("token_ring: n >= 2");
  Aig g;
  std::vector<Lit> s;
  s.push_back(g.add_latch(aig::LatchInit::kOne, "tok0"));
  for (unsigned i = 1; i < n; ++i)
    s.push_back(g.add_latch(aig::LatchInit::kZero, "tok" + std::to_string(i)));
  for (unsigned i = 0; i < n; ++i)
    g.set_latch_next(s[i], s[(i + n - 1) % n]);  // token rotates forward
  if (fail_reach)
    g.add_output(s[n - 1], "bad_reach_last");
  else
    g.add_output(at_least_two(g, s), "bad_two_tokens");
  return g;
}

Aig arbiter(unsigned n, bool broken) {
  if (n < 2) throw std::invalid_argument("arbiter: n >= 2");
  Aig g;
  std::vector<Lit> req;
  for (unsigned i = 0; i < n; ++i) req.push_back(g.add_input("req" + std::to_string(i)));
  std::vector<Lit> ptr;
  ptr.push_back(g.add_latch(aig::LatchInit::kOne, "ptr0"));
  for (unsigned i = 1; i < n; ++i)
    ptr.push_back(g.add_latch(aig::LatchInit::kZero, "ptr" + std::to_string(i)));
  for (unsigned i = 0; i < n; ++i)
    g.set_latch_next(ptr[i], ptr[(i + n - 1) % n]);
  std::vector<Lit> grant(n);
  for (unsigned i = 0; i < n; ++i) grant[i] = g.make_and(ptr[i], req[i]);
  if (broken) grant[0] = req[0];  // station 0 bypasses the pointer
  g.add_output(at_least_two(g, grant), "bad_two_grants");
  return g;
}

Aig queue(unsigned capacity, bool guarded) {
  unsigned width = 1;
  while ((1ull << width) < static_cast<std::uint64_t>(capacity) + 2) ++width;
  Aig g;
  Lit push = g.add_input("push");
  Lit pop = g.add_input("pop");
  std::vector<Lit> cnt = make_latches(g, width, "occ");
  Lit full = equals_const(g, cnt, capacity);
  Lit empty = equals_const(g, cnt, 0);
  Lit max_val = equals_const(g, cnt, (1ull << width) - 1);
  Lit eff_push =
      guarded ? g.make_and(push, aig::lit_not(full)) : g.make_and(push, aig::lit_not(max_val));
  Lit eff_pop = g.make_and(pop, aig::lit_not(empty));
  // Only one of push/pop per cycle; pushes win ties.
  Lit do_push = eff_push;
  Lit do_pop = g.make_and(eff_pop, aig::lit_not(eff_push));
  std::vector<Lit> inc = increment(g, cnt);
  // decrement: cnt - 1 = invert(increment(invert(cnt))) — build directly:
  std::vector<Lit> dec(width);
  {
    Lit borrow = aig::kTrue;
    for (unsigned i = 0; i < width; ++i) {
      dec[i] = g.make_xor(cnt[i], borrow);
      borrow = g.make_and(aig::lit_not(cnt[i]), borrow);
    }
  }
  std::vector<Lit> nxt = mux(g, do_push, inc, mux(g, do_pop, dec, cnt));
  for (unsigned i = 0; i < width; ++i) g.set_latch_next(cnt[i], nxt[i]);
  g.add_output(equals_const(g, cnt, capacity + 1), "bad_overflow");
  return g;
}

Aig traffic_light(unsigned m) {
  if (m < 1) throw std::invalid_argument("traffic_light: m >= 1");
  unsigned width = 1;
  while ((1ull << width) < m) ++width;
  Aig g;
  // Phase: 0 = NS green, 1 = NS yellow, 2 = EW green, 3 = EW yellow.
  std::vector<Lit> phase = make_latches(g, 2, "phase");
  std::vector<Lit> timer = make_latches(g, width, "timer");
  Lit expired = equals_const(g, timer, m - 1);
  std::vector<Lit> t_inc = increment(g, timer);
  std::vector<Lit> t_zero(width, aig::kFalse);
  std::vector<Lit> t_nxt = mux(g, expired, t_zero, t_inc);
  for (unsigned i = 0; i < width; ++i) g.set_latch_next(timer[i], t_nxt[i]);
  std::vector<Lit> p_inc = increment(g, phase);
  std::vector<Lit> p_nxt = mux(g, expired, p_inc, phase);
  for (unsigned i = 0; i < 2; ++i) g.set_latch_next(phase[i], p_nxt[i]);
  // Registered green indicators.
  Lit is_ns_green = equals_const(g, p_nxt, 0);
  Lit is_ew_green = equals_const(g, p_nxt, 2);
  Lit g_ns = g.add_latch(aig::LatchInit::kOne, "green_ns");
  Lit g_ew = g.add_latch(aig::LatchInit::kZero, "green_ew");
  g.set_latch_next(g_ns, is_ns_green);
  g.set_latch_next(g_ew, is_ew_green);
  g.add_output(g.make_and(g_ns, g_ew), "bad_both_green");
  return g;
}

Aig gray_counter(unsigned width) {
  if (width < 2) throw std::invalid_argument("gray_counter: width >= 2");
  Aig g;
  std::vector<Lit> bits = make_latches(g, width, "bin");
  std::vector<Lit> nxt = increment(g, bits);
  for (unsigned i = 0; i < width; ++i) g.set_latch_next(bits[i], nxt[i]);
  // Registered Gray view of the binary counter.
  std::vector<Lit> gray = make_latches(g, width, "gray");
  auto to_gray = [&](const std::vector<Lit>& b) {
    std::vector<Lit> out(width);
    for (unsigned i = 0; i + 1 < width; ++i) out[i] = g.make_xor(b[i], b[i + 1]);
    out[width - 1] = b[width - 1];
    return out;
  };
  std::vector<Lit> gray_next = to_gray(nxt);
  for (unsigned i = 0; i < width; ++i) g.set_latch_next(gray[i], gray_next[i]);
  // bad = the registered Gray word will change in >= 2 bit positions.
  std::vector<Lit> diff(width);
  for (unsigned i = 0; i < width; ++i) diff[i] = g.make_xor(gray[i], gray_next[i]);
  g.add_output(at_least_two(g, diff), "bad_multi_bit_change");
  return g;
}

Aig lfsr(unsigned width, std::uint64_t fail_value) {
  if (width < 3 || width > 24) throw std::invalid_argument("lfsr: width 3..24");
  Aig g;
  std::vector<Lit> s;
  s.push_back(g.add_latch(aig::LatchInit::kOne, "lfsr0"));
  for (unsigned i = 1; i < width; ++i)
    s.push_back(g.add_latch(aig::LatchInit::kZero, "lfsr" + std::to_string(i)));
  Lit feedback = g.make_xor(s[width - 1], s[width - 2]);
  if (width >= 6) feedback = g.make_xor(feedback, s[0]);
  g.set_latch_next(s[0], feedback);
  for (unsigned i = 1; i < width; ++i) g.set_latch_next(s[i], s[i - 1]);
  g.add_output(equals_const(g, s, fail_value), "bad_value");
  return g;
}

Aig feistel_mixer(unsigned width, unsigned m, std::uint32_t seed) {
  if (width < 2) throw std::invalid_argument("feistel_mixer: width >= 2");
  Aig g;
  Rng rng(seed);
  Lit key = g.add_input("key");
  std::vector<Lit> left = make_latches(g, width, "L");
  std::vector<Lit> right = make_latches(g, width, "R");
  // F: a small random AND/XOR cloud of R and the key bit.
  std::vector<Lit> pool = right;
  pool.push_back(key);
  for (unsigned r = 0; r < 2 * width; ++r) {
    Lit a = pool[rng.below(static_cast<std::uint32_t>(pool.size()))];
    Lit b = pool[rng.below(static_cast<std::uint32_t>(pool.size()))];
    pool.push_back(rng.below(2) ? g.make_xor(a, b)
                                : g.make_and(aig::lit_xor(a, rng.below(2)), b));
  }
  std::vector<Lit> f(width);
  for (unsigned i = 0; i < width; ++i)
    f[i] = pool[pool.size() - 1 - (i % (2 * width))];
  for (unsigned i = 0; i < width; ++i) {
    g.set_latch_next(left[i], right[i]);
    g.set_latch_next(right[i], g.make_xor(left[i], f[i]));
  }
  // Guarded property: a modulo-m round counter; bad = count == m.
  unsigned cw = 1;
  while ((1ull << cw) < m + 1) ++cw;
  std::vector<Lit> cnt = make_latches(g, cw, "round");
  Lit wrap = equals_const(g, cnt, m - 1);
  std::vector<Lit> zero(cw, aig::kFalse);
  std::vector<Lit> nxt = mux(g, wrap, zero, increment(g, cnt));
  for (unsigned i = 0; i < cw; ++i) g.set_latch_next(cnt[i], nxt[i]);
  // The mixer feeds the bad cone so abstraction has something to prune:
  // bad = (count == m) AND (mixer parity or true) — keep it PASS by the
  // counter guard alone.
  Lit parity = aig::kTrue;
  for (unsigned i = 0; i < width; ++i) parity = g.make_xor(parity, right[i]);
  g.add_output(g.make_and(equals_const(g, cnt, m), g.make_or(parity, left[0])),
               "bad_round_overflow");
  return g;
}

Aig industrial(unsigned width, unsigned stages, unsigned variant,
               unsigned param, std::uint32_t seed) {
  if (width < 4 || stages < 1)
    throw std::invalid_argument("industrial: width >= 4, stages >= 1");
  Aig g;
  Rng rng(seed);
  std::vector<Lit> ins;
  for (unsigned i = 0; i < width / 2; ++i)
    ins.push_back(g.add_input("pi" + std::to_string(i)));

  // Pipeline substrate: stages x width registers with random clouds.
  std::vector<Lit> prev = ins;
  std::vector<std::vector<Lit>> regs(stages);
  for (unsigned st = 0; st < stages; ++st) {
    regs[st] = make_latches(g, width, ("p" + std::to_string(st) + "_").c_str());
    // Random cloud from prev + this stage's registers.
    std::vector<Lit> pool = prev;
    for (Lit l : regs[st]) pool.push_back(l);
    for (unsigned r = 0; r < 2 * width; ++r) {
      Lit a = pool[rng.below(static_cast<std::uint32_t>(pool.size()))];
      Lit b = pool[rng.below(static_cast<std::uint32_t>(pool.size()))];
      switch (rng.below(3)) {
        case 0:
          pool.push_back(g.make_and(a, b));
          break;
        case 1:
          pool.push_back(g.make_xor(a, b));
          break;
        default:
          pool.push_back(g.make_or(aig::lit_xor(a, rng.below(2)), b));
          break;
      }
    }
    for (unsigned i = 0; i < width; ++i)
      g.set_latch_next(regs[st][i],
                       pool[pool.size() - 1 - rng.below(2 * width)]);
    prev = regs[st];
  }

  if (variant == 0) {
    // PASS overlay: guarded modulo counter, enable tapped from the cloud.
    unsigned m = param == 0 ? 8 : param;
    unsigned cw = 1;
    while ((1ull << cw) < static_cast<std::uint64_t>(m) + 1) ++cw;
    std::vector<Lit> cnt = make_latches(g, cw, "ov_cnt");
    Lit enable = g.make_or(prev[0], ins[0]);
    Lit wrap = equals_const(g, cnt, m - 1);
    std::vector<Lit> zero(cw, aig::kFalse);
    std::vector<Lit> advanced = mux(g, wrap, zero, increment(g, cnt));
    std::vector<Lit> nxt = mux(g, enable, advanced, cnt);
    for (unsigned i = 0; i < cw; ++i) g.set_latch_next(cnt[i], nxt[i]);
    g.add_output(g.make_and(equals_const(g, cnt, m), g.make_or(prev[1], ins[0])),
                 "bad_guarded_counter");
  } else {
    // FAIL overlay: a match chain of `param` registers advanced by an input
    // pattern; bad at exactly depth `param`.
    unsigned d = param == 0 ? 4 : param;
    Lit pattern = g.make_and(ins[0], ins.size() > 1 ? ins[1] : aig::kTrue);
    Lit prev_m = aig::kTrue;
    for (unsigned i = 0; i < d; ++i) {
      Lit mreg = g.add_latch(aig::LatchInit::kZero, "match" + std::to_string(i));
      g.set_latch_next(mreg, g.make_and(prev_m, pattern));
      prev_m = mreg;
    }
    g.add_output(prev_m, "bad_match_chain");
  }
  return g;
}

Aig combination_lock(unsigned length, unsigned bits, std::uint32_t seed,
                     bool unopenable) {
  if (length < 1 || bits < 1 || bits > 8)
    throw std::invalid_argument("combination_lock: length >= 1, bits 1..8");
  Aig g;
  Rng rng(seed);
  std::vector<Lit> in;
  for (unsigned b = 0; b < bits; ++b) in.push_back(g.add_input("key" + std::to_string(b)));
  // One-hot stage registers s_0..s_length (s_length = open).
  std::vector<Lit> stage;
  stage.push_back(g.add_latch(aig::LatchInit::kOne, "s0"));
  for (unsigned i = 1; i <= length; ++i)
    stage.push_back(g.add_latch(aig::LatchInit::kZero, "s" + std::to_string(i)));
  // Per-stage key match.
  std::vector<Lit> match(length);
  for (unsigned i = 0; i < length; ++i) {
    std::uint32_t key = rng.next() & ((1u << bits) - 1);
    std::vector<Lit> conj;
    for (unsigned b = 0; b < bits; ++b)
      conj.push_back((key >> b) & 1 ? in[b] : aig::lit_not(in[b]));
    if (unopenable && i == length / 2) {
      conj.push_back(in[0]);
      conj.push_back(aig::lit_not(in[0]));  // contradictory stage
    }
    match[i] = g.make_and_many(conj);
  }
  // stage 0 next: restart when any active stage mismatches, or stay closed.
  std::vector<Lit> mismatches;
  for (unsigned i = 0; i < length; ++i)
    mismatches.push_back(g.make_and(stage[i], aig::lit_not(match[i])));
  Lit restart = g.make_or_many(mismatches);
  g.set_latch_next(stage[0], g.make_or(restart, g.make_and(stage[0], aig::lit_not(match[0]))));
  for (unsigned i = 1; i <= length; ++i) {
    Lit advance = g.make_and(stage[i - 1], match[i - 1]);
    Lit hold = i == length ? g.make_and(stage[i], aig::kTrue)  // open is sticky
                           : aig::kFalse;
    g.set_latch_next(stage[i], g.make_or(advance, hold));
  }
  g.add_output(stage[length], "bad_open");
  return g;
}

Aig vending(unsigned max_credit, unsigned price, bool guarded) {
  if (price == 0 || max_credit < price)
    throw std::invalid_argument("vending: price >= 1, max_credit >= price");
  unsigned width = 1;
  while ((1ull << width) < static_cast<std::uint64_t>(max_credit) + 2) ++width;
  Aig g;
  Lit coin = g.add_input("coin");
  Lit vend = g.add_input("vend");
  std::vector<Lit> credit = make_latches(g, width, "credit");
  Lit at_max = equals_const(g, credit, max_credit);
  Lit sat_max = equals_const(g, credit, (1ull << width) - 1);
  // can_vend: credit >= price, approximated exactly via comparator.
  Lit ge_price = aig::kFalse;
  {
    // credit >= price: ripple compare from MSB.
    Lit gt = aig::kFalse, eq = aig::kTrue;
    for (int i = static_cast<int>(width) - 1; i >= 0; --i) {
      bool pbit = (price >> i) & 1;
      Lit cbit = credit[i];
      gt = g.make_or(gt, g.make_and(eq, g.make_and(cbit, pbit ? aig::kFalse : aig::kTrue)));
      eq = g.make_and(eq, pbit ? cbit : aig::lit_not(cbit));
    }
    ge_price = g.make_or(gt, eq);
  }
  Lit do_coin = guarded ? g.make_and(coin, aig::lit_not(at_max))
                        : g.make_and(coin, aig::lit_not(sat_max));
  Lit do_vend = g.make_and(g.make_and(vend, ge_price), aig::lit_not(do_coin));
  std::vector<Lit> inc = increment(g, credit);
  // credit - price.
  std::vector<Lit> dec(width);
  {
    Lit borrow = aig::kFalse;
    for (unsigned i = 0; i < width; ++i) {
      bool pbit = (price >> i) & 1;
      Lit p = pbit ? aig::kTrue : aig::kFalse;
      Lit diff = g.make_xor(g.make_xor(credit[i], p), borrow);
      Lit b1 = g.make_and(aig::lit_not(credit[i]), g.make_or(p, borrow));
      Lit b2 = g.make_and(p, borrow);
      borrow = g.make_or(b1, b2);
      dec[i] = diff;
    }
  }
  std::vector<Lit> nxt = mux(g, do_coin, inc, mux(g, do_vend, dec, credit));
  for (unsigned i = 0; i < width; ++i) g.set_latch_next(credit[i], nxt[i]);
  g.add_output(equals_const(g, credit, max_credit + 1), "bad_over_credit");
  return g;
}

Aig sticky_detector(unsigned m, bool resettable) {
  if (m < 1) throw std::invalid_argument("sticky_detector: m >= 1");
  Aig g;
  Lit a = g.add_input("a");
  Lit b = g.add_input("b");
  Lit clr = resettable ? g.add_input("clr") : aig::kFalse;
  Lit pattern = g.make_and(a, b);
  Lit chain = aig::kTrue;
  for (unsigned i = 0; i < m; ++i) {
    Lit reg = g.add_latch(aig::LatchInit::kZero, "st" + std::to_string(i));
    Lit advance = g.make_and(chain, pattern);
    g.set_latch_next(reg, g.make_and(advance, aig::lit_not(clr)));
    chain = reg;
  }
  Lit bad = g.add_latch(aig::LatchInit::kZero, "sticky_bad");
  g.set_latch_next(bad, g.make_or(bad, chain));
  g.add_output(g.make_or(bad, chain), "bad_pattern_held");
  return g;
}

int first_bad_depth(const Aig& g, unsigned max_steps) {
  mc::Simulator sim(g, 0);
  std::vector<bool> state = sim.reset_state();
  std::vector<bool> no_inputs(g.num_inputs(), false);
  for (unsigned t = 0; t <= max_steps; ++t) {
    if (sim.bad(state, no_inputs)) return static_cast<int>(t);
    state = sim.step(state, no_inputs);
  }
  return -1;
}

}  // namespace itpseq::bench
