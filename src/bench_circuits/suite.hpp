// suite.hpp — the benchmark suite: ~100 named instances standing in for the
// paper's academic + industrial selection (Table I / Fig. 6 / Fig. 7).
#pragma once

#include <string>
#include <vector>

#include "aig/aig.hpp"

namespace itpseq::bench {

/// Analytically known verdict of an instance, used by tests and by the
/// benchmark tables for sanity-checking engine output.
enum class Expected : std::uint8_t { kPass, kFail, kOpen };

struct Instance {
  std::string name;
  std::string family;
  aig::Aig model;
  Expected expected = Expected::kOpen;
  /// For kFail with a deterministic shallowest counterexample: its depth
  /// (-1 when unknown).
  int fail_depth = -1;
  /// Rough size class; large instances are excluded from BDD columns.
  bool industrial = false;
};

/// Full suite (about 100 instances).
std::vector<Instance> make_suite();

/// Subset: small/mid instances suitable for exhaustive testing with the BDD
/// ground-truth engine (every instance has <= max_latches latches).
std::vector<Instance> make_academic_suite(unsigned max_latches = 40);

/// Subset: the large pipelined instances ("industrial" rows of Table I).
std::vector<Instance> make_industrial_suite();

}  // namespace itpseq::bench
