// pdr.hpp — property-directed reachability (IC3/PDR) engine.
//
// The strongest known complement to the interpolation engines: instead of
// one monolithic unrolling per bound, PDR maintains a *frame trace*
//
//   F_0 = S0,  F_1, ..., F_K      with  F_i ⊆ F_{i+1},
//                                       F_i ∧ T ⇒ F_{i+1}',
//                                       F_i ⇒ ¬bad  (i ≤ K)
//
// where each F_i is a set of clauses over the latches (F_i's clause set
// contains F_{i+1}'s).  Bad states found in F_K become *proof obligations*
// handled depth-first through a priority queue.  Two cube-shrinking layers
// keep the obligations small:
//
//   * Lifting: every state pulled out of a SAT model is reduced from a
//     full latch assignment to a short cube by ternary simulation
//     (mc/ternary.hpp, the FMCAD'11 technique): latches are X-ed out while
//     the query roots — bad cone / successor next-state cone / invariant
//     constraints — retain defined values (EngineOptions::pdr_lift).
//   * Generalization: blocked obligations are minimized by relative
//     induction (drop-literal search seeded with the SAT solver's
//     failed-assumption core); with EngineOptions::pdr_ctg the search runs
//     the FMCAD'13 ctgDown algorithm, which blocks counterexample-to-
//     generalization states at their own frames (bounded by pdr_ctg_depth
//     and pdr_max_ctgs) and joins with unblockable predecessors, yielding
//     markedly shorter lemmas on circuits with converging control.
//
// Generalized lemmas are pushed to the highest frame where they stay
// inductive.  When two adjacent frames have equal clause sets the trace is
// a fixpoint: F_i is an inductive invariant and a PASS Certificate is
// emitted (checkable via mc/certify.hpp).  When an obligation chain
// reaches the initial states, the chain's recorded inputs form a concrete
// counterexample Trace.
//
// All queries run on a single incremental SAT solver holding one copy of
// the transition relation (frame 0 -> frame 1 of a cnf::Unroller); frame
// membership, initial-state constraints and invariant constraints are
// switched per query with activation literals and solve_assuming(), so no
// re-encoding ever happens.  This is exactly the workload the incremental
// solver API (failed_assumptions() cores) was built for — and a workload
// profile opposite to ITPSEQ: many small queries instead of few huge ones,
// which is why the portfolio wants both.
#pragma once

#include <cstdint>
#include <vector>

#include "mc/engine.hpp"

namespace itpseq::mc {

/// Counters specific to the PDR engine, exposed for benchmarks and tests
/// (frames/s and queries/s are the engine's natural throughput measures).
struct PdrStats {
  std::uint64_t queries = 0;         ///< incremental SAT queries
  std::uint64_t obligations = 0;     ///< proof obligations handled
  std::uint64_t lemmas = 0;          ///< clauses added to the frame trace
  std::uint64_t lemma_literals = 0;  ///< total literals over added lemmas
  std::uint64_t gen_dropped = 0;     ///< literals removed by generalization
  std::uint64_t lift_dropped = 0;    ///< literals removed by ternary lifting
  std::uint64_t lift_kept = 0;       ///< literals surviving ternary lifting
  std::uint64_t ctg_blocked = 0;     ///< CTG states blocked at their frame
  std::uint64_t ctg_abandoned = 0;   ///< CTG states given up on (joined)
  std::uint64_t subsumed = 0;        ///< lemmas deleted by subsumption
  std::uint64_t propagated = 0;      ///< lemmas pushed forward a frame
  std::uint64_t invariant_lemmas = 0;  ///< clauses proven inductive (F_inf)
  std::uint64_t exch_published = 0;  ///< lemmas handed to the exchange hub
  std::uint64_t exch_consumed = 0;   ///< foreign lemmas accepted into frames
  unsigned frames = 0;               ///< final frontier K
};

class PdrEngine : public Engine {
 public:
  PdrEngine(const aig::Aig& model, std::size_t prop, EngineOptions opts)
      : Engine(model, prop, opts) {}
  const char* name() const override { return "PDR"; }

  /// Valid after run().
  const PdrStats& pdr_stats() const { return pstats_; }

 protected:
  void execute(EngineResult& out) override;

 private:
  PdrStats pstats_;
};

}  // namespace itpseq::mc
