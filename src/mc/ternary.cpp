// ternary.cpp — see ternary.hpp.
#include "mc/ternary.hpp"

namespace itpseq::mc {

TernarySim::TernarySim(const aig::Aig& model, const std::vector<aig::Lit>& roots)
    : model_(model),
      values_(model.num_vars(), TernVal::kX),
      pos_(model.num_vars(), 0),
      watch_(model.num_vars(), 0),
      stamp_(model.num_vars(), 0) {
  topo_ = model.cone(roots);
  for (std::size_t i = 0; i < topo_.size(); ++i) {
    pos_[topo_[i]] = static_cast<std::uint32_t>(i + 1);
    if (model_.is_and(topo_[i])) ++cone_ands_;
  }
  values_[0] = TernVal::kFalse;  // the constant variable
}

void TernarySim::set_watches(const std::vector<aig::Lit>& roots) {
  for (aig::Var v : watched_vars_) watch_[v] = 0;
  watched_vars_.clear();
  undef_watched_ = 0;
  for (aig::Lit r : roots) {
    aig::Var v = aig::lit_var(r);
    if (v == 0) continue;  // constants are always defined
    if (watch_[v]++ == 0) {
      watched_vars_.push_back(v);
      if (values_[v] == TernVal::kX) ++undef_watched_;
    }
  }
}

void TernarySim::set_value(aig::Var v, TernVal nv, bool trail) {
  TernVal ov = values_[v];
  if (ov == nv) return;
  if (trail) {
    trail_.emplace_back(v, ov);
    stamp_[v] = gen_;
  }
  values_[v] = nv;
  if (watch_[v] != 0) {
    if (nv == TernVal::kX && ov != TernVal::kX) ++undef_watched_;
    if (nv != TernVal::kX && ov == TernVal::kX) --undef_watched_;
  }
}

void TernarySim::set_latch(std::size_t i, TernVal v) {
  set_value(aig::lit_var(model_.latch(i)), v, false);
}

void TernarySim::set_input(std::size_t i, TernVal v) {
  set_value(aig::lit_var(model_.input(i)), v, false);
}

void TernarySim::assign(const std::vector<bool>& latches,
                        const std::vector<bool>& inputs) {
  for (aig::Var v : topo_) {
    if (model_.is_latch(v)) {
      std::size_t li = model_.latch_index(v);
      set_value(v, tern_of(li < latches.size() && latches[li]), false);
    } else if (model_.is_input(v)) {
      std::size_t ii = model_.input_index(v);
      set_value(v, tern_of(ii < inputs.size() && inputs[ii]), false);
    }
  }
  simulate();
}

void TernarySim::simulate() {
  for (aig::Var v : topo_) {
    if (!model_.is_and(v)) continue;
    const aig::Node& n = model_.node(v);
    TernVal a = value(n.fanin0);
    TernVal b = value(n.fanin1);
    set_value(v, tern_and(a, b), false);
  }
}

TernVal TernarySim::value(aig::Lit l) const {
  if (l == aig::kFalse) return TernVal::kFalse;
  if (l == aig::kTrue) return TernVal::kTrue;
  TernVal v = values_[aig::lit_var(l)];
  return aig::lit_sign(l) ? tern_not(v) : v;
}

bool TernarySim::try_latch_x(std::size_t i) {
  aig::Var v = aig::lit_var(model_.latch(i));
  if (values_[v] == TernVal::kX) return true;  // nothing to do
  ++gen_;
  trail_.clear();
  set_value(v, TernVal::kX, true);
  if (pos_[v] != 0) {
    // Walk the topological order after the latch, re-evaluating exactly the
    // AND nodes with a changed fanin.  Ternary AND is monotone under
    // leaf-to-X moves, so one forward pass reaches the fixpoint.
    for (std::size_t p = pos_[v]; p < topo_.size(); ++p) {
      aig::Var u = topo_[p];
      if (!model_.is_and(u)) continue;
      const aig::Node& n = model_.node(u);
      aig::Var a = aig::lit_var(n.fanin0);
      aig::Var b = aig::lit_var(n.fanin1);
      if (stamp_[a] != gen_ && stamp_[b] != gen_) continue;
      set_value(u, tern_and(value(n.fanin0), value(n.fanin1)), true);
    }
  }
  if (undef_watched_ == 0) return true;  // commit
  // A watched root lost its value: roll back in reverse order.
  for (auto it = trail_.rbegin(); it != trail_.rend(); ++it)
    set_value(it->first, it->second, false);
  return false;
}

}  // namespace itpseq::mc
