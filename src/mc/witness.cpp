#include "mc/witness.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace itpseq::mc {

void write_witness(const Trace& trace, std::size_t prop, std::ostream& out) {
  out << "1\n";
  out << 'b' << prop << '\n';
  for (bool b : trace.initial_latches) out << (b ? '1' : '0');
  out << '\n';
  for (const auto& frame : trace.inputs) {
    for (bool b : frame) out << (b ? '1' : '0');
    out << '\n';
  }
  out << ".\n";
}

namespace {

std::vector<bool> parse_bits(const std::string& line, std::size_t expected,
                             const char* what) {
  if (line.size() != expected)
    throw std::runtime_error(std::string("witness: bad ") + what +
                             " width: got " + std::to_string(line.size()) +
                             ", expected " + std::to_string(expected));
  std::vector<bool> bits(line.size());
  for (std::size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (c != '0' && c != '1' && c != 'x' && c != 'X')
      throw std::runtime_error("witness: bad character in bit line");
    bits[i] = c == '1';
  }
  return bits;
}

}  // namespace

Trace read_witness(std::istream& in, std::size_t num_latches,
                   std::size_t num_inputs) {
  std::string line;
  // Status line (skip optional comments).
  while (std::getline(in, line) && (line.empty() || line[0] == 'c')) {
  }
  if (line != "1")
    throw std::runtime_error("witness: expected status '1', got '" + line + "'");
  if (!std::getline(in, line) || line.empty() || (line[0] != 'b' && line[0] != 'j'))
    throw std::runtime_error("witness: expected property line");
  Trace t;
  if (!std::getline(in, line)) throw std::runtime_error("witness: missing init line");
  t.initial_latches = parse_bits(line, num_latches, "latch line");
  while (std::getline(in, line)) {
    if (line == ".") return t;
    // An empty line is a frame for zero-input models, noise otherwise.
    if (line.empty() && num_inputs > 0) continue;
    if (!line.empty() && line[0] == 'c') continue;
    t.inputs.push_back(parse_bits(line, num_inputs, "input line"));
  }
  throw std::runtime_error("witness: missing '.' terminator");
}

}  // namespace itpseq::mc
