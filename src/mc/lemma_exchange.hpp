// lemma_exchange.hpp — thread-safe cross-engine lemma exchange for the
// portfolio (ROADMAP: "PDR/ITPSEQ lemma sharing").
//
// The hub stores *lemmas*: clauses over the model's latches, each carrying a
// validity grade that fixes exactly what a consumer may assume:
//
//   kInvariant  The clause holds in every reachable state.  It is satisfied
//               by all initial states and is inductive relative to the
//               conjunction of the kInvariant lemmas published before it
//               (publishers must prove this; PDR does it with an F_inf
//               consecution query).  Consumers may conjoin it anywhere a
//               model invariant constraint would be sound: every frame of a
//               concretely-rooted BMC unrolling, the A-partitions of
//               interpolation instances, the interpolant matrix columns.
//
//   kFrame      The clause holds in every state reachable within `bound`
//               steps (PDR frame semantics: a clause of F_j).  Consumers may
//               assert it at unrolling frames t <= bound of an unrolling
//               rooted in the *exact* initial states, and nowhere else —
//               deeper frames or over-approximate prefixes would be unsound.
//
//   kCandidate  No validity promise at all (interpolation engines publish
//               syntactic latch clauses of their interpolants this way).
//               Consumers MUST verify a candidate before relying on it; PDR
//               does so with an ordinary relative-induction query, which
//               makes candidate injection exactly as sound as its own lemma
//               generation.
//
// Because every consumption path above filters through a soundness argument
// (or an explicit SAT check), exchanged lemmas can prune work but can never
// change a verdict — the property tests/portfolio_test.cpp cross-checks with
// the exchange disabled.
//
// Concurrency: publish() and fetch() take an internal mutex; the store is
// append-only so subscribers track their position with a plain cursor and
// never block each other for long.  The hub is owned by check_portfolio and
// outlives every member engine (engines hold a non-owning pointer via
// EngineOptions::exchange).
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <vector>

#include "aig/aig.hpp"
#include "cnf/unroller.hpp"

namespace itpseq::mc {

/// A literal over model latches: latch index << 1 | sign, sign = 1 meaning
/// the latch appears negated in the clause.
using LatchLit = std::uint32_t;

constexpr std::size_t latch_lit_index(LatchLit l) { return l >> 1; }
constexpr bool latch_lit_sign(LatchLit l) { return (l & 1u) != 0; }
constexpr LatchLit mk_latch_lit(std::size_t latch, bool sign) {
  return static_cast<LatchLit>((latch << 1) | (sign ? 1u : 0u));
}

enum class LemmaGrade : std::uint8_t { kInvariant, kFrame, kCandidate };

const char* to_string(LemmaGrade g);

struct Lemma {
  std::vector<LatchLit> clause;  ///< disjunction over latch literals, sorted
  LemmaGrade grade = LemmaGrade::kCandidate;
  unsigned bound = 0;  ///< kFrame only: valid for states reachable <= bound
  std::uint8_t source = 0;  ///< publisher slot, for attribution/stats only
};

/// Aggregate hub counters (valid snapshot under concurrent publishing).
struct LemmaExchangeStats {
  std::uint64_t published = 0;  ///< lemmas accepted into the store
  std::uint64_t rejected = 0;   ///< duplicates / tautologies / over capacity
  /// Distinct lemmas delivered to at least one *foreign* subscriber —
  /// re-deliveries to more subscribers, restarted sequential members
  /// re-reading the store, and publishers skipping their own lemmas do
  /// not inflate it.
  std::uint64_t fetched = 0;
};

class LemmaExchange {
 public:
  /// `capacity` bounds the store; once full, further publishes are dropped
  /// (sharing is best-effort — dropping lemmas is always sound).
  explicit LemmaExchange(std::size_t num_latches, std::size_t capacity = 65536);

  /// Normalize (sort, strip duplicate literals) and store the lemma.
  /// Returns false for tautologies, out-of-range literals, re-publishes
  /// that are not a significant upgrade of the stored copy (see seen_),
  /// and capacity overflow.
  bool publish(Lemma lemma);

  /// Copy out every lemma with index >= *cursor and advance the cursor.
  /// Each subscriber owns its cursor (start at 0); the store is append-only,
  /// so a subscriber sees every lemma exactly once, in publish order.
  /// With `self` != 0 the subscriber's own publications are skipped (and
  /// not counted as fetched), so stats.fetched is foreign deliveries only.
  std::vector<Lemma> fetch(std::size_t& cursor, std::uint8_t self = 0);

  /// Copy out every *live* lemma (tombstoned/superseded entries skipped) —
  /// the checkpoint writer's view of the store (mc/lemma_store.hpp).  One
  /// O(n) copy under the hub lock; publishers racing the copy are neither
  /// blocked for long nor partially observed.
  std::vector<Lemma> export_lemmas() const;

  std::size_t size() const;
  LemmaExchangeStats stats() const;

 private:
  const std::size_t num_latches_;
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<Lemma> lemmas_;
  /// Dedup index: per normalized clause, its strongest published strength
  /// and store index.  Re-publishes are accepted only as significant
  /// upgrades (promotion to kInvariant, a kFrame bound at least doubling,
  /// or any graded copy of a former kCandidate); the superseded copy is
  /// tombstoned so subscribers never receive both versions.
  std::map<std::vector<LatchLit>, std::pair<std::uint32_t, std::size_t>> seen_;
  std::vector<char> delivered_;  // per store index: reached a foreign reader
  std::vector<char> dead_;       // per store index: superseded by an upgrade
  LemmaExchangeStats stats_;
};

/// Engine-local subscriber state: drains the hub into per-grade buckets and
/// skips the engine's own publications.  Buckets are append-only, so an
/// engine can instantiate lemmas incrementally by remembering how far into
/// each bucket it has processed.
struct LemmaFeed {
  LemmaFeed() = default;
  LemmaFeed(LemmaExchange* h, std::uint8_t s) : hub(h), self(s) {}

  LemmaExchange* hub = nullptr;
  std::uint8_t self = 0;  ///< own EngineOptions::exchange_source slot
  std::size_t cursor = 0;
  std::vector<Lemma> invariants;
  std::vector<Lemma> frames;
  std::vector<Lemma> candidates;

  /// Pull new foreign lemmas from the hub; returns how many arrived.
  std::size_t poll();
};

/// Assert `l.clause` over the latch literals of frame `t` of an unrolling
/// (clauses and on-demand gate cones carry partition `label`).  The caller
/// owns the soundness argument — see the grade rules above.
void assert_lemma_clause(cnf::Unroller& unr, const Lemma& l, unsigned t,
                         std::uint32_t label);

/// Build the clause as a predicate in an AIG whose input i stands for model
/// latch i (e.g. a StateSpace graph): OR over the latch-input literals.
aig::Lit latch_clause_pred(aig::Aig& g, const std::vector<LatchLit>& clause);

/// Decompose the top-level conjunction of `root` (a predicate in an AIG
/// whose input i stands for model latch i, e.g. a StateSpace graph) into
/// clauses over latch literals: conjuncts that are single inputs become unit
/// clauses, negated AND-trees over inputs become disjunctions.  Conjuncts
/// with any other structure are skipped.  At most `max_clauses` clauses of
/// at most `max_len` literals are returned — the cheap, syntactic slice of
/// an interpolant suitable for publishing as kCandidate lemmas.
std::vector<std::vector<LatchLit>> extract_latch_clauses(
    const aig::Aig& g, aig::Lit root, std::size_t max_clauses = 64,
    std::size_t max_len = 8);

/// Publish the syntactic latch clauses of `root` (up to `quota` clauses of
/// length <= `max_len`) as kCandidate lemmas under `source`.  Returns how
/// many the hub accepted — the interpolation engines' publish path.
std::size_t publish_candidates(LemmaExchange* hub, const aig::Aig& g,
                               aig::Lit root, std::size_t quota,
                               std::size_t max_len, std::uint8_t source);

}  // namespace itpseq::mc
