// factory.cpp — convenience entry points declared in engine.hpp.
#include "mc/bmc.hpp"
#include "mc/engine.hpp"
#include "mc/itp_verif.hpp"
#include "mc/itpseq_verif.hpp"
#include "mc/pdr.hpp"

namespace itpseq::mc {

EngineResult check_itp(const aig::Aig& model, std::size_t prop,
                       const EngineOptions& opts) {
  return ItpVerifEngine(model, prop, opts).run();
}

EngineResult check_itpseq(const aig::Aig& model, std::size_t prop,
                          const EngineOptions& opts) {
  EngineOptions o = opts;
  o.serial_alpha = 0.0;
  return ItpSeqEngine(model, prop, o).run();
}

EngineResult check_sitpseq(const aig::Aig& model, std::size_t prop,
                           EngineOptions opts) {
  if (opts.serial_alpha <= 0.0) opts.serial_alpha = 0.5;  // the paper's value
  return ItpSeqEngine(model, prop, opts).run();
}

EngineResult check_itpseq_cba(const aig::Aig& model, std::size_t prop,
                              EngineOptions opts) {
  if (opts.serial_alpha <= 0.0) opts.serial_alpha = 0.5;
  return ItpSeqEngine(model, prop, opts, AbstractionMode::kCba).run();
}

EngineResult check_itpseq_pba(const aig::Aig& model, std::size_t prop,
                              const EngineOptions& opts) {
  return ItpSeqEngine(model, prop, opts, AbstractionMode::kPba).run();
}

EngineResult check_itpseq_cba_pba(const aig::Aig& model, std::size_t prop,
                                  EngineOptions opts) {
  if (opts.serial_alpha <= 0.0) opts.serial_alpha = 0.5;
  return ItpSeqEngine(model, prop, opts, AbstractionMode::kCbaPba).run();
}

EngineResult check_bmc(const aig::Aig& model, std::size_t prop,
                       const EngineOptions& opts) {
  return BmcEngine(model, prop, opts).run();
}

EngineResult check_pdr(const aig::Aig& model, std::size_t prop,
                       const EngineOptions& opts) {
  return PdrEngine(model, prop, opts).run();
}

}  // namespace itpseq::mc
