// lemma_store.hpp — versioned, checksummed snapshots of the LemmaExchange
// hub: the crash-recovery layer (--checkpoint / --resume) and the first
// step of the ROADMAP's scale-out item ("serialize graded lemmas" across
// process boundaries).
//
// Format (version 1): line-oriented text, one record per line.
//
//   itpseq-checkpoint 1
//   design <hex16> latches <N>
//   engine <NAME> k <BOUND>                   (zero or more progress lines)
//   lemma <grade> <bound> <source> <lit>...   (grade invariant|frame|candidate;
//                                              lits are LatchLit encodings,
//                                              each < 2 * latches)
//   checksum <hex16>
//
// The trailing checksum is FNV-1a 64 over every byte preceding its own
// line, so truncation, bit rot and hand-editing are all caught before any
// record is believed.  `design` is a structural hash of the model (see
// design_hash), letting --resume reject a snapshot taken from a different
// circuit with a clean diagnostic instead of feeding it alien latch
// indices.
//
// Trust model: a snapshot is *untrusted input*.  decode_snapshot()
// validates framing, checksum, grades and literal ranges and throws
// SnapshotError on any violation — never crashes, never allocates from
// attacker-declared counts (parsing is driven by the actual body size).
// Even a snapshot that decodes cleanly proves nothing: restored lemmas are
// demoted to kCandidate before they re-enter a hub (check_portfolio's
// seed_lemmas path), so consumers accept them only through the same
// consecution/soundness checks as any other unproven clause — a forged
// snapshot can waste work but can never smuggle an unsound lemma into a
// proof.
//
// Fault sites: write_snapshot_file -> "snapshot.write",
// read_snapshot_file -> "snapshot.read" (see util/fault.hpp).  Writers
// publish via util::atomic_write_file, so a crash mid-checkpoint leaves
// the previous complete snapshot in place (lint rule L7 guards this).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "aig/aig.hpp"
#include "mc/lemma_exchange.hpp"

namespace itpseq::mc {

/// Decode/read failure: message is "snapshot: <what>" — structured enough
/// for the CLI to print verbatim before exiting 2.
class SnapshotError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Per-engine progress metadata carried in the snapshot (reporting only —
/// resume correctness never depends on it).
struct EngineProgress {
  std::string engine;
  unsigned bound = 0;
};

struct LemmaSnapshot {
  std::uint64_t design = 0;     ///< design_hash() of the model snapshotted
  std::size_t num_latches = 0;  ///< literal-range domain for validation
  std::vector<EngineProgress> progress;
  std::vector<Lemma> lemmas;
};

/// FNV-1a 64 over `bytes` — the snapshot checksum primitive, exposed so
/// tests and tooling can stamp hand-built bodies.
std::uint64_t fnv1a64(std::string_view bytes);

/// Structural hash of the model: latch count/next/init, outputs,
/// constraints and the AND graph.  Two models agree iff they are
/// structurally identical, which is exactly when latch-indexed lemmas
/// transfer between them.
std::uint64_t design_hash(const aig::Aig& g);

/// Serialize to the version-1 text format (checksum line included).
std::string encode_snapshot(const LemmaSnapshot& s);

/// Parse and validate untrusted snapshot text; throws SnapshotError.
LemmaSnapshot decode_snapshot(std::string_view text);

/// Encode and atomically publish to `path` (temp+rename).  Returns false
/// with *err filled on ordinary I/O failure; throws only via the
/// "snapshot.write" fault site.
bool write_snapshot_file(const std::string& path, const LemmaSnapshot& s,
                         std::string* err = nullptr);

/// Read and decode `path`; throws SnapshotError on missing/unreadable/
/// invalid files (and whatever the "snapshot.read" fault site injects).
LemmaSnapshot read_snapshot_file(const std::string& path);

}  // namespace itpseq::mc
