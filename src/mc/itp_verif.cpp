#include "mc/itp_verif.hpp"

#include <memory>
#include <unordered_map>

#include "itp/interpolate.hpp"
#include "mc/lemma_exchange.hpp"
#include "obs/trace.hpp"

namespace itpseq::mc {

namespace {

/// One refuted (or satisfied) inner-step SAT instance.
struct StepSolve {
  std::unique_ptr<sat::Solver> solver;
  std::unique_ptr<cnf::Unroller> unroller;
  sat::Status status = sat::Status::kUnknown;
};

}  // namespace

void ItpVerifEngine::execute(EngineResult& out) {
  aig::Aig& G = space_.graph();
  const bool partitioned = opts_.itp_partitioned;
  const bool assume = opts_.scheme == cnf::TargetScheme::kExactAssume;

  // Lemma exchange: consumed kInvariant lemmas behave exactly like model
  // invariant constraints (they hold in every reachable state and are
  // inductive), so they are asserted wherever constraints are — every
  // frame of every instance — and conjoined into the fixpoint target and
  // the PASS certificate.  kFrame lemmas are NOT used here: they would cut
  // A-side models of the over-approximate iterations and break the image
  // closure the fixpoint argument needs.  Freshly extracted interpolants
  // are published as kCandidate latch clauses (PDR verifies before use).
  LemmaFeed feed{opts_.exchange, opts_.exchange_source};
  aig::Lit inv = aig::kTrue;  // conjunction of consumed invariant lemmas
  std::size_t inv_used = 0;
  auto poll_exchange = [&] {
    feed.poll();
    for (; inv_used < feed.invariants.size(); ++inv_used) {
      inv = G.make_and(
          inv, latch_clause_pred(G, feed.invariants[inv_used].clause));
      ++out.stats.lemmas_consumed;
    }
  };
  auto publish_terms = [&](aig::Lit term) {
    out.stats.lemmas_published += publish_candidates(
        opts_.exchange, G, term, /*quota=*/8, /*max_len=*/6,
        opts_.exchange_source);
  };

  // Builds and solves one instance: A = front ∧ T(V^0,V^1) (label 1) and
  // either the bound-k B (hi_frame = k, bound target) or a single exact /
  // assume partition with the bad at `target_frame`.
  auto solve_step = [&](aig::Lit front, unsigned k, unsigned target_frame,
                        bool bound_target) {
    StepSolve s;
    s.solver = std::make_unique<sat::Solver>();
    opts_.apply_sat_options(*s.solver);
    s.solver->enable_proof();
    s.unroller = std::make_unique<cnf::Unroller>(model_, *s.solver);
    cnf::Unroller& unr = *s.unroller;
    if (front == aig::kNullLit) {
      unr.assert_init(1);
    } else if (front != aig::kTrue) {
      sat::Lit fl = unr.encode_state_pred(G, front, 0, 1);
      s.solver->add_clause({fl}, 1);
    }
    unr.add_transition(0, 1);
    unr.assert_constraints(0, 1);
    unsigned frames = bound_target ? k : target_frame;
    for (unsigned t = 1; t < frames; ++t) unr.add_transition(t, 2);
    for (unsigned t = 1; t <= frames; ++t) unr.assert_constraints(t, 2);
    for (const Lemma& l : feed.invariants) {
      assert_lemma_clause(unr, l, 0, 1);
      for (unsigned t = 1; t <= frames; ++t) assert_lemma_clause(unr, l, t, 2);
    }
    if (bound_target) {
      std::vector<sat::Lit> disj;
      for (unsigned t = 1; t <= k; ++t) disj.push_back(unr.bad_lit(t, 2, prop_));
      s.solver->add_clause(disj, 2);
    } else {
      if (assume)
        for (unsigned t = 1; t < target_frame; ++t)
          s.solver->add_clause({sat::neg(unr.bad_lit(t, 2, prop_))}, 2);
      s.solver->add_clause({unr.bad_lit(target_frame, 2, prop_)}, 2);
    }
    s.status = s.solver->solve(sat_budget());
    absorb_stats(out, *s.solver);
    return s;
  };

  auto extract_cut1 = [&](const StepSolve& s) {
    itp::InterpolantExtractor ex(s.solver->proof());
    std::unordered_map<sat::Var, aig::Lit> leaf;
    for (std::size_t i = 0; i < model_.num_latches(); ++i) {
      sat::Lit sl = s.unroller->lookup(model_.latch(i), 1);
      leaf[sat::var(sl)] = aig::lit_xor(space_.latch_input(i), sat::sign(sl));
    }
    return ex.extract(
        G, 1,
        [&](sat::Var v) {
          auto it = leaf.find(v);
          return it == leaf.end() ? aig::kNullLit : it->second;
        },
        opts_.itp_system);
  };

  auto fail_from = [&](const StepSolve& s, unsigned k, unsigned known_depth,
                       bool bound_target) {
    unsigned depth = known_depth;
    if (bound_target) {
      for (unsigned t = 1; t <= k; ++t) {
        sat::Lit b = s.unroller->lookup(model_.output(prop_), t);
        if (b != sat::kNoLit &&
            sat::lbool_xor(s.solver->model()[sat::var(b)], sat::sign(b)) ==
                sat::LBool::kTrue) {
          depth = t;
          break;
        }
      }
    }
    out.verdict = Verdict::kFail;
    out.k_fp = k;
    out.j_fp = 0;
    out.cex = extract_trace(*s.solver, *s.unroller, depth);
  };

  for (unsigned k = 1; k <= opts_.max_bound; ++k) {
    out.k_fp = k;
    if (out_of_time()) {
      out.verdict = Verdict::kUnknown;
      return;
    }
    if (obs::enabled()) {
      obs::counters().bounds.fetch_add(1, std::memory_order_relaxed);
      obs::emit("bound_start", {{"k", k}});
    }
    obs::Span obs_bound("bound", {{"k", k}});
    poll_exchange();
    // Nothing survives an outer restart, so the state-set AIG can be
    // garbage-collected wholesale once it grows (the invariant-lemma
    // conjunction is the only literal that must survive).
    if (opts_.compact_threshold > 0 && G.num_ands() > opts_.compact_threshold)
      space_.compact({&inv});

    aig::Lit R = space_.init_pred();
    aig::Lit front = aig::kNullLit;  // null = S0 (exact initial states)

    for (unsigned j = 0;; ++j) {
      aig::Lit I;
      bool spurious = false;
      if (!partitioned) {
        StepSolve s = solve_step(front, k, k, /*bound_target=*/true);
        if (s.status == sat::Status::kUnknown) {
          out.verdict = Verdict::kUnknown;
          return;
        }
        if (s.status == sat::Status::kSat) {
          if (j == 0) {
            fail_from(s, k, k, true);
            return;
          }
          spurious = true;
        } else {
          I = extract_cut1(s);
        }
      } else {
        // Partitioned ITPs (Section III): I = AND over per-depth exact or
        // assume partitions, each from its own (smaller) refutation.
        I = aig::kTrue;
        for (unsigned jj = 1; jj <= k && !spurious; ++jj) {
          StepSolve s = solve_step(front, k, jj, /*bound_target=*/false);
          if (s.status == sat::Status::kUnknown) {
            out.verdict = Verdict::kUnknown;
            return;
          }
          if (s.status == sat::Status::kSat) {
            if (j == 0) {
              fail_from(s, k, jj, false);
              return;
            }
            spurious = true;
          } else {
            I = G.make_and(I, extract_cut1(s));
          }
        }
      }
      if (spurious) break;  // deepen the unrolling

      // cone_size is an O(cone) DAG walk: keep it behind the gate so the
      // tracing-off path stays free.
      if (obs::enabled()) {
        obs::emit("itp_round", {{"k", k},
                                {"iteration", j + 1},
                                {"itp_nodes", G.cone_size(I)}});
      }
      out.stats.max_itp_nodes = std::max(out.stats.max_itp_nodes, G.cone_size(I));
      publish_terms(I);
      // Fixpoint modulo the invariant lemmas: new states within inv are
      // already covered, and R ∧ inv is the inductive set (certificate).
      Implication imp =
          space_.implies(G.make_and(I, inv), R, remaining(), opts_.cancel);
      if (imp == Implication::kHolds) {
        out.verdict = Verdict::kPass;
        out.k_fp = k;
        out.j_fp = j + 1;
        out.certificate = make_certificate(G.make_and(R, inv));
        return;
      }
      if (imp == Implication::kUnknown) {
        out.verdict = Verdict::kUnknown;
        return;
      }
      R = G.make_or(R, I);
      front = I;
    }
  }
  out.verdict = Verdict::kUnknown;  // bound limit reached
}

}  // namespace itpseq::mc
