// itp_verif.hpp — standard interpolation-based UMC (McMillan), Fig. 1.
//
// Outer loop over the BMC bound k; inner loop computes a chain of
// interpolants I_1, I_2, ... where I_{j+1} = ITP(I_j AND T, B) and
// B = T^{k-1} AND (bad at some frame 1..k)  — the *bound-k* target that
// standard interpolation requires for soundness (Section III).  The inner
// loop terminates with PASS when I_j implies the union R_{j-1} of all
// previous state sets (fixpoint), or restarts with k+1 when the
// over-approximate instance becomes satisfiable.  FAIL is only reported
// from the first inner iteration, whose A-side is the exact initial-state
// set.
#pragma once

#include "mc/engine.hpp"

namespace itpseq::mc {

class ItpVerifEngine : public Engine {
 public:
  ItpVerifEngine(const aig::Aig& model, std::size_t prop, EngineOptions opts)
      : Engine(model, prop, opts) {}
  const char* name() const override {
    return opts_.itp_partitioned ? "ITP-PART" : "ITP";
  }

 protected:
  void execute(EngineResult& out) override;
};

}  // namespace itpseq::mc
