// result.hpp — common result/option types for model-checking engines.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <exception>
#include <optional>
#include <string>
#include <vector>

#include "cnf/unroller.hpp"
#include "itp/interpolate.hpp"

namespace itpseq::mc {

class LemmaExchange;  // mc/lemma_exchange.hpp

/// A PASS certificate: `root` is a predicate over `graph`, whose input i
/// stands for model latch i.  The set R it denotes satisfies the four
/// conditions documented in mc/certify.hpp, making R AND NOT bad an
/// inductive safety invariant.
struct Certificate {
  aig::Aig graph;
  aig::Lit root = aig::kTrue;
};

enum class Verdict : std::uint8_t {
  kPass,     ///< property proved
  kFail,     ///< counterexample found
  kUnknown,  ///< resource budget exhausted ("ovf" in Table I terms)
  kError,    ///< the engine itself failed (exception contained at its
             ///< boundary); see ErrorInfo for the taxonomy
};
// kUnknown vs kError: kUnknown is a *healthy* run that ran out of budget
// (time, bound, memory ladder) — retrying with more resources may succeed.
// kError means the computation broke (OOM mid-extraction, I/O failure,
// internal invariant violation); the partial stats are still reported but
// the run is not retry-with-more-budget territory.  The portfolio returns
// kError only when *every* member failed — a single crashed member is
// reported per-member while survivors keep racing.

const char* to_string(Verdict v);

/// Failure taxonomy attached to kError results.
enum class ErrorKind : std::uint8_t {
  kNone,         ///< no error (default-constructed ErrorInfo)
  kOutOfMemory,  ///< std::bad_alloc escaped the engine
  kSolverLimit,  ///< solver-side limit tripped abnormally (e.g. the
                 ///< watchdog had to escalate a missed deadline)
  kInternal,     ///< invariant violation / unexpected exception
  kIoError,      ///< model or witness I/O failed
};

/// Static-storage name ("OOM", "INTERNAL", ...) — safe to hand to obs.
const char* to_string(ErrorKind k);

struct ErrorInfo {
  ErrorKind kind = ErrorKind::kNone;
  std::string message;
};

/// Map a caught exception onto the taxonomy: bad_alloc -> kOutOfMemory,
/// parser failures (ios_base::failure or an "aiger:"/"blif:"/"snapshot:"
/// message prefix) -> kIoError, anything else -> kInternal.
ErrorInfo classify_exception(const std::exception& e);

/// One portfolio member's fate, reported even when another member won.
/// With self-healing enabled (PortfolioOptions::restart) a member slot may
/// span several attempts: `verdict`/`error` describe the final attempt,
/// `seconds` accumulates across all of them, and the retry history is in
/// `restarts`/`last_error`.
struct MemberOutcome {
  std::string member;                  ///< engine name (to_string form)
  Verdict verdict = Verdict::kUnknown;
  double seconds = 0.0;                ///< summed over all attempts
  unsigned k_fp = 0;                   ///< final attempt's bound reached
  ErrorInfo error;                     ///< kind != kNone iff verdict == kError
  /// Times this slot was relaunched after an errored attempt (0 = first
  /// attempt stood).  A healthy final verdict with restarts > 0 means the
  /// self-healing path recovered the member.
  unsigned restarts = 0;
  /// The error that triggered the most recent relaunch — preserved even
  /// when the relaunched attempt finished healthy (error.kind would then
  /// be kNone and the crash history invisible without this).
  ErrorInfo last_error;
};

/// A concrete counterexample: initial latch values plus one input vector per
/// time frame.  The trace has frames 0..depth(); the bad output is 1 at
/// frame depth() (after depth() transitions).
struct Trace {
  std::vector<bool> initial_latches;        // indexed by latch
  std::vector<std::vector<bool>> inputs;    // [frame][input], depth()+1 frames
  unsigned depth() const {
    return inputs.empty() ? 0 : static_cast<unsigned>(inputs.size()) - 1;
  }
};

/// Knobs shared by all engines.
struct EngineOptions {
  double time_limit_sec = 60.0;   ///< total wall-clock budget
  unsigned max_bound = 500;       ///< give up beyond this BMC bound
  /// BMC check formulation for sequence engines (Section III).
  cnf::TargetScheme scheme = cnf::TargetScheme::kExactAssume;
  /// Labeled interpolation system used to extract interpolants.  McMillan
  /// is the paper's system; Pudlak / inverse McMillan give progressively
  /// weaker (larger) state sets from the same proofs.
  itp::System itp_system = itp::System::kMcMillan;
  /// Serial fraction alpha_s of Fig. 4: 0 = parallel ITPSEQ,
  /// 1 = fully serial; the paper's SITPSEQ uses 0.5.
  double serial_alpha = 0.0;
  /// Dynamic serialization (Section IV-C mentions dynamic intermediate
  /// strategies): serialize while terms stay below serial_size_limit AND
  /// nodes, then switch to the parallel suffix.  Overrides serial_alpha.
  bool serial_dynamic = false;
  std::size_t serial_size_limit = 2000;
  /// Standard-ITP engine only: compute each interpolant as the conjunction
  /// of per-depth partitioned interpolants ITP(A, B^j) instead of one
  /// bound-k interpolant (Section III / partitioned ITPs of [8]).  The
  /// partition targets follow `scheme` (exact-k or assume-k).
  bool itp_partitioned = false;
  /// Max refinement iterations per bound for the CBA engine.
  unsigned cba_refine_limit = 1000;
  /// BMC engine: keep one incremental solver across bounds (single-instance
  /// formulation in the spirit of the paper's reference [13]) instead of
  /// re-encoding the unrolling at every k.  The monolithic re-encoding is
  /// O(k^2) total work and is kept (off) as the cross-check mode.
  bool bmc_incremental = true;
  /// Sequence engines: garbage-collect the state-set AIG between bounds
  /// once it exceeds this node count (0 = never).  Bounds the growth of the
  /// interpolant store over long runs.
  std::size_t compact_threshold = 200000;
  /// Sequence engines: compact each extracted interpolant term by SAT
  /// sweeping (opt::fraig) before it enters the matrix.  Proof-directed
  /// interpolant circuits are highly redundant, so this trades SAT time
  /// for smaller state sets.
  bool fraig_interpolants = false;
  /// Conflict budget per fraig equivalence check.
  std::int64_t fraig_conflicts = 200;
  /// PDR: shrink predecessor/bad cubes by ternary-simulation lifting
  /// (Eén/Mishchenko/Brayton FMCAD'11) instead of the syntactic
  /// cone-of-influence lift alone.
  bool pdr_lift = true;
  /// PDR: CTG-aware inductive generalization (ctgDown of
  /// Hassan/Bradley/Somenzi, "Better Generalization in IC3", FMCAD'13):
  /// when dropping a literal fails because of a counterexample-to-
  /// generalization state, try to block that state at its own frame.
  bool pdr_ctg = true;
  /// PDR: maximum ctgDown recursion depth (1 = the paper's setting; CTGs
  /// discovered while blocking a CTG are not themselves chased further).
  unsigned pdr_ctg_depth = 1;
  /// PDR: CTGs blocked per candidate cube before giving up on it.
  unsigned pdr_max_ctgs = 3;
  /// Restart policy for every SAT solver the engine creates: Luby (the
  /// robust default) or glue-EMA adaptive restarts (sat::RestartMode::kEma,
  /// Glucose-style).  Never affects verdicts, only search order/speed.
  sat::RestartMode sat_restarts = sat::RestartMode::kLuby;
  /// Inprocessing (subsumption / bounded variable elimination /
  /// vivification / failed-literal probing inside every SAT solver the
  /// engine creates; see sat::Solver::set_inprocess).  Proof-logging safe:
  /// never affects verdicts, ITP extraction, or tracecheck export.
  bool sat_inprocess = true;
  /// Learned-clause cap override for every SAT solver the engine creates
  /// (sat::Solver::set_reduce_base); 0 keeps the solver default.  The
  /// portfolio's OOM degradation ladder clamps this on relaunch to shrink
  /// the dominant allocation.
  double sat_reduce_base = 0.0;
  /// Cooperative cancellation token (non-owning; may be null).  The
  /// contract every engine implements: *poll* the flag at loop heads and
  /// inside SAT calls (via sat::Budget::cancel) and return kUnknown
  /// promptly once it is set.  Engines never detach work — when run() has
  /// returned, no engine-owned computation is still executing, which is
  /// what lets the portfolio join all member threads after a winner.
  std::atomic<bool>* cancel = nullptr;
  /// Cross-engine lemma-exchange hub (non-owning; may be null).  Engines
  /// publish/consume at documented safe points only; the soundness rules
  /// per lemma grade live in mc/lemma_exchange.hpp.
  LemmaExchange* exchange = nullptr;
  /// Publisher slot recorded on published lemmas (attribution in stats).
  std::uint8_t exchange_source = 0;

  /// Apply the SAT-core knobs above to a solver the engine created.  This
  /// is the single place that knows the full knob list — engines call it
  /// at every solver-construction site instead of hand-rolling the
  /// setters, so a new knob (like the OOM ladder's sat_reduce_base)
  /// reaches every solver at once.
  void apply_sat_options(sat::Solver& s) const {
    s.set_restart_mode(sat_restarts);
    s.set_inprocess(sat_inprocess);
    if (sat_reduce_base > 0.0) s.set_reduce_base(sat_reduce_base);
  }
};

/// Aggregate statistics engines expose for the benchmark tables.
struct EngineStats {
  std::uint64_t sat_calls = 0;
  std::uint64_t sat_conflicts = 0;
  std::uint64_t sat_propagations = 0;      // all implications derived
  std::uint64_t sat_bin_propagations = 0;  // share from inline binary watchers
  std::uint64_t sat_gc_runs = 0;           // clause-arena compactions
  std::uint64_t sat_arena_reclaimed = 0;   // bytes GC gave back
  std::size_t sat_arena_peak = 0;          // largest clause arena seen
  /// Learned-clause glue histogram summed over all solvers (bucket
  /// min(LBD, 8) - 1; see sat::SolverStats::glue_hist).
  std::array<std::uint64_t, 8> sat_glue_hist{};
  /// Inprocessing totals over all solvers (sat::SolverStats counterparts).
  std::uint64_t sat_inprocess_rounds = 0;
  std::uint64_t sat_subsumed = 0;          // subsumption + strengthening
  std::uint64_t sat_vars_eliminated = 0;   // BVE commits
  std::uint64_t sat_vivified = 0;          // clauses shortened by vivify
  std::uint64_t sat_failed_literals = 0;   // probe-derived units
  std::uint64_t sat_hyper_binaries = 0;    // probe-derived binaries
  std::uint64_t proof_clauses = 0;     // total core clauses over all proofs
  std::size_t max_itp_nodes = 0;       // largest interpolant AIG cone
  std::size_t state_aig_nodes = 0;     // final state-set AIG size
  unsigned cba_visible_latches = 0;    // CBA only: final abstraction size
  unsigned cba_refinements = 0;        // CBA only
  std::uint64_t lemmas_published = 0;  // lemmas this engine gave the hub
  std::uint64_t lemmas_consumed = 0;   // foreign lemmas this engine used
  /// Portfolio only: snapshot lemmas seeded into the hub on --resume (all
  /// demoted to kCandidate; see mc/lemma_store.hpp's trust model).
  std::uint64_t lemmas_restored = 0;

  /// Cross-run aggregation for benchmark tables: counters are summed,
  /// high-water / size fields take the maximum.  Keep this the single
  /// place that knows every field — drivers must not hand-roll the list.
  EngineStats& operator+=(const EngineStats& s) {
    sat_calls += s.sat_calls;
    sat_conflicts += s.sat_conflicts;
    sat_propagations += s.sat_propagations;
    sat_bin_propagations += s.sat_bin_propagations;
    sat_gc_runs += s.sat_gc_runs;
    sat_arena_reclaimed += s.sat_arena_reclaimed;
    if (s.sat_arena_peak > sat_arena_peak) sat_arena_peak = s.sat_arena_peak;
    for (std::size_t i = 0; i < sat_glue_hist.size(); ++i)
      sat_glue_hist[i] += s.sat_glue_hist[i];
    sat_inprocess_rounds += s.sat_inprocess_rounds;
    sat_subsumed += s.sat_subsumed;
    sat_vars_eliminated += s.sat_vars_eliminated;
    sat_vivified += s.sat_vivified;
    sat_failed_literals += s.sat_failed_literals;
    sat_hyper_binaries += s.sat_hyper_binaries;
    proof_clauses += s.proof_clauses;
    if (s.max_itp_nodes > max_itp_nodes) max_itp_nodes = s.max_itp_nodes;
    if (s.state_aig_nodes > state_aig_nodes) state_aig_nodes = s.state_aig_nodes;
    if (s.cba_visible_latches > cba_visible_latches)
      cba_visible_latches = s.cba_visible_latches;
    cba_refinements += s.cba_refinements;
    lemmas_published += s.lemmas_published;
    lemmas_consumed += s.lemmas_consumed;
    lemmas_restored += s.lemmas_restored;
    return *this;
  }
};

struct EngineResult {
  Verdict verdict = Verdict::kUnknown;
  /// BMC bound at fixpoint/failure (k_fp in Table I; last attempted bound
  /// for kUnknown, matching the parenthesised ovf entries).
  unsigned k_fp = 0;
  /// Depth of the forward over-approximate traversal at the fixpoint
  /// (j_fp in Table I; 0 on failure, as in the paper).
  unsigned j_fp = 0;
  double seconds = 0.0;
  std::string engine;
  Trace cex;  // valid iff verdict == kFail
  /// Inductive-invariant certificate; emitted by the interpolation engines
  /// on kPass (check with mc::check_certificate).
  std::optional<Certificate> certificate;
  /// Why the run errored; kind == kNone unless verdict == kError, except
  /// that a watchdog-salvaged kUnknown records kSolverLimit here so the
  /// missed deadline is visible in reports.
  ErrorInfo error;
  /// Portfolio runs only: per-member fates, including members that lost the
  /// race or crashed (their ErrorInfo is preserved here and in run_report).
  std::vector<MemberOutcome> members;
  EngineStats stats;
};

}  // namespace itpseq::mc
