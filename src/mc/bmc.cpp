#include "mc/bmc.hpp"

#include <algorithm>
#include <chrono>

#include "mc/lemma_exchange.hpp"
#include "obs/trace.hpp"

namespace itpseq::mc {

// Exchanged lemmas are sound to assert here because BMC's unrolling is
// rooted in the exact initial states, so frame-t states are reachable in
// exactly t steps: invariant lemmas hold at every frame, kFrame lemmas at
// frames t <= bound.  Both variants consume; BMC publishes nothing.

void BmcEngine::execute(EngineResult& out) {
  per_bound_.assign(1, 0.0);  // k = 0 covered by preliminary_checks
  if (opts_.bmc_incremental) {
    execute_incremental(out);
    return;
  }
  LemmaFeed feed{opts_.exchange, opts_.exchange_source};
  for (unsigned k = 1; k <= opts_.max_bound; ++k) {
    out.k_fp = k;
    if (out_of_time()) {
      out.verdict = Verdict::kUnknown;
      return;
    }
    if (obs::enabled()) {
      obs::counters().bounds.fetch_add(1, std::memory_order_relaxed);
      obs::emit("bound_start", {{"k", k}});
    }
    obs::Span obs_bound("bound", {{"k", k}});
    feed.poll();
    sat::Solver solver;
    opts_.apply_sat_options(solver);
    cnf::Unroller unr(model_, solver);
    unr.assert_init(0);
    for (unsigned t = 0; t < k; ++t) unr.add_transition(t, 0);
    for (unsigned t = 0; t <= k; ++t) unr.assert_constraints(t, 0);
    unr.assert_target(k, opts_.scheme, 0);
    for (const Lemma& l : feed.invariants)
      for (unsigned t = 0; t <= k; ++t) assert_lemma_clause(unr, l, t, 0);
    for (const Lemma& l : feed.frames)
      for (unsigned t = 0; t <= std::min(l.bound, k); ++t)
        assert_lemma_clause(unr, l, t, 0);
    out.stats.lemmas_consumed = feed.invariants.size() + feed.frames.size();

    auto t0 = std::chrono::steady_clock::now();
    sat::Status status = solver.solve(sat_budget());
    per_bound_.push_back(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
    absorb_stats(out, solver);

    switch (status) {
      case sat::Status::kSat: {
        // With bound-k the violation can be at any frame <= k.
        unsigned depth = k;
        if (opts_.scheme == cnf::TargetScheme::kBound) {
          for (unsigned t = 1; t <= k; ++t) {
            sat::Lit b = unr.lookup(model_.output(prop_), t);
            if (b != sat::kNoLit &&
                sat::lbool_xor(solver.model()[sat::var(b)], sat::sign(b)) ==
                    sat::LBool::kTrue) {
              depth = t;
              break;
            }
          }
        }
        out.verdict = Verdict::kFail;
        out.j_fp = 0;
        out.cex = extract_trace(solver, unr, depth);
        return;
      }
      case sat::Status::kUnsat:
        break;
      case sat::Status::kUnknown:
        out.verdict = Verdict::kUnknown;
        return;
    }
  }
  out.verdict = Verdict::kUnknown;
}

void BmcEngine::execute_incremental(EngineResult& out) {
  // Single-instance formulation: one solver, the unrolling grows by one
  // frame per bound, targets are enabled by assumptions.  With the
  // exact-assume scheme the "no earlier failure" clauses become permanent
  // as the bound moves on, which encodes "first failure at depth k".
  sat::Solver solver;
  opts_.apply_sat_options(solver);
  cnf::Unroller unr(model_, solver);
  unr.assert_init(0);
  unr.assert_constraints(0, 0);
  LemmaFeed feed{opts_.exchange, opts_.exchange_source};
  std::vector<unsigned> inv_next, fr_next;  // per-lemma next frame to assert
  // One long-lived solver: its counters are cumulative, so absorb once per
  // exit path (a per-bound absorb would sum prefixes quadratically) and
  // account the per-bound queries separately.
  unsigned solves = 0;
  auto finish = [&] {
    if (solves == 0) return;  // timed out before the first query
    absorb_stats(out, solver);
    out.stats.sat_calls += solves - 1;
  };

  for (unsigned k = 1; k <= opts_.max_bound; ++k) {
    out.k_fp = k;
    if (out_of_time()) {
      out.verdict = Verdict::kUnknown;
      finish();
      return;
    }
    if (obs::enabled()) {
      obs::counters().bounds.fetch_add(1, std::memory_order_relaxed);
      obs::emit("bound_start", {{"k", k}});
    }
    obs::Span obs_bound("bound", {{"k", k}});
    unr.add_transition(k - 1, 0);
    unr.assert_constraints(k, 0);
    if (opts_.scheme == cnf::TargetScheme::kExactAssume && k >= 2)
      solver.add_clause({sat::neg(unr.bad_lit(k - 1, 0, prop_))}, 0);

    // Lemma clauses are permanent, so they trail the growing unrolling:
    // each lemma is asserted at the frames it has not covered yet.
    feed.poll();
    inv_next.resize(feed.invariants.size(), 0);
    fr_next.resize(feed.frames.size(), 0);
    for (std::size_t i = 0; i < feed.invariants.size(); ++i)
      for (unsigned& t = inv_next[i]; t <= k; ++t)
        assert_lemma_clause(unr, feed.invariants[i], t, 0);
    for (std::size_t i = 0; i < feed.frames.size(); ++i)
      for (unsigned& t = fr_next[i]; t <= std::min(feed.frames[i].bound, k); ++t)
        assert_lemma_clause(unr, feed.frames[i], t, 0);
    out.stats.lemmas_consumed = feed.invariants.size() + feed.frames.size();

    std::vector<sat::Lit> assumptions;
    if (opts_.scheme == cnf::TargetScheme::kBound) {
      sat::Lit act = sat::mk_lit(solver.new_var());
      std::vector<sat::Lit> cl{sat::neg(act)};
      for (unsigned t = 1; t <= k; ++t) cl.push_back(unr.bad_lit(t, 0, prop_));
      solver.add_clause(cl, 0);
      assumptions.push_back(act);
    } else {
      assumptions.push_back(unr.bad_lit(k, 0, prop_));
    }

    auto t0 = std::chrono::steady_clock::now();
    sat::Status status = solver.solve_assuming(assumptions, sat_budget());
    ++solves;
    per_bound_.push_back(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());

    switch (status) {
      case sat::Status::kSat: {
        unsigned depth = k;
        if (opts_.scheme == cnf::TargetScheme::kBound) {
          for (unsigned t = 1; t <= k; ++t) {
            sat::Lit b = unr.lookup(model_.output(prop_), t);
            if (b != sat::kNoLit &&
                sat::lbool_xor(solver.model()[sat::var(b)], sat::sign(b)) ==
                    sat::LBool::kTrue) {
              depth = t;
              break;
            }
          }
        }
        out.verdict = Verdict::kFail;
        out.j_fp = 0;
        out.cex = extract_trace(solver, unr, depth);
        finish();
        return;
      }
      case sat::Status::kUnsat:
        if (!solver.ok()) {
          // The clause set itself became unsatisfiable: no path can delay
          // the first failure this far, and shallower bounds were refuted.
          out.verdict = Verdict::kUnknown;
          finish();
          return;
        }
        break;
      case sat::Status::kUnknown:
        out.verdict = Verdict::kUnknown;
        finish();
        return;
    }
  }
  out.verdict = Verdict::kUnknown;
  finish();
}

}  // namespace itpseq::mc
