#include "mc/bmc.hpp"

#include <chrono>

namespace itpseq::mc {

void BmcEngine::execute(EngineResult& out) {
  per_bound_.assign(1, 0.0);  // k = 0 covered by preliminary_checks
  if (opts_.bmc_incremental) {
    execute_incremental(out);
    return;
  }
  for (unsigned k = 1; k <= opts_.max_bound; ++k) {
    out.k_fp = k;
    if (out_of_time()) {
      out.verdict = Verdict::kUnknown;
      return;
    }
    sat::Solver solver;
    cnf::Unroller unr(model_, solver);
    unr.assert_init(0);
    for (unsigned t = 0; t < k; ++t) unr.add_transition(t, 0);
    for (unsigned t = 0; t <= k; ++t) unr.assert_constraints(t, 0);
    unr.assert_target(k, opts_.scheme, 0);

    auto t0 = std::chrono::steady_clock::now();
    sat::Status status = solver.solve(sat_budget());
    per_bound_.push_back(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
    absorb_stats(out, solver);

    switch (status) {
      case sat::Status::kSat: {
        // With bound-k the violation can be at any frame <= k.
        unsigned depth = k;
        if (opts_.scheme == cnf::TargetScheme::kBound) {
          for (unsigned t = 1; t <= k; ++t) {
            sat::Lit b = unr.lookup(model_.output(prop_), t);
            if (b != sat::kNoLit &&
                sat::lbool_xor(solver.model()[sat::var(b)], sat::sign(b)) ==
                    sat::LBool::kTrue) {
              depth = t;
              break;
            }
          }
        }
        out.verdict = Verdict::kFail;
        out.j_fp = 0;
        out.cex = extract_trace(solver, unr, depth);
        return;
      }
      case sat::Status::kUnsat:
        break;
      case sat::Status::kUnknown:
        out.verdict = Verdict::kUnknown;
        return;
    }
  }
  out.verdict = Verdict::kUnknown;
}

void BmcEngine::execute_incremental(EngineResult& out) {
  // Single-instance formulation: one solver, the unrolling grows by one
  // frame per bound, targets are enabled by assumptions.  With the
  // exact-assume scheme the "no earlier failure" clauses become permanent
  // as the bound moves on, which encodes "first failure at depth k".
  sat::Solver solver;
  cnf::Unroller unr(model_, solver);
  unr.assert_init(0);
  unr.assert_constraints(0, 0);

  for (unsigned k = 1; k <= opts_.max_bound; ++k) {
    out.k_fp = k;
    if (out_of_time()) {
      out.verdict = Verdict::kUnknown;
      return;
    }
    unr.add_transition(k - 1, 0);
    unr.assert_constraints(k, 0);
    if (opts_.scheme == cnf::TargetScheme::kExactAssume && k >= 2)
      solver.add_clause({sat::neg(unr.bad_lit(k - 1, 0, prop_))}, 0);

    std::vector<sat::Lit> assumptions;
    if (opts_.scheme == cnf::TargetScheme::kBound) {
      sat::Lit act = sat::mk_lit(solver.new_var());
      std::vector<sat::Lit> cl{sat::neg(act)};
      for (unsigned t = 1; t <= k; ++t) cl.push_back(unr.bad_lit(t, 0, prop_));
      solver.add_clause(cl, 0);
      assumptions.push_back(act);
    } else {
      assumptions.push_back(unr.bad_lit(k, 0, prop_));
    }

    auto t0 = std::chrono::steady_clock::now();
    sat::Status status = solver.solve_assuming(assumptions, sat_budget());
    per_bound_.push_back(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
    absorb_stats(out, solver);

    switch (status) {
      case sat::Status::kSat: {
        unsigned depth = k;
        if (opts_.scheme == cnf::TargetScheme::kBound) {
          for (unsigned t = 1; t <= k; ++t) {
            sat::Lit b = unr.lookup(model_.output(prop_), t);
            if (b != sat::kNoLit &&
                sat::lbool_xor(solver.model()[sat::var(b)], sat::sign(b)) ==
                    sat::LBool::kTrue) {
              depth = t;
              break;
            }
          }
        }
        out.verdict = Verdict::kFail;
        out.j_fp = 0;
        out.cex = extract_trace(solver, unr, depth);
        return;
      }
      case sat::Status::kUnsat:
        if (!solver.ok()) {
          // The clause set itself became unsatisfiable: no path can delay
          // the first failure this far, and shallower bounds were refuted.
          out.verdict = Verdict::kUnknown;
          return;
        }
        break;
      case sat::Status::kUnknown:
        out.verdict = Verdict::kUnknown;
        return;
    }
  }
  out.verdict = Verdict::kUnknown;
}

}  // namespace itpseq::mc
