// run_report.hpp — machine-readable end-of-run report (--stats-json).
//
// One JSON object per run: the verdict and depth measures, the full
// EngineStats block, and — when a TraceSink was active — the aggregated
// span totals, event counts and the lemma-exchange matrix its drainer
// accumulated.  Scripts consume this instead of scraping "c ..." lines.
#pragma once

#include <string>

#include "mc/result.hpp"
#include "obs/trace.hpp"

namespace itpseq::mc {

/// Write the run report for `r` to `path`.  `sink` may be null (no tracing:
/// the report then carries only verdict + stats).  `tool` and `circuit`
/// identify the producing invocation.  Returns false if the file cannot be
/// written.
bool write_stats_json(const std::string& path, const EngineResult& r,
                      const obs::TraceSink* sink, const std::string& tool,
                      const std::string& circuit);

/// The same report as a string (testing / embedding).
std::string stats_json(const EngineResult& r, const obs::TraceSink* sink,
                       const std::string& tool, const std::string& circuit);

}  // namespace itpseq::mc
