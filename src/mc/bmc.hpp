// bmc.hpp — plain bounded model checking (falsification only).
//
// Iterates the bound k and solves one SAT instance per bound using the
// configured target scheme (bound-k / exact-k / exact-assume-k,
// Section II-A).  Returns FAIL with a counterexample, or UNKNOWN when the
// bound or time budget is exhausted — BMC alone can never return PASS.
// Also exposes per-bound timing, which bench_fig7 uses to compare the
// exact-k and assume-k check formulations.
#pragma once

#include "mc/engine.hpp"

namespace itpseq::mc {

class BmcEngine : public Engine {
 public:
  BmcEngine(const aig::Aig& model, std::size_t prop, EngineOptions opts)
      : Engine(model, prop, opts) {}
  const char* name() const override { return "BMC"; }

  /// Seconds spent in the SAT solver per bound (index = k), filled by run().
  const std::vector<double>& per_bound_seconds() const { return per_bound_; }

 protected:
  void execute(EngineResult& out) override;

 private:
  void execute_incremental(EngineResult& out);

  std::vector<double> per_bound_;
};

}  // namespace itpseq::mc
