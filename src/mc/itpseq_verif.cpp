#include "mc/itpseq_verif.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "itp/interpolate.hpp"
#include "mc/sim.hpp"
#include "obs/trace.hpp"
#include "opt/fraig.hpp"

namespace itpseq::mc {

const char* to_string(AbstractionMode m) {
  switch (m) {
    case AbstractionMode::kNone: return "none";
    case AbstractionMode::kCba: return "cba";
    case AbstractionMode::kPba: return "pba";
    case AbstractionMode::kCbaPba: return "cba+pba";
  }
  return "?";
}

ItpSeqEngine::ItpSeqEngine(const aig::Aig& model, std::size_t prop,
                           EngineOptions opts, AbstractionMode mode)
    : Engine(model, prop, opts), mode_(mode) {
  // Latches in the property's direct combinational support.  Every
  // abstraction keeps these visible: the soundness of the fixpoint check
  // (R_0 = init_pred over visible latches, which must exclude bad states)
  // relies on the bad signal being a function of visible latches only.
  prop_support_.assign(model.num_latches(), false);
  if (prop < model.num_outputs())
    for (aig::Var v : model.support(model.output(prop))) {
      std::size_t idx = model.latch_index(v);
      if (idx != aig::Aig::kNoIndex) prop_support_[idx] = true;
    }
  if (mode_ == AbstractionMode::kCba || mode_ == AbstractionMode::kCbaPba) {
    // Initial abstraction: exactly the property support.
    visible_ = prop_support_;
  }
  if (mode_ == AbstractionMode::kNone) {
    feed_.hub = opts_.exchange;
    feed_.self = opts_.exchange_source;
  }
}

const char* ItpSeqEngine::name() const {
  switch (mode_) {
    case AbstractionMode::kCba: return "ITPSEQCBA";
    case AbstractionMode::kPba: return "ITPSEQPBA";
    case AbstractionMode::kCbaPba: return "ITPSEQCBAPBA";
    case AbstractionMode::kNone: break;
  }
  if (opts_.serial_dynamic) return "SITPSEQ-DYN";
  return opts_.serial_alpha > 0.0 ? "SITPSEQ" : "ITPSEQ";
}

ItpSeqEngine::ShiftedSolve ItpSeqEngine::solve_shifted(aig::Lit start,
                                                       unsigned local_k,
                                                       EngineResult& out,
                                                       bool concrete) {
  ShiftedSolve s;
  s.solver = std::make_unique<sat::Solver>();
  opts_.apply_sat_options(*s.solver);
  s.solver->enable_proof();
  s.unroller = std::make_unique<cnf::Unroller>(
      model_, *s.solver, concrete ? std::vector<bool>{} : visible_);
  cnf::Unroller& unr = *s.unroller;

  // A_1: initial set and first transition (label 1).
  if (start == aig::kNullLit) {
    unr.assert_init(1);
  } else if (start != aig::kTrue) {
    sat::Lit fl = unr.encode_state_pred(space_.graph(), start, 0, 1);
    s.solver->add_clause({fl}, 1);
  }
  // A_i = T(V^{i-1}, V^i) with label i.
  for (unsigned t = 0; t < local_k; ++t) unr.add_transition(t, t + 1);
  // Invariant constraints hold in every frame; frame-t logic carries the
  // label of partition t+1.
  for (unsigned t = 0; t <= local_k; ++t)
    unr.assert_constraints(t, std::min(t + 1, local_k + 1));

  // Target.  CBA follows Fig. 5 and uses exact-k; otherwise the configured
  // scheme decides whether intermediate "good" constraints are added
  // (assume-k) or not (exact-k).  bound-k is not meaningful for sequences.
  bool cba_like =
      mode_ == AbstractionMode::kCba || mode_ == AbstractionMode::kCbaPba;
  bool assume = !cba_like && opts_.scheme == cnf::TargetScheme::kExactAssume;
  if (assume)
    for (unsigned t = 1; t < local_k; ++t)
      s.solver->add_clause({sat::neg(unr.bad_lit(t, t + 1, prop_))}, t + 1);
  s.solver->add_clause({unr.bad_lit(local_k, local_k + 1, prop_)}, local_k + 1);

  // Consumed invariant lemmas hold in every reachable state and are
  // inductive, so they are asserted like the model's invariant constraints
  // (same frames, same partition labels).  Feed is empty outside concrete
  // mode.
  for (const Lemma& l : feed_.invariants)
    for (unsigned t = 0; t <= local_k; ++t)
      assert_lemma_clause(unr, l, t, std::min(t + 1, local_k + 1));

  s.status = s.solver->solve(sat_budget());
  absorb_stats(out, *s.solver);
  return s;
}

std::vector<aig::Lit> ItpSeqEngine::extract_terms(const ShiftedSolve& s,
                                                  unsigned last_cut) {
  aig::Aig& G = space_.graph();
  itp::InterpolantExtractor ex(s.solver->proof());
  // Leaf maps: for cut c the shared variables are the frame-c latch vars.
  std::vector<std::unordered_map<sat::Var, aig::Lit>> leaf(last_cut + 1);
  for (unsigned c = 1; c <= last_cut; ++c)
    for (std::size_t i = 0; i < model_.num_latches(); ++i) {
      sat::Lit sl = s.unroller->lookup(model_.latch(i), c);
      if (sl != sat::kNoLit)
        leaf[c][sat::var(sl)] =
            aig::lit_xor(space_.latch_input(i), sat::sign(sl));
    }
  return ex.extract_sequence(
      G, 1, last_cut,
      [&](std::uint32_t cut, sat::Var v) {
        auto it = leaf[cut].find(v);
        return it == leaf[cut].end() ? aig::kNullLit : it->second;
      },
      opts_.itp_system);
}

std::vector<bool> ItpSeqEngine::pba_needed(const ShiftedSolve& s,
                                           unsigned k) const {
  // Variables mentioned by original clauses of the refutation core.
  std::vector<char> used;
  const sat::Proof& proof = s.solver->proof();
  for (sat::ClauseId id : proof.core()) {
    if (!proof.is_original(id)) continue;
    for (sat::Lit l : proof.literals(id)) {
      sat::Var v = sat::var(l);
      if (v >= used.size()) used.resize(v + 1, 0);
      used[v] = 1;
    }
  }
  // A latch is needed iff any of its frame variables is used.  (Frame
  // variables are per-latch fresh SAT variables by construction, so this
  // mapping is exact.)  Property-support latches are always needed — see
  // the constructor comment on fixpoint soundness.
  std::vector<bool> needed = prop_support_;
  for (std::size_t i = 0; i < model_.num_latches(); ++i)
    for (unsigned t = 0; t <= k && !needed[i]; ++t) {
      sat::Lit sl = s.unroller->lookup(model_.latch(i), t);
      if (sl != sat::kNoLit && sat::var(sl) < used.size() &&
          used[sat::var(sl)])
        needed[i] = true;
    }
  return needed;
}

bool ItpSeqEngine::extend_or_refine(const ShiftedSolve& s, unsigned k,
                                    EngineResult& out, bool& refined) {
  refined = false;
  // Abstract counterexample: inputs and frame-0 free-latch values.
  Trace abs = extract_trace(*s.solver, *s.unroller, k);
  // EXTEND: replay on the concrete model from the concrete reset state.
  Simulator sim(model_, prop_);
  Trace concrete = abs;  // initial_latches only consulted for undef resets
  SimFrames frames = sim.run(concrete);
  if (frames.is_cex()) {
    out.verdict = Verdict::kFail;
    out.k_fp = k;
    out.j_fp = 0;
    out.cex = std::move(concrete);
    out.stats.cba_visible_latches = static_cast<unsigned>(
        std::count(visible_.begin(), visible_.end(), true));
    return true;
  }
  // REFINE: make visible an invisible latch whose abstract values diverge
  // from the concrete replay.  Candidates are restricted to the *frontier*
  // of the current abstraction — invisible latches feeding the property
  // cone or the next-state logic of visible latches — so refinement walks
  // the property's cone of influence instead of pulling in bulk logic.
  std::vector<bool> frontier(model_.num_latches(), false);
  {
    std::vector<aig::Lit> roots;
    if (prop_ < model_.num_outputs()) roots.push_back(model_.output(prop_));
    for (std::size_t i = 0; i < model_.num_latches(); ++i)
      if (visible_[i]) roots.push_back(model_.latch_next(i));
    for (aig::Var v : model_.cone(roots)) {
      std::size_t idx = model_.latch_index(v);
      if (idx != aig::Aig::kNoIndex && !visible_[idx]) frontier[idx] = true;
    }
  }
  auto divergence = [&](std::size_t i) {
    unsigned score = 0;
    for (unsigned t = 0; t <= k; ++t) {
      sat::Lit sl = s.unroller->lookup(model_.latch(i), t);
      if (sl == sat::kNoLit) continue;
      bool abs_val =
          sat::lbool_xor(s.solver->model()[sat::var(sl)], sat::sign(sl)) ==
          sat::LBool::kTrue;
      if (abs_val != frames.latches[t][i]) ++score;
    }
    return score;
  };
  std::size_t best = aig::Aig::kNoIndex;
  unsigned best_score = 0;
  for (int pass = 0; pass < 2 && best == aig::Aig::kNoIndex; ++pass) {
    // Pass 0: diverging frontier latches.  Pass 1 (fallback): any diverging
    // invisible latch, then any frontier latch at all.
    for (std::size_t i = 0; i < model_.num_latches(); ++i) {
      if (visible_[i]) continue;
      if (pass == 0 && !frontier[i]) continue;
      unsigned score = divergence(i);
      if (pass == 0 && score == 0) continue;
      if (best == aig::Aig::kNoIndex || score > best_score) {
        best = i;
        best_score = score;
      }
    }
  }
  if (best == aig::Aig::kNoIndex) return false;  // fully concrete already
  visible_[best] = true;
  refined = true;
  ++out.stats.cba_refinements;
  return false;
}

void ItpSeqEngine::execute(EngineResult& out) {
  aig::Aig& G = space_.graph();
  calI_.assign(1, aig::kNullLit);  // index 0 unused

  for (unsigned k = 1; k <= opts_.max_bound; ++k) {
    out.k_fp = k;
    if (out_of_time()) {
      out.verdict = Verdict::kUnknown;
      return;
    }
    if (obs::enabled()) {
      obs::counters().bounds.fetch_add(1, std::memory_order_relaxed);
      obs::emit("bound_start", {{"k", k}});
    }
    obs::Span obs_bound("bound", {{"k", k}});

    // Safe point for the lemma exchange: between bounds.  New invariant
    // lemmas extend inv_ (constant within a bound).
    feed_.poll();
    for (; inv_used_ < feed_.invariants.size(); ++inv_used_) {
      inv_ = G.make_and(
          inv_, latch_clause_pred(G, feed_.invariants[inv_used_].clause));
      ++out.stats.lemmas_consumed;
    }

    // Bound the growth of the interpolant store: rebuild the state-set AIG
    // keeping only the live matrix columns (and the invariant conjunction).
    if (opts_.compact_threshold > 0 &&
        G.num_ands() > opts_.compact_threshold) {
      std::vector<aig::Lit*> roots;
      for (unsigned j = 1; j < calI_.size(); ++j) roots.push_back(&calI_[j]);
      roots.push_back(&inv_);
      space_.compact(std::move(roots));
    }

    // --- BMC check at bound k (with abstraction handling) ---------------
    const bool cba = mode_ == AbstractionMode::kCba ||
                     mode_ == AbstractionMode::kCbaPba;
    ShiftedSolve first;
    if (mode_ == AbstractionMode::kPba) {
      // PBA: the concrete check decides SAT/UNSAT; its proof core sizes the
      // abstraction used for extraction.
      ShiftedSolve conc = solve_shifted(aig::kNullLit, k, out,
                                        /*concrete=*/true);
      if (conc.status == sat::Status::kUnknown) {
        out.verdict = Verdict::kUnknown;
        return;
      }
      if (conc.status == sat::Status::kSat) {
        out.verdict = Verdict::kFail;
        out.k_fp = k;
        out.j_fp = 0;
        out.cex = extract_trace(*conc.solver, *conc.unroller, k);
        return;
      }
      visible_ = pba_needed(conc, k);
      first = solve_shifted(aig::kNullLit, k, out);
      if (first.status != sat::Status::kUnsat) {
        // Variable-granular PBA was too coarse for this bound (or the
        // re-solve ran out of budget): extract from the concrete proof.
        visible_.clear();
        first = std::move(conc);
      }
      ++out.stats.cba_refinements;  // counts PBA recomputations
    } else {
      first = solve_shifted(aig::kNullLit, k, out);
      while (cba && first.status == sat::Status::kSat) {
        bool refined = false;
        if (extend_or_refine(first, k, out, refined)) return;  // real FAIL
        if (!refined) break;  // concrete model, genuine SAT
        if (out.stats.cba_refinements > opts_.cba_refine_limit ||
            out_of_time()) {
          out.verdict = Verdict::kUnknown;
          return;
        }
        first = solve_shifted(aig::kNullLit, k, out);
      }
      if (first.status == sat::Status::kUnsat &&
          mode_ == AbstractionMode::kCbaPba) {
        // PBA shrink: drop visible latches the refutation never used, then
        // re-solve on the smaller abstraction for extraction ([13]-style
        // grow/shrink alternation).
        std::vector<bool> grown = visible_;
        std::vector<bool> needed = pba_needed(first, k);
        bool shrunk = false;
        for (std::size_t i = 0; i < visible_.size(); ++i) {
          bool keep = visible_[i] && needed[i];
          shrunk |= keep != visible_[i];
          visible_[i] = keep;
        }
        if (shrunk) {
          ShiftedSolve s2 = solve_shifted(aig::kNullLit, k, out);
          if (s2.status == sat::Status::kUnsat) {
            first = std::move(s2);
          } else {
            visible_ = std::move(grown);  // corner case: keep the CBA set
          }
        }
      }
    }
    if (!visible_.empty())
      out.stats.cba_visible_latches = static_cast<unsigned>(
          std::count(visible_.begin(), visible_.end(), true));
    if (first.status == sat::Status::kUnknown) {
      out.verdict = Verdict::kUnknown;
      return;
    }
    if (first.status == sat::Status::kSat) {
      out.verdict = Verdict::kFail;
      out.k_fp = k;
      out.j_fp = 0;
      out.cex = extract_trace(*first.solver, *first.unroller, k);
      return;
    }

    // --- sequence construction (Fig. 4) ----------------------------------
    std::vector<aig::Lit> terms(k + 1, aig::kNullLit);  // terms[j], j=1..k
    unsigned ns;
    if (opts_.serial_dynamic) {
      // Dynamic strategy (Section IV-C): serialize as long as terms stay
      // small; the per-term size check below stops the prefix early.
      ns = k;
    } else {
      ns = static_cast<unsigned>(
          std::floor(opts_.serial_alpha * static_cast<double>(k + 1)));
      if (ns > k) ns = k;
    }
    bool fallback = false;

    if (ns == 0) {
      // Pure parallel: the whole sequence from the one proof (Eq. 2).
      std::vector<aig::Lit> seq = extract_terms(first, k);
      for (unsigned j = 1; j <= k; ++j) terms[j] = seq[j - 1];
    } else {
      // Serial prefix (Eq. 3).  The first term's defining problem is
      // exactly the original BMC check, so its proof is reused.
      {
        std::vector<aig::Lit> seq = extract_terms(first, 1);
        terms[1] = seq[0];
      }
      if (opts_.serial_dynamic && G.cone_size(terms[1]) > opts_.serial_size_limit)
        ns = 1;
      for (unsigned j = 2; j <= ns && !fallback; ++j) {
        ShiftedSolve s = solve_shifted(terms[j - 1], k - (j - 1), out);
        if (s.status == sat::Status::kUnknown) {
          out.verdict = Verdict::kUnknown;
          return;
        }
        if (s.status == sat::Status::kSat) {
          fallback = true;  // over-approximation made the target reachable
          break;
        }
        std::vector<aig::Lit> seq = extract_terms(s, 1);
        terms[j] = seq[0];
        if (opts_.serial_dynamic &&
            G.cone_size(terms[j]) > opts_.serial_size_limit) {
          ns = j;  // stop serializing, finish with the parallel suffix
          break;
        }
      }
      if (!fallback && ns < k) {
        // Parallel suffix from one more proof (Fig. 4, last line).
        ShiftedSolve s = solve_shifted(terms[ns], k - ns, out);
        if (s.status == sat::Status::kUnknown) {
          out.verdict = Verdict::kUnknown;
          return;
        }
        if (s.status == sat::Status::kSat) {
          fallback = true;
        } else {
          std::vector<aig::Lit> seq = extract_terms(s, k - ns);
          for (unsigned c = 1; c <= k - ns; ++c) terms[ns + c] = seq[c - 1];
        }
      }
      if (fallback) {
        std::vector<aig::Lit> seq = extract_terms(first, k);
        for (unsigned j = 1; j <= k; ++j) terms[j] = seq[j - 1];
      }
    }

    if (opts_.fraig_interpolants) {
      // SAT-sweep the freshly extracted terms; the swept cones are imported
      // back into the (strashed) state-set graph.
      std::vector<aig::Lit> roots(terms.begin() + 1, terms.end());
      opt::FraigOptions fo;
      fo.max_conflicts = opts_.fraig_conflicts;
      opt::FraigResult fr = opt::fraig(G, roots, fo);
      std::vector<aig::Lit> leaf_map(fr.graph.num_vars(), aig::kNullLit);
      for (std::size_t i = 0; i < fr.graph.num_inputs(); ++i)
        leaf_map[aig::lit_var(fr.graph.input(i))] = space_.latch_input(i);
      for (unsigned j = 1; j <= k; ++j)
        terms[j] = G.import_cone(fr.graph, fr.roots[j - 1], leaf_map);
    }

    for (unsigned j = 1; j <= k; ++j)
      out.stats.max_itp_nodes =
          std::max(out.stats.max_itp_nodes, G.cone_size(terms[j]));
    if (obs::enabled()) {
      std::uint64_t total_nodes = 0;
      for (unsigned j = 1; j <= k; ++j) total_nodes += G.cone_size(terms[j]);
      obs::emit("itpseq_extract", {{"k", k},
                                   {"serial_prefix", ns},
                                   {"fallback", fallback ? 1u : 0u},
                                   {"seq_nodes", total_nodes}});
    }

    // Share the syntactic latch clauses of the fresh terms as candidates
    // (quota per bound, spent across the terms in sequence order).
    if (feed_.hub != nullptr) {
      std::size_t quota = 16;
      for (unsigned j = 1; j <= k && quota > 0; ++j) {
        std::size_t accepted = publish_candidates(
            feed_.hub, G, terms[j], quota, /*max_len=*/6,
            opts_.exchange_source);
        out.stats.lemmas_published += accepted;
        quota -= std::min(quota, accepted);
      }
    }

    // --- matrix update and fixpoint checks (Fig. 2) ----------------------
    calI_.resize(k + 1, aig::kTrue);
    for (unsigned j = 1; j < k; ++j) calI_[j] = G.make_and(calI_[j], terms[j]);
    calI_[k] = terms[k];

    aig::Lit R = space_.init_pred(visible_);
    for (unsigned j = 1; j <= k; ++j) {
      // Fixpoint modulo the invariant lemmas (inv_ = kTrue without a hub):
      // R ∧ inv_ is the inductive set the certificate reports.
      Implication imp = space_.implies(G.make_and(calI_[j], inv_), R,
                                       remaining(), opts_.cancel);
      if (imp == Implication::kHolds) {
        out.verdict = Verdict::kPass;
        out.k_fp = k;
        out.j_fp = j;
        out.certificate = make_certificate(G.make_and(R, inv_));
        return;
      }
      if (imp == Implication::kUnknown) {
        out.verdict = Verdict::kUnknown;
        return;
      }
      R = G.make_or(R, calI_[j]);
    }
  }
  out.verdict = Verdict::kUnknown;
}

}  // namespace itpseq::mc
