#include "mc/run_report.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "util/atomic_write.hpp"

namespace itpseq::mc {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (char ch : s) {
    unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
}

void kv_str(std::string& out, const char* key, const std::string& v,
            bool comma = true) {
  out += '"';
  out += key;
  out += "\":\"";
  append_escaped(out, v);
  out += '"';
  if (comma) out += ',';
}

void kv_u64(std::string& out, const char* key, std::uint64_t v,
            bool comma = true) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "\"%s\":%" PRIu64, key, v);
  out += buf;
  if (comma) out += ',';
}

void kv_f64(std::string& out, const char* key, double v, bool comma = true) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "\"%s\":%.6g", key,
                std::isfinite(v) ? v : 0.0);
  out += buf;
  if (comma) out += ',';
}

}  // namespace

std::string stats_json(const EngineResult& r, const obs::TraceSink* sink,
                       const std::string& tool, const std::string& circuit) {
  std::string out;
  out.reserve(2048);
  out += '{';
  kv_str(out, "tool", tool);
  kv_str(out, "circuit", circuit);
  kv_str(out, "engine", r.engine);
  kv_str(out, "verdict", to_string(r.verdict));
  kv_f64(out, "seconds", r.seconds);
  kv_u64(out, "k_fp", r.k_fp);
  kv_u64(out, "j_fp", r.j_fp);

  // Failure semantics: present whenever the run carries an error (kError,
  // or a watchdog-annotated kUnknown), so postmortems never need the log.
  if (r.error.kind != ErrorKind::kNone) {
    out += "\"error\":{";
    kv_str(out, "kind", to_string(r.error.kind));
    kv_str(out, "message", r.error.message, /*comma=*/false);
    out += "},";
  }
  // Portfolio runs: every member's fate, crashed members included.
  if (!r.members.empty()) {
    out += "\"members\":[";
    bool first_m = true;
    for (const MemberOutcome& m : r.members) {
      if (!first_m) out += ',';
      first_m = false;
      out += '{';
      kv_str(out, "member", m.member);
      kv_str(out, "verdict", to_string(m.verdict));
      kv_u64(out, "restarts", m.restarts);
      const bool has_err = m.error.kind != ErrorKind::kNone;
      const bool has_last = m.last_error.kind != ErrorKind::kNone;
      kv_f64(out, "seconds", m.seconds, /*comma=*/has_err || has_last);
      if (has_err) {
        out += "\"error\":{";
        kv_str(out, "kind", to_string(m.error.kind));
        kv_str(out, "message", m.error.message, /*comma=*/false);
        out += '}';
        if (has_last) out += ',';
      }
      // The error behind the most recent relaunch — present even when the
      // relaunched attempt finished healthy, so recoveries stay visible.
      if (has_last) {
        out += "\"last_error\":{";
        kv_str(out, "kind", to_string(m.last_error.kind));
        kv_str(out, "message", m.last_error.message, /*comma=*/false);
        out += '}';
      }
      out += '}';
    }
    out += "],";
  }

  const EngineStats& s = r.stats;
  out += "\"stats\":{";
  kv_u64(out, "sat_calls", s.sat_calls);
  kv_u64(out, "sat_conflicts", s.sat_conflicts);
  kv_u64(out, "sat_propagations", s.sat_propagations);
  kv_u64(out, "sat_bin_propagations", s.sat_bin_propagations);
  kv_u64(out, "sat_gc_runs", s.sat_gc_runs);
  kv_u64(out, "sat_arena_reclaimed", s.sat_arena_reclaimed);
  kv_u64(out, "sat_arena_peak", s.sat_arena_peak);
  out += "\"sat_glue_hist\":[";
  for (std::size_t i = 0; i < s.sat_glue_hist.size(); ++i) {
    if (i != 0) out += ',';
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRIu64, s.sat_glue_hist[i]);
    out += buf;
  }
  out += "],";
  kv_u64(out, "sat_inprocess_rounds", s.sat_inprocess_rounds);
  kv_u64(out, "sat_subsumed", s.sat_subsumed);
  kv_u64(out, "sat_vars_eliminated", s.sat_vars_eliminated);
  kv_u64(out, "sat_vivified", s.sat_vivified);
  kv_u64(out, "sat_failed_literals", s.sat_failed_literals);
  kv_u64(out, "sat_hyper_binaries", s.sat_hyper_binaries);
  kv_u64(out, "proof_clauses", s.proof_clauses);
  kv_u64(out, "max_itp_nodes", s.max_itp_nodes);
  kv_u64(out, "state_aig_nodes", s.state_aig_nodes);
  kv_u64(out, "cba_visible_latches", s.cba_visible_latches);
  kv_u64(out, "cba_refinements", s.cba_refinements);
  kv_u64(out, "lemmas_published", s.lemmas_published);
  kv_u64(out, "lemmas_consumed", s.lemmas_consumed);
  kv_u64(out, "lemmas_restored", s.lemmas_restored, /*comma=*/false);
  out += '}';

  if (sink != nullptr) {
    obs::TraceSink::Summary sum = sink->summary();
    out += ",\"trace\":{";
    kv_u64(out, "events", sum.events);
    kv_u64(out, "dropped", sum.dropped);
    out += "\"spans\":[";
    bool first = true;
    for (const auto& [key, agg] : sum.spans) {
      if (!first) out += ',';
      first = false;
      out += '{';
      kv_str(out, "engine", key.first);
      kv_str(out, "name", key.second);
      kv_u64(out, "count", agg.count);
      kv_f64(out, "total_sec", static_cast<double>(agg.total_us) / 1e6,
             /*comma=*/false);
      out += '}';
    }
    out += "],\"kinds\":[";
    first = true;
    for (const auto& [key, count] : sum.kinds) {
      if (!first) out += ',';
      first = false;
      out += '{';
      kv_str(out, "engine", key.first);
      kv_str(out, "kind", key.second);
      kv_u64(out, "count", count, /*comma=*/false);
      out += '}';
    }
    out += "],\"exchange\":[";
    first = true;
    for (const auto& [key, cell] : sum.exchange) {
      if (!first) out += ',';
      first = false;
      out += '{';
      kv_str(out, "engine", key.first);
      kv_str(out, "grade", key.second);
      kv_u64(out, "published", cell.published);
      kv_u64(out, "fetched", cell.fetched, /*comma=*/false);
      out += '}';
    }
    out += "]}";
  }
  out += "}\n";
  return out;
}

bool write_stats_json(const std::string& path, const EngineResult& r,
                      const obs::TraceSink* sink, const std::string& tool,
                      const std::string& circuit) {
  // Atomic publication (L7): a consumer tailing the report path must never
  // observe a truncated JSON document.
  return util::atomic_write_file(path, stats_json(r, sink, tool, circuit));
}

}  // namespace itpseq::mc
