#include "mc/sim.hpp"

#include <stdexcept>

namespace itpseq::mc {

Simulator::Simulator(const aig::Aig& model, std::size_t prop)
    : model_(model), prop_(prop) {
  std::vector<aig::Lit> roots;
  for (std::size_t i = 0; i < model.num_latches(); ++i)
    roots.push_back(model.latch_next(i));
  if (prop < model.num_outputs()) roots.push_back(model.output(prop));
  for (std::size_t i = 0; i < model.num_constraints(); ++i)
    roots.push_back(model.constraint(i));
  order_ = model.cone(roots);
}

std::vector<bool> Simulator::eval_frame(const std::vector<bool>& latches,
                                        const std::vector<bool>& inputs) const {
  std::vector<bool> val(model_.num_vars(), false);
  for (aig::Var v : order_) {
    const aig::Node& n = model_.node(v);
    switch (n.type) {
      case aig::NodeType::kConst:
        break;
      case aig::NodeType::kInput: {
        std::size_t idx = model_.input_index(v);
        val[v] = idx < inputs.size() && inputs[idx];
        break;
      }
      case aig::NodeType::kLatch: {
        std::size_t idx = model_.latch_index(v);
        val[v] = idx < latches.size() && latches[idx];
        break;
      }
      case aig::NodeType::kAnd: {
        bool a = val[aig::lit_var(n.fanin0)] ^ aig::lit_sign(n.fanin0);
        bool b = val[aig::lit_var(n.fanin1)] ^ aig::lit_sign(n.fanin1);
        // Constant fanins: var 0 evaluates to false in val[].
        val[v] = a && b;
        break;
      }
    }
  }
  return val;
}

std::vector<bool> Simulator::step(const std::vector<bool>& latches,
                                  const std::vector<bool>& inputs) const {
  std::vector<bool> val = eval_frame(latches, inputs);
  std::vector<bool> next(model_.num_latches(), false);
  for (std::size_t i = 0; i < model_.num_latches(); ++i) {
    aig::Lit nx = model_.latch_next(i);
    bool base = aig::lit_var(nx) == 0 ? false : val[aig::lit_var(nx)];
    next[i] = base ^ aig::lit_sign(nx);
  }
  return next;
}

bool Simulator::bad(const std::vector<bool>& latches,
                    const std::vector<bool>& inputs) const {
  if (prop_ >= model_.num_outputs()) return false;
  std::vector<bool> val = eval_frame(latches, inputs);
  aig::Lit b = model_.output(prop_);
  bool base = aig::lit_var(b) == 0 ? false : val[aig::lit_var(b)];
  return base ^ aig::lit_sign(b);
}

bool Simulator::constraints_ok(const std::vector<bool>& latches,
                               const std::vector<bool>& inputs) const {
  if (model_.num_constraints() == 0) return true;
  std::vector<bool> val = eval_frame(latches, inputs);
  for (std::size_t i = 0; i < model_.num_constraints(); ++i) {
    aig::Lit c = model_.constraint(i);
    bool base = aig::lit_var(c) == 0 ? false : val[aig::lit_var(c)];
    if (!(base ^ aig::lit_sign(c))) return false;
  }
  return true;
}

std::vector<bool> Simulator::reset_state(const std::vector<bool>& free_vals) const {
  std::vector<bool> s(model_.num_latches(), false);
  for (std::size_t i = 0; i < model_.num_latches(); ++i) {
    switch (model_.latch_init(i)) {
      case aig::LatchInit::kZero:
        s[i] = false;
        break;
      case aig::LatchInit::kOne:
        s[i] = true;
        break;
      case aig::LatchInit::kUndef:
        s[i] = i < free_vals.size() && free_vals[i];
        break;
    }
  }
  return s;
}

SimFrames Simulator::run(const Trace& trace) const {
  SimFrames out;
  std::vector<bool> state = reset_state(trace.initial_latches);
  unsigned frames = trace.inputs.empty() ? 1u
                                         : static_cast<unsigned>(trace.inputs.size());
  static const std::vector<bool> kNoInputs;
  for (unsigned t = 0; t < frames; ++t) {
    const std::vector<bool>& in =
        t < trace.inputs.size() ? trace.inputs[t] : kNoInputs;
    out.latches.push_back(state);
    out.bad.push_back(bad(state, in));
    out.constraints_ok.push_back(constraints_ok(state, in));
    if (t + 1 < frames) state = step(state, in);
  }
  return out;
}

bool trace_is_cex(const aig::Aig& model, const Trace& trace, std::size_t prop) {
  Simulator sim(model, prop);
  return sim.run(trace).is_cex();
}

}  // namespace itpseq::mc
