// witness.hpp — AIGER witness format for counterexample traces.
//
// Writes traces in the format used by HWMCC and the aiger tools
// (aigsim -w / IC3 witnesses):
//
//   1           status line ("1" = property violated)
//   b<N>        which bad property the trace refutes
//   010...      initial latch values (one char per latch)
//   10x1...     one input vector line per frame
//   .           terminator
//
// so counterexamples can be cross-checked with external simulators, and
// external witnesses can be replayed against our models.
#pragma once

#include <iosfwd>

#include "mc/result.hpp"

namespace itpseq::mc {

/// Write `trace` as an AIGER witness for bad property `prop`.
void write_witness(const Trace& trace, std::size_t prop, std::ostream& out);

/// Parse an AIGER witness.  `num_latches` / `num_inputs` give the expected
/// line widths ('x' entries read as 0).  Throws std::runtime_error on
/// malformed input.
Trace read_witness(std::istream& in, std::size_t num_latches,
                   std::size_t num_inputs);

}  // namespace itpseq::mc
