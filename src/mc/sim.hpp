// sim.hpp — concrete cycle-accurate simulation of an AIG model.
//
// Used to validate counterexample traces (tests) and to concretize abstract
// counterexamples in the CBA engine (the EXTEND step of Fig. 5).
#pragma once

#include <vector>

#include "aig/aig.hpp"
#include "mc/result.hpp"

namespace itpseq::mc {

/// Per-frame simulation record.
struct SimFrames {
  std::vector<std::vector<bool>> latches;  // [frame][latch]
  std::vector<bool> bad;                   // [frame]
  std::vector<bool> constraints_ok;        // [frame] all constraints hold
  unsigned frames() const { return static_cast<unsigned>(bad.size()); }
  /// Trace is a genuine counterexample: constraints hold everywhere and the
  /// final frame is bad.
  bool is_cex() const {
    if (bad.empty() || !bad.back()) return false;
    for (bool ok : constraints_ok)
      if (!ok) return false;
    return true;
  }
};

class Simulator {
 public:
  explicit Simulator(const aig::Aig& model, std::size_t prop = 0);

  /// Run the trace: frame 0 uses trace.initial_latches (latches with a
  /// defined reset value are forced to it; the trace supplies values for
  /// uninitialized latches) and trace.inputs[t] per frame.  Missing input
  /// vectors or entries default to 0.
  SimFrames run(const Trace& trace) const;

  /// One step: next latch values from current latches and inputs.
  std::vector<bool> step(const std::vector<bool>& latches,
                         const std::vector<bool>& inputs) const;
  /// Bad-output value in a frame.
  bool bad(const std::vector<bool>& latches, const std::vector<bool>& inputs) const;
  /// All invariant constraints hold in a frame.
  bool constraints_ok(const std::vector<bool>& latches,
                      const std::vector<bool>& inputs) const;

  /// Reset state; entries for uninitialized latches taken from `free_vals`
  /// (or 0 if absent).
  std::vector<bool> reset_state(const std::vector<bool>& free_vals = {}) const;

 private:
  std::vector<bool> eval_frame(const std::vector<bool>& latches,
                               const std::vector<bool>& inputs) const;

  const aig::Aig& model_;
  std::size_t prop_;
  std::vector<aig::Var> order_;  // topo order of the combined cone
};

/// True iff `trace` is a genuine counterexample for output `prop`.
bool trace_is_cex(const aig::Aig& model, const Trace& trace, std::size_t prop = 0);

}  // namespace itpseq::mc
