#include "mc/lemma_store.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/atomic_write.hpp"
#include "util/fault.hpp"

namespace itpseq::mc {

namespace {

constexpr std::string_view kMagic = "itpseq-checkpoint";
constexpr unsigned kVersion = 1;

[[noreturn]] void fail(const std::string& what) {
  throw SnapshotError("snapshot: " + what);
}

void hash_u64(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 0x100000001b3ull;
  }
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Split on single spaces; empty fields (double spaces, leading/trailing
/// space) are malformed and surface as parse failures downstream.
std::vector<std::string_view> split(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t pos = 0;
  while (pos <= line.size()) {
    std::size_t sp = line.find(' ', pos);
    if (sp == std::string_view::npos) sp = line.size();
    out.push_back(line.substr(pos, sp - pos));
    pos = sp + 1;
  }
  return out;
}

bool parse_u64(std::string_view tok, std::uint64_t& out, int base = 10) {
  if (tok.empty() || tok.size() > 20) return false;
  std::uint64_t v = 0;
  for (char c : tok) {
    int d;
    if (c >= '0' && c <= '9')
      d = c - '0';
    else if (base == 16 && c >= 'a' && c <= 'f')
      d = 10 + (c - 'a');
    else
      return false;
    std::uint64_t nv = v * static_cast<unsigned>(base) +
                       static_cast<unsigned>(d);
    if (nv < v) return false;  // overflow
    v = nv;
  }
  out = v;
  return true;
}

bool parse_grade(std::string_view tok, LemmaGrade& out) {
  if (tok == "invariant")
    out = LemmaGrade::kInvariant;
  else if (tok == "frame")
    out = LemmaGrade::kFrame;
  else if (tok == "candidate")
    out = LemmaGrade::kCandidate;
  else
    return false;
  return true;
}

}  // namespace

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t design_hash(const aig::Aig& g) {
  // FNV-1a over a canonical structural serialization: section tags keep
  // e.g. "2 latches, 0 ands" distinct from "0 latches, 2 ands".
  std::uint64_t h = 0xcbf29ce484222325ull;
  hash_u64(h, 'i');
  hash_u64(h, g.num_inputs());
  hash_u64(h, 'l');
  hash_u64(h, g.num_latches());
  for (std::size_t i = 0; i < g.num_latches(); ++i) {
    hash_u64(h, g.latch_next(i));
    hash_u64(h, static_cast<std::uint64_t>(g.latch_init(i)));
  }
  hash_u64(h, 'o');
  hash_u64(h, g.num_outputs());
  for (std::size_t i = 0; i < g.num_outputs(); ++i) hash_u64(h, g.output(i));
  hash_u64(h, 'c');
  hash_u64(h, g.num_constraints());
  for (std::size_t i = 0; i < g.num_constraints(); ++i)
    hash_u64(h, g.constraint(i));
  hash_u64(h, 'a');
  for (aig::Var v = 0; v < g.num_vars(); ++v) {
    const aig::Node& n = g.node(v);
    if (n.type != aig::NodeType::kAnd) continue;
    hash_u64(h, v);
    hash_u64(h, n.fanin0);
    hash_u64(h, n.fanin1);
  }
  return h;
}

std::string encode_snapshot(const LemmaSnapshot& s) {
  std::string out;
  out += kMagic;
  out += ' ';
  out += std::to_string(kVersion);
  out += '\n';
  out += "design " + hex16(s.design) + " latches " +
         std::to_string(s.num_latches) + "\n";
  for (const EngineProgress& p : s.progress) {
    out += "engine " + p.engine + " k " + std::to_string(p.bound) + "\n";
  }
  for (const Lemma& l : s.lemmas) {
    out += "lemma ";
    out += to_string(l.grade);
    out += ' ';
    out += std::to_string(l.bound);
    out += ' ';
    out += std::to_string(l.source);
    for (LatchLit ll : l.clause) {
      out += ' ';
      out += std::to_string(ll);
    }
    out += '\n';
  }
  out += "checksum " + hex16(fnv1a64(out)) + "\n";
  return out;
}

LemmaSnapshot decode_snapshot(std::string_view text) {
  // Validation order: framing (magic/version) first, then the whole-file
  // checksum, then per-record parsing — so a corrupt file reports
  // "checksum mismatch" rather than whichever garbled record happens to
  // parse first.
  if (text.substr(0, kMagic.size()) != kMagic)
    fail("bad magic (not an itpseq checkpoint)");
  std::size_t eol = text.find('\n');
  if (eol == std::string_view::npos) fail("truncated (no checksum)");
  {
    std::vector<std::string_view> toks = split(text.substr(0, eol));
    std::uint64_t ver = 0;
    if (toks.size() != 2 || !parse_u64(toks[1], ver)) fail("malformed header");
    if (ver != kVersion)
      fail("unsupported version " + std::string(toks[1]) + " (expected " +
           std::to_string(kVersion) + ")");
  }
  // Locate the checksum line: the final non-empty line.
  std::string_view body = text;
  while (!body.empty() && body.back() == '\n') body.remove_suffix(1);
  std::size_t last_nl = body.rfind('\n');
  std::string_view last_line =
      last_nl == std::string_view::npos ? body : body.substr(last_nl + 1);
  {
    std::vector<std::string_view> toks = split(last_line);
    std::uint64_t want = 0;
    if (toks.size() != 2 || toks[0] != "checksum" ||
        !parse_u64(toks[1], want, 16))
      fail("truncated (no checksum)");
    // last_line is a subview of text, so pointer arithmetic gives the
    // exact span the checksum covers.  Trailing garbage after the checksum
    // line displaces it as the final line and fails above as "truncated".
    std::size_t covered =
        static_cast<std::size_t>(last_line.data() - text.data());
    if (fnv1a64(text.substr(0, covered)) != want)
      fail("checksum mismatch (corrupt file)");
  }

  LemmaSnapshot snap;
  bool have_design = false;
  std::size_t line_no = 1;
  std::size_t pos = eol + 1;  // past the header line
  while (pos < text.size()) {
    ++line_no;
    std::size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    std::vector<std::string_view> toks = split(line);
    auto malformed = [&]() -> SnapshotError {
      return SnapshotError("snapshot: malformed " + std::string(toks[0]) +
                           " record at line " + std::to_string(line_no));
    };
    if (toks[0] == "design") {
      std::uint64_t hash = 0, latches = 0;
      if (toks.size() != 4 || toks[2] != "latches" ||
          !parse_u64(toks[1], hash, 16) || !parse_u64(toks[3], latches))
        throw malformed();
      snap.design = hash;
      snap.num_latches = static_cast<std::size_t>(latches);
      have_design = true;
    } else if (toks[0] == "engine") {
      std::uint64_t bound = 0;
      if (toks.size() != 4 || toks[2] != "k" || toks[1].empty() ||
          !parse_u64(toks[3], bound))
        throw malformed();
      snap.progress.push_back(
          {std::string(toks[1]), static_cast<unsigned>(bound)});
    } else if (toks[0] == "lemma") {
      Lemma l;
      std::uint64_t bound = 0, source = 0;
      if (toks.size() < 5 || !have_design || !parse_grade(toks[1], l.grade) ||
          !parse_u64(toks[2], bound) || !parse_u64(toks[3], source) ||
          source > 255)
        throw malformed();
      l.bound = static_cast<unsigned>(bound);
      l.source = static_cast<std::uint8_t>(source);
      for (std::size_t i = 4; i < toks.size(); ++i) {
        std::uint64_t lit = 0;
        if (!parse_u64(toks[i], lit)) throw malformed();
        if (lit >= 2 * static_cast<std::uint64_t>(snap.num_latches))
          fail("lemma literal " + std::string(toks[i]) +
               " out of range at line " + std::to_string(line_no) +
               " (design has " + std::to_string(snap.num_latches) +
               " latches)");
        l.clause.push_back(static_cast<LatchLit>(lit));
      }
      snap.lemmas.push_back(std::move(l));
    } else if (toks[0] == "checksum") {
      break;  // validated above; everything after it was rejected there
    } else {
      fail("unknown record '" + std::string(toks[0]) + "' at line " +
           std::to_string(line_no));
    }
  }
  if (!have_design) fail("missing design record");
  return snap;
}

bool write_snapshot_file(const std::string& path, const LemmaSnapshot& s,
                         std::string* err) {
  ITPSEQ_FAULT_POINT("snapshot.write");
  return util::atomic_write_file(path, encode_snapshot(s), err);
}

LemmaSnapshot read_snapshot_file(const std::string& path) {
  ITPSEQ_FAULT_POINT("snapshot.read");
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) fail("cannot open " + path + ": " + std::strerror(errno));
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) fail("read error on " + path);
  return decode_snapshot(text);
}

}  // namespace itpseq::mc
