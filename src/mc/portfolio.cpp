#include "mc/portfolio.hpp"

#include <chrono>

#include "mc/kinduction.hpp"
#include "mc/sim.hpp"

namespace itpseq::mc {

const char* to_string(PortfolioMember m) {
  switch (m) {
    case PortfolioMember::kRandomSim:
      return "RANDOM-SIM";
    case PortfolioMember::kBmc:
      return "BMC";
    case PortfolioMember::kItp:
      return "ITP";
    case PortfolioMember::kItpPartitioned:
      return "ITP-PART";
    case PortfolioMember::kItpSeq:
      return "ITPSEQ";
    case PortfolioMember::kSItpSeq:
      return "SITPSEQ";
    case PortfolioMember::kItpSeqCba:
      return "ITPSEQCBA";
    case PortfolioMember::kKInduction:
      return "KIND";
    case PortfolioMember::kPdr:
      return "PDR";
  }
  return "?";
}

namespace {

/// Simple xorshift64 for reproducible word streams.
std::uint64_t next_word(std::uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

}  // namespace

EngineResult check_random_sim(const aig::Aig& model, std::size_t prop,
                              unsigned depth, unsigned rounds,
                              std::uint64_t seed) {
  auto t0 = std::chrono::steady_clock::now();
  EngineResult out;
  out.engine = "RANDOM-SIM";
  out.verdict = Verdict::kUnknown;
  std::uint64_t rng = seed ? seed : 1;

  if (prop >= model.num_outputs()) {
    out.verdict = Verdict::kPass;
    return out;
  }
  // Topological order over the cone of all next-state functions + bad.
  std::vector<aig::Lit> roots;
  for (std::size_t i = 0; i < model.num_latches(); ++i)
    roots.push_back(model.latch_next(i));
  roots.push_back(model.output(prop));
  for (std::size_t i = 0; i < model.num_constraints(); ++i)
    roots.push_back(model.constraint(i));
  std::vector<aig::Var> order = model.cone(roots);

  std::vector<std::uint64_t> val(model.num_vars(), 0);
  auto lit_word = [&](aig::Lit l) {
    std::uint64_t base = aig::lit_var(l) == 0 ? 0ull : val[aig::lit_var(l)];
    return base ^ (aig::lit_sign(l) ? ~0ull : 0ull);
  };

  for (unsigned round = 0; round < rounds; ++round) {
    // Initial latch words.
    std::vector<std::uint64_t> init_words(model.num_latches());
    for (std::size_t i = 0; i < model.num_latches(); ++i) {
      switch (model.latch_init(i)) {
        case aig::LatchInit::kZero:
          init_words[i] = 0;
          break;
        case aig::LatchInit::kOne:
          init_words[i] = ~0ull;
          break;
        case aig::LatchInit::kUndef:
          init_words[i] = next_word(rng);
          break;
      }
      val[aig::lit_var(model.latch(i))] = init_words[i];
    }
    std::vector<std::vector<std::uint64_t>> input_words;
    std::uint64_t valid = ~0ull;  // lanes where constraints held so far

    for (unsigned t = 0; t <= depth; ++t) {
      input_words.emplace_back(model.num_inputs());
      for (std::size_t i = 0; i < model.num_inputs(); ++i) {
        input_words.back()[i] = next_word(rng);
        val[aig::lit_var(model.input(i))] = input_words.back()[i];
      }
      for (aig::Var v : order) {
        const aig::Node& n = model.node(v);
        if (n.type == aig::NodeType::kAnd)
          val[v] = lit_word(n.fanin0) & lit_word(n.fanin1);
      }
      for (std::size_t i = 0; i < model.num_constraints(); ++i)
        valid &= lit_word(model.constraint(i));
      std::uint64_t bad = lit_word(model.output(prop)) & valid;
      if (bad) {
        // Extract the failing lane into a concrete trace.
        unsigned lane = 0;
        while (!((bad >> lane) & 1)) ++lane;
        Trace trace;
        trace.initial_latches.resize(model.num_latches());
        for (std::size_t i = 0; i < model.num_latches(); ++i)
          trace.initial_latches[i] = (init_words[i] >> lane) & 1;
        for (unsigned f = 0; f <= t; ++f) {
          std::vector<bool> in(model.num_inputs());
          for (std::size_t i = 0; i < model.num_inputs(); ++i)
            in[i] = (input_words[f][i] >> lane) & 1;
          trace.inputs.push_back(std::move(in));
        }
        out.verdict = Verdict::kFail;
        out.k_fp = t;
        out.cex = std::move(trace);
        out.seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        return out;
      }
      // Advance latches.
      std::vector<std::uint64_t> next(model.num_latches());
      for (std::size_t i = 0; i < model.num_latches(); ++i)
        next[i] = lit_word(model.latch_next(i));
      for (std::size_t i = 0; i < model.num_latches(); ++i)
        val[aig::lit_var(model.latch(i))] = next[i];
    }
  }
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

EngineResult check_portfolio(const aig::Aig& model, std::size_t prop,
                             const PortfolioOptions& opts) {
  auto t0 = std::chrono::steady_clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };
  EngineResult last;
  last.engine = "portfolio";
  last.verdict = Verdict::kUnknown;

  double slice = opts.slice_seconds;
  while (elapsed() < opts.time_limit_sec) {
    for (PortfolioMember m : opts.members) {
      double budget = std::min(slice, opts.time_limit_sec - elapsed());
      if (budget <= 0) break;
      EngineOptions eo = opts.engine_defaults;
      eo.time_limit_sec = budget;
      EngineResult r;
      switch (m) {
        case PortfolioMember::kRandomSim:
          r = check_random_sim(model, prop,
                               /*depth=*/64,
                               /*rounds=*/static_cast<unsigned>(8 * slice) + 1);
          break;
        case PortfolioMember::kBmc:
          r = check_bmc(model, prop, eo);
          break;
        case PortfolioMember::kItp:
          r = check_itp(model, prop, eo);
          break;
        case PortfolioMember::kItpPartitioned:
          eo.itp_partitioned = true;
          r = check_itp(model, prop, eo);
          break;
        case PortfolioMember::kItpSeq:
          r = check_itpseq(model, prop, eo);
          break;
        case PortfolioMember::kSItpSeq:
          r = check_sitpseq(model, prop, eo);
          break;
        case PortfolioMember::kItpSeqCba:
          r = check_itpseq_cba(model, prop, eo);
          break;
        case PortfolioMember::kKInduction:
          r = check_kinduction(model, prop, eo);
          break;
        case PortfolioMember::kPdr:
          r = check_pdr(model, prop, eo);
          break;
      }
      if (r.verdict != Verdict::kUnknown) {
        r.engine = std::string("portfolio/") + to_string(m);
        r.seconds = elapsed();
        return r;
      }
      last = r;
    }
    slice *= 2.0;
  }
  last.engine = "portfolio";
  last.seconds = elapsed();
  return last;
}

}  // namespace itpseq::mc
