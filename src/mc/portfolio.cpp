// portfolio.cpp — threaded portfolio scheduler with cooperative
// cancellation and cross-engine lemma exchange (see portfolio.hpp for the
// scheduler/cancellation/exchange contracts).
#include "mc/portfolio.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "mc/kinduction.hpp"
#include "mc/lemma_exchange.hpp"
#include "mc/lemma_store.hpp"
#include "obs/trace.hpp"
#include "util/mem_budget.hpp"
#include "util/retry.hpp"

namespace itpseq::mc {

const char* to_string(PortfolioMember m) {
  switch (m) {
    case PortfolioMember::kRandomSim:
      return "RANDOM-SIM";
    case PortfolioMember::kBmc:
      return "BMC";
    case PortfolioMember::kItp:
      return "ITP";
    case PortfolioMember::kItpPartitioned:
      return "ITP-PART";
    case PortfolioMember::kItpSeq:
      return "ITPSEQ";
    case PortfolioMember::kSItpSeq:
      return "SITPSEQ";
    case PortfolioMember::kItpSeqCba:
      return "ITPSEQCBA";
    case PortfolioMember::kKInduction:
      return "KIND";
    case PortfolioMember::kPdr:
      return "PDR";
  }
  return "?";
}

void degrade_for_retry(EngineOptions& eo, ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kOutOfMemory:
      // Shed the allocation-heavy machinery: the inprocessing occurrence
      // index is the largest transient allocation, the learnt-clause arena
      // the largest persistent one, and the state-set AIG grows unboundedly
      // without compaction.
      eo.sat_inprocess = false;
      eo.sat_reduce_base = eo.sat_reduce_base > 0.0
                               ? std::min(eo.sat_reduce_base, 500.0)
                               : 500.0;
      if (eo.compact_threshold == 0 || eo.compact_threshold > 50000)
        eo.compact_threshold = 50000;
      break;
    case ErrorKind::kNone:
    case ErrorKind::kSolverLimit:  // the scheduler halves the leash instead
    case ErrorKind::kInternal:     // transient faults: plain retry
    case ErrorKind::kIoError:
      break;
  }
}

namespace {

/// Simple xorshift64 for reproducible word streams.
std::uint64_t next_word(std::uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

/// Base rounds of the random-simulation sweep, shared by both schedulers
/// so the explored trace enumeration never depends on wall-clock or thread
/// interleaving.  Sequential rounds *extend* the sweep (kSimSweepRounds <<
/// round); since a longer sweep explores the identical prefix first, the
/// first counterexample found is still a pure function of the seed —
/// budget/cancellation can truncate (degrading FAIL to UNKNOWN) but never
/// change which witness is reported.
constexpr unsigned kSimSweepRounds = 4096;

/// Run one member to completion under `eo` (budget, cancellation token and
/// exchange hub are all inside).  `sim_rounds` sizes the random-simulation
/// sweep and must be derived deterministically by the caller.
///
/// Containment boundary: a member that throws (engine construction, the
/// self-scheduled random-sim sweep — Engine::run() has its own boundary for
/// everything Engine-derived) becomes a kError *result*; the portfolio
/// keeps racing the survivors instead of std::terminate taking the process.
EngineResult run_member(const aig::Aig& model, std::size_t prop,
                        PortfolioMember m, const EngineOptions& eo,
                        std::uint64_t sim_seed, unsigned sim_rounds) {
  try {
    switch (m) {
      case PortfolioMember::kRandomSim:
        return check_random_sim(model, prop, /*depth=*/64, sim_rounds,
                                sim_seed, eo.cancel, eo.time_limit_sec);
      case PortfolioMember::kBmc:
        return check_bmc(model, prop, eo);
      case PortfolioMember::kItp:
        return check_itp(model, prop, eo);
      case PortfolioMember::kItpPartitioned: {
        EngineOptions e = eo;
        e.itp_partitioned = true;
        return check_itp(model, prop, e);
      }
      case PortfolioMember::kItpSeq:
        return check_itpseq(model, prop, eo);
      case PortfolioMember::kSItpSeq:
        return check_sitpseq(model, prop, eo);
      case PortfolioMember::kItpSeqCba:
        return check_itpseq_cba(model, prop, eo);
      case PortfolioMember::kKInduction:
        return check_kinduction(model, prop, eo);
      case PortfolioMember::kPdr:
        return check_pdr(model, prop, eo);
    }
  } catch (const std::exception& e) {
    EngineResult r;
    r.engine = to_string(m);
    r.verdict = Verdict::kError;
    r.error = classify_exception(e);
    if (obs::enabled()) {
      obs::emit("engine_error",
                {{"engine", to_string(m)}, {"kind", to_string(r.error.kind)}});
    }
    return r;
  } catch (...) {
    EngineResult r;
    r.engine = to_string(m);
    r.verdict = Verdict::kError;
    r.error = {ErrorKind::kInternal, "unknown exception"};
    if (obs::enabled()) {
      obs::emit("engine_error",
                {{"engine", to_string(m)}, {"kind", to_string(r.error.kind)}});
    }
    return r;
  }
  return {};
}

}  // namespace

EngineResult check_random_sim(const aig::Aig& model, std::size_t prop,
                              unsigned depth, unsigned rounds,
                              std::uint64_t seed,
                              const std::atomic<bool>* cancel,
                              double time_limit_sec) {
  // Random simulation bypasses Engine::run(), so it tags and times itself.
  obs::ScopedEngine obs_tag("RANDOM-SIM");
  obs::Span obs_span("run", {{"rounds", rounds}, {"depth", depth}});
  auto t0 = std::chrono::steady_clock::now();
  auto give_up = [&] {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed))
      return true;
    if (time_limit_sec < 0) return false;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
               .count() >= time_limit_sec;
  };
  EngineResult out;
  out.engine = "RANDOM-SIM";
  out.verdict = Verdict::kUnknown;
  std::uint64_t rng = seed ? seed : 1;

  if (prop >= model.num_outputs()) {
    out.verdict = Verdict::kPass;
    return out;
  }
  // Topological order over the cone of all next-state functions + bad.
  std::vector<aig::Lit> roots;
  for (std::size_t i = 0; i < model.num_latches(); ++i)
    roots.push_back(model.latch_next(i));
  roots.push_back(model.output(prop));
  for (std::size_t i = 0; i < model.num_constraints(); ++i)
    roots.push_back(model.constraint(i));
  std::vector<aig::Var> order = model.cone(roots);

  std::vector<std::uint64_t> val(model.num_vars(), 0);
  auto lit_word = [&](aig::Lit l) {
    std::uint64_t base = aig::lit_var(l) == 0 ? 0ull : val[aig::lit_var(l)];
    return base ^ (aig::lit_sign(l) ? ~0ull : 0ull);
  };

  for (unsigned round = 0; round < rounds; ++round) {
    // Cancellation/time truncate the sweep but never permute it, so the
    // first counterexample found is a fixed function of the seed.
    if (give_up()) break;
    // Initial latch words.
    std::vector<std::uint64_t> init_words(model.num_latches());
    for (std::size_t i = 0; i < model.num_latches(); ++i) {
      switch (model.latch_init(i)) {
        case aig::LatchInit::kZero:
          init_words[i] = 0;
          break;
        case aig::LatchInit::kOne:
          init_words[i] = ~0ull;
          break;
        case aig::LatchInit::kUndef:
          init_words[i] = next_word(rng);
          break;
      }
      val[aig::lit_var(model.latch(i))] = init_words[i];
    }
    std::vector<std::vector<std::uint64_t>> input_words;
    std::uint64_t valid = ~0ull;  // lanes where constraints held so far

    for (unsigned t = 0; t <= depth; ++t) {
      input_words.emplace_back(model.num_inputs());
      for (std::size_t i = 0; i < model.num_inputs(); ++i) {
        input_words.back()[i] = next_word(rng);
        val[aig::lit_var(model.input(i))] = input_words.back()[i];
      }
      for (aig::Var v : order) {
        const aig::Node& n = model.node(v);
        if (n.type == aig::NodeType::kAnd)
          val[v] = lit_word(n.fanin0) & lit_word(n.fanin1);
      }
      for (std::size_t i = 0; i < model.num_constraints(); ++i)
        valid &= lit_word(model.constraint(i));
      std::uint64_t bad = lit_word(model.output(prop)) & valid;
      if (bad) {
        // Extract the failing lane into a concrete trace.
        unsigned lane = 0;
        while (!((bad >> lane) & 1)) ++lane;
        Trace trace;
        trace.initial_latches.resize(model.num_latches());
        for (std::size_t i = 0; i < model.num_latches(); ++i)
          trace.initial_latches[i] = (init_words[i] >> lane) & 1;
        for (unsigned f = 0; f <= t; ++f) {
          std::vector<bool> in(model.num_inputs());
          for (std::size_t i = 0; i < model.num_inputs(); ++i)
            in[i] = (input_words[f][i] >> lane) & 1;
          trace.inputs.push_back(std::move(in));
        }
        out.verdict = Verdict::kFail;
        out.k_fp = t;
        out.cex = std::move(trace);
        out.seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        return out;
      }
      // Advance latches.
      std::vector<std::uint64_t> next(model.num_latches());
      for (std::size_t i = 0; i < model.num_latches(); ++i)
        next[i] = lit_word(model.latch_next(i));
      for (std::size_t i = 0; i < model.num_latches(); ++i)
        val[aig::lit_var(model.latch(i))] = next[i];
    }
  }
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

EngineResult check_portfolio(const aig::Aig& model, std::size_t prop,
                             const PortfolioOptions& opts) {
  auto t0 = std::chrono::steady_clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };
  EngineResult last;
  last.engine = "portfolio";
  last.verdict = Verdict::kUnknown;
  if (opts.members.empty()) return last;

  LemmaExchange hub(model.num_latches());
  LemmaExchange* hubp = opts.exchange ? &hub : nullptr;
  // Seed the hub from a restored snapshot.  The demotion to kCandidate
  // happens HERE, unconditionally — callers cannot opt out — so restored
  // lemmas only ever re-enter proofs through consumers' own soundness
  // checks (PDR's relative-induction query), exactly like any other
  // candidate.  A forged snapshot can waste work, never flip a verdict.
  std::uint64_t restored = 0;
  if (hubp != nullptr && !opts.seed_lemmas.empty()) {
    for (const Lemma& l : opts.seed_lemmas) {
      Lemma c;
      c.clause = l.clause;
      c.grade = LemmaGrade::kCandidate;
      if (hub.publish(std::move(c))) ++restored;
    }
    if (obs::enabled()) {
      obs::emit("snapshot_restore",
                {{"lemmas", opts.seed_lemmas.size()}, {"accepted", restored}});
    }
  }
  // Per-member fates (winners, losers and crashes alike) — attached to
  // every returned result so run_report can list them.  `mu` guards them
  // against the threaded workers and the checkpoint writer.
  std::mutex mu;
  std::vector<MemberOutcome> outcomes;
  auto record_outcome = [&outcomes](PortfolioMember m, const EngineResult& r) {
    MemberOutcome o;
    o.member = to_string(m);
    o.verdict = r.verdict;
    o.seconds = r.seconds;
    o.k_fp = r.k_fp;
    o.error = r.error;
    outcomes.push_back(std::move(o));
  };
  // Lemma checkpointing (see portfolio.hpp).  Failure containment:
  // checkpointing is an observer — an injected or real I/O failure here is
  // counted and dropped, never surfaced into the verdict path.
  const bool ckpt_on = !opts.checkpoint_path.empty() && hubp != nullptr;
  const std::uint64_t dhash = ckpt_on ? design_hash(model) : 0;
  double last_ckpt = 0.0;  // touched only by the scheduler driving thread
  // Serializes snapshot writes: the guard thread's periodic write can race
  // finalize()'s final one, and both use the same temp file.
  std::mutex ckpt_mu;
  auto write_checkpoint = [&](const char* reason) {
    if (!ckpt_on) return;
    std::lock_guard<std::mutex> ckpt_lock(ckpt_mu);
    try {
      LemmaSnapshot snap;
      snap.design = dhash;
      snap.num_latches = model.num_latches();
      {
        std::lock_guard<std::mutex> lock(mu);
        snap.progress.reserve(outcomes.size());
        for (const MemberOutcome& o : outcomes)
          snap.progress.push_back({o.member, o.k_fp});
      }
      snap.lemmas = hub.export_lemmas();
      std::string werr;
      bool ok = write_snapshot_file(opts.checkpoint_path, snap, &werr);
      if (obs::enabled()) {
        obs::emit("checkpoint", {{"reason", reason},
                                 {"lemmas", snap.lemmas.size()},
                                 {"ok", ok ? 1u : 0u}});
      }
    } catch (...) {
      if (obs::enabled()) obs::emit("checkpoint", {{"reason", reason}, {"ok", 0u}});
    }
  };
  auto finalize = [&](EngineResult r) {
    r.seconds = elapsed();
    // Final checkpoint before `outcomes` is moved out: even a run shorter
    // than the interval leaves a complete snapshot behind.
    write_checkpoint("final");
    r.members = std::move(outcomes);
    if (hubp != nullptr) {
      LemmaExchangeStats hs = hub.stats();
      r.stats.lemmas_published = hs.published;
      r.stats.lemmas_consumed = hs.fetched;
      r.stats.lemmas_restored = restored;
    }
    return r;
  };
  auto member_options = [&](const EngineOptions& base, std::size_t slot,
                            double budget) {
    EngineOptions eo = base;
    eo.time_limit_sec = budget;
    eo.exchange = hubp;
    eo.exchange_source = static_cast<std::uint8_t>((slot % 250) + 1);
    return eo;
  };
  std::atomic<bool>* external = opts.engine_defaults.cancel;

  unsigned jobs = opts.jobs;
  if (jobs == 0) {
    // One thread per member by default.  Members are pure CPU burners, so
    // even on fewer cores racing + early cancellation beats time slicing
    // (the OS preempts; the fastest member still finishes early and cancels
    // the rest) — only very long member lists are capped to the hardware.
    unsigned hw = std::thread::hardware_concurrency();
    jobs = static_cast<unsigned>(
        std::min<std::size_t>(opts.members.size(), std::max(hw, 8u)));
  }
  jobs = static_cast<unsigned>(
      std::min<std::size_t>(jobs, opts.members.size()));

  if (jobs <= 1) {
    // Sequential round-robin scheduler (deterministic cross-check mode).
    // Lemmas survive the slice boundaries through the hub, so later slices
    // restart engines with everything earlier slices learned.  Each slice
    // gets a fresh publisher slot: a restarted member must see its own
    // previous slice's lemmas as foreign, or it could never re-seed itself.
    double slice = opts.slice_seconds;
    std::size_t slot = 0;
    unsigned round = 0;
    while (elapsed() < opts.time_limit_sec) {
      std::size_t round_errors = 0;
      EngineResult err;
      for (std::size_t i = 0; i < opts.members.size(); ++i) {
        if (external != nullptr && external->load(std::memory_order_relaxed)) {
          last.engine = "portfolio";  // no winner: don't leak a member name
          return finalize(std::move(last));
        }
        double budget = std::min(slice, opts.time_limit_sec - elapsed());
        if (budget <= 0) break;
        // Later rounds re-run the sweep *extended* (same prefix first), so
        // random-sim coverage still grows with the budget deterministically.
        unsigned sim_rounds = kSimSweepRounds << std::min(round, 10u);
        if (obs::enabled()) {
          obs::emit("member_start", {{"member", to_string(opts.members[i])},
                                     {"round", round},
                                     {"budget_sec", budget}});
        }
        EngineResult r =
            run_member(model, prop, opts.members[i],
                       member_options(opts.engine_defaults, slot++, budget),
                       opts.sim_seed, sim_rounds);
        if (obs::enabled()) {
          obs::emit("member_done", {{"member", to_string(opts.members[i])},
                                    {"verdict", to_string(r.verdict)},
                                    {"seconds", r.seconds}});
        }
        record_outcome(opts.members[i], r);
        // Slice boundaries are the sequential scheduler's checkpoint
        // cadence (no guard thread to drive the interval).
        if (ckpt_on && elapsed() - last_ckpt >= opts.checkpoint_interval_sec) {
          write_checkpoint("interval");
          last_ckpt = elapsed();
        }
        if (r.verdict == Verdict::kPass || r.verdict == Verdict::kFail) {
          r.engine = std::string("portfolio/") + to_string(opts.members[i]);
          return finalize(std::move(r));
        }
        if (r.verdict == Verdict::kError) {
          ++round_errors;
          err = std::move(r);
        } else {
          last = std::move(r);
        }
      }
      // A whole round of failures means no member can make progress —
      // surface the error instead of burning the rest of the budget.
      if (round_errors == opts.members.size()) {
        err.engine = "portfolio";
        return finalize(std::move(err));
      }
      slice *= 2.0;
      ++round;
    }
    last.engine = "portfolio";
    return finalize(std::move(last));
  }

  // Threaded scheduler: a pool of `jobs` workers drains the member queue;
  // the first definite verdict (kPass/kFail) flips the shared cancellation
  // token and every peer winds down cooperatively.  All threads are joined
  // before returning (engines never detach work — see engine.hpp).
  std::atomic<bool> cancel{false};
  std::atomic<bool> watchdog_fired{false};
  std::atomic<std::size_t> next{0};
  // Publisher slots for relaunched members, past the initial assignment:
  // a relaunch gets a *fresh* slot so the hub treats its previous
  // publications as foreign — re-reading them is exactly the warm start.
  std::atomic<std::size_t> pub_slot{opts.members.size()};
  int winner = -1;
  EngineResult win;
  bool have_unknown = false;  // guarded by mu; `last` holds a healthy result
  auto worker = [&] {
    try {
      while (!cancel.load(std::memory_order_relaxed)) {
        std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= opts.members.size()) break;
        double remaining = opts.time_limit_sec - elapsed();
        if (remaining <= 0) break;
        // Fair share when the pool is narrower than the member list: the
        // queue behind this member must still get its turn, so cap the
        // budget at this member's share of the pool's remaining capacity.
        // With jobs >= members the share is >= remaining (no cap) — every
        // member simply runs with the full remaining budget.
        std::size_t queued = opts.members.size() - i;
        double budget =
            std::min(remaining, remaining * jobs / static_cast<double>(queued));
        PortfolioMember m = opts.members[i];
        // The degraded option base survives across relaunches of this
        // slot, so ladder steps accumulate (an OOM clamp stays on even if
        // a later attempt dies of something else).
        EngineOptions base = opts.engine_defaults;
        MemberOutcome o;
        o.member = to_string(m);
        EngineResult r;
        unsigned attempt = 0;
        for (;;) {
          EngineOptions eo = member_options(
              base,
              attempt == 0 ? i
                           : pub_slot.fetch_add(1, std::memory_order_relaxed),
              budget);
          eo.cancel = &cancel;
          if (opts.active_probe != nullptr) opts.active_probe->fetch_add(1);
          if (obs::enabled()) {
            obs::emit("worker_start", {{"member", to_string(m)},
                                       {"slot", i},
                                       {"attempt", attempt},
                                       {"budget_sec", budget}});
          }
          r = run_member(model, prop, m, eo, opts.sim_seed, kSimSweepRounds);
          if (opts.active_probe != nullptr) opts.active_probe->fetch_sub(1);
          if (obs::enabled()) {
            obs::emit("worker_done", {{"member", to_string(m)},
                                      {"slot", i},
                                      {"verdict", to_string(r.verdict)},
                                      {"seconds", r.seconds}});
          }
          o.seconds += r.seconds;
          if (r.verdict != Verdict::kError) break;
          o.last_error = r.error;
          // Self-healing: relaunch the errored slot under the
          // RestartPolicy — bounded retries, exponential backoff with
          // deterministic jitter, degradation ladder — warm-started from
          // the current exchange (fresh publisher slot above).
          if (attempt >= opts.restart.max_retries) break;
          if (cancel.load(std::memory_order_relaxed)) break;
          double delay = util::backoff_delay_sec(
              opts.restart, attempt,
              opts.sim_seed ^ (0x9e3779b97f4a7c15ull * (i + 1)));
          if (opts.time_limit_sec - elapsed() <= delay) break;
          if (!util::interruptible_sleep(delay, &cancel)) break;
          degrade_for_retry(base, r.error.kind);
          // kSolverLimit relaunches with half the leash: the member
          // already proved it cannot finish in a full share, so leave the
          // reclaimed time to healthier peers.
          double leash =
              r.error.kind == ErrorKind::kSolverLimit ? 0.5 : 1.0;
          budget = std::min(budget, opts.time_limit_sec - elapsed()) * leash;
          if (budget <= 0) break;
          ++attempt;
          o.restarts = attempt;
          if (obs::enabled()) {
            obs::emit("member_restart",
                      {{"member", to_string(m)},
                       {"attempt", attempt},
                       {"error", to_string(o.last_error.kind)},
                       {"delay_sec", delay}});
          }
        }
        o.verdict = r.verdict;
        o.k_fp = r.k_fp;
        o.error = r.error;
        std::lock_guard<std::mutex> lock(mu);
        outcomes.push_back(std::move(o));
        if (r.verdict == Verdict::kPass || r.verdict == Verdict::kFail) {
          if (winner < 0) {
            winner = static_cast<int>(i);
            win = std::move(r);
            cancel.store(true, std::memory_order_relaxed);
            // The winning verdict propagates cancellation to every peer.
            if (obs::enabled()) {
              obs::emit("cancel", {{"winner", to_string(opts.members[i])},
                                   {"verdict", to_string(win.verdict)}});
            }
          }
        } else if (r.verdict == Verdict::kUnknown || !have_unknown) {
          // Prefer a healthy kUnknown over a crashed member's kError for
          // the no-winner return; a kError only sticks while nothing
          // healthy has reported.
          if (r.verdict == Verdict::kUnknown) have_unknown = true;
          last = std::move(r);
        }
      }
    } catch (const std::exception& e) {
      // run_member contains engine exceptions; this boundary covers the
      // scheduler bookkeeping itself (option copies, obs emission) so a
      // worker can never take down the process or skip its join.
      std::lock_guard<std::mutex> lock(mu);
      MemberOutcome o;
      o.member = "portfolio-worker";
      o.verdict = Verdict::kError;
      o.error = classify_exception(e);
      outcomes.push_back(std::move(o));
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu);
      MemberOutcome o;
      o.member = "portfolio-worker";
      o.verdict = Verdict::kError;
      o.error = {ErrorKind::kInternal, "unknown exception"};
      outcomes.push_back(std::move(o));
    }
  };

  // One guard thread serves three duties on a shared condition-variable
  // wait: relaying an external cancellation token into the pool's internal
  // one; the watchdog — if cooperative cancellation misses the deadline
  // (an engine stalled outside its poll loop), force internal cancellation
  // after a grace period and mark the escalation; and driving the periodic
  // lemma checkpoint (plus an extra snapshot on watchdog or memory-budget
  // escalation — the moments a crash becomes likely).  The CV (unlike the
  // former busy-poll) lets the exit path wake it immediately.
  struct Relay {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
  };
  Relay relay;
  const bool watchdog_on =
      opts.watchdog_grace_sec > 0 && opts.time_limit_sec >= 0;
  std::thread guard;
  if (external != nullptr || watchdog_on || ckpt_on) {
    guard = std::thread([&] {
      try {
        const double deadline =
            opts.time_limit_sec + std::max(0.0, opts.watchdog_grace_sec);
        bool mem_ckpt_done = false;
        std::unique_lock<std::mutex> lock(relay.mu);
        while (!relay.done) {
          relay.cv.wait_for(lock, std::chrono::milliseconds(2));
          if (relay.done) break;
          if (external != nullptr &&
              external->load(std::memory_order_relaxed)) {
            cancel.store(true, std::memory_order_relaxed);
          }
          if (ckpt_on) {
            util::MemoryBudget& mb = util::MemoryBudget::instance();
            if (mb.limited()) mb.poll();
            if (mb.soft() && !mem_ckpt_done) {
              // Memory pressure escalated: snapshot now, while the
              // allocator still can — the ladder's next rung is bailing
              // out, and past it the OOM killer.
              mem_ckpt_done = true;
              write_checkpoint("mem-budget");
              last_ckpt = elapsed();
            } else if (elapsed() - last_ckpt >=
                       opts.checkpoint_interval_sec) {
              write_checkpoint("interval");
              last_ckpt = elapsed();
            }
          }
          if (watchdog_on && elapsed() >= deadline &&
              !watchdog_fired.load(std::memory_order_relaxed)) {
            watchdog_fired.store(true, std::memory_order_relaxed);
            cancel.store(true, std::memory_order_relaxed);
            write_checkpoint("watchdog");
            if (obs::enabled()) {
              obs::emit("watchdog",
                        {{"grace_sec", opts.watchdog_grace_sec},
                         {"elapsed_sec", elapsed()}});
            }
          }
        }
      } catch (...) {
        // Never let the guard take the process down: losing it only means
        // cancellation waits for the workers' own deadline polls.
      }
    });
  }
  // Exception-safe teardown, in reverse declaration order: workers are
  // joined first (GuardPool below), then the guard is woken and joined —
  // on *every* exit path, including a throwing spawn loop.
  struct GuardJoin {
    Relay& relay;
    std::thread& t;
    ~GuardJoin() {
      {
        std::lock_guard<std::mutex> lock(relay.mu);
        relay.done = true;
      }
      relay.cv.notify_all();
      if (t.joinable()) t.join();
    }
  };
  GuardJoin guard_join{relay, guard};

  std::vector<std::thread> pool;
  struct PoolJoin {
    std::vector<std::thread>& pool;
    ~PoolJoin() {
      for (std::thread& t : pool)
        if (t.joinable()) t.join();
    }
  };
  PoolJoin pool_join{pool};
  pool.reserve(jobs);
  try {
    for (unsigned j = 0; j < jobs; ++j) pool.emplace_back(worker);
  } catch (const std::system_error&) {
    // Thread creation failed under resource pressure: degrade to whatever
    // part of the pool did start instead of dying.
  }
  if (pool.empty()) worker();  // last resort: run the queue inline
  for (std::thread& t : pool) t.join();

  if (winner >= 0) {
    win.engine = std::string("portfolio/") +
                 to_string(opts.members[static_cast<std::size_t>(winner)]);
    return finalize(std::move(win));
  }
  // No winner.  Every member failing is a portfolio-level error; a mix of
  // kUnknown and crashes stays kUnknown (the healthy members simply ran
  // out of budget) with the crashes listed in `members`.
  bool all_error = !outcomes.empty();
  for (const MemberOutcome& o : outcomes)
    if (o.verdict != Verdict::kError) all_error = false;
  if (all_error) {
    last.verdict = Verdict::kError;
    last.error = outcomes.front().error;
  } else if (watchdog_fired.load(std::memory_order_relaxed) &&
             last.verdict == Verdict::kUnknown &&
             last.error.kind == ErrorKind::kNone) {
    last.error = {ErrorKind::kSolverLimit,
                  "watchdog: deadline passed without cooperative cancellation"};
  }
  last.engine = "portfolio";
  return finalize(std::move(last));
}

}  // namespace itpseq::mc
