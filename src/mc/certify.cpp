#include "mc/certify.hpp"

#include "cnf/unroller.hpp"
#include "sat/solver.hpp"

namespace itpseq::mc {

namespace {

/// Encode `cert.root` over the latch values of frame `t`.
sat::Lit encode_r(const Certificate& cert, cnf::Unroller& unr, unsigned t) {
  return unr.encode_state_pred(cert.graph, cert.root, t, 0);
}

}  // namespace

CertifyResult check_certificate(const aig::Aig& model, std::size_t prop,
                                const Certificate& cert) {
  CertifyResult res;
  if (prop >= model.num_outputs()) {
    res.error = "property index out of range";
    return res;
  }
  if (cert.graph.num_inputs() < model.num_latches()) {
    res.error = "certificate graph has fewer inputs than the model latches";
    return res;
  }

  // C1: S0 AND NOT R unsat.
  {
    sat::Solver s;
    cnf::Unroller unr(model, s);
    unr.assert_init(0);
    unr.assert_constraints(0, 0);
    s.add_clause({sat::neg(encode_r(cert, unr, 0))});
    if (s.solve() != sat::Status::kUnsat) {
      res.error = "C1 violated: an initial state lies outside R";
      return res;
    }
  }
  // C2: S0 AND bad unsat.
  {
    sat::Solver s;
    cnf::Unroller unr(model, s);
    unr.assert_init(0);
    unr.assert_constraints(0, 0);
    s.add_clause({unr.bad_lit(0, 0, prop)});
    if (s.solve() != sat::Status::kUnsat) {
      res.error = "C2 violated: an initial state is bad";
      return res;
    }
  }
  // C3: R AND T AND NOT R' unsat.
  {
    sat::Solver s;
    cnf::Unroller unr(model, s);
    s.add_clause({encode_r(cert, unr, 0)});
    unr.add_transition(0, 0);
    unr.assert_constraints(0, 0);
    unr.assert_constraints(1, 0);
    s.add_clause({sat::neg(encode_r(cert, unr, 1))});
    if (s.solve() != sat::Status::kUnsat) {
      res.error = "C3 violated: R is not closed under the transition relation";
      return res;
    }
  }
  // C4: R AND T AND bad' unsat.
  {
    sat::Solver s;
    cnf::Unroller unr(model, s);
    s.add_clause({encode_r(cert, unr, 0)});
    unr.add_transition(0, 0);
    unr.assert_constraints(0, 0);
    unr.assert_constraints(1, 0);
    s.add_clause({unr.bad_lit(1, 0, prop)});
    if (s.solve() != sat::Status::kUnsat) {
      res.error = "C4 violated: a state of R has a bad successor";
      return res;
    }
  }
  res.ok = true;
  return res;
}

}  // namespace itpseq::mc
