#include "mc/lemma_exchange.hpp"

#include <algorithm>

#include "obs/trace.hpp"
#include "util/fault.hpp"

namespace itpseq::mc {

const char* to_string(LemmaGrade g) {
  switch (g) {
    case LemmaGrade::kInvariant:
      return "invariant";
    case LemmaGrade::kFrame:
      return "frame";
    case LemmaGrade::kCandidate:
      return "candidate";
  }
  return "?";
}

namespace {

constexpr std::uint32_t kInvariantStrength = 0xffffffffu;

/// Strength key for the dedup index: higher keys subsume lower ones for the
/// same clause.  kFrame strength grows with the bound but stays below any
/// kInvariant entry.
std::uint32_t strength(const Lemma& l) {
  switch (l.grade) {
    case LemmaGrade::kCandidate:
      return 0;
    case LemmaGrade::kFrame:
      return 1 + std::min<std::uint32_t>(l.bound, kInvariantStrength - 2);
    case LemmaGrade::kInvariant:
      return kInvariantStrength;
  }
  return 0;
}

}  // namespace

LemmaExchange::LemmaExchange(std::size_t num_latches, std::size_t capacity)
    : num_latches_(num_latches), capacity_(capacity) {}

bool LemmaExchange::publish(Lemma lemma) {
  ITPSEQ_FAULT_POINT("exchange.publish");
  const char* obs_grade = to_string(lemma.grade);
  auto obs_report = [&](std::size_t lits, bool accepted) {
    if (!obs::enabled()) return;
    if (accepted)
      obs::counters().lemmas_published.fetch_add(1, std::memory_order_relaxed);
    obs::emit("lemma_publish", {{"grade", obs_grade},
                                {"lits", lits},
                                {"accepted", accepted ? 1u : 0u}});
  };
  std::vector<LatchLit>& c = lemma.clause;
  std::sort(c.begin(), c.end());
  c.erase(std::unique(c.begin(), c.end()), c.end());
  bool bad = c.empty();
  for (std::size_t i = 0; i < c.size() && !bad; ++i) {
    if (latch_lit_index(c[i]) >= num_latches_) bad = true;  // foreign model
    if (i + 1 < c.size() && latch_lit_index(c[i]) == latch_lit_index(c[i + 1]))
      bad = true;  // l OR NOT l: tautology, useless to share
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (bad) {
    ++stats_.rejected;
    obs_report(c.size(), false);
    return false;
  }
  // Dedup before the capacity check, and keep one live copy per clause
  // (the strongest).  A re-publish is a worthwhile *upgrade* only when it
  // promotes to kInvariant or at least doubles a kFrame bound — a clause
  // propagating through PDR frames one by one must not flood the store
  // with near-identical copies.  An upgrade tombstones the weaker copy so
  // subscribers that have not read it yet only ever see the stronger one.
  std::uint32_t s = strength(lemma);
  auto it = seen_.find(c);
  if (it != seen_.end()) {
    std::uint32_t stored = it->second.first;
    bool upgrade = (s == kInvariantStrength && stored < s) ||
                   (s < kInvariantStrength && stored > 0 &&
                    s >= 2 * static_cast<std::uint64_t>(stored)) ||
                   (stored == 0 && s > 0);
    if (!upgrade) {
      ++stats_.rejected;
      obs_report(c.size(), false);
      return false;
    }
  }
  if (lemmas_.size() >= capacity_) {
    ++stats_.rejected;
    obs_report(c.size(), false);
    return false;
  }
  if (it != seen_.end()) {
    dead_[it->second.second] = 1;
    it->second = {s, lemmas_.size()};
  } else {
    seen_.emplace(c, std::make_pair(s, lemmas_.size()));
  }
  lemmas_.push_back(std::move(lemma));
  obs_report(lemmas_.back().clause.size(), true);
  delivered_.push_back(0);
  dead_.push_back(0);
  ++stats_.published;
  return true;
}

std::vector<Lemma> LemmaExchange::fetch(std::size_t& cursor,
                                        std::uint8_t self) {
  ITPSEQ_FAULT_POINT("exchange.fetch");
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Lemma> out;
  for (; cursor < lemmas_.size(); ++cursor) {
    if (dead_[cursor]) continue;  // superseded by a later, stronger copy
    if (self != 0 && lemmas_[cursor].source == self) continue;
    out.push_back(lemmas_[cursor]);
    // Count each lemma's *first* delivery to a foreign subscriber only —
    // more subscribers or restarted sequential members re-reading the
    // store must not inflate the figure.
    if (!delivered_[cursor]) {
      delivered_[cursor] = 1;
      ++stats_.fetched;
    }
  }
  return out;
}

std::vector<Lemma> LemmaExchange::export_lemmas() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Lemma> out;
  out.reserve(lemmas_.size());
  for (std::size_t i = 0; i < lemmas_.size(); ++i) {
    if (dead_[i]) continue;
    out.push_back(lemmas_[i]);
  }
  return out;
}

std::size_t LemmaExchange::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lemmas_.size();
}

LemmaExchangeStats LemmaExchange::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void assert_lemma_clause(cnf::Unroller& unr, const Lemma& l, unsigned t,
                         std::uint32_t label) {
  std::vector<sat::Lit> cls;
  cls.reserve(l.clause.size());
  for (LatchLit ll : l.clause) {
    sat::Lit sl = unr.latch_lit(latch_lit_index(ll), t, label);
    cls.push_back(latch_lit_sign(ll) ? sat::neg(sl) : sl);
  }
  unr.solver().add_clause(std::move(cls), label);
}

std::size_t publish_candidates(LemmaExchange* hub, const aig::Aig& g,
                               aig::Lit root, std::size_t quota,
                               std::size_t max_len, std::uint8_t source) {
  if (hub == nullptr || quota == 0) return 0;
  std::size_t accepted = 0;
  for (auto& cls : extract_latch_clauses(g, root, quota, max_len)) {
    Lemma l;
    l.clause = std::move(cls);
    l.grade = LemmaGrade::kCandidate;
    l.source = source;
    if (hub->publish(std::move(l))) ++accepted;
  }
  return accepted;
}

aig::Lit latch_clause_pred(aig::Aig& g, const std::vector<LatchLit>& clause) {
  std::vector<aig::Lit> lits;
  lits.reserve(clause.size());
  for (LatchLit ll : clause)
    lits.push_back(aig::lit_xor(g.input(latch_lit_index(ll)),
                                latch_lit_sign(ll)));
  return g.make_or_many(lits);
}

std::size_t LemmaFeed::poll() {
  if (hub == nullptr) return 0;
  std::size_t got = 0;
  std::size_t got_inv = 0, got_frame = 0, got_cand = 0;
  for (Lemma& l : hub->fetch(cursor, self)) {
    ++got;
    switch (l.grade) {
      case LemmaGrade::kInvariant:
        ++got_inv;
        invariants.push_back(std::move(l));
        break;
      case LemmaGrade::kFrame:
        ++got_frame;
        frames.push_back(std::move(l));
        break;
      case LemmaGrade::kCandidate:
        ++got_cand;
        candidates.push_back(std::move(l));
        break;
    }
  }
  if (got > 0 && obs::enabled()) {
    obs::counters().lemmas_fetched.fetch_add(got, std::memory_order_relaxed);
    obs::emit("lemma_fetch", {{"invariant", got_inv},
                              {"frame", got_frame},
                              {"candidate", got_cand}});
  }
  return got;
}

std::vector<std::vector<LatchLit>> extract_latch_clauses(const aig::Aig& g,
                                                         aig::Lit root,
                                                         std::size_t max_clauses,
                                                         std::size_t max_len) {
  std::vector<std::vector<LatchLit>> out;
  if (root == aig::kTrue || root == aig::kFalse) return out;

  // A disjunct leaf of ~(AND-tree): input literal -> latch literal.
  auto as_latch_lit = [&](aig::Lit l, LatchLit& ll) {
    std::size_t idx = g.input_index(aig::lit_var(l));
    if (idx == aig::Aig::kNoIndex) return false;
    ll = mk_latch_lit(idx, aig::lit_sign(l));
    return true;
  };

  // Read literal `l` as a clause (OR over input literals): either a single
  // input literal, or a negated AND node whose De Morgan expansion bottoms
  // out in input literals.
  auto as_clause = [&](aig::Lit l, std::vector<LatchLit>& clause) {
    clause.clear();
    LatchLit unit;
    if (as_latch_lit(l, unit)) {
      clause.push_back(unit);
      return true;
    }
    const aig::Node& n = g.node(aig::lit_var(l));
    if (n.type != aig::NodeType::kAnd || !aig::lit_sign(l)) return false;
    // ~(a AND b) = ~a OR ~b; recurse through positive AND children.
    std::vector<aig::Lit> stack{n.fanin0, n.fanin1};
    while (!stack.empty()) {
      aig::Lit f = stack.back();
      stack.pop_back();
      LatchLit ll;
      if (as_latch_lit(aig::lit_not(f), ll)) {
        if (clause.size() >= max_len) return false;
        clause.push_back(ll);
        continue;
      }
      const aig::Node& fn = g.node(aig::lit_var(f));
      if (fn.type == aig::NodeType::kAnd && !aig::lit_sign(f)) {
        stack.push_back(fn.fanin0);
        stack.push_back(fn.fanin1);
        continue;
      }
      return false;  // disjunct is not an input literal
    }
    return !clause.empty();
  };

  // Top-level conjunction walk of `root`.
  std::vector<aig::Lit> conj{root};
  std::vector<LatchLit> clause;
  while (!conj.empty() && out.size() < max_clauses) {
    aig::Lit l = conj.back();
    conj.pop_back();
    if (l == aig::kTrue) continue;
    const aig::Node& n = g.node(aig::lit_var(l));
    if (n.type == aig::NodeType::kAnd && !aig::lit_sign(l)) {
      conj.push_back(n.fanin0);
      conj.push_back(n.fanin1);
      continue;
    }
    if (as_clause(l, clause)) out.push_back(clause);
  }
  return out;
}

}  // namespace itpseq::mc
