// certify.hpp — inductive-invariant certificates for PASS verdicts.
//
// A modern model checker should not just answer "PASS" — it should emit a
// *checkable certificate*, so a downstream user does not have to trust the
// engine's (considerable) internals.  The interpolation engines produce
// one naturally: at the fixpoint, the accumulated state set
//
//   R = S0 ∨ ℐ_1 ∨ ... ∨ ℐ_{j-1}      (with ℐ_j ⇒ R)
//
// is closed under the transition relation and none of its states has a bad
// successor.  R itself may contain (unreachable) bad states, so the actual
// invariant is phi = R ∧ ¬bad; checking phi reduces to four *plain* SAT
// queries over R (no quantifier elimination needed — see check_certificate):
//
//   C1:  S0 ∧ ¬R                    unsat   (initiation)
//   C2:  S0 ∧ bad                   unsat   (initial safety)
//   C3:  R ∧ T ∧ ¬R'                unsat   (consecution)
//   C4:  R ∧ T ∧ bad'               unsat   (one-step safety)
//
// C1-C4 imply that phi = R ∧ ¬(∃inputs. bad) satisfies init ⇒ phi,
// phi ∧ T ⇒ phi' and phi ⇒ ¬bad — a textbook inductive safety proof.
// Invariant constraints of the model are assumed in every frame, matching
// AIGER constrained-trace semantics.
//
// The checker shares the Unroller/Tseitin encoding with the engines but
// runs fresh SAT solvers; for a fully independent audit, export R and the
// model and discharge C1-C4 with an external solver.
#pragma once

#include <string>

#include "aig/aig.hpp"
#include "mc/result.hpp"

namespace itpseq::mc {

/// Result of a certificate check.
struct CertifyResult {
  bool ok = false;
  std::string error;  // first violated condition, human-readable
};

/// Check conditions C1-C4 for `cert` (see Certificate in result.hpp:
/// cert.graph's input i stands for model latch i).
CertifyResult check_certificate(const aig::Aig& model, std::size_t prop,
                                const Certificate& cert);

}  // namespace itpseq::mc
