#include "mc/engine.hpp"

#include <algorithm>
#include <ios>
#include <new>

#include "aig/compact.hpp"
#include "obs/trace.hpp"
#include "util/mem_budget.hpp"

namespace itpseq::mc {

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::kPass:
      return "PASS";
    case Verdict::kFail:
      return "FAIL";
    case Verdict::kUnknown:
      return "UNKNOWN";
    case Verdict::kError:
      return "ERROR";
  }
  return "?";
}

const char* to_string(ErrorKind k) {
  switch (k) {
    case ErrorKind::kNone:
      return "NONE";
    case ErrorKind::kOutOfMemory:
      return "OOM";
    case ErrorKind::kSolverLimit:
      return "SOLVER-LIMIT";
    case ErrorKind::kInternal:
      return "INTERNAL";
    case ErrorKind::kIoError:
      return "IO";
  }
  return "?";
}

ErrorInfo classify_exception(const std::exception& e) {
  ErrorInfo info;
  if (dynamic_cast<const std::bad_alloc*>(&e) != nullptr) {
    info.kind = ErrorKind::kOutOfMemory;
    info.message = "out of memory";
    return info;
  }
  info.message = e.what();
  if (dynamic_cast<const std::ios_base::failure*>(&e) != nullptr ||
      info.message.rfind("aiger:", 0) == 0 ||
      info.message.rfind("blif:", 0) == 0 ||
      info.message.rfind("snapshot:", 0) == 0) {
    info.kind = ErrorKind::kIoError;
  } else {
    info.kind = ErrorKind::kInternal;
  }
  return info;
}

Engine::Engine(const aig::Aig& model, std::size_t prop, EngineOptions opts)
    : model_(model), prop_(prop), opts_(opts), space_(model) {}

EngineResult Engine::run() {
  start_ = std::chrono::steady_clock::now();
  // Tag every event this thread emits (including from the SAT core) with
  // the engine's name, and time the whole run as one top-level span.
  obs::ScopedEngine obs_tag(name());
  obs::Span obs_span("run");
  EngineResult out;
  out.engine = name();
  // Containment boundary: execute() mutates `out` in place, so whatever
  // stats accumulated before an exception survive into the kError result.
  try {
    if (!preliminary_checks(out)) execute(out);
  } catch (const std::exception& e) {
    out.verdict = Verdict::kError;
    out.error = classify_exception(e);
  } catch (...) {
    out.verdict = Verdict::kError;
    out.error = {ErrorKind::kInternal, "unknown exception"};
  }
  if (out.verdict == Verdict::kError && obs::enabled()) {
    obs::emit("engine_error",
              {{"engine", name()}, {"kind", to_string(out.error.kind)}});
  }
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  out.stats.state_aig_nodes = space_.graph().num_ands();
  return out;
}

double Engine::remaining() const {
  double used =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  return std::max(0.0, opts_.time_limit_sec - used);
}

sat::Budget Engine::sat_budget() const {
  sat::Budget b;
  b.seconds = remaining();
  b.cancel = opts_.cancel;
  return b;
}

bool Engine::preliminary_checks(EngineResult& out) {
  if (prop_ >= model_.num_outputs()) {
    out.verdict = Verdict::kPass;  // no bad output: vacuously safe
    return true;
  }
  aig::Lit bad = model_.output(prop_);
  if (bad == aig::kFalse) {
    out.verdict = Verdict::kPass;
    out.certificate = make_certificate(aig::kTrue);  // bad is constant false
    return true;
  }
  // Depth-0 check: S0 AND bad(V^0).
  sat::Solver solver;
  opts_.apply_sat_options(solver);
  cnf::Unroller unr(model_, solver);
  unr.assert_init(0);
  unr.assert_constraints(0, 0);
  solver.add_clause({unr.bad_lit(0, 0, prop_)}, 0);
  switch (solver.solve(sat_budget())) {
    case sat::Status::kSat:
      out.verdict = Verdict::kFail;
      out.k_fp = 0;
      out.cex = extract_trace(solver, unr, 0);
      return true;
    case sat::Status::kUnsat:
      return false;  // continue with the main algorithm
    case sat::Status::kUnknown:
      out.verdict = Verdict::kUnknown;
      return true;
  }
  return false;
}

Trace Engine::extract_trace(const sat::Solver& solver,
                            const cnf::Unroller& unroller, unsigned k) const {
  Trace t;
  t.initial_latches.resize(model_.num_latches(), false);
  for (std::size_t i = 0; i < model_.num_latches(); ++i) {
    sat::Lit l = unroller.lookup(model_.latch(i), 0);
    if (l != sat::kNoLit)
      t.initial_latches[i] =
          sat::lbool_xor(solver.model()[sat::var(l)], sat::sign(l)) ==
          sat::LBool::kTrue;
  }
  for (unsigned f = 0; f <= k; ++f) {
    std::vector<bool> in(model_.num_inputs(), false);
    for (std::size_t i = 0; i < model_.num_inputs(); ++i) {
      sat::Lit l = unroller.lookup(model_.input(i), f);
      if (l != sat::kNoLit)
        in[i] = sat::lbool_xor(solver.model()[sat::var(l)], sat::sign(l)) ==
                sat::LBool::kTrue;
    }
    t.inputs.push_back(std::move(in));
  }
  return t;
}

Certificate Engine::make_certificate(aig::Lit r) const {
  aig::CompactResult c = aig::compact(space_.graph(), {r});
  return Certificate{std::move(c.graph), c.roots[0]};
}

void Engine::absorb_stats(EngineResult& out, const sat::Solver& solver) const {
  ++out.stats.sat_calls;
  const sat::SolverStats& s = solver.stats();
  out.stats.sat_conflicts += s.conflicts;
  out.stats.sat_propagations += s.propagations;
  out.stats.sat_bin_propagations += s.bin_propagations;
  out.stats.sat_gc_runs += s.gc_runs;
  out.stats.sat_arena_reclaimed += s.wasted_bytes_reclaimed;
  out.stats.sat_arena_peak = std::max<std::size_t>(
      out.stats.sat_arena_peak, s.peak_arena_bytes);
  for (std::size_t i = 0; i < s.glue_hist.size(); ++i)
    out.stats.sat_glue_hist[i] += s.glue_hist[i];
  out.stats.sat_inprocess_rounds += s.inprocess_rounds;
  out.stats.sat_subsumed += s.subsumed + s.strengthened;
  out.stats.sat_vars_eliminated += s.vars_eliminated;
  out.stats.sat_vivified += s.vivified;
  out.stats.sat_failed_literals += s.failed_literals;
  out.stats.sat_hyper_binaries += s.hyper_binaries;
  if (solver.proof_enabled() && solver.proof().complete())
    out.stats.proof_clauses += solver.proof().core().size();
}

}  // namespace itpseq::mc
