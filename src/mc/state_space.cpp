#include "mc/state_space.hpp"

#include "aig/compact.hpp"
#include "cnf/tseitin.hpp"

namespace itpseq::mc {

StateSpace::StateSpace(const aig::Aig& model) : model_(model) {
  for (std::size_t i = 0; i < model.num_latches(); ++i) {
    aig::Var lv = aig::lit_var(model.latch(i));
    sets_.add_input(model.name(lv).empty() ? "latch" + std::to_string(i)
                                           : model.name(lv));
  }
}

aig::Lit StateSpace::init_pred(const std::vector<bool>& visible) {
  std::vector<aig::Lit> conj;
  for (std::size_t i = 0; i < model_.num_latches(); ++i) {
    if (!visible.empty() && !visible[i]) continue;
    switch (model_.latch_init(i)) {
      case aig::LatchInit::kZero:
        conj.push_back(aig::lit_not(sets_.input(i)));
        break;
      case aig::LatchInit::kOne:
        conj.push_back(sets_.input(i));
        break;
      case aig::LatchInit::kUndef:
        break;
    }
  }
  return sets_.make_and_many(conj);
}

Implication StateSpace::implies(aig::Lit a, aig::Lit b, double time_limit_sec,
                                const std::atomic<bool>* cancel) {
  // Constant short-circuits (also avoids encoding constants).
  if (a == aig::kFalse || b == aig::kTrue || a == b) return Implication::kHolds;
  ++sat_calls_;
  sat::Solver solver;
  std::vector<sat::Lit> leaf_vars(sets_.num_vars(), sat::kNoLit);
  cnf::TseitinEncoder enc(sets_, solver, [&](aig::Var v) {
    if (leaf_vars[v] == sat::kNoLit) leaf_vars[v] = sat::mk_lit(solver.new_var());
    return leaf_vars[v];
  });
  // a AND NOT b satisfiable?
  if (a != aig::kTrue) solver.add_clause({enc.encode(a, 0)}, 0);
  if (b != aig::kFalse) solver.add_clause({sat::neg(enc.encode(b, 0))}, 0);
  sat::Budget budget;
  budget.seconds = time_limit_sec;
  budget.cancel = cancel;
  switch (solver.solve(budget)) {
    case sat::Status::kUnsat:
      return Implication::kHolds;
    case sat::Status::kSat:
      return Implication::kFails;
    case sat::Status::kUnknown:
      break;
  }
  return Implication::kUnknown;
}

void StateSpace::compact(std::vector<aig::Lit*> roots) {
  std::vector<aig::Lit> root_lits;
  root_lits.reserve(roots.size());
  for (aig::Lit* r : roots) root_lits.push_back(*r);
  aig::CompactResult c = aig::compact(sets_, root_lits);
  sets_ = std::move(c.graph);
  for (std::size_t i = 0; i < roots.size(); ++i) *roots[i] = c.roots[i];
}

Implication StateSpace::satisfiable(aig::Lit a, double time_limit_sec,
                                    const std::atomic<bool>* cancel) {
  if (a == aig::kTrue) return Implication::kHolds;
  if (a == aig::kFalse) return Implication::kFails;
  ++sat_calls_;
  sat::Solver solver;
  std::vector<sat::Lit> leaf_vars(sets_.num_vars(), sat::kNoLit);
  cnf::TseitinEncoder enc(sets_, solver, [&](aig::Var v) {
    if (leaf_vars[v] == sat::kNoLit) leaf_vars[v] = sat::mk_lit(solver.new_var());
    return leaf_vars[v];
  });
  solver.add_clause({enc.encode(a, 0)}, 0);
  sat::Budget budget;
  budget.seconds = time_limit_sec;
  budget.cancel = cancel;
  switch (solver.solve(budget)) {
    case sat::Status::kSat:
      return Implication::kHolds;
    case sat::Status::kUnsat:
      return Implication::kFails;
    case sat::Status::kUnknown:
      break;
  }
  return Implication::kUnknown;
}

}  // namespace itpseq::mc
