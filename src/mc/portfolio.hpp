// portfolio.hpp — a portfolio of model-checking engines.
//
// The paper positions ITPSEQ as "an additional engine within a potential
// portfolio of available MC techniques" (Section IV).  This engine realizes
// that with a *threaded* scheduler: member engines run concurrently on
// std::threads, the first definite verdict wins, and all peers are torn
// down through cooperative cancellation.
//
// Scheduler.  With jobs > 1 (default: one per member; lists longer than
// max(8, hardware concurrency) are capped there), members are pulled from
// a work queue by a pool of worker threads.  With jobs >= members each
// member runs once with the full remaining wall-clock budget; with a
// narrower pool each member is capped at its fair share of the pool's
// remaining capacity (remaining * jobs / members still queued), so queued
// members cannot be starved.  Deliberate oversubscription by default:
// members are pure CPU burners, so even with fewer cores than members
// racing + early cancellation beats time slicing.  With jobs == 1 the legacy single-threaded round-robin scheduler
// is used: every member gets `slice_seconds`, doubled each round, until the
// budget is exhausted — useful as a deterministic cross-check and on
// single-core hosts.
//
// Cancellation contract.  The portfolio owns one std::atomic<bool> token
// handed to every member via EngineOptions::cancel.  Engines must *poll*
// it (loop heads + sat::Budget::cancel) and return kUnknown promptly; they
// never detach work.  check_portfolio() therefore joins every worker
// before returning — no engine thread outlives the call.  An external
// token in engine_defaults.cancel is relayed to the internal one, so a
// caller can cancel the whole portfolio.
//
// Lemma exchange.  Unless disabled, members share a LemmaExchange hub
// (EngineOptions::exchange): PDR publishes propagated frame clauses and
// proven-invariant clauses, the interpolation engines publish candidate
// latch clauses of their interpolants, and every subscriber injects
// foreign lemmas only at the safe points documented in
// mc/lemma_exchange.hpp — exchange accelerates members but can never
// change a verdict.  The returned result carries the hub totals in
// stats.lemmas_published / stats.lemmas_consumed.
//
// Failure containment.  A member that dies (bad_alloc, internal error) is
// a *result*, not a process death: run_member converts the exception into
// a Verdict::kError result carrying an ErrorInfo, the scheduler records it
// in EngineResult::members and keeps racing the survivors, and the
// portfolio itself returns kError only when every member failed.  A
// watchdog (sharing the external-cancel guard thread) escalates a deadline
// that cooperative cancellation missed — an engine stalled outside its
// poll loop — by forcing cancellation after watchdog_grace_sec past the
// budget and annotating the kUnknown result with ErrorKind::kSolverLimit.
//
// Self-healing (threaded mode).  On top of containment, an errored member
// slot is *relaunched* under PortfolioOptions::restart: bounded retries,
// exponential backoff with deterministic jitter (util::RestartPolicy), and
// a per-error degradation ladder (degrade_for_retry — e.g. kOutOfMemory
// relaunches with inprocessing off and a clamped learnt cap, kSolverLimit
// with half the leash).  The relaunch gets a fresh publisher slot, so it
// warm-starts by re-reading the whole exchange — its own prior
// publications included — instead of re-deriving everything.  Retry
// history (restarts / last_error) is preserved per member in
// EngineResult::members; each relaunch emits a member_restart obs event.
// The sequential scheduler's round-robin already is a retry loop, so the
// policy applies to the threaded scheduler only.
//
// Checkpointing.  With checkpoint_path set, the hub (plus per-member
// progress) is snapshotted to a versioned, checksummed file via atomic
// temp+rename — periodically (checkpoint_interval_sec, from the guard
// thread in threaded mode and between slices in sequential mode), on
// watchdog or memory-budget escalation, and once at the end of the run.
// seed_lemmas feeds a restored snapshot back in; every seeded lemma is
// demoted to kCandidate first (mc/lemma_store.hpp's trust model), so a
// corrupt or forged snapshot can never change a verdict.  Checkpoint I/O
// failures are contained: they are counted, never propagated.
//
// Determinism.  For a fixed sim_seed the random-simulation member explores
// one fixed trace enumeration of a fixed size under *both* schedulers
// (independent of wall-clock and thread interleaving), and every SAT
// member is deterministic in isolation, so the portfolio *verdict* is
// independent of `jobs` whenever the budget suffices; budget truncation
// can only degrade a definite verdict to UNKNOWN, never flip PASS/FAIL.
// On closed circuits (forced traces) the reported counterexample is
// jobs-independent too.
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "mc/engine.hpp"
#include "mc/lemma_exchange.hpp"
#include "util/retry.hpp"

namespace itpseq::mc {

/// Member engines available to the portfolio.
enum class PortfolioMember : std::uint8_t {
  kRandomSim,  ///< 64-way random simulation (falsification only)
  kBmc,        ///< plain BMC (falsification only)
  kItp,        ///< standard interpolation (Fig. 1)
  kItpPartitioned,
  kItpSeq,     ///< parallel sequences (Fig. 2)
  kSItpSeq,    ///< serial sequences, alpha = 0.5 (Fig. 4)
  kItpSeqCba,  ///< sequences + abstraction (Fig. 5)
  kKInduction, ///< temporal induction baseline
  kPdr,        ///< property-directed reachability (IC3)
};

const char* to_string(PortfolioMember m);

struct PortfolioOptions {
  /// Default member list (a function, not an NSDMI initializer list: GCC 12
  /// flags the inlined initializer_list copy with -Wmaybe-uninitialized).
  static std::vector<PortfolioMember> default_members() {
    return {PortfolioMember::kRandomSim, PortfolioMember::kItp,
            PortfolioMember::kPdr, PortfolioMember::kSItpSeq,
            PortfolioMember::kItpSeqCba};
  }
  /// Member list.  Threaded mode starts them in order as worker slots free
  /// up; sequential mode time-slices them round-robin in order.
  std::vector<PortfolioMember> members = default_members();
  /// Worker threads: 0 = one per member (lists longer than max(8, hardware
  /// concurrency) are capped there), 1 = sequential round-robin scheduler,
  /// N = pool of N threads.
  unsigned jobs = 0;
  /// Cross-engine lemma exchange between members (see header comment).
  bool exchange = true;
  /// Seed of the random-simulation member; fixes its trace enumeration so
  /// verdicts are reproducible regardless of jobs/interleaving.
  std::uint64_t sim_seed = 1;
  /// Sequential mode only: first-round slice, doubled each round.
  double slice_seconds = 1.0;
  double time_limit_sec = 60.0;
  /// Threaded mode: grace period past time_limit_sec before the watchdog
  /// escalates (forces internal cancellation and tags the result with
  /// ErrorKind::kSolverLimit).  Engines are cooperative, so this only
  /// fires when a member misses its own deadline polls.  <= 0 disables.
  double watchdog_grace_sec = 5.0;
  EngineOptions engine_defaults;
  /// Self-healing relaunch policy for errored members (threaded mode; see
  /// header comment).  restart.max_retries = 0 disables relaunching — the
  /// first kError then sticks as that slot's outcome, as before.
  util::RestartPolicy restart;
  /// Lemma checkpointing: snapshot the exchange hub to this path ("" =
  /// off) every checkpoint_interval_sec, on watchdog/mem-budget
  /// escalation, and at the end of the run.  Written atomically
  /// (temp+rename), so readers only ever see complete snapshots.
  std::string checkpoint_path;
  double checkpoint_interval_sec = 5.0;
  /// Lemmas restored from a --resume snapshot, seeded into the hub before
  /// any member starts.  Every entry is demoted to kCandidate regardless
  /// of its recorded grade — snapshots are untrusted input, and candidates
  /// re-enter proofs only through consumers' own soundness checks.  The
  /// count accepted is reported in stats.lemmas_restored.
  std::vector<Lemma> seed_lemmas;
  /// Test instrumentation: incremented when a member starts, decremented
  /// when it returns.  After check_portfolio() returns it reads 0 — the
  /// join-all guarantee made observable.
  std::atomic<int>* active_probe = nullptr;
};

/// The degradation ladder: mutate `eo` so a relaunch avoids the failure
/// mode behind `kind` — kOutOfMemory sheds the allocation-heavy machinery
/// (inprocessing off, learnt cap clamped, earlier state-set compaction);
/// other kinds retry unchanged (the relaunch budget, which shrinks for
/// kSolverLimit, is the scheduler's side of the ladder).
void degrade_for_retry(EngineOptions& eo, ErrorKind kind);

/// Run the portfolio; the winning member's name is recorded in
/// EngineResult::engine (prefixed with "portfolio/").
EngineResult check_portfolio(const aig::Aig& model, std::size_t prop,
                             const PortfolioOptions& opts = {});

/// Pure random-simulation falsifier: simulates `rounds` batches of 64
/// random input sequences of length `depth`; FAIL with a replayable trace
/// or UNKNOWN (never PASS).  The enumeration order depends only on `seed`,
/// so the outcome is deterministic; `cancel` and `time_limit_sec` only
/// truncate the sweep (returning UNKNOWN early).
EngineResult check_random_sim(const aig::Aig& model, std::size_t prop,
                              unsigned depth, unsigned rounds,
                              std::uint64_t seed = 1,
                              const std::atomic<bool>* cancel = nullptr,
                              double time_limit_sec = -1.0);

}  // namespace itpseq::mc
