// portfolio.hpp — a portfolio of model-checking engines.
//
// The paper positions ITPSEQ as "an additional engine within a potential
// portfolio of available MC techniques" (Section IV).  This engine realizes
// that: it schedules a configurable list of member engines round-robin with
// growing per-slice budgets until one of them produces a definite verdict.
// Random simulation can be used as a cheap pre-pass to catch shallow
// failures before any SAT work.
#pragma once

#include <vector>

#include "mc/engine.hpp"

namespace itpseq::mc {

/// Member engines available to the portfolio.
enum class PortfolioMember : std::uint8_t {
  kRandomSim,  ///< 64-way random simulation (falsification only)
  kBmc,        ///< plain BMC (falsification only)
  kItp,        ///< standard interpolation (Fig. 1)
  kItpPartitioned,
  kItpSeq,     ///< parallel sequences (Fig. 2)
  kSItpSeq,    ///< serial sequences, alpha = 0.5 (Fig. 4)
  kItpSeqCba,  ///< sequences + abstraction (Fig. 5)
  kKInduction, ///< temporal induction baseline
  kPdr,        ///< property-directed reachability (IC3)
};

const char* to_string(PortfolioMember m);

struct PortfolioOptions {
  /// Schedule, in order; each round every member gets `slice_seconds`,
  /// doubled each round, until `time_limit_sec` is exhausted.
  std::vector<PortfolioMember> members = {
      PortfolioMember::kRandomSim, PortfolioMember::kItp,
      PortfolioMember::kPdr, PortfolioMember::kSItpSeq,
      PortfolioMember::kItpSeqCba};
  double slice_seconds = 1.0;
  double time_limit_sec = 60.0;
  EngineOptions engine_defaults;
};

/// Run the portfolio; the winning member's name is recorded in
/// EngineResult::engine (prefixed with "portfolio/").
EngineResult check_portfolio(const aig::Aig& model, std::size_t prop,
                             const PortfolioOptions& opts = {});

/// Pure random-simulation falsifier: simulates `rounds` batches of 64
/// random input sequences of length `depth`; FAIL with a replayable trace
/// or UNKNOWN (never PASS).
EngineResult check_random_sim(const aig::Aig& model, std::size_t prop,
                              unsigned depth, unsigned rounds,
                              std::uint64_t seed = 1);

}  // namespace itpseq::mc
