// engine.hpp — base class for the unbounded model-checking engines.
//
// Concrete engines (Figs. 1, 2, 4 and 5 of the paper) share: the model and
// property under check, the wall-clock budget, the symbolic state space for
// interpolants, the depth-0 property check, and counterexample extraction
// from a satisfiable BMC instance.
//
// Cancellation contract (EngineOptions::cancel): engines are cooperative.
// Every engine polls the token at the head of its main loop (out_of_time()
// covers it) and passes it into each SAT call (sat_budget() covers it), so
// a set token surfaces as kUnknown within one short SAT burst.  Engines
// never detach threads or leave work running past run()'s return — the
// threaded portfolio relies on this to join all members after a winner.
#pragma once

#include <chrono>
#include <memory>

#include "aig/aig.hpp"
#include "cnf/unroller.hpp"
#include "mc/result.hpp"
#include "mc/state_space.hpp"
#include "sat/solver.hpp"
#include "util/mem_budget.hpp"

namespace itpseq::mc {

class Engine {
 public:
  Engine(const aig::Aig& model, std::size_t prop, EngineOptions opts);
  virtual ~Engine() = default;

  /// Run to completion (or budget exhaustion).
  EngineResult run();

  virtual const char* name() const = 0;

  const EngineOptions& options() const { return opts_; }

 protected:
  /// Engine-specific algorithm; `out` pre-filled with engine name.
  virtual void execute(EngineResult& out) = 0;

  /// Seconds left in the budget (>= 0).
  double remaining() const;
  /// Cooperative cancellation requested?
  bool cancelled() const {
    return opts_.cancel != nullptr &&
           opts_.cancel->load(std::memory_order_relaxed);
  }
  /// Budget exhausted (wall clock or hard memory pressure) or cancellation
  /// requested — engines poll this at every loop head and stop with
  /// kUnknown when it fires.  The memory check is one relaxed load when no
  /// --mem-limit is armed; the budget itself is refreshed by the SAT core's
  /// polls, which run far more often than engine loop heads.
  bool out_of_time() const {
    return cancelled() || remaining() <= 0.0 ||
           util::MemoryBudget::instance().hard();
  }
  /// SAT budget covering the remaining engine time (and cancellation).
  sat::Budget sat_budget() const;

  /// Handles trivial properties and the depth-0 check (S0 AND bad(V^0)).
  /// Returns true when the verdict is already decided (out is filled).
  bool preliminary_checks(EngineResult& out);

  /// Read a counterexample of depth k out of a satisfied solver/unrolling.
  Trace extract_trace(const sat::Solver& solver, const cnf::Unroller& unroller,
                      unsigned k) const;

  /// Merge solver statistics into the running result.
  void absorb_stats(EngineResult& out, const sat::Solver& solver) const;

  /// Build a PASS certificate from a state-set literal of space_.graph()
  /// (see mc/certify.hpp for the conditions the caller guarantees).
  Certificate make_certificate(aig::Lit r) const;

  const aig::Aig& model_;
  std::size_t prop_;
  EngineOptions opts_;
  StateSpace space_;
  std::chrono::steady_clock::time_point start_;
};

/// Convenience: run one engine configuration on a model.
EngineResult check_itp(const aig::Aig& model, std::size_t prop,
                       const EngineOptions& opts = {});
EngineResult check_itpseq(const aig::Aig& model, std::size_t prop,
                          const EngineOptions& opts = {});
EngineResult check_sitpseq(const aig::Aig& model, std::size_t prop,
                           EngineOptions opts = {});
EngineResult check_itpseq_cba(const aig::Aig& model, std::size_t prop,
                              EngineOptions opts = {});
EngineResult check_itpseq_pba(const aig::Aig& model, std::size_t prop,
                              const EngineOptions& opts = {});
EngineResult check_itpseq_cba_pba(const aig::Aig& model, std::size_t prop,
                                  EngineOptions opts = {});
EngineResult check_bmc(const aig::Aig& model, std::size_t prop,
                       const EngineOptions& opts = {});
EngineResult check_pdr(const aig::Aig& model, std::size_t prop,
                       const EngineOptions& opts = {});

}  // namespace itpseq::mc
