#include "mc/kinduction.hpp"

#include <algorithm>

#include "mc/lemma_exchange.hpp"
#include "obs/trace.hpp"

namespace itpseq::mc {

void KInductionEngine::add_distinct(sat::Solver& solver, cnf::Unroller& unr,
                                    unsigned i, unsigned j) {
  // OR over latches of (s_i[l] XOR s_j[l]), Tseitin-encoded.
  std::vector<sat::Lit> disj;
  for (std::size_t l = 0; l < model_.num_latches(); ++l) {
    sat::Lit a = unr.latch_lit(l, i, 0);
    sat::Lit b = unr.latch_lit(l, j, 0);
    sat::Lit x = sat::mk_lit(solver.new_var());
    // x <-> a XOR b
    solver.add_clause({sat::neg(x), a, b}, 0);
    solver.add_clause({sat::neg(x), sat::neg(a), sat::neg(b)}, 0);
    solver.add_clause({x, a, sat::neg(b)}, 0);
    solver.add_clause({x, sat::neg(a), b}, 0);
    disj.push_back(x);
  }
  solver.add_clause(disj, 0);
}

void KInductionEngine::execute(EngineResult& out) {
  // Incremental step-case solver: the uninitialized unrolling grows with k;
  // "good" constraints become permanent, targets are assumed per bound.
  sat::Solver step;
  opts_.apply_sat_options(step);
  cnf::Unroller step_unr(model_, step);
  step_unr.assert_constraints(0, 0);

  // Exchanged lemmas: the concrete base case takes invariant lemmas at
  // every frame and kFrame lemmas at frames <= bound (frame-t states are
  // reachable in exactly t steps).  The step case runs on *arbitrary*
  // states, where only invariant lemmas are sound — they strengthen the
  // induction hypothesis (classic invariant-strengthened k-induction);
  // real traces satisfy them everywhere, so PASS remains sound.
  LemmaFeed feed{opts_.exchange, opts_.exchange_source};
  std::vector<unsigned> step_next;  // per-invariant next step frame to assert
  // The step solver is long-lived and its counters are cumulative, so it is
  // absorbed once per exit path (a per-bound absorb would sum prefixes
  // quadratically); the per-bound base solvers are fresh and absorb inline.
  unsigned step_solves = 0;
  auto finish_step = [&] {
    if (step_solves == 0) return;
    absorb_stats(out, step);
    out.stats.sat_calls += step_solves - 1;
  };

  for (unsigned k = 1; k <= opts_.max_bound; ++k) {
    out.k_fp = k;
    if (out_of_time()) {
      out.verdict = Verdict::kUnknown;
      finish_step();
      return;
    }
    if (obs::enabled()) {
      obs::counters().bounds.fetch_add(1, std::memory_order_relaxed);
      obs::emit("bound_start", {{"k", k}});
    }
    obs::Span obs_bound("bound", {{"k", k}});
    feed.poll();

    // --- base(k): counterexample of exact depth k ------------------------
    {
      obs::Span obs_base("base", {{"k", k}});
      sat::Solver solver;
      opts_.apply_sat_options(solver);
      cnf::Unroller unr(model_, solver);
      unr.assert_init(0);
      for (unsigned t = 0; t < k; ++t) unr.add_transition(t, 0);
      for (unsigned t = 0; t <= k; ++t) unr.assert_constraints(t, 0);
      solver.add_clause({unr.bad_lit(k, 0, prop_)}, 0);
      for (const Lemma& l : feed.invariants)
        for (unsigned t = 0; t <= k; ++t) assert_lemma_clause(unr, l, t, 0);
      for (const Lemma& l : feed.frames)
        for (unsigned t = 0; t <= std::min(l.bound, k); ++t)
          assert_lemma_clause(unr, l, t, 0);
      out.stats.lemmas_consumed = feed.invariants.size() + feed.frames.size();
      sat::Status st = solver.solve(sat_budget());
      absorb_stats(out, solver);
      if (st == sat::Status::kUnknown) {
        out.verdict = Verdict::kUnknown;
        finish_step();
        return;
      }
      if (st == sat::Status::kSat) {
        out.verdict = Verdict::kFail;
        out.j_fp = 0;
        out.cex = extract_trace(solver, unr, k);
        finish_step();
        return;
      }
    }

    // --- step(k): p holds for k steps from *any* state, then fails -------
    obs::Span obs_step("step", {{"k", k}});
    step_unr.add_transition(k - 1, 0);
    step_unr.assert_constraints(k, 0);
    step_next.resize(feed.invariants.size(), 0);
    for (std::size_t i = 0; i < feed.invariants.size(); ++i)
      for (unsigned& t = step_next[i]; t <= k; ++t)
        assert_lemma_clause(step_unr, feed.invariants[i], t, 0);
    // p at frame k-1 becomes a permanent constraint (it was the assumed
    // target at the previous bound), and the newly created frame k joins
    // the pairwise simple-path constraints.
    step.add_clause({sat::neg(step_unr.bad_lit(k - 1, 0, prop_))}, 0);
    if (unique_states_)
      for (unsigned i = 0; i < k; ++i) add_distinct(step, step_unr, i, k);

    sat::Status st =
        step.solve_assuming({step_unr.bad_lit(k, 0, prop_)}, sat_budget());
    ++step_solves;
    if (st == sat::Status::kUnknown) {
      out.verdict = Verdict::kUnknown;
      finish_step();
      return;
    }
    if (st == sat::Status::kUnsat) {
      if (!step.ok()) {
        // The path constraints themselves became unsatisfiable: the
        // recurrence diameter is exceeded, so the base cases exhausted all
        // behaviours — the property holds.
        out.verdict = Verdict::kPass;
        out.j_fp = k;
        finish_step();
        return;
      }
      out.verdict = Verdict::kPass;
      out.j_fp = k;
      finish_step();
      return;
    }
  }
  out.verdict = Verdict::kUnknown;
  finish_step();
}

EngineResult check_kinduction(const aig::Aig& model, std::size_t prop,
                              const EngineOptions& opts) {
  return KInductionEngine(model, prop, opts).run();
}

}  // namespace itpseq::mc
