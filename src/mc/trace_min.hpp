// trace_min.hpp — counterexample minimization.
//
// Engines return whatever input assignment the SAT model happened to
// contain; for debugging one wants canonical, mostly-zero traces.  The
// minimizer greedily clears input bits (and free initial-latch bits) while
// preserving "the trace is still a counterexample", using the concrete
// simulator as the oracle.
#pragma once

#include "mc/result.hpp"

namespace itpseq::mc {

struct TraceMinStats {
  unsigned bits_total = 0;
  unsigned bits_cleared = 0;
  unsigned sim_runs = 0;
};

/// Returns a minimized copy of `trace` (still a genuine counterexample for
/// `prop`).  `trace` must be a counterexample to begin with; throws
/// std::invalid_argument otherwise.
Trace minimize_trace(const aig::Aig& model, const Trace& trace,
                     std::size_t prop = 0, TraceMinStats* stats = nullptr);

}  // namespace itpseq::mc
