// ternary.hpp — three-valued (0/1/X) simulation of an AIG cone.
//
// The workhorse behind PDR's ternary-simulation lifting (Eén, Mishchenko,
// Brayton, "Efficient Implementation of Property Directed Reachability",
// FMCAD 2011): given a concrete SAT model of a predecessor query, literals
// of the state cube are X-ed out one latch at a time; a latch may be
// dropped exactly when re-simulating with that latch at X leaves every
// watched root (the bad cone, the successor cube's next-state functions,
// the invariant constraints) at a *defined* value.  Since ternary AND is
// monotone — turning a leaf to X can only move node values from 0/1 to X,
// never flip them — "still defined" is equivalent to "still equal to the
// model value", so the shrunk cube still forces the query roots.
//
// The simulator is built once over the union cone of every root PDR can
// ever watch (all next-state functions, the bad output, the constraints)
// and reused across queries:
//
//   set_watches(roots)   choose the literals that must stay defined
//   assign(latches, ins) load a concrete model and evaluate the cone
//   try_latch_x(i)       flip latch i to X with event-driven re-simulation;
//                        commits if every watched root stays defined,
//                        otherwise undoes itself — O(affected cone), not
//                        O(cone), per attempt
//
// The same class doubles as a general ternary evaluator for tests and
// future engines (set_latch/set_input + simulate + value).
#pragma once

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"

namespace itpseq::mc {

/// A ternary value.  kX means "unknown / both".
enum class TernVal : std::uint8_t { kFalse = 0, kTrue = 1, kX = 2 };

/// Kleene AND: 0 dominates, 1 is neutral, otherwise X.
constexpr TernVal tern_and(TernVal a, TernVal b) {
  if (a == TernVal::kFalse || b == TernVal::kFalse) return TernVal::kFalse;
  if (a == TernVal::kTrue && b == TernVal::kTrue) return TernVal::kTrue;
  return TernVal::kX;
}

/// Kleene NOT: X stays X.
constexpr TernVal tern_not(TernVal a) {
  switch (a) {
    case TernVal::kFalse: return TernVal::kTrue;
    case TernVal::kTrue: return TernVal::kFalse;
    default: return TernVal::kX;
  }
}

constexpr TernVal tern_of(bool b) { return b ? TernVal::kTrue : TernVal::kFalse; }

class TernarySim {
 public:
  /// Build over the union cone of `roots`; only variables in that cone are
  /// ever simulated.  Roots watched later must come from this set.
  TernarySim(const aig::Aig& model, const std::vector<aig::Lit>& roots);

  /// Replace the watched-root set (each root's variable must lie in the
  /// constructed cone or be constant).  Cheap: O(old + new watch count).
  void set_watches(const std::vector<aig::Lit>& roots);

  /// Load a fully concrete assignment (indexed by latch/input enumeration
  /// order; missing entries default to 0) and evaluate the whole cone.
  void assign(const std::vector<bool>& latches, const std::vector<bool>& inputs);

  /// Leaf setters for explicit ternary experiments; call simulate() after.
  void set_latch(std::size_t i, TernVal v);
  void set_input(std::size_t i, TernVal v);
  /// Full-cone evaluation from the current leaf values.
  void simulate();

  /// Current value of an AIG literal (constants fold; variables outside the
  /// cone read as X).
  TernVal value(aig::Lit l) const;

  /// All watched roots currently defined (non-X)?
  bool watches_defined() const { return undef_watched_ == 0; }

  /// Try to move latch `i` to X.  Re-simulates the latch's transitive
  /// fanout event-driven; if every watched root keeps a defined value the
  /// change is committed and true is returned, otherwise every node is
  /// restored and false is returned.
  bool try_latch_x(std::size_t i);

  /// Number of AND nodes in the simulated cone (diagnostics).
  std::size_t cone_ands() const { return cone_ands_; }

 private:
  void set_value(aig::Var v, TernVal nv, bool trail);

  const aig::Aig& model_;
  std::vector<TernVal> values_;       // per var; X outside the cone
  std::vector<aig::Var> topo_;        // cone in topological order
  std::vector<std::uint32_t> pos_;    // var -> index into topo_ (+1), 0 = absent
  std::vector<std::uint32_t> watch_;  // var -> number of watched roots on it
  std::vector<aig::Var> watched_vars_;  // vars with watch_ > 0 (for reset)
  std::size_t undef_watched_ = 0;     // watched vars currently at X
  std::uint32_t gen_ = 0;             // event generation stamp
  std::vector<std::uint32_t> stamp_;  // var -> last generation it changed in
  std::vector<std::pair<aig::Var, TernVal>> trail_;  // undo log of one try
  std::size_t cone_ands_ = 0;
};

}  // namespace itpseq::mc
