// kinduction.hpp — temporal induction (k-induction) engine.
//
// The classic SAT-based proof engine (Sheeran-Singh-Stålmarck) included as
// a portfolio baseline alongside the interpolation engines:
//
//   base(k):  S0 ∧ T^k ∧ ¬p(V^k)                       SAT -> FAIL
//   step(k):  T^{k+1} ∧ p(V^0..k) ∧ ¬p(V^{k+1})         UNSAT -> PASS
//
// The step case runs on the *uninitialized* unrolling.  With the
// unique-states ("simple path") constraints enabled the method is complete:
// it terminates at the recurrence diameter.
#pragma once

#include "mc/engine.hpp"

namespace itpseq::mc {

class KInductionEngine : public Engine {
 public:
  KInductionEngine(const aig::Aig& model, std::size_t prop, EngineOptions opts,
                   bool unique_states = true)
      : Engine(model, prop, opts), unique_states_(unique_states) {}
  const char* name() const override { return "KIND"; }

 protected:
  void execute(EngineResult& out) override;

 private:
  /// Clause "states at frames i and j differ in some latch".
  void add_distinct(sat::Solver& solver, cnf::Unroller& unr, unsigned i,
                    unsigned j);

  bool unique_states_;
};

/// Convenience wrapper.
EngineResult check_kinduction(const aig::Aig& model, std::size_t prop,
                              const EngineOptions& opts = {});

}  // namespace itpseq::mc
