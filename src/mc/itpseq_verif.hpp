// itpseq_verif.hpp — UMC based on interpolation sequences.
//
// Implements the paper's sequence algorithms in one engine:
//
//  * ITPSEQ    (Fig. 2, serial_alpha = 0): at each bound k, one exact-k or
//    assume-k BMC check; on UNSAT the whole sequence I^k_1..I^k_k is
//    extracted *in parallel* from the single refutation proof (Eq. 2).
//  * SITPSEQ   (Fig. 4, 0 < serial_alpha <= 1): the first
//    floor(alpha*(k+1)) terms are computed *serially* (Eq. 3) — each term
//    becomes the A-side initial set of a fresh, shorter BMC problem — and
//    the rest in parallel from the final proof.  If a shifted instance
//    turns satisfiable (the over-approximate prefix made it reachable), the
//    engine falls back to the pure parallel sequence from the original
//    proof for this bound.
//  * ITPSEQCBA (Fig. 5, AbstractionMode::kCba): the BMC checks run on a
//    localization abstraction (invisible latches freed).  Abstract
//    counterexamples are concretized by simulation (EXTEND); on mismatch
//    the most-diverging invisible latch is made visible (REFINE) and the
//    bound is retried.  Once UNSAT, the sequence machinery proceeds on the
//    abstract model.  CBA checks use exact-k targets as in Fig. 5.
//  * ITPSEQPBA (AbstractionMode::kPba): proof-based abstraction, the dual
//    strategy Section V mentions via reference [13] (Een/Mishchenko/Amla).
//    Each bound first runs the *concrete* BMC check; a SAT answer is a real
//    counterexample, an UNSAT answer yields a proof core from which the set
//    of latches actually needed is read off.  The sequence is then
//    extracted from a re-solve of the *abstract* model (smaller proofs,
//    hence higher over-approximation — the premise of Section V).  If the
//    variable-granular abstraction is too coarse for this bound (the
//    abstract re-solve turns SAT), the concrete proof is used instead.
//  * ITPSEQCBAPBA (AbstractionMode::kCbaPba): the [13]-style alternation —
//    CBA grows the abstraction on spurious counterexamples, then the proof
//    core of the final UNSAT check shrinks it back before extraction.
//
// The matrix state sets are maintained across bounds:
//   calI_j = AND over i >= j of I^i_j          (column conjunction)
// and the fixpoint test is calI_j => R_{j-1} with R_j = R_{j-1} OR calI_j.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "mc/engine.hpp"
#include "mc/lemma_exchange.hpp"

namespace itpseq::mc {

/// Localization-abstraction strategy of the sequence engine (Section V).
enum class AbstractionMode : std::uint8_t {
  kNone,    ///< concrete model only (ITPSEQ / SITPSEQ)
  kCba,     ///< counterexample-based abstraction (Fig. 5)
  kPba,     ///< proof-based abstraction
  kCbaPba,  ///< CBA growth + PBA shrink alternation ([13])
};

const char* to_string(AbstractionMode m);

class ItpSeqEngine : public Engine {
 public:
  ItpSeqEngine(const aig::Aig& model, std::size_t prop, EngineOptions opts,
               AbstractionMode mode = AbstractionMode::kNone);
  const char* name() const override;

 protected:
  void execute(EngineResult& out) override;

 private:
  struct ShiftedSolve {
    std::unique_ptr<sat::Solver> solver;
    std::unique_ptr<cnf::Unroller> unroller;
    sat::Status status = sat::Status::kUnknown;
  };

  /// Build and solve the BMC problem  start(V^0) ∧ T^local_k ∧ target, with
  /// interpolation-sequence partition labels 1..local_k+1.  start ==
  /// kNullLit means the (possibly abstract) initial states.  With
  /// `concrete` the visibility mask is ignored (full model).
  ShiftedSolve solve_shifted(aig::Lit start, unsigned local_k,
                             EngineResult& out, bool concrete = false);

  /// PBA: latches whose unrolled frame variables occur in the refutation
  /// core of a solved instance (everything else can be cut).
  std::vector<bool> pba_needed(const ShiftedSolve& s, unsigned k) const;

  /// Extract sequence terms for local cuts [1, last_cut] from a refuted
  /// shifted solve; returns AIG literals over the state space.
  std::vector<aig::Lit> extract_terms(const ShiftedSolve& s, unsigned last_cut);

  /// CBA: check an abstract counterexample on the concrete model (EXTEND);
  /// fills `out` and returns true on a real failure, otherwise refines the
  /// abstraction (REFINE) and returns false.
  bool extend_or_refine(const ShiftedSolve& s, unsigned k, EngineResult& out,
                        bool& refined);

  AbstractionMode mode_;
  std::vector<bool> prop_support_;     // latches in the bad signal's support
  std::vector<bool> visible_;          // abstraction mask; empty = concrete
  std::vector<aig::Lit> calI_;         // calI_[j], j >= 1; index 0 unused

  // Lemma exchange (concrete mode only — on the abstract transition
  // relation even invariant lemmas are not inductive, so the abstraction
  // engines neither consume nor rely on foreign facts).  Consumed
  // kInvariant lemmas are asserted like model constraints in every solve
  // and conjoined into the fixpoint target / PASS certificate; sequence
  // terms are published back as kCandidate latch clauses.
  LemmaFeed feed_;
  aig::Lit inv_ = aig::kTrue;          // conjunction of consumed invariants
  std::size_t inv_used_ = 0;
};

}  // namespace itpseq::mc
