// pdr.cpp — IC3/PDR over one incremental solver with activation literals.
//
// Encoding: the solver holds a single copy of the transition relation
// (frame 0 -> frame 1 of an Unroller).  Everything that varies per query is
// switched with assumption literals:
//
//   act_init    guards the initial-state unit cube at frame 0
//   act_c0/c1   guard the invariant constraints at frames 0 / 1
//   acts_[j]    guards the lemma clauses *stored at* frame j; since the
//               trace is monotone (clauses of F_{j} contain those of
//               F_{j+1}), a query relative to F_k assumes acts_[j] for all
//               j >= k
//   tmp         a fresh per-query literal guarding the ¬cube clause of a
//               relative-induction query, retired afterwards with a unit
//
// Lemma cubes live in stored_[j] (j = highest frame where the clause is
// known inductive); the solver keeps superseded copies, which are implied
// and harmless, while the stored_ lists are kept subsumption-reduced so
// propagation and the fixpoint test work on the real clause sets.
#include "mc/pdr.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <queue>
#include <tuple>

#include "mc/lemma_exchange.hpp"
#include "mc/ternary.hpp"
#include "obs/trace.hpp"

namespace itpseq::mc {
namespace {

/// A cube literal: latch_index << 1 | value.  Cubes are sorted vectors
/// with at most one literal per latch, denoting a conjunction
/// "latch_i = value_i"; the lemma learned from a blocked cube c is the
/// clause ¬c.
using CubeLit = std::uint32_t;
using Cube = std::vector<CubeLit>;

constexpr std::size_t cl_index(CubeLit c) { return c >> 1; }
constexpr bool cl_value(CubeLit c) { return (c & 1u) != 0; }
constexpr CubeLit mk_cl(std::size_t latch, bool value) {
  return static_cast<CubeLit>((latch << 1) | (value ? 1u : 0u));
}

/// a ⊆ b as literal sets: cube a covers every state of cube b, so clause
/// ¬a subsumes clause ¬b.
bool cube_subsumes(const Cube& a, const Cube& b) {
  if (a.size() > b.size()) return false;
  std::size_t j = 0;
  for (CubeLit l : a) {
    while (j < b.size() && b[j] < l) ++j;
    if (j == b.size() || b[j] != l) return false;
    ++j;
  }
  return true;
}

/// One link of a (potential) counterexample: a state cube plus the input
/// vector that drives any of its states into the successor node's cube (or
/// asserts bad, for the root node at the frontier).
struct ObNode {
  Cube cube;
  std::vector<bool> inputs;
  int succ;  // index of the successor node; -1 for the frontier node
};

struct Obligation {
  unsigned frame;
  std::size_t size;
  std::uint64_t seq;
  std::size_t node;
};

/// Depth-ordered handling: lowest frame first (closest to the initial
/// states), then smallest cube, then FIFO.
struct ObOrder {
  bool operator()(const Obligation& a, const Obligation& b) const {
    return std::tie(a.frame, a.size, a.seq) > std::tie(b.frame, b.size, b.seq);
  }
};

/// A satisfying state pulled out of a query model.
struct StateModel {
  Cube cube;                  // lifted cube containing the state
  std::vector<bool> latches;  // full concrete latch assignment
  std::vector<bool> inputs;   // frame-0 input assignment
  bool in_init = false;       // concrete state satisfies S0
};

enum class StepOutcome { kOk, kFailed, kTimeout };

class PdrContext {
 public:
  PdrContext(const aig::Aig& model, std::size_t prop, const EngineOptions& opts,
             StateSpace& space, PdrStats& stats, double time_budget_sec)
      : model_(model),
        prop_(prop),
        opts_(opts),
        space_(space),
        stats_(stats),
        deadline_(std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(time_budget_sec))),
        unr_(model, solver_) {
    opts.apply_sat_options(solver_);
    setup();
  }

  void run(EngineResult& out);

  /// Valid after run() with kPass: invariant root in space_.graph().
  aig::Lit invariant() const { return invariant_; }
  const sat::Solver& solver() const { return solver_; }

 private:
  // --- setup ---------------------------------------------------------------

  sat::Lit new_act() { return sat::mk_lit(solver_.new_var()); }

  void setup() {
    // Frame-0 latch variables exist up front so models can always be read.
    for (std::size_t i = 0; i < model_.num_latches(); ++i)
      unr_.latch_lit(i, 0, 0);
    unr_.add_transition(0, 0);
    bad0_ = unr_.bad_lit(0, 0, prop_);

    act_c0_ = new_act();
    act_c1_ = new_act();
    for (std::size_t i = 0; i < model_.num_constraints(); ++i) {
      aig::Lit c = model_.constraint(i);
      solver_.add_clause({sat::neg(act_c0_), unr_.lit(c, 0, 0)}, 0);
      solver_.add_clause({sat::neg(act_c1_), unr_.lit(c, 1, 0)}, 0);
    }

    act_init_ = new_act();
    reset_.resize(model_.num_latches(), -1);
    for (std::size_t i = 0; i < model_.num_latches(); ++i) {
      switch (model_.latch_init(i)) {
        case aig::LatchInit::kZero:
          reset_[i] = 0;
          solver_.add_clause({sat::neg(act_init_), sat::neg(latch_at(i, true, 0))}, 0);
          break;
        case aig::LatchInit::kOne:
          reset_[i] = 1;
          solver_.add_clause({sat::neg(act_init_), latch_at(i, true, 0)}, 0);
          break;
        case aig::LatchInit::kUndef:
          break;
      }
    }

    // stored_[j]: lemma cubes whose clause is inductive up to frame j.
    // stored_[0] stays empty (F_0 = S0 is implicit).
    k_ = 1;
    stored_.resize(2);
    acts_.push_back(sat::kNoLit);  // index 0 unused
    acts_.push_back(new_act());

    // F_inf: clauses proven inductive (relative to F_inf itself), i.e. part
    // of every frame forever.  Guarded by one activation literal that every
    // query assumes.  Locally proven clauses land here via propagation;
    // foreign invariant/frame/candidate lemmas via consume_foreign().
    act_inf_ = new_act();
    feed_.hub = opts_.exchange;
    feed_.self = opts_.exchange_source;

    // Lifting cones: a bad-state cube must preserve bad and the frame-0
    // constraints; a predecessor cube must preserve the successor's
    // next-state functions and the constraints at both frames (frame-1
    // constraint values are functions of next-states of the constraints'
    // latch support).
    for (std::size_t i = 0; i < model_.num_constraints(); ++i)
      constraint_roots_.push_back(model_.constraint(i));
    for (aig::Var v : model_.cone(constraint_roots_)) {
      std::size_t li = model_.latch_index(v);
      if (li != aig::Aig::kNoIndex)
        constraint_next_roots_.push_back(model_.latch_next(li));
    }
    bad_roots_ = constraint_roots_;
    bad_roots_.push_back(model_.output(prop_));

    // Ternary lifting simulator: built once over the union cone of every
    // root any query can watch (all next-state functions, the bad output,
    // the constraints at both frames); per-query root sets are subsets.
    if (opts_.pdr_lift) {
      std::vector<aig::Lit> all_roots = bad_roots_;
      all_roots.insert(all_roots.end(), constraint_next_roots_.begin(),
                       constraint_next_roots_.end());
      for (std::size_t i = 0; i < model_.num_latches(); ++i)
        all_roots.push_back(model_.latch_next(i));
      tsim_.emplace(model_, all_roots);
    }
  }

  // --- small helpers -------------------------------------------------------

  bool out_of_time() const {
    if (opts_.cancel != nullptr &&
        opts_.cancel->load(std::memory_order_relaxed))
      return true;
    return std::chrono::steady_clock::now() >= deadline_;
  }

  sat::Budget budget() const {
    sat::Budget b;
    b.seconds = std::max(
        0.0, std::chrono::duration<double>(deadline_ -
                                           std::chrono::steady_clock::now())
                 .count());
    b.cancel = opts_.cancel;
    return b;
  }

  /// SAT literal "latch i is `value`" at frame 0 or 1.
  sat::Lit latch_at(std::size_t i, bool value, unsigned frame) {
    sat::Lit l = unr_.latch_lit(i, frame, 0);
    return value ? l : sat::neg(l);
  }
  sat::Lit cube_lit_at(CubeLit cl, unsigned frame) {
    return latch_at(cl_index(cl), cl_value(cl), frame);
  }

  /// Does the cube contain an initial state?  (It does unless some literal
  /// over a latch with a defined reset disagrees with that reset.)
  bool intersects_init(const Cube& c) const {
    for (CubeLit l : c) {
      signed char r = reset_[cl_index(l)];
      if (r >= 0 && (r != 0) != cl_value(l)) return false;
    }
    return true;
  }

  /// Restore init-disjointness of `c` (⊆ `from`) by re-adding a literal of
  /// `from` that disagrees with a defined reset.  `from` must be
  /// init-disjoint itself.
  void restore_init_disjoint(Cube& c, const Cube& from) const {
    if (!intersects_init(c)) return;
    for (CubeLit l : from) {
      signed char r = reset_[cl_index(l)];
      if (r >= 0 && (r != 0) != cl_value(l)) {
        c.insert(std::lower_bound(c.begin(), c.end(), l), l);
        return;
      }
    }
  }

  /// Assumptions activating F_lvl (plus constraints at both frames and the
  /// proven-invariant clause set F_inf, part of every frame).
  void frame_assumptions(unsigned lvl, std::vector<sat::Lit>& as) const {
    as.clear();
    as.push_back(act_c0_);
    as.push_back(act_c1_);
    as.push_back(act_inf_);
    if (lvl == 0) as.push_back(act_init_);
    for (std::size_t j = std::max<unsigned>(lvl, 1); j < acts_.size(); ++j)
      as.push_back(acts_[j]);
  }

  /// Read the query model: full state + inputs at frame 0, lifted to a cube
  /// that preserves the values of `roots` (and is made init-disjoint unless
  /// the concrete state itself is initial).
  void extract_state(const std::vector<aig::Lit>& roots, StateModel& p) {
    auto model_true = [&](sat::Lit l) {
      return sat::lbool_xor(solver_.model()[sat::var(l)], sat::sign(l)) ==
             sat::LBool::kTrue;
    };
    p.latches.assign(model_.num_latches(), false);
    p.in_init = true;
    for (std::size_t i = 0; i < model_.num_latches(); ++i) {
      p.latches[i] = model_true(unr_.lookup(model_.latch(i), 0));
      if (reset_[i] >= 0 && (reset_[i] != 0) != p.latches[i]) p.in_init = false;
    }
    p.inputs.assign(model_.num_inputs(), false);
    for (std::size_t i = 0; i < model_.num_inputs(); ++i) {
      sat::Lit l = unr_.lookup(model_.input(i), 0);
      if (l != sat::kNoLit) p.inputs[i] = model_true(l);
    }
    // Syntactic lift: latches outside the combinational support of `roots`
    // cannot influence the successor values / bad / constraints, so drop
    // them outright.
    std::vector<char> keep(model_.num_latches(), 0);
    for (aig::Var v : model_.cone(roots)) {
      std::size_t li = model_.latch_index(v);
      if (li != aig::Aig::kNoIndex) keep[li] = 1;
    }
    p.cube.clear();
    for (std::size_t i = 0; i < model_.num_latches(); ++i)
      if (keep[i]) p.cube.push_back(mk_cl(i, p.latches[i]));
    // Semantic lift: greedily X out support latches whose ternary
    // re-simulation still leaves every root at its model value (tern_and is
    // monotone, so a root that stays defined stays *equal*).  The remaining
    // cube, together with the recorded inputs, still forces the roots —
    // exactly the contract obligation replay and lemma learning rely on.
    if (tsim_.has_value() && !p.cube.empty()) {
      tsim_->set_watches(roots);
      tsim_->assign(p.latches, p.inputs);
      Cube lifted;
      lifted.reserve(p.cube.size());
      for (CubeLit l : p.cube) {
        if (tsim_->try_latch_x(cl_index(l)))
          ++stats_.lift_dropped;
        else
          lifted.push_back(l);
      }
      stats_.lift_kept += lifted.size();
      if (obs::enabled()) {
        obs::emit("pdr_lift", {{"before", p.cube.size()},
                               {"after", lifted.size()}});
      }
      p.cube = std::move(lifted);
    }
    if (!p.in_init) restore_init_disjoint_concrete(p.cube, p.latches);
  }

  /// Like restore_init_disjoint but drawing the breaker literal from a full
  /// concrete state known not to be initial.
  void restore_init_disjoint_concrete(Cube& c,
                                      const std::vector<bool>& latches) const {
    if (!intersects_init(c)) return;
    for (std::size_t i = 0; i < model_.num_latches(); ++i) {
      if (reset_[i] >= 0 && (reset_[i] != 0) != latches[i]) {
        CubeLit l = mk_cl(i, latches[i]);
        c.insert(std::lower_bound(c.begin(), c.end(), l), l);
        return;
      }
    }
  }

  // --- queries -------------------------------------------------------------

  /// Relative-induction query: is F_lvl ∧ ¬g ∧ T ∧ g' unsatisfiable?
  /// kUnsat: `core` (if given) receives the subset of g whose primed
  /// literals appear in the failed-assumption core.  kSat: `pred` (if
  /// given) receives the predecessor state, lifted against g's next-state
  /// cone.
  sat::Status consecution(unsigned lvl, const Cube& g, Cube* core,
                          StateModel* pred) {
    ++stats_.queries;
    sat::Lit tmp = new_act();
    std::vector<sat::Lit> cls{sat::neg(tmp)};
    for (CubeLit l : g) cls.push_back(sat::neg(cube_lit_at(l, 0)));
    solver_.add_clause(std::move(cls), 0);

    frame_assumptions(lvl, as_);
    as_.push_back(tmp);
    for (CubeLit l : g) as_.push_back(cube_lit_at(l, 1));
    sat::Status st = solver_.solve_assuming(as_, budget());

    if (st == sat::Status::kUnsat && core) {
      const std::vector<sat::Lit>& failed = solver_.failed_assumptions();
      core->clear();
      for (CubeLit l : g) {
        sat::Lit want = cube_lit_at(l, 1);
        if (std::find(failed.begin(), failed.end(), want) != failed.end())
          core->push_back(l);
      }
    }
    if (st == sat::Status::kSat && pred) {
      std::vector<aig::Lit> roots = constraint_roots_;
      roots.insert(roots.end(), constraint_next_roots_.begin(),
                   constraint_next_roots_.end());
      for (CubeLit l : g) roots.push_back(model_.latch_next(cl_index(l)));
      extract_state(roots, *pred);
    }
    solver_.add_clause({sat::neg(tmp)}, 0);  // retire the ¬g clause
    return st;
  }

  /// Is there a bad state in F_K?  (Constraints hold at the bad frame; no
  /// successor is required — a trace may end there.)
  sat::Status bad_query(StateModel* pred) {
    ++stats_.queries;
    as_.clear();
    as_.push_back(act_c0_);
    as_.push_back(act_inf_);
    for (std::size_t j = k_; j < acts_.size(); ++j) as_.push_back(acts_[j]);
    as_.push_back(bad0_);
    sat::Status st = solver_.solve_assuming(as_, budget());
    if (st == sat::Status::kSat && pred) extract_state(bad_roots_, *pred);
    return st;
  }

  // --- frame trace ---------------------------------------------------------

  /// Is the cube already excluded from F_lvl by a stored lemma?
  bool is_blocked(const Cube& c, unsigned lvl) const {
    for (const Cube& b : inf_cubes_)
      if (cube_subsumes(b, c)) return true;
    for (std::size_t j = lvl; j < stored_.size(); ++j)
      for (const Cube& b : stored_[j])
        if (cube_subsumes(b, c)) return true;
    return false;
  }

  /// Add lemma ¬g at frame j: subsume weaker stored lemmas, record the
  /// cube, and push the guarded clause into the solver.
  void add_blocked(const Cube& g, unsigned j) {
    if (stored_.size() <= j) stored_.resize(j + 1);
    while (acts_.size() <= j) acts_.push_back(new_act());
    for (std::size_t i = 1; i <= j; ++i) {
      auto& list = stored_[i];
      std::size_t before = list.size();
      list.erase(std::remove_if(list.begin(), list.end(),
                                [&](const Cube& b) {
                                  return cube_subsumes(g, b);
                                }),
                 list.end());
      stats_.subsumed += before - list.size();
    }
    stored_[j].push_back(g);
    ++stats_.lemmas;
    stats_.lemma_literals += g.size();
    std::vector<sat::Lit> cls{sat::neg(acts_[j])};
    for (CubeLit l : g) cls.push_back(sat::neg(cube_lit_at(l, 0)));
    solver_.add_clause(std::move(cls), 0);
  }

  /// Plain down step: one consecution query; on UNSAT shrink `g` to the
  /// failed-assumption core (kept init-disjoint and never emptied — an
  /// empty cube's clause is FALSE, which no frame may learn).
  bool down(Cube& g, unsigned lvl) {
    Cube core;
    sat::Status st = consecution(lvl, g, &core, nullptr);
    if (st != sat::Status::kUnsat) return false;
    restore_init_disjoint(core, g);
    if (!core.empty()) g = std::move(core);
    return true;
  }

  /// ctgDown (Hassan/Bradley/Somenzi FMCAD'13): like down, but when the
  /// consecution query is killed by a predecessor state m (a counterexample
  /// to generalization), first try to block m at its own frame — m is often
  /// unreachable, and blocking it both rescues this candidate and
  /// strengthens the trace.  Unblockable predecessors are *joined* into the
  /// candidate (literals m disagrees with are dropped), absorbing m into
  /// the cube.  Bounded by opts_.pdr_max_ctgs per candidate and recursion
  /// depth opts_.pdr_ctg_depth; every path keeps `g` init-disjoint.
  bool ctg_down(Cube& g, unsigned lvl, unsigned depth) {
    unsigned ctgs = 0;
    while (true) {
      if (out_of_time()) return false;
      if (intersects_init(g)) return false;
      Cube core;
      StateModel m;
      sat::Status st = consecution(lvl, g, &core, &m);
      if (st == sat::Status::kUnknown) return false;
      if (st == sat::Status::kUnsat) {
        restore_init_disjoint(core, g);
        if (!core.empty()) g = std::move(core);
        return true;
      }
      // m: a state of F_lvl outside g with a transition into g.
      if (lvl > 0 && ctgs < opts_.pdr_max_ctgs &&
          depth <= opts_.pdr_ctg_depth && !m.in_init &&
          !intersects_init(m.cube)) {
        Cube ctg_core;
        sat::Status cst = consecution(lvl - 1, m.cube, &ctg_core, nullptr);
        if (cst == sat::Status::kUnknown) return false;
        if (cst == sat::Status::kUnsat) {
          // The CTG is unreachable at its frame: generalize and block it,
          // then retry the candidate against the strengthened trace.
          ++ctgs;
          ++stats_.ctg_blocked;
          Cube gg = generalize(m.cube, lvl - 1, ctg_core, depth + 1);
          unsigned up = push_forward(gg, lvl - 1);
          add_blocked(gg, up + 1);
          continue;
        }
      }
      ++stats_.ctg_abandoned;
      // Join: keep only the literals m agrees with.  m satisfies ¬g, so at
      // least one literal drops and the loop terminates in <= |g| joins.
      Cube joined;
      joined.reserve(g.size());
      for (CubeLit l : g)
        if (m.latches[cl_index(l)] == cl_value(l)) joined.push_back(l);
      if (joined.empty() || joined.size() == g.size()) return false;
      g = std::move(joined);
      ctgs = 0;
    }
  }

  /// Inductive generalization at level lvl (consecution of `s` relative to
  /// F_lvl is known to hold with assumption core `core`): shrink to a
  /// minimal cube that is still init-disjoint and still inducts, using
  /// ctg_down when CTG handling is enabled and plain down otherwise.
  /// `depth` tracks ctgDown recursion (1 = a real obligation cube).
  Cube generalize(const Cube& s, unsigned lvl, const Cube& core,
                  unsigned depth = 1) {
    // Init-free models (every reset_[i] < 0): intersects_init() is true for
    // *every* cube and restore_init_disjoint* cannot repair anything, so no
    // literal ever drops here and down/ctg_down refuse all candidates.
    // That degradation is sound because such models never create
    // obligations in the first place — every state is initial, so any bad
    // or predecessor state surfaces as a depth-0 / in_init counterexample
    // before blocking starts (covered by pdr_test InitFreeModel* tests).
    Cube g = core;
    restore_init_disjoint(g, s);
    if (g.empty()) g = s;  // defensive: empty core on an init-free model
    std::size_t attempts = 0;
    const std::size_t max_attempts = 3 * g.size() + 8;
    std::size_t i = 0;
    while (i < g.size() && g.size() > 1 && attempts < max_attempts) {
      if (out_of_time()) break;  // g is valid as-is
      Cube candidate = g;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
      if (intersects_init(candidate)) {
        ++i;
        continue;
      }
      ++attempts;
      bool shrunk = opts_.pdr_ctg ? ctg_down(candidate, lvl, depth)
                                  : down(candidate, lvl);
      if (shrunk) {
        g = std::move(candidate);
        i = 0;
      } else {
        ++i;
      }
    }
    return g;
  }

  /// Highest level whose consecution still holds for g (>= lvl); the lemma
  /// is then addable at that level + 1.
  unsigned push_forward(const Cube& g, unsigned lvl) {
    while (lvl + 1 <= k_ &&
           consecution(lvl + 1, g, nullptr, nullptr) == sat::Status::kUnsat)
      ++lvl;
    return lvl;
  }

  // --- F_inf and the lemma exchange ----------------------------------------

  /// Is clause ¬g inductive on its own (relative to F_inf):
  /// F_inf ∧ ¬g ∧ T ∧ g' unsatisfiable?  Such a clause holds in every
  /// reachable state and belongs to every frame forever.
  bool inductive_check(const Cube& g) {
    ++stats_.queries;
    sat::Lit tmp = new_act();
    std::vector<sat::Lit> cls{sat::neg(tmp)};
    for (CubeLit l : g) cls.push_back(sat::neg(cube_lit_at(l, 0)));
    solver_.add_clause(std::move(cls), 0);
    as_.clear();
    as_.push_back(act_c0_);
    as_.push_back(act_c1_);
    as_.push_back(act_inf_);
    as_.push_back(tmp);
    for (CubeLit l : g) as_.push_back(cube_lit_at(l, 1));
    sat::Status st = solver_.solve_assuming(as_, budget());
    solver_.add_clause({sat::neg(tmp)}, 0);
    return st == sat::Status::kUnsat;
  }

  /// Record a proven-invariant clause: member of every frame from now on.
  void add_to_inf(const Cube& g) {
    inf_cubes_.push_back(g);
    ++stats_.invariant_lemmas;
    std::vector<sat::Lit> cls{sat::neg(act_inf_)};
    for (CubeLit l : g) cls.push_back(sat::neg(cube_lit_at(l, 0)));
    solver_.add_clause(std::move(cls), 0);
    // Invariant clauses subsume frame bookkeeping for the same states.
    for (std::size_t i = 1; i < stored_.size(); ++i) {
      auto& list = stored_[i];
      std::size_t before = list.size();
      list.erase(std::remove_if(list.begin(), list.end(),
                                [&](const Cube& b) {
                                  return cube_subsumes(g, b);
                                }),
                 list.end());
      stats_.subsumed += before - list.size();
    }
  }

  /// Publish a lemma (clause over latches) to the hub.  The cube and the
  /// clause use the same literal packing: cube "latch=value" negates to
  /// clause literal latch^value.
  void publish(const Cube& c, LemmaGrade grade, unsigned bound) {
    if (opts_.exchange == nullptr) return;
    Lemma l;
    l.grade = grade;
    l.bound = bound;
    l.source = opts_.exchange_source;
    l.clause.reserve(c.size());
    for (CubeLit cl : c)
      l.clause.push_back(mk_latch_lit(cl_index(cl), cl_value(cl)));
    if (opts_.exchange->publish(std::move(l))) ++stats_.exch_published;
  }

  enum class Adopt { kAdopted, kRejected, kRetry };

  /// Try to take one foreign lemma.  Every grade funnels through a SAT
  /// check of our own (inductive_check or consecution), so a bogus
  /// candidate can cost a query but can never corrupt the frame trace.
  Adopt adopt(const Lemma& l) {
    Cube cube;
    cube.reserve(l.clause.size());
    for (LatchLit ll : l.clause)
      cube.push_back(mk_cl(latch_lit_index(ll), latch_lit_sign(ll)));
    std::sort(cube.begin(), cube.end());
    if (cube.empty() || intersects_init(cube)) return Adopt::kRejected;
    // Subsumed or not (yet) inductive here: both may change as the frontier
    // moves, so the caller keeps the lemma for a bounded number of retries.
    if (is_blocked(cube, k_)) return Adopt::kRetry;
    if (inductive_check(cube)) {
      add_to_inf(cube);
      ++stats_.exch_consumed;
      if (obs::enabled()) {
        obs::emit("lemma_adopt", {{"as", "invariant"}, {"lits", cube.size()}});
      }
      publish(cube, LemmaGrade::kInvariant, 0);  // strength upgrade
      return Adopt::kAdopted;
    }
    // Defensive frontier guard: setup() opens frame 1 before run() ever
    // drains the hub, so k_ >= 1 here today — but adopt() computing
    // `k_ - 1` on an unsigned would silently wrap to a huge frame index if
    // a future refactor called it before the first frame exists.  Make
    // that invariant explicit instead of latent.
    if (k_ == 0) return Adopt::kRetry;
    if (consecution(k_ - 1, cube, nullptr, nullptr) == sat::Status::kUnsat) {
      add_blocked(cube, k_);
      ++stats_.exch_consumed;
      if (obs::enabled()) {
        obs::emit("lemma_adopt", {{"as", "frame"}, {"lits", cube.size()}});
      }
      return Adopt::kAdopted;
    }
    return Adopt::kRetry;
  }

  /// Safe point: drain the hub into the pending list and attempt adoption;
  /// lemmas that could not be used yet are retried at later frontiers a few
  /// times before being dropped.
  void consume_foreign() {
    if (feed_.hub == nullptr) return;
    feed_.poll();
    auto take = [&](const std::vector<Lemma>& bucket, std::size_t& done) {
      for (; done < bucket.size(); ++done)
        pending_.push_back({bucket[done], 0});
    };
    take(feed_.invariants, inv_done_);
    take(feed_.frames, fr_done_);
    take(feed_.candidates, cand_done_);

    constexpr unsigned kMaxTries = 3;
    std::size_t w = 0;
    auto retain = [&](std::size_t r) {
      // Self-move-assignment would empty the element's clause vector.
      if (w != r) pending_[w] = std::move(pending_[r]);
      ++w;
    };
    for (std::size_t r = 0; r < pending_.size(); ++r) {
      if (out_of_time()) {
        // Keep everything unattempted for the next safe point.
        for (; r < pending_.size(); ++r) retain(r);
        break;
      }
      Adopt o = adopt(pending_[r].lemma);
      if (o == Adopt::kRetry && ++pending_[r].tries < kMaxTries) retain(r);
    }
    pending_.resize(w);
  }

  // --- counterexamples -----------------------------------------------------

  /// Build the FAIL result: `initial` is a concrete initial state, `chain`
  /// the first obligation node; following succ links reaches the frontier
  /// node whose inputs assert bad.
  void reconstruct_fail(EngineResult& out, const std::vector<bool>& initial,
                        int chain) {
    out.verdict = Verdict::kFail;
    out.cex.initial_latches = initial;
    out.cex.inputs.clear();
    for (int idx = chain; idx != -1; idx = nodes_[static_cast<std::size_t>(idx)].succ)
      out.cex.inputs.push_back(nodes_[static_cast<std::size_t>(idx)].inputs);
    out.k_fp = out.cex.depth();
    out.j_fp = 0;
  }

  // --- main algorithm ------------------------------------------------------

  StepOutcome handle_obligations(EngineResult& out) {
    while (!queue_.empty()) {
      if (out_of_time()) return StepOutcome::kTimeout;
      Obligation ob = queue_.top();
      queue_.pop();
      ++stats_.obligations;
      if (obs::enabled())
        obs::counters().obligations.fetch_add(1, std::memory_order_relaxed);
      const Cube s = nodes_[ob.node].cube;  // copy: nodes_ may grow
      if (ob.frame == 0) {
        // Normally unreachable (predecessors found relative to F_0 are
        // reported immediately below); rebuild a state from the cube.
        std::vector<bool> initial(model_.num_latches(), false);
        for (std::size_t i = 0; i < model_.num_latches(); ++i)
          if (reset_[i] >= 0) initial[i] = reset_[i] != 0;
        for (CubeLit l : s) initial[cl_index(l)] = cl_value(l);
        reconstruct_fail(out, initial, static_cast<int>(ob.node));
        return StepOutcome::kFailed;
      }
      if (is_blocked(s, ob.frame)) continue;

      Cube core;
      StateModel pred;
      sat::Status st = consecution(ob.frame - 1, s, &core, &pred);
      if (st == sat::Status::kUnknown) return StepOutcome::kTimeout;
      if (st == sat::Status::kSat) {
        if (pred.in_init) {
          // The predecessor is an initial state: the obligation chain is a
          // real counterexample.
          std::vector<bool> initial = pred.latches;
          nodes_.push_back(
              {std::move(pred.cube), std::move(pred.inputs),
               static_cast<int>(ob.node)});
          reconstruct_fail(out, initial, static_cast<int>(nodes_.size()) - 1);
          return StepOutcome::kFailed;
        }
        std::size_t child = nodes_.size();
        nodes_.push_back({std::move(pred.cube), std::move(pred.inputs),
                          static_cast<int>(ob.node)});
        queue_.push({ob.frame - 1, nodes_[child].cube.size(), seq_++, child});
        queue_.push({ob.frame, s.size(), seq_++, ob.node});
      } else {
        Cube g = generalize(s, ob.frame - 1, core);
        unsigned lvl = push_forward(g, ob.frame - 1);
        stats_.gen_dropped += s.size() - g.size();
        if (obs::enabled()) {
          obs::emit("pdr_blocked", {{"frame", ob.frame},
                                    {"pushed_to", lvl + 1},
                                    {"cube", s.size()},
                                    {"generalized", g.size()}});
        }
        add_blocked(g, lvl + 1);
        // Note: no re-enqueue at a higher frame.  Keeping every node at
        // frame = K - (distance to bad) guarantees the first obligation
        // chain reaching S0 is a *shallowest* counterexample; deeper
        // predecessors are rediscovered by the bad query at the next
        // frontier.
      }
    }
    return StepOutcome::kOk;
  }

  /// Block every bad state of F_K.
  StepOutcome strengthen(EngineResult& out) {
    while (true) {
      if (out_of_time()) return StepOutcome::kTimeout;
      StateModel bad;
      sat::Status st = bad_query(&bad);
      if (st == sat::Status::kUnknown) return StepOutcome::kTimeout;
      if (st == sat::Status::kUnsat) return StepOutcome::kOk;
      std::vector<bool> initial = bad.latches;
      bool in_init = bad.in_init;
      std::size_t node = nodes_.size();
      nodes_.push_back({std::move(bad.cube), std::move(bad.inputs), -1});
      if (in_init) {
        // Depth-0 counterexample (possible only without the preliminary
        // check, but handle it for robustness).
        reconstruct_fail(out, initial, static_cast<int>(node));
        return StepOutcome::kFailed;
      }
      queue_.push({k_, nodes_[node].cube.size(), seq_++, node});
      StepOutcome r = handle_obligations(out);
      if (r != StepOutcome::kOk) return r;
    }
  }

  /// Push lemmas forward one frame where they still induct.
  StepOutcome propagate() {
    for (unsigned i = 1; i < k_; ++i) {
      std::vector<Cube> snapshot = stored_[i];
      for (const Cube& c : snapshot) {
        if (out_of_time()) return StepOutcome::kTimeout;
        // Skip cubes subsumed away since the snapshot.
        auto it = std::find(stored_[i].begin(), stored_[i].end(), c);
        if (it == stored_[i].end()) continue;
        sat::Status st = consecution(i, c, nullptr, nullptr);
        if (st == sat::Status::kUnknown) return StepOutcome::kTimeout;
        if (st == sat::Status::kUnsat) {
          stored_[i].erase(it);
          ++stats_.propagated;
          if (i + 1 == k_ && inductive_check(c)) {
            // Reached the frontier and inductive on its own: promote to
            // F_inf and share as a proven invariant.
            add_to_inf(c);
            publish(c, LemmaGrade::kInvariant, 0);
          } else {
            add_blocked(c, i + 1);
            publish(c, LemmaGrade::kFrame, i + 1);
          }
        }
      }
    }
    return StepOutcome::kOk;
  }

  /// F_i = F_{i+1} for some i <= K?  Then F_{i+1} is inductive: build it as
  /// a predicate over the state space and report PASS.
  bool fixpoint(EngineResult& out) {
    for (unsigned i = 1; i <= k_; ++i) {
      if (!stored_[i].empty()) continue;
      std::vector<aig::Lit> clauses;
      aig::Aig& g = space_.graph();
      // A blocked cube's clause reuses the cube's packing verbatim: the
      // clause literal for "latch = value" is latch^value, i.e. sign bit =
      // value bit, so latch_clause_pred applies directly.
      // F_i = F_inf clauses plus everything stored above i; both parts are
      // needed for the certificate to be inductive on its own.
      for (const Cube& b : inf_cubes_)
        clauses.push_back(latch_clause_pred(g, b));
      for (std::size_t j = i + 1; j < stored_.size(); ++j)
        for (const Cube& b : stored_[j])
          clauses.push_back(latch_clause_pred(g, b));
      invariant_ = g.make_and_many(clauses);
      out.verdict = Verdict::kPass;
      out.j_fp = i;
      return true;
    }
    return false;
  }

  const aig::Aig& model_;
  std::size_t prop_;
  const EngineOptions& opts_;
  StateSpace& space_;
  PdrStats& stats_;
  std::chrono::steady_clock::time_point deadline_;

  sat::Solver solver_;
  cnf::Unroller unr_;
  sat::Lit bad0_ = sat::kNoLit;
  sat::Lit act_init_ = sat::kNoLit;
  sat::Lit act_c0_ = sat::kNoLit;
  sat::Lit act_c1_ = sat::kNoLit;
  sat::Lit act_inf_ = sat::kNoLit;  // guards the proven-invariant clauses
  std::vector<sat::Lit> acts_;  // per-frame lemma activation (index 0 unused)
  std::vector<signed char> reset_;  // per-latch reset value, -1 = undef

  unsigned k_ = 1;  // frontier frame K
  std::vector<std::vector<Cube>> stored_;
  std::vector<Cube> inf_cubes_;  // F_inf: clauses in every frame forever

  LemmaFeed feed_;  // exchange subscription (inactive without a hub)
  std::size_t inv_done_ = 0, fr_done_ = 0, cand_done_ = 0;
  struct PendingLemma {
    Lemma lemma;
    unsigned tries = 0;
  };
  std::vector<PendingLemma> pending_;  // foreign lemmas awaiting adoption

  std::vector<ObNode> nodes_;
  std::priority_queue<Obligation, std::vector<Obligation>, ObOrder> queue_;
  std::uint64_t seq_ = 0;

  std::vector<aig::Lit> constraint_roots_;
  std::vector<aig::Lit> constraint_next_roots_;
  std::vector<aig::Lit> bad_roots_;
  std::optional<TernarySim> tsim_;  // ternary lifting (opts_.pdr_lift)
  std::vector<sat::Lit> as_;  // assumption scratch

  aig::Lit invariant_ = aig::kTrue;
};

void PdrContext::run(EngineResult& out) {
  while (k_ <= opts_.max_bound) {
    out.k_fp = k_;
    stats_.frames = k_;
    if (obs::enabled()) {
      std::uint64_t lemmas = 0;
      for (const auto& f : stored_) lemmas += f.size();
      obs::emit("pdr_frame", {{"k", k_}, {"lemmas", lemmas}});
    }
    obs::Span obs_frontier("frontier", {{"k", k_}});
    consume_foreign();  // safe point: between frontiers, queue empty
    StepOutcome r = strengthen(out);
    if (r == StepOutcome::kFailed) return;
    if (r == StepOutcome::kTimeout) {
      out.verdict = Verdict::kUnknown;
      return;
    }
    r = propagate();
    if (r == StepOutcome::kTimeout) {
      out.verdict = Verdict::kUnknown;
      return;
    }
    if (fixpoint(out)) return;
    ++k_;
    if (stored_.size() <= k_) stored_.resize(k_ + 1);
    while (acts_.size() <= k_) acts_.push_back(new_act());
  }
  out.verdict = Verdict::kUnknown;  // bound exhausted
}

}  // namespace

void PdrEngine::execute(EngineResult& out) {
  pstats_ = PdrStats{};
  PdrContext ctx(model_, prop_, opts_, space_, pstats_, remaining());
  ctx.run(out);
  // One incremental solver for the whole run: absorb its cumulative
  // counters once, and only if a query actually ran (absorb_stats counts a
  // call unconditionally).
  if (pstats_.queries > 0) {
    absorb_stats(out, ctx.solver());
    out.stats.sat_calls += pstats_.queries - 1;
  }
  out.stats.lemmas_published += pstats_.exch_published;
  out.stats.lemmas_consumed += pstats_.exch_consumed;
  if (out.verdict == Verdict::kPass && !out.certificate.has_value())
    out.certificate = make_certificate(ctx.invariant());
}

}  // namespace itpseq::mc
