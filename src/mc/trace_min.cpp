#include "mc/trace_min.hpp"

#include <stdexcept>

#include "mc/sim.hpp"

namespace itpseq::mc {

Trace minimize_trace(const aig::Aig& model, const Trace& trace,
                     std::size_t prop, TraceMinStats* stats) {
  Simulator sim(model, prop);
  TraceMinStats local;
  auto is_cex = [&](const Trace& t) {
    ++local.sim_runs;
    return sim.run(t).is_cex();
  };
  if (!is_cex(trace))
    throw std::invalid_argument("minimize_trace: input is not a counterexample");

  Trace best = trace;
  // Pass 1: clear free initial-latch bits (only meaningful for latches with
  // undefined reset; others are ignored by the simulator anyway).
  for (std::size_t i = 0; i < best.initial_latches.size(); ++i) {
    if (!best.initial_latches[i]) continue;
    ++local.bits_total;
    best.initial_latches[i] = false;
    if (is_cex(best)) {
      ++local.bits_cleared;
    } else {
      best.initial_latches[i] = true;
    }
  }
  // Pass 2: clear input bits frame by frame, latest frames first (late
  // inputs are most often irrelevant to the failure).
  for (std::size_t f = best.inputs.size(); f-- > 0;) {
    for (std::size_t i = 0; i < best.inputs[f].size(); ++i) {
      if (!best.inputs[f][i]) continue;
      ++local.bits_total;
      best.inputs[f][i] = false;
      if (is_cex(best)) {
        ++local.bits_cleared;
      } else {
        best.inputs[f][i] = true;
      }
    }
  }
  if (stats) *stats = local;
  return best;
}

}  // namespace itpseq::mc
