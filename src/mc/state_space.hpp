// state_space.hpp — management of symbolic state sets (interpolants,
// reachability over-approximations R_j) as AIG predicates.
//
// Every engine keeps one StateSpace: an AIG whose input i stands for model
// latch i.  Interpolants are extracted into this AIG; unions, intersections
// and the containment checks ("I_j implies R_{j-1}", the fixpoint test of
// Figs. 1/2/5) are performed here, the latter by SAT.
#pragma once

#include <cstdint>

#include "aig/aig.hpp"
#include "sat/solver.hpp"

namespace itpseq::mc {

/// Verdict of a containment query.
enum class Implication : std::uint8_t { kHolds, kFails, kUnknown };

class StateSpace {
 public:
  explicit StateSpace(const aig::Aig& model);

  aig::Aig& graph() { return sets_; }
  const aig::Aig& graph() const { return sets_; }
  const aig::Aig& model() const { return model_; }

  /// AIG literal (input) standing for model latch i.
  aig::Lit latch_input(std::size_t i) const { return sets_.input(i); }

  /// Predicate describing the model's initial states; latches with
  /// undefined reset are unconstrained.  With a visibility mask, only
  /// visible latches are constrained (CBA abstract initial states).
  aig::Lit init_pred(const std::vector<bool>& visible = {});

  /// SAT containment check: does `a` imply `b` over the state space?
  /// (i.e. is a AND NOT b unsatisfiable?)  `cancel` (optional) aborts the
  /// underlying SAT call cooperatively with kUnknown.
  Implication implies(aig::Lit a, aig::Lit b, double time_limit_sec,
                      const std::atomic<bool>* cancel = nullptr);

  /// Is the predicate satisfiable at all?
  Implication satisfiable(aig::Lit a, double time_limit_sec,
                          const std::atomic<bool>* cancel = nullptr);

  /// Garbage-collect the state-set AIG: rebuild it keeping only the cones
  /// of `roots`, which are remapped in place.  All other literals into the
  /// old graph become invalid.
  void compact(std::vector<aig::Lit*> roots);

  std::size_t num_sat_calls() const { return sat_calls_; }

 private:
  const aig::Aig& model_;
  aig::Aig sets_;
  std::size_t sat_calls_ = 0;
};

}  // namespace itpseq::mc
