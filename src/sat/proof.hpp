// proof.hpp — resolution proof log produced by the CDCL solver.
//
// Every clause the solver ever creates gets a unique ClauseId.  Original
// (input) clauses carry a user-supplied *partition label*; for interpolation
// sequences the label is the index of the BMC time-frame partition A_i the
// clause belongs to.  Learned clauses carry a *trivial resolution chain*:
// the conflict clause resolved left-to-right against reason clauses, with
// recorded pivot variables.  The refutation ends with a final chain deriving
// the empty clause; interpolants are computed by structural induction over
// this DAG (see itp/interpolate.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "sat/types.hpp"

namespace itpseq::sat {

/// Resolution chain for one derived clause:
///   result = chain[0] ⊗_{pivots[0]} chain[1] ⊗_{pivots[1]} chain[2] ...
/// where ⊗_v is propositional resolution on variable v.
struct ResolutionChain {
  std::vector<ClauseId> chain;
  std::vector<Var> pivots;  // size == chain.size() - 1
};

/// Complete refutation proof.  Indexed by ClauseId.
class Proof {
 public:
  /// Kind of each recorded clause.
  enum class Kind : std::uint8_t { kOriginal, kLearned };

  /// Record an original clause; returns its id.
  ClauseId add_original(std::vector<Lit> lits, std::uint32_t label) {
    kinds_.push_back(Kind::kOriginal);
    labels_.push_back(label);
    literals_.push_back(std::move(lits));
    chains_.emplace_back();
    return static_cast<ClauseId>(kinds_.size() - 1);
  }

  /// Record a learned clause with its resolution chain; returns its id.
  ClauseId add_learned(std::vector<Lit> lits, ResolutionChain chain) {
    kinds_.push_back(Kind::kLearned);
    labels_.push_back(0);
    literals_.push_back(std::move(lits));
    chains_.push_back(std::move(chain));
    return static_cast<ClauseId>(kinds_.size() - 1);
  }

  /// Record the final (empty-clause) chain.  Returns the empty clause id.
  ClauseId set_final(ResolutionChain chain) {
    final_id_ = add_learned({}, std::move(chain));
    return final_id_;
  }

  std::size_t size() const { return kinds_.size(); }
  Kind kind(ClauseId id) const { return kinds_[id]; }
  bool is_original(ClauseId id) const { return kinds_[id] == Kind::kOriginal; }
  std::uint32_t label(ClauseId id) const { return labels_[id]; }
  const std::vector<Lit>& literals(ClauseId id) const { return literals_[id]; }
  const ResolutionChain& chain(ClauseId id) const { return chains_[id]; }
  /// Id of the derived empty clause; kNoClauseId until the refutation ends.
  ClauseId final_id() const { return final_id_; }
  bool complete() const { return final_id_ != kNoClauseId; }

  /// Ids of clauses transitively used by the final chain (the *core*),
  /// in topological order (antecedents before users).
  std::vector<ClauseId> core() const;

 private:
  std::vector<Kind> kinds_;
  std::vector<std::uint32_t> labels_;
  std::vector<std::vector<Lit>> literals_;
  std::vector<ResolutionChain> chains_;
  ClauseId final_id_ = kNoClauseId;
};

}  // namespace itpseq::sat
